/**
 * @file
 * gcl::trace tests: ring-buffer semantics, zero-emission when disabled,
 * Chrome-JSON well-formedness, agreement between trace-derived op
 * durations and the simulator's own turnaround stats, stats JSON/CSV
 * export round-trips, and the GCL_DEBUG component filter.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <vector>

#include "ptx/builder.hh"
#include "sim/gpu.hh"
#include "trace/chrome_writer.hh"
#include "trace/export.hh"
#include "trace/json.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace
{

using namespace gcl;
using namespace gcl::ptx;
using DT = DataType;

// ---------------------------------------------------------------------
// TraceSink ring semantics
// ---------------------------------------------------------------------

TEST(TraceSink, RingWrapsAndCountsDropsWithoutDrain)
{
    trace::TraceSink sink(8);
    sink.setEnabled(true);
    for (uint64_t c = 0; c < 20; ++c)
        sink.emit(trace::EventKind::ReqInject, c, c + 1, c * 128);

    EXPECT_EQ(sink.size(), 8u);
    EXPECT_EQ(sink.emitted(), 20u);
    EXPECT_EQ(sink.dropped(), 12u);

    // The survivors are the 8 newest events, oldest first.
    const auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].cycle, 12 + i);
}

TEST(TraceSink, DrainPreservesEveryEventInOrder)
{
    std::vector<trace::TraceEvent> collected;
    trace::TraceSink sink(4);
    sink.setEnabled(true);
    sink.setDrain([&](const trace::TraceEvent *events, size_t n) {
        collected.insert(collected.end(), events, events + n);
    });

    for (uint64_t c = 0; c < 10; ++c)
        sink.emit(trace::EventKind::ReqInject, c, c + 1, c * 128);
    sink.flush();

    EXPECT_EQ(sink.dropped(), 0u);
    ASSERT_EQ(collected.size(), 10u);
    for (size_t i = 0; i < collected.size(); ++i)
        EXPECT_EQ(collected[i].cycle, i);
}

TEST(TraceSink, MacroSkipsDisabledAndNullSinks)
{
    trace::TraceSink sink(8);
    GCL_TRACE(&sink, trace::EventKind::ReqInject, 1, 1, 128);
    EXPECT_EQ(sink.emitted(), 0u);  // present but not enabled

    trace::TraceSink *null_sink = nullptr;
    GCL_TRACE(null_sink, trace::EventKind::ReqInject, 1, 1, 128);
    EXPECT_FALSE(GCL_TRACE_ACTIVE(null_sink));
}

// ---------------------------------------------------------------------
// End-to-end: a small kernel with det + nondet global loads
// ---------------------------------------------------------------------

/** out[tid] = data[idx[tid]] — idx load is D, data load is N. */
Kernel
makeGatherKernel()
{
    KernelBuilder b("gather", 3);
    Reg p_idx = b.ldParam(0);
    Reg p_data = b.ldParam(1);
    Reg p_out = b.ldParam(2);
    Reg tid = b.globalTidX();
    Reg i = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_idx, tid, 4));
    Reg v = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_data, i, 4));
    b.st(MemSpace::Global, DT::U32, b.elemAddr(p_out, tid, 4), v);
    return b.build();
}

constexpr uint32_t kThreads = 256;

/** Launch the gather kernel on @p gpu (which may carry a trace sink). */
void
runGather(sim::Gpu &gpu)
{
    Kernel k = makeGatherKernel();
    std::vector<uint32_t> idx(kThreads), data(kThreads);
    for (uint32_t i = 0; i < kThreads; ++i) {
        idx[i] = (i * 97 + 13) % kThreads;  // scattered gather pattern
        data[i] = i + 1000;
    }
    const uint64_t d_idx = gpu.deviceMalloc(kThreads * 4);
    const uint64_t d_data = gpu.deviceMalloc(kThreads * 4);
    const uint64_t d_out = gpu.deviceMalloc(kThreads * 4);
    gpu.memcpyToDevice(d_idx, idx.data(), kThreads * 4);
    gpu.memcpyToDevice(d_data, data.data(), kThreads * 4);
    gpu.launch(k, sim::Dim3{4, 1, 1}, sim::Dim3{64, 1, 1},
               {d_idx, d_data, d_out});

    std::vector<uint32_t> out(kThreads);
    gpu.memcpyToHost(out.data(), d_out, kThreads * 4);
    for (uint32_t i = 0; i < kThreads; ++i)
        ASSERT_EQ(out[i], data[idx[i]]) << i;
}

TEST(TraceSim, DisabledSinkEmitsNothing)
{
    trace::TraceSink sink;
    sim::Gpu gpu;
    gpu.attachTrace(&sink, 100);  // attached but never enabled
    runGather(gpu);
    EXPECT_EQ(sink.emitted(), 0u);
}

// The remaining end-to-end tests observe real emissions, which a
// -DGCL_TRACE_DISABLED build compiles out by design.
#ifndef GCL_TRACE_DISABLED

TEST(TraceSim, EnabledSinkRecordsFullLifecycles)
{
    std::vector<trace::TraceEvent> events;
    trace::TraceSink sink(1 << 12);
    sink.setEnabled(true);
    sink.setDrain([&](const trace::TraceEvent *e, size_t n) {
        events.insert(events.end(), e, e + n);
    });
    sim::Gpu gpu;
    gpu.attachTrace(&sink, 100);
    runGather(gpu);
    sink.flush();

    size_t issues = 0, dones = 0, l1 = 0, completes = 0, counters = 0;
    for (const auto &ev : events) {
        switch (ev.kind) {
          case trace::EventKind::OpIssue: ++issues; break;
          case trace::EventKind::OpDone: ++dones; break;
          case trace::EventKind::ReqL1Access: ++l1; break;
          case trace::EventKind::ReqComplete: ++completes; break;
          case trace::EventKind::Counter: ++counters; break;
          default: break;
        }
    }
    EXPECT_GT(issues, 0u);
    EXPECT_EQ(issues, dones);  // every traced global load finishes
    EXPECT_GT(l1, 0u);
    EXPECT_GT(completes, 0u);
    EXPECT_GT(counters, 0u);   // timeline sampling ran
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSim, OpDurationsMatchTurnaroundStats)
{
    std::vector<trace::TraceEvent> events;
    trace::TraceSink sink;
    sink.setEnabled(true);
    sink.setDrain([&](const trace::TraceEvent *e, size_t n) {
        events.insert(events.end(), e, e + n);
    });
    sim::Gpu gpu;
    gpu.attachTrace(&sink, 0);
    runGather(gpu);
    sink.flush();
    gpu.finalizeStats();
    const StatsSet &stats = gpu.stats().set();

    // Pair OpIssue/OpDone by id and accumulate durations per class.
    std::unordered_map<uint64_t, uint64_t> issue_cycle;
    double sum[2] = {0, 0};
    uint64_t cnt[2] = {0, 0};
    for (const auto &ev : events) {
        if (ev.kind == trace::EventKind::OpIssue) {
            ASSERT_TRUE(issue_cycle.emplace(ev.id, ev.cycle).second);
        } else if (ev.kind == trace::EventKind::OpDone) {
            auto it = issue_cycle.find(ev.id);
            ASSERT_NE(it, issue_cycle.end());
            const int cls = (ev.flags & trace::kFlagNonDet) ? 1 : 0;
            sum[cls] += static_cast<double>(ev.cycle - it->second);
            ++cnt[cls];
            issue_cycle.erase(it);
        }
    }
    EXPECT_TRUE(issue_cycle.empty());

    // The trace is a different observation path than SimStats; the two
    // must agree exactly on counts and turnaround sums per class.
    EXPECT_EQ(static_cast<double>(cnt[0]), stats.get("turn.cnt.det"));
    EXPECT_EQ(static_cast<double>(cnt[1]), stats.get("turn.cnt.nondet"));
    EXPECT_DOUBLE_EQ(sum[0], stats.get("turn.sum.det"));
    EXPECT_DOUBLE_EQ(sum[1], stats.get("turn.sum.nondet"));
    EXPECT_GT(cnt[0], 0u);
    EXPECT_GT(cnt[1], 0u);
}

TEST(TraceSim, ChromeJsonIsWellFormedAndBalanced)
{
    std::ostringstream json;
    trace::ChromeTraceWriter writer(json);
    writer.beginProcess(1, "gather");

    trace::TraceSink sink(1 << 12);
    sink.setEnabled(true);
    sink.setDrain(writer.drain());
    sim::Gpu gpu;
    gpu.attachTrace(&sink, 50);
    runGather(gpu);
    sink.flush();
    writer.close();

    const auto v = trace::validateChromeTrace(json.str());
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_GT(v.events, 0u);
    EXPECT_GT(v.asyncBegins, 0u);
    EXPECT_EQ(v.asyncBegins, v.asyncEnds);
    EXPECT_EQ(v.unmatchedAsyncs, 0u);
    EXPECT_GT(v.counters, 0u);

    // And it parses as plain JSON (what Perfetto's loader does first).
    trace::JsonValue root;
    std::string error;
    ASSERT_TRUE(trace::parseJson(json.str(), root, &error)) << error;
    ASSERT_TRUE(root.isArray());
}

#endif // GCL_TRACE_DISABLED

TEST(TraceValidate, RejectsMalformedAndUnbalancedTraces)
{
    EXPECT_FALSE(trace::validateChromeTrace("not json").ok);
    EXPECT_FALSE(trace::validateChromeTrace("{}").ok);
    // A "b" without its "e" must be flagged.
    const auto v = trace::validateChromeTrace(
        R"([{"ph":"b","cat":"req","id":"0x1","name":"s","ts":1,"pid":1,"tid":0}])");
    EXPECT_TRUE(v.ok);
    EXPECT_EQ(v.unmatchedAsyncs, 1u);
}

// ---------------------------------------------------------------------
// Stats export
// ---------------------------------------------------------------------

TEST(StatsExport, JsonRoundTripsEveryFinalizedKey)
{
    sim::Gpu gpu;
    runGather(gpu);
    gpu.finalizeStats();
    const StatsSet &stats = gpu.stats().set();

    std::ostringstream out;
    trace::exportStatsJson(stats, out);

    StatsSet back;
    std::string error;
    ASSERT_TRUE(trace::importStatsJson(out.str(), back, &error)) << error;

    ASSERT_EQ(back.scalars().size(), stats.scalars().size());
    for (const auto &[key, value] : stats.scalars())
        EXPECT_DOUBLE_EQ(back.get(key), value) << key;
    ASSERT_EQ(back.hists().size(), stats.hists().size());
    for (const auto &[key, hist] : stats.hists()) {
        const Histogram &h = back.histOrEmpty(key);
        EXPECT_DOUBLE_EQ(h.totalWeight(), hist.totalWeight()) << key;
        EXPECT_EQ(h.buckets().size(), hist.buckets().size()) << key;
        for (const auto &[bucket, weight] : hist.buckets())
            EXPECT_DOUBLE_EQ(h.weightAt(bucket), weight)
                << key << " bucket " << bucket;
    }
}

TEST(StatsExport, JsonContainsTheDocumentedKeyFamilies)
{
    sim::Gpu gpu;
    runGather(gpu);
    gpu.finalizeStats();

    std::ostringstream out;
    trace::exportStatsJson(gpu.stats().set(), out);
    StatsSet back;
    ASSERT_TRUE(trace::importStatsJson(out.str(), back, nullptr));

    // One representative per scalar family documented in sim/stats.hh.
    for (const char *key :
         {"cycles", "launches", "ctas_launched", "threads_per_cta",
          "warp_insts", "thread_insts", "sm_cycles", "busy.ldst",
          "gload.warps.det", "gload.warps.nondet", "gload.reqs.det",
          "gload.reqs.nondet", "gload.active.det", "gload.active.nondet",
          "gstore.warps",
          "l1.outcome.hit", "l1.outcome.miss", "l1.outcome.fail_mshr",
          "l1.access.det", "l1.miss.nondet", "l2.access.det",
          "l2.queries.p0", "turn.cnt.det", "turn.sum.nondet",
          "turn.unloaded.det", "turn.rsrv_prev.nondet",
          "turn.rsrv_cur.nondet", "turn.mem.det", "part.stall_cycles",
          "blocks.count", "blocks.accesses"})
        EXPECT_TRUE(back.has(key)) << key;
    EXPECT_GT(back.histOrEmpty("cta_distance").totalWeight(), 0.0);
    EXPECT_GT(back.histOrEmpty("block_reuse").totalWeight(), 0.0);
}

TEST(StatsExport, CsvListsScalarsAndHistogramBuckets)
{
    StatsSet stats;
    stats.set("cycles", 123);
    stats.set("gload.warps", 7.5);
    stats.hist("cta_distance").add(1, 2);
    stats.hist("cta_distance").add(4, 1);

    std::ostringstream out;
    trace::exportStatsCsv(stats, out);
    const std::string csv = out.str();
    EXPECT_NE(csv.find("kind,key,bucket,value\n"), std::string::npos);
    EXPECT_NE(csv.find("scalar,cycles,,123\n"), std::string::npos);
    EXPECT_NE(csv.find("scalar,gload.warps,,7.5\n"), std::string::npos);
    EXPECT_NE(csv.find("hist,cta_distance,1,2\n"), std::string::npos);
    EXPECT_NE(csv.find("hist,cta_distance,4,1\n"), std::string::npos);
}

// ---------------------------------------------------------------------
// GCL_DEBUG component filter (compile-time)
// ---------------------------------------------------------------------

TEST(DebugFilter, ComponentListSemantics)
{
    using gcl::detail::debugComponentEnabled;
    static_assert(!debugComponentEnabled("", "gpu"));
    static_assert(debugComponentEnabled("all", "gpu"));
    static_assert(debugComponentEnabled("gpu", "gpu"));
    static_assert(debugComponentEnabled("sm,gpu,l2", "gpu"));
    static_assert(!debugComponentEnabled("sm,l2", "gpu"));
    static_assert(!debugComponentEnabled("gpux", "gpu"));
    static_assert(!debugComponentEnabled("gpu", "gp"));

    // And the macro itself compiles against a component literal.
    GCL_DEBUG("test", "value=", 42);
    SUCCEED();
}

} // namespace
