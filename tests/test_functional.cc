/**
 * @file
 * Functional-executor tests via micro-kernels: ALU semantics per type,
 * conversions, comparisons, predication, special registers, atomics.
 * Each kernel stores its results to global memory; the test reads them
 * back — exercising the full issue/execute/writeback path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "ptx/builder.hh"
#include "sim/gpu.hh"

namespace
{

using namespace gcl;
using namespace gcl::ptx;
using DT = DataType;

/** Run a 1-warp kernel built by @p body; returns 32 result words. */
std::vector<uint64_t>
runLanes(const std::function<void(KernelBuilder &, Reg out)> &body,
         unsigned lanes = 32)
{
    KernelBuilder b("micro", 1);
    Reg out = b.ldParam(0);
    body(b, out);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d_out = gpu.deviceMalloc(32 * 8);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{lanes, 1, 1}, {d_out});

    std::vector<uint64_t> result(32);
    gpu.memcpyToHost(result.data(), d_out, 32 * 8);
    return result;
}

/** Store a per-lane u64 value computed from tid. */
void
storeLane(KernelBuilder &b, Reg out, Reg value)
{
    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    b.st(MemSpace::Global, DT::U64, b.elemAddr(out, tid, 8), value);
}

TEST(Functional, IntegerAddWraps32)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg v = b.add(DT::U32, 0xfffffffe, SpecialReg::TidX);
        storeLane(b, out, v);
    });
    EXPECT_EQ(r[0], 0xfffffffeull);
    EXPECT_EQ(r[1], 0xffffffffull);
    EXPECT_EQ(r[2], 0x0ull);  // wrapped and zero-extended
    EXPECT_EQ(r[3], 0x1ull);
}

TEST(Functional, SignedOpsSignExtend)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg v = b.sub(DT::S32, 0, SpecialReg::TidX);  // -tid
        storeLane(b, out, v);
    });
    EXPECT_EQ(r[0], 0u);
    EXPECT_EQ(r[1], static_cast<uint64_t>(-1));
    EXPECT_EQ(r[5], static_cast<uint64_t>(-5));
}

TEST(Functional, SignedDivisionAndRemainder)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg x = b.sub(DT::S32, 3, SpecialReg::TidX);    // 3 - tid
        Reg q = b.div(DT::S32, x, 2);
        Reg rem = b.rem(DT::S32, x, 2);
        Reg packed = b.or_(DT::U64, b.shl(DT::U64, q, 32),
                           b.and_(DT::U64, rem, 0xffffffff));
        storeLane(b, out, packed);
    });
    // lane 5: x = -2: q = -1, rem = 0 (C++ semantics)
    EXPECT_EQ(static_cast<int32_t>(r[5] >> 32), -1);
    EXPECT_EQ(static_cast<int32_t>(r[5] & 0xffffffff), 0);
    // lane 4: x = -1: q = 0, rem = -1
    EXPECT_EQ(static_cast<int32_t>(r[4] >> 32), 0);
    EXPECT_EQ(static_cast<int32_t>(r[4] & 0xffffffff), -1);
}

TEST(Functional, DivisionByZeroYieldsZero)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg q = b.div(DT::U32, 100, SpecialReg::TidX);  // lane 0: /0
        storeLane(b, out, q);
    });
    EXPECT_EQ(r[0], 0u);
    EXPECT_EQ(r[1], 100u);
    EXPECT_EQ(r[3], 33u);
}

TEST(Functional, MulHiUnsigned32)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg v = b.mulHi(DT::U32, 0x80000000u, SpecialReg::TidX);
        storeLane(b, out, v);
    });
    EXPECT_EQ(r[2], 1u);   // 0x80000000 * 2 >> 32
    EXPECT_EQ(r[3], 1u);
    EXPECT_EQ(r[4], 2u);
}

TEST(Functional, ShiftsMaskTheAmount)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg v = b.shl(DT::U32, 1, SpecialReg::TidX);
        storeLane(b, out, v);
    });
    EXPECT_EQ(r[31], 0x80000000ull);
    const auto r64 = runLanes([](KernelBuilder &b, Reg out) {
        Reg v = b.shr(DT::S32, int(0x80000000), SpecialReg::TidX);
        storeLane(b, out, v);
    });
    // Arithmetic shift of a negative 32-bit value, sign-extended.
    EXPECT_EQ(static_cast<int64_t>(r64[1]),
              static_cast<int64_t>(int32_t(0x80000000) >> 1));
}

TEST(Functional, FloatArithmeticMatchesHost)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg x = b.cvt(DT::F32, DT::U32, SpecialReg::TidX);
        Reg v = b.mad(DT::F32, x, immF32(1.5f), immF32(0.25f));
        storeLane(b, out, v);
    });
    for (unsigned lane = 0; lane < 32; ++lane) {
        float f;
        const uint32_t bits = static_cast<uint32_t>(r[lane]);
        std::memcpy(&f, &bits, 4);
        EXPECT_FLOAT_EQ(f, 1.5f * lane + 0.25f) << lane;
    }
}

TEST(Functional, DoublePrecisionRoundTrip)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg x = b.cvt(DT::F64, DT::U32, SpecialReg::TidX);
        Reg v = b.mul(DT::F64, x, immF64(0.5));
        storeLane(b, out, v);
    });
    double d;
    std::memcpy(&d, &r[7], 8);
    EXPECT_DOUBLE_EQ(d, 3.5);
}

TEST(Functional, SfuOpsComputeTranscendentals)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg x = b.cvt(DT::F32, DT::U32,
                      b.add(DT::U32, SpecialReg::TidX, 1));
        Reg v = b.sfu(Opcode::Rsqrt, DT::F32, x);
        storeLane(b, out, v);
    });
    float f;
    const uint32_t bits = static_cast<uint32_t>(r[3]);
    std::memcpy(&f, &bits, 4);
    EXPECT_NEAR(f, 0.5f, 1e-6f);
}

TEST(Functional, SetpAndSelp)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg p = b.setp(CmpOp::Lt, DT::U32, SpecialReg::TidX, 16);
        Reg v = b.selp(DT::U32, 111, 222, p);
        storeLane(b, out, v);
    });
    EXPECT_EQ(r[0], 111u);
    EXPECT_EQ(r[15], 111u);
    EXPECT_EQ(r[16], 222u);
    EXPECT_EQ(r[31], 222u);
}

TEST(Functional, FloatComparisons)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg x = b.cvt(DT::F32, DT::U32, SpecialReg::TidX);
        Reg p = b.setp(CmpOp::Ge, DT::F32, x, immF32(15.5f));
        storeLane(b, out, p);
    });
    EXPECT_EQ(r[15], 0u);
    EXPECT_EQ(r[16], 1u);
}

TEST(Functional, CvtTruncatesFloatToInt)
{
    const auto r = runLanes([](KernelBuilder &b, Reg out) {
        Reg x = b.cvt(DT::F32, DT::U32, SpecialReg::TidX);
        Reg scaled = b.mul(DT::F32, x, immF32(0.75f));
        Reg v = b.cvt(DT::U32, DT::F32, scaled);
        storeLane(b, out, v);
    });
    EXPECT_EQ(r[4], 3u);   // 3.0 exactly
    EXPECT_EQ(r[5], 3u);   // 3.75 truncates
}

TEST(Functional, SpecialRegistersReflectGeometry)
{
    KernelBuilder b("geom", 1);
    Reg out = b.ldParam(0);
    Reg linear = b.globalTidX();
    // Pack (ctaid.x, ntid.x, tid.x) to check each lane's view.
    Reg packed = b.or_(
        DT::U64,
        b.shl(DT::U64, SpecialReg::CtaIdX, 40),
        b.or_(DT::U64, b.shl(DT::U64, SpecialReg::NTidX, 20),
              b.mov(DT::U64, SpecialReg::TidX)));
    b.st(MemSpace::Global, DT::U64, b.elemAddr(out, linear, 8), packed);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d_out = gpu.deviceMalloc(128 * 8);
    gpu.launch(k, sim::Dim3{4, 1, 1}, sim::Dim3{32, 1, 1}, {d_out});
    std::vector<uint64_t> r(128);
    gpu.memcpyToHost(r.data(), d_out, 128 * 8);
    for (uint32_t i = 0; i < 128; ++i) {
        EXPECT_EQ(r[i] >> 40, i / 32) << i;             // ctaid.x
        EXPECT_EQ((r[i] >> 20) & 0xfffff, 32u) << i;    // ntid.x
        EXPECT_EQ(r[i] & 0xfffff, i % 32) << i;         // tid.x
    }
}

TEST(Functional, TwoDimensionalThreadIds)
{
    KernelBuilder b("tid2d", 1);
    Reg out = b.ldParam(0);
    Reg tx = b.mov(DT::U32, SpecialReg::TidX);
    Reg ty = b.mov(DT::U32, SpecialReg::TidY);
    Reg linear = b.mad(DT::U32, ty, SpecialReg::NTidX, tx);
    Reg packed = b.or_(DT::U64, b.shl(DT::U64, ty, 16),
                       b.mov(DT::U64, tx));
    b.st(MemSpace::Global, DT::U64, b.elemAddr(out, linear, 8), packed);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d_out = gpu.deviceMalloc(64 * 8);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{8, 8, 1}, {d_out});
    std::vector<uint64_t> r(64);
    gpu.memcpyToHost(r.data(), d_out, 64 * 8);
    for (uint32_t ty = 0; ty < 8; ++ty)
        for (uint32_t tx = 0; tx < 8; ++tx)
            EXPECT_EQ(r[ty * 8 + tx], (uint64_t{ty} << 16) | tx);
}

TEST(Functional, AtomicAddSerializesWithinWarp)
{
    KernelBuilder b("atom", 1);
    Reg counter = b.ldParam(0);
    Reg old_v = b.atom(AtomOp::Add, DT::U32, counter, 1);
    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    b.st(MemSpace::Global, DT::U32,
         b.elemAddr(counter, b.add(DT::U32, tid, 1), 4), old_v);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(33 * 4);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{32, 1, 1}, {d});
    std::vector<uint32_t> r(33);
    gpu.memcpyToHost(r.data(), d, 33 * 4);
    EXPECT_EQ(r[0], 32u);  // final counter
    // Lane order: old values are 0..31 in lane order.
    for (uint32_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(r[lane + 1], lane);
}

TEST(Functional, AtomicCasAndExch)
{
    KernelBuilder b("cas", 1);
    Reg p = b.ldParam(0);
    // Only the lane whose tid matches the stored value swaps in 100+tid.
    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    (void)b.atomCas(DT::U32, p, tid, b.add(DT::U32, tid, 100));
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(4);
    const uint32_t init = 7;
    gpu.memcpyToDevice(d, &init, 4);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{32, 1, 1}, {d});
    uint32_t r = 0;
    gpu.memcpyToHost(&r, d, 4);
    EXPECT_EQ(r, 107u);  // lane 7 won the CAS
}

TEST(Functional, PartialLastWarpMasksLanes)
{
    // 40 threads: warp 1 has only 8 active lanes; the rest must not write.
    KernelBuilder b("partial", 1);
    Reg out = b.ldParam(0);
    Reg tid = b.globalTidX();
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4), 1);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(64 * 4);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{40, 1, 1}, {d});
    std::vector<uint32_t> r(64);
    gpu.memcpyToHost(r.data(), d, 64 * 4);
    for (uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(r[i], i < 40 ? 1u : 0u) << i;
}

} // namespace
