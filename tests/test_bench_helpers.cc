/**
 * @file
 * Tests for the benchmark-harness helpers: per-pc series discovery and
 * class-ratio extraction used by the Fig 6/7 binaries.
 */

#include <gtest/gtest.h>

#include "common/figures.hh"

namespace
{

using gcl::StatsSet;
using gcl::bench::classKey;
using gcl::bench::classRatio;
using gcl::bench::discoverPcSeries;
using gcl::bench::hottestPc;

StatsSet
makePcStats()
{
    StatsSet s;
    s.set("pc.kern#5.nondet", 1.0);
    s.hist("pc.kern#5.turn_cnt").add(3, 100.0);
    s.hist("pc.kern#5.turn_cnt").add(7, 50.0);
    s.hist("pc.kern#5.turn_sum").add(3, 40000.0);
    s.set("pc.kern#9.nondet", 0.0);
    s.hist("pc.kern#9.turn_cnt").add(1, 600.0);
    s.set("pc.other_kernel#12.nondet", 1.0);
    s.hist("pc.other_kernel#12.turn_cnt").add(2, 10.0);
    return s;
}

TEST(BenchHelpers, ClassKeySuffixes)
{
    EXPECT_EQ(classKey("gload.reqs", false), "gload.reqs.det");
    EXPECT_EQ(classKey("gload.reqs", true), "gload.reqs.nondet");
}

TEST(BenchHelpers, ClassRatioHandlesMissingClass)
{
    StatsSet s;
    s.set("gload.reqs.det", 30.0);
    s.set("gload.warps.det", 10.0);
    EXPECT_DOUBLE_EQ(classRatio(s, "gload.reqs", "gload.warps", false),
                     3.0);
    EXPECT_DOUBLE_EQ(classRatio(s, "gload.reqs", "gload.warps", true),
                     0.0);
}

TEST(BenchHelpers, DiscoverFindsAllSeriesHeaviestFirst)
{
    const auto series = discoverPcSeries(makePcStats());
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0].kernel, "kern");
    EXPECT_EQ(series[0].pc, 9u);          // 600 warps
    EXPECT_FALSE(series[0].nonDet);
    EXPECT_EQ(series[1].pc, 5u);          // 150 warps
    EXPECT_TRUE(series[1].nonDet);
    EXPECT_EQ(series[1].prefix, "pc.kern#5.");
    EXPECT_EQ(series[2].kernel, "other_kernel");
    EXPECT_EQ(series[2].pc, 12u);
}

TEST(BenchHelpers, HottestPcFiltersByClass)
{
    const auto stats = makePcStats();
    EXPECT_EQ(hottestPc(stats, false).pc, 9u);
    EXPECT_EQ(hottestPc(stats, true).pc, 5u);
}

TEST(BenchHelpers, HottestPcEmptyWhenClassAbsent)
{
    StatsSet s;
    s.set("pc.kern#5.nondet", 1.0);
    s.hist("pc.kern#5.turn_cnt").add(1, 1.0);
    EXPECT_TRUE(hottestPc(s, false).prefix.empty());
    EXPECT_FALSE(hottestPc(s, true).prefix.empty());
}

TEST(BenchHelpers, IgnoresNonPcHistograms)
{
    StatsSet s;
    s.hist("cta_distance").add(1, 5.0);
    s.hist("block_reuse").add(2, 5.0);
    EXPECT_TRUE(discoverPcSeries(s).empty());
}

} // namespace
