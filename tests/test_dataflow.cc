/**
 * @file
 * Tests for the dataflow substrate: reaching definitions and backward
 * slicing over straight-line code, branches and loops.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/backward_slice.hh"
#include "dataflow/reaching_defs.hh"
#include "ptx/builder.hh"
#include "ptx/cfg.hh"

namespace
{

using namespace gcl;
using namespace gcl::ptx;
using dataflow::BackwardSlicer;
using dataflow::ReachingDefs;
using DT = DataType;

bool
contains(const std::vector<size_t> &v, size_t x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(ReachingDefsTest, StraightLineLatestDefWins)
{
    // r is defined twice; only the later def reaches the use.
    KernelBuilder b("k", 1);
    Reg r = b.mov(DT::U32, 1);       // pc 0
    b.assign(DT::U32, r, Src(2));    // pc 1
    Reg use = b.add(DT::U32, r, 3);  // pc 2, uses r
    (void)use;
    Kernel k = b.build();

    Cfg cfg(k);
    ReachingDefs rd(cfg);
    const auto defs = rd.defsReaching(2, r.id);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0], 1u);
}

TEST(ReachingDefsTest, BranchMergeKeepsBothDefs)
{
    KernelBuilder b("k", 1);
    Reg p = b.setp(CmpOp::Eq, DT::U32, SpecialReg::TidX, 0);  // pc 0
    Reg r = b.mov(DT::U32, 1);                                // pc 1
    Label merge = b.newLabel();
    b.braIf(p, merge);                                        // pc 2
    b.assign(DT::U32, r, Src(2));                             // pc 3
    b.place(merge);
    Reg use = b.add(DT::U32, r, 0);                           // pc 4
    (void)use;
    Kernel k = b.build();

    Cfg cfg(k);
    ReachingDefs rd(cfg);
    const auto defs = rd.defsReaching(4, r.id);
    ASSERT_EQ(defs.size(), 2u);
    EXPECT_TRUE(contains(defs, 1));
    EXPECT_TRUE(contains(defs, 3));
}

TEST(ReachingDefsTest, LoopBackEdgeCarriesDefs)
{
    KernelBuilder b("k", 1);
    Reg i = b.mov(DT::U32, 0);                       // pc 0
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg p = b.setp(CmpOp::Ge, DT::U32, i, 10);       // pc 1 (uses i)
    b.braIf(p, done);                                // pc 2
    Reg t = b.add(DT::U32, i, 1);                    // pc 3 (uses i)
    b.assign(DT::U32, i, t);                         // pc 4 (defines i)
    b.bra(loop);                                     // pc 5
    b.place(done);
    Kernel k = b.build();

    Cfg cfg(k);
    ReachingDefs rd(cfg);
    // At the loop-head use, both the initial def and the back-edge def of
    // i reach.
    const auto head = rd.defsReaching(1, i.id);
    ASSERT_EQ(head.size(), 2u);
    EXPECT_TRUE(contains(head, 0));
    EXPECT_TRUE(contains(head, 4));
    // Inside the body, same two defs reach the use at pc 3.
    const auto body = rd.defsReaching(3, i.id);
    EXPECT_EQ(body.size(), 2u);
}

TEST(ReachingDefsTest, UsesInDefiningInstructionSeeOldDefs)
{
    KernelBuilder b("k", 1);
    Reg r = b.mov(DT::U32, 7);       // pc 0
    b.assign(DT::U32, r, b.add(DT::U32, r, 1));  // pc 1: t=r+1, pc 2: r=t
    Kernel k = b.build();

    Cfg cfg(k);
    ReachingDefs rd(cfg);
    // The use of r at pc 1 must see only the def at pc 0.
    const auto defs = rd.defsReaching(1, r.id);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0], 0u);
}

TEST(BackwardSliceTest, ImmediateOnly)
{
    KernelBuilder b("k", 1);
    Reg addr = b.mov(DT::U64, 0x1000);
    (void)b.ld(MemSpace::Global, DT::U32, addr);
    Kernel k = b.build();

    Cfg cfg(k);
    BackwardSlicer slicer(cfg);
    const auto slice = slicer.sliceAddress(1);
    EXPECT_TRUE(slice.sources.immediate);
    EXPECT_FALSE(slice.sources.param);
    EXPECT_FALSE(slice.dependsOnMemory());
}

TEST(BackwardSliceTest, SliceCollectsContributingDefs)
{
    KernelBuilder b("k", 1);
    Reg base = b.ldParam(0);                       // pc 0
    Reg tid = b.globalTidX();                      // pc 1
    Reg addr = b.elemAddr(base, tid, 4);           // pcs 2..4
    (void)b.ld(MemSpace::Global, DT::U32, addr);   // pc 5
    Kernel k = b.build();

    Cfg cfg(k);
    BackwardSlicer slicer(cfg);
    const auto slice = slicer.sliceAddress(5);
    // The slice walks add -> (param, shl -> cvt -> mad(sregs)).
    EXPECT_TRUE(contains(slice.slicePcs, 0));
    EXPECT_TRUE(contains(slice.slicePcs, 1));
    EXPECT_GE(slice.slicePcs.size(), 4u);
    EXPECT_TRUE(slice.sources.param);
    EXPECT_TRUE(slice.sources.specialReg);
}

TEST(BackwardSliceTest, StoreAddressCanBeSliced)
{
    KernelBuilder b("k", 1);
    Reg base = b.ldParam(0);
    Reg idx = b.ld(MemSpace::Global, DT::U32, base);
    Reg addr = b.elemAddr(base, idx, 4);
    b.st(MemSpace::Global, DT::U32, addr, 7);
    Kernel k = b.build();

    Cfg cfg(k);
    BackwardSlicer slicer(cfg);
    // The store is the 5th instruction: param, ld, cvt, shl, add, st.
    const auto pcs = k.insts();
    size_t store_pc = 0;
    for (size_t pc = 0; pc < k.size(); ++pc)
        if (k.inst(pc).isStore())
            store_pc = pc;
    const auto slice = slicer.sliceAddress(store_pc);
    EXPECT_TRUE(slice.dependsOnMemory());
}

TEST(BackwardSliceTest, CyclicDependencyTerminates)
{
    // i = i + 1 in a loop: the slice of a use of i must terminate and
    // report the deterministic seed.
    KernelBuilder b("k", 1);
    Reg base = b.ldParam(0);
    Reg i = b.mov(DT::U32, 0);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg p = b.setp(CmpOp::Ge, DT::U32, i, 8);
    b.braIf(p, done);
    size_t load_pc = b.pc() + 3;  // elemAddr emits cvt, shl, add first
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(base, i, 4));
    b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    b.bra(loop);
    b.place(done);
    Kernel k = b.build();
    ASSERT_TRUE(k.inst(load_pc).isGlobalLoad());

    Cfg cfg(k);
    BackwardSlicer slicer(cfg);
    const auto slice = slicer.sliceAddress(load_pc);
    EXPECT_FALSE(slice.dependsOnMemory());
    EXPECT_TRUE(slice.sources.immediate);
    EXPECT_TRUE(slice.sources.param);
}

TEST(BackwardSliceTest, DescribeNamesSources)
{
    KernelBuilder b("k", 1);
    Reg base = b.ldParam(0);
    (void)b.ld(MemSpace::Global, DT::U32, base);
    Kernel k = b.build();
    Cfg cfg(k);
    BackwardSlicer slicer(cfg);
    EXPECT_NE(slicer.sliceAddress(1).describe().find("param"),
              std::string::npos);
}

} // namespace
