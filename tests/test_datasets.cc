/**
 * @file
 * Dataset-generator tests: CSR validity, connectivity, determinism, weight
 * symmetry, sparse-matrix shape and image properties.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <queue>

#include "workloads/datasets/graph.hh"
#include "workloads/datasets/matrix.hh"

namespace
{

using namespace gcl::workloads;

bool
csrIsValid(const Graph &g)
{
    if (g.rowPtr.size() != g.numNodes + 1 || g.rowPtr[0] != 0)
        return false;
    for (uint32_t v = 0; v < g.numNodes; ++v)
        if (g.rowPtr[v] > g.rowPtr[v + 1])
            return false;
    if (g.rowPtr[g.numNodes] != g.col.size() ||
        g.col.size() != g.weight.size())
        return false;
    for (uint32_t dst : g.col)
        if (dst >= g.numNodes)
            return false;
    return true;
}

uint32_t
reachableFrom(const Graph &g, uint32_t source)
{
    std::vector<bool> seen(g.numNodes, false);
    std::queue<uint32_t> frontier;
    seen[source] = true;
    frontier.push(source);
    uint32_t count = 1;
    while (!frontier.empty()) {
        const uint32_t v = frontier.front();
        frontier.pop();
        for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            if (!seen[g.col[e]]) {
                seen[g.col[e]] = true;
                ++count;
                frontier.push(g.col[e]);
            }
        }
    }
    return count;
}

class GraphGenerator
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, bool>>
{
};

TEST_P(GraphGenerator, ProducesValidConnectedCsr)
{
    const auto [nodes, degree, undirected] = GetParam();
    const Graph g = makeRmatGraph(nodes, degree, undirected, 10, 42);
    EXPECT_EQ(g.numNodes, nodes);
    EXPECT_TRUE(csrIsValid(g));
    EXPECT_EQ(reachableFrom(g, 0), nodes);   // fully reachable
    EXPECT_GE(g.numEdges(), nodes);          // at least the backbone
    for (uint32_t w : g.weight) {
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, 10u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphGenerator,
    ::testing::Values(std::make_tuple(64u, 2u, false),
                      std::make_tuple(1024u, 8u, false),
                      std::make_tuple(1000u, 4u, true),   // non-power-of-2
                      std::make_tuple(4096u, 6u, true)));

TEST(GraphGeneratorTest, Deterministic)
{
    const Graph a = makeRmatGraph(512, 4, false, 5, 7);
    const Graph b = makeRmatGraph(512, 4, false, 5, 7);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
    EXPECT_EQ(a.col, b.col);
    EXPECT_EQ(a.weight, b.weight);
    const Graph c = makeRmatGraph(512, 4, false, 5, 8);
    EXPECT_NE(a.col, c.col);
}

TEST(GraphGeneratorTest, UndirectedGraphIsSymmetricWithEqualWeights)
{
    const Graph g = makeRmatGraph(256, 4, true, 9, 11);
    for (uint32_t v = 0; v < g.numNodes; ++v) {
        for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const uint32_t u = g.col[e];
            bool found = false;
            for (uint32_t f = g.rowPtr[u]; f < g.rowPtr[u + 1]; ++f) {
                if (g.col[f] == v) {
                    found = true;
                    EXPECT_EQ(g.weight[f], g.weight[e])
                        << "asymmetric weight on " << v << "<->" << u;
                }
            }
            EXPECT_TRUE(found) << "missing reverse edge " << u << "->"
                               << v;
        }
    }
}

TEST(GraphGeneratorTest, SkewChangesDegreeConcentration)
{
    const Graph skewed = makeRmatGraph(4096, 8, false, 1, 3, 0.55);
    const Graph uniform = makeRmatGraph(4096, 8, false, 1, 3, 0.25);
    auto max_degree = [](const Graph &g) {
        uint32_t best = 0;
        for (uint32_t v = 0; v < g.numNodes; ++v)
            best = std::max(best, g.degree(v));
        return best;
    };
    EXPECT_GT(max_degree(skewed), 2 * max_degree(uniform));
}

TEST(MatrixGeneratorTest, RandomMatrixInRangeAndDeterministic)
{
    const auto a = makeRandomMatrix(16, 16, -2.0f, 3.0f, 99);
    const auto b = makeRandomMatrix(16, 16, -2.0f, 3.0f, 99);
    EXPECT_EQ(a, b);
    for (float v : a) {
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(MatrixGeneratorTest, DominantMatrixIsDiagonallyDominant)
{
    const uint32_t n = 24;
    const auto m = makeDominantMatrix(n, 5);
    for (uint32_t i = 0; i < n; ++i) {
        float off = 0.0f;
        for (uint32_t j = 0; j < n; ++j)
            if (j != i)
                off += std::fabs(m[i * n + j]);
        EXPECT_GT(m[i * n + i], off);
    }
}

TEST(MatrixGeneratorTest, CsrMatrixShape)
{
    const auto m = makeCsrMatrix(100, 200, 8, 17);
    EXPECT_EQ(m.rows, 100u);
    EXPECT_EQ(m.rowPtr.size(), 101u);
    EXPECT_EQ(m.rowPtr.back(), m.colIdx.size());
    EXPECT_EQ(m.colIdx.size(), m.values.size());
    for (uint32_t r = 0; r < m.rows; ++r) {
        EXPECT_GT(m.rowPtr[r + 1], m.rowPtr[r]);  // at least 1 nnz per row
        // Columns sorted and unique within a row.
        for (uint32_t i = m.rowPtr[r] + 1; i < m.rowPtr[r + 1]; ++i)
            EXPECT_LT(m.colIdx[i - 1], m.colIdx[i]);
    }
    for (uint32_t c : m.colIdx)
        EXPECT_LT(c, 200u);
}

TEST(MatrixGeneratorTest, ImageValuesInUnitRange)
{
    const auto img = makeImage(32, 48, 3);
    EXPECT_EQ(img.size(), 32u * 48);
    for (float v : img) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
    // Not constant.
    EXPECT_NE(*std::min_element(img.begin(), img.end()),
              *std::max_element(img.begin(), img.end()));
}

} // namespace
