/**
 * @file
 * SimStats tests: the turnaround decomposition, per-pc aggregation,
 * inter-CTA block tracking and the finalize() fold.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace
{

using namespace gcl::sim;

WarpMemOp
makeOp(bool non_det, unsigned nreq, Cycle issue, Cycle first_accept,
       Cycle last_accept, Cycle done, ServiceLevel deepest)
{
    WarpMemOp op;
    op.isGlobalLoad = true;
    op.nonDet = non_det;
    op.activeThreads = 32;
    op.pc = 7;
    op.tIssue = issue;
    op.tFirstAccept = first_accept;
    op.tLastAccept = last_accept;
    op.tFirstData = done;
    op.tDone = done;
    op.deepest = deepest;
    op.numRequests = nreq;
    // What Sm::completeRequest accumulates per request that went past L1:
    // each of the nreq requests was accepted at first_accept and reached
    // its L2 at first_accept + 100.
    if (deepest != ServiceLevel::L1) {
        const GpuConfig config;
        const double nominal = config.icntLatency + config.ropLatency;
        op.gapIcntL2Sum = nreq * std::max(0.0, 100.0 - nominal);
        op.missedReqs = nreq;
    }
    return op;
}

TEST(SimStatsTest, TurnaroundDecompositionSumsToTotal)
{
    GpuConfig config;
    SimStats stats(config);
    const uint32_t kid = stats.kernelId("k");

    // issue 10, first accept 30, last accept 50, done 500, via DRAM.
    stats.gloadDone(makeOp(true, 4, 10, 30, 50, 500, ServiceLevel::Dram),
                    kid);
    stats.finalize();
    const auto &s = stats.set();

    EXPECT_EQ(s.get("turn.cnt.nondet"), 1.0);
    EXPECT_EQ(s.get("turn.sum.nondet"), 490.0);
    EXPECT_EQ(s.get("turn.rsrv_prev.nondet"), 20.0);
    EXPECT_EQ(s.get("turn.rsrv_cur.nondet"), 20.0);
    EXPECT_EQ(s.get("turn.unloaded.nondet"),
              config.unloadedDramLatency());
    // Components must add up exactly.
    EXPECT_DOUBLE_EQ(s.get("turn.unloaded.nondet") +
                         s.get("turn.rsrv_prev.nondet") +
                         s.get("turn.rsrv_cur.nondet") +
                         s.get("turn.mem.nondet"),
                     s.get("turn.sum.nondet"));
    // Fig 2 aggregates.
    EXPECT_EQ(s.get("gload.warps.nondet"), 1.0);
    EXPECT_EQ(s.get("gload.reqs.nondet"), 4.0);
    EXPECT_EQ(s.get("gload.active.nondet"), 32.0);
    EXPECT_EQ(s.get("gload.warps.det"), 0.0);
}

TEST(SimStatsTest, L1HitUsesHitLatencyAsUnloaded)
{
    GpuConfig config;
    SimStats stats(config);
    const uint32_t kid = stats.kernelId("k");
    stats.gloadDone(
        makeOp(false, 1, 10, 10, 10, 10 + config.l1HitLatency,
               ServiceLevel::L1),
        kid);
    stats.finalize();
    EXPECT_EQ(stats.set().get("turn.unloaded.det"), config.l1HitLatency);
    EXPECT_EQ(stats.set().get("turn.mem.det"), 0.0);
}

TEST(SimStatsTest, PerPcHistogramsKeyedByRequestCount)
{
    GpuConfig config;
    SimStats stats(config);
    const uint32_t kid = stats.kernelId("mykernel");
    stats.gloadDone(makeOp(true, 3, 0, 5, 9, 300, ServiceLevel::Dram),
                    kid);
    stats.gloadDone(makeOp(true, 3, 0, 5, 9, 500, ServiceLevel::Dram),
                    kid);
    stats.gloadDone(makeOp(true, 8, 0, 5, 30, 900, ServiceLevel::Dram),
                    kid);
    stats.finalize();
    const auto &s = stats.set();

    EXPECT_EQ(s.get("pc.mykernel#7.nondet"), 1.0);
    const auto &cnt = s.histOrEmpty("pc.mykernel#7.turn_cnt");
    EXPECT_EQ(cnt.weightAt(3), 2.0);
    EXPECT_EQ(cnt.weightAt(8), 1.0);
    const auto &sum = s.histOrEmpty("pc.mykernel#7.turn_sum");
    EXPECT_EQ(sum.weightAt(3), 800.0);
    EXPECT_EQ(sum.weightAt(8), 900.0);
}

TEST(SimStatsTest, BlockTrackingCountsColdAndSharing)
{
    GpuConfig config;
    SimStats stats(config);
    // Block A touched by CTAs 0, 1, 5; block B only by CTA 2.
    stats.l1Access(false, true, 0x1000, 0);
    stats.l1Access(false, false, 0x1000, 1);
    stats.l1Access(true, false, 0x1000, 5);
    stats.l1Access(false, true, 0x2000, 2);
    stats.l1Access(false, false, 0x2000, 2);
    stats.finalize();
    const auto &s = stats.set();

    EXPECT_EQ(s.get("blocks.count"), 2.0);
    EXPECT_EQ(s.get("blocks.accesses"), 5.0);
    EXPECT_EQ(s.get("blocks.shared"), 1.0);
    EXPECT_EQ(s.get("blocks.shared_accesses"), 3.0);
    EXPECT_EQ(s.get("blocks.shared_cta_sum"), 3.0);

    // Distances among {0,1,5}: 1, 4, 5.
    const auto &dist = s.histOrEmpty("cta_distance");
    EXPECT_EQ(dist.weightAt(1), 1.0);
    EXPECT_EQ(dist.weightAt(4), 1.0);
    EXPECT_EQ(dist.weightAt(5), 1.0);

    // Class-specific sharing: det CTAs {0,1}, nondet CTAs {5}.
    EXPECT_EQ(s.histOrEmpty("cta_distance.det").weightAt(1), 1.0);
    EXPECT_TRUE(s.histOrEmpty("cta_distance.nondet").empty());

    // Reuse histogram: one block with 3 accesses, one with 2.
    const auto &reuse = s.histOrEmpty("block_reuse");
    EXPECT_EQ(reuse.weightAt(3), 1.0);
    EXPECT_EQ(reuse.weightAt(2), 1.0);

    // Fig 8 counters.
    EXPECT_EQ(s.get("l1.access.det"), 4.0);
    EXPECT_EQ(s.get("l1.miss.det"), 2.0);
    EXPECT_EQ(s.get("l1.access.nondet"), 1.0);
}

TEST(SimStatsTest, DuplicateCtaAccessCountedOnce)
{
    GpuConfig config;
    SimStats stats(config);
    for (int i = 0; i < 10; ++i)
        stats.l1Access(false, false, 0x1000, 3);
    stats.finalize();
    EXPECT_EQ(stats.set().get("blocks.shared"), 0.0);
    EXPECT_EQ(stats.set().get("blocks.accesses"), 10.0);
}

TEST(SimStatsTest, FinalizeIsIdempotent)
{
    GpuConfig config;
    SimStats stats(config);
    stats.hot.warpInsts = 42;
    stats.finalize();
    stats.finalize();
    EXPECT_EQ(stats.set().get("warp_insts"), 42.0);
}

TEST(SimStatsTest, KernelIdsInternStably)
{
    GpuConfig config;
    SimStats stats(config);
    const uint32_t a = stats.kernelId("alpha");
    const uint32_t b = stats.kernelId("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(stats.kernelId("alpha"), a);
}

TEST(SimStatsTest, L2AccessAttributionPerPartition)
{
    GpuConfig config;
    SimStats stats(config);
    stats.l2Access(0, true, true);
    stats.l2Access(0, true, false);
    stats.l2Access(3, false, false);
    stats.finalize();
    const auto &s = stats.set();
    EXPECT_EQ(s.get("l2.access.nondet"), 2.0);
    EXPECT_EQ(s.get("l2.miss.nondet"), 1.0);
    EXPECT_EQ(s.get("l2.queries.p0"), 2.0);
    EXPECT_EQ(s.get("l2.hits.p0"), 1.0);
    EXPECT_EQ(s.get("l2.queries.p3"), 1.0);
    EXPECT_EQ(s.get("l2.hits.p3"), 1.0);
}

} // namespace
