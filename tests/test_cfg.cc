/**
 * @file
 * CFG and postdominator tests, including the reconvergence-pc regression
 * that bit the shared-memory reduction kernels (ipdom must be the closest
 * strict postdominator, not the farthest).
 */

#include <gtest/gtest.h>

#include "ptx/builder.hh"
#include "ptx/cfg.hh"
#include "util/rng.hh"

namespace
{

using namespace gcl;
using namespace gcl::ptx;
using DT = DataType;

/** if/else diamond reconverges at the join block. */
TEST(CfgTest, DiamondReconvergesAtJoin)
{
    KernelBuilder b("k", 0);
    Reg p = b.setp(CmpOp::Eq, DT::U32, SpecialReg::TidX, 0);  // pc 0
    Label else_lbl = b.newLabel();
    Label join = b.newLabel();
    b.braIf(p, else_lbl);          // pc 1
    (void)b.mov(DT::U32, 1);       // pc 2 (then)
    b.bra(join);                   // pc 3
    b.place(else_lbl);
    (void)b.mov(DT::U32, 2);       // pc 4 (else)
    b.place(join);
    (void)b.mov(DT::U32, 3);       // pc 5 (join)
    Kernel k = b.build();

    Cfg cfg(k);
    EXPECT_EQ(cfg.reconvergencePc(1), 5u);
}

/** Guarded skip (if-without-else) reconverges right after the branch. */
TEST(CfgTest, GuardedSkipReconvergesAtTarget)
{
    KernelBuilder b("k", 0);
    Reg p = b.setp(CmpOp::Eq, DT::U32, SpecialReg::TidX, 0);  // pc 0
    Label skip = b.newLabel();
    b.braIf(p, skip);              // pc 1
    (void)b.mov(DT::U32, 1);       // pc 2
    b.place(skip);
    (void)b.mov(DT::U32, 2);       // pc 3
    Kernel k = b.build();

    Cfg cfg(k);
    EXPECT_EQ(cfg.reconvergencePc(1), 3u);
}

/**
 * Regression: a guarded skip FOLLOWED by a loop must still reconverge at
 * the skip target, not at the far-away exit. (The broken ipdom extraction
 * chose the farthest postdominator, which serialized every reduction
 * kernel's barriers.)
 */
TEST(CfgTest, SkipBeforeLoopReconvergesLocally)
{
    KernelBuilder b("k", 1, 64);
    Reg tx = b.mov(DT::U32, SpecialReg::TidX);
    Label staged = b.newLabel();
    Reg nl = b.setp(CmpOp::Ne, DT::U32, tx, 0);
    const size_t guard_pc = b.pc();
    b.braIf(nl, staged);
    (void)b.ld(MemSpace::Global, DT::F32, b.ldParam(0));
    b.place(staged);
    const size_t bar_pc = b.pc();
    b.bar();
    Reg stride = b.mov(DT::U32, 8);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg fin = b.setp(CmpOp::Eq, DT::U32, stride, 0);
    b.braIf(fin, done);
    b.assign(DT::U32, stride, b.shr(DT::U32, stride, 1));
    b.bra(loop);
    b.place(done);
    Kernel k = b.build();

    Cfg cfg(k);
    EXPECT_EQ(cfg.reconvergencePc(guard_pc), bar_pc);
}

/** Loop-exit branch reconverges at the code after the loop. */
TEST(CfgTest, LoopExitReconvergence)
{
    KernelBuilder b("k", 0);
    Reg i = b.mov(DT::U32, 0);     // pc 0
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg p = b.setp(CmpOp::Ge, DT::U32, i, 4);  // pc 1
    const size_t exit_branch = b.pc();
    b.braIf(p, done);              // pc 2
    b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    b.bra(loop);
    b.place(done);
    (void)b.mov(DT::U32, 9);
    Kernel k = b.build();

    Cfg cfg(k);
    const size_t reconv = cfg.reconvergencePc(exit_branch);
    // Reconvergence at the post-loop block (the branch target).
    EXPECT_EQ(reconv, static_cast<size_t>(k.inst(exit_branch).branchTarget));
}

TEST(CfgTest, BlockStructureOfStraightLine)
{
    KernelBuilder b("k", 0);
    (void)b.mov(DT::U32, 1);
    (void)b.mov(DT::U32, 2);
    Kernel k = b.build();
    Cfg cfg(k);
    ASSERT_EQ(cfg.numBlocks(), 1u);
    EXPECT_EQ(cfg.block(0).first, 0u);
    EXPECT_EQ(cfg.block(0).last, k.size() - 1);
    EXPECT_EQ(cfg.block(0).succs.size(), 1u);
    EXPECT_EQ(cfg.block(0).succs[0], cfg.exitId());
}

TEST(CfgTest, UnreachableCodeIsMarked)
{
    // bra over a block that nothing targets.
    std::vector<Instruction> insts(3);
    insts[0].op = Opcode::Bra;
    insts[0].branchTarget = 2;
    insts[1].op = Opcode::Mov;
    insts[1].dst = 0;
    insts[1].srcs[0] = Operand::makeImm(1);
    insts[2].op = Opcode::Exit;
    Kernel k("k", std::move(insts), 2, 0, 0);
    Cfg cfg(k);
    EXPECT_TRUE(cfg.reachable(static_cast<size_t>(cfg.blockOf(0))));
    EXPECT_FALSE(cfg.reachable(static_cast<size_t>(cfg.blockOf(1))));
    EXPECT_TRUE(cfg.reachable(static_cast<size_t>(cfg.blockOf(2))));
}

TEST(CfgTest, PostDominatesBasics)
{
    KernelBuilder b("k", 0);
    Reg p = b.setp(CmpOp::Eq, DT::U32, SpecialReg::TidX, 0);
    Label skip = b.newLabel();
    b.braIf(p, skip);
    (void)b.mov(DT::U32, 1);
    b.place(skip);
    (void)b.mov(DT::U32, 2);
    Kernel k = b.build();
    Cfg cfg(k);

    const int entry = cfg.blockOf(0);
    const int body = cfg.blockOf(2);
    const int join = cfg.blockOf(3);
    EXPECT_TRUE(cfg.postDominates(join, entry));
    EXPECT_TRUE(cfg.postDominates(join, body));
    EXPECT_FALSE(cfg.postDominates(body, entry));
    EXPECT_TRUE(cfg.postDominates(cfg.exitId(), entry));
}

/**
 * Property test: on random structured kernels, every conditional branch's
 * reconvergence pc (a) post-dominates the branch block and (b) is the
 * closest such block — no other postdominator of the branch lies strictly
 * between them on every path. We check (a) plus that the reconvergence
 * point is never beyond a block that also postdominates.
 */
TEST(CfgTest, RandomStructuredKernelsHaveSoundIpdoms)
{
    Rng rng(0xcf6);
    for (int trial = 0; trial < 30; ++trial) {
        KernelBuilder b("k", 0);
        // Random nesting of if/loop constructs, always structured.
        std::vector<std::pair<Label, bool>> stack;  // (label, isLoopHead)
        std::vector<Label> loop_heads;
        const int ops = 10 + static_cast<int>(rng.nextBounded(20));
        for (int i = 0; i < ops; ++i) {
            const auto kind = rng.nextBounded(4);
            if (kind == 0 && stack.size() < 4) {
                Reg p = b.setp(CmpOp::Eq, DT::U32, SpecialReg::TidX,
                               static_cast<int>(rng.nextBounded(32)));
                Label end = b.newLabel();
                b.braIf(p, end);
                stack.emplace_back(end, false);
            } else if (kind == 1 && !stack.empty()) {
                b.place(stack.back().first);
                stack.pop_back();
            } else {
                (void)b.mov(DT::U32,
                            static_cast<int>(rng.nextBounded(100)));
            }
        }
        while (!stack.empty()) {
            b.place(stack.back().first);
            stack.pop_back();
        }
        Kernel k = b.build();
        Cfg cfg(k);

        for (size_t pc = 0; pc < k.size(); ++pc) {
            if (!k.inst(pc).isBranch() || !k.inst(pc).guarded)
                continue;
            const size_t reconv = cfg.reconvergencePc(pc);
            if (reconv == k.size())
                continue;  // reconverges at exit
            const int branch_block = cfg.blockOf(pc);
            const int reconv_block = cfg.blockOf(reconv);
            EXPECT_TRUE(cfg.postDominates(reconv_block, branch_block))
                << "trial " << trial << " pc " << pc;
            // Closest: the branch's ipdom must not itself be
            // post-dominated by a different strict postdominator of the
            // branch that is not the reconvergence block.
            for (size_t other = 0; other < cfg.numBlocks(); ++other) {
                if (static_cast<int>(other) == branch_block ||
                    static_cast<int>(other) == reconv_block)
                    continue;
                if (cfg.postDominates(static_cast<int>(other),
                                      branch_block)) {
                    EXPECT_TRUE(cfg.postDominates(
                        static_cast<int>(other), reconv_block))
                        << "block " << other
                        << " lies between branch and reconvergence";
                }
            }
        }
    }
}

} // namespace
