/**
 * @file
 * SM pipeline integration tests: scoreboard dependences, divergence
 * results, barriers as producer/consumer synchronization, per-CTA shared
 * memory isolation, multi-CTA launches, and stat plausibility.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ptx/builder.hh"
#include "sim/gpu.hh"

namespace
{

using namespace gcl;
using namespace gcl::ptx;
using DT = DataType;

TEST(SimPipeline, LoadUseDependencyThroughScoreboard)
{
    // r = a[tid]; r2 = r * 3; b[tid] = r2 — RAW through a global load.
    KernelBuilder b("raw", 2);
    Reg p_a = b.ldParam(0);
    Reg p_b = b.ldParam(1);
    Reg tid = b.globalTidX();
    Reg v = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_a, tid, 4));
    Reg v3 = b.mul(DT::U32, v, 3);
    b.st(MemSpace::Global, DT::U32, b.elemAddr(p_b, tid, 4), v3);
    Kernel k = b.build();

    sim::Gpu gpu;
    std::vector<uint32_t> a(256);
    for (uint32_t i = 0; i < a.size(); ++i)
        a[i] = i + 1;
    const uint64_t d_a = gpu.deviceMalloc(a.size() * 4);
    const uint64_t d_b = gpu.deviceMalloc(a.size() * 4);
    gpu.memcpyToDevice(d_a, a.data(), a.size() * 4);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{256, 1, 1}, {d_a, d_b});

    std::vector<uint32_t> out(a.size());
    gpu.memcpyToHost(out.data(), d_b, out.size() * 4);
    for (uint32_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(out[i], (i + 1) * 3);
}

TEST(SimPipeline, DivergentBranchesComputeBothSides)
{
    // Even tids write 2*tid, odd tids write 3*tid.
    KernelBuilder b("div", 1);
    Reg out = b.ldParam(0);
    Reg tid = b.globalTidX();
    Reg bit = b.and_(DT::U32, tid, 1);
    Reg is_odd = b.setp(CmpOp::Ne, DT::U32, bit, 0);
    Label odd = b.newLabel();
    Label join = b.newLabel();
    b.braIf(is_odd, odd);
    {
        b.st(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4),
             b.mul(DT::U32, tid, 2));
        b.bra(join);
    }
    b.place(odd);
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4),
         b.mul(DT::U32, tid, 3));
    b.place(join);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(64 * 4);
    gpu.launch(k, sim::Dim3{2, 1, 1}, sim::Dim3{32, 1, 1}, {d});
    std::vector<uint32_t> r(64);
    gpu.memcpyToHost(r.data(), d, 64 * 4);
    for (uint32_t i = 0; i < 64; ++i)
        ASSERT_EQ(r[i], (i % 2) ? i * 3 : i * 2) << i;
}

TEST(SimPipeline, BarrierOrdersProducerConsumerAcrossWarps)
{
    // Warp w writes smem[w]; after the barrier every thread reads the
    // OTHER warp's slot. Requires real inter-warp synchronization.
    KernelBuilder b("barrier", 1, 64);
    Reg out = b.ldParam(0);
    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    Reg warp = b.shr(DT::U32, tid, 5);
    Reg lane0 = b.and_(DT::U32, tid, 31);
    Label skip = b.newLabel();
    Reg not_leader = b.setp(CmpOp::Ne, DT::U32, lane0, 0);
    b.braIf(not_leader, skip);
    {
        Reg val = b.add(DT::U32, warp, 100);
        b.st(MemSpace::Shared, DT::U32,
             b.shl(DT::U64, b.cvt(DT::U64, DT::U32, warp), 2), val);
    }
    b.place(skip);
    b.bar();
    Reg other = b.xor_(DT::U32, warp, 1);
    Reg got = b.ld(MemSpace::Shared, DT::U32,
                   b.shl(DT::U64, b.cvt(DT::U64, DT::U32, other), 2));
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4), got);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(64 * 4);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{64, 1, 1}, {d});
    std::vector<uint32_t> r(64);
    gpu.memcpyToHost(r.data(), d, 64 * 4);
    for (uint32_t i = 0; i < 64; ++i)
        ASSERT_EQ(r[i], 100u + ((i >> 5) ^ 1)) << i;
}

TEST(SimPipeline, SharedMemoryIsPrivatePerCta)
{
    // Each CTA writes its ctaid into smem[0] and reads it back after a
    // barrier; values must not leak between CTAs even when many CTAs run
    // concurrently on the same SM.
    KernelBuilder b("smem_iso", 1, 64);
    Reg out = b.ldParam(0);
    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    Label skip = b.newLabel();
    Reg not_leader = b.setp(CmpOp::Ne, DT::U32, tid, 0);
    b.braIf(not_leader, skip);
    b.st(MemSpace::Shared, DT::U32, b.mov(DT::U64, 0),
         b.mov(DT::U32, SpecialReg::CtaIdX));
    b.place(skip);
    b.bar();
    Reg got = b.ld(MemSpace::Shared, DT::U32, b.mov(DT::U64, 0));
    Reg gtid = b.globalTidX();
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, gtid, 4), got);
    Kernel k = b.build();

    sim::Gpu gpu;
    constexpr uint32_t kCtas = 64;
    const uint64_t d = gpu.deviceMalloc(kCtas * 32 * 4);
    gpu.launch(k, sim::Dim3{kCtas, 1, 1}, sim::Dim3{32, 1, 1}, {d});
    std::vector<uint32_t> r(kCtas * 32);
    gpu.memcpyToHost(r.data(), d, r.size() * 4);
    for (uint32_t i = 0; i < r.size(); ++i)
        ASSERT_EQ(r[i], i / 32) << i;
}

TEST(SimPipeline, ManyCtasAllComplete)
{
    KernelBuilder b("many", 1);
    Reg out = b.ldParam(0);
    Reg gtid = b.globalTidX();
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, gtid, 4),
         b.add(DT::U32, gtid, 7));
    Kernel k = b.build();

    sim::Gpu gpu;
    constexpr uint32_t kThreads = 200 * 96;
    const uint64_t d = gpu.deviceMalloc(kThreads * 4);
    gpu.launch(k, sim::Dim3{200, 1, 1}, sim::Dim3{96, 1, 1}, {d});
    std::vector<uint32_t> r(kThreads);
    gpu.memcpyToHost(r.data(), d, r.size() * 4);
    for (uint32_t i = 0; i < kThreads; ++i)
        ASSERT_EQ(r[i], i + 7);
}

TEST(SimPipeline, AtomicContentionAcrossCtas)
{
    KernelBuilder b("contend", 1);
    Reg counter = b.ldParam(0);
    (void)b.atom(AtomOp::Add, DT::U32, counter, 1);
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(4);
    gpu.launch(k, sim::Dim3{32, 1, 1}, sim::Dim3{64, 1, 1}, {d});
    uint32_t r = 0;
    gpu.memcpyToHost(&r, d, 4);
    EXPECT_EQ(r, 32u * 64u);
}

TEST(SimPipeline, BackToBackLaunchesObserveEachOther)
{
    // Launch 1 doubles, launch 2 adds 5: tests full drain between
    // launches.
    KernelBuilder b1("dbl", 1);
    {
        Reg p = b1.ldParam(0);
        Reg tid = b1.globalTidX();
        Reg addr = b1.elemAddr(p, tid, 4);
        Reg v = b1.ld(MemSpace::Global, DT::U32, addr);
        b1.st(MemSpace::Global, DT::U32, addr, b1.mul(DT::U32, v, 2));
    }
    Kernel dbl = b1.build();
    KernelBuilder b2("add5", 1);
    {
        Reg p = b2.ldParam(0);
        Reg tid = b2.globalTidX();
        Reg addr = b2.elemAddr(p, tid, 4);
        Reg v = b2.ld(MemSpace::Global, DT::U32, addr);
        b2.st(MemSpace::Global, DT::U32, addr, b2.add(DT::U32, v, 5));
    }
    Kernel add5 = b2.build();

    sim::Gpu gpu;
    std::vector<uint32_t> init(128);
    for (uint32_t i = 0; i < init.size(); ++i)
        init[i] = i;
    const uint64_t d = gpu.deviceMalloc(init.size() * 4);
    gpu.memcpyToDevice(d, init.data(), init.size() * 4);
    gpu.launch(dbl, sim::Dim3{1, 1, 1}, sim::Dim3{128, 1, 1}, {d});
    gpu.launch(add5, sim::Dim3{1, 1, 1}, sim::Dim3{128, 1, 1}, {d});

    std::vector<uint32_t> r(init.size());
    gpu.memcpyToHost(r.data(), d, r.size() * 4);
    for (uint32_t i = 0; i < r.size(); ++i)
        ASSERT_EQ(r[i], i * 2 + 5);
}

TEST(SimPipeline, StatsArePlausible)
{
    KernelBuilder b("stats", 1);
    Reg out = b.ldParam(0);
    Reg tid = b.globalTidX();
    Reg v = b.ld(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4));
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4),
         b.add(DT::U32, v, 1));
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(1024 * 4);
    gpu.launch(k, sim::Dim3{4, 1, 1}, sim::Dim3{256, 1, 1}, {d});
    gpu.finalizeStats();
    const auto &s = gpu.stats().set();

    EXPECT_EQ(s.get("launches"), 1.0);
    EXPECT_EQ(s.get("ctas_launched"), 4.0);
    EXPECT_EQ(s.get("threads_per_cta"), 256.0);
    EXPECT_GT(s.get("cycles"), 0.0);
    // 32 warps, each issues exactly one coalesced global load.
    EXPECT_EQ(s.get("gload.warps.det"), 32.0);
    EXPECT_EQ(s.get("gload.reqs.det"), 32.0);
    EXPECT_EQ(s.get("gload.active.det"), 1024.0);
    EXPECT_EQ(s.get("gstore.warps"), 32.0);
    // Every accessed 128-byte block belongs to the 4KB array.
    EXPECT_EQ(s.get("blocks.count"), 32.0);
    // Turnaround must be at least the unloaded DRAM path for cold misses.
    const double avg_turn = s.ratio("turn.sum.det", "turn.cnt.det");
    EXPECT_GE(avg_turn, gpu.config().unloadedDramLatency());
    // sm_cycles covers all SMs for the whole launch.
    EXPECT_EQ(s.get("sm_cycles"),
              s.get("cycles") * gpu.config().numSms);
}

TEST(SimPipeline, GtoSchedulerProducesSameResults)
{
    KernelBuilder b("gto", 1);
    Reg out = b.ldParam(0);
    Reg tid = b.globalTidX();
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4),
         b.mul(DT::U32, tid, 5));
    Kernel k = b.build();

    sim::GpuConfig config;
    config.warpSched = sim::WarpSchedPolicy::GreedyThenOldest;
    sim::Gpu gpu(config);
    const uint64_t d = gpu.deviceMalloc(512 * 4);
    gpu.launch(k, sim::Dim3{2, 1, 1}, sim::Dim3{256, 1, 1}, {d});
    std::vector<uint32_t> r(512);
    gpu.memcpyToHost(r.data(), d, r.size() * 4);
    for (uint32_t i = 0; i < r.size(); ++i)
        ASSERT_EQ(r[i], i * 5);
}

TEST(SimPipeline, RepeatedLaunchesKeepBoundedLatency)
{
    // Regression: the cycle clock is global and monotonic across launches
    // while DRAM busy-until stamps persist. With a per-launch clock reset
    // (the original bug) the second launch saw DRAM "busy" tens of
    // thousands of cycles into its future and crawled.
    KernelBuilder b("relaunch", 1);
    Reg out = b.ldParam(0);
    Reg tid = b.globalTidX();
    Reg addr = b.elemAddr(out, tid, 4);
    Reg v = b.ld(MemSpace::Global, DT::U32, addr);
    b.st(MemSpace::Global, DT::U32, addr, b.add(DT::U32, v, 1));
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(4096 * 4);
    gpu.launch(k, sim::Dim3{16, 1, 1}, sim::Dim3{256, 1, 1}, {d});
    const auto first = gpu.lastLaunchCycles();
    gpu.launch(k, sim::Dim3{16, 1, 1}, sim::Dim3{256, 1, 1}, {d});
    const auto second = gpu.lastLaunchCycles();
    // Warm caches make the relaunch at most as slow as the cold run,
    // modulo small scheduling noise.
    EXPECT_LE(second, first + first / 4);

    std::vector<uint32_t> r(4096);
    gpu.memcpyToHost(r.data(), d, r.size() * 4);
    for (uint32_t i = 0; i < r.size(); ++i)
        ASSERT_EQ(r[i], 2u);
}

TEST(SimPipeline, UncoalescedLoadGeneratesPerLaneRequests)
{
    // Stride-128 gather: every active lane touches its own line, so one
    // warp load becomes 32 requests (the Fig 2 worst case).
    KernelBuilder b("stride", 1);
    Reg out = b.ldParam(0);
    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    Reg idx = b.mul(DT::U32, tid, 32);  // 32 words = 128 bytes apart
    Reg v = b.ld(MemSpace::Global, DT::U32, b.elemAddr(out, idx, 4));
    b.st(MemSpace::Global, DT::U32, b.elemAddr(out, idx, 4),
         b.add(DT::U32, v, 1));
    Kernel k = b.build();

    sim::Gpu gpu;
    const uint64_t d = gpu.deviceMalloc(32 * 128);
    gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{32, 1, 1}, {d});
    gpu.finalizeStats();
    EXPECT_EQ(gpu.stats().set().get("gload.reqs.det"), 32.0);
    EXPECT_EQ(gpu.stats().set().get("gload.warps.det"), 1.0);
}

TEST(SimPipeline, WarpSplitKeepsResultsIdentical)
{
    // The X.A sub-warp splitter is a pure scheduling change: functional
    // results must not move.
    auto run_with = [](unsigned split) {
        KernelBuilder b("split", 2);
        Reg p_idx = b.ldParam(0);
        Reg p_out = b.ldParam(1);
        Reg tid = b.globalTidX();
        Reg idx =
            b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_idx, tid, 4));
        Reg v = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_idx, idx, 4));
        b.st(MemSpace::Global, DT::U32, b.elemAddr(p_out, tid, 4), v);
        Kernel k = b.build();

        sim::GpuConfig config;
        config.nondetSplitRequests = split;
        sim::Gpu gpu(config);
        std::vector<uint32_t> idx_host(256);
        for (uint32_t i = 0; i < 256; ++i)
            idx_host[i] = (i * 97) % 256;
        const uint64_t d_idx = gpu.deviceMalloc(256 * 4);
        gpu.memcpyToDevice(d_idx, idx_host.data(), 256 * 4);
        const uint64_t d_out = gpu.deviceMalloc(256 * 4);
        gpu.launch(k, sim::Dim3{1, 1, 1}, sim::Dim3{256, 1, 1},
                   {d_idx, d_out});
        std::vector<uint32_t> out(256);
        gpu.memcpyToHost(out.data(), d_out, 256 * 4);
        return out;
    };
    EXPECT_EQ(run_with(0), run_with(4));
}

TEST(SimPipeline, DeterministicAcrossRuns)
{
    auto run_once = [] {
        sim::Gpu gpu;
        KernelBuilder b("det", 1);
        Reg out = b.ldParam(0);
        Reg tid = b.globalTidX();
        Reg v = b.ld(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4));
        b.st(MemSpace::Global, DT::U32, b.elemAddr(out, tid, 4),
             b.add(DT::U32, v, 1));
        Kernel k = b.build();
        const uint64_t d = gpu.deviceMalloc(2048 * 4);
        gpu.launch(k, sim::Dim3{8, 1, 1}, sim::Dim3{256, 1, 1}, {d});
        return gpu.lastLaunchCycles();
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
