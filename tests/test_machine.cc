/**
 * @file
 * Machine-description frontend tests: the gpgpusim.config-style grammar
 * (src/sim/machine.hh), the canonical serializer round-trip, registry
 * resolution over the committed configs/ zoo, override layering, and the
 * central byte-identity contract — `--machine=c2050` must be
 * indistinguishable from the compiled-in defaults, stats and trace alike,
 * at any tick-thread count.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "guard/sim_error.hh"
#include "sim/config.hh"
#include "sim/machine.hh"
#include "trace/chrome_writer.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace
{

using namespace gcl::sim;
using gcl::SimError;

std::string
zooPath(const std::string &name)
{
    return std::string(GCL_REPO_CONFIGS_DIR) + "/" + name + ".config";
}

TEST(Machine, GrammarParsesKeysCommentsAndBlanks)
{
    const GpuConfig config = parseMachineText("# a comment\n"
                                              "\n"
                                              "-num_sms 4   # trailing\n"
                                              "-warp_sched gto\n"
                                              "-dram_latency 42\n",
                                              "<test>", "fallback");
    EXPECT_EQ(config.numSms, 4u);
    EXPECT_EQ(config.warpSched, WarpSchedPolicy::GreedyThenOldest);
    EXPECT_EQ(config.dramLatency, 42u);
    // No -machine_name line: the name falls back to the file stem.
    EXPECT_EQ(config.machineName, "fallback");
}

TEST(Machine, CacheGeometryString)
{
    // Three-field form: geometry only, MSHR shape inherited.
    const GpuConfig defaults;
    GpuConfig three =
        parseMachineText("-l1_cache 64:128:8\n", "<test>", "t");
    EXPECT_EQ(three.l1.sizeBytes, 64u * 128 * 8);
    EXPECT_EQ(three.l1.lineBytes, 128u);
    EXPECT_EQ(three.l1.assoc, 8u);
    EXPECT_EQ(three.l1.numSets(), 64u);
    EXPECT_EQ(three.l1.mshrEntries, defaults.l1.mshrEntries);
    EXPECT_EQ(three.l1.mshrMaxMerge, defaults.l1.mshrMaxMerge);

    // Five-field form sets the MSHR too.
    GpuConfig five =
        parseMachineText("-l2_cache 256:32:16:48:4\n", "<test>", "t");
    EXPECT_EQ(five.l2.sizeBytes, 256u * 32 * 16);
    EXPECT_EQ(five.l2.mshrEntries, 48u);
    EXPECT_EQ(five.l2.mshrMaxMerge, 4u);
}

TEST(Machine, OpTimingKeys)
{
    const GpuConfig config =
        parseMachineText("-op_fp_div 32:4\n-op_sfu 20:8\n", "<test>", "t");
    const FuTiming &fp_div =
        config.opTiming[static_cast<size_t>(OpClass::FpDiv)];
    EXPECT_EQ(fp_div.latency, 32u);
    EXPECT_EQ(fp_div.initiation, 4u);
    const FuTiming &sfu =
        config.opTiming[static_cast<size_t>(OpClass::Sfu)];
    EXPECT_EQ(sfu.latency, 20u);
    EXPECT_EQ(sfu.initiation, 8u);
    // Untouched classes keep their defaults.
    EXPECT_EQ(config.opTiming[static_cast<size_t>(OpClass::IntAlu)],
              GpuConfig{}.opTiming[static_cast<size_t>(OpClass::IntAlu)]);
}

TEST(Machine, UnknownKeyIsFatalAndListsVocabulary)
{
    try {
        parseMachineText("-num_sms 4\n-no_such_knob 1\n", "file.config",
                         "t");
        FAIL() << "unknown key accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::Config);
        // Position of the offending line...
        EXPECT_NE(e.message().find("file.config:2"), std::string::npos);
        // ...and the valid vocabulary, so the typo is a one-round fix.
        EXPECT_NE(e.message().find("num_partitions"), std::string::npos);
        EXPECT_NE(e.message().find("op_sfu"), std::string::npos);
    }
}

TEST(Machine, MalformedLinesAreFatal)
{
    EXPECT_THROW(parseMachineText("num_sms 4\n", "<t>", "t"), SimError);
    EXPECT_THROW(parseMachineText("-num_sms\n", "<t>", "t"), SimError);
    EXPECT_THROW(parseMachineText("-l1_cache 64:128\n", "<t>", "t"),
                 SimError);
    EXPECT_THROW(parseMachineText("-op_sfu 16\n", "<t>", "t"), SimError);
    EXPECT_THROW(parseMachineText("-op_sfu 0:1\n", "<t>", "t"), SimError);
}

TEST(Machine, SerializeRoundTrips)
{
    GpuConfig original;
    original.numSms = 7;
    original.warpSched = WarpSchedPolicy::GreedyThenOldest;
    original.opTiming[static_cast<size_t>(OpClass::FpDiv)] = {32, 4};
    original.dramBanks = 16;
    original.dramRowBytes = 1024;
    original.machineName = "round-trip";

    const std::string text = serializeMachine(original);
    const GpuConfig parsed = parseMachineText(text, "<serialized>", "x");
    EXPECT_EQ(parsed.machineName, "round-trip");
    EXPECT_EQ(parsed.fingerprint(), original.fingerprint());
    EXPECT_EQ(serializeMachine(parsed), text);
}

TEST(Machine, ZooParsesAndC2050MatchesDefaults)
{
    // Every committed machine must load; c2050 must be the compiled-in
    // defaults exactly (same fingerprint -> same cache entries, same
    // simulated behavior).
    const GpuConfig c2050 = loadMachineFile(zooPath("c2050"));
    EXPECT_EQ(c2050.machineName, "c2050");
    EXPECT_EQ(c2050.fingerprint(), GpuConfig{}.fingerprint());
    EXPECT_EQ(serializeMachine(c2050), serializeMachine(GpuConfig{}));

    const GpuConfig hbm = loadMachineFile(zooPath("hbm-sectored"));
    EXPECT_EQ(hbm.machineName, "hbm-sectored");
    EXPECT_EQ(hbm.l1.lineBytes, 32u);
    EXPECT_EQ(hbm.numPartitions, 24u);
    EXPECT_GT(hbm.dramRowBytes, 0u);

    const GpuConfig modern = loadMachineFile(zooPath("modern-core"));
    EXPECT_EQ(modern.machineName, "modern-core");
    EXPECT_EQ(modern.numSchedulers, 4u);
    EXPECT_EQ(modern.warpSched, WarpSchedPolicy::GreedyThenOldest);
    EXPECT_NE(modern.fingerprint(), c2050.fingerprint());

    const GpuConfig tiny = loadMachineFile(zooPath("tiny"));
    EXPECT_EQ(tiny.numSms, 2u);
    EXPECT_EQ(tiny.numPartitions, 1u);
}

TEST(Machine, RegistryResolvesNamesAndPaths)
{
    setenv("GCL_MACHINE_DIR", GCL_REPO_CONFIGS_DIR, 1);
    EXPECT_EQ(MachineRegistry::resolve("tiny").numSms, 2u);
    EXPECT_EQ(MachineRegistry::resolve(zooPath("tiny")).numSms, 2u);
    // Empty spec = compiled defaults.
    EXPECT_EQ(MachineRegistry::resolve("").fingerprint(),
              GpuConfig{}.fingerprint());
    try {
        MachineRegistry::resolve("no-such-machine");
        FAIL() << "unknown machine accepted";
    } catch (const SimError &e) {
        EXPECT_NE(e.message().find("tiny"), std::string::npos)
            << "error should list the known machines";
    }
    EXPECT_THROW(MachineRegistry::resolve("no/such/file.config"),
                 SimError);
    unsetenv("GCL_MACHINE_DIR");
}

TEST(Machine, SimConfigOverridesLayerOnTop)
{
    GpuConfig config = loadMachineFile(zooPath("tiny"));
    EXPECT_EQ(config.numSms, 2u);
    config.applyOverrides("num_sms=4,dram_latency=7");
    EXPECT_EQ(config.numSms, 4u);
    EXPECT_EQ(config.dramLatency, 7u);
    // The layered config is a distinct cache key from the plain machine.
    EXPECT_NE(config.fingerprint(),
              loadMachineFile(zooPath("tiny")).fingerprint());
}

/** Run @p app under @p config with tracing on; return {stats, trace}. */
std::pair<std::string, std::string>
tracedRun(const char *app, GpuConfig config)
{
    std::ostringstream trace;
    gcl::trace::ChromeTraceWriter writer(trace);
    gcl::workloads::SimContext ctx(gcl::workloads::byName(app), config);
    ctx.enableTrace(1000, writer.drain(), /*id_base=*/uint64_t{1} << 40);
    ctx.run();
    EXPECT_FALSE(ctx.failed()) << ctx.failure().message;
    EXPECT_TRUE(ctx.verified());
    writer.close();
    return {ctx.stats().serialize(), trace.str()};
}

TEST(Machine, C2050IsByteIdenticalToDefaultsAtAnyThreadCount)
{
    // The acceptance contract, in miniature: same stats bytes and same
    // trace bytes for defaults vs the loaded c2050 file, serial and
    // multi-threaded.
    for (unsigned threads : {1u, 4u}) {
        GpuConfig defaults;
        defaults.simThreads = threads;
        GpuConfig loaded = loadMachineFile(zooPath("c2050"));
        loaded.simThreads = threads;

        const auto base = tracedRun("gaus", defaults);
        const auto machine = tracedRun("gaus", loaded);
        EXPECT_EQ(base.first, machine.first)
            << "stats diverge at simThreads=" << threads;
        EXPECT_EQ(base.second, machine.second)
            << "trace diverges at simThreads=" << threads;
    }
}

TEST(Machine, TinyMachineRunsARealWorkload)
{
    // The scaled-down machine must still complete a real app with the
    // conservation invariants intact (SimContext would record a failure).
    GpuConfig config = loadMachineFile(zooPath("tiny"));
    gcl::workloads::SimContext ctx(gcl::workloads::byName("bpr"), config);
    ctx.run();
    EXPECT_FALSE(ctx.failed()) << ctx.failure().message;
    EXPECT_TRUE(ctx.verified());
    EXPECT_GT(ctx.stats().get("cycles"), 0.0);
}

} // namespace
