/**
 * @file
 * Determinism of the intra-run parallel tick: simulating one application
 * with sim_threads > 1 (SMs and memory partitions ticking concurrently,
 * with a coordinator commit phase) must produce *bit-identical* results to
 * the serial loop — same stats, same trace bytes (ids, order, payloads),
 * same failure records, same HangReport. This is the contract that makes
 * `--sim-threads=N` a pure wall-clock knob, excluded from the config
 * fingerprint (DESIGN.md, "Intra-run determinism contract").
 *
 * Uses the three smallest Table I applications; scripts/check.sh
 * additionally diffs whole cache directories from --sim-threads=1 vs =4
 * bench runs, and the TSan preset runs these tests plus a threaded bench
 * sweep under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/gpu.hh"
#include "trace/trace.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::sim::GpuConfig;
using gcl::trace::TraceEvent;
using gcl::workloads::SimContext;
using gcl::workloads::byName;

const std::vector<std::string> kSmallApps = {"gaus", "bpr", "dwt"};
const unsigned kThreadCounts[] = {2, 4};

/** Everything observable from one run, in comparable form. */
struct RunOutput
{
    std::string stats;        //!< StatsSet::serialize
    bool verified = false;
    bool failed = false;
    std::string failureKind;
    std::string failureMessage;
    std::string failureDetail;  //!< multi-line context (HangReport)
    uint64_t failureCycle = 0;
    std::string trace;          //!< raw TraceEvent bytes, in drain order
};

RunOutput
runOnce(const std::string &app, const GpuConfig &base, unsigned threads,
        bool traced)
{
    GpuConfig config = base;
    config.simThreads = threads;
    SimContext ctx(byName(app), config);
    RunOutput out;
    if (traced)
        ctx.enableTrace(/*timeline_interval=*/256,
                        [&out](const TraceEvent *events, size_t n) {
                            out.trace.append(
                                reinterpret_cast<const char *>(events),
                                n * sizeof(TraceEvent));
                        },
                        /*id_base=*/0);
    ctx.run();
    out.stats = ctx.stats().serialize();
    out.verified = ctx.verified();
    out.failed = ctx.failed();
    out.failureKind = ctx.failure().kind;
    out.failureMessage = ctx.failure().message;
    out.failureDetail = ctx.failure().detail;
    out.failureCycle = ctx.failure().cycle;
    return out;
}

void
expectIdentical(const RunOutput &threaded, const RunOutput &serial,
                const std::string &label)
{
    EXPECT_EQ(threaded.stats, serial.stats) << label << ": stats diverged";
    EXPECT_EQ(threaded.verified, serial.verified) << label;
    EXPECT_EQ(threaded.failed, serial.failed) << label;
    EXPECT_EQ(threaded.failureKind, serial.failureKind) << label;
    EXPECT_EQ(threaded.failureMessage, serial.failureMessage) << label;
    EXPECT_EQ(threaded.failureDetail, serial.failureDetail) << label;
    EXPECT_EQ(threaded.failureCycle, serial.failureCycle) << label;
    EXPECT_EQ(threaded.trace.size(), serial.trace.size())
        << label << ": trace event count diverged";
    EXPECT_TRUE(threaded.trace == serial.trace)
        << label << ": trace bytes diverged";
}

TEST(ParallelTick, StatsAndTraceBitIdenticalAcrossThreadCounts)
{
    const GpuConfig config{};
    for (const auto &app : kSmallApps) {
        const RunOutput serial = runOnce(app, config, 1, /*traced=*/true);
        EXPECT_TRUE(serial.verified) << app;
        EXPECT_FALSE(serial.failed) << app;
        EXPECT_FALSE(serial.stats.empty()) << app;
#ifndef GCL_TRACE_DISABLED
        // With emission compiled out the trace is legitimately empty; the
        // identity comparisons below still hold (empty == empty).
        EXPECT_FALSE(serial.trace.empty()) << app;
#endif
        for (unsigned threads : kThreadCounts) {
            const RunOutput threaded =
                runOnce(app, config, threads, /*traced=*/true);
            expectIdentical(threaded, serial,
                            app + " @t=" + std::to_string(threads));
        }
    }
}

TEST(ParallelTick, FaultPlanResultsIdenticalAcrossThreadCounts)
{
    // A mid-run stop fault: the threaded tick must fail at the same cycle
    // with the same structured record and identical partial stats.
    GpuConfig stop{};
    stop.faultPlan = "stop@2000";
    const RunOutput serial = runOnce("gaus", stop, 1, /*traced=*/false);
    EXPECT_TRUE(serial.failed);
    EXPECT_EQ(serial.failureKind, "fault_injected");
    for (unsigned threads : kThreadCounts)
        expectIdentical(runOnce("gaus", stop, threads, false), serial,
                        "stop@2000 t=" + std::to_string(threads));

    // Seeded survivable degradation (MSHR/ICNT/DRAM pressure windows):
    // the run completes, and its stats — including the fault.injected
    // counters — must not depend on the thread count.
    GpuConfig auto3{};
    auto3.faultPlan = "seed=42;auto=3";
    const RunOutput degraded = runOnce("gaus", auto3, 1, /*traced=*/true);
    EXPECT_FALSE(degraded.failed);
    for (unsigned threads : kThreadCounts)
        expectIdentical(runOnce("gaus", auto3, threads, true), degraded,
                        "auto=3 t=" + std::to_string(threads));
}

TEST(ParallelTick, HangReportIdenticalAcrossThreadCounts)
{
    // Injected livelock (every L1 fill dropped) caught by the watchdog:
    // the HangReport snapshots per-SM pipeline state mid-launch, so an
    // out-of-order threaded tick would show up as a differing report.
    GpuConfig config{};
    config.faultPlan = "dropfill@0+1000000000";
    config.watchdogInterval = 1024;
    config.watchdogBudget = 100000;
    const RunOutput serial = runOnce("gaus", config, 1, /*traced=*/false);
    EXPECT_TRUE(serial.failed);
    EXPECT_EQ(serial.failureKind, "hang");
    EXPECT_FALSE(serial.failureDetail.empty()) << "HangReport missing";
    for (unsigned threads : kThreadCounts)
        expectIdentical(runOnce("gaus", config, threads, false), serial,
                        "hang t=" + std::to_string(threads));
}

TEST(ParallelTick, ThreadCountClamping)
{
    // sim_threads is clamped to the unit count, and an icnt_latency of 0
    // forces the serial loop (the commit-phase request arbitration relies
    // on pushes becoming visible next cycle).
    GpuConfig config{};
    config.simThreads = 4;
    EXPECT_EQ(gcl::sim::Gpu(config).effectiveSimThreads(), 4u);

    config.icntLatency = 0;
    EXPECT_EQ(gcl::sim::Gpu(config).effectiveSimThreads(), 1u);

    config = GpuConfig{};
    config.simThreads = 1000;  // more threads than units
    EXPECT_EQ(gcl::sim::Gpu(config).effectiveSimThreads(),
              config.numSms + config.numPartitions);
}

} // namespace
