/**
 * @file
 * Configuration tests: occupancy limits, the fingerprint used by the bench
 * run-cache, and the partition address map (baseline + semi-global L2).
 */

#include <gtest/gtest.h>

#include <set>

#include "guard/sim_error.hh"
#include "sim/config.hh"
#include "sim/gpu.hh"

namespace
{

using namespace gcl::sim;

TEST(Config, TableIIDefaults)
{
    GpuConfig config;
    EXPECT_EQ(config.numSms, 15u);
    EXPECT_EQ(config.warpSize, 32u);
    EXPECT_EQ(config.maxThreadsPerSm, 1536u);
    EXPECT_EQ(config.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(config.l1.assoc, 4u);
    EXPECT_EQ(config.l1.mshrEntries, 64u);
    EXPECT_EQ(config.l1.numSets(), 32u);
    EXPECT_EQ(config.l2.sizeBytes, 128u * 1024);
    EXPECT_EQ(config.numPartitions * config.l2.sizeBytes, 768u * 1024);
    EXPECT_EQ(config.ropLatency, 120u);
    EXPECT_EQ(config.dramLatency, 100u);
}

TEST(Config, OccupancyLimitedByThreads)
{
    GpuConfig config;
    EXPECT_EQ(config.ctasPerSm(256, 0), 6u);    // 1536/256
    EXPECT_EQ(config.ctasPerSm(1536, 0), 1u);
    EXPECT_EQ(config.ctasPerSm(64, 0), 8u);     // capped by maxCtasPerSm
}

TEST(Config, OccupancyLimitedBySharedMemory)
{
    GpuConfig config;  // 48KB shared memory per SM
    EXPECT_EQ(config.ctasPerSm(128, 16 * 1024), 3u);
    EXPECT_EQ(config.ctasPerSm(128, 48 * 1024), 1u);
}

TEST(Config, OversizedCtaRejected)
{
    // An impossible launch shape invalidates that workload's run only
    // (SimError{Workload}), so sweep siblings keep going.
    GpuConfig config;
    try {
        config.ctasPerSm(2048, 0);
        FAIL() << "oversized CTA accepted";
    } catch (const gcl::SimError &e) {
        EXPECT_EQ(e.kind(), gcl::SimError::Kind::Workload);
        EXPECT_NE(e.message().find("unsupported"), std::string::npos);
    }
    EXPECT_THROW(config.ctasPerSm(32, 64 * 1024), gcl::SimError);
}

TEST(Config, UnloadedLatenciesCompose)
{
    GpuConfig config;
    EXPECT_EQ(config.unloadedL2Latency(),
              2 * config.icntLatency + config.ropLatency);
    EXPECT_EQ(config.unloadedDramLatency(),
              config.unloadedL2Latency() + config.dramLatency);
}

TEST(Config, FingerprintDetectsEveryAblationKnob)
{
    const GpuConfig base;
    std::set<uint64_t> prints{base.fingerprint()};

    GpuConfig a = base;
    a.ctaSched = CtaSchedPolicy::Clustered;
    EXPECT_TRUE(prints.insert(a.fingerprint()).second);

    GpuConfig b = base;
    b.smsPerL2Cluster = 5;
    EXPECT_TRUE(prints.insert(b.fingerprint()).second);

    GpuConfig c = base;
    c.nondetSplitRequests = 4;
    EXPECT_TRUE(prints.insert(c.fingerprint()).second);

    GpuConfig d = base;
    d.l1.sizeBytes *= 2;
    EXPECT_TRUE(prints.insert(d.fingerprint()).second);

    GpuConfig e = base;
    e.warpSched = WarpSchedPolicy::GreedyThenOldest;
    EXPECT_TRUE(prints.insert(e.fingerprint()).second);

    GpuConfig f = base;
    f.opTiming[static_cast<size_t>(OpClass::FpDiv)] = {32, 4};
    EXPECT_TRUE(prints.insert(f.fingerprint()).second);

    GpuConfig g = base;
    g.dramRowBytes = 1024;
    EXPECT_TRUE(prints.insert(g.fingerprint()).second);

    GpuConfig h = base;
    h.machineName = "not-c2050";
    EXPECT_TRUE(prints.insert(h.fingerprint()).second);

    // Identical config -> identical fingerprint.
    EXPECT_EQ(GpuConfig{}.fingerprint(), base.fingerprint());
}

TEST(Config, DescribeMentionsKeyParameters)
{
    GpuConfig config;
    config.smsPerL2Cluster = 5;
    config.nondetSplitRequests = 4;
    const std::string text = config.describe();
    EXPECT_NE(text.find("15 SMs"), std::string::npos);
    EXPECT_NE(text.find("16KB"), std::string::npos);
    EXPECT_NE(text.find("Semi-L2"), std::string::npos);
    EXPECT_NE(text.find("WarpSplit"), std::string::npos);
}

TEST(PartitionMap, BaselineStripesAcrossAllPartitions)
{
    GpuConfig config;
    std::set<int> seen;
    for (uint64_t line = 0; line < 64; ++line)
        seen.insert(Gpu::mapPartition(line * 128, 0, config));
    EXPECT_EQ(seen.size(), config.numPartitions);
    // SM id must not matter in the baseline.
    for (uint64_t line = 0; line < 16; ++line)
        EXPECT_EQ(Gpu::mapPartition(line * 128, 0, config),
                  Gpu::mapPartition(line * 128, 14, config));
}

TEST(PartitionMap, SemiGlobalClustersConfineTraffic)
{
    GpuConfig config;
    config.smsPerL2Cluster = 5;  // 3 clusters, 2 partitions each
    for (int sm = 0; sm < 15; ++sm) {
        const int cluster = sm / 5;
        std::set<int> seen;
        for (uint64_t line = 0; line < 64; ++line)
            seen.insert(Gpu::mapPartition(line * 128, sm, config));
        EXPECT_EQ(seen.size(), 2u) << "sm " << sm;
        for (int part : seen) {
            EXPECT_GE(part, cluster * 2) << "sm " << sm;
            EXPECT_LT(part, cluster * 2 + 2) << "sm " << sm;
        }
    }
}

} // namespace
