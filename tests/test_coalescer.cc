/**
 * @file
 * Coalescer unit and property tests (Section VI: the coalescer sits before
 * the L1 and folds a warp's lane addresses into 128B transactions).
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/coalescer.hh"
#include "util/rng.hh"

namespace
{

using gcl::Rng;
using gcl::sim::coalesce;

using Addrs = std::vector<std::pair<unsigned, uint64_t>>;

Addrs
lanes(std::initializer_list<uint64_t> addrs)
{
    Addrs out;
    unsigned lane = 0;
    for (uint64_t a : addrs)
        out.emplace_back(lane++, a);
    return out;
}

TEST(Coalescer, FullyCoalescedWarpIsOneRequest)
{
    Addrs addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, 0x1000 + lane * 4);
    const auto lines = coalesce(addrs, 4, 128);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalescer, MisalignedSequentialSpansTwoLines)
{
    Addrs addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, 0x1040 + lane * 4);  // straddles 0x1080
    const auto lines = coalesce(addrs, 4, 128);
    EXPECT_EQ(lines.size(), 2u);
}

TEST(Coalescer, EightByteAccessesNeedTwoLines)
{
    Addrs addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, 0x2000 + lane * 8);
    const auto lines = coalesce(addrs, 8, 128);
    EXPECT_EQ(lines.size(), 2u);
}

TEST(Coalescer, ByteAccessesPackTightly)
{
    Addrs addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, 0x3000 + lane);
    const auto lines = coalesce(addrs, 1, 128);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(Coalescer, Stride128IsFullyDiverged)
{
    Addrs addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, uint64_t{lane} * 128);
    EXPECT_EQ(coalesce(addrs, 4, 128).size(), 32u);
}

TEST(Coalescer, UniformAddressIsOneRequest)
{
    Addrs addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, 0x4000);
    EXPECT_EQ(coalesce(addrs, 4, 128).size(), 1u);
}

TEST(Coalescer, EmptyMaskProducesNothing)
{
    EXPECT_TRUE(coalesce({}, 4, 128).empty());
}

TEST(Coalescer, FirstTouchOrderIsPreserved)
{
    const auto lines = coalesce(lanes({0x300, 0x100, 0x200, 0x110}), 4, 128);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], 0x300u);
    EXPECT_EQ(lines[1], 0x100u);
    EXPECT_EQ(lines[2], 0x200u);
}

TEST(Coalescer, StraddlingAccessCoversBothLines)
{
    // A 4-byte access at 0x7e..0x81 with 2-byte elements cannot happen for
    // aligned IR accesses, but the coalescer still covers the span.
    const auto lines = coalesce({{0, 0x7e}}, 4, 128);
    EXPECT_EQ(lines.size(), 2u);
}

/** Property sweep over random address patterns. */
class CoalescerProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CoalescerProperty, CoversExactlyTheTouchedLines)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned access_size = 1u << rng.nextBounded(4);  // 1..8
        Addrs addrs;
        std::set<uint64_t> expected;
        const unsigned active = 1 + static_cast<unsigned>(
            rng.nextBounded(32));
        for (unsigned lane = 0; lane < active; ++lane) {
            const uint64_t addr =
                rng.nextBounded(1 << 16) * access_size;  // aligned
            addrs.emplace_back(lane, addr);
            expected.insert(addr / 128 * 128);
            expected.insert((addr + access_size - 1) / 128 * 128);
        }
        const auto lines = coalesce(addrs, access_size, 128);
        // No duplicates.
        const std::set<uint64_t> got(lines.begin(), lines.end());
        ASSERT_EQ(got.size(), lines.size());
        // Exactly the touched lines.
        ASSERT_EQ(got, expected);
        // Never more requests than lanes * 2 nor fewer than 1.
        ASSERT_GE(lines.size(), 1u);
        ASSERT_LE(lines.size(), size_t{active} * 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescerProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
