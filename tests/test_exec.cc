/**
 * @file
 * Tests for the gcl::exec job scheduler: slot ordering, the N=1 inline
 * guarantee, exception capture/propagation, pool reuse, and the job-count
 * policy. These are also the tests scripts/check.sh runs under
 * ThreadSanitizer (`--tsan`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/scheduler.hh"

namespace
{

using gcl::exec::ThreadPool;
using gcl::exec::hardwareThreads;
using gcl::exec::parallelFor;
using gcl::exec::parallelMap;
using gcl::exec::resolveJobs;

TEST(Exec, HardwareThreadsIsPositive)
{
    EXPECT_GE(hardwareThreads(), 1u);
}

TEST(Exec, ResolveJobsPrecedence)
{
    unsetenv("GCL_TEST_JOBS");
    EXPECT_EQ(resolveJobs(5, "GCL_TEST_JOBS"), 5u);     // explicit wins
    EXPECT_EQ(resolveJobs(0, "GCL_TEST_JOBS"), 1u);     // fallback
    EXPECT_EQ(resolveJobs(0, "GCL_TEST_JOBS", 7), 7u);  // custom fallback

    setenv("GCL_TEST_JOBS", "3", 1);
    EXPECT_EQ(resolveJobs(0, "GCL_TEST_JOBS"), 3u);     // env fills in
    EXPECT_EQ(resolveJobs(5, "GCL_TEST_JOBS"), 5u);     // explicit beats env

    setenv("GCL_TEST_JOBS", "0", 1);
    EXPECT_EQ(resolveJobs(0, "GCL_TEST_JOBS"), hardwareThreads());
    unsetenv("GCL_TEST_JOBS");

    // fallback 0 = one job per hardware thread
    EXPECT_EQ(resolveJobs(0, nullptr, 0), hardwareThreads());
}

TEST(Exec, InlineWhenSingleJobPreservesOrder)
{
    std::vector<size_t> order;
    parallelFor(1, 6, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Exec, InlineExceptionStopsLaterIndices)
{
    // jobs=1 must behave exactly like the plain serial loop: the throw at
    // index 2 propagates immediately and indices 3+ never run.
    std::vector<size_t> ran;
    EXPECT_THROW(parallelFor(1, 6,
                             [&](size_t i) {
                                 if (i == 2)
                                     throw std::runtime_error("job 2");
                                 ran.push_back(i);
                             }),
                 std::runtime_error);
    EXPECT_EQ(ran, (std::vector<size_t>{0, 1}));
}

TEST(Exec, ParallelFillsEverySlot)
{
    constexpr size_t kCount = 100;
    const auto squares = parallelMap<size_t>(
        4, kCount, [](size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), kCount);
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(squares[i], i * i) << "slot " << i;
}

TEST(Exec, ParallelResultsIndependentOfJobCount)
{
    const auto serial = parallelMap<int>(
        1, 31, [](size_t i) { return static_cast<int>(3 * i + 1); });
    for (unsigned jobs : {2u, 3u, 8u, 64u}) {
        const auto parallel = parallelMap<int>(
            jobs, 31, [](size_t i) { return static_cast<int>(3 * i + 1); });
        EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
    }
}

TEST(Exec, LowestIndexExceptionWins)
{
    // Several jobs throw; regardless of which thread finishes first, the
    // rethrown exception is the lowest-index one, so failures are
    // reported deterministically.
    for (int repeat = 0; repeat < 10; ++repeat) {
        try {
            parallelFor(4, 16, [](size_t i) {
                if (i == 3 || i == 7 || i == 12)
                    throw std::runtime_error("job " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 3");
        }
    }
}

TEST(Exec, AllJobsRunDespiteExceptions)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(4, 20,
                             [&](size_t i) {
                                 ran.fetch_add(1);
                                 if (i == 0)
                                     throw std::runtime_error("job 0");
                             }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 20);
}

TEST(Exec, MoreJobsThanWorkIsFine)
{
    std::atomic<int> sum{0};
    parallelFor(16, 3, [&](size_t i) {
        sum.fetch_add(static_cast<int>(i) + 1);
    });
    EXPECT_EQ(sum.load(), 6);
}

TEST(Exec, ZeroCountIsANoop)
{
    parallelFor(4, 0, [](size_t) { FAIL() << "must not run"; });
}

TEST(Exec, PoolDrainsQueueAndIsReusable)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.numThreads(), 3u);

    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(Exec, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
}

TEST(Exec, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait(): the destructor must finish the queue before joining.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(Exec, ResultSlotsSeeNoTornWrites)
{
    // Each job writes a multi-word value into its own slot; after wait()
    // the main thread must observe every write fully (the scheduler's
    // happens-before contract).
    struct Wide
    {
        uint64_t a = 0, b = 0, c = 0;
    };
    const auto out = parallelMap<Wide>(8, 200, [](size_t i) {
        Wide w;
        w.a = i;
        w.b = i * 2;
        w.c = i * 3;
        return w;
    });
    for (size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].a, i);
        EXPECT_EQ(out[i].b, i * 2);
        EXPECT_EQ(out[i].c, i * 3);
    }
}

} // namespace
