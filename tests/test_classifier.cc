/**
 * @file
 * Tests for the paper's core contribution: backward-dataflow load
 * classification (Section V). Each test constructs an addressing pattern
 * and checks the resulting class, including the paper's own Code 1 example.
 */

#include <gtest/gtest.h>

#include "core/classifier.hh"
#include "ptx/builder.hh"
#include "workloads/workload.hh"

namespace
{

using namespace gcl;
using namespace gcl::ptx;
using core::LoadClass;
using core::LoadClassifier;
using DT = DataType;

/** tid-indexed array access: a[f(tid, ctaid)] -> deterministic. */
TEST(Classifier, ThreadIndexedLoadIsDeterministic)
{
    KernelBuilder b("k", 1);
    Reg tid = b.globalTidX();
    Reg base = b.ldParam(0);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(base, tid, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 1u);
    EXPECT_EQ(c.globalLoads()[0].cls, LoadClass::Deterministic);
    EXPECT_TRUE(c.globalLoads()[0].slice.sources.param);
    EXPECT_TRUE(c.globalLoads()[0].slice.sources.specialReg);
    EXPECT_FALSE(c.globalLoads()[0].slice.dependsOnMemory());
}

/** a[b[i]] gather -> non-deterministic. */
TEST(Classifier, LoadedIndexIsNonDeterministic)
{
    KernelBuilder b("k", 2);
    Reg tid = b.globalTidX();
    Reg p_idx = b.ldParam(0);
    Reg p_data = b.ldParam(1);
    Reg idx = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_idx, tid, 4));
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_data, idx, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 2u);
    EXPECT_EQ(c.globalLoads()[0].cls, LoadClass::Deterministic);
    EXPECT_EQ(c.globalLoads()[1].cls, LoadClass::NonDeterministic);
    // The tainting pc is the index load.
    ASSERT_EQ(c.globalLoads()[1].slice.taintingPcs.size(), 1u);
    EXPECT_EQ(c.globalLoads()[1].slice.taintingPcs[0],
              c.globalLoads()[0].pc);
}

/** Arbitrarily long arithmetic chains keep determinism. */
TEST(Classifier, ArithmeticChainPreservesDeterminism)
{
    KernelBuilder b("k", 2);
    Reg tid = b.globalTidX();
    Reg n = b.ldParam(1);
    Reg x = b.mul(DT::U32, tid, 12);
    x = b.add(DT::U32, x, n);
    x = b.shl(DT::U32, x, 2);
    x = b.xor_(DT::U32, x, 0x55);
    x = b.rem(DT::U32, x, n);
    Reg base = b.ldParam(0);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(base, x, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 1u);
    EXPECT_EQ(c.globalLoads()[0].cls, LoadClass::Deterministic);
}

/** An address fed by a shared-memory load is non-deterministic. */
TEST(Classifier, SharedLoadTaintsAddress)
{
    KernelBuilder b("k", 1, 128);
    Reg zero = b.mov(DT::U64, 0);
    Reg idx = b.ld(MemSpace::Shared, DT::U32, zero);
    Reg base = b.ldParam(0);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(base, idx, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 1u);
    EXPECT_EQ(c.globalLoads()[0].cls, LoadClass::NonDeterministic);
    EXPECT_TRUE(c.globalLoads()[0].slice.sources.dataLoad);
}

/** An address fed by an atomic's return value is non-deterministic. */
TEST(Classifier, AtomicReturnTaintsAddress)
{
    KernelBuilder b("k", 2);
    Reg counter = b.ldParam(0);
    Reg slot = b.atom(AtomOp::Add, DT::U32, counter, 1);
    Reg base = b.ldParam(1);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(base, slot, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 1u);
    EXPECT_EQ(c.globalLoads()[0].cls, LoadClass::NonDeterministic);
    EXPECT_TRUE(c.globalLoads()[0].slice.sources.atomic);
}

/** Loop induction variable from a constant bound stays deterministic. */
TEST(Classifier, DeterministicLoopInduction)
{
    KernelBuilder b("k", 2);
    Reg base = b.ldParam(0);
    Reg n = b.ldParam(1);
    Reg i = b.mov(DT::U32, 0);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg fin = b.setp(CmpOp::Ge, DT::U32, i, n);
    b.braIf(fin, done);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(base, i, 4));
    b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    b.bra(loop);
    b.place(done);
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 1u);
    EXPECT_EQ(c.globalLoads()[0].cls, LoadClass::Deterministic);
}

/** Loop bound loaded from memory taints the induction variable (spmv). */
TEST(Classifier, LoadedLoopBoundTaintsInduction)
{
    KernelBuilder b("k", 2);
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg tid = b.globalTidX();
    Reg start =
        b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_row, tid, 4));
    Reg end =
        b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_row, tid, 4), 4);
    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg fin = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(fin, done);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));
    b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    b.bra(loop);
    b.place(done);
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 3u);
    EXPECT_EQ(c.globalLoads()[0].cls, LoadClass::Deterministic);  // start
    EXPECT_EQ(c.globalLoads()[1].cls, LoadClass::Deterministic);  // end
    EXPECT_EQ(c.globalLoads()[2].cls, LoadClass::NonDeterministic);
}

/** Merging deterministic and tainted definitions is conservative. */
TEST(Classifier, BranchMergeIsConservative)
{
    KernelBuilder b("k", 2);
    Reg p_data = b.ldParam(0);
    Reg tid = b.globalTidX();
    Reg idx = b.mov(DT::U32, tid);
    Reg cond = b.setp(CmpOp::Eq, DT::U32, tid, 0);
    Label merge = b.newLabel();
    b.braIf(cond, merge);
    {
        // One path overwrites idx with a loaded value.
        Reg loaded =
            b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_data, tid, 4));
        b.assign(DT::U32, idx, loaded);
    }
    b.place(merge);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_data, idx, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    ASSERT_EQ(c.globalLoads().size(), 2u);
    EXPECT_EQ(c.globalLoads()[1].cls, LoadClass::NonDeterministic);
}

/** selp mixing a loaded value into an address taints it. */
TEST(Classifier, SelpPropagatesTaint)
{
    KernelBuilder b("k", 2);
    Reg p_data = b.ldParam(0);
    Reg tid = b.globalTidX();
    Reg loaded =
        b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_data, tid, 4));
    Reg p = b.setp(CmpOp::Gt, DT::U32, tid, 16);
    Reg idx = b.selp(DT::U32, loaded, tid, p);
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_data, idx, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    EXPECT_EQ(c.globalLoads()[1].cls, LoadClass::NonDeterministic);
}

/** A loaded VALUE that never feeds an address leaves loads deterministic. */
TEST(Classifier, LoadedValueWithoutAddressUseStaysDeterministic)
{
    KernelBuilder b("k", 2);
    Reg p_a = b.ldParam(0);
    Reg p_b = b.ldParam(1);
    Reg tid = b.globalTidX();
    Reg v = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_a, tid, 4));
    Reg w = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_b, tid, 4));
    Reg sum = b.add(DT::F32, v, w);
    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_a, tid, 4), sum);
    Kernel k = b.build();

    LoadClassifier c(k);
    EXPECT_EQ(c.numDeterministic(), 2u);
    EXPECT_EQ(c.numNonDeterministic(), 0u);
}

TEST(Classifier, ReportMentionsEveryLoad)
{
    KernelBuilder b("k", 2);
    Reg tid = b.globalTidX();
    Reg p_idx = b.ldParam(0);
    Reg idx = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_idx, tid, 4));
    (void)b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_idx, idx, 4));
    Kernel k = b.build();

    LoadClassifier c(k);
    const std::string report = c.report();
    EXPECT_NE(report.find("deterministic"), std::string::npos);
    EXPECT_NE(report.find("non-deterministic"), std::string::npos);
}

TEST(Classifier, ClassOfPanicsOnNonLoadPc)
{
    KernelBuilder b("k", 1);
    Reg tid = b.globalTidX();
    (void)b.ld(MemSpace::Global, DT::U32,
               b.elemAddr(b.ldParam(0), tid, 4));
    Kernel k = b.build();
    LoadClassifier c(k);
    EXPECT_DEATH(c.classOf(0), "not a global load");
}

/** Paper Code 1: the bfs kernels classify exactly as Section V describes. */
TEST(Classifier, PaperCode1BfsClassification)
{
    const auto kernels = workloads::byName("bfs").kernels();
    ASSERT_EQ(kernels.size(), 2u);

    // Expansion kernel: mask/rowPtr/rowPtr+4/cost deterministic;
    // edges[i] and visited[id] non-deterministic.
    LoadClassifier expand(kernels[0]);
    EXPECT_EQ(expand.numDeterministic(), 4u);
    EXPECT_EQ(expand.numNonDeterministic(), 2u);

    // Commit kernel: all loads tid-indexed.
    LoadClassifier commit(kernels[1]);
    EXPECT_EQ(commit.numNonDeterministic(), 0u);
    EXPECT_GT(commit.numDeterministic(), 0u);
}

/** Every linear/image workload except spmv is statically deterministic. */
TEST(Classifier, WorkloadStaticMixesMatchThePaper)
{
    for (const auto &workload : workloads::all()) {
        size_t nondet = 0, total = 0;
        for (const auto &kernel : workload.kernels()) {
            LoadClassifier c(kernel);
            nondet += c.numNonDeterministic();
            total += c.globalLoads().size();
        }
        if (workload.name == "spmv" ||
            workload.category == workloads::Category::Graph) {
            EXPECT_GT(nondet, 0u) << workload.name;
        } else {
            EXPECT_EQ(nondet, 0u) << workload.name;
        }
        EXPECT_GT(total, 0u) << workload.name;
    }
}

} // namespace
