/**
 * @file
 * Unit tests for the PTX-like IR: builder, label resolution, verifier,
 * disassembly and kernel introspection.
 */

#include <gtest/gtest.h>

#include "ptx/builder.hh"
#include "ptx/verifier.hh"

namespace
{

using namespace gcl::ptx;

TEST(Builder, EmitsInstructionsInOrder)
{
    KernelBuilder b("k", 1);
    Reg p = b.ldParam(0);
    Reg t = b.mov(DataType::U32, SpecialReg::TidX);
    Reg a = b.add(DataType::U32, t, 5);
    (void)b.ld(MemSpace::Global, DataType::U32, b.elemAddr(p, a, 4));
    Kernel k = b.build();

    ASSERT_GE(k.size(), 5u);
    EXPECT_EQ(k.inst(0).op, Opcode::LdParam);
    EXPECT_EQ(k.inst(1).op, Opcode::Mov);
    EXPECT_EQ(k.inst(2).op, Opcode::Add);
    // build() appends a trailing exit.
    EXPECT_TRUE(k.insts().back().isExit());
}

TEST(Builder, FreshRegistersAreDistinct)
{
    KernelBuilder b("k", 0);
    Reg r1 = b.mov(DataType::U32, 1);
    Reg r2 = b.mov(DataType::U32, 2);
    Reg r3 = b.add(DataType::U32, r1, r2);
    EXPECT_NE(r1.id, r2.id);
    EXPECT_NE(r2.id, r3.id);
}

TEST(Builder, LabelResolutionForwardAndBackward)
{
    KernelBuilder b("k", 0);
    Label top = b.newLabel();
    Label out = b.newLabel();
    b.place(top);
    Reg i = b.mov(DataType::U32, 0);
    Reg p = b.setp(CmpOp::Ge, DataType::U32, i, 10);
    b.braIf(p, out);        // forward branch
    b.bra(top);             // backward branch
    b.place(out);
    Kernel k = b.build();

    // The conditional branch targets the final exit; the unconditional
    // branch targets pc 0.
    const auto &insts = k.insts();
    int cond = -1, uncond = -1;
    for (size_t pc = 0; pc < insts.size(); ++pc) {
        if (insts[pc].isBranch()) {
            if (insts[pc].guarded)
                cond = static_cast<int>(pc);
            else
                uncond = static_cast<int>(pc);
        }
    }
    ASSERT_GE(cond, 0);
    ASSERT_GE(uncond, 0);
    EXPECT_EQ(insts[static_cast<size_t>(uncond)].branchTarget, 0);
    EXPECT_TRUE(
        insts[static_cast<size_t>(
                  insts[static_cast<size_t>(cond)].branchTarget)]
            .isExit());
}

TEST(Builder, GlobalTidXLowersToMad)
{
    KernelBuilder b("k", 0);
    (void)b.globalTidX();
    Kernel k = b.build();
    EXPECT_EQ(k.inst(0).op, Opcode::Mad);
    EXPECT_TRUE(k.inst(0).srcs[0].isSpecial());
    EXPECT_EQ(k.inst(0).srcs[0].sreg, SpecialReg::CtaIdX);
}

TEST(Builder, ElemAddrScalesByPowerOfTwo)
{
    KernelBuilder b("k", 1);
    Reg base = b.ldParam(0);
    Reg idx = b.mov(DataType::U32, 3);
    (void)b.elemAddr(base, idx, 8);
    Kernel k = b.build();
    // cvt, shl(3), add
    bool saw_shl = false;
    for (const auto &inst : k.insts())
        if (inst.op == Opcode::Shl && inst.srcs[1].isImm() &&
            inst.srcs[1].imm == 3)
            saw_shl = true;
    EXPECT_TRUE(saw_shl);
}

TEST(Builder, ElemAddrSizeOneSkipsShift)
{
    KernelBuilder b("k", 1);
    Reg base = b.ldParam(0);
    (void)b.elemAddr(base, b.mov(DataType::U32, 3), 1);
    Kernel k = b.build();
    for (const auto &inst : k.insts())
        EXPECT_NE(inst.op, Opcode::Shl);
}

TEST(Builder, AccessSizeDefaultsFromType)
{
    KernelBuilder b("k", 1);
    Reg p = b.ldParam(0);
    (void)b.ld(MemSpace::Global, DataType::F64, p);
    (void)b.ld(MemSpace::Global, DataType::U32, p);
    (void)b.ld(MemSpace::Global, DataType::U32, p, 0, 1);  // byte load
    Kernel k = b.build();
    EXPECT_EQ(k.inst(1).accessSize, 8);
    EXPECT_EQ(k.inst(2).accessSize, 4);
    EXPECT_EQ(k.inst(3).accessSize, 1);
}

TEST(Builder, GlobalLoadPcsFindsOnlyGlobalLoads)
{
    KernelBuilder b("k", 1, 64);
    Reg p = b.ldParam(0);
    (void)b.ld(MemSpace::Global, DataType::U32, p);
    (void)b.ld(MemSpace::Shared, DataType::U32, b.mov(DataType::U64, 0));
    (void)b.ld(MemSpace::Global, DataType::U32, p, 4);
    Kernel k = b.build();
    const auto pcs = k.globalLoadPcs();
    ASSERT_EQ(pcs.size(), 2u);
    EXPECT_EQ(pcs[0], 1u);
    EXPECT_EQ(pcs[1], 4u);
}

TEST(Builder, ImmediateFloatsCarryBitPatterns)
{
    const Src f = immF32(1.5f);
    EXPECT_EQ(f.op.imm, 0x3fc00000u);
    const Src d = immF64(1.0);
    EXPECT_EQ(d.op.imm, 0x3ff0000000000000ull);
}

TEST(Disassembly, ReadableForms)
{
    KernelBuilder b("k", 1);
    Reg p = b.ldParam(0);
    Reg v = b.ld(MemSpace::Global, DataType::U32, p, 8);
    b.st(MemSpace::Global, DataType::U32, p, v, 12);
    Kernel k = b.build();

    EXPECT_NE(k.inst(0).toString().find("ld.param"), std::string::npos);
    EXPECT_NE(k.inst(1).toString().find("ld.global.b32"),
              std::string::npos);
    EXPECT_NE(k.inst(1).toString().find("+8"), std::string::npos);
    EXPECT_NE(k.inst(2).toString().find("st.global.b32"),
              std::string::npos);
    EXPECT_NE(k.disassemble().find(".kernel k"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormedKernel)
{
    KernelBuilder b("k", 2);
    Reg p = b.ldParam(1);
    (void)b.ld(MemSpace::Global, DataType::U32, p);
    Kernel k = b.build();
    EXPECT_TRUE(check(k).empty());
}

TEST(Verifier, FlagsBadBranchTarget)
{
    std::vector<Instruction> insts(2);
    insts[0].op = Opcode::Bra;
    insts[0].branchTarget = 99;
    insts[1].op = Opcode::Exit;
    Kernel k("bad", std::move(insts), 4, 0, 0);
    const auto problems = check(k);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("branch target"), std::string::npos);
}

TEST(Verifier, FlagsRegisterOutOfRange)
{
    std::vector<Instruction> insts(2);
    insts[0].op = Opcode::Mov;
    insts[0].type = DataType::U32;
    insts[0].dst = 9;  // numRegs below is 4
    insts[0].srcs[0] = Operand::makeImm(0);
    insts[1].op = Opcode::Exit;
    Kernel k("bad", std::move(insts), 4, 0, 0);
    EXPECT_FALSE(check(k).empty());
}

TEST(Verifier, FlagsMissingTermination)
{
    std::vector<Instruction> insts(1);
    insts[0].op = Opcode::Mov;
    insts[0].type = DataType::U32;
    insts[0].dst = 0;
    insts[0].srcs[0] = Operand::makeImm(1);
    Kernel k("bad", std::move(insts), 4, 0, 0);
    const auto problems = check(k);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.back().find("exit"), std::string::npos);
}

TEST(Verifier, FlagsBadAccessSize)
{
    std::vector<Instruction> insts(2);
    insts[0].op = Opcode::Ld;
    insts[0].space = MemSpace::Global;
    insts[0].dst = 0;
    insts[0].srcs[0] = Operand::makeReg(1);
    insts[0].accessSize = 3;
    insts[1].op = Opcode::Exit;
    Kernel k("bad", std::move(insts), 4, 0, 0);
    EXPECT_FALSE(check(k).empty());
}

TEST(InstructionPredicates, UnitRouting)
{
    Instruction i;
    i.op = Opcode::Sqrt;
    EXPECT_TRUE(i.isSfu());
    i.op = Opcode::Add;
    EXPECT_FALSE(i.isSfu());
    i.op = Opcode::Ld;
    i.space = MemSpace::Global;
    EXPECT_TRUE(i.isMemory());
    EXPECT_TRUE(i.isGlobalLoad());
    i.space = MemSpace::Shared;
    EXPECT_FALSE(i.isGlobalLoad());
    EXPECT_TRUE(i.isSharedLoad());
    i.op = Opcode::Bar;
    EXPECT_TRUE(i.isMemory());
    EXPECT_TRUE(i.isBarrier());
}

} // namespace
