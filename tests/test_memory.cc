/**
 * @file
 * Functional memory tests: paged global memory, block copies across page
 * boundaries, the allocator, and shared-memory bounds checking.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "guard/sim_error.hh"
#include "sim/memory.hh"

namespace
{

using gcl::sim::GlobalMemory;
using gcl::sim::SharedMemory;

TEST(GlobalMemoryTest, UntouchedMemoryReadsZero)
{
    GlobalMemory mem;
    EXPECT_EQ(mem.read(0x123456780, 8), 0u);
    EXPECT_EQ(mem.numPages(), 0u);  // reads allocate nothing
}

TEST(GlobalMemoryTest, ScalarRoundTripAllSizes)
{
    GlobalMemory mem;
    mem.write(0x1000, 0xab, 1);
    mem.write(0x1002, 0xbeef, 2);
    mem.write(0x1004, 0xdeadbeef, 4);
    mem.write(0x1008, 0x0123456789abcdefull, 8);
    EXPECT_EQ(mem.read(0x1000, 1), 0xabu);
    EXPECT_EQ(mem.read(0x1002, 2), 0xbeefu);
    EXPECT_EQ(mem.read(0x1004, 4), 0xdeadbeefu);
    EXPECT_EQ(mem.read(0x1008, 8), 0x0123456789abcdefull);
}

TEST(GlobalMemoryTest, NarrowWritesDontClobberNeighbors)
{
    GlobalMemory mem;
    mem.write(0x2000, 0xffffffffffffffffull, 8);
    mem.write(0x2002, 0, 2);
    EXPECT_EQ(mem.read(0x2000, 8), 0xffffffff0000ffffull);
}

TEST(GlobalMemoryTest, BlockCopySpansPages)
{
    GlobalMemory mem;
    // 4096-byte pages: write 10000 bytes starting near a page end.
    std::vector<uint8_t> src(10000);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<uint8_t>(i * 7);
    const uint64_t addr = 4096 - 13;
    mem.writeBlock(addr, src.data(), src.size());

    std::vector<uint8_t> dst(src.size(), 0);
    mem.readBlock(addr, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
    EXPECT_GE(mem.numPages(), 3u);
}

TEST(GlobalMemoryTest, ReadBlockOfUntouchedRangeIsZero)
{
    GlobalMemory mem;
    std::vector<uint8_t> dst(100, 0xcc);
    mem.readBlock(0x900000, dst.data(), dst.size());
    for (uint8_t byte : dst)
        EXPECT_EQ(byte, 0);
}

TEST(GlobalMemoryTest, AllocatorAlignsAndSeparates)
{
    GlobalMemory mem;
    const uint64_t a = mem.allocate(100);
    const uint64_t b = mem.allocate(1);
    const uint64_t c = mem.allocate(5000);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_EQ(c % 256, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(c, b + 1);
}

TEST(GlobalMemoryTest, MisalignedAccessIsRecoverableError)
{
    GlobalMemory mem;
    try {
        mem.read(0x1001, 4);
        FAIL() << "misaligned read accepted";
    } catch (const gcl::SimError &e) {
        EXPECT_EQ(e.kind(), gcl::SimError::Kind::Workload);
        EXPECT_EQ(e.component(), "gmem");
        EXPECT_NE(e.message().find("misaligned"), std::string::npos);
    }
    EXPECT_THROW(mem.write(0x1002, 0, 8), gcl::SimError);
}

TEST(SharedMemoryTest, RoundTripAndZeroInit)
{
    SharedMemory smem(256);
    EXPECT_EQ(smem.read(0, 4), 0u);
    smem.write(128, 0x11223344, 4);
    EXPECT_EQ(smem.read(128, 4), 0x11223344u);
    EXPECT_EQ(smem.size(), 256u);
}

TEST(SharedMemoryTest, OutOfBoundsIsRecoverableError)
{
    // A workload indexing outside its shared allocation invalidates that
    // run, not the process (gcl::guard error taxonomy).
    SharedMemory smem(64);
    try {
        smem.read(64, 4);
        FAIL() << "out-of-bounds read accepted";
    } catch (const gcl::SimError &e) {
        EXPECT_EQ(e.kind(), gcl::SimError::Kind::Workload);
        EXPECT_EQ(e.component(), "smem");
        EXPECT_NE(e.message().find("out of bounds"), std::string::npos);
    }
    EXPECT_THROW(smem.write(61, 0, 4), gcl::SimError);
}

} // namespace
