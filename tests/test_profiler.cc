/**
 * @file
 * Profiler-counter (Table III) derivation tests.
 */

#include <gtest/gtest.h>

#include "profiler/counters.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::StatsSet;
using gcl::profiler::Counters;

TEST(Profiler, DerivesFromSyntheticStats)
{
    StatsSet s;
    s.set("gload.warps.det", 100.0);
    s.set("gload.warps.nondet", 50.0);
    s.set("sload.warps", 70.0);
    s.set("l1.access.det", 90.0);
    s.set("l1.access.nondet", 60.0);
    s.set("l1.miss.det", 30.0);
    s.set("l1.miss.nondet", 40.0);
    s.set("l2.queries.p0", 11.0);
    s.set("l2.hits.p0", 4.0);
    s.set("l2.queries.p1", 22.0);
    s.set("l2.hits.p1", 8.0);

    const Counters c = Counters::fromStats(s, 2);
    EXPECT_EQ(c.gldRequest, 150.0);
    EXPECT_EQ(c.sharedLoad, 70.0);
    EXPECT_EQ(c.l1GlobalLoadHit, 80.0);
    EXPECT_EQ(c.l1GlobalLoadMiss, 70.0);
    ASSERT_EQ(c.l2ReadQueries.size(), 2u);
    EXPECT_EQ(c.l2ReadQueries[0], 11.0);
    EXPECT_EQ(c.l2ReadHits[1], 8.0);
}

TEST(Profiler, ReportNamesTableIIICounters)
{
    StatsSet s;
    const Counters c = Counters::fromStats(s, 2);
    const std::string report = c.report();
    EXPECT_NE(report.find("gld_request"), std::string::npos);
    EXPECT_NE(report.find("shared_load"), std::string::npos);
    EXPECT_NE(report.find("l1_global_load_hit"), std::string::npos);
    EXPECT_NE(report.find("l2_subp0_read_sector_queries"),
              std::string::npos);
    EXPECT_NE(report.find("l2_subp1_read_hit_sectors"), std::string::npos);
}

TEST(Profiler, CountersConsistentOnRealRun)
{
    gcl::sim::Gpu gpu;
    ASSERT_TRUE(gcl::workloads::byName("dwt").run(gpu));
    gpu.finalizeStats();
    const Counters c = Counters::fromStats(gpu.stats().set(),
                                           gpu.config().numPartitions);

    EXPECT_GT(c.gldRequest, 0.0);
    EXPECT_GT(c.sharedLoad, 0.0);          // dwt stages tiles in smem
    EXPECT_GE(c.l1GlobalLoadHit, 0.0);
    EXPECT_GT(c.l1GlobalLoadMiss, 0.0);
    double queries = 0.0, hits = 0.0;
    for (size_t p = 0; p < c.l2ReadQueries.size(); ++p) {
        queries += c.l2ReadQueries[p];
        hits += c.l2ReadHits[p];
    }
    EXPECT_GT(queries, 0.0);
    EXPECT_LE(hits, queries);
    // Every L1 miss becomes at most one L2 query (merges reduce it).
    EXPECT_LE(queries, c.l1GlobalLoadMiss + 1);
}

} // namespace
