/**
 * @file
 * Determinism of the parallel sweep: simulating applications concurrently
 * (one thread-confined SimContext per job, scheduled by gcl::exec) must
 * produce *bit-identical* stats to running them one after another on the
 * main thread. This is the property that lets `--jobs=N` be a pure
 * wall-clock optimization — every figure, cache entry and export is
 * byte-for-byte the same as a serial sweep's.
 *
 * Uses the three smallest Table I applications (~100 ms each) so the
 * double sweep stays cheap; scripts/check.sh additionally diffs whole
 * cache directories produced by --jobs=1 vs --jobs=3 bench runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/scheduler.hh"
#include "sim/config.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::exec::parallelFor;
using gcl::sim::GpuConfig;
using gcl::workloads::SimContext;
using gcl::workloads::byName;

const std::vector<std::string> kSmallApps = {"gaus", "bpr", "dwt"};

struct SweepOutput
{
    std::vector<std::string> stats;  //!< StatsSet::serialize per app
    // Deliberately not vector<bool>: its bit-packing makes writes to
    // neighboring elements a data race between sweep jobs.
    std::vector<char> verified;
};

SweepOutput
sweep(unsigned jobs, const GpuConfig &config)
{
    SweepOutput out;
    out.stats.resize(kSmallApps.size());
    out.verified.resize(kSmallApps.size());
    parallelFor(jobs, kSmallApps.size(), [&](size_t i) {
        SimContext ctx(byName(kSmallApps[i]), config);
        ctx.run();
        out.stats[i] = ctx.stats().serialize();
        out.verified[i] = ctx.verified() ? 1 : 0;
    });
    return out;
}

TEST(ParallelSweep, StatsBitIdenticalToSerial)
{
    const GpuConfig config{};
    const SweepOutput serial = sweep(1, config);
    for (size_t i = 0; i < kSmallApps.size(); ++i) {
        EXPECT_TRUE(serial.verified[i]) << kSmallApps[i];
        EXPECT_FALSE(serial.stats[i].empty()) << kSmallApps[i];
    }

    const SweepOutput parallel = sweep(3, config);
    for (size_t i = 0; i < kSmallApps.size(); ++i) {
        EXPECT_EQ(parallel.verified[i], serial.verified[i])
            << kSmallApps[i];
        EXPECT_EQ(parallel.stats[i], serial.stats[i])
            << kSmallApps[i] << ": parallel stats differ from serial";
    }
}

TEST(ParallelSweep, RepeatedParallelRunsAreIdentical)
{
    // Two concurrent sweeps back to back: any hidden cross-run state
    // (a shared RNG, accumulating stats, a leaked sink) would show up as
    // run-to-run drift even when each run matches some serial baseline.
    const GpuConfig config{};
    const SweepOutput first = sweep(3, config);
    const SweepOutput second = sweep(3, config);
    for (size_t i = 0; i < kSmallApps.size(); ++i)
        EXPECT_EQ(first.stats[i], second.stats[i]) << kSmallApps[i];
}

TEST(ParallelSweep, SameAppConcurrentlyIsIsolated)
{
    // Harsher isolation probe: N copies of the *same* application in
    // flight at once. Any shared mutable state between Gpu instances
    // (memory image, caches, stats) would make the copies diverge.
    const GpuConfig config{};
    std::vector<std::string> stats(4);
    parallelFor(4, stats.size(), [&](size_t i) {
        SimContext ctx(byName("gaus"), config);
        ctx.run();
        stats[i] = ctx.stats().serialize();
    });
    for (size_t i = 1; i < stats.size(); ++i)
        EXPECT_EQ(stats[i], stats[0]) << "copy " << i;
}

} // namespace
