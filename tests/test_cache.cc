/**
 * @file
 * Cache and MSHR unit tests: the outcome taxonomy (hit, hit-reserved,
 * miss, reservation fails), LRU replacement, reserved-line pinning, and
 * fill/merge behavior — parameterized over cache geometries.
 */

#include <gtest/gtest.h>

#include "guard/sim_error.hh"
#include "sim/cache.hh"

namespace
{

using namespace gcl::sim;

/** Pool-backed request factory shared by every test in this file. */
class CacheTest : public ::testing::Test
{
  protected:
    ReqHandle
    makeReq(uint64_t line_addr)
    {
        const ReqHandle req = pools.reqs.alloc();
        pools.reqs.get(req).lineAddr = line_addr;
        return req;
    }

    /** Walk a fill/release chain into a vector (head first). */
    std::vector<ReqHandle>
    chain(ReqHandle head)
    {
        std::vector<ReqHandle> out;
        for (ReqHandle r = head; r != kNullHandle;
             r = pools.reqs.get(r).nextWaiting)
            out.push_back(r);
        return out;
    }

    MemPools pools;
};

CacheConfig
smallConfig()
{
    // 2 sets x 2 ways x 128B lines; 2 MSHRs with merge depth 2.
    CacheConfig config;
    config.sizeBytes = 512;
    config.lineBytes = 128;
    config.assoc = 2;
    config.mshrEntries = 2;
    config.mshrMaxMerge = 2;
    return config;
}

TEST_F(CacheTest, ColdMissThenHitAfterFill)
{
    Cache cache("t", smallConfig(), pools);
    const ReqHandle req = makeReq(0);
    EXPECT_EQ(cache.access(req, true), AccessOutcome::Miss);
    EXPECT_FALSE(cache.isHit(0));
    const auto merged = chain(cache.fill(0));
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0], req);
    EXPECT_TRUE(cache.isHit(0));
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::Hit);
}

TEST_F(CacheTest, ReservedLineMergesSecondaryMisses)
{
    Cache cache("t", smallConfig(), pools);
    const ReqHandle first = makeReq(0);
    const ReqHandle second = makeReq(0);
    EXPECT_EQ(cache.access(first, true), AccessOutcome::Miss);
    EXPECT_EQ(cache.access(second, true), AccessOutcome::HitReserved);
    const auto merged = chain(cache.fill(0));
    ASSERT_EQ(merged.size(), 2u);
}

TEST_F(CacheTest, MergeListOverflowIsMshrFail)
{
    Cache cache("t", smallConfig(), pools);  // merge depth 2
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::Miss);
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::HitReserved);
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::FailMshr);
}

TEST_F(CacheTest, MshrExhaustionIsMshrFail)
{
    Cache cache("t", smallConfig(), pools);  // 2 MSHR entries
    // Two primary misses in different sets take both entries.
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::Miss);
    EXPECT_EQ(cache.access(makeReq(128), true), AccessOutcome::Miss);
    // Third distinct line: set has ways free but MSHRs are gone.
    EXPECT_EQ(cache.access(makeReq(256), true), AccessOutcome::FailMshr);
}

TEST_F(CacheTest, AllWaysReservedIsTagFail)
{
    auto config = smallConfig();
    config.mshrEntries = 8;  // plenty of MSHRs: isolate the tag fail
    Cache cache("t", config, pools);
    // Set 0 holds lines 0, 256, 512, ... (2 sets). Reserve both ways.
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::Miss);
    EXPECT_EQ(cache.access(makeReq(256), true), AccessOutcome::Miss);
    EXPECT_EQ(cache.access(makeReq(512), true), AccessOutcome::FailTag);
    // The other set is unaffected.
    EXPECT_EQ(cache.access(makeReq(128), true), AccessOutcome::Miss);
}

TEST_F(CacheTest, NoInterconnectSpaceIsIcntFail)
{
    Cache cache("t", smallConfig(), pools);
    EXPECT_EQ(cache.access(makeReq(0), false), AccessOutcome::FailIcnt);
    // Nothing was reserved by the failed attempt.
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::Miss);
}

TEST_F(CacheTest, FailedAccessHasNoSideEffects)
{
    Cache cache("t", smallConfig(), pools);
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::Miss);
    EXPECT_EQ(cache.access(makeReq(256), true), AccessOutcome::Miss);
    // Tag fail must not consume an MSHR or evict anything.
    EXPECT_EQ(cache.access(makeReq(512), true), AccessOutcome::FailTag);
    const auto merged0 = chain(cache.fill(0));
    EXPECT_EQ(merged0.size(), 1u);
    EXPECT_TRUE(cache.isHit(0));
}

TEST_F(CacheTest, LruEvictsLeastRecentlyUsed)
{
    Cache cache("t", smallConfig(), pools);
    // Fill both ways of set 0 with lines 0 and 256.
    cache.access(makeReq(0), true);
    cache.fill(0);
    cache.access(makeReq(256), true);
    cache.fill(256);
    // Touch line 0 so line 256 is LRU.
    EXPECT_EQ(cache.access(makeReq(0), true), AccessOutcome::Hit);
    // Miss on 512 evicts 256, not 0.
    EXPECT_EQ(cache.access(makeReq(512), true), AccessOutcome::Miss);
    cache.fill(512);
    EXPECT_TRUE(cache.isHit(0));
    EXPECT_TRUE(cache.isHit(512));
    EXPECT_FALSE(cache.isHit(256));
}

TEST_F(CacheTest, ReservedLineIsNotEvictable)
{
    Cache cache("t", smallConfig(), pools);
    // Reserve line 0 (in flight), fill line 256: both ways of set 0 used.
    cache.access(makeReq(0), true);
    cache.access(makeReq(256), true);
    cache.fill(256);
    // A new miss in set 0 must evict 256 (valid), never the reserved 0.
    EXPECT_EQ(cache.access(makeReq(512), true), AccessOutcome::Miss);
    const auto merged = chain(cache.fill(0));  // the original fill still lands
    EXPECT_EQ(merged.size(), 1u);
    EXPECT_TRUE(cache.isHit(0));
}

TEST_F(CacheTest, FillWithoutReservationIsRecoverableError)
{
    // A stray fill means the cache/MSHR handshake is broken: the run dies
    // with SimError{Invariant}, not a process abort (gcl::guard taxonomy).
    Cache cache("t", smallConfig(), pools);
    try {
        cache.fill(0);
        FAIL() << "fill without a reservation accepted";
    } catch (const gcl::SimError &e) {
        EXPECT_EQ(e.kind(), gcl::SimError::Kind::Invariant);
        EXPECT_EQ(e.component(), "t");
        EXPECT_NE(e.message().find("not reserved"), std::string::npos);
    }
}

/** Parameterized sweep: geometry invariants hold across shapes. */
class CacheGeometry
    : public CacheTest,
      public ::testing::WithParamInterface<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometry, FillsWholeCapacityWithoutEviction)
{
    const auto [size_kb, assoc] = GetParam();
    CacheConfig config;
    config.sizeBytes = size_kb * 1024;
    config.lineBytes = 128;
    config.assoc = assoc;
    config.mshrEntries = 4096;
    config.mshrMaxMerge = 4;
    Cache cache("t", config, pools);

    const uint32_t lines = config.sizeBytes / config.lineBytes;
    for (uint32_t i = 0; i < lines; ++i) {
        ASSERT_EQ(cache.access(makeReq(uint64_t{i} * 128), true),
                  AccessOutcome::Miss);
        cache.fill(uint64_t{i} * 128);
    }
    // Every line still hits: the cache held its full capacity.
    for (uint32_t i = 0; i < lines; ++i)
        ASSERT_EQ(cache.access(makeReq(uint64_t{i} * 128), true),
                  AccessOutcome::Hit);
    // One more distinct line evicts exactly one resident line.
    ASSERT_EQ(cache.access(makeReq(uint64_t{lines} * 128), true),
              AccessOutcome::Miss);
    cache.fill(uint64_t{lines} * 128);
    uint32_t hits = 0;
    for (uint32_t i = 0; i <= lines; ++i)
        hits += cache.isHit(uint64_t{i} * 128);
    EXPECT_EQ(hits, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(16u, 4u),    // the L1D shape
                      std::make_tuple(128u, 8u),   // the L2 slice shape
                      std::make_tuple(4u, 1u),     // direct mapped
                      std::make_tuple(8u, 2u),
                      std::make_tuple(64u, 16u)));

using MshrTest = CacheTest;

TEST_F(MshrTest, LifecycleAndLimits)
{
    Mshr mshr(2, 3, pools);
    EXPECT_FALSE(mshr.full());
    EXPECT_FALSE(mshr.hasEntry(0));

    mshr.allocate(0, makeReq(0));
    EXPECT_TRUE(mshr.hasEntry(0));
    EXPECT_TRUE(mshr.canMerge(0));
    mshr.merge(0, makeReq(0));
    mshr.merge(0, makeReq(0));
    EXPECT_FALSE(mshr.canMerge(0));  // merge depth 3 reached

    mshr.allocate(128, makeReq(128));
    EXPECT_TRUE(mshr.full());

    const auto released = chain(mshr.release(0));
    EXPECT_EQ(released.size(), 3u);
    EXPECT_FALSE(mshr.hasEntry(0));
    EXPECT_FALSE(mshr.full());
}

TEST_F(MshrTest, DoubleAllocateIsRecoverableError)
{
    Mshr mshr(4, 4, pools);
    mshr.allocate(0, makeReq(0));
    try {
        mshr.allocate(0, makeReq(0));
        FAIL() << "double allocate accepted";
    } catch (const gcl::SimError &e) {
        EXPECT_EQ(e.kind(), gcl::SimError::Kind::Invariant);
        EXPECT_NE(e.message().find("double allocate"), std::string::npos);
    }
}

} // namespace
