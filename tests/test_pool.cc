/**
 * @file
 * HandlePool unit tests: alloc/free lifecycle, LIFO slot reuse,
 * generation bumping across reuse, exhaustion behavior, and — in
 * checked builds (GCL_POOL_CHECKED, wired into the ASan preset) — the
 * stale-handle panics that turn use-after-free and double-free into
 * immediate failures at the offending dereference.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/mem_request.hh"
#include "util/pool.hh"

namespace
{

using gcl::HandlePool;
using gcl::kNullHandle;
using gcl::PoolHandle;

TEST(Pool, AllocReturnsDistinctLiveHandles)
{
    HandlePool<uint64_t> pool("t");
    const PoolHandle a = pool.alloc();
    const PoolHandle b = pool.alloc();
    EXPECT_NE(a, kNullHandle);
    EXPECT_NE(b, kNullHandle);
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.live(), 2u);

    pool.get(a) = 11;
    pool.get(b) = 22;
    EXPECT_EQ(pool.get(a), 11u);
    EXPECT_EQ(pool.get(b), 22u);
}

TEST(Pool, ObjectsAreDefaultInitializedOnAlloc)
{
    HandlePool<gcl::sim::MemRequest> pool("t");
    const PoolHandle first = pool.alloc();
    pool.get(first).lineAddr = 0xdead;
    pool.get(first).nextWaiting = 7;
    pool.get(first).nextWaitingL2 = 9;
    pool.free(first);

    // The recycled slot must come back value-initialized, not with the
    // previous occupant's fields.
    const PoolHandle second = pool.alloc();
    EXPECT_EQ(pool.get(second).lineAddr, 0u);
    EXPECT_EQ(pool.get(second).nextWaiting, kNullHandle);
    EXPECT_EQ(pool.get(second).nextWaitingL2, kNullHandle);
}

TEST(Pool, FreeThenAllocReusesTheSlotWithoutGrowing)
{
    HandlePool<uint64_t> pool("t");
    std::vector<PoolHandle> handles;
    for (int i = 0; i < 100; ++i)
        handles.push_back(pool.alloc());
    EXPECT_EQ(pool.capacity(), 100u);

    // Steady-state churn: the pool reuses freed slots (LIFO, so the
    // just-freed cache-hot slot first) and the high-water mark stays put.
    for (int i = 0; i < 1000; ++i) {
        pool.free(handles.back());
        handles.back() = pool.alloc();
    }
    EXPECT_EQ(pool.capacity(), 100u);
    EXPECT_EQ(pool.live(), 100u);
}

TEST(Pool, GenerationChangesAcrossReuse)
{
    HandlePool<uint64_t> pool("t");
    const PoolHandle first = pool.alloc();
    pool.free(first);
    const PoolHandle second = pool.alloc();
    // Same slot, bumped generation: the stale handle can never compare
    // equal to the live one (until the 12-bit generation wraps).
    EXPECT_EQ(first & HandlePool<uint64_t>::kSlotMask,
              second & HandlePool<uint64_t>::kSlotMask);
    EXPECT_NE(first, second);
}

TEST(Pool, ExhaustionThrowsLengthError)
{
    // The handle encoding bounds the population; filling it must fail
    // loudly, not hand out an aliased handle. ~1M uint32 slots is cheap.
    HandlePool<uint32_t> pool("t");
    for (size_t i = 0; i < HandlePool<uint32_t>::kMaxSlots; ++i)
        pool.alloc();
    EXPECT_EQ(pool.live(), HandlePool<uint32_t>::kMaxSlots);
    EXPECT_THROW(pool.alloc(), std::length_error);
}

#if GCL_POOL_CHECKED

using PoolDeathTest = ::testing::Test;

TEST(PoolDeathTest, StaleHandleDereferencePanics)
{
    HandlePool<uint64_t> pool("t");
    const PoolHandle handle = pool.alloc();
    pool.free(handle);
    EXPECT_DEATH(pool.get(handle), "stale handle");
}

TEST(PoolDeathTest, DoubleFreePanics)
{
    HandlePool<uint64_t> pool("t");
    const PoolHandle handle = pool.alloc();
    pool.free(handle);
    EXPECT_DEATH(pool.free(handle), "stale handle");
}

TEST(PoolDeathTest, HandleFromPreviousGenerationPanics)
{
    HandlePool<uint64_t> pool("t");
    const PoolHandle stale = pool.alloc();
    pool.free(stale);
    const PoolHandle live = pool.alloc();  // same slot, new generation
    ASSERT_NE(stale, live);
    EXPECT_DEATH(pool.get(stale), "generation");
}

TEST(PoolDeathTest, NullHandleDereferencePanics)
{
    HandlePool<uint64_t> pool("t");
    EXPECT_DEATH(pool.get(kNullHandle), "null handle");
}

#endif // GCL_POOL_CHECKED

} // namespace
