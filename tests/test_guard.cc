/**
 * @file
 * gcl::guard — watchdog, recoverable SimError, deterministic fault
 * injection.
 *
 * Three layers under test:
 *  - pure units: FaultPlan parsing and seeded auto-windows, the Watchdog
 *    progress tracker, config override validation;
 *  - single runs: an injected livelock (dropfill) is caught by the
 *    watchdog with a HangReport, a cycle budget produces a timeout
 *    record, a stop fault is bit-deterministic across repeats;
 *  - the sweep: a fault targeted at one application leaves its parallel
 *    siblings byte-identical to a clean serial run.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/scheduler.hh"
#include "guard/fault.hh"
#include "guard/sim_error.hh"
#include "guard/watchdog.hh"
#include "sim/config.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::SimError;
using gcl::exec::parallelFor;
using gcl::guard::FaultKind;
using gcl::guard::FaultPlan;
using gcl::guard::Watchdog;
using gcl::sim::GpuConfig;
using gcl::workloads::SimContext;
using gcl::workloads::byName;

// ---------------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------------

TEST(FaultPlan, ParsesWindowsWithDefaults)
{
    const FaultPlan plan = FaultPlan::parse("mshr@5000+2000;stop@9");
    ASSERT_EQ(plan.windows().size(), 2u);
    EXPECT_EQ(plan.windows()[0].kind, FaultKind::MshrExhaust);
    EXPECT_EQ(plan.windows()[0].start, 5000u);
    EXPECT_EQ(plan.windows()[0].length, 2000u);
    EXPECT_EQ(plan.windows()[1].kind, FaultKind::KernelStop);
    EXPECT_EQ(plan.windows()[1].length, 1u) << "length defaults to 1";

    EXPECT_TRUE(plan.windows()[0].contains(5000));
    EXPECT_TRUE(plan.windows()[0].contains(6999));
    EXPECT_FALSE(plan.windows()[0].contains(7000)) << "half-open window";
    EXPECT_FALSE(plan.windows()[0].contains(4999));
}

TEST(FaultPlan, AppFilter)
{
    const FaultPlan plan = FaultPlan::parse("app=bpr;stop@20000");
    EXPECT_EQ(plan.app(), "bpr");
    EXPECT_TRUE(plan.appliesTo("bpr"));
    EXPECT_FALSE(plan.appliesTo("gaus"));

    const FaultPlan any = FaultPlan::parse("stop@20000");
    EXPECT_TRUE(any.appliesTo("bpr"));
    EXPECT_TRUE(any.appliesTo("gaus"));
}

TEST(FaultPlan, DescribeRoundTrips)
{
    const std::string spec = "seed=7;app=bpr;dram@100+50;icnt@300";
    const FaultPlan plan = FaultPlan::parse(spec);
    const FaultPlan again = FaultPlan::parse(plan.describe());
    EXPECT_EQ(again.describe(), plan.describe());
    EXPECT_EQ(again.windows().size(), plan.windows().size());
}

TEST(FaultPlan, RejectsBadSpecs)
{
    for (const char *bad :
         {"nosuchkind@5", "mshr", "mshr@", "mshr@x", "mshr@5+x",
          "seed=notanumber", "=5", "@5"}) {
        try {
            FaultPlan::parse(bad);
            FAIL() << "accepted bad spec: " << bad;
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), SimError::Kind::Config) << bad;
        }
    }
}

TEST(FaultPlan, AutoWindowsAreSeedDeterministic)
{
    const FaultPlan a = FaultPlan::parse("seed=42;auto=4");
    const FaultPlan b = FaultPlan::parse("seed=42;auto=4");
    const FaultPlan c = FaultPlan::parse("seed=43;auto=4");

    ASSERT_EQ(a.windows().size(), 4u);
    ASSERT_EQ(b.windows().size(), 4u);
    for (size_t i = 0; i < a.windows().size(); ++i) {
        EXPECT_EQ(a.windows()[i].kind, b.windows()[i].kind);
        EXPECT_EQ(a.windows()[i].start, b.windows()[i].start);
        EXPECT_EQ(a.windows()[i].length, b.windows()[i].length);
    }
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_NE(a.describe(), c.describe())
        << "different seeds should give different schedules";
}

// ---------------------------------------------------------------------
// Config override validation
// ---------------------------------------------------------------------

TEST(ConfigOverride, UnknownKeyIsFatalAndListsVocabulary)
{
    GpuConfig config{};
    try {
        config.applyOverride("num_smms", "32");
        FAIL() << "unknown key accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::Config);
        EXPECT_NE(e.message().find("num_smms"), std::string::npos);
        // The error must teach the valid vocabulary.
        EXPECT_NE(e.message().find("num_sms"), std::string::npos);
        EXPECT_NE(e.message().find("watchdog_budget"), std::string::npos);
    }
}

TEST(ConfigOverride, BadValueIsFatal)
{
    GpuConfig config{};
    EXPECT_THROW(config.applyOverride("num_sms", "many"), SimError);
    EXPECT_THROW(config.applyOverride("warp_sched", "fifo"), SimError);
    EXPECT_THROW(config.applyOverride("fault_plan", "bogus@@"), SimError);
}

TEST(ConfigOverride, AppliesKnownKeys)
{
    GpuConfig config{};
    config.applyOverrides(
        "num_sms=4,max_cycles=123,watchdog_interval=1024,"
        "watchdog_budget=4096,fault_plan=stop@99");
    EXPECT_EQ(config.numSms, 4);
    EXPECT_EQ(config.maxCycles, 123u);
    EXPECT_EQ(config.watchdogInterval, 1024u);
    EXPECT_EQ(config.watchdogBudget, 4096u);
    EXPECT_EQ(config.faultPlan, "stop@99");
}

TEST(ConfigOverride, FaultPlanChangesFingerprint)
{
    GpuConfig clean{};
    GpuConfig faulted{};
    faulted.applyOverride("fault_plan", "stop@99");
    EXPECT_NE(clean.fingerprint(), faulted.fingerprint())
        << "a faulted run must never share a cache entry with a clean one";
}

// ---------------------------------------------------------------------
// Watchdog unit behavior
// ---------------------------------------------------------------------

TEST(WatchdogUnit, FiresWithinOneIntervalPastBudget)
{
    Watchdog wd(100, 1000);
    wd.beginLaunch(0, 0, 0);
    uint64_t fired_at = 0;
    for (uint64_t now = 1; now <= 2000; ++now) {
        if (wd.onCycle(now, /*insts=*/0, /*reqs=*/0)) {
            fired_at = now;
            break;
        }
    }
    ASSERT_NE(fired_at, 0u) << "watchdog never fired";
    EXPECT_GE(fired_at, 1000u);
    EXPECT_LE(fired_at, 1100u) << "granularity is one check interval";
    EXPECT_EQ(wd.lastProgressCycle(), 0u);
}

TEST(WatchdogUnit, AnyCounterDeltaCountsAsProgress)
{
    Watchdog wd(100, 1000);
    wd.beginLaunch(0, 0, 0);
    uint64_t insts = 0;
    for (uint64_t now = 1; now <= 50'000; ++now) {
        if (now % 900 == 0)
            ++insts;  // slower than the budget/interval ratio, still alive
        ASSERT_FALSE(wd.onCycle(now, insts, 0)) << "fired at " << now;
    }
    // Requests completing (second counter) count too.
    wd.beginLaunch(50'000, insts, 0);
    uint64_t reqs = 0;
    for (uint64_t now = 50'001; now <= 100'000; ++now) {
        if (now % 900 == 0)
            ++reqs;
        ASSERT_FALSE(wd.onCycle(now, insts, reqs)) << "fired at " << now;
    }
}

TEST(WatchdogUnit, ZeroIntervalDisables)
{
    Watchdog wd(0, 1000);
    EXPECT_FALSE(wd.enabled());
    wd.beginLaunch(0, 0, 0);
    for (uint64_t now = 1; now <= 10'000; ++now)
        ASSERT_FALSE(wd.onCycle(now, 0, 0));
}

// ---------------------------------------------------------------------
// Whole-run behavior (SimContext catches SimError)
// ---------------------------------------------------------------------

GpuConfig
configWith(const std::string &overrides)
{
    GpuConfig config{};
    config.applyOverrides(overrides);
    return config;
}

TEST(GuardRun, DropFillLivelockIsCaughtWithHangReport)
{
    // Drop every fill arriving at an SM: the L1 MSHR entries leak and the
    // waiting warps can never retire. Without the watchdog this run would
    // spin for the full 200M-cycle default budget.
    SimContext ctx(byName("gaus"),
                   configWith("watchdog_interval=1024,watchdog_budget=50000,"
                              "fault_plan=dropfill@0+1000000000"));
    ctx.run();
    ASSERT_TRUE(ctx.failed());
    EXPECT_FALSE(ctx.verified());
    EXPECT_EQ(ctx.failure().kind, "hang");
    EXPECT_EQ(ctx.failure().component, "gpu");
    EXPECT_NE(ctx.failure().message.find("no forward progress"),
              std::string::npos);
    // The HangReport lands in the detail field: conservation counters and
    // the per-SM view of what is stuck.
    EXPECT_NE(ctx.failure().detail.find("HangReport"), std::string::npos);
    EXPECT_NE(ctx.failure().detail.find("in flight"), std::string::npos);
    EXPECT_NE(ctx.failure().detail.find("sm0"), std::string::npos);
}

TEST(GuardRun, CycleBudgetProducesTimeoutRecord)
{
    SimContext ctx(byName("gaus"), configWith("max_cycles=5000"));
    ctx.run();
    ASSERT_TRUE(ctx.failed());
    EXPECT_EQ(ctx.failure().kind, "timeout");
    EXPECT_EQ(ctx.failure().cycle, 5000u);
}

TEST(GuardRun, StopFaultIsDeterministic)
{
    const GpuConfig config = configWith("fault_plan=stop@2000");
    gcl::SimFailure failures[2];
    for (auto &failure : failures) {
        SimContext ctx(byName("gaus"), config);
        ctx.run();
        ASSERT_TRUE(ctx.failed());
        failure = ctx.failure();
    }
    EXPECT_EQ(failures[0].kind, "fault_injected");
    EXPECT_EQ(failures[0].kind, failures[1].kind);
    EXPECT_EQ(failures[0].cycle, failures[1].cycle);
    EXPECT_EQ(failures[0].message, failures[1].message);
    EXPECT_EQ(failures[0].cycle, 2000u);
}

TEST(GuardRun, SurvivableFaultIsCountedAndDeterministic)
{
    // A bounded MSHR-exhaustion window slows the run down but cannot kill
    // it: accesses retry once the window closes. The run must complete,
    // verify, export per-kind injection counts, and repeat bit-identically.
    const GpuConfig config =
        configWith("fault_plan=mshr@500+5000;icnt@1000+2000");
    std::string serialized[2];
    for (auto &out : serialized) {
        SimContext ctx(byName("gaus"), config);
        ctx.run();
        ASSERT_FALSE(ctx.failed())
            << ctx.failure().kind << ": " << ctx.failure().message;
        EXPECT_TRUE(ctx.verified());
        EXPECT_TRUE(ctx.stats().has("fault.injected.mshr"));
        EXPECT_TRUE(ctx.stats().has("fault.injected.icnt"));
        EXPECT_TRUE(ctx.stats().has("fault.injected.dropfill"));
        EXPECT_GT(ctx.stats().get("fault.injected.mshr"), 0.0);
        out = ctx.stats().serialize();
    }
    EXPECT_EQ(serialized[0], serialized[1]);
}

TEST(GuardRun, UntargetedPlanIsStrippedFromConfig)
{
    // SimContext drops an app-targeted plan from runs it does not name,
    // restoring the clean fingerprint (and so the clean cache identity).
    const GpuConfig config = configWith("fault_plan=app=bpr;stop@2000");
    SimContext other(byName("gaus"), config);
    EXPECT_TRUE(other.config().faultPlan.empty());
    EXPECT_EQ(other.config().fingerprint(), GpuConfig{}.fingerprint());

    SimContext target(byName("bpr"), config);
    EXPECT_FALSE(target.config().faultPlan.empty());
}

// ---------------------------------------------------------------------
// Sweep isolation: one failing run, byte-identical siblings
// ---------------------------------------------------------------------

TEST(GuardSweep, TargetedFaultLeavesParallelSiblingsIdentical)
{
    const std::vector<std::string> apps = {"gaus", "bpr", "dwt"};

    // Clean serial baseline.
    std::vector<std::string> baseline(apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
        SimContext ctx(byName(apps[i]), GpuConfig{});
        ctx.run();
        ASSERT_FALSE(ctx.failed()) << apps[i];
        baseline[i] = ctx.stats().serialize();
    }

    // Parallel sweep with a fault aimed only at bpr.
    const GpuConfig faulted = configWith("fault_plan=app=bpr;stop@2000");
    std::vector<std::string> stats(apps.size());
    std::vector<gcl::SimFailure> failures(apps.size());
    parallelFor(3, apps.size(), [&](size_t i) {
        SimContext ctx(byName(apps[i]), faulted);
        ctx.run();
        stats[i] = ctx.stats().serialize();
        failures[i] = ctx.failure();
    });

    for (size_t i = 0; i < apps.size(); ++i) {
        if (apps[i] == "bpr") {
            EXPECT_TRUE(failures[i].failed);
            EXPECT_EQ(failures[i].kind, "fault_injected");
        } else {
            EXPECT_FALSE(failures[i].failed) << apps[i];
            EXPECT_EQ(stats[i], baseline[i])
                << apps[i] << ": sibling of a faulted run must stay "
                              "byte-identical to a clean serial sweep";
        }
    }
}

} // namespace
