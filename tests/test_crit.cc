/**
 * @file
 * Contracts of the gcl::crit criticality profiler (src/crit):
 *
 *  - Accounting identity: every issue slot of every SM cycle is either
 *    issued or charged to exactly one stall reason, so
 *    issued + sum(stall) == cycles * issue_width holds exactly, per SM
 *    and device-wide. tools/trace_check re-verifies the same identity on
 *    every exported stats file.
 *
 *  - Attribution joins: every completed global-load warp op contributes
 *    one turnaround sample, so the per-PC turn counts sum to the
 *    existing gload warp counters.
 *
 *  - Observer effect: none. With crit on, the non-crit stats must be
 *    BYTE-identical to a crit-off run (the profiler only observes); with
 *    crit off, no crit.* key may appear and the stats must be
 *    byte-identical to the seed behavior.
 *
 *  - Determinism: the full stats (including crit.*) are byte-identical
 *    at --sim-threads 1/2/4 — per-SM shards merge in creation order,
 *    like SimStats shards. scripts/check.sh additionally diffs whole
 *    memo-cache directories and crit_report output across thread counts
 *    and --jobs.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/config.hh"
#include "util/stats.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::StatsSet;
using gcl::sim::GpuConfig;
using gcl::workloads::SimContext;
using gcl::workloads::byName;

/** Run @p app to completion and return its finalized stats. */
StatsSet
runStats(const std::string &app, bool crit, unsigned sim_threads = 1)
{
    GpuConfig config{};
    config.crit = crit;
    config.simThreads = sim_threads;
    SimContext ctx(byName(app), config);
    ctx.run();
    EXPECT_FALSE(ctx.failed()) << app << ": " << ctx.failure().message;
    EXPECT_TRUE(ctx.verified()) << app;
    return ctx.stats();
}

/** @p stats without every crit.* scalar and histogram. */
StatsSet
stripCrit(const StatsSet &stats)
{
    StatsSet out;
    for (const auto &[key, value] : stats.scalars())
        if (key.compare(0, 5, "crit.") != 0)
            out.set(key, value);
    for (const auto &[key, hist] : stats.hists())
        if (key.compare(0, 5, "crit.") != 0)
            out.hist(key).merge(hist);
    return out;
}

const char *const kReasons[] = {
    "data_hazard", "barrier",           "ibuffer_empty", "pipeline",
    "mshr_full",   "icnt_backpressure", "idle",
};

TEST(Crit, AccountingIdentityHoldsExactly)
{
    for (const char *app : {"gaus", "bpr"}) {
        const StatsSet stats = runStats(app, true);
        ASSERT_TRUE(stats.has("crit.issue_width")) << app;
        const double width = stats.get("crit.issue_width");
        ASSERT_GT(width, 0) << app;

        // Per SM: slots charged == slots offered, exactly (all values are
        // integer-valued doubles well under 2^53, so == is exact).
        unsigned sms = 0;
        for (;; ++sms) {
            const std::string prefix =
                "crit.sm" + std::to_string(sms) + '.';
            if (!stats.has(prefix + "cycles"))
                break;
            double charged = stats.get(prefix + "issued");
            for (const char *reason : kReasons)
                charged += stats.get(prefix + "stall." + reason);
            EXPECT_EQ(charged, stats.get(prefix + "cycles") * width)
                << app << " sm" << sms;
        }
        EXPECT_EQ(sms, static_cast<unsigned>(stats.get("crit.sms")))
            << app;
        EXPECT_GT(sms, 0u) << app;

        // Device-wide, same identity.
        double charged = stats.get("crit.issued");
        for (const char *reason : kReasons)
            charged += stats.get(std::string("crit.stall.") + reason);
        EXPECT_EQ(charged, stats.get("crit.cycles") * width) << app;

        // The data-hazard class split partitions the reason's total.
        EXPECT_EQ(stats.get("crit.stall.data_hazard"),
                  stats.get("crit.stall.data_hazard.det") +
                      stats.get("crit.stall.data_hazard.nondet") +
                      stats.get("crit.stall.data_hazard.other"))
            << app;
    }
}

TEST(Crit, TurnaroundCountsJoinTheGloadCounters)
{
    const StatsSet stats = runStats("gaus", true);
    double turn_cnt = 0;
    for (const auto &[key, value] : stats.scalars()) {
        if (key.compare(0, 8, "crit.pc.") != 0)
            continue;
        if (key.size() > 9 &&
            key.compare(key.size() - 9, 9, ".turn_cnt") == 0)
            turn_cnt += value;
    }
    EXPECT_EQ(turn_cnt, stats.get("gload.warps.det") +
                            stats.get("gload.warps.nondet"));
}

TEST(Crit, ProfilerIsAPureObserver)
{
    // Off: no crit key at all — the stats are the seed's stats.
    const StatsSet off = runStats("gaus", false);
    for (const auto &[key, value] : off.scalars())
        EXPECT_NE(key.compare(0, 5, "crit."), 0) << key;
    for (const auto &[key, hist] : off.hists())
        EXPECT_NE(key.compare(0, 5, "crit."), 0) << key;

    // On: strictly additive — strip crit.* and the remainder is
    // byte-identical, so attribution never perturbed the simulation.
    const StatsSet on = runStats("gaus", true);
    EXPECT_TRUE(on.has("crit.issue_width"));
    EXPECT_EQ(stripCrit(on).serialize(), off.serialize());
}

TEST(Crit, BitIdenticalAcrossSimThreads)
{
    const std::string serial = runStats("gaus", true, 1).serialize();
    EXPECT_FALSE(serial.empty());
    for (unsigned threads : {2u, 4u}) {
        EXPECT_EQ(serial, runStats("gaus", true, threads).serialize())
            << "sim_threads=" << threads
            << " changed the crit-profiled stats";
    }
}

} // namespace
