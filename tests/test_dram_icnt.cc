/**
 * @file
 * DRAM channel and interconnect unit tests: FCFS latency/bandwidth,
 * bounded queues, crossbar arbitration and ordering.
 */

#include <gtest/gtest.h>

#include "guard/sim_error.hh"
#include "sim/dram.hh"
#include "sim/interconnect.hh"

namespace
{

using namespace gcl::sim;

/** Pool-backed request factory shared by every test in this file. */
class PoolTestBase : public ::testing::Test
{
  protected:
    ReqHandle
    makeReq(int sm, int partition, uint64_t line = 0)
    {
        const ReqHandle req = pools.reqs.alloc();
        MemRequest &r = pools.reqs.get(req);
        r.smId = sm;
        r.partition = partition;
        r.lineAddr = line;
        return req;
    }

    MemRequest &get(ReqHandle req) { return pools.reqs.get(req); }

    MemPools pools;
};

using DramTest = PoolTestBase;
using IcntTest = PoolTestBase;

GpuConfig
testConfig()
{
    GpuConfig config;
    config.numSms = 4;
    config.numPartitions = 2;
    config.icntLatency = 8;
    config.icntInjectQueueDepth = 2;
    config.icntRespQueueDepth = 2;
    config.dramLatency = 100;
    config.dramBurstCycles = 4;
    config.dramQueueDepth = 3;
    return config;
}

TEST_F(DramTest, SingleRequestLatency)
{
    const auto config = testConfig();
    DramChannel dram(config, pools);
    dram.push(makeReq(0, 0), 10);
    EXPECT_FALSE(dram.headReady(10 + config.dramLatency - 1));
    EXPECT_TRUE(dram.headReady(10 + config.dramLatency));
    EXPECT_EQ(get(dram.pop()).smId, 0);
    EXPECT_TRUE(dram.empty());
    EXPECT_EQ(dram.serviced(), 1u);
}

TEST_F(DramTest, BackToBackRequestsSerializeOnTheBurst)
{
    const auto config = testConfig();
    DramChannel dram(config, pools);
    dram.push(makeReq(0, 0), 0);
    dram.push(makeReq(1, 0), 0);
    dram.push(makeReq(2, 0), 0);
    // Ready times: 100, 104, 108 (4-cycle bursts serialize service).
    EXPECT_TRUE(dram.headReady(100));
    dram.pop();
    EXPECT_FALSE(dram.headReady(103));
    EXPECT_TRUE(dram.headReady(104));
    dram.pop();
    EXPECT_TRUE(dram.headReady(108));
}

TEST_F(DramTest, IdleChannelRestartsCleanly)
{
    const auto config = testConfig();
    DramChannel dram(config, pools);
    dram.push(makeReq(0, 0), 0);
    dram.pop();
    // Much later: latency measured from arrival, not from channelFreeAt.
    dram.push(makeReq(1, 0), 1000);
    EXPECT_FALSE(dram.headReady(1099));
    EXPECT_TRUE(dram.headReady(1100));
}

TEST_F(DramTest, QueueDepthEnforced)
{
    const auto config = testConfig();  // depth 3
    DramChannel dram(config, pools);
    dram.push(makeReq(0, 0), 0);
    dram.push(makeReq(1, 0), 0);
    dram.push(makeReq(2, 0), 0);
    EXPECT_FALSE(dram.canAccept());
    // Pushing past the depth is a device-model invariant violation: it
    // fails the run with a recoverable SimError, not a process abort.
    try {
        dram.push(makeReq(3, 0), 0);
        FAIL() << "push into a full queue accepted";
    } catch (const gcl::SimError &e) {
        EXPECT_EQ(e.kind(), gcl::SimError::Kind::Invariant);
        EXPECT_EQ(e.component(), "dram");
    }
}

TEST_F(IcntTest, RequestTraversalLatency)
{
    const auto config = testConfig();
    Interconnect icnt(config, pools);
    const ReqHandle req = makeReq(1, 0);
    ASSERT_TRUE(icnt.canInject(1));
    icnt.inject(req, 5);
    EXPECT_EQ(get(req).tInjected, 5u);

    icnt.cycle(5);  // crossbar moves the flit; arrives at 5 + latency
    EXPECT_FALSE(icnt.hasRequest(0, 5 + config.icntLatency - 1));
    EXPECT_TRUE(icnt.hasRequest(0, 5 + config.icntLatency));
    EXPECT_EQ(icnt.popRequest(0, 5 + config.icntLatency), req);
    EXPECT_TRUE(icnt.idle());
}

TEST_F(IcntTest, InjectQueueDepthGivesBackpressure)
{
    const auto config = testConfig();  // depth 2
    Interconnect icnt(config, pools);
    icnt.inject(makeReq(0, 0), 0);
    icnt.inject(makeReq(0, 0), 0);
    EXPECT_FALSE(icnt.canInject(0));
    EXPECT_TRUE(icnt.canInject(1));  // per-SM queues
}

TEST_F(IcntTest, OnePartitionAcceptsOneFlitPerCycle)
{
    const auto config = testConfig();
    Interconnect icnt(config, pools);
    // Two SMs target partition 0 simultaneously.
    icnt.inject(makeReq(0, 0), 0);
    icnt.inject(makeReq(1, 0), 0);
    icnt.cycle(0);   // only one crosses
    icnt.cycle(1);   // the other crosses
    const Cycle t = 1 + config.icntLatency;
    EXPECT_TRUE(icnt.hasRequest(0, t));
    icnt.popRequest(0, t);
    EXPECT_TRUE(icnt.hasRequest(0, t));
    icnt.popRequest(0, t);
    EXPECT_FALSE(icnt.hasRequest(0, t));
}

TEST_F(IcntTest, DistinctPartitionsTransferInParallel)
{
    const auto config = testConfig();
    Interconnect icnt(config, pools);
    icnt.inject(makeReq(0, 0), 0);
    icnt.inject(makeReq(1, 1), 0);
    icnt.cycle(0);
    const Cycle t = config.icntLatency;
    EXPECT_TRUE(icnt.hasRequest(0, t));
    EXPECT_TRUE(icnt.hasRequest(1, t));
}

TEST_F(IcntTest, ResponsePathRoundTrip)
{
    const auto config = testConfig();
    Interconnect icnt(config, pools);
    const ReqHandle req = makeReq(2, 1);
    ASSERT_TRUE(icnt.canRespond(1));
    icnt.respond(req, 50);
    EXPECT_EQ(get(req).tRespDepart, 50u);
    icnt.cycle(50);
    EXPECT_TRUE(icnt.hasResponse(2, 50 + config.icntLatency));
    EXPECT_EQ(icnt.popResponse(2, 50 + config.icntLatency), req);
}

TEST_F(IcntTest, PerSmOrderIsFifo)
{
    const auto config = testConfig();
    Interconnect icnt(config, pools);
    const ReqHandle first = makeReq(0, 0, 0x100);
    const ReqHandle second = makeReq(0, 0, 0x200);
    icnt.inject(first, 0);
    icnt.inject(second, 0);
    icnt.cycle(0);
    icnt.cycle(1);
    const Cycle t = 1 + config.icntLatency;
    EXPECT_EQ(get(icnt.popRequest(0, t)).lineAddr, 0x100u);
    EXPECT_EQ(get(icnt.popRequest(0, t)).lineAddr, 0x200u);
}

TEST_F(IcntTest, RoundRobinIsFairUnderContention)
{
    const auto config = testConfig();
    Interconnect icnt(config, pools);
    // SMs 0 and 1 keep injecting to partition 0; both must make progress
    // within a bounded window.
    int delivered[2] = {0, 0};
    Cycle now = 0;
    for (int round = 0; round < 20; ++round) {
        if (icnt.canInject(0))
            icnt.inject(makeReq(0, 0), now);
        if (icnt.canInject(1))
            icnt.inject(makeReq(1, 0), now);
        icnt.cycle(now);
        const Cycle arrival = now + config.icntLatency;
        while (icnt.hasRequest(0, arrival))
            ++delivered[get(icnt.popRequest(0, arrival)).smId];
        ++now;
    }
    EXPECT_GT(delivered[0], 3);
    EXPECT_GT(delivered[1], 3);
}

} // namespace
