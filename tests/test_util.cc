/**
 * @file
 * Unit tests for the utility layer: RNG, histogram, stats container,
 * table writer, and bit utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/bitutil.hh"
#include "util/histogram.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace
{

using gcl::Histogram;
using gcl::Rng;
using gcl::StatsSet;
using gcl::Table;

TEST(BitUtil, PowerOfTwoPredicates)
{
    EXPECT_TRUE(gcl::isPowerOf2(1));
    EXPECT_TRUE(gcl::isPowerOf2(128));
    EXPECT_TRUE(gcl::isPowerOf2(uint64_t{1} << 63));
    EXPECT_FALSE(gcl::isPowerOf2(0));
    EXPECT_FALSE(gcl::isPowerOf2(3));
    EXPECT_FALSE(gcl::isPowerOf2(130));
}

TEST(BitUtil, Logarithms)
{
    EXPECT_EQ(gcl::floorLog2(1), 0u);
    EXPECT_EQ(gcl::floorLog2(2), 1u);
    EXPECT_EQ(gcl::floorLog2(3), 1u);
    EXPECT_EQ(gcl::floorLog2(128), 7u);
    EXPECT_EQ(gcl::ceilLog2(1), 0u);
    EXPECT_EQ(gcl::ceilLog2(2), 1u);
    EXPECT_EQ(gcl::ceilLog2(3), 2u);
    EXPECT_EQ(gcl::ceilLog2(128), 7u);
    EXPECT_EQ(gcl::ceilLog2(129), 8u);
}

TEST(BitUtil, Rounding)
{
    EXPECT_EQ(gcl::roundUp(0, 128), 0u);
    EXPECT_EQ(gcl::roundUp(1, 128), 128u);
    EXPECT_EQ(gcl::roundUp(128, 128), 128u);
    EXPECT_EQ(gcl::roundDown(255, 128), 128u);
    EXPECT_EQ(gcl::divCeil(10, 3), 4u);
    EXPECT_EQ(gcl::divCeil(9, 3), 3u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = rng.nextBounded(37);
        ASSERT_LT(v, 37u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(8);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 1000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int count : seen)
        EXPECT_GT(count, 50);  // roughly uniform
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(10);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(HistogramTest, MeanAndTotals)
{
    Histogram h;
    h.add(1, 2.0);
    h.add(3, 2.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_DOUBLE_EQ(h.weightAt(1), 2.0);
    EXPECT_DOUBLE_EQ(h.weightAt(2), 0.0);
}

TEST(HistogramTest, NormalizedSumsToOne)
{
    Histogram h;
    h.add(5, 1.0);
    h.add(-2, 3.0);
    h.add(100, 6.0);
    double total = 0.0;
    for (const auto &[key, frac] : h.normalized())
        total += frac;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, MergeAccumulates)
{
    Histogram a, b;
    a.add(1, 1.0);
    b.add(1, 2.0);
    b.add(2, 5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.weightAt(1), 3.0);
    EXPECT_DOUBLE_EQ(a.weightAt(2), 5.0);
    EXPECT_DOUBLE_EQ(a.totalWeight(), 8.0);
}

TEST(HistogramTest, KeysIterateInOrder)
{
    Histogram h;
    h.add(10);
    h.add(-5);
    h.add(3);
    std::vector<int64_t> keys;
    for (const auto &[key, w] : h.buckets())
        keys.push_back(key);
    EXPECT_EQ(keys, (std::vector<int64_t>{-5, 3, 10}));
}

TEST(StatsSetTest, IncAndGet)
{
    StatsSet s;
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    s.inc("x");
    s.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.5);
    EXPECT_TRUE(s.has("x"));
    EXPECT_FALSE(s.has("missing"));
}

TEST(StatsSetTest, RatioHandlesZeroDenominator)
{
    StatsSet s;
    s.set("num", 10.0);
    EXPECT_DOUBLE_EQ(s.ratio("num", "den"), 0.0);
    s.set("den", 4.0);
    EXPECT_DOUBLE_EQ(s.ratio("num", "den"), 2.5);
}

TEST(StatsSetTest, MergeAddsScalarsAndHists)
{
    StatsSet a, b;
    a.inc("x", 1.0);
    b.inc("x", 2.0);
    b.inc("y", 7.0);
    b.hist("h").add(3, 1.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 7.0);
    EXPECT_DOUBLE_EQ(a.histOrEmpty("h").weightAt(3), 1.0);
}

TEST(StatsSetTest, SerializeRoundTrips)
{
    StatsSet s;
    s.set("alpha", 1.25);
    s.set("beta", -3e17);
    s.set("tiny", 1e-300);
    s.hist("h1").add(-4, 0.5);
    s.hist("h1").add(9, 123456.75);
    s.hist("empty");

    StatsSet restored;
    ASSERT_TRUE(restored.deserialize(s.serialize()));
    EXPECT_DOUBLE_EQ(restored.get("alpha"), 1.25);
    EXPECT_DOUBLE_EQ(restored.get("beta"), -3e17);
    EXPECT_DOUBLE_EQ(restored.get("tiny"), 1e-300);
    EXPECT_DOUBLE_EQ(restored.histOrEmpty("h1").weightAt(-4), 0.5);
    EXPECT_DOUBLE_EQ(restored.histOrEmpty("h1").weightAt(9), 123456.75);
    // Round-trip again: serialization must be stable.
    EXPECT_EQ(restored.serialize(), s.serialize());
}

TEST(StatsSetTest, DeserializeRejectsGarbage)
{
    StatsSet s;
    EXPECT_FALSE(s.deserialize("x nonsense 12"));
    EXPECT_FALSE(s.deserialize("s keyonly"));
    EXPECT_FALSE(s.deserialize("h key 2 1 0.5"));  // truncated bucket list
}

TEST(TableTest, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.addRow({"alpha", Table::fmt(1.5, 2)});
    t.addRow({"b", Table::fmtInt(42)});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommas)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "1"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_NE(oss.str().find("x;y,1"), std::string::npos);
}

TEST(TableTest, FormatHelpers)
{
    EXPECT_EQ(Table::fmtPct(0.5, 1), "50.0%");
    EXPECT_EQ(Table::fmtInt(1234567), "1234567");
    EXPECT_EQ(Table::fmt(3.14159, 3), "3.142");
}

} // namespace
