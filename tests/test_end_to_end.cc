/**
 * @file
 * End-to-end integration tests: every Table I application runs on the
 * simulator and its outputs are verified against a CPU reference. These
 * are the strongest correctness anchors in the suite — they exercise the
 * IR, the functional executor, SIMT divergence, barriers, the full memory
 * timing path and the host API at once.
 *
 * Paper-shape checks (which class wins, by roughly what factor) live in
 * test_paper_shapes.cc; this file asserts functional correctness.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::sim::Gpu;
using gcl::sim::GpuConfig;

class WorkloadEndToEnd : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadEndToEnd, MatchesCpuReference)
{
    const auto &workload = gcl::workloads::byName(GetParam());
    Gpu gpu;
    EXPECT_TRUE(workload.run(gpu));
    gpu.finalizeStats();

    const auto &s = gpu.stats().set();
    EXPECT_GT(s.get("cycles"), 0.0);
    EXPECT_GT(s.get("warp_insts"), 0.0);
    EXPECT_GT(s.get("gload.warps.det") + s.get("gload.warps.nondet"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, WorkloadEndToEnd,
    ::testing::Values("2mm", "gaus", "grm", "lu", "spmv", "htw", "mriq",
                      "dwt", "bpr", "srad", "bfs", "sssp", "ccl", "mst",
                      "mis"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(EndToEnd, BfsClassDisparity)
{
    Gpu gpu;
    ASSERT_TRUE(gcl::workloads::byName("bfs").run(gpu));
    gpu.finalizeStats();
    const auto &s = gpu.stats().set();

    // bfs executes both load classes dynamically (Fig 1 shape).
    EXPECT_GT(s.get("gload.warps.det"), 0.0);
    EXPECT_GT(s.get("gload.warps.nondet"), 0.0);

    // Non-deterministic loads generate more requests per warp (Fig 2).
    const double det_rpw = s.ratio("gload.reqs.det", "gload.warps.det");
    const double nondet_rpw =
        s.ratio("gload.reqs.nondet", "gload.warps.nondet");
    EXPECT_GT(nondet_rpw, det_rpw);
}

TEST(EndToEnd, WorkloadsRunUnderClusteredCtaScheduling)
{
    GpuConfig config;
    config.ctaSched = gcl::sim::CtaSchedPolicy::Clustered;
    config.ctaClusterSize = 2;
    Gpu gpu(config);
    EXPECT_TRUE(gcl::workloads::byName("2mm").run(gpu));
}

TEST(EndToEnd, WorkloadsRunUnderSemiGlobalL2)
{
    GpuConfig config;
    config.smsPerL2Cluster = 5;
    Gpu gpu(config);
    EXPECT_TRUE(gcl::workloads::byName("bfs").run(gpu));
}

TEST(EndToEnd, WorkloadsRunUnderWarpSplitting)
{
    GpuConfig config;
    config.nondetSplitRequests = 4;
    Gpu gpu(config);
    EXPECT_TRUE(gcl::workloads::byName("spmv").run(gpu));
}

TEST(EndToEnd, WorkloadsRunUnderGtoScheduler)
{
    GpuConfig config;
    config.warpSched = gcl::sim::WarpSchedPolicy::GreedyThenOldest;
    Gpu gpu(config);
    EXPECT_TRUE(gcl::workloads::byName("dwt").run(gpu));
}

} // namespace
