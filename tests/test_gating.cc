/**
 * @file
 * Idle-unit gating must be invisible: skipping quiescent partitions and
 * the response-drain loop in Gpu's tick (config.idleGating) is a pure
 * host-side optimization, so a run with gating on must produce stats
 * BYTE-identical to the same run with every unit ticked every cycle —
 * including under injected fault pressure, where backpressure windows
 * drain and refill the very queues the gate inspects.
 *
 * This is the bit-identity proof referenced from Gpu::launch and
 * config.hh; scripts/check.sh additionally diffs whole memo-cache
 * directories produced with idle_gating=0 vs =1 sweeps.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/config.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::sim::GpuConfig;
using gcl::workloads::SimContext;
using gcl::workloads::byName;

/** Run @p app to completion and serialize its finalized stats. */
std::string
runStats(const std::string &app, bool idle_gating,
         const std::string &fault_plan = "")
{
    GpuConfig config{};
    config.idleGating = idle_gating;
    config.faultPlan = fault_plan;
    SimContext ctx(byName(app), config);
    ctx.run();
    EXPECT_FALSE(ctx.failed()) << app << ": " << ctx.failure().message;
    EXPECT_TRUE(ctx.verified()) << app;
    return ctx.stats().serialize();
}

TEST(IdleGating, StatsBitIdenticalWithGatingOnAndOff)
{
    // gaus drains its SMs and DRAM channels repeatedly between launches,
    // so the gate actually skips cycles; bpr adds atomic traffic.
    for (const char *app : {"gaus", "bpr"}) {
        const std::string gated = runStats(app, true);
        const std::string ungated = runStats(app, false);
        EXPECT_FALSE(gated.empty()) << app;
        EXPECT_EQ(gated, ungated)
            << app << ": idle gating changed the stats";
    }
}

TEST(IdleGating, StatsBitIdenticalUnderInjectedFaults)
{
    // Seeded backpressure windows (MSHR/ICNT/DRAM refusals, dropped
    // fills) repeatedly stall and drain the gated units mid-run; the
    // gate must not change when anything happens.
    const std::string plan = "seed=42;auto=3";
    const std::string gated = runStats("gaus", true, plan);
    const std::string ungated = runStats("gaus", false, plan);
    EXPECT_FALSE(gated.empty());
    EXPECT_EQ(gated, ungated)
        << "idle gating changed the stats under a fault plan";
}

} // namespace
