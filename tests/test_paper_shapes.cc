/**
 * @file
 * Paper-shape regression tests: the qualitative claims of the paper's
 * evaluation must hold on representative applications. Absolute numbers
 * differ from the paper (synthetic scaled inputs, simplified substrate) —
 * these tests pin the *shapes*: who wins, in which direction, and roughly
 * by how much. Each app is simulated once per test binary run.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::StatsSet;

/** Lazily runs and caches a handful of representative apps. */
class PaperShapes : public ::testing::Test
{
  protected:
    static const StatsSet &
    statsFor(const std::string &name)
    {
        static std::map<std::string, std::unique_ptr<StatsSet>> cache;
        auto &entry = cache[name];
        if (!entry) {
            gcl::sim::Gpu gpu;
            EXPECT_TRUE(gcl::workloads::byName(name).run(gpu))
                << name << " failed verification";
            gpu.finalizeStats();
            entry = std::make_unique<StatsSet>(gpu.stats().set());
        }
        return *entry;
    }

    static double
    reqsPerWarp(const StatsSet &s, bool non_det)
    {
        const char *sfx = non_det ? ".nondet" : ".det";
        return s.ratio(std::string("gload.reqs") + sfx,
                       std::string("gload.warps") + sfx);
    }
};

// --- Fig 1: class mix per category ---

TEST_F(PaperShapes, LinearAlgebraIsFullyDeterministicExceptSpmv)
{
    EXPECT_EQ(statsFor("2mm").get("gload.warps.nondet"), 0.0);
    EXPECT_EQ(statsFor("lu").get("gload.warps.nondet"), 0.0);
    EXPECT_GT(statsFor("spmv").get("gload.warps.nondet"), 0.0);
}

TEST_F(PaperShapes, ImageAppsAreDeterministic)
{
    EXPECT_EQ(statsFor("dwt").get("gload.warps.nondet"), 0.0);
    EXPECT_EQ(statsFor("mriq").get("gload.warps.nondet"), 0.0);
}

TEST_F(PaperShapes, GraphAppsExecuteBothClasses)
{
    const auto &s = statsFor("bfs");
    EXPECT_GT(s.get("gload.warps.det"), 0.0);
    EXPECT_GT(s.get("gload.warps.nondet"), 0.0);
}

// --- Fig 2: request generation disparity ---

TEST_F(PaperShapes, DeterministicLoadsCoalesceToFewRequests)
{
    // "Each deterministic load creates one or two memory requests."
    EXPECT_LE(reqsPerWarp(statsFor("2mm"), false), 2.0);
    EXPECT_LE(reqsPerWarp(statsFor("bfs"), false), 2.0);
    EXPECT_LE(reqsPerWarp(statsFor("spmv"), false), 2.0);
}

TEST_F(PaperShapes, NonDeterministicLoadsGenerateManyMoreRequests)
{
    const auto &bfs = statsFor("bfs");
    EXPECT_GT(reqsPerWarp(bfs, true), 2.0 * reqsPerWarp(bfs, false));
    const auto &spmv = statsFor("spmv");
    EXPECT_GT(reqsPerWarp(spmv, true), reqsPerWarp(spmv, false));
}

// --- Fig 3: reservation fails dominate L1 cycles in irregular apps ---

TEST_F(PaperShapes, GraphAppsWasteMostL1CyclesOnReservationFails)
{
    const auto &s = statsFor("bfs");
    double total = 0.0;
    for (const char *o : {"hit", "hit_reserved", "miss", "fail_tag",
                          "fail_mshr", "fail_icnt"})
        total += s.get(std::string("l1.outcome.") + o);
    const double fails = s.get("l1.outcome.fail_tag") +
                         s.get("l1.outcome.fail_mshr") +
                         s.get("l1.outcome.fail_icnt");
    ASSERT_GT(total, 0.0);
    EXPECT_GT(fails / total, 0.4);  // paper: ~70% on average overall
}

// --- Fig 4: the LD/ST unit is the busy one ---

TEST_F(PaperShapes, LdStUnitBusierThanSpAndSfu)
{
    // The paper's large inputs make the LD/ST unit dominate everywhere;
    // with our scaled inputs that holds for the memory-bound apps, while
    // compute-dense 2mm keeps SP comparably busy (its working set caches
    // far better at 128x128 than at the paper's 2048x2048).
    for (const char *app : {"bfs", "spmv"}) {
        const auto &s = statsFor(app);
        EXPECT_GT(s.get("busy.ldst"), s.get("busy.sp")) << app;
        EXPECT_GT(s.get("busy.ldst"), s.get("busy.sfu")) << app;
    }
    // Disproportionality still holds for 2mm: global loads are ~23% of
    // instructions but the LD/ST stage is busy far beyond the SFU's share.
    const auto &mm = statsFor("2mm");
    EXPECT_GT(mm.get("busy.ldst"), mm.get("busy.sfu"));
}

// --- Fig 5: turnaround asymmetry ---

TEST_F(PaperShapes, NonDeterministicTurnaroundExceedsDeterministic)
{
    const auto &s = statsFor("bfs");
    const double det =
        s.ratio("turn.sum.det", "turn.cnt.det");
    const double nondet =
        s.ratio("turn.sum.nondet", "turn.cnt.nondet");
    EXPECT_GT(nondet, det);
    // The gap is driven by reservation stalls, not the unloaded latency.
    const double det_stall = s.ratio("turn.rsrv_prev.det", "turn.cnt.det") +
                             s.ratio("turn.rsrv_cur.det", "turn.cnt.det");
    const double nondet_stall =
        s.ratio("turn.rsrv_prev.nondet", "turn.cnt.nondet") +
        s.ratio("turn.rsrv_cur.nondet", "turn.cnt.nondet");
    EXPECT_GT(nondet_stall, det_stall);
}

// --- Fig 8: L1 barely filters; det loads not meaningfully better ---

TEST_F(PaperShapes, MissRatiosAreHighForBothClasses)
{
    const auto &s = statsFor("bfs");
    EXPECT_GT(s.ratio("l1.miss.det", "l1.access.det"), 0.3);
    EXPECT_GT(s.ratio("l1.miss.nondet", "l1.access.nondet"), 0.3);
}

// --- Fig 9: shared memory concentrates in the image category ---

TEST_F(PaperShapes, ImageAppsUseSharedMemoryOthersBarely)
{
    auto ratio = [this](const char *name) {
        const auto &s = statsFor(name);
        const double gload = s.get("gload.warps.det") +
                             s.get("gload.warps.nondet");
        return gload ? s.get("sload.warps") / gload : 0.0;
    };
    EXPECT_GT(ratio("mriq"), 2.0);   // stages k-space tiles
    EXPECT_GT(ratio("dwt"), 0.5);
    EXPECT_EQ(ratio("2mm"), 0.0);
    EXPECT_EQ(ratio("bfs"), 0.0);
}

// --- Fig 10: cold misses are rare outside the image category ---

TEST_F(PaperShapes, ColdMissRatioLowForLinearHighForImage)
{
    auto cold = [this](const char *name) {
        const auto &s = statsFor(name);
        return s.ratio("blocks.count", "blocks.accesses");
    };
    EXPECT_LT(cold("2mm"), 0.05);    // blocks reused 100+ times
    EXPECT_LT(cold("bfs"), 0.30);
    EXPECT_GT(cold("dwt"), 0.25);    // single-touch streaming via smem
}

TEST_F(PaperShapes, LinearAlgebraBlocksAreReusedHeavily)
{
    const auto &s = statsFor("2mm");
    EXPECT_GT(s.ratio("blocks.accesses", "blocks.count"), 50.0);
}

// --- Fig 11: shared blocks absorb a disproportionate access share ---

TEST_F(PaperShapes, InterCtaSharingExistsAndConcentratesAccesses)
{
    for (const char *app : {"2mm", "bfs"}) {
        const auto &s = statsFor(app);
        const double block_ratio =
            s.ratio("blocks.shared", "blocks.count");
        const double access_ratio =
            s.ratio("blocks.shared_accesses", "blocks.accesses");
        // bfs's tid-indexed arrays are CTA-partitioned by construction, so
        // only the gather targets (visited/cost) can be shared: the block
        // ratio is a few percent, but those blocks soak up an outsized
        // access share — the paper's Fig 11 asymmetry.
        EXPECT_GT(block_ratio, 0.03) << app;
        EXPECT_GE(access_ratio, block_ratio) << app;
    }
    // 2mm: every B-column block is read by every row of CTAs.
    EXPECT_GT(statsFor("2mm").ratio("blocks.shared_cta_sum",
                                    "blocks.shared"),
              4.0);
}

// --- Fig 12: linear apps share at structured distances; graph disperses --

TEST_F(PaperShapes, CtaDistanceStructuredForLinearDispersedForGraph)
{
    const auto &mm = statsFor("2mm").histOrEmpty("cta_distance");
    const auto &bfs = statsFor("bfs").histOrEmpty("cta_distance");
    ASSERT_FALSE(mm.empty());
    ASSERT_FALSE(bfs.empty());
    // Distance 1 (and the grid stride) dominate for 2mm.
    const double mm_d1 = mm.weightAt(1) / mm.totalWeight();
    EXPECT_GT(mm_d1, 0.10);
    // Graph sharing spreads over far more distinct distances.
    EXPECT_GT(bfs.numBuckets(), mm.numBuckets());
}

TEST_F(PaperShapes, GraphDispersionComesFromNonDeterministicLoads)
{
    const auto &s = statsFor("bfs");
    const auto &det = s.histOrEmpty("cta_distance.det");
    const auto &nondet = s.histOrEmpty("cta_distance.nondet");
    ASSERT_FALSE(nondet.empty());
    EXPECT_GE(nondet.numBuckets(), det.numBuckets());
}

} // namespace
