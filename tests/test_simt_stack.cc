/**
 * @file
 * SIMT reconvergence-stack unit tests: uniform and divergent branches,
 * nesting, loops, and lane exit.
 */

#include <gtest/gtest.h>

#include "guard/sim_error.hh"
#include "sim/simt_stack.hh"

namespace
{

using gcl::sim::LaneMask;
using gcl::sim::SimtStack;

constexpr LaneMask kFull = 0xffffffffu;

TEST(SimtStackTest, FreshStackStartsAtZero)
{
    SimtStack s;
    s.reset(kFull, 100);
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.activeMask(), kFull);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStackTest, EmptyInitialMaskIsDone)
{
    SimtStack s;
    s.reset(0, 100);
    EXPECT_TRUE(s.done());
}

TEST(SimtStackTest, AdvanceWalksStraightLine)
{
    SimtStack s;
    s.reset(kFull, 100);
    s.advance();
    s.advance();
    EXPECT_EQ(s.pc(), 2u);
    EXPECT_EQ(s.activeMask(), kFull);
}

TEST(SimtStackTest, UniformTakenBranchJumps)
{
    SimtStack s;
    s.reset(kFull, 100);
    s.branch(kFull, 42, 50);
    EXPECT_EQ(s.pc(), 42u);
    EXPECT_EQ(s.activeMask(), kFull);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStackTest, UniformNotTakenFallsThrough)
{
    SimtStack s;
    s.reset(kFull, 100);
    s.advance();           // pc 1
    s.branch(0, 42, 50);   // nobody takes it
    EXPECT_EQ(s.pc(), 2u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStackTest, DivergenceRunsTakenSideFirstThenReconverges)
{
    SimtStack s;
    s.reset(kFull, 100);
    // Branch at pc 0 to pc 10, reconvergence at pc 20.
    const LaneMask taken = 0x0000ffffu;
    s.branch(taken, 10, 20);

    // Taken side first.
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), taken);
    EXPECT_EQ(s.depth(), 3u);
    for (int i = 0; i < 10; ++i)
        s.advance();  // 10 -> 20: pops the taken entry

    // Fall-through side next, from pc 1.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), ~taken);
    for (int i = 0; i < 19; ++i)
        s.advance();  // 1 -> 20: pops the not-taken entry

    // Reconverged with the full mask.
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), kFull);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStackTest, NestedDivergence)
{
    SimtStack s;
    s.reset(0xffu, 100);
    s.branch(0x0fu, 10, 40);      // outer divergence
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), 0x0fu);
    s.branch(0x03u, 20, 30);      // inner divergence on the taken side
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0x03u);
    for (int i = 0; i < 10; ++i)
        s.advance();              // 20 -> 30 pops inner-taken
    EXPECT_EQ(s.pc(), 11u);       // inner fall-through
    EXPECT_EQ(s.activeMask(), 0x0cu);
    for (int i = 0; i < 19; ++i)
        s.advance();              // 11 -> 30 pops inner-not-taken
    EXPECT_EQ(s.pc(), 30u);
    EXPECT_EQ(s.activeMask(), 0x0fu);  // inner reconverged
    for (int i = 0; i < 10; ++i)
        s.advance();              // 30 -> 40 pops outer-taken
    EXPECT_EQ(s.pc(), 1u);        // outer fall-through
    EXPECT_EQ(s.activeMask(), 0xf0u);
    for (int i = 0; i < 39; ++i)
        s.advance();
    EXPECT_EQ(s.pc(), 40u);
    EXPECT_EQ(s.activeMask(), 0xffu);
}

TEST(SimtStackTest, LoopBackEdgeKeepsMask)
{
    SimtStack s;
    s.reset(0xfu, 100);
    // Loop: head at pc 0 .. branch back at pc 5.
    for (int iter = 0; iter < 3; ++iter) {
        for (int i = 0; i < 5; ++i)
            s.advance();
        s.branch(0xfu, 0, 6);  // uniformly taken back edge
        EXPECT_EQ(s.pc(), 0u);
        EXPECT_EQ(s.activeMask(), 0xfu);
    }
}

TEST(SimtStackTest, LoopExitDivergenceSerializes)
{
    SimtStack s;
    s.reset(0x3u, 100);
    // At pc 0: lane 0 exits the loop to pc 8; lane 1 continues at pc 1.
    s.branch(0x1u, 8, 8);  // taken lanes go directly to the reconv point
    // Taken entry pops instantly (pc == rpc), leaving the loop lanes.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), 0x2u);
    for (int i = 0; i < 7; ++i)
        s.advance();
    EXPECT_EQ(s.pc(), 8u);
    EXPECT_EQ(s.activeMask(), 0x3u);
}

TEST(SimtStackTest, ExitLanesRetiresWholeWarp)
{
    SimtStack s;
    s.reset(kFull, 100);
    s.exitLanes(kFull);
    EXPECT_TRUE(s.done());
}

TEST(SimtStackTest, PartialExitUnderDivergence)
{
    SimtStack s;
    s.reset(0xffu, 100);
    s.branch(0x0fu, 10, 20);      // taken lanes at pc 10
    s.exitLanes(0x0fu);           // they exit inside the branch
    // Control returns to the fall-through side.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), 0xf0u);
    for (int i = 0; i < 19; ++i)
        s.advance();
    // Reconverged entry only has the surviving lanes.
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0xf0u);
    s.exitLanes(0xf0u);
    EXPECT_TRUE(s.done());
}

TEST(SimtStackTest, BranchOnForeignLanesIsRecoverableError)
{
    // Branching with lanes outside the active set means the stack state
    // is corrupt — the run dies with SimError{Invariant}, siblings live.
    SimtStack s;
    s.reset(0x0fu, 100);
    try {
        s.branch(0xf0u, 10, 20);
        FAIL() << "branch with inactive lanes accepted";
    } catch (const gcl::SimError &e) {
        EXPECT_EQ(e.kind(), gcl::SimError::Kind::Invariant);
        EXPECT_EQ(e.component(), "simt");
        EXPECT_NE(e.message().find("inactive lanes"), std::string::npos);
    }
}

} // namespace
