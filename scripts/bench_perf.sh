#!/usr/bin/env bash
# Simulator-throughput snapshot: build (Release flags come from the default
# toolchain), run bench/perf_sweep on the pinned app subset, write
# BENCH_perf.json, and compare against the committed baseline in
# bench/baselines/BENCH_perf_baseline.json with tools/perf_diff.
#
# Usage: scripts/bench_perf.sh [--out=FILE] [--repeat=N] [--no-diff]
#        BUILD_DIR=out scripts/bench_perf.sh
#
# Exit status: perf_diff's (1 on >10% regression) unless --no-diff.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_perf.json
REPEAT=3
DIFF=1
for arg in "$@"; do
    case "$arg" in
      --out=*) OUT=${arg#--out=} ;;
      --repeat=*) REPEAT=${arg#--repeat=} ;;
      --no-diff) DIFF=0 ;;
      *) echo "bench_perf.sh: unknown argument '$arg'" >&2; exit 2 ;;
    esac
done

BUILD_DIR=${BUILD_DIR:-build}
JOBS=$(nproc 2> /dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j"$JOBS" --target perf_sweep perf_diff

"$BUILD_DIR/bench/perf_sweep" --repeat="$REPEAT" --out="$OUT" \
    --label="$(git rev-parse --short HEAD 2> /dev/null || echo local)"

BASELINE=bench/baselines/BENCH_perf_baseline.json
if [ "$DIFF" = 1 ] && [ -f "$BASELINE" ]; then
    "$BUILD_DIR/tools/perf_diff" "$BASELINE" "$OUT"
fi
