#!/usr/bin/env bash
# Simulator-throughput snapshot: build (Release flags come from the default
# toolchain), run bench/perf_sweep on the pinned app subset, write
# BENCH_perf.json, and compare against the committed baseline in
# bench/baselines/BENCH_perf_baseline.json with tools/perf_diff.
#
# Usage: scripts/bench_perf.sh [--out=FILE] [--repeat=N] [--no-diff]
#                              [--sim-threads=N]
#        BUILD_DIR=out scripts/bench_perf.sh
#
# The snapshot label is the short HEAD hash, with "+dirty" appended when
# the working tree has uncommitted changes — a snapshot generated before
# committing is labeled as such instead of silently claiming the previous
# commit (which is how a stale "label" once ended up committed).
#
# Refreshing the committed baseline (do this in any PR that moves perf):
#   1. Commit the code change first, so HEAD names it.
#   2. scripts/bench_perf.sh --no-diff        # writes BENCH_perf.json
#   3. cp BENCH_perf.json bench/baselines/BENCH_perf_baseline.json
#   4. Amend or commit both snapshots; the label now matches the commit
#      that carries them ("+dirty" in a committed file means step 1 was
#      skipped — regenerate).
#
# Exit status: perf_diff's (1 on >10% regression) unless --no-diff.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_perf.json
REPEAT=3
DIFF=1
SIM_THREADS=
for arg in "$@"; do
    case "$arg" in
      --out=*) OUT=${arg#--out=} ;;
      --repeat=*) REPEAT=${arg#--repeat=} ;;
      --sim-threads=*) SIM_THREADS=${arg#--sim-threads=} ;;
      --no-diff) DIFF=0 ;;
      *) echo "bench_perf.sh: unknown argument '$arg'" >&2; exit 2 ;;
    esac
done

BUILD_DIR=${BUILD_DIR:-build}
JOBS=$(nproc 2> /dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j"$JOBS" --target perf_sweep perf_diff

LABEL=$(git rev-parse --short HEAD 2> /dev/null || echo local)
git diff --quiet HEAD 2> /dev/null || LABEL="$LABEL+dirty"

SWEEP_ARGS=(--repeat="$REPEAT" --out="$OUT" --label="$LABEL")
[ -n "$SIM_THREADS" ] && SWEEP_ARGS+=(--sim-threads="$SIM_THREADS")
"$BUILD_DIR/bench/perf_sweep" "${SWEEP_ARGS[@]}"

BASELINE=bench/baselines/BENCH_perf_baseline.json
if [ "$DIFF" = 1 ] && [ -f "$BASELINE" ]; then
    "$BUILD_DIR/tools/perf_diff" "$BASELINE" "$OUT"
fi
