#!/usr/bin/env bash
# Full repository check: configure, build, run the test suite, then smoke
# the observability path end-to-end — a traced bench run whose Chrome-JSON
# trace and stats JSON are validated by tools/trace_check — and verify the
# parallel sweep (--jobs) produces byte-identical cache entries to serial.
#
# Usage: scripts/check.sh            (from anywhere; builds into ./build)
#        scripts/check.sh --tsan     additionally build with
#                                    ThreadSanitizer (into ./build-tsan)
#                                    and run the exec + parallel-sweep
#                                    tests under it
#        BUILD_DIR=out scripts/check.sh
# Also available as the CMake target `check`.
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN=0
for arg in "$@"; do
    case "$arg" in
      --tsan) TSAN=1 ;;
      *) echo "check.sh: unknown argument '$arg' (only --tsan)" >&2
         exit 2 ;;
    esac
done

BUILD_DIR=${BUILD_DIR:-build}
JOBS=$(nproc 2> /dev/null || echo 4)

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Traced smoke run: one real workload through a figure bench, with the
# lifecycle trace, occupancy timeline and stats artifacts all enabled.
GCL_BENCH_CACHE="$tmp/cache" "$BUILD_DIR/bench/fig5_turnaround" \
    --apps=bfs --fresh \
    --trace-out="$tmp/trace.json" \
    --timeline-interval=200 \
    --stats-json="$tmp/stats.json" \
    --stats-csv="$tmp/stats.csv" > /dev/null
"$BUILD_DIR/tools/trace_check" \
    --trace="$tmp/trace.json" --stats="$tmp/stats.json"

# Parallel-sweep determinism: a --jobs=3 fresh sweep over the three
# smallest apps must leave byte-identical cache entries (same keys, same
# stats) as a --jobs=1 sweep, and a parallel *traced* sweep must still
# produce a well-formed merged Chrome trace.
SMALL_APPS=gaus,bpr,dwt
GCL_BENCH_CACHE="$tmp/cache-j1" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --jobs=1 > /dev/null 2> /dev/null
GCL_BENCH_CACHE="$tmp/cache-j3" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --jobs=3 > /dev/null 2> /dev/null
diff -r "$tmp/cache-j1" "$tmp/cache-j3" \
    || { echo "check: parallel sweep diverged from serial" >&2; exit 1; }
GCL_BENCH_CACHE="$tmp/cache-j3t" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --jobs=3 \
    --trace-out="$tmp/trace-par.json" \
    --stats-json="$tmp/stats-par.json" > /dev/null 2> /dev/null
"$BUILD_DIR/tools/trace_check" \
    --trace="$tmp/trace-par.json" --stats="$tmp/stats-par.json"

if [ "$TSAN" = 1 ]; then
    TSAN_DIR=${TSAN_BUILD_DIR:-build-tsan}
    cmake -B "$TSAN_DIR" -S . -DGCL_TSAN=ON
    cmake --build "$TSAN_DIR" -j"$JOBS" --target gcl_tests
    "$TSAN_DIR/tests/gcl_tests" --gtest_filter='Exec*:ParallelSweep*'
fi

echo "check: all green"
