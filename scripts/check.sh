#!/usr/bin/env bash
# Full repository check: configure, build, run the test suite, then smoke
# the observability path end-to-end — a traced bench run whose Chrome-JSON
# trace and stats JSON are validated by tools/trace_check — and verify the
# parallel sweep (--jobs) produces byte-identical cache entries to serial.
#
# Usage: scripts/check.sh            (from anywhere; builds into ./build)
#        scripts/check.sh --tsan     additionally build with
#                                    ThreadSanitizer (into ./build-tsan)
#                                    and run the exec + parallel-sweep
#                                    tests under it
#        scripts/check.sh --asan     additionally build with
#                                    AddressSanitizer (into ./build-asan)
#                                    and run the guard / error-unwind
#                                    tests under it
#        scripts/check.sh --perf     make the perf-delta stage fatal: exit
#                                    nonzero on a >10% throughput
#                                    regression vs the committed baseline
#                                    (by default the delta is only printed)
#        BUILD_DIR=out scripts/check.sh
# Also available as the CMake target `check`.
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN=0
ASAN=0
PERF=0
for arg in "$@"; do
    case "$arg" in
      --tsan) TSAN=1 ;;
      --asan) ASAN=1 ;;
      --perf) PERF=1 ;;
      *) echo "check.sh: unknown argument '$arg' (--tsan, --asan, --perf)" >&2
         exit 2 ;;
    esac
done

BUILD_DIR=${BUILD_DIR:-build}
JOBS=$(nproc 2> /dev/null || echo 4)

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Traced smoke run: one real workload through a figure bench, with the
# lifecycle trace, occupancy timeline and stats artifacts all enabled.
GCL_BENCH_CACHE="$tmp/cache" "$BUILD_DIR/bench/fig5_turnaround" \
    --apps=bfs --fresh \
    --trace-out="$tmp/trace.json" \
    --timeline-interval=200 \
    --stats-json="$tmp/stats.json" \
    --stats-csv="$tmp/stats.csv" > /dev/null
"$BUILD_DIR/tools/trace_check" \
    --trace="$tmp/trace.json" --stats="$tmp/stats.json"

# Parallel-sweep determinism: a --jobs=3 fresh sweep over the three
# smallest apps must leave byte-identical cache entries (same keys, same
# stats) as a --jobs=1 sweep, and a parallel *traced* sweep must still
# produce a well-formed merged Chrome trace.
SMALL_APPS=gaus,bpr,dwt
GCL_BENCH_CACHE="$tmp/cache-j1" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --jobs=1 > /dev/null 2> /dev/null
GCL_BENCH_CACHE="$tmp/cache-j3" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --jobs=3 > /dev/null 2> /dev/null
diff -r "$tmp/cache-j1" "$tmp/cache-j3" \
    || { echo "check: parallel sweep diverged from serial" >&2; exit 1; }
GCL_BENCH_CACHE="$tmp/cache-j3t" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --jobs=3 \
    --trace-out="$tmp/trace-par.json" \
    --stats-json="$tmp/stats-par.json" > /dev/null 2> /dev/null
"$BUILD_DIR/tools/trace_check" \
    --trace="$tmp/trace-par.json" --stats="$tmp/stats-par.json"

# Intra-run parallel-tick determinism: a --sim-threads=4 fresh sweep must
# leave byte-identical cache entries to --sim-threads=1 (mirroring the
# jobs=1-vs-3 stage above — sim_threads is likewise excluded from the
# config fingerprint, so both runs share cache keys).
GCL_BENCH_CACHE="$tmp/cache-t1" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --sim-threads=1 > /dev/null 2> /dev/null
GCL_BENCH_CACHE="$tmp/cache-t4" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --sim-threads=4 > /dev/null 2> /dev/null
diff -r "$tmp/cache-t1" "$tmp/cache-t4" \
    || { echo "check: parallel tick diverged from serial" >&2; exit 1; }

# Criticality profiler (gcl::crit): a crit-enabled sweep must export
# stats whose per-SM issue-slot accounting is exact (trace_check
# re-verifies issued + stalls == cycles * issue_width from the JSON), its
# cache entries and reports must be byte-identical across tick-thread
# counts, and crit_report over the three small apps must match the
# committed golden. The profiler-off path needs no stage of its own:
# crit defaults to off, so every other stage in this script (including
# the perf-delta gate below) already runs and measures the disabled
# simulator.
GCL_BENCH_CACHE="$tmp/cache-crit1" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --crit --sim-threads=1 \
    --stats-json="$tmp/stats-crit.json" \
    --crit-out="$tmp/crit-report.txt" > /dev/null 2> /dev/null
"$BUILD_DIR/tools/trace_check" --stats="$tmp/stats-crit.json"
GCL_BENCH_CACHE="$tmp/cache-crit4" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --crit --sim-threads=4 \
    --crit-out="$tmp/crit-report-t4.txt" > /dev/null 2> /dev/null
diff -r "$tmp/cache-crit1" "$tmp/cache-crit4" \
    || { echo "check: crit profiling diverged across tick threads" >&2
         exit 1; }
cmp "$tmp/crit-report.txt" "$tmp/crit-report-t4.txt" \
    || { echo "check: crit report differs across tick threads" >&2
         exit 1; }
"$BUILD_DIR/tools/crit_report" --stats="$tmp/stats-crit.json" --top-n=3 \
    > "$tmp/crit-top3.txt" 2> /dev/null
diff tests/goldens/crit_report_small.txt "$tmp/crit-top3.txt" \
    || { echo "check: crit_report diverged from the committed golden" >&2
         exit 1; }

# Idle-unit gating (Gpu::tick skipping quiescent partitions and response
# drains) is a pure host-side optimization: a sweep with the gate forced
# off must leave byte-identical cache entries. idle_gating is deliberately
# excluded from the config fingerprint so both runs share cache keys.
GCL_BENCH_CACHE="$tmp/cache-nogate" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --jobs=1 \
    --sim-config=idle_gating=0 > /dev/null 2> /dev/null
diff -r "$tmp/cache-j1" "$tmp/cache-nogate" \
    || { echo "check: idle gating changed simulation results" >&2; exit 1; }

# Machine-description zoo (configs/): every committed machine must parse
# and resolve by name; c2050 must be byte-identical to the compiled-in
# defaults (field-for-field, in the rendered Table II, and in the cache
# entries real runs leave behind); every other machine must run a small
# app to completion with the conservation checks green.
for m in configs/*.config; do
    "$BUILD_DIR/tools/machine_dump" "$m" > /dev/null \
        || { echo "check: $m does not parse" >&2; exit 1; }
done
"$BUILD_DIR/tools/machine_dump" --diff c2050 "" > /dev/null \
    || { echo "check: configs/c2050.config differs from compiled defaults" >&2
         exit 1; }
"$BUILD_DIR/bench/table2_config" --fresh > "$tmp/table2-default.txt"
"$BUILD_DIR/bench/table2_config" --fresh --machine=c2050 \
    > "$tmp/table2-c2050.txt" 2> /dev/null
cmp "$tmp/table2-default.txt" "$tmp/table2-c2050.txt" \
    || { echo "check: --machine=c2050 changes the Table II output" >&2
         exit 1; }
diff tests/goldens/table2_c2050.txt "$tmp/table2-c2050.txt" \
    || { echo "check: Table II diverged from the committed golden" >&2
         exit 1; }
GCL_BENCH_CACHE="$tmp/cache-c2050" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --machine=configs/c2050.config \
    > /dev/null 2> /dev/null
diff -r "$tmp/cache-j1" "$tmp/cache-c2050" \
    || { echo "check: --machine=c2050 diverged from compiled defaults" >&2
         exit 1; }
for m in hbm-sectored modern-core tiny; do
    GCL_BENCH_CACHE="$tmp/cache-zoo-$m" "$BUILD_DIR/bench/fig1_load_classes" \
        --apps=gaus --fresh --machine="$m" > /dev/null 2> /dev/null \
        || { echo "check: machine '$m' failed to run gaus" >&2; exit 1; }
done

# Fault injection (gcl::guard): a seeded plan aimed at one app of a
# parallel sweep must (a) fail that run with exit code 3 and a structured
# failure record in the stats JSON, (b) cache nothing for the faulted run,
# and (c) leave the sibling runs' cache entries byte-identical to the
# clean serial sweep's (cache-j1 from above — same apps, same config).
status=0
GCL_BENCH_CACHE="$tmp/cache-fault" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=$SMALL_APPS --fresh --jobs=3 \
    --fault-plan='app=bpr;stop@2000' \
    --stats-json="$tmp/stats-fault.json" > /dev/null 2> /dev/null \
    || status=$?
[ "$status" = 3 ] \
    || { echo "check: faulted sweep exited $status, want 3" >&2; exit 1; }
grep -q '"failure"' "$tmp/stats-fault.json" \
    && grep -q '"fault_injected"' "$tmp/stats-fault.json" \
    || { echo "check: no structured failure record in stats JSON" >&2
         exit 1; }
ls "$tmp/cache-fault"/bpr.* > /dev/null 2>&1 \
    && { echo "check: failed run must not be cached" >&2; exit 1; }
for app in gaus dwt; do
    diff "$tmp/cache-j1/$app".* "$tmp/cache-fault/$app".* \
        || { echo "check: $app diverged beside a faulted sibling" >&2
             exit 1; }
done

# Survivable seeded degradation: auto windows (MSHR/ICNT/DRAM/dropfill
# pressure from seed 42) slow the run down but must not kill it — and two
# identical invocations must export byte-identical stats.
for i in 1 2; do
    GCL_BENCH_CACHE="$tmp/cache-auto$i" "$BUILD_DIR/bench/fig1_load_classes" \
        --apps=gaus --fresh \
        --fault-plan='seed=42;auto=3' \
        --stats-json="$tmp/stats-auto$i.json" > /dev/null 2> /dev/null \
        || { echo "check: seeded degradation run failed" >&2; exit 1; }
done
grep -q '"fault.injected.' "$tmp/stats-auto1.json" \
    || { echo "check: no fault.injected stats exported" >&2; exit 1; }
cmp "$tmp/stats-auto1.json" "$tmp/stats-auto2.json" \
    || { echo "check: seeded fault plan is not deterministic" >&2; exit 1; }

# Watchdog: an injected livelock (every fill dropped) must be caught as a
# structured hang report instead of burning the 200M-cycle budget.
status=0
GCL_BENCH_CACHE="$tmp/cache-hang" "$BUILD_DIR/bench/fig1_load_classes" \
    --apps=gaus --fresh \
    --fault-plan='dropfill@0+1000000000' \
    --sim-config=watchdog_interval=1024,watchdog_budget=100000 \
    --stats-json="$tmp/stats-hang.json" > /dev/null 2> /dev/null \
    || status=$?
[ "$status" = 3 ] \
    || { echo "check: hung sweep exited $status, want 3" >&2; exit 1; }
grep -q '"hang"' "$tmp/stats-hang.json" \
    || { echo "check: livelock not reported as a hang" >&2; exit 1; }

# Perf trajectory: run the pinned-subset throughput sweep serially and
# with the parallel tick, report both, and print the serial delta against
# the committed baseline (the baseline is a sim_threads=1 snapshot).
# Informational by default (hosts differ; so does their load); --perf
# makes a >10% regression fatal so a perf-focused PR can gate on it.
"$BUILD_DIR/bench/perf_sweep" --repeat=1 --out="$tmp/perf.json" \
    --label=check --sim-threads=1 > /dev/null
"$BUILD_DIR/bench/perf_sweep" --repeat=1 --out="$tmp/perf-t4.json" \
    --label=check-t4 --sim-threads=4 > /dev/null
serial_cps=$(grep -o '"cycles_per_sec": [0-9.]*' "$tmp/perf.json" \
    | tail -1 | grep -o '[0-9.]*')
par_cps=$(grep -o '"cycles_per_sec": [0-9.]*' "$tmp/perf-t4.json" \
    | tail -1 | grep -o '[0-9.]*')
echo "check: total cycles/sec: $serial_cps serial, $par_cps at sim-threads=4"
if [ "$PERF" = 1 ]; then
    "$BUILD_DIR/tools/perf_diff" \
        bench/baselines/BENCH_perf_baseline.json "$tmp/perf.json"
else
    "$BUILD_DIR/tools/perf_diff" \
        bench/baselines/BENCH_perf_baseline.json "$tmp/perf.json" \
        || echo "check: perf delta exceeds threshold (non-fatal; --perf to gate)"
fi

if [ "$TSAN" = 1 ]; then
    TSAN_DIR=${TSAN_BUILD_DIR:-build-tsan}
    cmake -B "$TSAN_DIR" -S . -DGCL_TSAN=ON
    cmake --build "$TSAN_DIR" -j"$JOBS" --target gcl_tests fig1_load_classes
    "$TSAN_DIR/tests/gcl_tests" \
        --gtest_filter='Exec*:ParallelSweep*:ParallelTick*'
    # A threaded bench sweep end to end under TSan: the parallel tick with
    # tracing, the exact configuration the determinism stages diff above.
    GCL_BENCH_CACHE="$tmp/cache-tsan" "$TSAN_DIR/bench/fig1_load_classes" \
        --apps=$SMALL_APPS --fresh --sim-threads=4 > /dev/null
fi

if [ "$ASAN" = 1 ]; then
    ASAN_DIR=${ASAN_BUILD_DIR:-build-asan}
    cmake -B "$ASAN_DIR" -S . -DGCL_ASAN=ON
    cmake --build "$ASAN_DIR" -j"$JOBS" --target gcl_tests
    # The guard tests unwind SimErrors out of half-advanced device models;
    # ASan verifies nothing in flight leaks across the recovery. Pool*
    # includes the GCL_POOL_CHECKED death tests (stale-handle panics are
    # compiled in under ASan), and IdleGating* re-proves gating
    # bit-identity with pool checking live.
    "$ASAN_DIR/tests/gcl_tests" \
        --gtest_filter='FaultPlan*:ConfigOverride*:WatchdogUnit*:Guard*:Pool*:IdleGating*'
fi

echo "check: all green"
