#!/usr/bin/env bash
# Full repository check: configure, build, run the test suite, then smoke
# the observability path end-to-end — a traced bench run whose Chrome-JSON
# trace and stats JSON are validated by tools/trace_check.
#
# Usage: scripts/check.sh            (from anywhere; builds into ./build)
#        BUILD_DIR=out scripts/check.sh
# Also available as the CMake target `check`.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=$(nproc 2> /dev/null || echo 4)

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Traced smoke run: one real workload through a figure bench, with the
# lifecycle trace, occupancy timeline and stats artifacts all enabled.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
GCL_BENCH_CACHE="$tmp/cache" "$BUILD_DIR/bench/fig5_turnaround" \
    --apps=bfs --fresh \
    --trace-out="$tmp/trace.json" \
    --timeline-interval=200 \
    --stats-json="$tmp/stats.json" \
    --stats-csv="$tmp/stats.csv" > /dev/null
"$BUILD_DIR/tools/trace_check" \
    --trace="$tmp/trace.json" --stats="$tmp/stats.json"

echo "check: all green"
