/**
 * @file
 * Domain example: hidden inter-CTA locality and the CTA scheduler.
 *
 * Runs the 2mm workload under the baseline round-robin CTA scheduler and
 * again with clustered CTA assignment (Section X.B), showing how the
 * inter-CTA sharing of Figs 11/12 interacts with the scheduling policy.
 */

#include <cstdio>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace
{

struct RunSummary
{
    double l1MissRatio;
    double cycles;
    double sharedBlockRatio;
    double avgCtasPerSharedBlock;
};

RunSummary
runWith(gcl::sim::CtaSchedPolicy policy)
{
    gcl::sim::GpuConfig config;
    config.ctaSched = policy;
    gcl::sim::Gpu gpu(config);
    gcl::workloads::byName("2mm").run(gpu);
    gpu.finalizeStats();
    const auto &s = gpu.stats().set();

    RunSummary summary;
    const double access =
        s.get("l1.access.det") + s.get("l1.access.nondet");
    const double miss = s.get("l1.miss.det") + s.get("l1.miss.nondet");
    summary.l1MissRatio = access ? miss / access : 0.0;
    summary.cycles = s.get("cycles");
    summary.sharedBlockRatio = s.ratio("blocks.shared", "blocks.count");
    summary.avgCtasPerSharedBlock =
        s.ratio("blocks.shared_cta_sum", "blocks.shared");
    return summary;
}

} // namespace

int
main()
{
    using gcl::sim::CtaSchedPolicy;

    std::printf("2mm inter-CTA locality study\n\n");
    const RunSummary rr = runWith(CtaSchedPolicy::RoundRobin);
    const RunSummary cl = runWith(CtaSchedPolicy::Clustered);

    std::printf("%-28s %14s %14s\n", "", "round-robin", "clustered");
    std::printf("%-28s %13.1f%% %13.1f%%\n", "L1 miss ratio",
                100.0 * rr.l1MissRatio, 100.0 * cl.l1MissRatio);
    std::printf("%-28s %14.0f %14.0f\n", "total cycles", rr.cycles,
                cl.cycles);
    std::printf("%-28s %13.1f%% %13.1f%%\n", "blocks shared by >=2 CTAs",
                100.0 * rr.sharedBlockRatio, 100.0 * cl.sharedBlockRatio);
    std::printf("%-28s %14.1f %14.1f\n", "avg CTAs per shared block",
                rr.avgCtasPerSharedBlock, cl.avgCtasPerSharedBlock);

    std::printf("\nShared data is fetched by many CTAs (Fig 11), but with "
                "private L1s the hit rate\nonly moves when neighboring "
                "CTAs land on the same SM — the Section X.B argument.\n");
    return 0;
}
