/**
 * @file
 * Quickstart: the whole public API in one small program.
 *
 *   1. Build a kernel in the PTX-like IR with KernelBuilder.
 *   2. Classify its global loads (the paper's Section V analysis).
 *   3. Run it on the simulated GPU and read back results and stats.
 *
 * The kernel is a saxpy-style `y[i] = a*x[i] + y[i]` — fully deterministic
 * addressing — plus a gather `z[i] = x[idx[i]]` whose address depends on a
 * loaded index and is therefore non-deterministic.
 */

#include <cstdio>
#include <vector>

#include "core/classifier.hh"
#include "ptx/builder.hh"
#include "sim/gpu.hh"

using namespace gcl;
using namespace gcl::ptx;
using DT = DataType;

namespace
{

Kernel
buildSaxpyGatherKernel()
{
    // Params: x, y, z, idx, a (f32 bits), n.
    KernelBuilder b("saxpy_gather", 6);

    Reg tid = b.globalTidX();
    Reg p_x = b.ldParam(0);
    Reg p_y = b.ldParam(1);
    Reg p_z = b.ldParam(2);
    Reg p_idx = b.ldParam(3);
    Reg a = b.ldParam(4);
    Reg n = b.ldParam(5);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    // Deterministic: addresses are linear in the thread id.
    Reg x = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_x, tid, 4));
    Reg y_addr = b.elemAddr(p_y, tid, 4);
    Reg y = b.ld(MemSpace::Global, DT::F32, y_addr);
    b.st(MemSpace::Global, DT::F32, y_addr, b.mad(DT::F32, a, x, y));

    // Non-deterministic: the gather index itself comes from memory.
    Reg idx = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_idx, tid, 4));
    Reg gathered =
        b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_x, idx, 4));
    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_z, tid, 4), gathered);

    b.place(out);
    b.exit();
    return b.build();
}

} // namespace

int
main()
{
    const Kernel kernel = buildSaxpyGatherKernel();

    std::printf("=== disassembly ===\n%s\n", kernel.disassemble().c_str());

    // --- Static classification (Section V) ---
    core::LoadClassifier classifier(kernel);
    std::printf("=== load classification ===\n%s\n",
                classifier.report().c_str());

    // --- Simulate ---
    constexpr uint32_t n = 4096;
    const float a = 2.0f;

    std::vector<float> x(n), y(n);
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(i);
        y[i] = 1.0f;
        idx[i] = (i * 2654435761u) % n;   // scrambled gather pattern
    }

    sim::Gpu gpu;
    const uint64_t d_x = gpu.deviceMalloc(n * 4);
    const uint64_t d_y = gpu.deviceMalloc(n * 4);
    const uint64_t d_z = gpu.deviceMalloc(n * 4);
    const uint64_t d_idx = gpu.deviceMalloc(n * 4);
    gpu.memcpyToDevice(d_x, x.data(), n * 4);
    gpu.memcpyToDevice(d_y, y.data(), n * 4);
    gpu.memcpyToDevice(d_idx, idx.data(), n * 4);

    uint32_t a_bits;
    static_assert(sizeof(a_bits) == sizeof(a));
    std::memcpy(&a_bits, &a, sizeof(a));
    gpu.launch(kernel, sim::Dim3{n / 256, 1, 1}, sim::Dim3{256, 1, 1},
               {d_x, d_y, d_z, d_idx, a_bits, n});

    std::vector<float> y_out(n), z_out(n);
    gpu.memcpyToHost(y_out.data(), d_y, n * 4);
    gpu.memcpyToHost(z_out.data(), d_z, n * 4);

    bool ok = true;
    for (uint32_t i = 0; i < n; ++i) {
        ok = ok && y_out[i] == a * x[i] + 1.0f;
        ok = ok && z_out[i] == x[idx[i]];
    }
    std::printf("=== results ===\nfunctional check: %s\n",
                ok ? "PASS" : "FAIL");

    // --- Per-class statistics ---
    gpu.finalizeStats();
    const auto &s = gpu.stats().set();
    std::printf("cycles: %.0f\n", s.get("cycles"));
    std::printf("deterministic loads:     %6.0f warps, %5.2f requests/warp"
                "\n",
                s.get("gload.warps.det"),
                s.ratio("gload.reqs.det", "gload.warps.det"));
    std::printf("non-deterministic loads: %6.0f warps, %5.2f requests/warp"
                "\n",
                s.get("gload.warps.nondet"),
                s.ratio("gload.reqs.nondet", "gload.warps.nondet"));
    return ok ? 0 : 1;
}
