/**
 * @file
 * Domain example: a memory-system study of graph traversal.
 *
 * Runs the bfs workload end-to-end on the simulated GPU and reproduces the
 * paper's headline findings on a single application: the two load classes'
 * request counts (Fig 2), the L1 cycle breakdown (Fig 3), the turnaround
 * asymmetry (Fig 5), and inter-CTA sharing (Fig 11).
 */

#include <cstdio>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace gcl;

    sim::Gpu gpu;
    const bool ok = workloads::byName("bfs").run(gpu);
    gpu.finalizeStats();
    const auto &s = gpu.stats().set();

    std::printf("bfs on a 32768-node R-MAT graph: %s\n\n",
                ok ? "verified against CPU BFS" : "VERIFICATION FAILED");

    std::printf("-- load classes (Fig 1/2) --\n");
    for (bool nd : {false, true}) {
        const char *cls = nd ? "non-deterministic" : "deterministic";
        const char *sfx = nd ? ".nondet" : ".det";
        const double warps = s.get(std::string("gload.warps") + sfx);
        const double reqs = s.get(std::string("gload.reqs") + sfx);
        const double active = s.get(std::string("gload.active") + sfx);
        std::printf("  %-18s %8.0f warps  %5.2f req/warp  %5.3f "
                    "req/thread\n",
                    cls, warps, warps ? reqs / warps : 0.0,
                    active ? reqs / active : 0.0);
    }

    std::printf("\n-- L1 cycle breakdown (Fig 3) --\n");
    double total = 0.0;
    for (const char *o : {"hit", "hit_reserved", "miss", "fail_tag",
                          "fail_mshr", "fail_icnt"})
        total += s.get(std::string("l1.outcome.") + o);
    for (const char *o : {"hit", "hit_reserved", "miss", "fail_tag",
                          "fail_mshr", "fail_icnt"})
        std::printf("  %-14s %5.1f%%\n", o,
                    100.0 * s.get(std::string("l1.outcome.") + o) / total);

    std::printf("\n-- turnaround (Fig 5) --\n");
    for (bool nd : {false, true}) {
        const char *sfx = nd ? ".nondet" : ".det";
        const double cnt = s.get(std::string("turn.cnt") + sfx);
        if (!cnt)
            continue;
        std::printf("  %-18s avg %7.1f cycles (unloaded %5.1f, rsrv_prev "
                    "%6.1f, rsrv_cur %6.1f, mem %6.1f)\n",
                    nd ? "non-deterministic" : "deterministic",
                    s.get(std::string("turn.sum") + sfx) / cnt,
                    s.get(std::string("turn.unloaded") + sfx) / cnt,
                    s.get(std::string("turn.rsrv_prev") + sfx) / cnt,
                    s.get(std::string("turn.rsrv_cur") + sfx) / cnt,
                    s.get(std::string("turn.mem") + sfx) / cnt);
    }

    std::printf("\n-- inter-CTA locality (Fig 11) --\n");
    std::printf("  blocks touched: %.0f, shared by >=2 CTAs: %.0f "
                "(%.1f%%)\n",
                s.get("blocks.count"), s.get("blocks.shared"),
                100.0 * s.ratio("blocks.shared", "blocks.count"));
    std::printf("  accesses to shared blocks: %.1f%%  avg CTAs per shared "
                "block: %.1f\n",
                100.0 * s.ratio("blocks.shared_accesses",
                                "blocks.accesses"),
                s.ratio("blocks.shared_cta_sum", "blocks.shared"));
    return ok ? 0 : 1;
}
