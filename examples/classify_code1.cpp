/**
 * @file
 * A guided tour of the classifier on the paper's own example (Code 1,
 * Section V): the Rodinia bfs frontier-expansion kernel.
 *
 * Prints the kernel disassembly, the per-load classification with slice
 * provenance, and walks through WHY each load lands in its class, matching
 * the paper's narrative:
 *
 *   g_graph_mask[tid]     -> deterministic   (tid = f(ctaid, ntid, tid))
 *   g_graph_nodes[tid]    -> deterministic
 *   g_graph_edges[i]      -> non-deterministic (i derives from a load)
 *   g_graph_visited[id]   -> non-deterministic (id loaded from edges)
 */

#include <cstdio>

#include "core/classifier.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace gcl;

    const auto kernels = workloads::byName("bfs").kernels();
    for (const auto &kernel : kernels) {
        std::printf("=== %s ===\n%s\n", kernel.name().c_str(),
                    kernel.disassemble().c_str());

        core::LoadClassifier classifier(kernel);
        std::printf("%s\n", classifier.report().c_str());

        for (const auto &load : classifier.globalLoads()) {
            std::printf("pc %zu (%s):\n", load.pc,
                        core::toString(load.cls).c_str());
            std::printf("  instruction: %s\n",
                        kernel.inst(load.pc).toString().c_str());
            std::printf("  address provenance: %s\n",
                        load.slice.describe().c_str());
            if (!load.slice.taintingPcs.empty()) {
                std::printf("  tainting loads:\n");
                for (size_t pc : load.slice.taintingPcs)
                    std::printf("    pc %zu: %s\n", pc,
                                kernel.inst(pc).toString().c_str());
            }
            std::printf("\n");
        }
    }
    return 0;
}
