/**
 * @file
 * CUDA-Profiler-equivalent counter surface (Table III of the paper).
 *
 * The paper collects these counters on a real Tesla M2050 with the CUDA
 * Profiler; here they are derived from the simulator's instrumentation, as
 * described per counter below.
 */

#ifndef GCL_PROFILER_COUNTERS_HH
#define GCL_PROFILER_COUNTERS_HH

#include <string>
#include <vector>

#include "util/stats.hh"

namespace gcl::profiler
{

/** The Table III counter set for one application run. */
struct Counters
{
    /** Executed global-load warp instructions (gld_request). */
    double gldRequest = 0;

    /** Executed shared-load warp instructions (shared_load). */
    double sharedLoad = 0;

    /** Global-load hits in L1 (l1_global_load_hit). */
    double l1GlobalLoadHit = 0;

    /** Global-load misses in L1 (l1_global_load_miss). */
    double l1GlobalLoadMiss = 0;

    /**
     * Read queries / hits from L1 per L2 slice
     * (l2_subp<i>_read_sector_queries / .._read_hit_sectors). The paper's
     * GPU exposes two slices; our device has one slice per partition.
     */
    std::vector<double> l2ReadQueries;
    std::vector<double> l2ReadHits;

    /** Derive the counters from a finished run's stats. */
    static Counters fromStats(const StatsSet &stats, unsigned num_partitions);

    /** Multi-line "profiler output" rendering. */
    std::string report() const;
};

} // namespace gcl::profiler

#endif // GCL_PROFILER_COUNTERS_HH
