#include "counters.hh"

#include <sstream>

namespace gcl::profiler
{

Counters
Counters::fromStats(const StatsSet &stats, unsigned num_partitions)
{
    Counters c;
    c.gldRequest = stats.get("gload.warps.det") +
                   stats.get("gload.warps.nondet");
    c.sharedLoad = stats.get("sload.warps");

    const double access = stats.get("l1.access.det") +
                          stats.get("l1.access.nondet");
    const double miss = stats.get("l1.miss.det") +
                        stats.get("l1.miss.nondet");
    c.l1GlobalLoadHit = access - miss;
    c.l1GlobalLoadMiss = miss;

    c.l2ReadQueries.resize(num_partitions, 0.0);
    c.l2ReadHits.resize(num_partitions, 0.0);
    for (unsigned p = 0; p < num_partitions; ++p) {
        c.l2ReadQueries[p] = stats.get("l2.queries.p" + std::to_string(p));
        c.l2ReadHits[p] = stats.get("l2.hits.p" + std::to_string(p));
    }
    return c;
}

std::string
Counters::report() const
{
    std::ostringstream oss;
    auto line = [&oss](const std::string &name, double v) {
        oss << "  " << name;
        for (size_t pad = name.size(); pad < 34; ++pad)
            oss << ' ';
        oss << static_cast<unsigned long long>(v) << '\n';
    };
    line("gld_request", gldRequest);
    line("shared_load", sharedLoad);
    line("l1_global_load_hit", l1GlobalLoadHit);
    line("l1_global_load_miss", l1GlobalLoadMiss);
    for (size_t p = 0; p < l2ReadQueries.size(); ++p)
        line("l2_subp" + std::to_string(p) + "_read_sector_queries",
             l2ReadQueries[p]);
    for (size_t p = 0; p < l2ReadHits.size(); ++p)
        line("l2_subp" + std::to_string(p) + "_read_hit_sectors",
             l2ReadHits[p]);
    return oss.str();
}

} // namespace gcl::profiler
