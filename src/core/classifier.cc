#include "classifier.hh"

#include <sstream>

#include "util/logging.hh"

namespace gcl::core
{

std::string
toString(LoadClass cls)
{
    return cls == LoadClass::Deterministic ? "deterministic"
                                           : "non-deterministic";
}

LoadClassifier::LoadClassifier(const ptx::Kernel &kernel)
    : kernel_(kernel)
{
    ptx::Cfg cfg(kernel);
    dataflow::BackwardSlicer slicer(cfg);

    for (size_t pc : kernel.globalLoadPcs()) {
        LoadInfo info;
        info.pc = pc;
        info.slice = slicer.sliceAddress(pc);
        info.cls = info.slice.dependsOnMemory()
            ? LoadClass::NonDeterministic
            : LoadClass::Deterministic;
        indexOfPc_[pc] = loads_.size();
        loads_.push_back(std::move(info));
    }
}

LoadClass
LoadClassifier::classOf(size_t pc) const
{
    auto it = indexOfPc_.find(pc);
    gcl_assert(it != indexOfPc_.end(),
               "pc ", pc, " is not a global load in kernel '",
               kernel_.name(), "'");
    return loads_[it->second].cls;
}

bool
LoadClassifier::isNonDeterministic(size_t pc) const
{
    return classOf(pc) == LoadClass::NonDeterministic;
}

size_t
LoadClassifier::numDeterministic() const
{
    size_t n = 0;
    for (const auto &l : loads_)
        if (l.cls == LoadClass::Deterministic)
            ++n;
    return n;
}

size_t
LoadClassifier::numNonDeterministic() const
{
    return loads_.size() - numDeterministic();
}

std::string
LoadClassifier::report() const
{
    std::ostringstream oss;
    oss << "kernel '" << kernel_.name() << "': " << loads_.size()
        << " global load(s), " << numDeterministic() << " deterministic, "
        << numNonDeterministic() << " non-deterministic\n";
    for (const auto &l : loads_) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%4zu", l.pc);
        oss << "  pc " << buf << ": "
            << (l.cls == LoadClass::Deterministic ? "D" : "N") << "  "
            << kernel_.inst(l.pc).toString()
            << "  <- " << l.slice.describe() << '\n';
    }
    return oss.str();
}

} // namespace gcl::core
