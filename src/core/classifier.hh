/**
 * @file
 * The paper's core contribution: deterministic / non-deterministic load
 * classification (Section V).
 *
 * A global load is *deterministic* when its effective address derives only
 * from parameterized data — kernel arguments read via ld.param, the CUDA
 * built-ins (%tid, %ctaid, %ntid, %nctaid, ...), and literals — values that
 * are fixed at kernel launch. It is *non-deterministic* when any prior
 * data-space load (ld.global / ld.shared / ld.local / ld.const / ld.tex) or
 * atomic feeds the address computation, i.e., the address depends on memory
 * contents such as user input.
 */

#ifndef GCL_CORE_CLASSIFIER_HH
#define GCL_CORE_CLASSIFIER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataflow/backward_slice.hh"
#include "ptx/cfg.hh"
#include "ptx/kernel.hh"

namespace gcl::core
{

/** Classification outcome for a load instruction. */
enum class LoadClass : uint8_t
{
    Deterministic,
    NonDeterministic,
};

std::string toString(LoadClass cls);

/** Per-load classification together with its slice provenance. */
struct LoadInfo
{
    size_t pc;
    LoadClass cls;
    dataflow::SliceResult slice;
};

/**
 * Classifies every global load of one kernel by backward dataflow analysis.
 *
 * Construction runs the full analysis (CFG build, reaching definitions,
 * one backward slice per global load). Lookups afterwards are O(log n).
 */
class LoadClassifier
{
  public:
    explicit LoadClassifier(const ptx::Kernel &kernel);

    const ptx::Kernel &kernel() const { return kernel_; }

    /** All global loads in program order with their classifications. */
    const std::vector<LoadInfo> &globalLoads() const { return loads_; }

    /**
     * Class of the global load at @p pc; panics when @p pc is not a
     * global load.
     */
    LoadClass classOf(size_t pc) const;

    /** True when the global load at @p pc is non-deterministic. */
    bool isNonDeterministic(size_t pc) const;

    /** Number of static global loads per class. */
    size_t numDeterministic() const;
    size_t numNonDeterministic() const;

    /** Multi-line report: one line per load with provenance. */
    std::string report() const;

  private:
    const ptx::Kernel &kernel_;
    std::vector<LoadInfo> loads_;
    std::map<size_t, size_t> indexOfPc_;
};

} // namespace gcl::core

#endif // GCL_CORE_CLASSIFIER_HH
