/**
 * @file
 * Static well-formedness checks for kernels.
 */

#ifndef GCL_PTX_VERIFIER_HH
#define GCL_PTX_VERIFIER_HH

#include <string>
#include <vector>

namespace gcl::ptx
{

class Kernel;

/**
 * Collect well-formedness violations for @p kernel.
 *
 * Checked properties: register indices in range, branch targets in range,
 * memory operand shapes, guard predicates present, kernel termination
 * (every fall-through path ends in exit), and param indices in range.
 *
 * @return human-readable messages; empty when the kernel is well formed.
 */
std::vector<std::string> check(const Kernel &kernel);

/** Like check(), but panics with the first violation. */
void verify(const Kernel &kernel);

} // namespace gcl::ptx

#endif // GCL_PTX_VERIFIER_HH
