#include "verifier.hh"

#include <sstream>

#include "kernel.hh"
#include "util/logging.hh"

namespace gcl::ptx
{

namespace
{

void
checkOperand(const Operand &o, const Kernel &k, size_t pc,
             std::vector<std::string> &out)
{
    if (o.isReg() && o.reg >= k.numRegs()) {
        std::ostringstream oss;
        oss << "pc " << pc << ": register %r" << o.reg << " out of range";
        out.push_back(oss.str());
    }
}

} // namespace

std::vector<std::string>
check(const Kernel &k)
{
    std::vector<std::string> out;
    const auto &insts = k.insts();

    for (size_t pc = 0; pc < insts.size(); ++pc) {
        const Instruction &i = insts[pc];
        std::ostringstream at;
        at << "pc " << pc << " (" << i.toString() << "): ";

        if (i.writesDst() && i.dst >= k.numRegs())
            out.push_back(at.str() + "destination register out of range");
        for (const auto &s : i.srcs)
            checkOperand(s, k, pc, out);

        if (i.guarded && i.predReg >= k.numRegs())
            out.push_back(at.str() + "guard predicate out of range");

        if (i.isBranch()) {
            if (i.branchTarget < 0 ||
                i.branchTarget >= static_cast<int>(insts.size()))
                out.push_back(at.str() + "branch target out of range");
        }

        if (i.op == Opcode::LdParam && i.paramIndex >= k.numParams())
            out.push_back(at.str() + "param index out of range");

        if (i.op == Opcode::Ld && !i.srcs[0].isReg() && !i.srcs[0].isImm())
            out.push_back(at.str() + "load address must be a reg or imm");

        if (i.op == Opcode::St && i.srcs[1].isNone())
            out.push_back(at.str() + "store has no value operand");

        if ((i.op == Opcode::Ld || i.op == Opcode::St ||
             i.op == Opcode::Atom) &&
            i.accessSize != 1 && i.accessSize != 2 && i.accessSize != 4 &&
            i.accessSize != 8)
            out.push_back(at.str() + "unsupported access size");

        if (i.op == Opcode::Ld && i.space == MemSpace::Param)
            out.push_back(at.str() + "use LdParam for the param space");
    }

    // Every path that falls off the end must hit an exit: the final
    // instruction has to be exit or an unconditional branch.
    if (!insts.empty()) {
        const Instruction &last = insts.back();
        const bool terminates =
            last.isExit() || (last.isBranch() && !last.guarded);
        if (!terminates)
            out.push_back("kernel does not end in exit or an unconditional "
                          "branch");
    }

    return out;
}

void
verify(const Kernel &k)
{
    const auto problems = check(k);
    if (!problems.empty())
        gcl_panic("kernel '", k.name(), "' failed verification: ",
                  problems.front(), " (", problems.size(), " problem(s))");
}

} // namespace gcl::ptx
