#include "instruction.hh"

#include <sstream>

namespace gcl::ptx
{

namespace
{

std::string
operandToString(const Operand &o)
{
    std::ostringstream oss;
    switch (o.kind) {
      case Operand::Kind::None:
        oss << "<none>";
        break;
      case Operand::Kind::Reg:
        oss << "%r" << o.reg;
        break;
      case Operand::Kind::Imm:
        oss << static_cast<int64_t>(o.imm);
        break;
      case Operand::Kind::Special:
        oss << toString(o.sreg);
        break;
    }
    return oss.str();
}

} // namespace

unsigned
Instruction::numSrcs() const
{
    unsigned n = 0;
    for (const auto &s : srcs)
        if (!s.isNone())
            ++n;
    return n;
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    if (guarded)
        oss << '@' << (predNeg ? "!" : "") << "%r" << predReg << ' ';

    switch (op) {
      case Opcode::LdParam:
        oss << "ld.param.u64 %r" << dst << ", [param+" << paramIndex << ']';
        return oss.str();
      case Opcode::Ld:
        oss << "ld." << ptx::toString(space) << ".b" << accessSize * 8
            << " %r" << dst << ", [" << operandToString(srcs[0]);
        if (memOffset)
            oss << (memOffset > 0 ? "+" : "") << memOffset;
        oss << ']';
        return oss.str();
      case Opcode::St:
        oss << "st." << ptx::toString(space) << ".b" << accessSize * 8
            << " [" << operandToString(srcs[0]);
        if (memOffset)
            oss << (memOffset > 0 ? "+" : "") << memOffset;
        oss << "], " << operandToString(srcs[1]);
        return oss.str();
      case Opcode::Atom:
        oss << "atom.global." << ptx::toString(atomOp) << '.'
            << ptx::toString(type) << " %r" << dst << ", ["
            << operandToString(srcs[0]);
        if (memOffset)
            oss << (memOffset > 0 ? "+" : "") << memOffset;
        oss << "], " << operandToString(srcs[1]);
        if (atomOp == AtomOp::Cas)
            oss << ", " << operandToString(srcs[2]);
        return oss.str();
      case Opcode::Setp:
        oss << "setp." << ptx::toString(cmp) << '.' << ptx::toString(type)
            << " %r" << dst << ", " << operandToString(srcs[0]) << ", "
            << operandToString(srcs[1]);
        return oss.str();
      case Opcode::Cvt:
        oss << "cvt." << ptx::toString(type) << '.'
            << ptx::toString(cvtFrom) << " %r" << dst << ", "
            << operandToString(srcs[0]);
        return oss.str();
      case Opcode::Bra:
        oss << "bra " << branchTarget;
        return oss.str();
      case Opcode::Bar:
        oss << "bar.sync 0";
        return oss.str();
      case Opcode::Exit:
        oss << "exit";
        return oss.str();
      case Opcode::Nop:
        oss << "nop";
        return oss.str();
      default:
        break;
    }

    // Generic ALU/SFU format: op.type dst, srcs...
    oss << ptx::toString(op) << '.' << ptx::toString(type) << " %r" << dst;
    for (const auto &s : srcs) {
        if (s.isNone())
            break;
        oss << ", " << operandToString(s);
    }
    return oss.str();
}

} // namespace gcl::ptx
