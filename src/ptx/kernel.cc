#include "kernel.hh"

#include <sstream>

#include "util/logging.hh"

namespace gcl::ptx
{

Kernel::Kernel(std::string name, std::vector<Instruction> insts,
               uint16_t num_regs, uint16_t num_params,
               uint32_t shared_mem_bytes)
    : name_(std::move(name)), insts_(std::move(insts)),
      numRegs_(num_regs), numParams_(num_params),
      sharedMemBytes_(shared_mem_bytes)
{
    gcl_assert(!insts_.empty(), "kernel '", name_, "' has no instructions");
}

std::vector<size_t>
Kernel::globalLoadPcs() const
{
    std::vector<size_t> pcs;
    for (size_t pc = 0; pc < insts_.size(); ++pc)
        if (insts_[pc].isGlobalLoad())
            pcs.push_back(pc);
    return pcs;
}

std::string
Kernel::disassemble() const
{
    std::ostringstream oss;
    oss << ".kernel " << name_ << " (regs=" << numRegs_
        << ", params=" << numParams_
        << ", smem=" << sharedMemBytes_ << "B)\n";
    for (size_t pc = 0; pc < insts_.size(); ++pc) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%4zu: ", pc);
        oss << buf << insts_[pc].toString() << '\n';
    }
    return oss.str();
}

} // namespace gcl::ptx
