/**
 * @file
 * Instruction and operand representation of the PTX-like IR.
 */

#ifndef GCL_PTX_INSTRUCTION_HH
#define GCL_PTX_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "types.hh"

namespace gcl::ptx
{

/** A source operand: a virtual register, an immediate or a special reg. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm, Special };

    Kind kind = Kind::None;
    RegId reg = kNoReg;
    uint64_t imm = 0;           //!< raw bits (float imms carry bit patterns)
    SpecialReg sreg = SpecialReg::TidX;

    static Operand none() { return {}; }

    static Operand
    makeReg(RegId r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    makeImm(uint64_t bits)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = bits;
        return o;
    }

    static Operand
    makeSpecial(SpecialReg s)
    {
        Operand o;
        o.kind = Kind::Special;
        o.sreg = s;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isSpecial() const { return kind == Kind::Special; }
    bool isNone() const { return kind == Kind::None; }
};

/**
 * One IR instruction.
 *
 * Memory operations address memory as srcs[0] + memOffset. Stores carry the
 * value in srcs[1]; atomics carry their operand in srcs[1] (and the CAS swap
 * value in srcs[2]) and write the old memory value to dst.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    DataType type = DataType::U32;   //!< operation type
    DataType cvtFrom = DataType::U32; //!< source type, Cvt only

    RegId dst = kNoReg;
    std::array<Operand, 3> srcs = {Operand::none(), Operand::none(),
                                   Operand::none()};

    /** Optional guard predicate: execute iff pred(reg) xor predNeg. */
    bool guarded = false;
    RegId predReg = kNoReg;
    bool predNeg = false;

    /** Memory fields. */
    MemSpace space = MemSpace::Global;
    uint8_t accessSize = 4;          //!< bytes per thread: 1, 2, 4 or 8
    int64_t memOffset = 0;
    uint16_t paramIndex = 0;         //!< LdParam only
    AtomOp atomOp = AtomOp::Add;

    /** Control-flow fields. */
    int branchTarget = -1;           //!< instruction index, Bra only
    CmpOp cmp = CmpOp::Eq;           //!< Setp only

    bool isLoad() const { return op == Opcode::Ld || op == Opcode::LdParam; }
    bool isStore() const { return op == Opcode::St; }
    bool isAtomic() const { return op == Opcode::Atom; }

    /** Any operation handled by the LD/ST unit. */
    bool
    isMemory() const
    {
        return isLoad() || isStore() || isAtomic() || op == Opcode::Bar;
    }

    /** Loads from a data space, i.e.\ any ld other than ld.param. */
    bool
    isDataLoad() const
    {
        return op == Opcode::Ld;
    }

    bool isGlobalLoad() const { return op == Opcode::Ld && space == MemSpace::Global; }
    bool isSharedLoad() const { return op == Opcode::Ld && space == MemSpace::Shared; }

    /** Operations executed by the SFU pipeline. */
    bool
    isSfu() const
    {
        switch (op) {
          case Opcode::Rcp:
          case Opcode::Sqrt:
          case Opcode::Rsqrt:
          case Opcode::Sin:
          case Opcode::Cos:
          case Opcode::Ex2:
          case Opcode::Lg2:
            return true;
          default:
            return false;
        }
    }

    bool isBranch() const { return op == Opcode::Bra; }
    bool isExit() const { return op == Opcode::Exit; }
    bool isBarrier() const { return op == Opcode::Bar; }

    /** True when the instruction may write dst. */
    bool
    writesDst() const
    {
        return dst != kNoReg;
    }

    /** Number of meaningful source operands. */
    unsigned numSrcs() const;

    /** PTX-flavored disassembly, e.g.\ "ld.global.u32 %r5, [%r4+8]". */
    std::string toString() const;
};

} // namespace gcl::ptx

#endif // GCL_PTX_INSTRUCTION_HH
