#include "types.hh"

namespace gcl::ptx
{

std::string
toString(DataType type)
{
    switch (type) {
      case DataType::U32: return "u32";
      case DataType::S32: return "s32";
      case DataType::U64: return "u64";
      case DataType::S64: return "s64";
      case DataType::F32: return "f32";
      case DataType::F64: return "f64";
      case DataType::Pred: return "pred";
    }
    return "?";
}

std::string
toString(MemSpace space)
{
    switch (space) {
      case MemSpace::Global: return "global";
      case MemSpace::Shared: return "shared";
      case MemSpace::Local: return "local";
      case MemSpace::Const: return "const";
      case MemSpace::Param: return "param";
      case MemSpace::Tex: return "tex";
    }
    return "?";
}

std::string
toString(SpecialReg sreg)
{
    switch (sreg) {
      case SpecialReg::TidX: return "%tid.x";
      case SpecialReg::TidY: return "%tid.y";
      case SpecialReg::TidZ: return "%tid.z";
      case SpecialReg::NTidX: return "%ntid.x";
      case SpecialReg::NTidY: return "%ntid.y";
      case SpecialReg::NTidZ: return "%ntid.z";
      case SpecialReg::CtaIdX: return "%ctaid.x";
      case SpecialReg::CtaIdY: return "%ctaid.y";
      case SpecialReg::CtaIdZ: return "%ctaid.z";
      case SpecialReg::NCtaIdX: return "%nctaid.x";
      case SpecialReg::NCtaIdY: return "%nctaid.y";
      case SpecialReg::NCtaIdZ: return "%nctaid.z";
      case SpecialReg::LaneId: return "%laneid";
      case SpecialReg::WarpId: return "%warpid";
    }
    return "%?";
}

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::LdParam: return "ld.param";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Atom: return "atom";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::MulHi: return "mul.hi";
      case Opcode::Mad: return "mad";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Abs: return "abs";
      case Opcode::Neg: return "neg";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Not: return "not";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Setp: return "setp";
      case Opcode::Selp: return "selp";
      case Opcode::Cvt: return "cvt";
      case Opcode::Rcp: return "rcp";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::Rsqrt: return "rsqrt";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::Ex2: return "ex2";
      case Opcode::Lg2: return "lg2";
      case Opcode::Bra: return "bra";
      case Opcode::Bar: return "bar.sync";
      case Opcode::Exit: return "exit";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

std::string
toString(CmpOp cmp)
{
    switch (cmp) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
    }
    return "?";
}

std::string
toString(AtomOp op)
{
    switch (op) {
      case AtomOp::Add: return "add";
      case AtomOp::Min: return "min";
      case AtomOp::Max: return "max";
      case AtomOp::Exch: return "exch";
      case AtomOp::Cas: return "cas";
      case AtomOp::And: return "and";
      case AtomOp::Or: return "or";
    }
    return "?";
}

} // namespace gcl::ptx
