/**
 * @file
 * Control-flow graph and postdominator analysis over a kernel.
 *
 * Two clients: the SIMT stack uses immediate postdominators as branch
 * reconvergence points (the standard IPDOM scheme GPGPU-Sim implements), and
 * the dataflow layer (reaching definitions, backward slicing) walks the
 * block structure.
 */

#ifndef GCL_PTX_CFG_HH
#define GCL_PTX_CFG_HH

#include <cstdint>
#include <vector>

#include "kernel.hh"

namespace gcl::ptx
{

/** A maximal straight-line instruction range [first, last]. */
struct BasicBlock
{
    size_t first;                 //!< pc of the first instruction
    size_t last;                  //!< pc of the last instruction (inclusive)
    std::vector<int> succs;       //!< successor block ids (may be exit id)
    std::vector<int> preds;       //!< predecessor block ids
};

/** CFG with a virtual exit node and postdominator information. */
class Cfg
{
  public:
    explicit Cfg(const Kernel &kernel);

    const Kernel &kernel() const { return kernel_; }

    size_t numBlocks() const { return blocks_.size(); }
    const BasicBlock &block(size_t id) const { return blocks_[id]; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block containing instruction @p pc. */
    int blockOf(size_t pc) const { return blockOf_[pc]; }

    /** Id of the virtual exit node (== numBlocks()). */
    int exitId() const { return static_cast<int>(blocks_.size()); }

    /** True if the block is reachable from the entry. */
    bool reachable(size_t id) const { return reachable_[id]; }

    /**
     * Immediate postdominator of block @p id; exitId() when the closest
     * postdominator is the virtual exit.
     */
    int ipdom(size_t id) const { return ipdom_[id]; }

    /** True iff block @p a postdominates block @p b. */
    bool postDominates(int a, int b) const;

    /**
     * Reconvergence pc for the (conditional) branch at @p branch_pc: the
     * first instruction of the branch block's immediate postdominator, or
     * kernel().size() when control reconverges only at kernel exit.
     */
    size_t reconvergencePc(size_t branch_pc) const;

  private:
    void buildBlocks();
    void buildEdges();
    void computeReachable();
    void computePostDominators();

    const Kernel &kernel_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOf_;
    std::vector<bool> reachable_;
    std::vector<int> ipdom_;
    /** pdomSets_[b] = set of blocks (plus exit) postdominating b, as bits. */
    std::vector<std::vector<uint64_t>> pdomSets_;
};

} // namespace gcl::ptx

#endif // GCL_PTX_CFG_HH
