/**
 * @file
 * Fluent builder for kernels in the PTX-like IR.
 *
 * Workloads construct kernels through this class the way nvcc would lower
 * CUDA: special registers for the built-ins, ld.param for kernel arguments,
 * explicit address arithmetic, and labels/branches for control flow. The
 * builder assigns virtual registers, resolves labels at build() time and
 * runs the verifier.
 */

#ifndef GCL_PTX_BUILDER_HH
#define GCL_PTX_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "kernel.hh"

namespace gcl::ptx
{

/** Strongly-typed wrapper for a virtual register produced by the builder. */
struct Reg
{
    RegId id = kNoReg;
    bool valid() const { return id != kNoReg; }
};

/** Label handle; create with newLabel(), bind with place(). */
struct Label
{
    int index = -1;
};

/**
 * Source-operand adapter: accepts a Reg, an integer immediate or a special
 * register wherever an instruction input is expected.
 */
struct Src
{
    Operand op;

    Src(Reg r) : op(Operand::makeReg(r.id)) {}
    Src(int v) : op(Operand::makeImm(static_cast<uint64_t>(static_cast<int64_t>(v)))) {}
    Src(unsigned v) : op(Operand::makeImm(v)) {}
    Src(long v) : op(Operand::makeImm(static_cast<uint64_t>(v))) {}
    Src(long long v) : op(Operand::makeImm(static_cast<uint64_t>(v))) {}
    Src(unsigned long v) : op(Operand::makeImm(v)) {}
    Src(unsigned long long v) : op(Operand::makeImm(v)) {}
    Src(SpecialReg s) : op(Operand::makeSpecial(s)) {}
    explicit Src(Operand o) : op(o) {}
};

/** Immediate carrying f32 bits. */
Src immF32(float v);
/** Immediate carrying f64 bits. */
Src immF64(double v);

/** Builder for one kernel. See the workloads directory for usage examples. */
class KernelBuilder
{
  public:
    KernelBuilder(std::string name, uint16_t num_params,
                  uint32_t shared_mem_bytes = 0);

    /** Allocate a fresh virtual register. */
    Reg reg();

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /** ld.param: read 64-bit kernel argument @p index. */
    Reg ldParam(uint16_t index);

    /**
     * Load @p size bytes (default: typeSize(type)) from @p space at
     * address @p addr + @p offset; the value is zero-extended into dst.
     */
    Reg ld(MemSpace space, DataType type, Src addr, int64_t offset = 0,
           unsigned size = 0);

    /** Store @p value (low @p size bytes) to @p space. */
    void st(MemSpace space, DataType type, Src addr, Src value,
            int64_t offset = 0, unsigned size = 0);

    /** Global-memory atomic; returns the old value. */
    Reg atom(AtomOp aop, DataType type, Src addr, Src value,
             int64_t offset = 0);

    /** Global-memory compare-and-swap; returns the old value. */
    Reg atomCas(DataType type, Src addr, Src compare, Src swap,
                int64_t offset = 0);

    // ------------------------------------------------------------------
    // Arithmetic / logic (SP pipeline)
    // ------------------------------------------------------------------

    Reg mov(DataType type, Src a);

    /**
     * mov into an existing register. This is how loop induction variables
     * and accumulators are updated: every other helper allocates a fresh
     * destination.
     */
    void assign(DataType type, Reg dst, Src a);

    Reg add(DataType type, Src a, Src b);
    Reg sub(DataType type, Src a, Src b);
    Reg mul(DataType type, Src a, Src b);
    Reg mulHi(DataType type, Src a, Src b);
    Reg mad(DataType type, Src a, Src b, Src c);
    Reg div(DataType type, Src a, Src b);
    Reg rem(DataType type, Src a, Src b);
    Reg min_(DataType type, Src a, Src b);
    Reg max_(DataType type, Src a, Src b);
    Reg abs_(DataType type, Src a);
    Reg neg(DataType type, Src a);
    Reg and_(DataType type, Src a, Src b);
    Reg or_(DataType type, Src a, Src b);
    Reg xor_(DataType type, Src a, Src b);
    Reg not_(DataType type, Src a);
    Reg shl(DataType type, Src a, Src b);
    Reg shr(DataType type, Src a, Src b);
    Reg setp(CmpOp cmp, DataType type, Src a, Src b);
    Reg selp(DataType type, Src if_true, Src if_false, Reg pred);
    Reg cvt(DataType to, DataType from, Src a);

    // ------------------------------------------------------------------
    // Transcendentals (SFU pipeline)
    // ------------------------------------------------------------------

    Reg sfu(Opcode op, DataType type, Src a);

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    Label newLabel();
    /** Bind @p label to the next emitted instruction. */
    void place(Label label);
    void bra(Label label);
    void braIf(Reg pred, Label label);
    void braIfNot(Reg pred, Label label);
    void bar();
    void exit();

    // ------------------------------------------------------------------
    // Compound helpers matching common CUDA lowering patterns
    // ------------------------------------------------------------------

    /** blockIdx.x * blockDim.x + threadIdx.x, as u32. */
    Reg globalTidX();

    /**
     * base + index * elem_size as a 64-bit address. @p index is a u32
     * value; @p elem_size must be a power of two.
     */
    Reg elemAddr(Src base, Src index, unsigned elem_size);

    /** Current size in instructions (the next emitted instruction's PC). */
    size_t pc() const { return insts_.size(); }

    /**
     * Finalize: appends a trailing exit when missing, resolves labels,
     * verifies the kernel, and returns it.
     */
    Kernel build();

  private:
    Reg emit(Instruction inst);

    std::string name_;
    uint16_t numParams_;
    uint32_t sharedMemBytes_;
    uint16_t nextReg_ = 0;
    std::vector<Instruction> insts_;
    std::vector<int> labelPcs_;       //!< label index -> pc (-1: unplaced)
    std::vector<int> pendingLabels_;  //!< labels awaiting the next inst
    bool built_ = false;
};

} // namespace gcl::ptx

#endif // GCL_PTX_BUILDER_HH
