#include "cfg.hh"

#include <algorithm>
#include <deque>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace gcl::ptx
{

namespace
{

/** Fixed-width bitset helpers over vector<uint64_t>. */
constexpr size_t kWordBits = 64;

size_t
wordsFor(size_t bits)
{
    return (bits + kWordBits - 1) / kWordBits;
}

bool
testBit(const std::vector<uint64_t> &v, size_t i)
{
    return (v[i / kWordBits] >> (i % kWordBits)) & 1;
}

void
setBit(std::vector<uint64_t> &v, size_t i)
{
    v[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

/** a &= b; returns true when a changed. */
bool
intersectInto(std::vector<uint64_t> &a, const std::vector<uint64_t> &b)
{
    bool changed = false;
    for (size_t w = 0; w < a.size(); ++w) {
        const uint64_t nv = a[w] & b[w];
        if (nv != a[w]) {
            a[w] = nv;
            changed = true;
        }
    }
    return changed;
}

size_t
popcount(const std::vector<uint64_t> &v)
{
    size_t n = 0;
    for (uint64_t w : v)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

} // namespace

Cfg::Cfg(const Kernel &kernel)
    : kernel_(kernel)
{
    buildBlocks();
    buildEdges();
    computeReachable();
    computePostDominators();
}

void
Cfg::buildBlocks()
{
    const auto &insts = kernel_.insts();
    const size_t n = insts.size();

    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (size_t pc = 0; pc < n; ++pc) {
        const Instruction &i = insts[pc];
        if (i.isBranch()) {
            leader[static_cast<size_t>(i.branchTarget)] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
        } else if (i.isExit()) {
            if (pc + 1 < n)
                leader[pc + 1] = true;
        }
    }

    blockOf_.assign(n, -1);
    for (size_t pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            BasicBlock bb;
            bb.first = pc;
            bb.last = pc;
            blocks_.push_back(bb);
        }
        gcl_assert(!blocks_.empty(), "pc 0 must be a leader");
        blocks_.back().last = pc;
        blockOf_[pc] = static_cast<int>(blocks_.size()) - 1;
    }
}

void
Cfg::buildEdges()
{
    const auto &insts = kernel_.insts();
    for (size_t id = 0; id < blocks_.size(); ++id) {
        BasicBlock &bb = blocks_[id];
        const Instruction &term = insts[bb.last];

        auto add_succ = [&](int succ) {
            if (std::find(bb.succs.begin(), bb.succs.end(), succ) ==
                bb.succs.end())
                bb.succs.push_back(succ);
        };

        if (term.isExit()) {
            add_succ(exitId());
        } else if (term.isBranch()) {
            add_succ(blockOf_[static_cast<size_t>(term.branchTarget)]);
            if (term.guarded) {
                // Conditional: fall-through is also possible.
                if (bb.last + 1 < insts.size())
                    add_succ(blockOf_[bb.last + 1]);
                else
                    add_succ(exitId());
            }
        } else {
            if (bb.last + 1 < insts.size())
                add_succ(blockOf_[bb.last + 1]);
            else
                add_succ(exitId());
        }
    }

    for (size_t id = 0; id < blocks_.size(); ++id)
        for (int succ : blocks_[id].succs)
            if (succ != exitId())
                blocks_[static_cast<size_t>(succ)]
                    .preds.push_back(static_cast<int>(id));
}

void
Cfg::computeReachable()
{
    reachable_.assign(blocks_.size(), false);
    std::deque<int> work{0};
    reachable_[0] = true;
    while (!work.empty()) {
        const int id = work.front();
        work.pop_front();
        for (int succ : blocks_[static_cast<size_t>(id)].succs) {
            if (succ == exitId() || reachable_[static_cast<size_t>(succ)])
                continue;
            reachable_[static_cast<size_t>(succ)] = true;
            work.push_back(succ);
        }
    }
}

void
Cfg::computePostDominators()
{
    // Iterative set-intersection dataflow on the reverse CFG. Universe is
    // blocks plus the virtual exit. CFGs here are tiny (tens of blocks),
    // so bitset intersection to a fixpoint is plenty fast.
    const size_t universe = blocks_.size() + 1;
    const size_t words = wordsFor(universe);
    const size_t exit_bit = blocks_.size();

    std::vector<uint64_t> full(words, 0);
    for (size_t i = 0; i < universe; ++i)
        setBit(full, i);

    pdomSets_.assign(blocks_.size(), full);
    std::vector<uint64_t> exit_set(words, 0);
    setBit(exit_set, exit_bit);

    bool changed = true;
    while (changed) {
        changed = false;
        // Reverse program order converges quickly for postdominators.
        for (size_t id = blocks_.size(); id-- > 0;) {
            if (!reachable_[id])
                continue;
            std::vector<uint64_t> meet = full;
            for (int succ : blocks_[id].succs) {
                const auto &succ_set =
                    succ == exitId() ? exit_set
                                     : pdomSets_[static_cast<size_t>(succ)];
                intersectInto(meet, succ_set);
            }
            setBit(meet, id);
            if (meet != pdomSets_[id]) {
                pdomSets_[id] = std::move(meet);
                changed = true;
            }
        }
    }

    // The strict postdominators of a block form a chain ordered by set
    // inclusion; the immediate (closest) one is postdominated by all the
    // others, i.e.\ it is the candidate with the LARGEST postdominator set.
    ipdom_.assign(blocks_.size(), exitId());
    for (size_t id = 0; id < blocks_.size(); ++id) {
        if (!reachable_[id])
            continue;
        int best = exitId();
        size_t best_size = 0;
        for (size_t cand = 0; cand < blocks_.size(); ++cand) {
            if (cand == id || !testBit(pdomSets_[id], cand))
                continue;
            const size_t sz = popcount(pdomSets_[cand]);
            if (sz > best_size) {
                best_size = sz;
                best = static_cast<int>(cand);
            }
        }
        ipdom_[id] = best;
    }
}

bool
Cfg::postDominates(int a, int b) const
{
    if (a == exitId())
        return true;
    if (b == exitId())
        return false;
    if (!reachable_[static_cast<size_t>(b)])
        return false;
    return testBit(pdomSets_[static_cast<size_t>(b)],
                   static_cast<size_t>(a));
}

size_t
Cfg::reconvergencePc(size_t branch_pc) const
{
    gcl_assert(kernel_.inst(branch_pc).isBranch(),
               "reconvergencePc queried for a non-branch");
    const int bb = blockOf_[branch_pc];
    const int target = ipdom_[static_cast<size_t>(bb)];
    if (target == exitId())
        return kernel_.size();
    return blocks_[static_cast<size_t>(target)].first;
}

} // namespace gcl::ptx
