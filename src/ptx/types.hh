/**
 * @file
 * Enumerations shared by the PTX-like IR.
 *
 * The IR deliberately keeps only the features the paper's analysis depends
 * on: memory-space-tagged loads (ld.param vs ld.global vs ld.shared ...),
 * special registers holding the CUDA built-ins (%tid, %ctaid, ...),
 * predication, branches and barriers. See DESIGN.md §"Substitutions".
 */

#ifndef GCL_PTX_TYPES_HH
#define GCL_PTX_TYPES_HH

#include <cstdint>
#include <string>

namespace gcl::ptx
{

/** Virtual register index inside a kernel. */
using RegId = uint16_t;

/** Sentinel for "no register". */
constexpr RegId kNoReg = 0xffff;

/** Operation/value type of an instruction. Registers hold 64 raw bits. */
enum class DataType : uint8_t
{
    U32,
    S32,
    U64,
    S64,
    F32,
    F64,
    Pred,
};

/** Memory space of a load/store, mirroring the PTX state spaces. */
enum class MemSpace : uint8_t
{
    Global,
    Shared,
    Local,
    Const,
    Param,
    Tex,
};

/** CUDA built-in values exposed as read-only special registers. */
enum class SpecialReg : uint8_t
{
    TidX,
    TidY,
    TidZ,
    NTidX,
    NTidY,
    NTidZ,
    CtaIdX,
    CtaIdY,
    CtaIdZ,
    NCtaIdX,
    NCtaIdY,
    NCtaIdZ,
    LaneId,
    WarpId,
};

/** Instruction opcodes. Grouped by the SM function unit that executes them. */
enum class Opcode : uint8_t
{
    // Memory operations (LD/ST unit).
    LdParam,
    Ld,       //!< load from srcs[0]+offset in 'space'
    St,       //!< store srcs[1] to srcs[0]+offset in 'space'
    Atom,     //!< atomic read-modify-write on global memory

    // Simple arithmetic / logic (SP unit).
    Mov,
    Add,
    Sub,
    Mul,
    MulHi,
    Mad,      //!< dst = srcs[0]*srcs[1] + srcs[2]
    Div,
    Rem,
    Min,
    Max,
    Abs,
    Neg,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,
    Setp,     //!< predicate dst = cmp(srcs[0], srcs[1])
    Selp,     //!< dst = pred ? srcs[0] : srcs[1] (pred in srcs[2])
    Cvt,      //!< convert srcs[0] from 'cvtFrom' type into 'type'

    // Transcendental ops (SFU unit).
    Rcp,
    Sqrt,
    Rsqrt,
    Sin,
    Cos,
    Ex2,
    Lg2,

    // Control flow.
    Bra,      //!< unconditional unless guarded by a predicate
    Bar,      //!< CTA-wide barrier (bar.sync 0)
    Exit,
    Nop,
};

/** Comparison operator for Setp. */
enum class CmpOp : uint8_t
{
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

/** Atomic read-modify-write operator. */
enum class AtomOp : uint8_t
{
    Add,
    Min,
    Max,
    Exch,
    Cas,      //!< compare srcs[1], swap in srcs[2]
    And,
    Or,
};

/** Byte width of a value of @p type when stored to memory. */
constexpr unsigned
typeSize(DataType type)
{
    switch (type) {
      case DataType::U32:
      case DataType::S32:
      case DataType::F32:
        return 4;
      case DataType::U64:
      case DataType::S64:
      case DataType::F64:
        return 8;
      case DataType::Pred:
        return 1;
    }
    return 4;
}

/** True for floating-point operation types. */
constexpr bool
isFloat(DataType type)
{
    return type == DataType::F32 || type == DataType::F64;
}

/** True for signed integer operation types. */
constexpr bool
isSigned(DataType type)
{
    return type == DataType::S32 || type == DataType::S64;
}

std::string toString(DataType type);
std::string toString(MemSpace space);
std::string toString(SpecialReg sreg);
std::string toString(Opcode op);
std::string toString(CmpOp cmp);
std::string toString(AtomOp op);

} // namespace gcl::ptx

#endif // GCL_PTX_TYPES_HH
