/**
 * @file
 * Kernel container: an instruction list plus launch-relevant metadata.
 */

#ifndef GCL_PTX_KERNEL_HH
#define GCL_PTX_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "instruction.hh"

namespace gcl::ptx
{

/**
 * A device kernel in the PTX-like IR.
 *
 * Instruction indices double as program counters: the simulator's PC for a
 * warp is an index into insts(). Branch targets are instruction indices.
 */
class Kernel
{
  public:
    Kernel(std::string name, std::vector<Instruction> insts,
           uint16_t num_regs, uint16_t num_params,
           uint32_t shared_mem_bytes);

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &insts() const { return insts_; }
    const Instruction &inst(size_t pc) const { return insts_[pc]; }
    size_t size() const { return insts_.size(); }

    uint16_t numRegs() const { return numRegs_; }
    uint16_t numParams() const { return numParams_; }
    uint32_t sharedMemBytes() const { return sharedMemBytes_; }

    /** PCs of all global loads, in program order. */
    std::vector<size_t> globalLoadPcs() const;

    /** Full disassembly listing with PC prefixes. */
    std::string disassemble() const;

  private:
    std::string name_;
    std::vector<Instruction> insts_;
    uint16_t numRegs_;
    uint16_t numParams_;
    uint32_t sharedMemBytes_;
};

} // namespace gcl::ptx

#endif // GCL_PTX_KERNEL_HH
