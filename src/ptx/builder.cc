#include "builder.hh"

#include <cstring>

#include "util/bitutil.hh"
#include "util/logging.hh"
#include "verifier.hh"

namespace gcl::ptx
{

Src
immF32(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return Src(Operand::makeImm(bits));
}

Src
immF64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return Src(Operand::makeImm(bits));
}

KernelBuilder::KernelBuilder(std::string name, uint16_t num_params,
                             uint32_t shared_mem_bytes)
    : name_(std::move(name)), numParams_(num_params),
      sharedMemBytes_(shared_mem_bytes)
{
}

Reg
KernelBuilder::reg()
{
    gcl_assert(nextReg_ < kNoReg - 1, "register space exhausted");
    return Reg{nextReg_++};
}

Reg
KernelBuilder::emit(Instruction inst)
{
    gcl_assert(!built_, "builder already finalized");
    // Bind any labels waiting for the next instruction.
    for (int label : pendingLabels_)
        labelPcs_[label] = static_cast<int>(insts_.size());
    pendingLabels_.clear();
    insts_.push_back(inst);
    return Reg{inst.dst};
}

Reg
KernelBuilder::ldParam(uint16_t index)
{
    gcl_assert(index < numParams_, "param index ", index, " out of range");
    Instruction i;
    i.op = Opcode::LdParam;
    i.type = DataType::U64;
    i.space = MemSpace::Param;
    i.dst = reg().id;
    i.paramIndex = index;
    i.accessSize = 8;
    return emit(i);
}

Reg
KernelBuilder::ld(MemSpace space, DataType type, Src addr, int64_t offset,
                  unsigned size)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.type = type;
    i.space = space;
    i.dst = reg().id;
    i.srcs[0] = addr.op;
    i.memOffset = offset;
    i.accessSize = static_cast<uint8_t>(size ? size : typeSize(type));
    return emit(i);
}

void
KernelBuilder::st(MemSpace space, DataType type, Src addr, Src value,
                  int64_t offset, unsigned size)
{
    Instruction i;
    i.op = Opcode::St;
    i.type = type;
    i.space = space;
    i.srcs[0] = addr.op;
    i.srcs[1] = value.op;
    i.memOffset = offset;
    i.accessSize = static_cast<uint8_t>(size ? size : typeSize(type));
    emit(i);
}

Reg
KernelBuilder::atom(AtomOp aop, DataType type, Src addr, Src value,
                    int64_t offset)
{
    gcl_assert(aop != AtomOp::Cas, "use atomCas for compare-and-swap");
    Instruction i;
    i.op = Opcode::Atom;
    i.atomOp = aop;
    i.type = type;
    i.space = MemSpace::Global;
    i.dst = reg().id;
    i.srcs[0] = addr.op;
    i.srcs[1] = value.op;
    i.memOffset = offset;
    i.accessSize = static_cast<uint8_t>(typeSize(type));
    return emit(i);
}

Reg
KernelBuilder::atomCas(DataType type, Src addr, Src compare, Src swap,
                       int64_t offset)
{
    Instruction i;
    i.op = Opcode::Atom;
    i.atomOp = AtomOp::Cas;
    i.type = type;
    i.space = MemSpace::Global;
    i.dst = reg().id;
    i.srcs[0] = addr.op;
    i.srcs[1] = compare.op;
    i.srcs[2] = swap.op;
    i.memOffset = offset;
    i.accessSize = static_cast<uint8_t>(typeSize(type));
    return emit(i);
}

namespace
{

Instruction
makeAlu(Opcode op, DataType type, RegId dst, Src a)
{
    Instruction i;
    i.op = op;
    i.type = type;
    i.dst = dst;
    i.srcs[0] = a.op;
    return i;
}

Instruction
makeAlu(Opcode op, DataType type, RegId dst, Src a, Src b)
{
    Instruction i = makeAlu(op, type, dst, a);
    i.srcs[1] = b.op;
    return i;
}

Instruction
makeAlu(Opcode op, DataType type, RegId dst, Src a, Src b, Src c)
{
    Instruction i = makeAlu(op, type, dst, a, b);
    i.srcs[2] = c.op;
    return i;
}

} // namespace

Reg
KernelBuilder::mov(DataType type, Src a)
{
    return emit(makeAlu(Opcode::Mov, type, reg().id, a));
}

void
KernelBuilder::assign(DataType type, Reg dst, Src a)
{
    gcl_assert(dst.valid(), "assign to an invalid register");
    emit(makeAlu(Opcode::Mov, type, dst.id, a));
}

Reg
KernelBuilder::add(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Add, type, reg().id, a, b));
}

Reg
KernelBuilder::sub(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Sub, type, reg().id, a, b));
}

Reg
KernelBuilder::mul(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Mul, type, reg().id, a, b));
}

Reg
KernelBuilder::mulHi(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::MulHi, type, reg().id, a, b));
}

Reg
KernelBuilder::mad(DataType type, Src a, Src b, Src c)
{
    return emit(makeAlu(Opcode::Mad, type, reg().id, a, b, c));
}

Reg
KernelBuilder::div(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Div, type, reg().id, a, b));
}

Reg
KernelBuilder::rem(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Rem, type, reg().id, a, b));
}

Reg
KernelBuilder::min_(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Min, type, reg().id, a, b));
}

Reg
KernelBuilder::max_(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Max, type, reg().id, a, b));
}

Reg
KernelBuilder::abs_(DataType type, Src a)
{
    return emit(makeAlu(Opcode::Abs, type, reg().id, a));
}

Reg
KernelBuilder::neg(DataType type, Src a)
{
    return emit(makeAlu(Opcode::Neg, type, reg().id, a));
}

Reg
KernelBuilder::and_(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::And, type, reg().id, a, b));
}

Reg
KernelBuilder::or_(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Or, type, reg().id, a, b));
}

Reg
KernelBuilder::xor_(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Xor, type, reg().id, a, b));
}

Reg
KernelBuilder::not_(DataType type, Src a)
{
    return emit(makeAlu(Opcode::Not, type, reg().id, a));
}

Reg
KernelBuilder::shl(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Shl, type, reg().id, a, b));
}

Reg
KernelBuilder::shr(DataType type, Src a, Src b)
{
    return emit(makeAlu(Opcode::Shr, type, reg().id, a, b));
}

Reg
KernelBuilder::setp(CmpOp cmp, DataType type, Src a, Src b)
{
    Instruction i = makeAlu(Opcode::Setp, type, reg().id, a, b);
    i.cmp = cmp;
    return emit(i);
}

Reg
KernelBuilder::selp(DataType type, Src if_true, Src if_false, Reg pred)
{
    return emit(makeAlu(Opcode::Selp, type, reg().id, if_true, if_false,
                        Src(pred)));
}

Reg
KernelBuilder::cvt(DataType to, DataType from, Src a)
{
    Instruction i = makeAlu(Opcode::Cvt, to, reg().id, a);
    i.cvtFrom = from;
    return emit(i);
}

Reg
KernelBuilder::sfu(Opcode op, DataType type, Src a)
{
    Instruction i = makeAlu(op, type, reg().id, a);
    gcl_assert(i.isSfu(), "opcode ", toString(op), " is not an SFU op");
    return emit(i);
}

Label
KernelBuilder::newLabel()
{
    labelPcs_.push_back(-1);
    return Label{static_cast<int>(labelPcs_.size()) - 1};
}

void
KernelBuilder::place(Label label)
{
    gcl_assert(label.index >= 0 &&
               label.index < static_cast<int>(labelPcs_.size()),
               "invalid label");
    gcl_assert(labelPcs_[label.index] == -1, "label placed twice");
    pendingLabels_.push_back(label.index);
}

void
KernelBuilder::bra(Label label)
{
    Instruction i;
    i.op = Opcode::Bra;
    // Encode the label index; resolved to a pc in build().
    i.branchTarget = label.index;
    emit(i);
}

void
KernelBuilder::braIf(Reg pred, Label label)
{
    Instruction i;
    i.op = Opcode::Bra;
    i.branchTarget = label.index;
    i.guarded = true;
    i.predReg = pred.id;
    i.predNeg = false;
    emit(i);
}

void
KernelBuilder::braIfNot(Reg pred, Label label)
{
    Instruction i;
    i.op = Opcode::Bra;
    i.branchTarget = label.index;
    i.guarded = true;
    i.predReg = pred.id;
    i.predNeg = true;
    emit(i);
}

void
KernelBuilder::bar()
{
    Instruction i;
    i.op = Opcode::Bar;
    emit(i);
}

void
KernelBuilder::exit()
{
    Instruction i;
    i.op = Opcode::Exit;
    emit(i);
}

Reg
KernelBuilder::globalTidX()
{
    // mad.u32 %tid_global, %ctaid.x, %ntid.x, %tid.x
    return mad(DataType::U32, Src(SpecialReg::CtaIdX),
               Src(SpecialReg::NTidX), Src(SpecialReg::TidX));
}

Reg
KernelBuilder::elemAddr(Src base, Src index, unsigned elem_size)
{
    gcl_assert(isPowerOf2(elem_size), "element size must be a power of two");
    Reg wide = cvt(DataType::U64, DataType::U32, index);
    Reg scaled = elem_size == 1
        ? wide
        : shl(DataType::U64, wide, static_cast<int>(floorLog2(elem_size)));
    return add(DataType::U64, base, scaled);
}

Kernel
KernelBuilder::build()
{
    gcl_assert(!built_, "builder already finalized");

    // A label may be bound to the end of the body; make sure there is an
    // instruction there by closing with exit (also the common case when the
    // author simply never wrote one).
    if (!pendingLabels_.empty() || insts_.empty() || !insts_.back().isExit())
        exit();

    // Resolve label indices into instruction PCs.
    for (auto &inst : insts_) {
        if (!inst.isBranch())
            continue;
        const int label = inst.branchTarget;
        gcl_assert(label >= 0 && label < static_cast<int>(labelPcs_.size()),
                   "branch to invalid label in kernel '", name_, "'");
        gcl_assert(labelPcs_[label] >= 0,
                   "branch to unplaced label in kernel '", name_, "'");
        inst.branchTarget = labelPcs_[label];
    }

    built_ = true;
    Kernel kernel(name_, std::move(insts_), nextReg_, numParams_,
                  sharedMemBytes_);
    verify(kernel);
    return kernel;
}

} // namespace gcl::ptx
