/**
 * @file
 * The whole device: SMs, interconnect, memory partitions, the CTA
 * dispatcher, and the host-facing API (malloc / memcpy / launch), mirroring
 * the CUDA runtime surface the paper's benchmarks use.
 */

#ifndef GCL_SIM_GPU_HH
#define GCL_SIM_GPU_HH

#include <exception>
#include <memory>
#include <vector>

#include "config.hh"
#include "crit/crit.hh"
#include "exec/tick_team.hh"
#include "guard/fault.hh"
#include "guard/watchdog.hh"
#include "interconnect.hh"
#include "mem_partition.hh"
#include "memory.hh"
#include "sm.hh"
#include "stats.hh"
#include "trace/stage_sink.hh"
#include "warp.hh"

namespace gcl::sim
{

/** A simulated GPU device. */
class Gpu
{
  public:
    explicit Gpu(GpuConfig config = GpuConfig{});

    // ---- Host API ----

    /** Allocate device memory; returns the device address. */
    uint64_t deviceMalloc(size_t bytes);

    /** Host -> device copy. */
    void memcpyToDevice(uint64_t dst, const void *src, size_t bytes);

    /** Device -> host copy. */
    void memcpyToHost(void *dst, uint64_t src, size_t bytes);

    /**
     * Launch a kernel and simulate it to completion.
     *
     * Classification of the kernel's global loads (the paper's Section V
     * analysis) runs automatically and attributes every dynamic event to
     * its static class.
     *
     * @throws SimError when the run exceeds its max_cycles budget
     *         (Kind::Timeout), the forward-progress watchdog fires
     *         (Kind::Hang, HangReport attached), a configured fault plan
     *         stops the kernel (Kind::FaultInjected), or a simulator /
     *         workload invariant trips. The device is not usable after a
     *         throw; the owner abandons the whole run.
     */
    void launch(const ptx::Kernel &kernel, Dim3 grid, Dim3 cta,
                std::vector<uint64_t> params);

    // ---- Introspection ----

    const GpuConfig &config() const { return config_; }
    GlobalMemory &memory() { return gmem_; }
    SimStats &stats() { return stats_; }

    /** Cycles consumed by the most recent launch. */
    Cycle lastLaunchCycles() const { return lastLaunchCycles_; }

    /** Fold locality maps into the stats set; call once, after all launches. */
    void finalizeStats();

    /** Fault oracle for this run; null when no plan is configured. */
    const guard::FaultInjector *faultInjector() const { return fault_.get(); }

    /**
     * Install an event sink (gcl::trace) on every unit. When
     * @p timeline_interval is nonzero, occupancy/queue-depth counters are
     * additionally sampled every that many cycles during launches. Pass
     * nullptr to detach.
     */
    void attachTrace(trace::TraceSink *sink, Cycle timeline_interval = 0);

    /** Default line-address to memory-partition mapping. */
    static int mapPartition(uint64_t line_addr, int sm_id,
                            const GpuConfig &config);

    /** Worker threads the tick loop actually uses (after clamping). */
    unsigned effectiveSimThreads() const { return threads_; }

  private:
    struct DispatchState
    {
        uint64_t next = 0;     //!< next linear CTA id to place
        uint64_t total = 0;
        unsigned rrSm = 0;
        const LaunchContext *launch = nullptr;
    };

    void dispatchCtas(DispatchState &dispatch);
    bool allIdle() const;
    void sampleTimeline(Cycle now) const;
    guard::HangReport buildHangReport(const std::string &kernel,
                                      Cycle now) const;

    // ---- Deterministic parallel tick (sim_threads > 1) ----

    /** Total tickable units: numSms SMs then numPartitions partitions. */
    unsigned numUnits() const;

    /** TickTeam entry: tick every unit mapped to @p participant. */
    static void tickTask(void *ctx, unsigned participant);
    void tickParticipant(unsigned participant);

    /** Compute-phase body for one unit; exceptions land in unitErrors_. */
    void unitTick(unsigned unit);

    /** Commit staged trace events/ids; no-op when untraced. */
    void commitTrace(int err_pos);

    /**
     * Serial position of the lowest-positioned captured unit error, or -1.
     * Positions order errors the way a serial tick would have hit them:
     * SM i's cycle = i, partition p = numSms + p, SM i's response drain =
     * numSms + numPartitions + i.
     */
    int firstErrorPos() const;

    GpuConfig config_;
    GlobalMemory gmem_;
    SimStats stats_;
    /**
     * Handle pools for every memory request / warp op of the run. Declared
     * before the units that hold references into them (interconnect, SMs,
     * partitions) so the pools outlive all outstanding handles.
     */
    MemPools pools_;
    Interconnect icnt_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::vector<std::unique_ptr<MemPartition>> partitions_;
    /**
     * Global monotonic cycle counter across launches. Timing state with
     * absolute stamps (e.g.\ the DRAM channels' busy-until marks) persists
     * between launches, so the clock must never run backwards.
     */
    Cycle clock_ = 0;
    Cycle lastLaunchCycles_ = 0;

    trace::TraceSink *traceSink_ = nullptr;
    Cycle timelineInterval_ = 0;

    guard::Watchdog watchdog_;
    std::unique_ptr<guard::FaultInjector> fault_;

    /**
     * Criticality profiler (gcl::crit); null unless config_.crit. Owns
     * one shard per SM, installed on Sm::crit at construction and folded
     * into the stats set by finalizeStats().
     */
    std::unique_ptr<crit::CritStats> crit_;

    /**
     * Effective tick-thread count: config_.simThreads clamped to the unit
     * count, forced to 1 when icnt_latency is 0 (the commit-phase request
     * arbitration assumes its pushes only become poppable next cycle).
     */
    unsigned threads_ = 1;
    bool parallel_ = false;    //!< threads_ > 1

    /** Persistent worker team, created at the first parallel launch. */
    std::unique_ptr<exec::TickTeam> team_;

    /** Per-unit trace staging (attachTrace); SMs then partitions. */
    std::vector<trace::StageSink> smSinks_;
    std::vector<trace::StageSink> partSinks_;

    // Compute-phase inputs, published to the workers by TickTeam::run's
    // release/acquire handshake.
    Cycle tickNow_ = 0;
    bool tickDrainGate_ = false;

    /** Compute-phase unit errors, written at disjoint indices. */
    std::vector<std::exception_ptr> unitErrors_;
    /** SM response-drain errors (a later serial position than the cycle). */
    std::vector<std::exception_ptr> drainErrors_;
};

} // namespace gcl::sim

#endif // GCL_SIM_GPU_HH
