#include "simt_stack.hh"

#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

void
SimtStack::reset(LaneMask initial_mask, size_t end_pc)
{
    stack_.clear();
    if (initial_mask)
        stack_.push_back({initial_mask, 0, end_pc});
}

size_t
SimtStack::pc() const
{
    gcl_sim_check(!stack_.empty(), "simt", 0, "pc() on a finished warp");
    return stack_.back().pc;
}

LaneMask
SimtStack::activeMask() const
{
    gcl_sim_check(!stack_.empty(), "simt", 0,
                  "activeMask() on a finished warp");
    return stack_.back().mask;
}

void
SimtStack::reconverge()
{
    while (!stack_.empty() &&
           (stack_.back().mask == 0 || stack_.back().pc == stack_.back().rpc))
        stack_.pop_back();
}

void
SimtStack::advance()
{
    gcl_sim_check(!stack_.empty(), "simt", 0,
                  "advance() on a finished warp");
    ++stack_.back().pc;
    reconverge();
}

void
SimtStack::branch(LaneMask taken_mask, size_t target_pc, size_t reconv_pc)
{
    gcl_sim_check(!stack_.empty(), "simt", 0,
                  "branch() on a finished warp");
    Entry &top = stack_.back();
    gcl_sim_check((taken_mask & ~top.mask) == 0, "simt", 0,
                  "taken mask contains inactive lanes");

    const LaneMask not_taken = top.mask & ~taken_mask;

    if (not_taken == 0) {
        // Uniformly taken.
        top.pc = target_pc;
        reconverge();
        return;
    }
    if (taken_mask == 0) {
        // Uniformly not taken.
        ++top.pc;
        reconverge();
        return;
    }

    // Divergence: the current entry becomes the reconvergence entry and the
    // two sides execute serially, not-taken first (pushed below taken).
    const size_t fallthrough_pc = top.pc + 1;
    top.pc = reconv_pc;
    stack_.push_back({not_taken, fallthrough_pc, reconv_pc});
    stack_.push_back({taken_mask, target_pc, reconv_pc});
    reconverge();
}

void
SimtStack::exitLanes(LaneMask exiting)
{
    gcl_sim_check(!stack_.empty(), "simt", 0,
                  "exitLanes() on a finished warp");
    gcl_sim_check((exiting & ~stack_.back().mask) == 0, "simt", 0,
                  "exiting lanes are not active");
    for (auto &entry : stack_)
        entry.mask &= ~exiting;

    // The top entry executed the exit; if any of its lanes survive
    // (predication off in our IR: they never do) they fall through.
    if (!stack_.empty() && stack_.back().mask != 0)
        ++stack_.back().pc;
    reconverge();

    // Entries in the middle of the stack may have become empty; they pop
    // when they reach the top via reconverge().
}

} // namespace gcl::sim
