/**
 * @file
 * SM <-> memory-partition crossbar with finite injection buffers.
 *
 * Request side: each SM owns a bounded injection queue; a full queue is the
 * L1's "reservation fail by interconnection" (Section VI). Each cycle every
 * partition accepts at most one request and every SM transmits at most one
 * flit; transfers take icntLatency cycles. The response side is symmetric
 * with per-partition bounded response queues.
 *
 * Occupancy counters shadow the queues so cycle()/idle() answer "anything
 * to do?" in O(1); the arbitration loops only run when flits exist. The
 * round-robin pointers still advance every cycle — arbitration fairness
 * must not depend on whether an idle cycle's loop was skipped.
 */

#ifndef GCL_SIM_INTERCONNECT_HH
#define GCL_SIM_INTERCONNECT_HH

#include <deque>
#include <vector>

#include "config.hh"
#include "delay_queue.hh"
#include "mem_request.hh"
#include "trace/trace.hh"

namespace gcl::sim
{

/** Crossbar interconnect between numSms SMs and numPartitions partitions. */
class Interconnect
{
  public:
    Interconnect(const GpuConfig &config, MemPools &pools);

    // ---- Request path (SM side) ----

    /** True when SM @p sm has room to inject one more request. */
    bool canInject(int sm) const;

    /** Queue @p req for transport; stamps tInjected. */
    void inject(ReqHandle req, Cycle now);

    // ---- Request path (partition side) ----

    /** True when a request has arrived for partition @p part. */
    bool hasRequest(int part, Cycle now) const;

    /** Pop the next arrived request for partition @p part. */
    ReqHandle popRequest(int part, Cycle now);

    // ---- Response path (partition side) ----

    /** True when partition @p part has room to queue one more response. */
    bool canRespond(int part) const;

    /** Queue @p req's response for transport; stamps tRespDepart. */
    void respond(ReqHandle req, Cycle now);

    // ---- Response path (SM side) ----

    bool hasResponse(int sm, Cycle now) const;
    ReqHandle popResponse(int sm, Cycle now);

    /** Advance arbitration: move flits across the crossbar. */
    void cycle(Cycle now);

    /** All queues drained (used by the GPU's termination check). */
    bool idle() const;

    /** Requests anywhere in the request network (timeline sampling). */
    size_t reqQueued() const { return injectTotal_ + toPartTotal_; }

    /** Responses anywhere in the response network (timeline sampling). */
    size_t respQueued() const { return respTotal_ + toSmTotal_; }

    /**
     * True when any SM-bound response is in flight or deliverable — O(1)
     * gate for the GPU's per-cycle response drain loop.
     */
    bool anyResponsesInFlight() const { return toSmTotal_ != 0; }

    /** Event sink installed by the Gpu; null when untraced. */
    trace::TraceSink *traceSink = nullptr;

  private:
    const GpuConfig &config_;
    MemPools &pools_;

    std::vector<std::deque<ReqHandle>> injectQ_;   //!< per SM
    std::vector<DelayQueue<ReqHandle>> toPart_;    //!< per partition
    std::vector<std::deque<ReqHandle>> respQ_;     //!< per partition
    std::vector<DelayQueue<ReqHandle>> toSm_;      //!< per SM

    // Occupancy shadows of the four queue arrays.
    size_t injectTotal_ = 0;
    size_t toPartTotal_ = 0;
    size_t respTotal_ = 0;
    size_t toSmTotal_ = 0;

    // Per-cycle arbitration scratch, sized once in the constructor so the
    // cycle loop never allocates.
    std::vector<uint8_t> smUsed_;
    std::vector<uint8_t> partUsed_;

    unsigned reqRrSm_ = 0;     //!< round-robin pointer, request side
    unsigned respRrPart_ = 0;  //!< round-robin pointer, response side
};

} // namespace gcl::sim

#endif // GCL_SIM_INTERCONNECT_HH
