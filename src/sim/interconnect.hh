/**
 * @file
 * SM <-> memory-partition crossbar with finite injection buffers.
 *
 * Request side: each SM owns a bounded injection queue; a full queue is the
 * L1's "reservation fail by interconnection" (Section VI). Each cycle every
 * partition accepts at most one request and every SM transmits at most one
 * flit; transfers take icntLatency cycles. The response side is symmetric
 * with per-partition bounded response queues.
 *
 * Threading (sim_threads > 1): the endpoint queues are strictly
 * per-unit — an SM only touches injectQ_/toSm_ of its own id, a partition
 * only toPart_/respQ_ of its own id — so the compute phase mutates
 * disjoint state. The arbitration that moves flits *between* units runs on
 * the coordinator, split around the compute phase:
 *
 *  - beginCycle() runs the response-side arbitration. In a serial tick it
 *    runs after the SMs, but neither SMs nor partitions touch respQ_/toSm_
 *    mid-cycle (responses enter respQ_ only in *earlier* cycles and leave
 *    toSm_ only via this cycle's drain, which sees entries icnt_latency
 *    cycles old), so hoisting it before the compute phase is exact.
 *  - commitCycle() runs the request-side arbitration after the compute
 *    phase, when this cycle's injections exist — the position a serial
 *    tick gives it. One correction: serially it runs *before* partitions
 *    pop their head request, so the credit check adds back this cycle's
 *    pops (popsThisCycle_) to see the same toPart_ occupancy.
 *
 * The legacy cycle() (request then response arbitration, between SMs and
 * partitions) remains the serial path; both orderings are cycle-exact to
 * it, which is what makes sim_threads a pure wall-clock knob.
 *
 * Trace events are emitted through the calling unit's sink (inject() from
 * the SM, respond() from the partition) so staged event order matches the
 * serial emission order.
 */

#ifndef GCL_SIM_INTERCONNECT_HH
#define GCL_SIM_INTERCONNECT_HH

#include <deque>
#include <vector>

#include "config.hh"
#include "delay_queue.hh"
#include "mem_request.hh"
#include "trace/stage_sink.hh"
#include "trace/trace.hh"

namespace gcl::sim
{

/** Crossbar interconnect between numSms SMs and numPartitions partitions. */
class Interconnect
{
  public:
    Interconnect(const GpuConfig &config, MemPools &pools);

    // ---- Request path (SM side) ----

    /** True when SM @p sm has room to inject one more request. */
    bool canInject(int sm) const;

    /** Queue @p req for transport; stamps tInjected. */
    void inject(ReqHandle req, Cycle now, trace::StageSink *sink = nullptr);

    // ---- Request path (partition side) ----

    /** True when a request has arrived for partition @p part. */
    bool hasRequest(int part, Cycle now) const;

    /** Pop the next arrived request for partition @p part. */
    ReqHandle popRequest(int part, Cycle now);

    // ---- Response path (partition side) ----

    /** True when partition @p part has room to queue one more response. */
    bool canRespond(int part) const;

    /** Queue @p req's response for transport; stamps tRespDepart. */
    void respond(ReqHandle req, Cycle now, trace::StageSink *sink = nullptr);

    // ---- Response path (SM side) ----

    bool hasResponse(int sm, Cycle now) const;
    ReqHandle popResponse(int sm, Cycle now);

    /** Advance arbitration serially: request side, then response side. */
    void cycle(Cycle now);

    /** Parallel tick, pre-compute half: response-side arbitration. */
    void beginCycle(Cycle now);

    /** Parallel tick, commit half: request-side arbitration. */
    void commitCycle(Cycle now);

    /** All queues drained (used by the GPU's termination check). */
    bool idle() const;

    /** Requests anywhere in the request network (timeline sampling). */
    size_t reqQueued() const;

    /** Responses anywhere in the response network (timeline sampling). */
    size_t respQueued() const;

    /**
     * True when any SM-bound response is in flight or deliverable — the
     * gate for the GPU's per-cycle response drain loop.
     */
    bool anyResponsesInFlight() const;

  private:
    void requestArbitration(Cycle now, bool add_back_pops);
    void responseArbitration(Cycle now);

    const GpuConfig &config_;
    MemPools &pools_;

    std::vector<std::deque<ReqHandle>> injectQ_;   //!< per SM
    std::vector<DelayQueue<ReqHandle>> toPart_;    //!< per partition
    std::vector<std::deque<ReqHandle>> respQ_;     //!< per partition
    std::vector<DelayQueue<ReqHandle>> toSm_;      //!< per SM

    /**
     * Requests each partition popped this cycle; commitCycle() adds them
     * back so the credit check sees the occupancy the serial arbitration
     * (which runs before the partitions) would have seen.
     */
    std::vector<uint8_t> popsThisCycle_;

    // Per-cycle arbitration scratch, sized once in the constructor so the
    // cycle loop never allocates.
    std::vector<uint8_t> smUsed_;
    std::vector<uint8_t> partUsed_;

    unsigned reqRrSm_ = 0;     //!< round-robin pointer, request side
    unsigned respRrPart_ = 0;  //!< round-robin pointer, response side
};

} // namespace gcl::sim

#endif // GCL_SIM_INTERCONNECT_HH
