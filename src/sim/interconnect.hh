/**
 * @file
 * SM <-> memory-partition crossbar with finite injection buffers.
 *
 * Request side: each SM owns a bounded injection queue; a full queue is the
 * L1's "reservation fail by interconnection" (Section VI). Each cycle every
 * partition accepts at most one request and every SM transmits at most one
 * flit; transfers take icntLatency cycles. The response side is symmetric
 * with per-partition bounded response queues.
 */

#ifndef GCL_SIM_INTERCONNECT_HH
#define GCL_SIM_INTERCONNECT_HH

#include <deque>
#include <vector>

#include "config.hh"
#include "delay_queue.hh"
#include "mem_request.hh"
#include "trace/trace.hh"

namespace gcl::sim
{

/** Crossbar interconnect between numSms SMs and numPartitions partitions. */
class Interconnect
{
  public:
    Interconnect(const GpuConfig &config);

    // ---- Request path (SM side) ----

    /** True when SM @p sm has room to inject one more request. */
    bool canInject(int sm) const;

    /** Queue @p req for transport; stamps tInjected. */
    void inject(const MemRequestPtr &req, Cycle now);

    // ---- Request path (partition side) ----

    /** True when a request has arrived for partition @p part. */
    bool hasRequest(int part, Cycle now) const;

    /** Pop the next arrived request for partition @p part. */
    MemRequestPtr popRequest(int part, Cycle now);

    // ---- Response path (partition side) ----

    /** True when partition @p part has room to queue one more response. */
    bool canRespond(int part) const;

    /** Queue @p req's response for transport; stamps tRespDepart. */
    void respond(const MemRequestPtr &req, Cycle now);

    // ---- Response path (SM side) ----

    bool hasResponse(int sm, Cycle now) const;
    MemRequestPtr popResponse(int sm, Cycle now);

    /** Advance arbitration: move flits across the crossbar. */
    void cycle(Cycle now);

    /** All queues drained (used by the GPU's termination check). */
    bool idle() const;

    /** Requests anywhere in the request network (timeline sampling). */
    size_t reqQueued() const;

    /** Responses anywhere in the response network (timeline sampling). */
    size_t respQueued() const;

    /** Event sink installed by the Gpu; null when untraced. */
    trace::TraceSink *traceSink = nullptr;

  private:
    const GpuConfig &config_;

    std::vector<std::deque<MemRequestPtr>> injectQ_;   //!< per SM
    std::vector<DelayQueue<MemRequestPtr>> toPart_;    //!< per partition
    std::vector<std::deque<MemRequestPtr>> respQ_;     //!< per partition
    std::vector<DelayQueue<MemRequestPtr>> toSm_;      //!< per SM

    unsigned reqRrSm_ = 0;     //!< round-robin pointer, request side
    unsigned respRrPart_ = 0;  //!< round-robin pointer, response side
};

} // namespace gcl::sim

#endif // GCL_SIM_INTERCONNECT_HH
