/**
 * @file
 * Simulator configuration, defaulted to the paper's Table II (GPGPU-Sim
 * v3.2.2, NVIDIA Tesla C2050-class device). The defaults are one point in
 * the machine zoo: any field here can instead come from a
 * gpgpusim.config-style machine file resolved by sim::MachineRegistry
 * (--machine / GCL_MACHINE; see machine.hh), with --sim-config overrides
 * layered on top.
 *
 * The config also carries the knobs for the Section X ablations: CTA
 * scheduling policy (X.B), semi-global L2 clustering (X.C) and
 * non-deterministic warp splitting (X.A).
 */

#ifndef GCL_SIM_CONFIG_HH
#define GCL_SIM_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>

namespace gcl::ptx
{
// Opaque enum declarations so the opcode-class mapping can be declared
// here without dragging the whole IR into every simulator header.
enum class Opcode : uint8_t;
enum class DataType : uint8_t;
} // namespace gcl::ptx

namespace gcl::sim
{

/** Cycle count type for the single simulated clock domain. */
using Cycle = uint64_t;

/**
 * Functional-unit opcode classes (the rows of the machine description's
 * latency/initiation table, following GPGPU-Sim's
 * ptx_opcode_latency_{int,fp,dp} split). Every non-memory instruction maps
 * to exactly one class via opClassFor(); the machine file assigns each
 * class a writeback latency and an issue-stage initiation interval, which
 * is how per-machine calibration (arXiv 1905.08778) enters the model.
 */
enum class OpClass : uint8_t
{
    IntAlu,   //!< add/sub/logic/shift/setp/selp/cvt/mov on integer types
    IntMul,   //!< integer mul/mulhi/mad
    IntDiv,   //!< integer div/rem
    FpAlu,    //!< floating add/sub/min/max/...
    FpMul,    //!< floating mul/mad
    FpDiv,    //!< floating div
    Sfu,      //!< rcp/sqrt/rsqrt/sin/cos/ex2/lg2 (the SFU pipeline)
    NumClasses,
};

constexpr unsigned kNumOpClasses =
    static_cast<unsigned>(OpClass::NumClasses);

/** Machine-file key suffix for a class ("int_alu", "fp_div", "sfu", ...). */
const char *toString(OpClass cls);

/** The functional-unit class executing @p op on @p type. */
OpClass opClassFor(ptx::Opcode op, ptx::DataType type);

/** One opcode class's execution timing. */
struct FuTiming
{
    unsigned latency;      //!< issue-to-writeback cycles
    unsigned initiation;   //!< cycles the first pipeline stage stays busy

    bool
    operator==(const FuTiming &other) const
    {
        return latency == other.latency && initiation == other.initiation;
    }
};

/** Parameters of one cache level. */
struct CacheConfig
{
    uint32_t sizeBytes;
    uint32_t lineBytes = 128;
    uint32_t assoc;
    uint32_t mshrEntries;
    uint32_t mshrMaxMerge = 8;   //!< max requests merged into one entry

    uint32_t numSets() const { return sizeBytes / (lineBytes * assoc); }
};

/** CTA-to-SM assignment policy (Section X.B). */
enum class CtaSchedPolicy : uint8_t
{
    RoundRobin,   //!< baseline: CTA i goes to the next SM with a free slot
    Clustered,    //!< neighboring CTAs are packed onto the same SM
};

/** Warp selection policy inside a scheduler. */
enum class WarpSchedPolicy : uint8_t
{
    LooseRoundRobin,
    GreedyThenOldest,
};

/** Full device configuration. */
struct GpuConfig
{
    /**
     * Machine identity: which description produced this config. The
     * compiled defaults ARE the c2050 machine (configs/c2050.config is
     * byte-equivalent), so a default-constructed config and one loaded
     * from that file share a name, a fingerprint, and therefore cache
     * entries. Mixed into fingerprint() and recorded in every stats/trace
     * artifact so a run always says which machine produced it.
     */
    std::string machineName = "c2050";

    // --- Core organization (Table II) ---
    unsigned numSms = 15;
    unsigned warpSize = 32;
    unsigned maxThreadsPerSm = 1536;
    unsigned maxCtasPerSm = 8;
    uint32_t sharedMemPerSm = 48 * 1024;
    unsigned numSchedulers = 2;
    WarpSchedPolicy warpSched = WarpSchedPolicy::LooseRoundRobin;

    // --- Execution latencies ---
    /**
     * Per-opcode-class {latency, initiation} table (indexed by OpClass).
     * Replaces the former flat spLatency/sfuLatency pair: the C2050
     * defaults keep every SP-pipeline class at {6, 1} and the SFU class
     * at {16, 4} — numerically identical to the old fields — while a
     * machine file can differentiate int/fp/mul/div the way GPGPU-Sim's
     * ptx_opcode_latency_* options do.
     */
    std::array<FuTiming, kNumOpClasses> opTiming = {{
        {6, 1},   // IntAlu
        {6, 1},   // IntMul
        {6, 1},   // IntDiv
        {6, 1},   // FpAlu
        {6, 1},   // FpMul
        {6, 1},   // FpDiv
        {16, 4},  // Sfu
    }};
    unsigned sharedMemLatency = 24;
    unsigned l1HitLatency = 18;
    unsigned ldstQueueDepth = 8;  //!< warp memory ops queued per SM

    // --- L1 data cache (per SM; Table II: 16KB, 128B line, 4-way, 64 MSHR)
    CacheConfig l1 = {16 * 1024, 128, 4, 64, 8};

    // --- Memory partitions: Table II's unified L2 is numPartitions
    // slices of l2.sizeBytes each (6 x 128KB = 768KB on the C2050) ---
    unsigned numPartitions = 6;
    CacheConfig l2 = {128 * 1024, 128, 8, 32, 8};
    unsigned ropLatency = 120;    //!< raster-op/L2 pipeline latency (Table II)

    // --- Interconnect ---
    unsigned icntLatency = 8;         //!< one-way flit latency
    unsigned icntInjectQueueDepth = 8; //!< per-SM request injection buffer
    unsigned icntRespQueueDepth = 8;   //!< per-partition response buffer
    /**
     * Credit limit on each partition's input path (in-flight flits plus
     * the ROP backlog). Finite buffers here are what propagate memory-side
     * congestion back to the L1 as "reservation fail by interconnection".
     */
    unsigned partQueueDepth = 16;

    // --- DRAM (GDDR5-like, Table II: latency 100) ---
    unsigned dramLatency = 100;
    unsigned dramBurstCycles = 4;     //!< channel occupancy per 128B burst
    unsigned dramQueueDepth = 16;
    /**
     * Explicit DRAM timing: an optional open-row model per channel.
     * dramRowBytes = 0 (the C2050 default) disables it — every access
     * costs the flat dramLatency, exactly the pre-refactor arithmetic.
     * When non-zero, each channel keeps dramBanks open-row registers; an
     * access whose row differs from its bank's open row pays
     * dramActLatency extra (precharge + activate), which is how the
     * HBM-class machine (arXiv 1810.07269) expresses row locality.
     */
    unsigned dramBanks = 1;
    unsigned dramRowBytes = 0;
    unsigned dramActLatency = 0;

    // --- Section X ablation knobs ---
    CtaSchedPolicy ctaSched = CtaSchedPolicy::RoundRobin;
    unsigned ctaClusterSize = 2;     //!< CTAs per SM batch in Clustered mode
    /**
     * Semi-global L2 (X.C): SMs are grouped into clusters of this many SMs
     * and each cluster only uses its own slice of the L2 partitions.
     * 0 disables clustering (baseline: all SMs share all partitions).
     */
    unsigned smsPerL2Cluster = 0;
    /**
     * Warp splitting for non-deterministic loads (X.A): when non-zero, a
     * non-deterministic load issues at most this many memory requests per
     * sub-warp, and sub-warps of different warps interleave in the LD/ST
     * queue instead of monopolizing it.
     */
    unsigned nondetSplitRequests = 0;

    /**
     * Skip quiescent units in the device tick loop (drained partitions,
     * an empty interconnect, SMs with no resident work). Gating is a pure
     * host-side optimization: a skipped unit's cycle would have been a
     * no-op, so stats and timing are bit-identical either way (verified
     * by tests/test_gating.cc). The knob exists to prove that claim and
     * to simplify bisection; it is not part of the config fingerprint for
     * the same reason the watchdog knobs are not.
     */
    bool idleGating = true;

    /**
     * Enable the gcl::crit criticality profiler: per-PC issue-slot stall
     * attribution and per-stage memory-latency histograms (see
     * src/crit/crit.hh). Unlike idle_gating this knob changes the
     * *content* of the finalized stats (the crit.* key schema appears),
     * so an enabled run must never share a cache entry with a disabled
     * one — it IS part of the config fingerprint. Simulated timing is
     * unaffected either way (tests/test_crit.cc proves the non-crit
     * stats stay byte-identical).
     */
    bool crit = false;

    /**
     * Worker threads for the intra-run parallel tick (SMs and memory
     * partitions ticking concurrently with a deterministic commit phase).
     * 1 = the serial loop; 0 = auto (hardware threads minus active sweep
     * jobs, resolved at the CLI layer, clamped to at least 1). Like
     * idle_gating this is a pure host-side knob — results are bit-identical
     * at every thread count (tests/test_parallel_tick.cc) — so it is not
     * part of the config fingerprint.
     */
    unsigned simThreads = 1;

    // --- Run control / robustness (gcl::guard) ---
    /**
     * Hard cycle budget for the whole run (the device's global clock,
     * accumulated across launches). Exceeding it raises
     * SimError{Kind::Timeout}, which the harness reports as a structured
     * per-run `timeout` failure record. Overridable per run with
     * --max-cycles / GCL_MAX_CYCLES.
     */
    Cycle maxCycles = 200'000'000;
    /**
     * Forward-progress watchdog check period in cycles (0 disables). Every
     * interval the watchdog compares retired-instruction and
     * completed-request counters; `watchdogBudget` cycles without any
     * delta raise SimError{Kind::Hang} with an attached HangReport.
     */
    Cycle watchdogInterval = 8192;
    Cycle watchdogBudget = 2'000'000;
    /**
     * guard::FaultPlan spec for deterministic fault injection (see
     * src/guard/fault.hh for the grammar); empty disables. Part of the
     * config fingerprint: a faulted run never shares cache entries with a
     * clean one.
     */
    std::string faultPlan;

    /** Max concurrent CTAs on one SM for a CTA of the given footprint. */
    unsigned ctasPerSm(unsigned threads_per_cta,
                       uint32_t shared_bytes_per_cta) const;

    /**
     * Analytic unloaded round-trip latency of an L1 miss that hits in the
     * L2: the two interconnect traversals plus the ROP/L2 pipeline. The
     * L1 tag lookup itself is same-cycle in this model (the hit latency
     * only applies to data returned from the L1).
     */
    unsigned
    unloadedL2Latency() const
    {
        return 2 * icntLatency + ropLatency;
    }

    /** Analytic unloaded round-trip latency of an L1 miss going to DRAM. */
    unsigned
    unloadedDramLatency() const
    {
        return unloadedL2Latency() + dramLatency;
    }

    /** Multi-line human-readable dump (the Table II view). */
    std::string describe() const;

    /** Stable hash over every field; keys the benchmark run cache. */
    uint64_t fingerprint() const;

    /**
     * Apply one `key=value` override (keys are the snake_case field
     * names: "num_sms", "l1_mshr", "watchdog_budget", ...). An unknown
     * key or an unparsable value raises SimError{Kind::Config} whose
     * message lists the full valid-key vocabulary — a typo must never
     * silently run the wrong experiment.
     */
    void applyOverride(const std::string &key, const std::string &value);

    /** Apply a comma-separated list of `key=value` overrides. */
    void applyOverrides(const std::string &spec);

    /** Comma-separated list of every override key (error messages). */
    static std::string knownOverrideKeys();
};

} // namespace gcl::sim

#endif // GCL_SIM_CONFIG_HH
