/**
 * @file
 * Memory-access coalescer.
 *
 * Sits in front of the L1 cache (Section VI): the active lanes' byte
 * addresses are folded into the minimal set of 128-byte line-sized
 * transactions. A fully coalesced warp load touches 1 line; a pathological
 * non-deterministic load touches up to 32.
 */

#ifndef GCL_SIM_COALESCER_HH
#define GCL_SIM_COALESCER_HH

#include <cstdint>
#include <vector>

namespace gcl::sim
{

/**
 * Coalesce per-lane accesses into line addresses.
 *
 * @param addrs (lane, byte address) pairs of the participating lanes
 * @param access_size bytes accessed per lane
 * @param line_bytes cache line size (power of two)
 * @return distinct line-aligned addresses in first-touch order
 */
std::vector<uint64_t>
coalesce(const std::vector<std::pair<unsigned, uint64_t>> &addrs,
         unsigned access_size, unsigned line_bytes);

} // namespace gcl::sim

#endif // GCL_SIM_COALESCER_HH
