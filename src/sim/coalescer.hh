/**
 * @file
 * Memory-access coalescer.
 *
 * Sits in front of the L1 cache (Section VI): the active lanes' byte
 * addresses are folded into the minimal set of 128-byte line-sized
 * transactions. A fully coalesced warp load touches 1 line; a pathological
 * non-deterministic load touches up to 32.
 */

#ifndef GCL_SIM_COALESCER_HH
#define GCL_SIM_COALESCER_HH

#include <cstdint>
#include <vector>

#include "config.hh"
#include "trace/stage_sink.hh"
#include "trace/trace.hh"

namespace gcl::sim
{

/**
 * Coalesce per-lane accesses into line addresses.
 *
 * @param addrs (lane, byte address) pairs of the participating lanes
 * @param access_size bytes accessed per lane
 * @param line_bytes cache line size (power of two)
 * @return distinct line-aligned addresses in first-touch order
 */
std::vector<uint64_t>
coalesce(const std::vector<std::pair<unsigned, uint64_t>> &addrs,
         unsigned access_size, unsigned line_bytes);

/**
 * Traced variant: coalesce and emit one gcl::trace::Coalesce event
 * summarizing the fold (active lanes and produced lines packed into the
 * event's addr field). @p sink may be null or disabled — the event is
 * skipped and the result is identical to coalesce().
 */
std::vector<uint64_t>
coalesce(const std::vector<std::pair<unsigned, uint64_t>> &addrs,
         unsigned access_size, unsigned line_bytes, trace::StageSink *sink,
         Cycle now, uint32_t pc, int sm_id, bool non_det);

} // namespace gcl::sim

#endif // GCL_SIM_COALESCER_HH
