/**
 * @file
 * Set-associative cache model with reserved-line semantics, MSHRs and the
 * reservation-failure taxonomy of GPGPU-Sim (Section VI of the paper).
 *
 * The cache stores tags only; data lives in the functional GlobalMemory.
 * An access has one of six outcomes:
 *
 *   Hit          line valid                     -> data after hit latency
 *   HitReserved  line in flight, merged in MSHR -> data when the fill lands
 *   Miss         line reserved + MSHR allocated -> caller sends downstream
 *   FailTag      no way can be evicted (all reserved)
 *   FailMshr     MSHR entries exhausted, or the merge list is full
 *   FailIcnt     downstream injection buffer full (decided by the caller
 *                via the can_inject argument)
 *
 * A failed access is retried by the LD/ST unit on a later cycle, burning
 * the cycle — exactly the mechanism behind Fig 3 and the reservation-stall
 * components of Figs 5 and 7.
 *
 * The MSHR is a fixed-capacity open-addressed table (linear probing,
 * backward-shift deletion) whose entries chain their waiting requests
 * intrusively through MemRequest::nextWaiting — no per-line vector, no
 * hashing-library buckets, no allocation on the access path.
 */

#ifndef GCL_SIM_CACHE_HH
#define GCL_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config.hh"
#include "mem_request.hh"

namespace gcl::sim
{

/** Outcome of one cache access attempt. */
enum class AccessOutcome : uint8_t
{
    Hit,
    HitReserved,
    Miss,
    FailTag,
    FailMshr,
    FailIcnt,
};

std::string toString(AccessOutcome outcome);

/**
 * Miss status holding registers: one entry per in-flight line, waiting
 * requests chained through the pool (MemRequest::nextWaiting).
 */
class Mshr
{
  public:
    Mshr(unsigned num_entries, unsigned max_merge, MemPools &pools,
         ReqHandle MemRequest::*link = &MemRequest::nextWaiting);

    bool full() const { return count_ >= numEntries_; }
    bool hasEntry(uint64_t line_addr) const { return find(line_addr) >= 0; }
    bool canMerge(uint64_t line_addr) const;
    size_t size() const { return count_; }

    /** Create the entry for a primary miss. */
    void allocate(uint64_t line_addr, ReqHandle req);

    /** Attach a secondary miss to an existing entry. */
    void merge(uint64_t line_addr, ReqHandle req);

    /**
     * Remove the entry on fill and hand back the chain of waiting
     * requests (primary first, linked via MemRequest::nextWaiting).
     */
    ReqHandle release(uint64_t line_addr);

  private:
    struct Entry
    {
        uint64_t lineAddr = 0;
        ReqHandle head = kNullHandle;   //!< primary miss
        ReqHandle tail = kNullHandle;   //!< last merged request
        uint32_t count = 0;             //!< 0 = slot empty
    };

    size_t slotOf(uint64_t line_addr) const;
    /** Index of the entry for @p line_addr, or -1. */
    int find(uint64_t line_addr) const;

    unsigned numEntries_;
    unsigned maxMerge_;
    MemPools &pools_;
    ReqHandle MemRequest::*link_;  //!< which chain field this level uses
    std::vector<Entry> table_;   //!< power-of-two open-addressed table
    uint64_t tableMask_;
    unsigned count_ = 0;
};

/** Tag array + MSHR bundle used for both L1D and the L2 partitions. */
class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config, MemPools &pools,
          ReqHandle MemRequest::*link = &MemRequest::nextWaiting);

    /**
     * Attempt a read access for @p req (line address inside).
     *
     * On Miss the line is reserved and an MSHR entry allocated; the caller
     * must forward the request downstream (it checked @p can_inject).
     * On HitReserved the request is merged and completes at fill time.
     */
    AccessOutcome access(ReqHandle req, bool can_inject);

    /**
     * A fill for @p line_addr arrived: validate the line and return the
     * chain of requests waiting on it (primary first, linked through
     * MemRequest::nextWaiting). Callers must read a request's nextWaiting
     * BEFORE completing it — completion frees the request.
     */
    ReqHandle fill(uint64_t line_addr);

    /** True when the line is present and valid (test/bench introspection). */
    bool isHit(uint64_t line_addr) const;

    /**
     * Write path (L2 slices only): probe for @p line_addr and touch it on
     * a valid hit.
     * @retval true the write is absorbed by the cache
     */
    bool writeProbe(uint64_t line_addr);

    /**
     * Write-allocate without a fetch: install @p line_addr as valid so
     * subsequent writes to the line absorb (timing model only — data lives
     * in the functional memory). No-op when every way is reserved or the
     * line already exists.
     */
    void installValid(uint64_t line_addr);

    const std::string &name() const { return name_; }
    const CacheConfig &config() const { return config_; }

    /** Allocated MSHR entries (timeline sampling, gcl::trace). */
    size_t mshrOccupancy() const { return mshr_.size(); }

    /** Lines currently reserved for in-flight fills (timeline sampling). */
    size_t reservedLines() const;

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool reserved = false;
        uint64_t lru = 0;
    };

    size_t setIndex(uint64_t line_addr) const;
    uint64_t tagOf(uint64_t line_addr) const;

    std::string name_;
    CacheConfig config_;
    MemPools &pools_;
    std::vector<Line> lines_;   //!< sets x assoc, row-major
    uint64_t lruClock_ = 0;
    Mshr mshr_;
};

} // namespace gcl::sim

#endif // GCL_SIM_CACHE_HH
