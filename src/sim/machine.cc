#include "machine.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "guard/sim_error.hh"

namespace gcl::sim
{

namespace
{

namespace fs = std::filesystem;

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** The directories a bare machine name is looked up in, in order. */
std::vector<fs::path>
searchDirs()
{
    std::vector<fs::path> dirs;
    if (const char *env = std::getenv("GCL_MACHINE_DIR"))
        if (env[0] != '\0')
            dirs.emplace_back(env);
    dirs.emplace_back("configs");
    return dirs;
}

} // namespace

GpuConfig
parseMachineText(const std::string &text, const std::string &origin,
                 const std::string &fallback_name)
{
    GpuConfig config;
    bool saw_name = false;

    std::istringstream in(text);
    std::string raw;
    unsigned lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        const size_t hash = raw.find('#');
        std::string line =
            trim(hash == std::string::npos ? raw : raw.substr(0, hash));
        if (line.empty())
            continue;
        if (line[0] != '-')
            gcl_sim_error(SimError::Kind::Config, "machine", 0, origin,
                          ":", lineno, ": expected '-key value', got '",
                          line, "'");
        const size_t sp = line.find_first_of(" \t");
        if (sp == std::string::npos || sp == 1)
            gcl_sim_error(SimError::Kind::Config, "machine", 0, origin,
                          ":", lineno, ": option '", line,
                          "' has no value");
        const std::string key = line.substr(1, sp - 1);
        const std::string value = trim(line.substr(sp + 1));
        try {
            config.applyOverride(key, value);
        } catch (const SimError &error) {
            // Re-raise with the file position; the message already
            // carries the vocabulary for unknown keys.
            gcl_sim_error(SimError::Kind::Config, "machine", 0, origin,
                          ":", lineno, ": ", error.message());
        }
        if (key == "machine_name")
            saw_name = true;
    }

    if (!saw_name)
        config.machineName = fallback_name;
    return config;
}

GpuConfig
loadMachineFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        gcl_sim_error(SimError::Kind::Config, "machine", 0,
                      "cannot read machine file '", path, "'");
    std::stringstream body;
    body << in.rdbuf();
    return parseMachineText(body.str(), path, fs::path(path).stem());
}

std::string
serializeMachine(const GpuConfig &config)
{
    std::ostringstream out;
    auto opt = [&out](const char *key, const auto &value) {
        out << "-" << key << " " << value << "\n";
    };

    out << "# machine description (canonical form; see "
           "src/sim/machine.hh for the grammar)\n";
    opt("machine_name", config.machineName);

    out << "\n# core organization\n";
    opt("num_sms", config.numSms);
    opt("warp_size", config.warpSize);
    opt("max_threads_per_sm", config.maxThreadsPerSm);
    opt("max_ctas_per_sm", config.maxCtasPerSm);
    opt("shared_mem_per_sm", config.sharedMemPerSm);
    opt("num_schedulers", config.numSchedulers);
    opt("warp_sched",
        config.warpSched == WarpSchedPolicy::LooseRoundRobin ? "lrr"
                                                             : "gto");

    out << "\n# execution timing: <latency>:<initiation> per opcode "
           "class\n";
    for (unsigned c = 0; c < kNumOpClasses; ++c) {
        const FuTiming &t = config.opTiming[c];
        out << "-op_" << toString(static_cast<OpClass>(c)) << " "
            << t.latency << ":" << t.initiation << "\n";
    }

    out << "\n# memory stage: <nsets>:<bsize>:<assoc>:<mshr>:<merge>\n";
    auto geometry = [&out](const char *key, const CacheConfig &c) {
        out << "-" << key << " " << c.numSets() << ":" << c.lineBytes
            << ":" << c.assoc << ":" << c.mshrEntries << ":"
            << c.mshrMaxMerge << "\n";
    };
    geometry("l1_cache", config.l1);
    opt("l1_hit_latency", config.l1HitLatency);
    opt("shared_mem_latency", config.sharedMemLatency);
    opt("ldst_queue_depth", config.ldstQueueDepth);

    out << "\n# memory partitions\n";
    opt("num_partitions", config.numPartitions);
    geometry("l2_cache", config.l2);
    opt("rop_latency", config.ropLatency);

    out << "\n# interconnect\n";
    opt("icnt_latency", config.icntLatency);
    opt("icnt_inject_queue", config.icntInjectQueueDepth);
    opt("icnt_resp_queue", config.icntRespQueueDepth);
    opt("part_queue", config.partQueueDepth);

    out << "\n# dram\n";
    opt("dram_latency", config.dramLatency);
    opt("dram_burst", config.dramBurstCycles);
    opt("dram_queue", config.dramQueueDepth);
    opt("dram_banks", config.dramBanks);
    opt("dram_row_bytes", config.dramRowBytes);
    opt("dram_act_latency", config.dramActLatency);

    return out.str();
}

std::string
MachineRegistry::resolvePath(const std::string &spec)
{
    if (spec.empty())
        return {};

    std::error_code ec;
    if (fs::is_regular_file(spec, ec))
        return spec;

    // A path-shaped spec that does not exist should say so directly
    // instead of pretending it might be a registry name.
    if (spec.find('/') != std::string::npos)
        gcl_sim_error(SimError::Kind::Config, "machine", 0,
                      "no machine file at '", spec, "'");

    for (const fs::path &dir : searchDirs()) {
        const fs::path candidate = dir / (spec + ".config");
        if (fs::is_regular_file(candidate, ec))
            return candidate.string();
    }

    std::string known;
    for (const std::string &name : knownMachines()) {
        if (!known.empty())
            known += ", ";
        known += name;
    }
    gcl_sim_error(SimError::Kind::Config, "machine", 0,
                  "unknown machine '", spec, "' (known: ",
                  known.empty() ? "none found" : known, "; searched ",
                  searchDescription(), ")");
}

GpuConfig
MachineRegistry::resolve(const std::string &spec)
{
    const std::string path = resolvePath(spec);
    if (path.empty())
        return GpuConfig{};
    return loadMachineFile(path);
}

std::vector<std::string>
MachineRegistry::knownMachines()
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const fs::path &dir : searchDirs()) {
        if (!fs::is_directory(dir, ec))
            continue;
        for (const auto &entry : fs::directory_iterator(dir, ec)) {
            if (entry.path().extension() == ".config")
                names.push_back(entry.path().stem());
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

std::string
MachineRegistry::searchDescription()
{
    std::string out;
    for (const fs::path &dir : searchDirs()) {
        if (!out.empty())
            out += ", ";
        out += dir.string();
    }
    return out + " (override with GCL_MACHINE_DIR)";
}

} // namespace gcl::sim
