#include "gpu.hh"

#include <algorithm>

#include "core/classifier.hh"
#include "guard/sim_error.hh"
#include "util/bitutil.hh"
#include "util/logging.hh"

namespace gcl::sim
{

Gpu::Gpu(GpuConfig config)
    : config_(config), stats_(config_), icnt_(config_, pools_),
      watchdog_(config_.watchdogInterval, config_.watchdogBudget)
{
    if (!config_.faultPlan.empty())
        fault_ = std::make_unique<guard::FaultInjector>(
            guard::FaultPlan::parse(config_.faultPlan));
    if (config_.crit)
        crit_ = std::make_unique<crit::CritStats>(config_.numSchedulers);
    sms_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(static_cast<int>(s), config_,
                                            gmem_, stats_, pools_));
        sms_.back()->partitionMap = &Gpu::mapPartition;
        sms_.back()->fault = fault_.get();
        // One crit shard per SM, created in SM-id order so the finalize
        // merge order is thread-count independent (like SimStats shards).
        if (crit_)
            sms_.back()->crit = &crit_->newShard();
        // Global stores/atomics commit at end of cycle at EVERY thread
        // count — the uniform write protocol is what makes sim_threads=N
        // bit-identical to sim_threads=1 (see functional.hh).
        sms_.back()->enableWriteStaging();
    }
    partitions_.reserve(config_.numPartitions);
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        partitions_.push_back(std::make_unique<MemPartition>(
            static_cast<int>(p), config_, stats_, pools_));
        partitions_.back()->fault = fault_.get();
    }

    unsigned threads = config_.simThreads == 0 ? 1 : config_.simThreads;
    threads = std::min(threads, numUnits());
    if (threads > 1 && config_.icntLatency == 0) {
        gcl_warn("sim_threads ", config_.simThreads,
                 " requires icnt_latency >= 1; running serial");
        threads = 1;
    }
    threads_ = std::max(1u, threads);
    parallel_ = threads_ > 1;
    if (parallel_) {
        pools_.reqs.setConcurrent(true);
        pools_.ops.setConcurrent(true);
        unitErrors_.resize(numUnits());
        drainErrors_.resize(config_.numSms);
    }
    smSinks_.resize(config_.numSms);
    partSinks_.resize(config_.numPartitions);
}

unsigned
Gpu::numUnits() const
{
    return config_.numSms + config_.numPartitions;
}

void
Gpu::attachTrace(trace::TraceSink *sink, Cycle timeline_interval)
{
    traceSink_ = sink;
    timelineInterval_ = sink ? timeline_interval : 0;
    for (unsigned s = 0; s < config_.numSms; ++s) {
        if (sink)
            smSinks_[s].attach(sink, static_cast<int16_t>(s), parallel_);
        else
            smSinks_[s].detach();
        sms_[s]->traceSink = sink ? &smSinks_[s] : nullptr;
    }
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        if (sink)
            partSinks_[p].attach(sink, static_cast<int16_t>(p), parallel_);
        else
            partSinks_[p].detach();
        partitions_[p]->setTrace(sink ? &partSinks_[p] : nullptr);
    }
}

void
Gpu::sampleTimeline(Cycle now) const
{
    using trace::CounterId;
    using trace::EventKind;

    uint64_t ctas = 0, warps = 0, ldst = 0, mshr = 0;
    for (const auto &sm : sms_) {
        ctas += sm->numResidentCtas();
        warps += sm->activeWarps();
        ldst += sm->ldstQueued();
        mshr += sm->l1().mshrOccupancy();
    }
    uint64_t rop = 0, dram = 0;
    for (const auto &part : partitions_) {
        rop += part->ropQueued();
        dram += part->dramQueued();
    }

    auto counter = [&](CounterId id, uint64_t value) {
        traceSink_->emit(EventKind::Counter, now,
                         static_cast<uint64_t>(id), value, 0, 0, 0);
    };
    counter(CounterId::ResidentCtas, ctas);
    counter(CounterId::ActiveWarps, warps);
    counter(CounterId::LdstQueued, ldst);
    counter(CounterId::L1MshrOccupancy, mshr);
    counter(CounterId::IcntReqQueued, icnt_.reqQueued());
    counter(CounterId::IcntRespQueued, icnt_.respQueued());
    counter(CounterId::RopQueued, rop);
    counter(CounterId::DramQueued, dram);
}

uint64_t
Gpu::deviceMalloc(size_t bytes)
{
    return gmem_.allocate(bytes);
}

void
Gpu::memcpyToDevice(uint64_t dst, const void *src, size_t bytes)
{
    gmem_.writeBlock(dst, src, bytes);
}

void
Gpu::memcpyToHost(void *dst, uint64_t src, size_t bytes)
{
    gmem_.readBlock(src, dst, bytes);
}

int
Gpu::mapPartition(uint64_t line_addr, int sm_id, const GpuConfig &config)
{
    const uint64_t line = line_addr / config.l1.lineBytes;

    if (config.smsPerL2Cluster == 0) {
        // Baseline: all SMs stripe over all partitions.
        return static_cast<int>(line % config.numPartitions);
    }

    // Semi-global L2 (Section X.C): each cluster of SMs owns a contiguous
    // slice of the partitions.
    const unsigned num_clusters =
        divCeil(config.numSms, config.smsPerL2Cluster);
    unsigned parts_per_cluster =
        std::max(1u, config.numPartitions / num_clusters);
    const unsigned cluster =
        static_cast<unsigned>(sm_id) / config.smsPerL2Cluster;
    const unsigned base =
        (cluster * parts_per_cluster) % config.numPartitions;
    return static_cast<int>((base + line % parts_per_cluster) %
                            config.numPartitions);
}

void
Gpu::dispatchCtas(DispatchState &dispatch)
{
    const LaunchContext &launch = *dispatch.launch;

    auto place = [&](unsigned sm, uint64_t linear) {
        const uint32_t cx = static_cast<uint32_t>(linear % launch.grid.x);
        const uint32_t cy =
            static_cast<uint32_t>((linear / launch.grid.x) % launch.grid.y);
        const uint32_t cz =
            static_cast<uint32_t>(linear / (uint64_t{launch.grid.x} *
                                            launch.grid.y));
        sms_[sm]->launchCta(static_cast<uint32_t>(linear), cx, cy, cz);
    };

    if (config_.ctaSched == CtaSchedPolicy::Clustered) {
        // Neighboring CTAs are packed onto the same SM in batches. The
        // assignment is strict (head-of-line): the designated SM must have
        // room before the next CTA can be placed.
        while (dispatch.next < dispatch.total) {
            const unsigned sm = static_cast<unsigned>(
                (dispatch.next / config_.ctaClusterSize) % config_.numSms);
            if (!sms_[sm]->canTakeCta())
                break;
            place(sm, dispatch.next);
            ++dispatch.next;
        }
        return;
    }

    // Baseline round-robin: each new CTA goes to the next SM with a free
    // slot (Section X.B describes this as today's hardware policy).
    while (dispatch.next < dispatch.total) {
        bool placed = false;
        for (unsigned i = 0; i < config_.numSms; ++i) {
            const unsigned sm = (dispatch.rrSm + i) % config_.numSms;
            if (sms_[sm]->canTakeCta()) {
                place(sm, dispatch.next);
                ++dispatch.next;
                dispatch.rrSm = (sm + 1) % config_.numSms;
                placed = true;
                break;
            }
        }
        if (!placed)
            break;
    }
}

bool
Gpu::allIdle() const
{
    for (const auto &sm : sms_)
        if (sm->busy())
            return false;
    if (!icnt_.idle())
        return false;
    for (const auto &part : partitions_)
        if (!part->idle())
            return false;
    return true;
}

void
Gpu::launch(const ptx::Kernel &kernel, Dim3 grid, Dim3 cta,
            std::vector<uint64_t> params)
{
    if (cta.count() == 0 || grid.count() == 0)
        gcl_sim_error(SimError::Kind::Workload, "gpu", clock_,
                      "empty launch of '", kernel.name(), "'");
    if (cta.count() > config_.maxThreadsPerSm)
        gcl_sim_error(SimError::Kind::Workload, "gpu", clock_,
                      "launch of '", kernel.name(), "': CTA of ",
                      cta.count(), " threads exceeds the SM capacity of ",
                      config_.maxThreadsPerSm);
    if (params.size() < kernel.numParams())
        gcl_sim_error(SimError::Kind::Workload, "gpu", clock_,
                      "launch of '", kernel.name(), "' with ",
                      params.size(), " params; kernel declares ",
                      kernel.numParams());

    LaunchContext launch;
    launch.kernel = &kernel;
    launch.cfg = std::make_unique<ptx::Cfg>(kernel);
    launch.grid = grid;
    launch.cta = cta;
    launch.params = std::move(params);

    // Section V: classify every global load once, statically. The dense
    // class table joins the verdicts into crit's stall attribution (and is
    // cheap enough to build even when the profiler is off).
    core::LoadClassifier classifier(kernel);
    launch.nonDetPc.assign(kernel.size(), false);
    launch.pcLoadClass.assign(kernel.size(), 0);
    for (const auto &info : classifier.globalLoads()) {
        const bool non_det = info.cls == core::LoadClass::NonDeterministic;
        launch.nonDetPc[info.pc] = non_det;
        launch.pcLoadClass[info.pc] = non_det ? 2 : 1;
    }

    // Precompute each pc's scoreboard dependence mask (sources, guard
    // predicate, destination) so the per-cycle issue check is a word-wise
    // AND instead of a walk over the operand list.
    launch.sbWords = (kernel.numRegs() + 63) / 64;
    launch.sbMask.assign(kernel.size() * launch.sbWords, 0);
    launch.issueClass.assign(kernel.size(), LaunchContext::IssueSp);
    launch.opLatency.assign(kernel.size(), 1);
    launch.opInitiation.assign(kernel.size(), 1);
    for (size_t pc = 0; pc < kernel.size(); ++pc) {
        const ptx::Instruction &inst = kernel.inst(pc);
        // Resolve the machine description's opcode-class timing to dense
        // per-pc values the issue path can read without re-classifying.
        const FuTiming &timing =
            config_.opTiming[static_cast<size_t>(opClassFor(inst.op,
                                                            inst.type))];
        launch.opLatency[pc] = static_cast<uint16_t>(timing.latency);
        launch.opInitiation[pc] =
            static_cast<uint16_t>(timing.initiation);
        if (inst.isExit())
            launch.issueClass[pc] = LaunchContext::IssueExit;
        else if (inst.isBarrier())
            launch.issueClass[pc] = LaunchContext::IssueBarrier;
        else if (inst.isMemory())
            launch.issueClass[pc] = LaunchContext::IssueMemory;
        else if (inst.isSfu())
            launch.issueClass[pc] = LaunchContext::IssueSfu;
        uint64_t *mask = &launch.sbMask[pc * launch.sbWords];
        auto mark = [&](ptx::RegId r) {
            mask[r / 64] |= uint64_t{1} << (r % 64);
        };
        for (const auto &src : inst.srcs)
            if (src.isReg())
                mark(src.reg);
        if (inst.guarded)
            mark(inst.predReg);
        if (inst.writesDst())
            mark(inst.dst);
    }

    for (auto &sm : sms_)
        sm->startLaunch(launch);

    DispatchState dispatch;
    dispatch.total = grid.count();
    dispatch.launch = &launch;

    stats_.set().inc("launches");
    stats_.set().inc("ctas_launched", static_cast<double>(grid.count()));
    stats_.set().set("threads_per_cta", static_cast<double>(cta.count()));

    GCL_DEBUG("gpu", "launch '", kernel.name(), "': ", grid.count(),
              " CTAs x ", cta.count(), " threads");

    if (parallel_ && !team_)
        team_ = std::make_unique<exec::TickTeam>(threads_);

    // Cycle 0 is reserved as the "unset timestamp" sentinel; the clock is
    // global and monotonic across launches.
    const Cycle start = clock_ + 1;
    {
        const SimStats::Hot totals = stats_.hotTotals();
        watchdog_.beginLaunch(start, totals.warpInsts, totals.reqsCompleted);
    }
    Cycle now = start;
    for (;; ++now) {
        // max_cycles budgets the whole run (the global clock), so a
        // many-launch app cannot dodge the cap launch by launch.
        if (now >= config_.maxCycles)
            gcl_sim_error(SimError::Kind::Timeout, "gpu", now,
                          "run exceeded its budget of ", config_.maxCycles,
                          " cycles during launch of '", kernel.name(), "'");
        if (fault_ && fault_->stopKernel(now))
            gcl_sim_error(SimError::Kind::FaultInjected, "gpu", now,
                          "fault plan stopped kernel '", kernel.name(),
                          "'");
        // Progress counters now live in per-unit shards, so totalling them
        // is O(units); the due() gate keeps that off the per-cycle path.
        if (watchdog_.due(now)) {
            const SimStats::Hot totals = stats_.hotTotals();
            if (watchdog_.onCycle(now, totals.warpInsts,
                                  totals.reqsCompleted)) {
                auto report = std::make_shared<guard::HangReport>(
                    buildHangReport(kernel.name(), now));
                // Final timeline sample so a Chrome-trace export shows the
                // queue occupancies of the hung window.
                if (GCL_TRACE_ACTIVE(traceSink_))
                    sampleTimeline(now);
                SimError error(SimError::Kind::Hang, "gpu", now,
                               report->summary());
                error.hangReport = std::move(report);
                throw error;
            }
        }

        dispatchCtas(dispatch);

        if (parallel_) {
            // ---- Deterministic parallel tick: compute, then commit ----
            // Response-side arbitration runs before the compute phase (an
            // exact hoist — see interconnect.hh); the drain gate is then
            // identical to the value the serial loop computes after the
            // partitions, because only that arbitration touches the
            // SM-bound delay queues.
            icnt_.beginCycle(now);
            tickNow_ = now;
            tickDrainGate_ =
                !config_.idleGating || icnt_.anyResponsesInFlight();
            team_->run(&Gpu::tickTask, this);

            const int err_pos = firstErrorPos();
            commitTrace(err_pos);
            if (err_pos >= 0) {
                // Mirror a serial mid-cycle throw: the request-side
                // arbitration and this cycle's staged writes never happen.
                const unsigned units = numUnits();
                std::exception_ptr err =
                    err_pos < static_cast<int>(units)
                        ? unitErrors_[static_cast<size_t>(err_pos)]
                        : drainErrors_[static_cast<size_t>(err_pos) - units];
                for (auto &e : unitErrors_)
                    e = nullptr;
                for (auto &e : drainErrors_)
                    e = nullptr;
                std::rethrow_exception(err);
            }
            icnt_.commitCycle(now);
            for (auto &sm : sms_)
                sm->commitStagedWrites();
        } else {
            for (auto &sm : sms_) {
                // Idle SMs still tick the Fig 4 denominator but skip the
                // pipeline walk.
                if (sm->busy())
                    sm->cycle(now, icnt_);
                else
                    sm->idleCycle();
            }
            icnt_.cycle(now);
            for (unsigned p = 0; p < partitions_.size(); ++p) {
                // A drained partition with no arriving flit would run a
                // no-op cycle; skipping it is invisible to timing and
                // stats (tests/test_gating.cc proves bit-identity).
                if (config_.idleGating && partitions_[p]->idle() &&
                    !icnt_.hasRequest(static_cast<int>(p), now))
                    continue;
                partitions_[p]->cycle(now, icnt_);
            }
            if (!config_.idleGating || icnt_.anyResponsesInFlight())
                for (auto &sm : sms_)
                    sm->drainResponses(now, icnt_);
            // End-of-cycle write commit, same protocol as the parallel
            // tick (and the reason both thread counts agree bit-for-bit).
            for (auto &sm : sms_)
                sm->commitStagedWrites();
        }

        if (timelineInterval_ != 0 && GCL_TRACE_ACTIVE(traceSink_) &&
            (now - start) % timelineInterval_ == 0)
            sampleTimeline(now);

        if (dispatch.next == dispatch.total && allIdle())
            break;
    }

    // Conservation: every data-expecting request the L1s accepted must
    // have completed by the time the device drained.
    {
        const SimStats::Hot totals = stats_.hotTotals();
        gcl_sim_check(totals.reqsIssued == totals.reqsCompleted, "gpu",
                      now, totals.reqsIssued, " requests issued but ",
                      totals.reqsCompleted,
                      " completed at the end of launch of '", kernel.name(),
                      "'");
    }

    clock_ = now;
    lastLaunchCycles_ = now - start + 1;
    stats_.set().inc("cycles", static_cast<double>(lastLaunchCycles_));
    GCL_DEBUG("gpu", "launch '", kernel.name(), "' retired after ",
              lastLaunchCycles_, " cycles");
}

void
Gpu::tickTask(void *ctx, unsigned participant)
{
    static_cast<Gpu *>(ctx)->tickParticipant(participant);
}

void
Gpu::tickParticipant(unsigned participant)
{
    // unit % threads interleaves heavy SMs and light partitions across
    // the participants instead of handing all partitions to one of them.
    const unsigned units = numUnits();
    for (unsigned unit = participant; unit < units; unit += threads_)
        unitTick(unit);
}

void
Gpu::unitTick(unsigned unit)
{
    const Cycle now = tickNow_;
    if (unit < config_.numSms) {
        Sm &sm = *sms_[unit];
        try {
            if (sm.busy())
                sm.cycle(now, icnt_);
            else
                sm.idleCycle();
        } catch (...) {
            unitErrors_[unit] = std::current_exception();
            return;
        }
        if (!tickDrainGate_)
            return;
        // Response-drain events sit after every unit's cycle events in the
        // serial emission order; stage them in their own segment.
        if (sm.traceSink)
            sm.traceSink->beginSegment(trace::StageSink::kSegDrain);
        try {
            sm.drainResponses(now, icnt_);
        } catch (...) {
            drainErrors_[unit] = std::current_exception();
        }
        return;
    }
    const unsigned p = unit - config_.numSms;
    try {
        // The partition's own idle gate: every input (its queues, its
        // arrived-flit check) is unit-confined state, and the request-side
        // arbitration that could change hasRequest() only lands flits
        // poppable next cycle — so this decision equals the serial one.
        if (config_.idleGating && partitions_[p]->idle() &&
            !icnt_.hasRequest(static_cast<int>(p), now))
            return;
        partitions_[p]->cycle(now, icnt_);
    } catch (...) {
        unitErrors_[unit] = std::current_exception();
    }
}

int
Gpu::firstErrorPos() const
{
    if (!parallel_)
        return -1;
    const unsigned units = numUnits();
    for (unsigned u = 0; u < units; ++u)
        if (unitErrors_[u])
            return static_cast<int>(u);
    for (unsigned s = 0; s < config_.numSms; ++s)
        if (drainErrors_[s])
            return static_cast<int>(units + s);
    return -1;
}

void
Gpu::commitTrace(int err_pos)
{
    if (!GCL_TRACE_ACTIVE(traceSink_))
        return;

    // 1. Draw real ids in SM-id order — the order a serial tick allocates
    //    them — and patch the live pool objects that carry provisional
    //    ids. Only partitions never allocate: every request they see is at
    //    least icnt_latency cycles old and was patched at issue.
    for (auto &sink : smSinks_) {
        auto &records = sink.records();
        sink.prepareRealIds();
        for (size_t i = 0; i < records.size(); ++i) {
            const trace::StageSink::IdRecord &rec = records[i];
            const uint64_t real = traceSink_->newId();
            sink.setReal(i, real);
            // The object may have been freed (and the slot reused) since
            // the id was handed out; only patch while the field still
            // holds this exact provisional value.
            if (rec.kind == trace::StageSink::kIdReq) {
                MemRequest &r = pools_.reqs.getRaw(rec.handle);
                if (r.id == rec.prov)
                    r.id = real;
            } else {
                WarpMemOp &o = pools_.ops.getRaw(rec.handle);
                if (o.id == rec.prov)
                    o.id = real;
            }
        }
    }

    // 2. Forward staged events in the serial within-cycle order: SM cycle
    //    segments, partition events, SM drain segments. A unit error
    //    truncates the stream exactly where a serial tick would have
    //    stopped emitting (err_pos is a serial position; the erroring
    //    unit's own buffer already ends at its throw point).
    const int units = static_cast<int>(numUnits());
    const int limit = err_pos < 0 ? units + static_cast<int>(config_.numSms)
                                  : err_pos;
    for (int s = 0; s < static_cast<int>(config_.numSms); ++s)
        if (s <= limit)
            smSinks_[static_cast<size_t>(s)].forward(
                trace::StageSink::kSegCycle);
    for (int p = 0; p < static_cast<int>(config_.numPartitions); ++p)
        if (static_cast<int>(config_.numSms) + p <= limit)
            partSinks_[static_cast<size_t>(p)].forward(0);
    for (int s = 0; s < static_cast<int>(config_.numSms); ++s)
        if (units + s <= limit)
            smSinks_[static_cast<size_t>(s)].forward(
                trace::StageSink::kSegDrain);

    for (auto &sink : smSinks_)
        sink.clearCycle();
    for (auto &sink : partSinks_)
        sink.clearCycle();
}

guard::HangReport
Gpu::buildHangReport(const std::string &kernel, Cycle now) const
{
    guard::HangReport report;
    report.kernel = kernel;
    report.cycle = now;
    report.lastProgressCycle = watchdog_.lastProgressCycle();
    report.stallCycles = now - report.lastProgressCycle;
    const SimStats::Hot totals = stats_.hotTotals();
    report.instsIssued = totals.warpInsts;
    report.reqsIssued = totals.reqsIssued;
    report.reqsCompleted = totals.reqsCompleted;
    report.icntReqQueued = icnt_.reqQueued();
    report.icntRespQueued = icnt_.respQueued();
    report.sms.reserve(sms_.size());
    for (const auto &sm : sms_)
        report.sms.push_back(sm->hangInfo());
    report.partitions.reserve(partitions_.size());
    for (const auto &part : partitions_)
        report.partitions.push_back(part->hangInfo());
    return report;
}

void
Gpu::finalizeStats()
{
    // Export how often each configured fault actually fired; a plan whose
    // windows never overlapped the run shows explicit zeros.
    if (fault_) {
        for (unsigned k = 0;
             k < static_cast<unsigned>(guard::FaultKind::NumKinds); ++k) {
            const auto kind = static_cast<guard::FaultKind>(k);
            stats_.set().set(
                std::string("fault.injected.") + guard::toString(kind),
                static_cast<double>(fault_->injected(kind)));
        }
    }
    // Fold the crit shards first: per-SM shards merge in creation order
    // into keyed adds, so the crit.* schema is byte-identical at any
    // sim_threads (the same contract SimStats::finalize honors).
    if (crit_)
        crit_->finalize(stats_.kernelNames(), stats_.set());
    stats_.finalize();
}

} // namespace gcl::sim
