#include "cache.hh"

#include "guard/sim_error.hh"
#include "util/bitutil.hh"
#include "util/logging.hh"

namespace gcl::sim
{

std::string
toString(AccessOutcome outcome)
{
    switch (outcome) {
      case AccessOutcome::Hit: return "hit";
      case AccessOutcome::HitReserved: return "hit_reserved";
      case AccessOutcome::Miss: return "miss";
      case AccessOutcome::FailTag: return "fail_tag";
      case AccessOutcome::FailMshr: return "fail_mshr";
      case AccessOutcome::FailIcnt: return "fail_icnt";
    }
    return "?";
}

Mshr::Mshr(unsigned num_entries, unsigned max_merge, MemPools &pools,
           ReqHandle MemRequest::*link)
    : numEntries_(num_entries), maxMerge_(max_merge), pools_(pools),
      link_(link)
{
    // Size the probe table at under-half load so linear probe runs stay
    // short even with every entry allocated.
    size_t capacity = 4;
    while (capacity < 2 * static_cast<size_t>(num_entries))
        capacity *= 2;
    table_.assign(capacity, Entry{});
    tableMask_ = capacity - 1;
}

size_t
Mshr::slotOf(uint64_t line_addr) const
{
    // Fibonacci hashing spreads line addresses (which share low zero bits
    // from line alignment) across the table.
    return (line_addr * UINT64_C(0x9E3779B97F4A7C15)) & tableMask_;
}

int
Mshr::find(uint64_t line_addr) const
{
    size_t slot = slotOf(line_addr);
    while (table_[slot].count != 0) {
        if (table_[slot].lineAddr == line_addr)
            return static_cast<int>(slot);
        slot = (slot + 1) & tableMask_;
    }
    return -1;
}

bool
Mshr::canMerge(uint64_t line_addr) const
{
    int slot = find(line_addr);
    return slot >= 0 && table_[slot].count < maxMerge_;
}

void
Mshr::allocate(uint64_t line_addr, ReqHandle req)
{
    gcl_sim_check(!full(), "mshr", 0, "allocate when full");
    gcl_sim_check(find(line_addr) < 0, "mshr", 0,
                  "double allocate for line ", line_addr);
    size_t slot = slotOf(line_addr);
    while (table_[slot].count != 0)
        slot = (slot + 1) & tableMask_;
    Entry &entry = table_[slot];
    entry.lineAddr = line_addr;
    entry.head = req;
    entry.tail = req;
    entry.count = 1;
    pools_.reqs.get(req).*link_ = kNullHandle;
    ++count_;
}

void
Mshr::merge(uint64_t line_addr, ReqHandle req)
{
    int slot = find(line_addr);
    gcl_sim_check(slot >= 0, "mshr", 0,
                  "merge without an entry for line ", line_addr);
    Entry &entry = table_[slot];
    gcl_sim_check(entry.count < maxMerge_, "mshr", 0,
                  "merge list overflow for line ", line_addr);
    pools_.reqs.get(entry.tail).*link_ = req;
    pools_.reqs.get(req).*link_ = kNullHandle;
    entry.tail = req;
    ++entry.count;
}

ReqHandle
Mshr::release(uint64_t line_addr)
{
    int found = find(line_addr);
    gcl_sim_check(found >= 0, "mshr", 0,
                  "release without an entry for line ", line_addr);
    ReqHandle head = table_[static_cast<size_t>(found)].head;

    // Backward-shift deletion keeps the table tombstone-free: close the
    // hole by moving back any later entry in the probe run that hashes at
    // or before the hole.
    size_t hole = static_cast<size_t>(found);
    size_t slot = (hole + 1) & tableMask_;
    while (table_[slot].count != 0) {
        size_t home = slotOf(table_[slot].lineAddr);
        // Is `home` outside the (hole, slot] circular range, i.e. would
        // moving this entry into the hole keep it reachable from home?
        if (((slot - home) & tableMask_) >= ((slot - hole) & tableMask_)) {
            table_[hole] = table_[slot];
            hole = slot;
        }
        slot = (slot + 1) & tableMask_;
    }
    table_[hole] = Entry{};
    --count_;
    return head;
}

Cache::Cache(std::string name, const CacheConfig &config, MemPools &pools,
             ReqHandle MemRequest::*link)
    : name_(std::move(name)), config_(config), pools_(pools),
      mshr_(config.mshrEntries, config.mshrMaxMerge, pools, link)
{
    // Reachable through config overrides (l1_line=..., l1_size=...), so a
    // bad geometry is a recoverable config error, not a process abort.
    gcl_sim_check(isPowerOf2(config_.lineBytes), name_, 0,
                  "line size must be a power of two, got ",
                  config_.lineBytes);
    gcl_sim_check(config_.numSets() > 0 && isPowerOf2(config_.numSets()),
                  name_, 0,
                  "cache geometry must give a power-of-two set count, got ",
                  config_.numSets());
    lines_.assign(static_cast<size_t>(config_.numSets()) * config_.assoc,
                  Line{});
}

size_t
Cache::setIndex(uint64_t line_addr) const
{
    return (line_addr / config_.lineBytes) & (config_.numSets() - 1);
}

uint64_t
Cache::tagOf(uint64_t line_addr) const
{
    return line_addr / config_.lineBytes / config_.numSets();
}

AccessOutcome
Cache::access(ReqHandle req, bool can_inject)
{
    const uint64_t line_addr = pools_.reqs.get(req).lineAddr;
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];

    // Probe.
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag != tag || !(line.valid || line.reserved))
            continue;
        if (line.valid) {
            line.lru = ++lruClock_;
            return AccessOutcome::Hit;
        }
        // Reserved: the line's fill is in flight.
        if (!mshr_.canMerge(line_addr))
            return AccessOutcome::FailMshr;
        mshr_.merge(line_addr, req);
        return AccessOutcome::HitReserved;
    }

    // Miss path: need an evictable way, an MSHR entry, and downstream
    // buffer space — in that order, matching the paper's taxonomy.
    int victim = -1;
    uint64_t victim_lru = ~uint64_t{0};
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.reserved)
            continue;
        if (!line.valid) {
            victim = static_cast<int>(way);
            break;
        }
        if (line.lru < victim_lru) {
            victim_lru = line.lru;
            victim = static_cast<int>(way);
        }
    }
    if (victim < 0)
        return AccessOutcome::FailTag;
    if (mshr_.full())
        return AccessOutcome::FailMshr;
    if (!can_inject)
        return AccessOutcome::FailIcnt;

    Line &line = set_base[victim];
    line.tag = tag;
    line.valid = false;
    line.reserved = true;
    line.lru = ++lruClock_;
    mshr_.allocate(line_addr, req);
    return AccessOutcome::Miss;
}

ReqHandle
Cache::fill(uint64_t line_addr)
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag == tag && line.reserved) {
            line.reserved = false;
            line.valid = true;
            line.lru = ++lruClock_;
            return mshr_.release(line_addr);
        }
    }
    gcl_sim_error(SimError::Kind::Invariant, name_, 0,
                  "fill for a line that is not reserved: ", line_addr);
}

bool
Cache::writeProbe(uint64_t line_addr)
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag == tag && line.valid) {
            line.lru = ++lruClock_;
            return true;
        }
    }
    return false;
}

void
Cache::installValid(uint64_t line_addr)
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];

    int victim = -1;
    uint64_t victim_lru = ~uint64_t{0};
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag == tag && (line.valid || line.reserved))
            return;  // already present (or in flight)
        if (line.reserved)
            continue;
        if (!line.valid) {
            victim = static_cast<int>(way);
            break;
        }
        if (line.lru < victim_lru) {
            victim_lru = line.lru;
            victim = static_cast<int>(way);
        }
    }
    if (victim < 0)
        return;  // every way pinned by in-flight fills; skip the install

    Line &line = set_base[victim];
    line.tag = tag;
    line.valid = true;
    line.reserved = false;
    line.lru = ++lruClock_;
}

size_t
Cache::reservedLines() const
{
    size_t reserved = 0;
    for (const Line &line : lines_)
        if (line.reserved)
            ++reserved;
    return reserved;
}

bool
Cache::isHit(uint64_t line_addr) const
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    const Line *set_base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way)
        if (set_base[way].tag == tag && set_base[way].valid)
            return true;
    return false;
}

} // namespace gcl::sim
