#include "cache.hh"

#include "guard/sim_error.hh"
#include "util/bitutil.hh"
#include "util/logging.hh"

namespace gcl::sim
{

std::string
toString(AccessOutcome outcome)
{
    switch (outcome) {
      case AccessOutcome::Hit: return "hit";
      case AccessOutcome::HitReserved: return "hit_reserved";
      case AccessOutcome::Miss: return "miss";
      case AccessOutcome::FailTag: return "fail_tag";
      case AccessOutcome::FailMshr: return "fail_mshr";
      case AccessOutcome::FailIcnt: return "fail_icnt";
    }
    return "?";
}

bool
Mshr::hasEntry(uint64_t line_addr) const
{
    return entries_.count(line_addr) > 0;
}

bool
Mshr::canMerge(uint64_t line_addr) const
{
    auto it = entries_.find(line_addr);
    return it != entries_.end() && it->second.size() < maxMerge_;
}

void
Mshr::allocate(uint64_t line_addr, MemRequestPtr req)
{
    gcl_sim_check(!full(), "mshr", 0, "allocate when full");
    gcl_sim_check(!hasEntry(line_addr), "mshr", 0,
                  "double allocate for line ", line_addr);
    entries_[line_addr].push_back(std::move(req));
}

void
Mshr::merge(uint64_t line_addr, MemRequestPtr req)
{
    auto it = entries_.find(line_addr);
    gcl_sim_check(it != entries_.end(), "mshr", 0,
                  "merge without an entry for line ", line_addr);
    gcl_sim_check(it->second.size() < maxMerge_, "mshr", 0,
                  "merge list overflow for line ", line_addr);
    it->second.push_back(std::move(req));
}

std::vector<MemRequestPtr>
Mshr::release(uint64_t line_addr)
{
    auto it = entries_.find(line_addr);
    gcl_sim_check(it != entries_.end(), "mshr", 0,
                  "release without an entry for line ", line_addr);
    std::vector<MemRequestPtr> waiting = std::move(it->second);
    entries_.erase(it);
    return waiting;
}

Cache::Cache(std::string name, const CacheConfig &config)
    : name_(std::move(name)), config_(config),
      mshr_(config.mshrEntries, config.mshrMaxMerge)
{
    // Reachable through config overrides (l1_line=..., l1_size=...), so a
    // bad geometry is a recoverable config error, not a process abort.
    gcl_sim_check(isPowerOf2(config_.lineBytes), name_, 0,
                  "line size must be a power of two, got ",
                  config_.lineBytes);
    gcl_sim_check(config_.numSets() > 0 && isPowerOf2(config_.numSets()),
                  name_, 0,
                  "cache geometry must give a power-of-two set count, got ",
                  config_.numSets());
    lines_.assign(static_cast<size_t>(config_.numSets()) * config_.assoc,
                  Line{});
}

size_t
Cache::setIndex(uint64_t line_addr) const
{
    return (line_addr / config_.lineBytes) & (config_.numSets() - 1);
}

uint64_t
Cache::tagOf(uint64_t line_addr) const
{
    return line_addr / config_.lineBytes / config_.numSets();
}

AccessOutcome
Cache::access(const MemRequestPtr &req, bool can_inject)
{
    const uint64_t line_addr = req->lineAddr;
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];

    // Probe.
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag != tag || !(line.valid || line.reserved))
            continue;
        if (line.valid) {
            line.lru = ++lruClock_;
            return AccessOutcome::Hit;
        }
        // Reserved: the line's fill is in flight.
        if (!mshr_.canMerge(line_addr))
            return AccessOutcome::FailMshr;
        mshr_.merge(line_addr, req);
        return AccessOutcome::HitReserved;
    }

    // Miss path: need an evictable way, an MSHR entry, and downstream
    // buffer space — in that order, matching the paper's taxonomy.
    int victim = -1;
    uint64_t victim_lru = ~uint64_t{0};
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.reserved)
            continue;
        if (!line.valid) {
            victim = static_cast<int>(way);
            break;
        }
        if (line.lru < victim_lru) {
            victim_lru = line.lru;
            victim = static_cast<int>(way);
        }
    }
    if (victim < 0)
        return AccessOutcome::FailTag;
    if (mshr_.full())
        return AccessOutcome::FailMshr;
    if (!can_inject)
        return AccessOutcome::FailIcnt;

    Line &line = set_base[victim];
    line.tag = tag;
    line.valid = false;
    line.reserved = true;
    line.lru = ++lruClock_;
    mshr_.allocate(line_addr, req);
    return AccessOutcome::Miss;
}

std::vector<MemRequestPtr>
Cache::fill(uint64_t line_addr)
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag == tag && line.reserved) {
            line.reserved = false;
            line.valid = true;
            line.lru = ++lruClock_;
            return mshr_.release(line_addr);
        }
    }
    gcl_sim_error(SimError::Kind::Invariant, name_, 0,
                  "fill for a line that is not reserved: ", line_addr);
}

bool
Cache::writeProbe(uint64_t line_addr)
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag == tag && line.valid) {
            line.lru = ++lruClock_;
            return true;
        }
    }
    return false;
}

void
Cache::installValid(uint64_t line_addr)
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *set_base = &lines_[set * config_.assoc];

    int victim = -1;
    uint64_t victim_lru = ~uint64_t{0};
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = set_base[way];
        if (line.tag == tag && (line.valid || line.reserved))
            return;  // already present (or in flight)
        if (line.reserved)
            continue;
        if (!line.valid) {
            victim = static_cast<int>(way);
            break;
        }
        if (line.lru < victim_lru) {
            victim_lru = line.lru;
            victim = static_cast<int>(way);
        }
    }
    if (victim < 0)
        return;  // every way pinned by in-flight fills; skip the install

    Line &line = set_base[victim];
    line.tag = tag;
    line.valid = true;
    line.reserved = false;
    line.lru = ++lruClock_;
}

size_t
Cache::reservedLines() const
{
    size_t reserved = 0;
    for (const Line &line : lines_)
        if (line.reserved)
            ++reserved;
    return reserved;
}

bool
Cache::isHit(uint64_t line_addr) const
{
    const size_t set = setIndex(line_addr);
    const uint64_t tag = tagOf(line_addr);
    const Line *set_base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way)
        if (set_base[way].tag == tag && set_base[way].valid)
            return true;
    return false;
}

} // namespace gcl::sim
