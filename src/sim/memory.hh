/**
 * @file
 * Functional memory: the device's flat global address space plus a simple
 * bump allocator, and the per-CTA shared-memory scratchpads.
 *
 * Functional state is completely separate from the timing model: caches in
 * the timing model hold tags only. Loads read this memory at issue time
 * (timing-directed functional execution; DESIGN.md decision 1).
 */

#ifndef GCL_SIM_MEMORY_HH
#define GCL_SIM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace gcl::sim
{

/** Sparse, paged, byte-addressable functional memory. */
class GlobalMemory
{
  public:
    /** Read @p size bytes (1/2/4/8) at @p addr, zero-extended. */
    uint64_t read(uint64_t addr, unsigned size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(uint64_t addr, uint64_t value, unsigned size);

    /** Bulk copy helpers for the host-side API. */
    void readBlock(uint64_t addr, void *dst, size_t size) const;
    void writeBlock(uint64_t addr, const void *src, size_t size);

    /** Device malloc: bump allocation, 256-byte aligned. */
    uint64_t allocate(size_t size);

    /** Number of resident pages (for tests). */
    size_t numPages() const { return pages_.size(); }

  private:
    static constexpr uint64_t kPageBits = 12;
    static constexpr uint64_t kPageSize = 1ull << kPageBits;

    uint8_t *pageFor(uint64_t addr);
    const uint8_t *pageForRead(uint64_t addr) const;

    mutable std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
    uint64_t allocTop_ = 0x10000000ull;  //!< device heap base
};

/** Per-CTA shared-memory scratchpad. */
class SharedMemory
{
  public:
    explicit SharedMemory(uint32_t size) : data_(size, 0) {}

    uint64_t read(uint64_t addr, unsigned size) const;
    void write(uint64_t addr, uint64_t value, unsigned size);

    uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

  private:
    std::vector<uint8_t> data_;
};

} // namespace gcl::sim

#endif // GCL_SIM_MEMORY_HH
