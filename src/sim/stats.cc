#include "stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gcl::sim
{

namespace
{

/** Initial block-table capacity; power of two. */
constexpr size_t kInitialBlockSlots = 1024;

size_t
blockSlotOf(uint64_t line_addr, size_t mask)
{
    // Fibonacci hashing: line addresses share low zero bits.
    return (line_addr * UINT64_C(0x9E3779B97F4A7C15)) & mask;
}

} // namespace

SimStats::SimStats(const GpuConfig &config)
    : config_(config),
      l2Queries_(config.numPartitions, 0),
      l2Hits_(config.numPartitions, 0),
      blockTable_(kInitialBlockSlots)
{
}

void
SimStats::insertCta(std::vector<uint32_t> &ctas, uint32_t cta)
{
    // Unsorted unique append; repeated accesses usually come from the CTA
    // that touched the block most recently, so scan from the back. The
    // vectors are sorted once at finalize.
    for (size_t i = ctas.size(); i-- > 0;)
        if (ctas[i] == cta)
            return;
    ctas.push_back(cta);
}

void
SimStats::growBlockTable()
{
    std::vector<BlockSlot> old = std::move(blockTable_);
    blockTable_.assign(old.size() * 2, BlockSlot{});
    const size_t mask = blockTable_.size() - 1;
    for (BlockSlot &slot : old) {
        if (slot.info.accesses == 0)
            continue;
        size_t at = blockSlotOf(slot.lineAddr, mask);
        while (blockTable_[at].info.accesses != 0)
            at = (at + 1) & mask;
        blockTable_[at] = std::move(slot);
    }
}

SimStats::BlockInfo &
SimStats::blockFor(uint64_t line_addr)
{
    const size_t mask = blockTable_.size() - 1;
    size_t at = blockSlotOf(line_addr, mask);
    while (blockTable_[at].info.accesses != 0) {
        if (blockTable_[at].lineAddr == line_addr)
            return blockTable_[at].info;
        at = (at + 1) & mask;
    }
    // New block: grow at ~70% load before inserting so probe runs stay
    // short, then claim the (possibly relocated) slot.
    if ((blockCount_ + 1) * 10 > blockTable_.size() * 7) {
        growBlockTable();
        const size_t grown_mask = blockTable_.size() - 1;
        at = blockSlotOf(line_addr, grown_mask);
        while (blockTable_[at].info.accesses != 0)
            at = (at + 1) & grown_mask;
    }
    ++blockCount_;
    blockTable_[at].lineAddr = line_addr;
    return blockTable_[at].info;  // caller increments accesses immediately
}

void
SimStats::l1Access(bool non_det, bool miss, uint64_t line_addr, uint32_t cta)
{
    ++hot.l1Access[non_det];
    if (miss)
        ++hot.l1Miss[non_det];

    BlockInfo &block = blockFor(line_addr);
    ++block.accesses;
    insertCta(block.ctas, cta);
    insertCta(non_det ? block.ctasNondet : block.ctasDet, cta);
}

uint32_t
SimStats::kernelId(const std::string &name)
{
    auto it = kernelIds_.find(name);
    if (it != kernelIds_.end())
        return it->second;
    const auto id = static_cast<uint32_t>(kernelNames_.size());
    kernelNames_.push_back(name);
    kernelIds_.emplace(name, id);
    return id;
}

void
SimStats::gloadDone(const WarpMemOp &op, uint32_t kernel_id)
{
    const bool nd = op.nonDet;
    const uint32_t nreq = op.numRequests;

    // Fig 2 aggregates.
    ClassAgg &agg = cls_[nd];
    ++agg.warps;
    agg.reqs += nreq;
    agg.active += op.activeThreads;

    // Fig 5: decomposition of the turnaround time.
    const double turnaround = static_cast<double>(op.tDone - op.tIssue);
    const double rsrv_prev =
        static_cast<double>(op.tFirstAccept - op.tIssue);
    const double rsrv_cur =
        static_cast<double>(op.tLastAccept - op.tFirstAccept);
    double unloaded = 0.0;
    switch (op.deepest) {
      case ServiceLevel::L1:
        unloaded = config_.l1HitLatency;
        break;
      case ServiceLevel::L2:
        unloaded = config_.unloadedL2Latency();
        break;
      case ServiceLevel::Dram:
        unloaded = config_.unloadedDramLatency();
        break;
    }
    const double wasted_mem =
        std::max(0.0, turnaround - unloaded - rsrv_prev - rsrv_cur);

    agg.turnSum += turnaround;
    agg.unloaded += unloaded;
    agg.rsrvPrev += rsrv_prev;
    agg.rsrvCur += rsrv_cur;
    agg.mem += wasted_mem;

    // Figs 6 and 7: per-pc breakdown keyed by the request count. The fast
    // path indexes a dense per-kernel array; pcs past the dense limit
    // spill into the map.
    PcBucket *bucket;
    const auto pc_idx = static_cast<uint32_t>(op.pc);
    if (pc_idx < kDensePcLimit) {
        if (kernel_id >= pcDense_.size())
            pcDense_.resize(kernel_id + 1);
        auto &slots = pcDense_[kernel_id];
        if (pc_idx >= slots.size())
            slots.resize(pc_idx + 1);
        PcSlot &slot = slots[pc_idx];
        slot.used = true;
        slot.nonDet = nd;
        bucket = &slot.byReqs[nreq];
    } else {
        const uint64_t key = (uint64_t{kernel_id} << 32) | pc_idx;
        PcAgg &pc = pcAggs_[key];
        pc.nonDet = nd;
        bucket = &pc.byReqs[nreq];
    }
    ++bucket->cnt;
    bucket->turn += turnaround;
    bucket->gapL1d += rsrv_cur;

    // Gap at icnt-L2: extra queueing between L1 acceptance and the start of
    // L2 service, accumulated per request as each completed (see
    // Sm::completeRequest) and averaged over the op's missed requests.
    double gap_icnt_l2 = op.gapIcntL2Sum;
    if (op.missedReqs)
        gap_icnt_l2 /= op.missedReqs;
    bucket->gapIcntL2 += gap_icnt_l2;

    // Gap at L2-icnt: spread between the first and the last returned data.
    bucket->gapL2Icnt +=
        op.tFirstData ? static_cast<double>(op.tDone - op.tFirstData) : 0.0;
}

void
SimStats::distanceHistogram(const std::vector<uint32_t> &ctas,
                            Histogram &hist)
{
    for (size_t i = 0; i < ctas.size(); ++i)
        for (size_t j = i + 1; j < ctas.size(); ++j)
            hist.add(static_cast<int64_t>(ctas[j]) - ctas[i], 1.0);
}

SimStats::PcHists
SimStats::pcHists(uint32_t kernel, uint32_t pc_idx, bool non_det)
{
    const std::string prefix = "pc." + kernelNames_[kernel] + "#" +
                               std::to_string(pc_idx) + ".";
    set_.set(prefix + "nondet", non_det ? 1.0 : 0.0);
    return {&set_.hist(prefix + "turn_cnt"), &set_.hist(prefix + "turn_sum"),
            &set_.hist(prefix + "gap_l1d"),
            &set_.hist(prefix + "gap_icnt_l2"),
            &set_.hist(prefix + "gap_l2icnt")};
}

void
SimStats::addPcBucket(const PcHists &hists, uint32_t nreq,
                      const PcBucket &bucket)
{
    hists.cnt->add(nreq, static_cast<double>(bucket.cnt));
    hists.turn->add(nreq, bucket.turn);
    hists.gapL1d->add(nreq, bucket.gapL1d);
    hists.gapIcntL2->add(nreq, bucket.gapIcntL2);
    hists.gapL2Icnt->add(nreq, bucket.gapL2Icnt);
}

void
SimStats::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    // --- Hot counters ---
    set_.inc("warp_insts", static_cast<double>(hot.warpInsts));
    set_.inc("thread_insts", static_cast<double>(hot.threadInsts));
    set_.inc("sm_cycles", static_cast<double>(hot.smCycles));
    set_.inc("busy.sp", static_cast<double>(hot.busySp));
    set_.inc("busy.sfu", static_cast<double>(hot.busySfu));
    set_.inc("busy.ldst", static_cast<double>(hot.busyLdst));
    set_.inc("part.stall_cycles", static_cast<double>(hot.partStalls));
    set_.inc("reqs.issued", static_cast<double>(hot.reqsIssued));
    set_.inc("reqs.completed", static_cast<double>(hot.reqsCompleted));
    set_.inc("sload.warps", static_cast<double>(hot.sloadWarps));
    set_.inc("sstore.warps", static_cast<double>(hot.sstoreWarps));
    set_.inc("gstore.warps", static_cast<double>(hot.gstoreWarps));
    set_.inc("atom.warps", static_cast<double>(hot.atomWarps));
    set_.inc("l2.atomics", static_cast<double>(hot.l2Atomics));

    static const char *outcome_names[6] = {
        "hit", "hit_reserved", "miss", "fail_tag", "fail_mshr", "fail_icnt",
    };
    for (int o = 0; o < 6; ++o)
        set_.inc(std::string("l1.outcome.") + outcome_names[o],
                 static_cast<double>(hot.l1Outcome[o]));

    for (int nd = 0; nd < 2; ++nd) {
        const char *sfx = nd ? ".nondet" : ".det";
        set_.inc(std::string("l1.access") + sfx,
                 static_cast<double>(hot.l1Access[nd]));
        set_.inc(std::string("l1.miss") + sfx,
                 static_cast<double>(hot.l1Miss[nd]));
        set_.inc(std::string("l2.access") + sfx,
                 static_cast<double>(hot.l2Access[nd]));
        set_.inc(std::string("l2.miss") + sfx,
                 static_cast<double>(hot.l2Miss[nd]));

        const ClassAgg &agg = cls_[nd];
        set_.inc(std::string("gload.warps") + sfx,
                 static_cast<double>(agg.warps));
        set_.inc(std::string("gload.reqs") + sfx,
                 static_cast<double>(agg.reqs));
        set_.inc(std::string("gload.active") + sfx,
                 static_cast<double>(agg.active));
        set_.inc(std::string("turn.cnt") + sfx,
                 static_cast<double>(agg.warps));
        set_.inc(std::string("turn.sum") + sfx, agg.turnSum);
        set_.inc(std::string("turn.unloaded") + sfx, agg.unloaded);
        set_.inc(std::string("turn.rsrv_prev") + sfx, agg.rsrvPrev);
        set_.inc(std::string("turn.rsrv_cur") + sfx, agg.rsrvCur);
        set_.inc(std::string("turn.mem") + sfx, agg.mem);
    }

    for (size_t p = 0; p < l2Queries_.size(); ++p) {
        set_.inc("l2.queries.p" + std::to_string(p),
                 static_cast<double>(l2Queries_[p]));
        set_.inc("l2.hits.p" + std::to_string(p),
                 static_cast<double>(l2Hits_[p]));
    }

    // --- Per-pc aggregates (Figs 6 and 7) ---
    for (uint32_t kernel = 0; kernel < pcDense_.size(); ++kernel) {
        const auto &slots = pcDense_[kernel];
        for (uint32_t pc_idx = 0; pc_idx < slots.size(); ++pc_idx) {
            const PcSlot &slot = slots[pc_idx];
            if (!slot.used)
                continue;
            const PcHists hists = pcHists(kernel, pc_idx, slot.nonDet);
            for (uint32_t nreq = 0; nreq <= WarpMemOp::kMaxRequests; ++nreq)
                if (slot.byReqs[nreq].cnt != 0)
                    addPcBucket(hists, nreq, slot.byReqs[nreq]);
        }
    }
    pcDense_.clear();
    for (const auto &[key, pc] : pcAggs_) {
        const auto kernel = static_cast<uint32_t>(key >> 32);
        const auto pc_idx = static_cast<uint32_t>(key);
        const PcHists hists = pcHists(kernel, pc_idx, pc.nonDet);
        for (const auto &[nreq, bucket] : pc.byReqs)
            addPcBucket(hists, nreq, bucket);
    }
    pcAggs_.clear();

    // --- Inter-CTA locality (Figs 10, 11, 12) ---
    Histogram &dist = set_.hist("cta_distance");
    Histogram &dist_det = set_.hist("cta_distance.det");
    Histogram &dist_nondet = set_.hist("cta_distance.nondet");
    Histogram &reuse = set_.hist("block_reuse");

    for (BlockSlot &slot : blockTable_) {
        BlockInfo &block = slot.info;
        if (block.accesses == 0)
            continue;
        // The CTA lists accumulate unsorted; the distance histograms need
        // ascending order (distances are ctas[j] - ctas[i] over i < j).
        std::sort(block.ctas.begin(), block.ctas.end());
        std::sort(block.ctasDet.begin(), block.ctasDet.end());
        std::sort(block.ctasNondet.begin(), block.ctasNondet.end());
        set_.inc("blocks.count");
        set_.inc("blocks.accesses", static_cast<double>(block.accesses));
        reuse.add(static_cast<int64_t>(block.accesses), 1.0);
        if (block.ctas.size() >= 2) {
            set_.inc("blocks.shared");
            set_.inc("blocks.shared_accesses",
                     static_cast<double>(block.accesses));
            set_.inc("blocks.shared_cta_sum",
                     static_cast<double>(block.ctas.size()));
            distanceHistogram(block.ctas, dist);
        }
        if (block.ctasDet.size() >= 2)
            distanceHistogram(block.ctasDet, dist_det);
        if (block.ctasNondet.size() >= 2)
            distanceHistogram(block.ctasNondet, dist_nondet);
    }
    blockTable_.clear();
    blockCount_ = 0;
}

} // namespace gcl::sim
