#include "stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gcl::sim
{

namespace
{

/** Initial block-table capacity; power of two. */
constexpr size_t kInitialBlockSlots = 1024;

size_t
blockSlotOf(uint64_t line_addr, size_t mask)
{
    // Fibonacci hashing: line addresses share low zero bits.
    return (line_addr * UINT64_C(0x9E3779B97F4A7C15)) & mask;
}

} // namespace

SimStats::SimStats(const GpuConfig &config)
    : config_(config),
      l2Queries_(config.numPartitions, 0),
      l2Hits_(config.numPartitions, 0),
      base_(*this),
      hot(base_.hot)
{
    base_.blockTable_.resize(kInitialBlockSlots);
}

void
SimStats::Hot::add(const Hot &o)
{
    warpInsts += o.warpInsts;
    threadInsts += o.threadInsts;
    smCycles += o.smCycles;
    reqsIssued += o.reqsIssued;
    reqsCompleted += o.reqsCompleted;
    busySp += o.busySp;
    busySfu += o.busySfu;
    busyLdst += o.busyLdst;
    for (int i = 0; i < 6; ++i)
        l1Outcome[i] += o.l1Outcome[i];
    for (int i = 0; i < 2; ++i) {
        l1Access[i] += o.l1Access[i];
        l1Miss[i] += o.l1Miss[i];
        l2Access[i] += o.l2Access[i];
        l2Miss[i] += o.l2Miss[i];
    }
    partStalls += o.partStalls;
    sloadWarps += o.sloadWarps;
    sstoreWarps += o.sstoreWarps;
    gstoreWarps += o.gstoreWarps;
    atomWarps += o.atomWarps;
    l2Atomics += o.l2Atomics;
    l2WriteAbsorbed += o.l2WriteAbsorbed;
}

SimStats::Shard &
SimStats::newShard()
{
    shards_.push_back(Shard(*this));
    return shards_.back();
}

SimStats::Hot
SimStats::hotTotals() const
{
    Hot total = base_.hot;
    for (const Shard &shard : shards_)
        total.add(shard.hot);
    return total;
}

void
SimStats::insertCta(std::vector<uint32_t> &ctas, uint32_t cta)
{
    // Unsorted unique append; repeated accesses usually come from the CTA
    // that touched the block most recently, so scan from the back. The
    // vectors are sorted once at finalize.
    for (size_t i = ctas.size(); i-- > 0;)
        if (ctas[i] == cta)
            return;
    ctas.push_back(cta);
}

void
SimStats::Shard::growBlockTable()
{
    std::vector<BlockSlot> old = std::move(blockTable_);
    blockTable_.assign(old.size() * 2, BlockSlot{});
    const size_t mask = blockTable_.size() - 1;
    for (BlockSlot &slot : old) {
        if (slot.info.accesses == 0)
            continue;
        size_t at = blockSlotOf(slot.lineAddr, mask);
        while (blockTable_[at].info.accesses != 0)
            at = (at + 1) & mask;
        blockTable_[at] = std::move(slot);
    }
}

SimStats::BlockInfo &
SimStats::Shard::blockFor(uint64_t line_addr)
{
    if (blockTable_.empty())
        blockTable_.resize(kInitialBlockSlots);
    const size_t mask = blockTable_.size() - 1;
    size_t at = blockSlotOf(line_addr, mask);
    while (blockTable_[at].info.accesses != 0) {
        if (blockTable_[at].lineAddr == line_addr)
            return blockTable_[at].info;
        at = (at + 1) & mask;
    }
    // New block: grow at ~70% load before inserting so probe runs stay
    // short, then claim the (possibly relocated) slot.
    if ((blockCount_ + 1) * 10 > blockTable_.size() * 7) {
        growBlockTable();
        const size_t grown_mask = blockTable_.size() - 1;
        at = blockSlotOf(line_addr, grown_mask);
        while (blockTable_[at].info.accesses != 0)
            at = (at + 1) & grown_mask;
    }
    ++blockCount_;
    blockTable_[at].lineAddr = line_addr;
    return blockTable_[at].info;  // caller increments accesses immediately
}

void
SimStats::Shard::l1Access(bool non_det, bool miss, uint64_t line_addr,
                          uint32_t cta)
{
    ++hot.l1Access[non_det];
    if (miss)
        ++hot.l1Miss[non_det];

    BlockInfo &block = blockFor(line_addr);
    ++block.accesses;
    insertCta(block.ctas, cta);
    insertCta(non_det ? block.ctasNondet : block.ctasDet, cta);
}

uint32_t
SimStats::kernelId(const std::string &name)
{
    auto it = kernelIds_.find(name);
    if (it != kernelIds_.end())
        return it->second;
    const auto id = static_cast<uint32_t>(kernelNames_.size());
    kernelNames_.push_back(name);
    kernelIds_.emplace(name, id);
    return id;
}

void
SimStats::Shard::gloadDone(const WarpMemOp &op, uint32_t kernel_id)
{
    const bool nd = op.nonDet;
    const uint32_t nreq = op.numRequests;
    const GpuConfig &config = owner_->config_;

    // Fig 2 aggregates.
    ClassAgg &agg = cls_[nd];
    ++agg.warps;
    agg.reqs += nreq;
    agg.active += op.activeThreads;

    // Fig 5: decomposition of the turnaround time.
    const double turnaround = static_cast<double>(op.tDone - op.tIssue);
    const double rsrv_prev =
        static_cast<double>(op.tFirstAccept - op.tIssue);
    const double rsrv_cur =
        static_cast<double>(op.tLastAccept - op.tFirstAccept);
    double unloaded = 0.0;
    switch (op.deepest) {
      case ServiceLevel::L1:
        unloaded = config.l1HitLatency;
        break;
      case ServiceLevel::L2:
        unloaded = config.unloadedL2Latency();
        break;
      case ServiceLevel::Dram:
        unloaded = config.unloadedDramLatency();
        break;
    }
    const double wasted_mem =
        std::max(0.0, turnaround - unloaded - rsrv_prev - rsrv_cur);

    agg.turnSum += turnaround;
    agg.unloaded += unloaded;
    agg.rsrvPrev += rsrv_prev;
    agg.rsrvCur += rsrv_cur;
    agg.mem += wasted_mem;

    // Figs 6 and 7: per-pc breakdown keyed by the request count. The fast
    // path indexes a dense per-kernel array; pcs past the dense limit
    // spill into the map.
    PcBucket *bucket;
    const auto pc_idx = static_cast<uint32_t>(op.pc);
    if (pc_idx < kDensePcLimit) {
        if (kernel_id >= pcDense_.size())
            pcDense_.resize(kernel_id + 1);
        auto &slots = pcDense_[kernel_id];
        if (pc_idx >= slots.size())
            slots.resize(pc_idx + 1);
        PcSlot &slot = slots[pc_idx];
        slot.used = true;
        slot.nonDet = nd;
        bucket = &slot.byReqs[nreq];
    } else {
        const uint64_t key = (uint64_t{kernel_id} << 32) | pc_idx;
        PcAgg &pc = pcAggs_[key];
        pc.nonDet = nd;
        bucket = &pc.byReqs[nreq];
    }
    ++bucket->cnt;
    bucket->turn += turnaround;
    bucket->gapL1d += rsrv_cur;

    // Gap at icnt-L2: extra queueing between L1 acceptance and the start of
    // L2 service, accumulated per request as each completed (see
    // Sm::completeRequest) and averaged over the op's missed requests.
    double gap_icnt_l2 = op.gapIcntL2Sum;
    if (op.missedReqs)
        gap_icnt_l2 /= op.missedReqs;
    bucket->gapIcntL2 += gap_icnt_l2;

    // Gap at L2-icnt: spread between the first and the last returned data.
    bucket->gapL2Icnt +=
        op.tFirstData ? static_cast<double>(op.tDone - op.tFirstData) : 0.0;
}

void
SimStats::mergeShard(Shard &shard)
{
    base_.hot.add(shard.hot);
    shard.hot = Hot{};

    for (int nd = 0; nd < 2; ++nd) {
        ClassAgg &dst = base_.cls_[nd];
        const ClassAgg &src = shard.cls_[nd];
        dst.warps += src.warps;
        dst.reqs += src.reqs;
        dst.active += src.active;
        dst.turnSum += src.turnSum;
        dst.unloaded += src.unloaded;
        dst.rsrvPrev += src.rsrvPrev;
        dst.rsrvCur += src.rsrvCur;
        dst.mem += src.mem;
        shard.cls_[nd] = ClassAgg{};
    }

    // Per-pc dense slots: bucket-wise adds into the base's slot. The
    // nonDet bit is a static property of the pc, identical in every shard.
    for (uint32_t kernel = 0; kernel < shard.pcDense_.size(); ++kernel) {
        auto &src_slots = shard.pcDense_[kernel];
        if (kernel >= base_.pcDense_.size())
            base_.pcDense_.resize(kernel + 1);
        auto &dst_slots = base_.pcDense_[kernel];
        if (src_slots.size() > dst_slots.size())
            dst_slots.resize(src_slots.size());
        for (uint32_t pc = 0; pc < src_slots.size(); ++pc) {
            const PcSlot &src = src_slots[pc];
            if (!src.used)
                continue;
            PcSlot &dst = dst_slots[pc];
            dst.used = true;
            dst.nonDet = src.nonDet;
            for (uint32_t n = 0; n <= WarpMemOp::kMaxRequests; ++n)
                if (src.byReqs[n].cnt != 0)
                    dst.byReqs[n].add(src.byReqs[n]);
        }
    }
    shard.pcDense_.clear();

    for (const auto &[key, src] : shard.pcAggs_) {
        PcAgg &dst = base_.pcAggs_[key];
        dst.nonDet = src.nonDet;
        for (const auto &[nreq, bucket] : src.byReqs)
            dst.byReqs[nreq].add(bucket);
    }
    shard.pcAggs_.clear();

    for (BlockSlot &slot : shard.blockTable_) {
        if (slot.info.accesses == 0)
            continue;
        BlockInfo &dst = base_.blockFor(slot.lineAddr);
        dst.accesses += slot.info.accesses;
        for (uint32_t cta : slot.info.ctas)
            insertCta(dst.ctas, cta);
        for (uint32_t cta : slot.info.ctasDet)
            insertCta(dst.ctasDet, cta);
        for (uint32_t cta : slot.info.ctasNondet)
            insertCta(dst.ctasNondet, cta);
    }
    shard.blockTable_.clear();
    shard.blockCount_ = 0;
}

void
SimStats::distanceHistogram(const std::vector<uint32_t> &ctas,
                            Histogram &hist)
{
    for (size_t i = 0; i < ctas.size(); ++i)
        for (size_t j = i + 1; j < ctas.size(); ++j)
            hist.add(static_cast<int64_t>(ctas[j]) - ctas[i], 1.0);
}

SimStats::PcHists
SimStats::pcHists(uint32_t kernel, uint32_t pc_idx, bool non_det)
{
    const std::string prefix = "pc." + kernelNames_[kernel] + "#" +
                               std::to_string(pc_idx) + ".";
    set_.set(prefix + "nondet", non_det ? 1.0 : 0.0);
    return {&set_.hist(prefix + "turn_cnt"), &set_.hist(prefix + "turn_sum"),
            &set_.hist(prefix + "gap_l1d"),
            &set_.hist(prefix + "gap_icnt_l2"),
            &set_.hist(prefix + "gap_l2icnt")};
}

void
SimStats::addPcBucket(const PcHists &hists, uint32_t nreq,
                      const PcBucket &bucket)
{
    hists.cnt->add(nreq, static_cast<double>(bucket.cnt));
    hists.turn->add(nreq, bucket.turn);
    hists.gapL1d->add(nreq, bucket.gapL1d);
    hists.gapIcntL2->add(nreq, bucket.gapIcntL2);
    hists.gapL2Icnt->add(nreq, bucket.gapL2Icnt);
}

void
SimStats::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    // Fold every unit shard into the base in unit-creation order (SMs,
    // then partitions — see Gpu's constructor). Each merge is a
    // commutative keyed fold, so the result is thread-count independent.
    for (Shard &shard : shards_)
        mergeShard(shard);

    // --- Hot counters ---
    set_.inc("warp_insts", static_cast<double>(hot.warpInsts));
    set_.inc("thread_insts", static_cast<double>(hot.threadInsts));
    set_.inc("sm_cycles", static_cast<double>(hot.smCycles));
    set_.inc("busy.sp", static_cast<double>(hot.busySp));
    set_.inc("busy.sfu", static_cast<double>(hot.busySfu));
    set_.inc("busy.ldst", static_cast<double>(hot.busyLdst));
    set_.inc("part.stall_cycles", static_cast<double>(hot.partStalls));
    set_.inc("reqs.issued", static_cast<double>(hot.reqsIssued));
    set_.inc("reqs.completed", static_cast<double>(hot.reqsCompleted));
    set_.inc("sload.warps", static_cast<double>(hot.sloadWarps));
    set_.inc("sstore.warps", static_cast<double>(hot.sstoreWarps));
    set_.inc("gstore.warps", static_cast<double>(hot.gstoreWarps));
    set_.inc("atom.warps", static_cast<double>(hot.atomWarps));
    set_.inc("l2.atomics", static_cast<double>(hot.l2Atomics));
    // Key exists only when nonzero, matching the old on-event increment.
    if (hot.l2WriteAbsorbed != 0)
        set_.inc("l2.write_absorbed",
                 static_cast<double>(hot.l2WriteAbsorbed));

    static const char *outcome_names[6] = {
        "hit", "hit_reserved", "miss", "fail_tag", "fail_mshr", "fail_icnt",
    };
    for (int o = 0; o < 6; ++o)
        set_.inc(std::string("l1.outcome.") + outcome_names[o],
                 static_cast<double>(hot.l1Outcome[o]));

    for (int nd = 0; nd < 2; ++nd) {
        const char *sfx = nd ? ".nondet" : ".det";
        set_.inc(std::string("l1.access") + sfx,
                 static_cast<double>(hot.l1Access[nd]));
        set_.inc(std::string("l1.miss") + sfx,
                 static_cast<double>(hot.l1Miss[nd]));
        set_.inc(std::string("l2.access") + sfx,
                 static_cast<double>(hot.l2Access[nd]));
        set_.inc(std::string("l2.miss") + sfx,
                 static_cast<double>(hot.l2Miss[nd]));

        const ClassAgg &agg = base_.cls_[nd];
        set_.inc(std::string("gload.warps") + sfx,
                 static_cast<double>(agg.warps));
        set_.inc(std::string("gload.reqs") + sfx,
                 static_cast<double>(agg.reqs));
        set_.inc(std::string("gload.active") + sfx,
                 static_cast<double>(agg.active));
        set_.inc(std::string("turn.cnt") + sfx,
                 static_cast<double>(agg.warps));
        set_.inc(std::string("turn.sum") + sfx, agg.turnSum);
        set_.inc(std::string("turn.unloaded") + sfx, agg.unloaded);
        set_.inc(std::string("turn.rsrv_prev") + sfx, agg.rsrvPrev);
        set_.inc(std::string("turn.rsrv_cur") + sfx, agg.rsrvCur);
        set_.inc(std::string("turn.mem") + sfx, agg.mem);
    }

    for (size_t p = 0; p < l2Queries_.size(); ++p) {
        set_.inc("l2.queries.p" + std::to_string(p),
                 static_cast<double>(l2Queries_[p]));
        set_.inc("l2.hits.p" + std::to_string(p),
                 static_cast<double>(l2Hits_[p]));
    }

    // --- Per-pc aggregates (Figs 6 and 7) ---
    for (uint32_t kernel = 0; kernel < base_.pcDense_.size(); ++kernel) {
        const auto &slots = base_.pcDense_[kernel];
        for (uint32_t pc_idx = 0; pc_idx < slots.size(); ++pc_idx) {
            const PcSlot &slot = slots[pc_idx];
            if (!slot.used)
                continue;
            const PcHists hists = pcHists(kernel, pc_idx, slot.nonDet);
            for (uint32_t nreq = 0; nreq <= WarpMemOp::kMaxRequests; ++nreq)
                if (slot.byReqs[nreq].cnt != 0)
                    addPcBucket(hists, nreq, slot.byReqs[nreq]);
        }
    }
    base_.pcDense_.clear();
    for (const auto &[key, pc] : base_.pcAggs_) {
        const auto kernel = static_cast<uint32_t>(key >> 32);
        const auto pc_idx = static_cast<uint32_t>(key);
        const PcHists hists = pcHists(kernel, pc_idx, pc.nonDet);
        for (const auto &[nreq, bucket] : pc.byReqs)
            addPcBucket(hists, nreq, bucket);
    }
    base_.pcAggs_.clear();

    // --- Inter-CTA locality (Figs 10, 11, 12) ---
    Histogram &dist = set_.hist("cta_distance");
    Histogram &dist_det = set_.hist("cta_distance.det");
    Histogram &dist_nondet = set_.hist("cta_distance.nondet");
    Histogram &reuse = set_.hist("block_reuse");

    for (BlockSlot &slot : base_.blockTable_) {
        BlockInfo &block = slot.info;
        if (block.accesses == 0)
            continue;
        // The CTA lists accumulate unsorted; the distance histograms need
        // ascending order (distances are ctas[j] - ctas[i] over i < j).
        std::sort(block.ctas.begin(), block.ctas.end());
        std::sort(block.ctasDet.begin(), block.ctasDet.end());
        std::sort(block.ctasNondet.begin(), block.ctasNondet.end());
        set_.inc("blocks.count");
        set_.inc("blocks.accesses", static_cast<double>(block.accesses));
        reuse.add(static_cast<int64_t>(block.accesses), 1.0);
        if (block.ctas.size() >= 2) {
            set_.inc("blocks.shared");
            set_.inc("blocks.shared_accesses",
                     static_cast<double>(block.accesses));
            set_.inc("blocks.shared_cta_sum",
                     static_cast<double>(block.ctas.size()));
            distanceHistogram(block.ctas, dist);
        }
        if (block.ctasDet.size() >= 2)
            distanceHistogram(block.ctasDet, dist_det);
        if (block.ctasNondet.size() >= 2)
            distanceHistogram(block.ctasNondet, dist_nondet);
    }
    base_.blockTable_.clear();
    base_.blockCount_ = 0;
}

} // namespace gcl::sim
