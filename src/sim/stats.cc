#include "stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gcl::sim
{

SimStats::SimStats(const GpuConfig &config)
    : config_(config),
      l2Queries_(config.numPartitions, 0),
      l2Hits_(config.numPartitions, 0)
{
}

void
SimStats::insertCta(std::vector<uint32_t> &ctas, uint32_t cta)
{
    auto it = std::lower_bound(ctas.begin(), ctas.end(), cta);
    if (it == ctas.end() || *it != cta)
        ctas.insert(it, cta);
}

void
SimStats::l1Access(bool non_det, bool miss, uint64_t line_addr, uint32_t cta)
{
    ++hot.l1Access[non_det];
    if (miss)
        ++hot.l1Miss[non_det];

    BlockInfo &block = blocks_[line_addr];
    ++block.accesses;
    insertCta(block.ctas, cta);
    insertCta(non_det ? block.ctasNondet : block.ctasDet, cta);
}

uint32_t
SimStats::kernelId(const std::string &name)
{
    auto it = kernelIds_.find(name);
    if (it != kernelIds_.end())
        return it->second;
    const auto id = static_cast<uint32_t>(kernelNames_.size());
    kernelNames_.push_back(name);
    kernelIds_.emplace(name, id);
    return id;
}

void
SimStats::gloadDone(const WarpMemOp &op, uint32_t kernel_id)
{
    const bool nd = op.nonDet;
    const auto nreq = static_cast<uint32_t>(op.requests.size());

    // Fig 2 aggregates.
    ClassAgg &agg = cls_[nd];
    ++agg.warps;
    agg.reqs += nreq;
    agg.active += op.activeThreads;

    // Fig 5: decomposition of the turnaround time.
    const double turnaround = static_cast<double>(op.tDone - op.tIssue);
    const double rsrv_prev =
        static_cast<double>(op.tFirstAccept - op.tIssue);
    const double rsrv_cur =
        static_cast<double>(op.tLastAccept - op.tFirstAccept);
    double unloaded = 0.0;
    switch (op.deepest) {
      case ServiceLevel::L1:
        unloaded = config_.l1HitLatency;
        break;
      case ServiceLevel::L2:
        unloaded = config_.unloadedL2Latency();
        break;
      case ServiceLevel::Dram:
        unloaded = config_.unloadedDramLatency();
        break;
    }
    const double wasted_mem =
        std::max(0.0, turnaround - unloaded - rsrv_prev - rsrv_cur);

    agg.turnSum += turnaround;
    agg.unloaded += unloaded;
    agg.rsrvPrev += rsrv_prev;
    agg.rsrvCur += rsrv_cur;
    agg.mem += wasted_mem;

    // Figs 6 and 7: per-pc breakdown keyed by the request count.
    const uint64_t key = (uint64_t{kernel_id} << 32) | op.pc;
    PcAgg &pc = pcAggs_[key];
    pc.nonDet = nd;
    PcBucket &bucket = pc.byReqs[nreq];
    ++bucket.cnt;
    bucket.turn += turnaround;
    bucket.gapL1d += rsrv_cur;

    // Gap at icnt-L2: extra queueing between L1 acceptance and the start of
    // L2 service, averaged over the op's missed requests.
    double gap_icnt_l2 = 0.0;
    unsigned missed = 0;
    for (const auto &req : op.requests) {
        if (req->level == ServiceLevel::L1)
            continue;
        const double nominal = config_.icntLatency + config_.ropLatency;
        const double actual =
            static_cast<double>(req->tArriveL2) -
            static_cast<double>(req->tAccepted);
        gap_icnt_l2 += std::max(0.0, actual - nominal);
        ++missed;
    }
    if (missed)
        gap_icnt_l2 /= missed;
    bucket.gapIcntL2 += gap_icnt_l2;

    // Gap at L2-icnt: spread between the first and the last returned data.
    bucket.gapL2Icnt +=
        op.tFirstData ? static_cast<double>(op.tDone - op.tFirstData) : 0.0;
}

void
SimStats::distanceHistogram(const std::vector<uint32_t> &ctas,
                            Histogram &hist)
{
    for (size_t i = 0; i < ctas.size(); ++i)
        for (size_t j = i + 1; j < ctas.size(); ++j)
            hist.add(static_cast<int64_t>(ctas[j]) - ctas[i], 1.0);
}

void
SimStats::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    // --- Hot counters ---
    set_.inc("warp_insts", static_cast<double>(hot.warpInsts));
    set_.inc("thread_insts", static_cast<double>(hot.threadInsts));
    set_.inc("sm_cycles", static_cast<double>(hot.smCycles));
    set_.inc("busy.sp", static_cast<double>(hot.busySp));
    set_.inc("busy.sfu", static_cast<double>(hot.busySfu));
    set_.inc("busy.ldst", static_cast<double>(hot.busyLdst));
    set_.inc("part.stall_cycles", static_cast<double>(hot.partStalls));
    set_.inc("reqs.issued", static_cast<double>(hot.reqsIssued));
    set_.inc("reqs.completed", static_cast<double>(hot.reqsCompleted));
    set_.inc("sload.warps", static_cast<double>(hot.sloadWarps));
    set_.inc("sstore.warps", static_cast<double>(hot.sstoreWarps));
    set_.inc("gstore.warps", static_cast<double>(hot.gstoreWarps));
    set_.inc("atom.warps", static_cast<double>(hot.atomWarps));
    set_.inc("l2.atomics", static_cast<double>(hot.l2Atomics));

    static const char *outcome_names[6] = {
        "hit", "hit_reserved", "miss", "fail_tag", "fail_mshr", "fail_icnt",
    };
    for (int o = 0; o < 6; ++o)
        set_.inc(std::string("l1.outcome.") + outcome_names[o],
                 static_cast<double>(hot.l1Outcome[o]));

    for (int nd = 0; nd < 2; ++nd) {
        const char *sfx = nd ? ".nondet" : ".det";
        set_.inc(std::string("l1.access") + sfx,
                 static_cast<double>(hot.l1Access[nd]));
        set_.inc(std::string("l1.miss") + sfx,
                 static_cast<double>(hot.l1Miss[nd]));
        set_.inc(std::string("l2.access") + sfx,
                 static_cast<double>(hot.l2Access[nd]));
        set_.inc(std::string("l2.miss") + sfx,
                 static_cast<double>(hot.l2Miss[nd]));

        const ClassAgg &agg = cls_[nd];
        set_.inc(std::string("gload.warps") + sfx,
                 static_cast<double>(agg.warps));
        set_.inc(std::string("gload.reqs") + sfx,
                 static_cast<double>(agg.reqs));
        set_.inc(std::string("gload.active") + sfx,
                 static_cast<double>(agg.active));
        set_.inc(std::string("turn.cnt") + sfx,
                 static_cast<double>(agg.warps));
        set_.inc(std::string("turn.sum") + sfx, agg.turnSum);
        set_.inc(std::string("turn.unloaded") + sfx, agg.unloaded);
        set_.inc(std::string("turn.rsrv_prev") + sfx, agg.rsrvPrev);
        set_.inc(std::string("turn.rsrv_cur") + sfx, agg.rsrvCur);
        set_.inc(std::string("turn.mem") + sfx, agg.mem);
    }

    for (size_t p = 0; p < l2Queries_.size(); ++p) {
        set_.inc("l2.queries.p" + std::to_string(p),
                 static_cast<double>(l2Queries_[p]));
        set_.inc("l2.hits.p" + std::to_string(p),
                 static_cast<double>(l2Hits_[p]));
    }

    // --- Per-pc aggregates (Figs 6 and 7) ---
    for (const auto &[key, pc] : pcAggs_) {
        const uint32_t kernel = static_cast<uint32_t>(key >> 32);
        const auto pc_idx = static_cast<uint32_t>(key);
        const std::string prefix = "pc." + kernelNames_[kernel] + "#" +
                                   std::to_string(pc_idx) + ".";
        set_.set(prefix + "nondet", pc.nonDet ? 1.0 : 0.0);
        Histogram &cnt = set_.hist(prefix + "turn_cnt");
        Histogram &turn = set_.hist(prefix + "turn_sum");
        Histogram &g1 = set_.hist(prefix + "gap_l1d");
        Histogram &g2 = set_.hist(prefix + "gap_icnt_l2");
        Histogram &g3 = set_.hist(prefix + "gap_l2icnt");
        for (const auto &[nreq, bucket] : pc.byReqs) {
            cnt.add(nreq, static_cast<double>(bucket.cnt));
            turn.add(nreq, bucket.turn);
            g1.add(nreq, bucket.gapL1d);
            g2.add(nreq, bucket.gapIcntL2);
            g3.add(nreq, bucket.gapL2Icnt);
        }
    }
    pcAggs_.clear();

    // --- Inter-CTA locality (Figs 10, 11, 12) ---
    Histogram &dist = set_.hist("cta_distance");
    Histogram &dist_det = set_.hist("cta_distance.det");
    Histogram &dist_nondet = set_.hist("cta_distance.nondet");
    Histogram &reuse = set_.hist("block_reuse");

    for (const auto &[addr, block] : blocks_) {
        (void)addr;
        set_.inc("blocks.count");
        set_.inc("blocks.accesses", static_cast<double>(block.accesses));
        reuse.add(static_cast<int64_t>(block.accesses), 1.0);
        if (block.ctas.size() >= 2) {
            set_.inc("blocks.shared");
            set_.inc("blocks.shared_accesses",
                     static_cast<double>(block.accesses));
            set_.inc("blocks.shared_cta_sum",
                     static_cast<double>(block.ctas.size()));
            distanceHistogram(block.ctas, dist);
        }
        if (block.ctasDet.size() >= 2)
            distanceHistogram(block.ctasDet, dist_det);
        if (block.ctasNondet.size() >= 2)
            distanceHistogram(block.ctasNondet, dist_nondet);
    }
    blocks_.clear();
}

} // namespace gcl::sim
