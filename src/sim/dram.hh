/**
 * @file
 * Single-channel GDDR5-like DRAM model: FCFS service with a fixed access
 * latency and a per-burst channel occupancy, behind a bounded queue.
 *
 * The bounded queue gives backpressure into the L2 (modeling DRAM-side
 * congestion), and the serial burst occupancy makes heavily-loaded channels
 * slower — the source of the "imbalanced service time in memory partitions"
 * the paper reports in Figs 5 and 7.
 *
 * Machine descriptions can additionally enable an open-row model
 * (`-dram_row_bytes` > 0): the channel keeps one open row per bank, and a
 * request that hits a different row pays `-dram_act_latency` extra cycles
 * of both occupancy and access latency (precharge + activate). With
 * `dram_row_bytes 0` — the compiled default — the arithmetic is exactly
 * the fixed-latency model above.
 */

#ifndef GCL_SIM_DRAM_HH
#define GCL_SIM_DRAM_HH

#include <deque>
#include <vector>

#include "config.hh"
#include "mem_request.hh"
#include "trace/stage_sink.hh"
#include "trace/trace.hh"

namespace gcl::sim
{

/** One DRAM channel attached to one memory partition. */
class DramChannel
{
  public:
    DramChannel(const GpuConfig &config, MemPools &pools)
        : config_(config), pools_(pools)
    {}

    /** True when the request queue has room. */
    bool canAccept() const { return queue_.size() < config_.dramQueueDepth; }

    /** Enqueue a request; its ready time is computed FCFS at push. */
    void push(ReqHandle req, Cycle now);

    /** True when the head request's data is ready. */
    bool headReady(Cycle now) const;

    /** Pop the head request; only call when headReady(). */
    ReqHandle pop();

    bool empty() const { return queue_.empty(); }
    size_t size() const { return queue_.size(); }

    /** Total requests serviced (bandwidth accounting). */
    uint64_t serviced() const { return serviced_; }

    /** Event sink + owning partition id, installed by the partition. */
    trace::StageSink *traceSink = nullptr;
    int16_t traceUnit = -1;

  private:
    struct Entry
    {
        ReqHandle req = kNullHandle;
        Cycle readyAt = 0;
    };

    const GpuConfig &config_;
    MemPools &pools_;
    std::deque<Entry> queue_;
    Cycle channelFreeAt_ = 0;
    uint64_t serviced_ = 0;

    /**
     * Open row per bank (row-buffer model); ~0 = no row open. Sized
     * lazily on first push so the default dram_row_bytes=0 path never
     * allocates.
     */
    std::vector<uint64_t> openRow_;
};

} // namespace gcl::sim

#endif // GCL_SIM_DRAM_HH
