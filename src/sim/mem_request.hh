/**
 * @file
 * The two units of work in the memory system:
 *
 *  - MemRequest: one coalesced cache-line-sized access flowing through
 *    L1 -> interconnect -> L2 partition -> DRAM and back. Requests carry
 *    full timestamp provenance so the paper's turnaround-time
 *    decompositions (Figs 5-7) fall out of bookkeeping, not sampling.
 *
 *  - WarpMemOp: one warp-level memory instruction, owning the requests the
 *    coalescer produced for it.
 */

#ifndef GCL_SIM_MEM_REQUEST_HH
#define GCL_SIM_MEM_REQUEST_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config.hh"
#include "ptx/types.hh"
#include "trace/trace.hh"

namespace gcl::sim
{

struct WarpMemOp;

/** Deepest memory level that serviced a request. */
enum class ServiceLevel : uint8_t
{
    L1 = 0,
    L2 = 1,
    Dram = 2,
};

/** One coalesced, line-aligned memory access. */
struct MemRequest
{
    uint64_t lineAddr = 0;        //!< line-aligned byte address
    bool isWrite = false;
    bool isAtomic = false;

    /** Trace identity (gcl::trace); 0 when the run is untraced. */
    uint64_t id = 0;
    /**
     * Last reservation-fail outcome emitted to the trace sink for this
     * request (0xff = none). A stalled request retries every cycle;
     * deduping consecutive identical fails keeps trace volume
     * proportional to outcome *changes*, not stall lengths.
     */
    uint8_t traceLastFail = 0xff;

    int smId = -1;
    int partition = -1;           //!< filled in by the address decoder

    /** Stat attribution. */
    bool isGlobalLoad = false;
    bool nonDet = false;

    /** Back-reference to the owning warp op (null for stores). */
    WarpMemOp *op = nullptr;

    ServiceLevel level = ServiceLevel::L1;

    // ---- Timestamp provenance ----
    Cycle tAccepted = 0;      //!< accepted by L1 (hit, merge or miss-sent)
    Cycle tInjected = 0;      //!< entered the SM's icnt injection queue
    Cycle tArriveL2 = 0;      //!< popped by the L2 partition
    Cycle tL2Done = 0;        //!< data ready at the partition
    Cycle tRespDepart = 0;    //!< response left the partition's queue
    Cycle tComplete = 0;      //!< data back at the SM / writeback ready
};

using MemRequestPtr = std::shared_ptr<MemRequest>;

/** One warp-level memory instruction in flight. */
struct WarpMemOp
{
    /** Trace identity (gcl::trace); 0 when the run is untraced. */
    uint64_t id = 0;

    int smId = -1;
    int warpSlot = -1;
    size_t pc = 0;
    ptx::RegId dst = ptx::kNoReg;

    bool isLoad = false;
    bool isStore = false;
    bool isAtomic = false;
    bool isShared = false;        //!< shared-memory access
    bool isGlobalLoad = false;
    bool nonDet = false;          //!< class of the load at this pc
    unsigned activeThreads = 0;

    /** Coalesced requests; issued to L1 in order, one per cycle. */
    std::vector<MemRequestPtr> requests;
    size_t nextToIssue = 0;
    unsigned outstanding = 0;     //!< read requests whose data is pending
    unsigned burstCount = 0;      //!< requests issued since the last rotate
                                  //!< (warp-splitting ablation, Section X.A)

    // ---- Timestamp provenance (Figs 5-7) ----
    Cycle tIssue = 0;             //!< entered the LD/ST first stage
    Cycle tFirstAccept = 0;
    Cycle tLastAccept = 0;
    Cycle tFirstData = 0;
    Cycle tDone = 0;

    /** Deepest level any of its requests reached. */
    ServiceLevel deepest = ServiceLevel::L1;

    bool allIssued() const { return nextToIssue >= requests.size(); }

    bool
    complete() const
    {
        return allIssued() && outstanding == 0;
    }
};

using WarpMemOpPtr = std::shared_ptr<WarpMemOp>;

/** Class/type bits of @p req for trace-event flags. */
inline uint8_t
traceFlags(const MemRequest &req)
{
    uint8_t flags = 0;
    if (req.nonDet)
        flags |= trace::kFlagNonDet;
    if (req.isWrite)
        flags |= trace::kFlagWrite;
    if (req.isAtomic)
        flags |= trace::kFlagAtomic;
    return flags;
}

/** The owning op's pc, or 0 for requests nothing waits on (stores). */
inline uint32_t
tracePc(const MemRequest &req)
{
    return req.op ? static_cast<uint32_t>(req.op->pc) : 0;
}

} // namespace gcl::sim

#endif // GCL_SIM_MEM_REQUEST_HH
