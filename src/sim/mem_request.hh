/**
 * @file
 * The two units of work in the memory system:
 *
 *  - MemRequest: one coalesced cache-line-sized access flowing through
 *    L1 -> interconnect -> L2 partition -> DRAM and back. Requests carry
 *    full timestamp provenance so the paper's turnaround-time
 *    decompositions (Figs 5-7) fall out of bookkeeping, not sampling.
 *
 *  - WarpMemOp: one warp-level memory instruction, owning the requests the
 *    coalescer produced for it.
 *
 * Both live in per-run HandlePools (MemPools) and are referenced by 32-bit
 * handles instead of shared_ptrs: the hot path allocates one of each per
 * unit of work, and pooled handles make that a free-list pop instead of a
 * refcounted malloc. Ownership is single-owner by convention — see
 * DESIGN.md "Hot path" for the full lifecycle:
 *
 *  - data-expecting requests (opHandle != kNullHandle: loads and atomics)
 *    are freed by Sm::completeRequest once accounted;
 *  - store requests (opHandle == kNullHandle) are freed by the partition,
 *    either at L2 write-absorb or when the write drains from DRAM;
 *  - ops are freed by Sm::finishMemOp (or at the early-outs in
 *    startMemOp/ldstCycle for predicated-off and shared-memory ops).
 */

#ifndef GCL_SIM_MEM_REQUEST_HH
#define GCL_SIM_MEM_REQUEST_HH

#include <cstdint>

#include "config.hh"
#include "ptx/types.hh"
#include "trace/trace.hh"
#include "util/pool.hh"

namespace gcl::sim
{

/** Handle into MemPools::reqs / MemPools::ops (kNullHandle = none). */
using ReqHandle = PoolHandle;
using OpHandle = PoolHandle;
using gcl::kNullHandle;

/** Deepest memory level that serviced a request. */
enum class ServiceLevel : uint8_t
{
    L1 = 0,
    L2 = 1,
    Dram = 2,
};

/** One coalesced, line-aligned memory access. */
struct MemRequest
{
    uint64_t lineAddr = 0;        //!< line-aligned byte address
    bool isWrite = false;
    bool isAtomic = false;

    /** Trace identity (gcl::trace); 0 when the run is untraced. */
    uint64_t id = 0;
    /**
     * Last reservation-fail outcome emitted to the trace sink for this
     * request (0xff = none). A stalled request retries every cycle;
     * deduping consecutive identical fails keeps trace volume
     * proportional to outcome *changes*, not stall lengths.
     */
    uint8_t traceLastFail = 0xff;

    int smId = -1;
    int partition = -1;           //!< filled in by the address decoder

    /** Stat attribution. */
    bool isGlobalLoad = false;
    bool nonDet = false;

    /**
     * Owning warp op (kNullHandle for stores — nothing waits on them).
     * Doubles as the "data-expecting" predicate throughout the pipeline.
     */
    OpHandle opHandle = kNullHandle;

    /** The owning op's pc (0 for stores) — trace attribution without an
     *  op dereference, and valid even after the op retires. */
    uint32_t pc = 0;

    /**
     * Intrusive MSHR chains: next request waiting on the same line. A
     * request can be a member of an L1 MSHR chain (its SM) and an L2 MSHR
     * chain (its partition) at the same time — an L1 primary miss travels
     * to the L2 while its L1 secondaries wait behind it — so each level
     * links through its own field (Cache/Mshr take the member to use).
     */
    ReqHandle nextWaiting = kNullHandle;    //!< L1-side chain (default)
    ReqHandle nextWaitingL2 = kNullHandle;  //!< L2-side chain

    ServiceLevel level = ServiceLevel::L1;

    // ---- Timestamp provenance ----
    Cycle tAccepted = 0;      //!< accepted by L1 (hit, merge or miss-sent)
    Cycle tInjected = 0;      //!< entered the SM's icnt injection queue
    Cycle tArriveL2 = 0;      //!< popped by the L2 partition
    Cycle tDramEnq = 0;       //!< read miss entered the DRAM queue (0 =
                              //!< never went to DRAM or L2-MSHR-merged)
    Cycle tL2Done = 0;        //!< data ready at the partition
    Cycle tRespDepart = 0;    //!< response left the partition's queue
    Cycle tComplete = 0;      //!< data back at the SM / writeback ready
};

/** One warp-level memory instruction in flight. */
struct WarpMemOp
{
    /**
     * Most lines a single warp op can touch: warpSize lanes, each of
     * which may straddle one line boundary when misaligned.
     */
    static constexpr unsigned kMaxRequests = 64;

    /** Trace identity (gcl::trace); 0 when the run is untraced. */
    uint64_t id = 0;

    int smId = -1;
    int warpSlot = -1;
    size_t pc = 0;
    ptx::RegId dst = ptx::kNoReg;

    bool isLoad = false;
    bool isStore = false;
    bool isAtomic = false;
    bool isShared = false;        //!< shared-memory access
    bool isGlobalLoad = false;
    bool nonDet = false;          //!< class of the load at this pc
    unsigned activeThreads = 0;

    /** Coalesced requests; issued to L1 in order, one per cycle. */
    ReqHandle requests[kMaxRequests] = {};
    uint32_t numRequests = 0;
    uint32_t nextToIssue = 0;
    unsigned outstanding = 0;     //!< read requests whose data is pending
    unsigned burstCount = 0;      //!< requests issued since the last rotate
                                  //!< (warp-splitting ablation, Section X.A)

    /**
     * Fig 7 "gap at icnt-L2", accumulated incrementally as each missed
     * request completes (so requests can be freed before the op retires).
     * Integer-valued cycle deltas sum exactly in doubles, so the total is
     * identical to the retired-op-time computation it replaces.
     */
    double gapIcntL2Sum = 0.0;
    uint32_t missedReqs = 0;      //!< requests serviced past the L1

    // ---- Timestamp provenance (Figs 5-7) ----
    Cycle tIssue = 0;             //!< entered the LD/ST first stage
    Cycle tFirstAccept = 0;
    Cycle tLastAccept = 0;
    Cycle tFirstData = 0;
    Cycle tDone = 0;

    /** Deepest level any of its requests reached. */
    ServiceLevel deepest = ServiceLevel::L1;

    bool allIssued() const { return nextToIssue >= numRequests; }

    bool
    complete() const
    {
        return allIssued() && outstanding == 0;
    }
};

/** The per-run pools every memory-system unit allocates from. */
struct MemPools
{
    HandlePool<MemRequest> reqs{"memreq"};
    HandlePool<WarpMemOp> ops{"warpop"};
};

/** Class/type bits of @p req for trace-event flags. */
inline uint8_t
traceFlags(const MemRequest &req)
{
    uint8_t flags = 0;
    if (req.nonDet)
        flags |= trace::kFlagNonDet;
    if (req.isWrite)
        flags |= trace::kFlagWrite;
    if (req.isAtomic)
        flags |= trace::kFlagAtomic;
    return flags;
}

/** The owning op's pc, or 0 for requests nothing waits on (stores). */
inline uint32_t
tracePc(const MemRequest &req)
{
    return req.pc;
}

} // namespace gcl::sim

#endif // GCL_SIM_MEM_REQUEST_HH
