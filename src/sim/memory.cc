#include "memory.hh"

#include "util/bitutil.hh"
#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

uint8_t *
GlobalMemory::pageFor(uint64_t addr)
{
    auto &page = pages_[addr >> kPageBits];
    if (!page) {
        page = std::make_unique<uint8_t[]>(kPageSize);
        std::memset(page.get(), 0, kPageSize);
    }
    return page.get();
}

const uint8_t *
GlobalMemory::pageForRead(uint64_t addr) const
{
    auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
}

uint64_t
GlobalMemory::read(uint64_t addr, unsigned size) const
{
    gcl_sim_check(size == 1 || size == 2 || size == 4 || size == 8,
                  "gmem", 0, "bad access size ", size);
    // Accesses from the IR are naturally aligned, so they never straddle a
    // page; readBlock handles arbitrary spans.
    if ((addr & (size - 1)) != 0)
        gcl_sim_error(SimError::Kind::Workload, "gmem", 0,
                      "misaligned read of ", size, " bytes at ", addr);
    const uint8_t *page = pageForRead(addr);
    if (!page)
        return 0;  // untouched memory reads as zero
    uint64_t value = 0;
    std::memcpy(&value, page + (addr & (kPageSize - 1)), size);
    return value;
}

void
GlobalMemory::write(uint64_t addr, uint64_t value, unsigned size)
{
    gcl_sim_check(size == 1 || size == 2 || size == 4 || size == 8,
                  "gmem", 0, "bad access size ", size);
    if ((addr & (size - 1)) != 0)
        gcl_sim_error(SimError::Kind::Workload, "gmem", 0,
                      "misaligned write of ", size, " bytes at ", addr);
    uint8_t *page = pageFor(addr);
    std::memcpy(page + (addr & (kPageSize - 1)), &value, size);
}

void
GlobalMemory::readBlock(uint64_t addr, void *dst, size_t size) const
{
    auto *out = static_cast<uint8_t *>(dst);
    while (size > 0) {
        const uint64_t in_page = kPageSize - (addr & (kPageSize - 1));
        const size_t chunk = std::min<size_t>(size, in_page);
        const uint8_t *page = pageForRead(addr);
        if (page)
            std::memcpy(out, page + (addr & (kPageSize - 1)), chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
GlobalMemory::writeBlock(uint64_t addr, const void *src, size_t size)
{
    const auto *in = static_cast<const uint8_t *>(src);
    while (size > 0) {
        const uint64_t in_page = kPageSize - (addr & (kPageSize - 1));
        const size_t chunk = std::min<size_t>(size, in_page);
        uint8_t *page = pageFor(addr);
        std::memcpy(page + (addr & (kPageSize - 1)), in, chunk);
        addr += chunk;
        in += chunk;
        size -= chunk;
    }
}

uint64_t
GlobalMemory::allocate(size_t size)
{
    if (size == 0)
        gcl_sim_error(SimError::Kind::Workload, "gmem", 0,
                      "zero-sized device allocation");
    const uint64_t addr = allocTop_;
    allocTop_ = roundUp(allocTop_ + size, 256);
    return addr;
}

uint64_t
SharedMemory::read(uint64_t addr, unsigned size) const
{
    if (addr + size > data_.size())
        gcl_sim_error(SimError::Kind::Workload, "smem", 0,
                      "shared-memory read out of bounds: ", addr, "+", size,
                      " > ", data_.size());
    uint64_t value = 0;
    std::memcpy(&value, data_.data() + addr, size);
    return value;
}

void
SharedMemory::write(uint64_t addr, uint64_t value, unsigned size)
{
    if (addr + size > data_.size())
        gcl_sim_error(SimError::Kind::Workload, "smem", 0,
                      "shared-memory write out of bounds: ", addr, "+",
                      size, " > ", data_.size());
    std::memcpy(data_.data() + addr, &value, size);
}

} // namespace gcl::sim
