/**
 * @file
 * Streaming multiprocessor: warp schedulers, scoreboard, SP/SFU/LDST
 * function units, the coalescer and the private L1 data cache.
 *
 * The per-cycle pipeline is (Section III):
 *   1. writeback  — completed instructions release the scoreboard
 *   2. issue      — each scheduler picks one ready warp; the instruction
 *                   executes functionally at issue (DESIGN.md decision 1)
 *   3. LD/ST      — the front warp memory op injects one coalesced request
 *                   per cycle into the L1; reservation failures burn the
 *                   cycle and retry (Fig 3)
 *   4. unit accounting for Fig 4 (first-pipeline-stage occupancy)
 *
 * Memory ops and requests live in the run's MemPools and are referenced
 * by handle; the SM owns the op lifecycle (see mem_request.hh).
 */

#ifndef GCL_SIM_SM_HH
#define GCL_SIM_SM_HH

#include <deque>
#include <queue>
#include <vector>

#include "cache.hh"
#include "config.hh"
#include "crit/crit.hh"
#include "delay_queue.hh"
#include "functional.hh"
#include "guard/fault.hh"
#include "guard/watchdog.hh"
#include "interconnect.hh"
#include "mem_request.hh"
#include "stats.hh"
#include "warp.hh"

namespace gcl::sim
{

/** Maps a line address to its memory partition (set up by the Gpu). */
using PartitionMap = int (*)(uint64_t line_addr, int sm_id,
                             const GpuConfig &config);

/** One streaming multiprocessor. */
class Sm
{
  public:
    Sm(int id, const GpuConfig &config, GlobalMemory &gmem, SimStats &stats,
       MemPools &pools);

    int id() const { return id_; }

    /** Bind to a new kernel launch; all CTA slots must be free. */
    void startLaunch(const LaunchContext &launch);

    /** True when another CTA fits right now. */
    bool canTakeCta() const;

    /** Place the CTA with the given coordinates onto this SM. */
    void launchCta(uint32_t linear_id, uint32_t cx, uint32_t cy, uint32_t cz);

    /** Any resident CTA or in-flight work. */
    bool busy() const;

    /** Advance one cycle. */
    void cycle(Cycle now, Interconnect &icnt);

    /**
     * Tick the Fig 4 denominator for an idle cycle (the Gpu skips the
     * pipeline walk but the cycle still counts, in this SM's shard).
     * With the crit profiler on, the cycle's issue slots are all lost to
     * IdleNoCta so the accounting identity keeps holding on skipped SMs.
     */
    void
    idleCycle()
    {
        ++stats_.hot.smCycles;
        if (crit)
            crit->idleCycle(config_.numSchedulers);
    }

    /** A memory response arrived from the interconnect. */
    void receiveResponse(ReqHandle req, Cycle now);

    /** Pop and process every response deliverable to this SM this cycle. */
    void drainResponses(Cycle now, Interconnect &icnt);

    /**
     * Defer this SM's global stores/atomics to commitStagedWrites() (the
     * deterministic-tick write protocol; see functional.hh). The Gpu
     * enables this on every SM it owns, at every thread count, so results
     * are identical whatever sim_threads is.
     */
    void enableWriteStaging() { executor_.setStaging(&stagedWrites_); }

    /** Apply this cycle's staged writes; called by the Gpu in SM-id order. */
    void commitStagedWrites() { executor_.commitStaged(stagedWrites_); }

    unsigned numResidentCtas() const { return residentCtas_; }

    const Cache &l1() const { return l1_; }

    // ---- Timeline sampling (gcl::trace) ----
    unsigned activeWarps() const;
    size_t ldstQueued() const { return ldstQ_.size() + pendingOps_.size(); }

    /** Snapshot for a watchdog HangReport (gcl::guard). */
    guard::SmHangInfo hangInfo() const;

  private:
    // --- Issue stage ---
    void issueCycle(Cycle now);
    bool warpReady(const WarpContext &warp, Cycle now) const;
    int pickWarp(unsigned scheduler, Cycle now);
    void issueWarp(int slot, Cycle now);
    /** Attribute @p scheduler's lost issue slot (crit profiler only). */
    void critCharge(unsigned scheduler, Cycle now);

    // --- LD/ST unit ---
    void ldstCycle(Cycle now, Interconnect &icnt);
    void startMemOp(int slot, size_t pc, const ptx::Instruction &inst,
                    const StepInfo &info, Cycle now);
    void completeRequest(ReqHandle req, Cycle now);
    void finishMemOp(OpHandle op, Cycle now);

    // --- Writeback ---
    void writebackCycle(Cycle now);
    void scheduleWriteback(Cycle when, int slot, ptx::RegId reg);

    // --- CTA / warp lifecycle ---
    void warpExited(int slot);

    int id_;
    const GpuConfig &config_;
    SimStats &simStats_;        //!< root object (kernel interning only)
    SimStats::Shard &stats_;    //!< this SM's private counter shard
    MemPools &pools_;
    WarpExecutor executor_;
    Cache l1_;

    /** This cycle's deferred global stores/atomics (enableWriteStaging). */
    std::vector<PendingAccess> stagedWrites_;

    const LaunchContext *launch_ = nullptr;
    uint32_t kernelId_ = 0;   //!< interned kernel name for stat attribution
    unsigned warpsPerCta_ = 0;
    unsigned maxResidentCtas_ = 0;
    unsigned residentCtas_ = 0;

    std::vector<CtaContext> ctas_;
    std::vector<WarpContext> warps_;
    std::vector<uint64_t> warpAge_;   //!< issue-order age for GTO
    uint64_t ageCounter_ = 0;
    std::vector<unsigned> rrNext_;    //!< per-scheduler LRR pointer
    int lastIssued_ = -1;             //!< for GTO greediness
    /**
     * False when the last issue scan found nothing and no wake event
     * (writeback, barrier release, LD/ST drain, CTA arrival, issue) has
     * happened since — the scan can be skipped.
     */
    bool issueDirty_ = true;

    /** Warp memory ops; front occupies the LD/ST first stage. */
    std::deque<OpHandle> ldstQ_;
    /** Ops that left the stage but still await data. */
    std::vector<OpHandle> pendingOps_;
    /** L1 hits returning after the hit latency. */
    DelayQueue<ReqHandle> hitReturnQ_;

    struct Writeback
    {
        Cycle time;
        int slot;
        ptx::RegId reg;

        bool
        operator>(const Writeback &other) const
        {
            return time > other.time;
        }
    };
    std::priority_queue<Writeback, std::vector<Writeback>,
                        std::greater<Writeback>> wbHeap_;

    /** First-pipeline-stage busy-until markers (Fig 4). */
    Cycle spStageFreeAt_ = 0;
    Cycle sfuStageFreeAt_ = 0;

    /**
     * Last L1 access outcome seen by the LD/ST head (crit profiler only;
     * 0xff = none). Issue runs before LD/ST within a cycle, so at charge
     * time this holds the PREVIOUS cycle's outcome — exactly the
     * resource fail that kept the queue full into this cycle.
     */
    uint8_t critLastL1Outcome_ = 0xff;

  public:
    /** Partition mapping hook installed by the Gpu. */
    PartitionMap partitionMap = nullptr;

    /**
     * Per-SM staging sink (gcl::trace), installed by the Gpu; null when
     * untraced. Passthrough at sim_threads == 1, buffered otherwise.
     */
    trace::StageSink *traceSink = nullptr;

    /** Fault oracle (gcl::guard), installed by the Gpu; null = no faults. */
    guard::FaultInjector *fault = nullptr;

    /**
     * This SM's crit shard (gcl::crit), installed by the Gpu; null when
     * the profiler is off — every hook hides behind this check, the same
     * near-zero-disabled-cost idiom as traceSink.
     */
    crit::SmCrit *crit = nullptr;
};

} // namespace gcl::sim

#endif // GCL_SIM_SM_HH
