#include "functional.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

using ptx::CmpOp;
using ptx::DataType;
using ptx::Instruction;
using ptx::MemSpace;
using ptx::Opcode;
using ptx::Operand;
using ptx::SpecialReg;

namespace
{

float
bitsToF32(uint64_t bits)
{
    float f;
    const uint32_t b32 = static_cast<uint32_t>(bits);
    std::memcpy(&f, &b32, sizeof(f));
    return f;
}

uint64_t
f32ToBits(float f)
{
    uint32_t b32;
    std::memcpy(&b32, &f, sizeof(b32));
    return b32;
}

double
bitsToF64(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

uint64_t
f64ToBits(double d)
{
    uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

/** Sign-extend the low 32 bits. */
uint64_t
sext32(uint64_t v)
{
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(v)));
}

uint64_t
zext32(uint64_t v)
{
    return v & 0xffffffffull;
}

} // namespace

uint64_t
WarpExecutor::specialValue(const LaunchContext &launch, const CtaContext &cta,
                           const WarpContext &warp, unsigned lane,
                           SpecialReg sreg) const
{
    // Decompose the lane's linear in-CTA thread id into tid.{x,y,z}.
    const uint32_t linear = warp.threadBase + lane;
    const Dim3 &cdim = launch.cta;
    switch (sreg) {
      case SpecialReg::TidX: return linear % cdim.x;
      case SpecialReg::TidY: return (linear / cdim.x) % cdim.y;
      case SpecialReg::TidZ: return linear / (cdim.x * cdim.y);
      case SpecialReg::NTidX: return cdim.x;
      case SpecialReg::NTidY: return cdim.y;
      case SpecialReg::NTidZ: return cdim.z;
      case SpecialReg::CtaIdX: return cta.ctaX;
      case SpecialReg::CtaIdY: return cta.ctaY;
      case SpecialReg::CtaIdZ: return cta.ctaZ;
      case SpecialReg::NCtaIdX: return launch.grid.x;
      case SpecialReg::NCtaIdY: return launch.grid.y;
      case SpecialReg::NCtaIdZ: return launch.grid.z;
      case SpecialReg::LaneId: return lane;
      case SpecialReg::WarpId: return warp.warpInCta;
    }
    return 0;
}

LaneMask
WarpExecutor::guardMask(const Instruction &inst, const WarpContext &warp,
                        LaneMask active) const
{
    if (!inst.guarded)
        return active;
    LaneMask out = 0;
    const uint64_t *pred =
        &warp.regs[static_cast<size_t>(inst.predReg) * warpSize_];
    for (unsigned lane = 0; lane < warpSize_; ++lane) {
        if (!((active >> lane) & 1))
            continue;
        if ((pred[lane] != 0) != inst.predNeg)
            out |= LaneMask{1} << lane;
    }
    return out;
}

bool
WarpExecutor::compare(CmpOp cmp, DataType type, uint64_t a, uint64_t b)
{
    auto apply = [&cmp](auto x, auto y) {
        switch (cmp) {
          case CmpOp::Eq: return x == y;
          case CmpOp::Ne: return x != y;
          case CmpOp::Lt: return x < y;
          case CmpOp::Le: return x <= y;
          case CmpOp::Gt: return x > y;
          case CmpOp::Ge: return x >= y;
        }
        return false;
    };

    switch (type) {
      case DataType::U32:
      case DataType::Pred:
        return apply(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
      case DataType::S32:
        return apply(static_cast<int32_t>(a), static_cast<int32_t>(b));
      case DataType::U64:
        return apply(a, b);
      case DataType::S64:
        return apply(static_cast<int64_t>(a), static_cast<int64_t>(b));
      case DataType::F32:
        return apply(bitsToF32(a), bitsToF32(b));
      case DataType::F64:
        return apply(bitsToF64(a), bitsToF64(b));
    }
    return false;
}

uint64_t
WarpExecutor::convert(DataType to, DataType from, uint64_t bits)
{
    // Normalize the source into a signed/unsigned/double value first.
    double fval = 0.0;
    int64_t sval = 0;
    uint64_t uval = 0;
    bool is_float = false;
    switch (from) {
      case DataType::U32:
      case DataType::Pred:
        uval = zext32(bits);
        sval = static_cast<int64_t>(uval);
        break;
      case DataType::S32:
        sval = static_cast<int32_t>(bits);
        uval = static_cast<uint64_t>(sval);
        break;
      case DataType::U64:
        uval = bits;
        sval = static_cast<int64_t>(bits);
        break;
      case DataType::S64:
        sval = static_cast<int64_t>(bits);
        uval = bits;
        break;
      case DataType::F32:
        fval = bitsToF32(bits);
        is_float = true;
        break;
      case DataType::F64:
        fval = bitsToF64(bits);
        is_float = true;
        break;
    }
    if (!is_float)
        fval = ptx::isSigned(from) ? static_cast<double>(sval)
                                   : static_cast<double>(uval);

    switch (to) {
      case DataType::U32:
      case DataType::Pred:
        return is_float ? zext32(static_cast<uint64_t>(
                              static_cast<int64_t>(fval)))
                        : zext32(uval);
      case DataType::S32:
        return is_float ? sext32(static_cast<uint64_t>(
                              static_cast<int64_t>(fval)))
                        : sext32(static_cast<uint64_t>(sval));
      case DataType::U64:
        return is_float ? static_cast<uint64_t>(static_cast<int64_t>(fval))
                        : uval;
      case DataType::S64:
        return is_float ? static_cast<uint64_t>(static_cast<int64_t>(fval))
                        : static_cast<uint64_t>(sval);
      case DataType::F32:
        return f32ToBits(static_cast<float>(fval));
      case DataType::F64:
        return f64ToBits(fval);
    }
    return 0;
}

uint64_t
WarpExecutor::aluCompute(const Instruction &inst, uint64_t a, uint64_t b,
                         uint64_t c)
{
    const DataType t = inst.type;

    // Floating-point path.
    if (ptx::isFloat(t)) {
        const bool f32 = t == DataType::F32;
        const double x = f32 ? bitsToF32(a) : bitsToF64(a);
        const double y = f32 ? bitsToF32(b) : bitsToF64(b);
        const double z = f32 ? bitsToF32(c) : bitsToF64(c);
        double r = 0.0;
        switch (inst.op) {
          case Opcode::Mov: r = x; break;
          case Opcode::Add: r = x + y; break;
          case Opcode::Sub: r = x - y; break;
          case Opcode::Mul: r = x * y; break;
          case Opcode::Mad: r = x * y + z; break;
          case Opcode::Div: r = x / y; break;
          case Opcode::Min: r = std::fmin(x, y); break;
          case Opcode::Max: r = std::fmax(x, y); break;
          case Opcode::Abs: r = std::fabs(x); break;
          case Opcode::Neg: r = -x; break;
          case Opcode::Rcp: r = 1.0 / x; break;
          case Opcode::Sqrt: r = std::sqrt(x); break;
          case Opcode::Rsqrt: r = 1.0 / std::sqrt(x); break;
          case Opcode::Sin: r = std::sin(x); break;
          case Opcode::Cos: r = std::cos(x); break;
          case Opcode::Ex2: r = std::exp2(x); break;
          case Opcode::Lg2: r = std::log2(x); break;
          default:
            gcl_sim_error(SimError::Kind::Workload, "exec", 0, "op ",
                          ptx::toString(inst.op),
                          " unsupported for float types");
        }
        return f32 ? f32ToBits(static_cast<float>(r)) : f64ToBits(r);
    }

    // Integer path. Compute in 64 bits, then narrow per the type.
    const bool is32 = (t == DataType::U32 || t == DataType::S32 ||
                       t == DataType::Pred);
    const bool sgn = ptx::isSigned(t);
    const int64_t sa = is32 ? static_cast<int32_t>(a)
                            : static_cast<int64_t>(a);
    const int64_t sb = is32 ? static_cast<int32_t>(b)
                            : static_cast<int64_t>(b);
    const uint64_t ua = is32 ? zext32(a) : a;
    const uint64_t ub = is32 ? zext32(b) : b;
    const uint64_t uc = is32 ? zext32(c) : c;

    uint64_t r = 0;
    switch (inst.op) {
      case Opcode::Mov: r = ua; break;
      case Opcode::Add: r = ua + ub; break;
      case Opcode::Sub: r = ua - ub; break;
      case Opcode::Mul: r = ua * ub; break;
      case Opcode::Mad: r = ua * ub + uc; break;
      case Opcode::MulHi:
        if (is32) {
            r = sgn ? static_cast<uint64_t>((sa * sb) >> 32)
                    : ((ua * ub) >> 32);
        } else {
            const auto wide = sgn
                ? static_cast<unsigned __int128>(
                      static_cast<__int128>(sa) * sb)
                : static_cast<unsigned __int128>(ua) * ub;
            r = static_cast<uint64_t>(wide >> 64);
        }
        break;
      case Opcode::Div:
        if (sgn)
            r = sb == 0 ? 0 : static_cast<uint64_t>(sa / sb);
        else
            r = ub == 0 ? 0 : ua / ub;
        break;
      case Opcode::Rem:
        if (sgn)
            r = sb == 0 ? 0 : static_cast<uint64_t>(sa % sb);
        else
            r = ub == 0 ? 0 : ua % ub;
        break;
      case Opcode::Min:
        r = sgn ? static_cast<uint64_t>(std::min(sa, sb))
                : std::min(ua, ub);
        break;
      case Opcode::Max:
        r = sgn ? static_cast<uint64_t>(std::max(sa, sb))
                : std::max(ua, ub);
        break;
      case Opcode::Abs:
        r = sgn ? static_cast<uint64_t>(sa < 0 ? -sa : sa) : ua;
        break;
      case Opcode::Neg: r = static_cast<uint64_t>(-sa); break;
      case Opcode::And: r = ua & ub; break;
      case Opcode::Or: r = ua | ub; break;
      case Opcode::Xor: r = ua ^ ub; break;
      case Opcode::Not: r = ~ua; break;
      case Opcode::Shl: r = ua << (ub & (is32 ? 31 : 63)); break;
      case Opcode::Shr:
        if (sgn)
            r = static_cast<uint64_t>(sa >> (ub & (is32 ? 31 : 63)));
        else
            r = ua >> (ub & (is32 ? 31 : 63));
        break;
      default:
        gcl_sim_error(SimError::Kind::Workload, "exec", 0, "op ",
                      ptx::toString(inst.op),
                      " unsupported for integer types");
    }

    if (is32)
        r = sgn ? sext32(r) : zext32(r);
    return r;
}

uint64_t
WarpExecutor::atomicApply(ptx::AtomOp op, DataType type, uint64_t old_v,
                          uint64_t a, uint64_t b)
{
    const bool is32 = typeSize(type) == 4;
    switch (op) {
      case ptx::AtomOp::Add: {
        const uint64_t r = old_v + a;
        return is32 ? zext32(r) : r;
      }
      case ptx::AtomOp::Min:
        if (ptx::isSigned(type)) {
            const int64_t o = is32 ? static_cast<int32_t>(old_v)
                                   : static_cast<int64_t>(old_v);
            const int64_t x = is32 ? static_cast<int32_t>(a)
                                   : static_cast<int64_t>(a);
            return static_cast<uint64_t>(std::min(o, x)) &
                   (is32 ? 0xffffffffull : ~0ull);
        }
        return std::min(is32 ? zext32(old_v) : old_v,
                        is32 ? zext32(a) : a);
      case ptx::AtomOp::Max:
        if (ptx::isSigned(type)) {
            const int64_t o = is32 ? static_cast<int32_t>(old_v)
                                   : static_cast<int64_t>(old_v);
            const int64_t x = is32 ? static_cast<int32_t>(a)
                                   : static_cast<int64_t>(a);
            return static_cast<uint64_t>(std::max(o, x)) &
                   (is32 ? 0xffffffffull : ~0ull);
        }
        return std::max(is32 ? zext32(old_v) : old_v,
                        is32 ? zext32(a) : a);
      case ptx::AtomOp::Exch:
        return a;
      case ptx::AtomOp::Cas:
        return old_v == a ? b : old_v;
      case ptx::AtomOp::And:
        return old_v & a;
      case ptx::AtomOp::Or:
        return old_v | a;
    }
    return old_v;
}

StepInfo
WarpExecutor::step(const LaunchContext &launch, CtaContext &cta,
                   WarpContext &warp, size_t pc, LaneMask active)
{
    const Instruction &inst = launch.kernel->inst(pc);
    StepInfo info;
    const LaneMask exec = guardMask(inst, warp, active);

    auto for_each_lane = [&](auto &&fn) {
        for (unsigned lane = 0; lane < warpSize_; ++lane)
            if ((exec >> lane) & 1)
                fn(lane);
    };

    /**
     * A source operand resolved once per instruction instead of
     * re-dispatched on its kind for every lane. Registers become a base
     * pointer into the warp's lane-major register file (stable: no
     * reallocation can happen mid-instruction, and aliasing with the
     * destination register keeps the exact read-then-write-per-lane
     * order of the per-lane dispatch it replaces). Warp-uniform
     * specials (ntid.*, ctaid.*, nctaid.*, warpid) and immediates fold
     * to a single value; only tid.* and laneid still need the per-lane
     * call.
     */
    struct Src
    {
        const uint64_t *lanes = nullptr;
        uint64_t uniform = 0;
        bool perLaneSpecial = false;
        SpecialReg sreg{};
    };
    auto resolve = [&](const Operand &op) {
        Src s;
        switch (op.kind) {
          case Operand::Kind::Reg:
            s.lanes = &warp.regs[static_cast<size_t>(op.reg) * warpSize_];
            break;
          case Operand::Kind::Imm:
            s.uniform = op.imm;
            break;
          case Operand::Kind::Special:
            switch (op.sreg) {
              case SpecialReg::TidX:
              case SpecialReg::TidY:
              case SpecialReg::TidZ:
              case SpecialReg::LaneId:
                s.perLaneSpecial = true;
                s.sreg = op.sreg;
                break;
              default:
                s.uniform = specialValue(launch, cta, warp, 0, op.sreg);
                break;
            }
            break;
          case Operand::Kind::None:
            break;
        }
        return s;
    };
    auto srcVal = [&](const Src &s, unsigned lane) -> uint64_t {
        if (s.lanes)
            return s.lanes[lane];
        if (s.perLaneSpecial)
            return specialValue(launch, cta, warp, lane, s.sreg);
        return s.uniform;
    };

    switch (inst.op) {
      case Opcode::Nop:
        info.kind = StepInfo::Kind::Alu;
        return info;

      case Opcode::Bar:
        info.kind = StepInfo::Kind::Barrier;
        return info;

      case Opcode::Exit:
        info.kind = StepInfo::Kind::Exit;
        return info;

      case Opcode::Bra:
        info.kind = StepInfo::Kind::Branch;
        info.takenMask = exec;
        info.targetPc = static_cast<size_t>(inst.branchTarget);
        return info;

      case Opcode::LdParam:
        info.kind = StepInfo::Kind::Memory;
        info.space = MemSpace::Param;
        info.isLoad = true;
        info.accessSize = 8;
        for_each_lane([&](unsigned lane) {
            gcl_sim_check(inst.paramIndex < launch.params.size(), "exec",
                          0, "param index out of range at runtime");
            warp.reg(inst.dst, lane, warpSize_) =
                launch.params[inst.paramIndex];
        });
        return info;

      case Opcode::Ld: {
        info.kind = StepInfo::Kind::Memory;
        info.space = inst.space;
        info.isLoad = true;
        info.accessSize = inst.accessSize;
        info.addrs.reserve(static_cast<size_t>(std::popcount(exec)));
        const Src s0 = resolve(inst.srcs[0]);
        for_each_lane([&](unsigned lane) {
            const uint64_t addr =
                srcVal(s0, lane) + static_cast<uint64_t>(inst.memOffset);
            info.addrs.emplace_back(lane, addr);
            uint64_t value = 0;
            if (inst.space == MemSpace::Shared) {
                gcl_sim_check(cta.shared, "exec", 0,
                              "shared load without shared memory");
                value = cta.shared->read(addr, inst.accessSize);
            } else {
                // Global, local, const and tex all live in the flat
                // device address space functionally.
                value = gmem_.read(addr, inst.accessSize);
            }
            warp.reg(inst.dst, lane, warpSize_) = value;
        });
        return info;
      }

      case Opcode::St: {
        info.kind = StepInfo::Kind::Memory;
        info.space = inst.space;
        info.isStore = true;
        info.accessSize = inst.accessSize;
        info.addrs.reserve(static_cast<size_t>(std::popcount(exec)));
        const Src s0 = resolve(inst.srcs[0]);
        const Src s1 = resolve(inst.srcs[1]);
        for_each_lane([&](unsigned lane) {
            const uint64_t addr =
                srcVal(s0, lane) + static_cast<uint64_t>(inst.memOffset);
            const uint64_t value = srcVal(s1, lane);
            info.addrs.emplace_back(lane, addr);
            if (inst.space == MemSpace::Shared) {
                gcl_sim_check(cta.shared, "exec", 0,
                              "shared store without shared memory");
                cta.shared->write(addr, value, inst.accessSize);
            } else if (staging_ != nullptr) {
                PendingAccess p;
                p.addr = addr;
                p.a = value;
                p.size = inst.accessSize;
                staging_->push_back(p);
            } else {
                gmem_.write(addr, value, inst.accessSize);
            }
        });
        return info;
      }

      case Opcode::Atom: {
        info.kind = StepInfo::Kind::Memory;
        info.space = MemSpace::Global;
        info.isAtomic = true;
        info.accessSize = inst.accessSize;
        // Lanes apply in lane order, which serializes intra-warp conflicts
        // deterministically.
        info.addrs.reserve(static_cast<size_t>(std::popcount(exec)));
        const Src s0 = resolve(inst.srcs[0]);
        const Src s1 = resolve(inst.srcs[1]);
        const Src s2 = resolve(inst.srcs[2]);
        for_each_lane([&](unsigned lane) {
            const uint64_t addr =
                srcVal(s0, lane) + static_cast<uint64_t>(inst.memOffset);
            const uint64_t a = srcVal(s1, lane);
            const uint64_t b = srcVal(s2, lane);
            info.addrs.emplace_back(lane, addr);
            if (staging_ != nullptr) {
                // Stage the *operation*, not a precomputed value: the
                // read-modify-write runs at commit against committed
                // memory, so same-cycle conflicts across SMs never lose
                // updates (see functional.hh).
                PendingAccess p;
                p.addr = addr;
                p.a = a;
                p.b = b;
                p.oldDst = &warp.reg(inst.dst, lane, warpSize_);
                p.size = inst.accessSize;
                p.isAtomic = true;
                p.atomOp = inst.atomOp;
                p.type = inst.type;
                staging_->push_back(p);
            } else {
                const uint64_t old_v = gmem_.read(addr, inst.accessSize);
                gmem_.write(addr,
                            atomicApply(inst.atomOp, inst.type, old_v, a, b),
                            inst.accessSize);
                warp.reg(inst.dst, lane, warpSize_) = old_v;
            }
        });
        return info;
      }

      case Opcode::Setp: {
        info.kind = StepInfo::Kind::Alu;
        const Src s0 = resolve(inst.srcs[0]);
        const Src s1 = resolve(inst.srcs[1]);
        for_each_lane([&](unsigned lane) {
            const uint64_t a = srcVal(s0, lane);
            const uint64_t b = srcVal(s1, lane);
            warp.reg(inst.dst, lane, warpSize_) =
                compare(inst.cmp, inst.type, a, b) ? 1 : 0;
        });
        return info;
      }

      case Opcode::Selp: {
        info.kind = StepInfo::Kind::Alu;
        const Src s0 = resolve(inst.srcs[0]);
        const Src s1 = resolve(inst.srcs[1]);
        const Src s2 = resolve(inst.srcs[2]);
        for_each_lane([&](unsigned lane) {
            const uint64_t a = srcVal(s0, lane);
            const uint64_t b = srcVal(s1, lane);
            const uint64_t p = srcVal(s2, lane);
            warp.reg(inst.dst, lane, warpSize_) = p ? a : b;
        });
        return info;
      }

      case Opcode::Cvt: {
        info.kind = StepInfo::Kind::Alu;
        const Src s0 = resolve(inst.srcs[0]);
        for_each_lane([&](unsigned lane) {
            warp.reg(inst.dst, lane, warpSize_) =
                convert(inst.type, inst.cvtFrom, srcVal(s0, lane));
        });
        return info;
      }

      default: {
        // Generic ALU / SFU arithmetic.
        info.kind = inst.isSfu() ? StepInfo::Kind::Sfu : StepInfo::Kind::Alu;
        const Src s0 = resolve(inst.srcs[0]);
        const Src s1 = resolve(inst.srcs[1]);
        const Src s2 = resolve(inst.srcs[2]);
        for_each_lane([&](unsigned lane) {
            const uint64_t a = srcVal(s0, lane);
            const uint64_t b = srcVal(s1, lane);
            const uint64_t c = srcVal(s2, lane);
            warp.reg(inst.dst, lane, warpSize_) = aluCompute(inst, a, b, c);
        });
        return info;
      }
    }
}

void
WarpExecutor::commitStaged(std::vector<PendingAccess> &staged)
{
    for (const PendingAccess &p : staged) {
        if (!p.isAtomic) {
            gmem_.write(p.addr, p.a, p.size);
            continue;
        }
        const uint64_t old_v = gmem_.read(p.addr, p.size);
        gmem_.write(p.addr, atomicApply(p.atomOp, p.type, old_v, p.a, p.b),
                    p.size);
        if (p.oldDst != nullptr)
            *p.oldDst = old_v;
    }
    staged.clear();
}

} // namespace gcl::sim
