#include "dram.hh"

#include <algorithm>

#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

void
DramChannel::push(ReqHandle req, Cycle now)
{
    gcl_sim_check(canAccept(), "dram", now, "push into a full queue");
    // FCFS: the burst occupies the channel serially; data returns a fixed
    // access latency after its burst starts.
    const Cycle start = std::max(channelFreeAt_, now);
    channelFreeAt_ = start + config_.dramBurstCycles;
    GCL_TRACE(traceSink, trace::EventKind::ReqDramEnqueue, now,
              pools_.reqs.get(req).id, pools_.reqs.get(req).lineAddr,
              tracePc(pools_.reqs.get(req)), traceUnit,
              traceFlags(pools_.reqs.get(req)));
    queue_.push_back({req, start + config_.dramLatency});
}

bool
DramChannel::headReady(Cycle now) const
{
    return !queue_.empty() && queue_.front().readyAt <= now;
}

ReqHandle
DramChannel::pop()
{
    gcl_sim_check(!queue_.empty(), "dram", 0, "pop from an empty queue");
    ReqHandle req = queue_.front().req;
    queue_.pop_front();
    ++serviced_;
    return req;
}

} // namespace gcl::sim
