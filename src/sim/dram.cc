#include "dram.hh"

#include <algorithm>

#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

void
DramChannel::push(ReqHandle req, Cycle now)
{
    gcl_sim_check(canAccept(), "dram", now, "push into a full queue");
    // FCFS: the burst occupies the channel serially; data returns a fixed
    // access latency after its burst starts. When the machine enables the
    // open-row model, a row-buffer miss adds the activate penalty to both.
    Cycle penalty = 0;
    if (config_.dramRowBytes != 0) {
        if (openRow_.empty())
            openRow_.assign(config_.dramBanks, ~uint64_t{0});
        const uint64_t line = pools_.reqs.get(req).lineAddr;
        const uint64_t bank =
            (line / config_.dramRowBytes) % config_.dramBanks;
        const uint64_t row =
            (line / config_.dramRowBytes) / config_.dramBanks;
        if (openRow_[bank] != row) {
            penalty = config_.dramActLatency;
            openRow_[bank] = row;
        }
    }
    const Cycle start = std::max(channelFreeAt_, now);
    channelFreeAt_ = start + penalty + config_.dramBurstCycles;
    GCL_TRACE(traceSink, trace::EventKind::ReqDramEnqueue, now,
              pools_.reqs.get(req).id, pools_.reqs.get(req).lineAddr,
              tracePc(pools_.reqs.get(req)), traceUnit,
              traceFlags(pools_.reqs.get(req)));
    queue_.push_back({req, start + penalty + config_.dramLatency});
}

bool
DramChannel::headReady(Cycle now) const
{
    return !queue_.empty() && queue_.front().readyAt <= now;
}

ReqHandle
DramChannel::pop()
{
    gcl_sim_check(!queue_.empty(), "dram", 0, "pop from an empty queue");
    ReqHandle req = queue_.front().req;
    queue_.pop_front();
    ++serviced_;
    return req;
}

} // namespace gcl::sim
