#include "dram.hh"

#include <algorithm>

#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

void
DramChannel::push(const MemRequestPtr &req, Cycle now)
{
    gcl_sim_check(canAccept(), "dram", now, "push into a full queue");
    // FCFS: the burst occupies the channel serially; data returns a fixed
    // access latency after its burst starts.
    const Cycle start = std::max(channelFreeAt_, now);
    channelFreeAt_ = start + config_.dramBurstCycles;
    GCL_TRACE(traceSink, trace::EventKind::ReqDramEnqueue, now, req->id,
              req->lineAddr, tracePc(*req), traceUnit, traceFlags(*req));
    queue_.push_back({req, start + config_.dramLatency});
}

bool
DramChannel::headReady(Cycle now) const
{
    return !queue_.empty() && queue_.front().readyAt <= now;
}

MemRequestPtr
DramChannel::pop()
{
    gcl_sim_check(!queue_.empty(), "dram", 0, "pop from an empty queue");
    MemRequestPtr req = std::move(queue_.front().req);
    queue_.pop_front();
    ++serviced_;
    return req;
}

} // namespace gcl::sim
