/**
 * @file
 * Central instrumentation sink for one simulated application run.
 *
 * Hot-path events (per instruction, per cycle, per memory request) land in
 * plain counters; finalize() folds everything into a flat string-keyed
 * StatsSet that the harness serializes into the benchmark run cache.
 *
 * The per-request structures are laid out for the hot path:
 *  - per-pc turnaround aggregates live in dense per-kernel arrays indexed
 *    by pc (a hash map only catches pathological pcs past the dense limit);
 *  - per-line block info lives in an open-addressed table keyed by line
 *    address (insert/find only — it is swept once at finalize);
 *  - the per-block CTA lists stay unsorted during the run and are sorted
 *    once at finalize, before the distance histograms are computed.
 * All of this is observationally identical to the straightforward
 * map-based bookkeeping: every finalize key is distinct and every
 * accumulated double is integer-valued, so order of accumulation and
 * iteration cannot change the serialized output.
 *
 * Sharding (sim_threads): every accumulation path above lives in a Shard.
 * Each SM and each memory partition owns one shard (newShard()), so
 * compute-phase workers never write a byte another unit reads. Shards are
 * merged into the base shard at finalize() in unit-id order; because every
 * merge is a commutative fold into a keyed structure (plain adds, unique
 * per-key buckets, unordered CTA sets sorted at the end), the merged state
 * — and therefore the serialized output — is identical for any thread
 * count, including the thread-count-1 case, which uses the same per-unit
 * shards. Direct SimStats methods (tests, launch-level bookkeeping)
 * accumulate into the base shard.
 *
 * Scalar key map after finalize() (all monotonically accumulated):
 *   cycles, launches, ctas_launched, threads_per_cta
 *   warp_insts, thread_insts
 *   gload.warps[.det|.nondet]      warp-level global loads
 *   gload.reqs[.det|.nondet]       coalesced memory requests they produced
 *   gload.active[.det|.nondet]     active threads in those warps
 *   sload.warps / sstore.warps / gstore.warps / atom.warps / l2.atomics
 *   busy.sp / busy.sfu / busy.ldst / sm_cycles                    (Fig 4)
 *   l1.outcome.{hit,hit_reserved,miss,fail_tag,fail_mshr,fail_icnt} (Fig 3)
 *   l1.access.* / l1.miss.*  and  l2.access.* / l2.miss.*           (Fig 8)
 *   l2.queries.p<i> / l2.hits.p<i>                              (Table III)
 *   l2.write_absorbed (only when nonzero)
 *   turn.{cnt,sum,unloaded,rsrv_prev,rsrv_cur,mem}.{det,nondet}     (Fig 5)
 *   part.stall_cycles
 *   blocks.{count,accesses,shared,shared_accesses,shared_cta_sum} (Fig 10/11)
 * Histogram keys:
 *   cta_distance[.det|.nondet]                                      (Fig 12)
 *   block_reuse (bucket = accesses per block)                       (Fig 10)
 *   pc.<kernel>#<pc>.{turn_cnt,turn_sum,gap_l1d,gap_icnt_l2,gap_l2icnt}
 *       (bucket = #requests of the warp op; Figs 6 and 7), plus the scalar
 *   pc.<kernel>#<pc>.nondet = 0/1 giving the pc's static class
 */

#ifndef GCL_SIM_STATS_HH
#define GCL_SIM_STATS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache.hh"
#include "config.hh"
#include "mem_request.hh"
#include "util/stats.hh"

namespace gcl::sim
{

/** Instrumentation hub owned by the Gpu; shared by reference. */
class SimStats
{
  public:
    explicit SimStats(const GpuConfig &config);

    /** Flat counters on the per-cycle / per-instruction paths. */
    struct Hot
    {
        uint64_t warpInsts = 0;
        uint64_t threadInsts = 0;
        uint64_t smCycles = 0;
        /**
         * Request conservation (gcl::guard): every data-expecting request
         * accepted by an L1 must eventually complete. The watchdog uses
         * reqsCompleted as its memory-progress counter, and the device
         * checks issued == completed at the end of every launch.
         */
        uint64_t reqsIssued = 0;
        uint64_t reqsCompleted = 0;
        uint64_t busySp = 0;
        uint64_t busySfu = 0;
        uint64_t busyLdst = 0;
        uint64_t l1Outcome[6] = {};     //!< indexed by AccessOutcome
        uint64_t l1Access[2] = {};      //!< indexed by nonDet
        uint64_t l1Miss[2] = {};
        uint64_t l2Access[2] = {};
        uint64_t l2Miss[2] = {};
        uint64_t partStalls = 0;
        uint64_t sloadWarps = 0;
        uint64_t sstoreWarps = 0;
        uint64_t gstoreWarps = 0;
        uint64_t atomWarps = 0;
        uint64_t l2Atomics = 0;
        uint64_t l2WriteAbsorbed = 0;

        /** Commutative fold (shard merge). */
        void add(const Hot &o);
    };

  private:
    struct ClassAgg
    {
        uint64_t warps = 0;
        uint64_t reqs = 0;
        uint64_t active = 0;
        double turnSum = 0;
        double unloaded = 0;
        double rsrvPrev = 0;
        double rsrvCur = 0;
        double mem = 0;
    };

    struct PcBucket
    {
        uint64_t cnt = 0;
        double turn = 0;
        double gapL1d = 0;
        double gapIcntL2 = 0;
        double gapL2Icnt = 0;

        void
        add(const PcBucket &o)
        {
            cnt += o.cnt;
            turn += o.turn;
            gapL1d += o.gapL1d;
            gapIcntL2 += o.gapIcntL2;
            gapL2Icnt += o.gapL2Icnt;
        }
    };

    /** Dense per-pc aggregate: one bucket per possible request count. */
    struct PcSlot
    {
        bool used = false;
        bool nonDet = false;
        PcBucket byReqs[WarpMemOp::kMaxRequests + 1];
    };

    /** pcs below this index use the dense per-kernel arrays. */
    static constexpr uint32_t kDensePcLimit = 4096;

    struct PcAgg
    {
        bool nonDet = false;
        std::unordered_map<uint32_t, PcBucket> byReqs;
    };

    struct BlockInfo
    {
        uint64_t accesses = 0;
        std::vector<uint32_t> ctas;        //!< unique CTA ids (unsorted)
        std::vector<uint32_t> ctasDet;     //!< via deterministic loads
        std::vector<uint32_t> ctasNondet;  //!< via non-deterministic loads
    };

    struct BlockSlot
    {
        uint64_t lineAddr = 0;
        BlockInfo info;                    //!< accesses == 0 => slot empty
    };

  public:
    /**
     * One unit's private accumulation state. A compute-phase worker only
     * ever touches its own unit's shard (plus, for the per-partition
     * l2.queries/hits vectors, its own disjoint index in the owner), so
     * no hot-path counter is ever shared between threads.
     */
    class Shard
    {
      public:
        Hot hot;

        /** One L1 access attempt this cycle had this outcome (Fig 3). */
        void
        l1AccessCycle(AccessOutcome outcome)
        {
            ++hot.l1Outcome[static_cast<int>(outcome)];
        }

        /** An accepted L1 data access for a global load (Figs 8, 10, 11). */
        void l1Access(bool non_det, bool miss, uint64_t line_addr,
                      uint32_t cta);

        /** An L2 read query from L1 (Fig 8, Table III). */
        void
        l2Access(int partition, bool non_det, bool miss)
        {
            ++hot.l2Access[non_det];
            if (miss)
                ++hot.l2Miss[non_det];
            ++owner_->l2Queries_[static_cast<size_t>(partition)];
            if (!miss)
                ++owner_->l2Hits_[static_cast<size_t>(partition)];
        }

        /** A cycle the partition head request could not be serviced. */
        void partitionStall() { ++hot.partStalls; }

        /** A completed warp-level global-load op (Figs 2, 5, 6, 7). */
        void gloadDone(const WarpMemOp &op, uint32_t kernel_id);

      private:
        friend class SimStats;

        explicit Shard(SimStats &owner) : owner_(&owner) {}

        /** Find-or-insert into the open-addressed block table. */
        BlockInfo &blockFor(uint64_t line_addr);
        void growBlockTable();

        SimStats *owner_;
        ClassAgg cls_[2];
        /** Dense per-kernel, per-pc aggregates (grown on demand). */
        std::vector<std::vector<PcSlot>> pcDense_;
        /** Spill for pcs past kDensePcLimit; keyed (kernel<<32) | pc. */
        std::unordered_map<uint64_t, PcAgg> pcAggs_;
        /** Open-addressed power-of-two table of per-line block info. */
        std::vector<BlockSlot> blockTable_;
        size_t blockCount_ = 0;
    };

    /**
     * Create a per-unit shard. Stable reference for the stats' lifetime;
     * merged (in creation order) into the base shard at finalize().
     */
    Shard &newShard();

    /** Sum of all hot counters: base shard + every unit shard. */
    Hot hotTotals() const;

    /** Cold, string-keyed stats (launch-level bookkeeping + final output). */
    StatsSet &set() { return set_; }
    const StatsSet &set() const { return set_; }

    // Direct accumulation API (base shard): launch-level bookkeeping and
    // unit tests. Compute-phase code goes through its unit's Shard.
    void l1AccessCycle(AccessOutcome outcome) { base_.l1AccessCycle(outcome); }
    void
    l1Access(bool non_det, bool miss, uint64_t line_addr, uint32_t cta)
    {
        base_.l1Access(non_det, miss, line_addr, cta);
    }
    void
    l2Access(int partition, bool non_det, bool miss)
    {
        base_.l2Access(partition, non_det, miss);
    }
    void partitionStall() { base_.partitionStall(); }
    void
    gloadDone(const WarpMemOp &op, uint32_t kernel_id)
    {
        base_.gloadDone(op, kernel_id);
    }

    /** Intern a kernel name; the id keys the per-pc aggregates. */
    uint32_t kernelId(const std::string &name);

    /** Interned kernel names, indexed by kernelId (crit key rendering). */
    const std::vector<std::string> &kernelNames() const
    {
        return kernelNames_;
    }

    /** Fold all plain counters and maps into the StatsSet. Idempotent. */
    void finalize();

  private:
    static void insertCta(std::vector<uint32_t> &ctas, uint32_t cta);
    static void distanceHistogram(const std::vector<uint32_t> &ctas,
                                  Histogram &hist);

    /** Fold @p shard into the base shard and clear it. */
    void mergeShard(Shard &shard);

    /** The five output histograms of one pc (finalize helper). */
    struct PcHists
    {
        Histogram *cnt, *turn, *gapL1d, *gapIcntL2, *gapL2Icnt;
    };
    PcHists pcHists(uint32_t kernel, uint32_t pc_idx, bool non_det);
    static void addPcBucket(const PcHists &hists, uint32_t nreq,
                            const PcBucket &bucket);

    const GpuConfig &config_;
    StatsSet set_;

    std::vector<uint64_t> l2Queries_;
    std::vector<uint64_t> l2Hits_;
    std::vector<std::string> kernelNames_;
    std::unordered_map<std::string, uint32_t> kernelIds_;
    Shard base_;
    /** Per-unit shards; deque so newShard() never moves existing ones. */
    std::deque<Shard> shards_;
    bool finalized_ = false;

  public:
    /** The base shard's hot counters (direct-API and test access). */
    Hot &hot;
};

} // namespace gcl::sim

#endif // GCL_SIM_STATS_HH
