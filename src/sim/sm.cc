#include "sm.hh"

#include <algorithm>
#include <bit>

#include "coalescer.hh"
#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

using ptx::Instruction;
using ptx::MemSpace;
using ptx::Opcode;

Sm::Sm(int id, const GpuConfig &config, GlobalMemory &gmem, SimStats &stats,
       MemPools &pools)
    : id_(id), config_(config), simStats_(stats),
      stats_(stats.newShard()), pools_(pools),
      executor_(gmem, config.warpSize),
      l1_("l1s" + std::to_string(id), config.l1, pools)
{
}

void
Sm::startLaunch(const LaunchContext &launch)
{
    gcl_sim_check(residentCtas_ == 0 && !busy(),
                  "sm" + std::to_string(id_), 0,
                  "startLaunch on a busy SM");
    launch_ = &launch;
    kernelId_ = simStats_.kernelId(launch.kernel->name());
    warpsPerCta_ = launch.warpsPerCta(config_.warpSize);

    const unsigned max_warps = config_.maxThreadsPerSm / config_.warpSize;
    const unsigned by_warps = max_warps / warpsPerCta_;
    maxResidentCtas_ = std::min(
        config_.ctasPerSm(static_cast<unsigned>(launch.cta.count()),
                          launch.kernel->sharedMemBytes()),
        std::max(1u, by_warps));

    ctas_.clear();
    ctas_.resize(maxResidentCtas_);
    warps_.clear();
    warps_.resize(static_cast<size_t>(maxResidentCtas_) * warpsPerCta_);
    warpAge_.assign(warps_.size(), 0);
    rrNext_.assign(config_.numSchedulers, 0);
    lastIssued_ = -1;
    spStageFreeAt_ = 0;
    sfuStageFreeAt_ = 0;
}

bool
Sm::canTakeCta() const
{
    return launch_ && residentCtas_ < maxResidentCtas_;
}

void
Sm::launchCta(uint32_t linear_id, uint32_t cx, uint32_t cy, uint32_t cz)
{
    gcl_sim_check(canTakeCta(), "sm" + std::to_string(id_), 0,
                  "launchCta without capacity");

    int slot = -1;
    for (size_t c = 0; c < ctas_.size(); ++c) {
        if (!ctas_[c].active) {
            slot = static_cast<int>(c);
            break;
        }
    }
    gcl_sim_check(slot >= 0, "sm" + std::to_string(id_), 0,
                  "no free CTA slot");
    issueDirty_ = true;
    GCL_DEBUG("sm", "sm", id_, ": cta ", linear_id, " -> slot ", slot);

    CtaContext &cta = ctas_[static_cast<size_t>(slot)];
    cta.active = true;
    cta.ctaX = cx;
    cta.ctaY = cy;
    cta.ctaZ = cz;
    cta.linearId = linear_id;
    cta.numWarps = warpsPerCta_;
    cta.warpsDone = 0;
    cta.warpsAtBarrier = 0;
    if (launch_->kernel->sharedMemBytes() > 0)
        cta.shared =
            std::make_unique<SharedMemory>(launch_->kernel->sharedMemBytes());
    else
        cta.shared.reset();

    const auto cta_threads = static_cast<uint32_t>(launch_->cta.count());
    for (unsigned w = 0; w < warpsPerCta_; ++w) {
        WarpContext &warp =
            warps_[static_cast<size_t>(slot) * warpsPerCta_ + w];
        warp.active = true;
        warp.ctaSlot = slot;
        warp.warpInCta = w;
        warp.threadBase = w * config_.warpSize;
        warp.atBarrier = false;
        warp.inflightOps = 0;
        warp.initRegs(launch_->kernel->numRegs(), config_.warpSize);
        // Producer tracking backs the crit data-hazard attribution; the
        // issue path never touches it when the profiler is off.
        if (crit)
            warp.sbProducer.assign(launch_->kernel->numRegs(), 0);

        LaneMask mask = 0;
        for (unsigned lane = 0; lane < config_.warpSize; ++lane)
            if (warp.threadBase + lane < cta_threads)
                mask |= LaneMask{1} << lane;
        warp.stack.reset(mask, launch_->kernel->size());

        warpAge_[static_cast<size_t>(slot) * warpsPerCta_ + w] =
            ageCounter_++;
    }
    ++residentCtas_;
}

unsigned
Sm::activeWarps() const
{
    unsigned n = 0;
    for (const auto &warp : warps_)
        if (warp.active)
            ++n;
    return n;
}

bool
Sm::busy() const
{
    return residentCtas_ > 0 || !ldstQ_.empty() || !pendingOps_.empty() ||
           !hitReturnQ_.empty() || !wbHeap_.empty();
}

// ---------------------------------------------------------------------
// Issue stage
// ---------------------------------------------------------------------

bool
Sm::warpReady(const WarpContext &warp, Cycle now) const
{
    if (!warp.active || warp.atBarrier || warp.stack.done())
        return false;

    const size_t pc = warp.stack.pc();
    const uint8_t cls = launch_->issueClass[pc];

    // Exit retires the warp slot; it must drain in-flight writebacks first.
    if (cls == LaunchContext::IssueExit && warp.inflightOps > 0)
        return false;

    // Scoreboard: no RAW or WAW on pending registers. Every scoreboard bit
    // is paired with an inflight op, so a warp with none in flight has a
    // clean scoreboard; otherwise AND the precomputed per-pc dependence
    // mask (sources, guard predicate, destination) word by word.
    if (warp.inflightOps > 0) {
        const uint64_t *mask = &launch_->sbMask[pc * launch_->sbWords];
        for (unsigned w = 0; w < launch_->sbWords; ++w)
            if (warp.scoreboard[w] & mask[w])
                return false;
    }

    // Function unit availability.
    switch (cls) {
      case LaunchContext::IssueBarrier:
      case LaunchContext::IssueExit:
        return true;
      case LaunchContext::IssueMemory:
        return ldstQ_.size() < config_.ldstQueueDepth;
      case LaunchContext::IssueSfu:
        return now >= sfuStageFreeAt_;
      default:
        return now >= spStageFreeAt_;
    }
}

int
Sm::pickWarp(unsigned scheduler, Cycle now)
{
    const unsigned nsched = config_.numSchedulers;
    const unsigned total = static_cast<unsigned>(warps_.size());
    // Slots handled by this scheduler: scheduler, scheduler+nsched, ...
    const unsigned count = total > scheduler
        ? (total - scheduler + nsched - 1) / nsched
        : 0;
    if (count == 0)
        return -1;

    if (config_.warpSched == WarpSchedPolicy::GreedyThenOldest) {
        if (lastIssued_ >= 0 &&
            static_cast<unsigned>(lastIssued_) % nsched == scheduler &&
            warpReady(warps_[static_cast<size_t>(lastIssued_)], now))
            return lastIssued_;
        int best = -1;
        uint64_t best_age = ~uint64_t{0};
        for (unsigned s = scheduler; s < total; s += nsched) {
            if (warpReady(warps_[s], now) && warpAge_[s] < best_age) {
                best_age = warpAge_[s];
                best = static_cast<int>(s);
            }
        }
        return best;
    }

    // Loose round-robin.
    unsigned &next = rrNext_[scheduler];
    for (unsigned i = 0; i < count; ++i) {
        const unsigned idx = (next + i) % count;
        const unsigned s = scheduler + idx * nsched;
        if (warpReady(warps_[s], now)) {
            next = (idx + 1) % count;
            return static_cast<int>(s);
        }
    }
    return -1;
}

void
Sm::warpExited(int slot)
{
    WarpContext &warp = warps_[static_cast<size_t>(slot)];
    warp.active = false;
    CtaContext &cta = ctas_[static_cast<size_t>(warp.ctaSlot)];
    ++cta.warpsDone;

    if (cta.warpsDone == cta.numWarps) {
        cta.active = false;
        cta.shared.reset();
        gcl_sim_check(residentCtas_ > 0, "sm" + std::to_string(id_), 0,
                      "CTA bookkeeping underflow");
        --residentCtas_;
        return;
    }

    // The exit may have been the last warp a barrier was waiting for.
    if (cta.warpsAtBarrier > 0 &&
        cta.warpsAtBarrier == cta.numWarps - cta.warpsDone) {
        for (unsigned w = 0; w < warpsPerCta_; ++w) {
            WarpContext &other =
                warps_[static_cast<size_t>(warp.ctaSlot) * warpsPerCta_ + w];
            if (other.active)
                other.atBarrier = false;
        }
        cta.warpsAtBarrier = 0;
        issueDirty_ = true;
    }
}

void
Sm::issueWarp(int slot, Cycle now)
{
    WarpContext &warp = warps_[static_cast<size_t>(slot)];
    CtaContext &cta = ctas_[static_cast<size_t>(warp.ctaSlot)];
    const size_t pc = warp.stack.pc();
    const Instruction &inst = launch_->kernel->inst(pc);
    const LaneMask active = warp.stack.activeMask();

    const StepInfo info = executor_.step(*launch_, cta, warp, pc, active);

    ++stats_.hot.warpInsts;
    stats_.hot.threadInsts += static_cast<uint64_t>(std::popcount(active));
    lastIssued_ = slot;
    warpAge_[static_cast<size_t>(slot)] = ageCounter_++;

    switch (info.kind) {
      case StepInfo::Kind::Alu:
      case StepInfo::Kind::Nop:
        // Timing comes from the machine description's opcode-class table,
        // resolved to per-pc values at launch (LaunchContext::opLatency).
        spStageFreeAt_ = now + launch_->opInitiation[pc];
        if (inst.writesDst()) {
            warp.setScoreboard(inst.dst);
            if (crit)
                warp.sbProducer[inst.dst] = static_cast<uint32_t>(pc);
            ++warp.inflightOps;
            scheduleWriteback(now + launch_->opLatency[pc], slot,
                              inst.dst);
        }
        warp.stack.advance();
        break;

      case StepInfo::Kind::Sfu:
        sfuStageFreeAt_ = now + launch_->opInitiation[pc];
        if (inst.writesDst()) {
            warp.setScoreboard(inst.dst);
            if (crit)
                warp.sbProducer[inst.dst] = static_cast<uint32_t>(pc);
            ++warp.inflightOps;
            scheduleWriteback(now + launch_->opLatency[pc], slot,
                              inst.dst);
        }
        warp.stack.advance();
        break;

      case StepInfo::Kind::Branch:
        spStageFreeAt_ = now + 1;
        warp.stack.branch(info.takenMask, info.targetPc,
                          launch_->cfg->reconvergencePc(pc));
        if (warp.stack.done())
            warpExited(slot);
        break;

      case StepInfo::Kind::Barrier: {
        warp.stack.advance();
        warp.atBarrier = true;
        ++cta.warpsAtBarrier;
        if (cta.warpsAtBarrier == cta.numWarps - cta.warpsDone) {
            for (unsigned w = 0; w < warpsPerCta_; ++w) {
                WarpContext &other =
                    warps_[static_cast<size_t>(warp.ctaSlot) * warpsPerCta_ +
                           w];
                if (other.active)
                    other.atBarrier = false;
            }
            cta.warpsAtBarrier = 0;
            issueDirty_ = true;
        }
        break;
      }

      case StepInfo::Kind::Exit:
        warp.stack.exitLanes(active);
        if (warp.stack.done())
            warpExited(slot);
        break;

      case StepInfo::Kind::Memory:
        startMemOp(slot, pc, inst, info, now);
        warp.stack.advance();
        break;
    }
}

void
Sm::issueCycle(Cycle now)
{
    if (crit) {
        // Attribution path: every slot of every cycle must be issued or
        // charged, including cycles the short-circuit below skips. The
        // simulation stays bit-identical because pickWarp mutates
        // scheduler state only when it returns a warp, and it is invoked
        // exactly when the baseline would invoke it (scan == issueDirty_;
        // a skipped scan is by construction one that would find nothing).
        ++crit->cycles;
        const bool scan = issueDirty_;
        bool issued = false;
        for (unsigned sched = 0; sched < config_.numSchedulers; ++sched) {
            const int slot = scan ? pickWarp(sched, now) : -1;
            if (slot >= 0) {
                issueWarp(slot, now);
                issued = true;
                ++crit->issued;
            } else {
                critCharge(sched, now);
            }
        }
        if (scan)
            issueDirty_ = issued;
        return;
    }

    // Event-driven short-circuit: when the last scan found nothing
    // issuable and no state that could wake a warp has changed since
    // (writeback, barrier release, LD/ST drain, CTA arrival, or another
    // issue), the scan would find nothing again.
    if (!issueDirty_)
        return;
    bool issued = false;
    for (unsigned sched = 0; sched < config_.numSchedulers; ++sched) {
        const int slot = pickWarp(sched, now);
        if (slot >= 0) {
            issueWarp(slot, now);
            issued = true;
        }
    }
    issueDirty_ = issued;
}

void
Sm::critCharge(unsigned scheduler, Cycle now)
{
    using crit::StallReason;
    const unsigned nsched = config_.numSchedulers;
    const unsigned total = static_cast<unsigned>(warps_.size());

    // The blocking warp: the oldest active warp this scheduler owns (the
    // one it is most overdue to issue). DESIGN.md "Stall taxonomy" spells
    // out the attribution rules below.
    int blocking = -1;
    uint64_t best_age = ~uint64_t{0};
    for (unsigned s = scheduler; s < total; s += nsched) {
        if (warps_[s].active && warpAge_[s] < best_age) {
            best_age = warpAge_[s];
            blocking = static_cast<int>(s);
        }
    }
    if (blocking < 0) {
        // Nothing live on this scheduler: either the SM still has CTAs
        // (their warps all sit on other schedulers or already retired)
        // or it is fully drained.
        crit->charge(residentCtas_ > 0 ? StallReason::IbufferEmpty
                                       : StallReason::IdleNoCta);
        return;
    }

    const WarpContext &warp = warps_[static_cast<size_t>(blocking)];
    if (warpReady(warp, now)) {
        // Ready but skipped: only reachable on short-circuited cycles,
        // where a warp waiting on a pure time edge (a busy SP/SFU stage)
        // ripens with no wake event. The model defers it to the next
        // wake, so the lost slots are structural.
        crit->charge(StallReason::Pipeline);
        return;
    }
    if (warp.atBarrier) {
        crit->charge(StallReason::Barrier);
        return;
    }

    const size_t pc = warp.stack.pc();
    const uint8_t cls = launch_->issueClass[pc];

    // Scoreboard hazard — including Exit draining its in-flight
    // writebacks: charge the producer of the first blocking register.
    if (warp.inflightOps > 0) {
        const bool exit_drain = cls == LaunchContext::IssueExit;
        const uint64_t *mask =
            exit_drain ? nullptr : &launch_->sbMask[pc * launch_->sbWords];
        const unsigned words = exit_drain
            ? static_cast<unsigned>(warp.scoreboard.size())
            : launch_->sbWords;
        for (unsigned w = 0; w < words; ++w) {
            const uint64_t conflict =
                warp.scoreboard[w] & (exit_drain ? ~uint64_t{0} : mask[w]);
            if (!conflict)
                continue;
            const uint32_t reg = w * 64 +
                static_cast<uint32_t>(std::countr_zero(conflict));
            const uint32_t producer = warp.sbProducer[reg];
            crit->chargePc(StallReason::DataHazard,
                           crit::pcKey(kernelId_, producer),
                           launch_->pcLoadClass[producer]);
            return;
        }
    }

    // No hazard, not at a barrier, not ready: a function unit refused.
    if (cls == LaunchContext::IssueMemory && !ldstQ_.empty()) {
        // LD/ST queue full. Blame the resource the head request last
        // failed on (issue runs before LD/ST, so this is the previous
        // cycle's outcome — the fail that kept the queue full into this
        // one) and attribute the slot to the op occupying the stage.
        StallReason reason = StallReason::Pipeline;
        if (critLastL1Outcome_ ==
            static_cast<uint8_t>(AccessOutcome::FailMshr))
            reason = StallReason::MshrFull;
        else if (critLastL1Outcome_ ==
                 static_cast<uint8_t>(AccessOutcome::FailIcnt))
            reason = StallReason::IcntBackpressure;
        const WarpMemOp &head = pools_.ops.get(ldstQ_.front());
        const auto head_pc = static_cast<uint32_t>(head.pc);
        crit->chargePc(reason, crit::pcKey(kernelId_, head_pc),
                       launch_->pcLoadClass[head_pc]);
        return;
    }
    crit->charge(StallReason::Pipeline);
}

// ---------------------------------------------------------------------
// LD/ST unit
// ---------------------------------------------------------------------

void
Sm::startMemOp(int slot, size_t pc, const Instruction &inst,
               const StepInfo &info, Cycle now)
{
    WarpContext &warp = warps_[static_cast<size_t>(slot)];

    const OpHandle op_handle = pools_.ops.alloc();
    WarpMemOp &op = pools_.ops.get(op_handle);
    op.smId = id_;
    op.warpSlot = slot;
    op.pc = pc;
    op.isLoad = info.isLoad;
    op.isStore = info.isStore;
    op.isAtomic = info.isAtomic;
    op.activeThreads = static_cast<unsigned>(info.addrs.size());
    op.tIssue = now;

    const bool writes_reg = inst.writesDst() && (info.isLoad || info.isAtomic);

    if (info.space == MemSpace::Shared || info.space == MemSpace::Param) {
        // Shared memory and the constant/param bank: fixed-latency on-chip
        // access, no cache traffic. Bank conflicts are not modeled.
        op.isShared = true;
        op.dst = writes_reg ? inst.dst : ptx::kNoReg;
        if (info.space == MemSpace::Shared && info.isLoad)
            ++stats_.hot.sloadWarps;
        else if (info.space == MemSpace::Shared)
            ++stats_.hot.sstoreWarps;
    } else {
        // Global-like spaces flow through coalescer + L1 + interconnect.
        op.isGlobalLoad = info.isLoad && info.space == MemSpace::Global;
        op.nonDet = op.isGlobalLoad && launch_->nonDetPc[pc];
        op.dst = writes_reg ? inst.dst : ptx::kNoReg;

        const auto lines =
            coalesce(info.addrs, info.accessSize, config_.l1.lineBytes,
                     traceSink, now, static_cast<uint32_t>(pc), id_,
                     op.nonDet);
        gcl_sim_check(lines.size() <= WarpMemOp::kMaxRequests,
                      "sm" + std::to_string(id_), now,
                      "coalescer produced ", lines.size(),
                      " lines for one warp op");
        const bool expects_data = info.isLoad || info.isAtomic;
        for (uint64_t line : lines) {
            const ReqHandle req_handle = pools_.reqs.alloc();
            MemRequest &req = pools_.reqs.get(req_handle);
            req.lineAddr = line;
            req.isWrite = info.isStore;
            req.isAtomic = info.isAtomic;
            req.smId = id_;
            req.isGlobalLoad = op.isGlobalLoad;
            req.nonDet = op.nonDet;
            req.opHandle = expects_data ? op_handle : kNullHandle;
            req.pc = expects_data ? static_cast<uint32_t>(pc) : 0;
            req.partition = partitionMap(line, id_, config_);
            op.requests[op.numRequests++] = req_handle;
        }
        op.outstanding = expects_data ? op.numRequests : 0;

        if (GCL_TRACE_ACTIVE(traceSink) && op.numRequests != 0) {
            for (uint32_t i = 0; i < op.numRequests; ++i)
                pools_.reqs.get(op.requests[i]).id = traceSink->newId(
                    op.requests[i], trace::StageSink::kIdReq);
            if (op.isGlobalLoad) {
                op.id =
                    traceSink->newId(op_handle, trace::StageSink::kIdOp);
                traceSink->emit(trace::EventKind::OpIssue, now, op.id,
                                static_cast<uint64_t>(slot),
                                static_cast<uint32_t>(pc),
                                static_cast<int16_t>(id_),
                                op.nonDet ? trace::kFlagNonDet
                                          : uint8_t{0});
            }
        }

        if (info.isStore)
            ++stats_.hot.gstoreWarps;
        if (info.isAtomic)
            ++stats_.hot.atomWarps;
    }

    if (writes_reg) {
        warp.setScoreboard(inst.dst);
        if (crit)
            warp.sbProducer[inst.dst] = static_cast<uint32_t>(pc);
        ++warp.inflightOps;
    }

    // A fully predicated-off access produces no work at all.
    if (!op.isShared && op.numRequests == 0) {
        if (writes_reg)
            scheduleWriteback(now + 1, slot, inst.dst);
        pools_.ops.free(op_handle);
        return;
    }

    ldstQ_.push_back(op_handle);
}

void
Sm::completeRequest(ReqHandle req_handle, Cycle now)
{
    MemRequest &req = pools_.reqs.get(req_handle);
    req.tComplete = now;
    GCL_TRACE(traceSink, trace::EventKind::ReqComplete, now, req.id,
              req.lineAddr, tracePc(req), static_cast<int16_t>(id_),
              traceFlags(req));
    const OpHandle op_handle = req.opHandle;
    if (op_handle == kNullHandle) {
        // Store: nothing waits for it.
        pools_.reqs.free(req_handle);
        return;
    }
    ++stats_.hot.reqsCompleted;

    WarpMemOp &op = pools_.ops.get(op_handle);
    gcl_sim_check(op.outstanding > 0, "sm" + std::to_string(id_), now,
                  "request completion underflow");
    --op.outstanding;
    if (op.tFirstData == 0)
        op.tFirstData = now;
    if (static_cast<int>(req.level) > static_cast<int>(op.deepest))
        op.deepest = req.level;

    // Fig 7 "gap at icnt-L2" contribution, accumulated now so the request
    // can be freed before the op retires (matches the retired-op sum
    // exactly: integer-valued doubles add without rounding).
    if (req.level != ServiceLevel::L1) {
        const double nominal = config_.icntLatency + config_.ropLatency;
        const double actual = static_cast<double>(req.tArriveL2) -
                              static_cast<double>(req.tAccepted);
        op.gapIcntL2Sum += std::max(0.0, actual - nominal);
        ++op.missedReqs;
    }

    // Per-stage latency decomposition (gcl::crit), folded before the free
    // while the stamps are live. An L1-MSHR-merged secondary never left
    // the SM (tInjected == 0): its whole trip is the primary's, recorded
    // as one Merge delta. An L2-MSHR merge has no DRAM enqueue stamp, so
    // its DRAM wait stays inside the L2 stage (see crit::Stage).
    if (crit && req.isGlobalLoad) {
        using crit::Stage;
        const uint64_t key = crit::pcKey(kernelId_, req.pc);
        crit->stage(key, Stage::Accept, req.tAccepted - op.tIssue);
        if (req.level == ServiceLevel::L1) {
            crit->stage(key, Stage::L1, req.tComplete - req.tAccepted);
        } else if (req.tInjected == 0) {
            crit->stage(key, Stage::Merge, req.tComplete - req.tAccepted);
        } else {
            crit->stage(key, Stage::IcntToL2,
                        req.tArriveL2 - req.tInjected);
            const Cycle l2_end = req.tDramEnq ? req.tDramEnq : req.tL2Done;
            crit->stage(key, Stage::L2, l2_end - req.tArriveL2);
            if (req.tDramEnq)
                crit->stage(key, Stage::Dram, req.tL2Done - req.tDramEnq);
            crit->stage(key, Stage::Resp, req.tComplete - req.tL2Done);
        }
    }
    pools_.reqs.free(req_handle);

    if (op.complete()) {
        for (size_t i = 0; i < pendingOps_.size(); ++i) {
            if (pendingOps_[i] == op_handle) {
                pendingOps_[i] = pendingOps_.back();
                pendingOps_.pop_back();
                finishMemOp(op_handle, now);
                return;
            }
        }
        gcl_sim_error(SimError::Kind::Invariant,
                      "sm" + std::to_string(id_), now,
                      "completed op not found in pendingOps");
    }
}

void
Sm::finishMemOp(OpHandle op_handle, Cycle now)
{
    WarpMemOp &op = pools_.ops.get(op_handle);
    op.tDone = now;
    if (op.isGlobalLoad) {
        stats_.gloadDone(op, kernelId_);
        if (crit)
            crit->opDone(crit::pcKey(kernelId_,
                                     static_cast<uint32_t>(op.pc)),
                         op.tDone - op.tIssue, op.nonDet ? 2 : 1);
        GCL_TRACE(traceSink, trace::EventKind::OpDone, now, op.id,
                  static_cast<uint64_t>(op.warpSlot),
                  static_cast<uint32_t>(op.pc), static_cast<int16_t>(id_),
                  op.nonDet ? trace::kFlagNonDet : uint8_t{0});
    }
    if (op.dst != ptx::kNoReg)
        scheduleWriteback(now, op.warpSlot, op.dst);
    pools_.ops.free(op_handle);
}

void
Sm::ldstCycle(Cycle now, Interconnect &icnt)
{
    // L1 hits coming back after the hit latency.
    while (hitReturnQ_.headReady(now))
        completeRequest(hitReturnQ_.pop(), now);

    if (ldstQ_.empty())
        return;
    ++stats_.hot.busyLdst;

    const OpHandle op_handle = ldstQ_.front();
    WarpMemOp &op = pools_.ops.get(op_handle);

    if (op.isShared) {
        // On-chip scratchpad: one stage cycle, fixed latency.
        op.tFirstAccept = op.tLastAccept = now;
        ldstQ_.pop_front();
        issueDirty_ = true;
        if (op.dst != ptx::kNoReg)
            scheduleWriteback(now + config_.sharedMemLatency, op.warpSlot,
                              op.dst);
        pools_.ops.free(op_handle);
        return;
    }

    // Issue the next coalesced request.
    const ReqHandle req_handle = op.requests[op.nextToIssue];
    MemRequest &req = pools_.reqs.get(req_handle);
    bool accepted = false;

    // Lifecycle emit, deduped: a stalled op retries the same request every
    // cycle, so repeated identical fails would dominate the trace.
    auto trace_l1 = [&](AccessOutcome outcome) {
        if (GCL_TRACE_ACTIVE(traceSink) &&
            req.traceLastFail != static_cast<uint8_t>(outcome)) {
            req.traceLastFail = static_cast<uint8_t>(outcome);
            traceSink->emit(trace::EventKind::ReqL1Access, now, req.id,
                            req.lineAddr, tracePc(req),
                            static_cast<int16_t>(id_),
                            traceFlags(req) |
                                trace::packOutcome(
                                    static_cast<unsigned>(outcome)));
        }
    };

    // Injected interconnect backpressure (gcl::guard): the port refuses
    // for the window, surfacing at the L1 as FailIcnt — the same edge a
    // real storm exercises.
    const bool icnt_ok =
        icnt.canInject(id_) && !(fault && fault->icntBlocked(now));

    if (req.isWrite || req.isAtomic) {
        // Write-through stores and atomics bypass the L1 tags; they only
        // need interconnect injection space.
        if (icnt_ok) {
            req.tAccepted = now;
            trace_l1(AccessOutcome::Miss);
            icnt.inject(req_handle, now, traceSink);
            stats_.l1AccessCycle(AccessOutcome::Miss);
            if (crit)
                critLastL1Outcome_ =
                    static_cast<uint8_t>(AccessOutcome::Miss);
            accepted = true;
        } else {
            trace_l1(AccessOutcome::FailIcnt);
            stats_.l1AccessCycle(AccessOutcome::FailIcnt);
            if (crit)
                critLastL1Outcome_ =
                    static_cast<uint8_t>(AccessOutcome::FailIcnt);
        }
    } else {
        // Injected MSHR exhaustion reports FailMshr without touching the
        // tag array, exactly like a real full-MSHR reservation fail.
        const AccessOutcome outcome =
            fault && fault->mshrExhausted(now)
                ? AccessOutcome::FailMshr
                : l1_.access(req_handle, icnt_ok);
        trace_l1(outcome);
        stats_.l1AccessCycle(outcome);
        if (crit)
            critLastL1Outcome_ = static_cast<uint8_t>(outcome);
        switch (outcome) {
          case AccessOutcome::Hit:
            req.tAccepted = now;
            req.level = ServiceLevel::L1;
            hitReturnQ_.push(req_handle, now + config_.l1HitLatency);
            accepted = true;
            break;
          case AccessOutcome::HitReserved:
            req.tAccepted = now;
            accepted = true;
            break;
          case AccessOutcome::Miss:
            req.tAccepted = now;
            icnt.inject(req_handle, now, traceSink);
            accepted = true;
            break;
          case AccessOutcome::FailTag:
          case AccessOutcome::FailMshr:
          case AccessOutcome::FailIcnt:
            break;
        }
        if (accepted && req.isGlobalLoad) {
            const WarpContext &warp =
                warps_[static_cast<size_t>(op.warpSlot)];
            const uint32_t cta =
                ctas_[static_cast<size_t>(warp.ctaSlot)].linearId;
            stats_.l1Access(req.nonDet, outcome != AccessOutcome::Hit,
                            req.lineAddr, cta);
        }
    }

    if (!accepted)
        return;  // retry next cycle; the stage stays occupied

    // Conservation (gcl::guard): an accepted data-expecting request must
    // eventually complete; the end-of-launch check balances this counter
    // against reqsCompleted.
    if (req.opHandle != kNullHandle)
        ++stats_.hot.reqsIssued;

    // Once accepted, the L1-side fail history is irrelevant — reset so the
    // L2-side dedupe (which reuses the field) starts fresh.
    if (GCL_TRACE_ACTIVE(traceSink))
        req.traceLastFail = 0xff;

    if (op.tFirstAccept == 0 && op.nextToIssue == 0)
        op.tFirstAccept = now;
    op.tLastAccept = now;
    ++op.nextToIssue;
    ++op.burstCount;

    if (op.allIssued()) {
        ldstQ_.pop_front();
        issueDirty_ = true;
        if (op.outstanding > 0)
            pendingOps_.push_back(op_handle);
        else
            finishMemOp(op_handle, now);
        return;
    }

    // Warp-splitting ablation (Section X.A): a non-deterministic load only
    // issues a bounded burst before yielding the stage to the next op.
    if (config_.nondetSplitRequests > 0 && op.nonDet &&
        op.burstCount >= config_.nondetSplitRequests && ldstQ_.size() > 1) {
        op.burstCount = 0;
        ldstQ_.pop_front();
        ldstQ_.push_back(op_handle);
    }
}

// ---------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------

void
Sm::scheduleWriteback(Cycle when, int slot, ptx::RegId reg)
{
    wbHeap_.push({when, slot, reg});
}

void
Sm::writebackCycle(Cycle now)
{
    while (!wbHeap_.empty() && wbHeap_.top().time <= now) {
        const Writeback wb = wbHeap_.top();
        wbHeap_.pop();
        issueDirty_ = true;
        WarpContext &warp = warps_[static_cast<size_t>(wb.slot)];
        gcl_sim_check(warp.active, "sm" + std::to_string(id_), now,
                      "writeback to a retired warp slot");
        warp.clearScoreboard(wb.reg);
        gcl_sim_check(warp.inflightOps > 0, "sm" + std::to_string(id_), now,
                      "scoreboard acquire/release imbalance (inflight op "
                      "underflow)");
        --warp.inflightOps;
    }
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

void
Sm::cycle(Cycle now, Interconnect &icnt)
{
    ++stats_.hot.smCycles;

    writebackCycle(now);
    issueCycle(now);
    ldstCycle(now, icnt);

    // First-pipeline-stage occupancy for Fig 4 (checked after issue so an
    // instruction issued this cycle marks its unit busy this cycle).
    if (now < spStageFreeAt_)
        ++stats_.hot.busySp;
    if (now < sfuStageFreeAt_)
        ++stats_.hot.busySfu;
}

void
Sm::receiveResponse(ReqHandle req_handle, Cycle now)
{
    // Injected dropped fill (gcl::guard): the response vanishes, leaking
    // the MSHR entry and every merged request — the livelock case the
    // forward-progress watchdog exists to catch. (The pooled request leaks
    // too; the pool dies with the Gpu.)
    if (fault && fault->dropFill(now))
        return;
    const MemRequest &req = pools_.reqs.get(req_handle);
    if (req.isAtomic) {
        completeRequest(req_handle, now);
        return;
    }
    // The head of the fill chain is this request itself; copy what the
    // merged requests inherit before completion frees it.
    const uint64_t line_addr = req.lineAddr;
    const ServiceLevel level = req.level;
    const Cycle t_l2_done = req.tL2Done;
    const Cycle t_arrive_l2 = req.tArriveL2;

    ReqHandle waiting = l1_.fill(line_addr);
    while (waiting != kNullHandle) {
        MemRequest &merged = pools_.reqs.get(waiting);
        const ReqHandle next = merged.nextWaiting;  // read before the free
        merged.level = level;
        merged.tL2Done = merged.tL2Done ? merged.tL2Done : t_l2_done;
        merged.tArriveL2 =
            merged.tArriveL2 ? merged.tArriveL2 : t_arrive_l2;
        completeRequest(waiting, now);
        waiting = next;
    }
}

void
Sm::drainResponses(Cycle now, Interconnect &icnt)
{
    while (icnt.hasResponse(id_, now))
        receiveResponse(icnt.popResponse(id_, now), now);
}

guard::SmHangInfo
Sm::hangInfo() const
{
    guard::SmHangInfo info;
    info.sm = id_;
    info.residentCtas = residentCtas_;
    info.activeWarps = activeWarps();
    for (const auto &cta : ctas_)
        if (cta.active)
            info.warpsAtBarrier += cta.warpsAtBarrier;
    for (const auto &warp : warps_)
        if (warp.active)
            info.inflightOps += warp.inflightOps;
    info.ldstQueued = ldstQ_.size();
    info.pendingOps = pendingOps_.size();
    info.mshrOccupancy = l1_.mshrOccupancy();
    info.reservedLines = l1_.reservedLines();

    unsigned listed = 0;
    for (size_t slot = 0; slot < warps_.size(); ++slot) {
        const WarpContext &warp = warps_[slot];
        if (!warp.active)
            continue;
        if (listed == 8) {
            info.stuckWarps += " ...";
            break;
        }
        if (!info.stuckWarps.empty())
            info.stuckWarps += ' ';
        info.stuckWarps += 'w' + std::to_string(slot);
        if (warp.atBarrier)
            info.stuckWarps += "@bar";
        else if (!warp.stack.done())
            info.stuckWarps += "@pc" + std::to_string(warp.stack.pc());
        ++listed;
    }
    if (crit)
        info.critSummary = crit->hangSummary();
    return info;
}

} // namespace gcl::sim
