#include "mem_partition.hh"

#include "util/logging.hh"

namespace gcl::sim
{

MemPartition::MemPartition(int id, const GpuConfig &config, SimStats &stats,
                           MemPools &pools)
    : id_(id), config_(config), stats_(stats.newShard()), pools_(pools),
      l2_("l2p" + std::to_string(id), config.l2, pools,
          &MemRequest::nextWaitingL2),
      dram_(config, pools)
{
    ropQ_.reserve(config.ropLatency + config.partQueueDepth);
}

void
MemPartition::setTrace(trace::StageSink *sink)
{
    traceSink_ = sink;
    dram_.traceSink = sink;
    dram_.traceUnit = static_cast<int16_t>(id_);
}

bool
MemPartition::serviceHead(Cycle now)
{
    const ReqHandle req_handle = ropQ_.peek();
    MemRequest &req = pools_.reqs.get(req_handle);

    // Injected DRAM refusal window (gcl::guard): the channel pretends to
    // be full, stalling the ROP head like real DRAM-queue backpressure.
    const bool dram_ok =
        dram_.canAccept() && !(fault && fault->dramRefused(now));

    if (req.isWrite) {
        // Writes that hit in the L2 are absorbed (a write-back cache would
        // coalesce them); a write miss installs the line (write-allocate
        // without a fetch) and forwards one burst to DRAM. No response is
        // generated either way.
        if (l2_.writeProbe(req.lineAddr)) {
            // Folded into the stats set at finalize; a string-map insert
            // here would race under the parallel tick.
            ++stats_.hot.l2WriteAbsorbed;
            ropQ_.pop();
            pools_.reqs.free(req_handle);
            return true;
        }
        if (!dram_ok)
            return false;
        l2_.installValid(req.lineAddr);
        dram_.push(req_handle, now);
        ropQ_.pop();
        return true;
    }

    if (req.isAtomic) {
        // Atomics are executed at the partition's ROP units; they bypass
        // the L2 tags and respond after the (already paid) ROP latency.
        req.tArriveL2 = now;
        req.tL2Done = now;
        req.level = ServiceLevel::L2;
        ++stats_.hot.l2Atomics;
        GCL_TRACE(traceSink_, trace::EventKind::ReqL2Done, now, req.id,
                  req.lineAddr, tracePc(req), static_cast<int16_t>(id_),
                  traceFlags(req));
        respPending_.push_back(req_handle);
        ropQ_.pop();
        return true;
    }

    // Read access to the L2 slice.
    const AccessOutcome outcome = l2_.access(req_handle, dram_ok);
    // A stalled head retries every cycle; dedupe identical fails so trace
    // volume scales with outcome changes, not stall lengths.
    if (GCL_TRACE_ACTIVE(traceSink_) &&
        req.traceLastFail != static_cast<uint8_t>(outcome)) {
        req.traceLastFail = static_cast<uint8_t>(outcome);
        traceSink_->emit(trace::EventKind::ReqL2Access, now, req.id,
                         req.lineAddr, tracePc(req),
                         static_cast<int16_t>(id_),
                         traceFlags(req) |
                             trace::packOutcome(
                                 static_cast<unsigned>(outcome)));
    }
    switch (outcome) {
      case AccessOutcome::Hit:
        req.tArriveL2 = now;
        req.tL2Done = now;
        req.level = ServiceLevel::L2;
        stats_.l2Access(id_, req.nonDet, false);
        respPending_.push_back(req_handle);
        ropQ_.pop();
        return true;
      case AccessOutcome::HitReserved:
        req.tArriveL2 = now;
        req.level = ServiceLevel::Dram;
        stats_.l2Access(id_, req.nonDet, true);
        ropQ_.pop();
        return true;
      case AccessOutcome::Miss:
        req.tArriveL2 = now;
        req.tDramEnq = now;
        req.level = ServiceLevel::Dram;
        stats_.l2Access(id_, req.nonDet, true);
        dram_.push(req_handle, now);
        ropQ_.pop();
        return true;
      case AccessOutcome::FailTag:
      case AccessOutcome::FailMshr:
      case AccessOutcome::FailIcnt:
        return false;
    }
    return false;
}

void
MemPartition::cycle(Cycle now, Interconnect &icnt)
{
    // 1. Accept at most one arrival from the interconnect into the ROP
    //    pipeline. The occupancy bound allows the pipeline to stay fully
    //    streamed (ropLatency requests in flight) plus a small mature
    //    backlog; beyond that the partition stops draining the
    //    interconnect, whose finite buffers push the congestion back to
    //    the L1s as reservation fails.
    if (ropQ_.size() < config_.ropLatency + config_.partQueueDepth &&
        icnt.hasRequest(id_, now)) {
        const ReqHandle req_handle = icnt.popRequest(id_, now);
        GCL_TRACE(traceSink_, trace::EventKind::ReqRopEnqueue, now,
                  pools_.reqs.get(req_handle).id,
                  pools_.reqs.get(req_handle).lineAddr,
                  tracePc(pools_.reqs.get(req_handle)),
                  static_cast<int16_t>(id_),
                  traceFlags(pools_.reqs.get(req_handle)));
        ropQ_.push(req_handle, now + config_.ropLatency);
    }

    // 2. Service the ROP head. On a resource stall the request stays at
    //    the head and the cycle is wasted (Fig 5's "wasted cycles in L2
    //    and DRAMs").
    if (ropQ_.headReady(now) && !serviceHead(now))
        stats_.partitionStall();

    // 3. Drain DRAM returns: fills release merged readers; drained write
    //    bursts end their request's life.
    while (dram_.headReady(now)) {
        const ReqHandle req_handle = dram_.pop();
        if (pools_.reqs.get(req_handle).isWrite) {
            pools_.reqs.free(req_handle);
            continue;
        }
        ReqHandle waiting = l2_.fill(pools_.reqs.get(req_handle).lineAddr);
        while (waiting != kNullHandle) {
            MemRequest &w = pools_.reqs.get(waiting);
            const ReqHandle next = w.nextWaitingL2;
            w.tL2Done = now;
            w.level = ServiceLevel::Dram;
            GCL_TRACE(traceSink_, trace::EventKind::ReqL2Done, now,
                      w.id, w.lineAddr, tracePc(w),
                      static_cast<int16_t>(id_), traceFlags(w));
            respPending_.push_back(waiting);
            waiting = next;
        }
    }

    // 4. Inject at most one response per cycle into the response network.
    if (!respPending_.empty() && icnt.canRespond(id_)) {
        icnt.respond(respPending_.front(), now, traceSink_);
        respPending_.pop_front();
    }
}

bool
MemPartition::idle() const
{
    return ropQ_.empty() && dram_.empty() && respPending_.empty();
}

guard::PartitionHangInfo
MemPartition::hangInfo() const
{
    guard::PartitionHangInfo info;
    info.partition = id_;
    info.ropQueued = ropQ_.size();
    info.dramQueued = dram_.size();
    info.respQueued = respPending_.size();
    info.mshrOccupancy = l2_.mshrOccupancy();
    info.reservedLines = l2_.reservedLines();
    return info;
}

} // namespace gcl::sim
