/**
 * @file
 * The machine description frontend: gpgpusim.config-style text files that
 * fully populate a GpuConfig, and the registry that resolves `--machine`
 * (or GCL_MACHINE) specs to them.
 *
 * Grammar (SNIPPETS.md Snippet 2 is the exemplar):
 *   - one option per line: `-key value`
 *   - `#` starts a comment (full-line or trailing); blank lines ignored
 *   - keys are exactly the `--sim-config` override vocabulary
 *     (GpuConfig::knownOverrideKeys), so a machine file and a CLI
 *     override can never disagree about what a knob is called
 *   - cache geometry is a `<nsets>:<bsize>:<assoc>[:<mshr>[:<merge>]]`
 *     string (`l1_cache` / `l2_cache`), per-opcode-class timing a
 *     `<latency>:<initiation>` pair (`op_int_alu` ... `op_sfu`)
 *
 * An unknown key is fatal (SimError{Kind::Config}) and the error lists the
 * full vocabulary, mirroring applyOverride: a typo in a machine file must
 * never silently run a different machine.
 *
 * Precedence: compiled defaults < machine file < `--sim-config` overrides
 * (the bench runner layers the latter on the resolved machine).
 *
 * The committed zoo lives in configs/: c2050 (byte-equivalent to the
 * compiled defaults), hbm-sectored, modern-core, and tiny (a 2-SM /
 * 1-partition machine the tests use to prove nothing assumes Table II's
 * unit counts).
 */

#ifndef GCL_SIM_MACHINE_HH
#define GCL_SIM_MACHINE_HH

#include <string>
#include <vector>

#include "config.hh"

namespace gcl::sim
{

/**
 * Parse machine-file text into a config (compiled defaults underneath).
 * @p origin names the source in errors ("configs/c2050.config:12: ...").
 * A file that never sets `machine_name` gets @p fallback_name.
 */
GpuConfig parseMachineText(const std::string &text,
                           const std::string &origin,
                           const std::string &fallback_name);

/**
 * Load and parse one machine file. The fallback machine name is the file
 * stem ("configs/tiny.config" -> "tiny").
 */
GpuConfig loadMachineFile(const std::string &path);

/**
 * Canonical machine-file serialization of the machine-description fields
 * (identity, core organization, execution timing, caches, interconnect,
 * DRAM). Experiment knobs — ablations, run control, host-side switches —
 * are deliberately omitted: a machine file describes a machine, not an
 * experiment. parseMachineText(serializeMachine(c)) reproduces every
 * serialized field, which tests/test_machine.cc holds as the round-trip
 * invariant.
 */
std::string serializeMachine(const GpuConfig &config);

/** Resolves `--machine` specs to machine files. */
class MachineRegistry
{
  public:
    /**
     * Resolve @p spec to a fully-populated config:
     *   - ""                -> the compiled defaults (the c2050 machine)
     *   - an existing path  -> that file
     *   - a bare name       -> `<name>.config` under $GCL_MACHINE_DIR
     *                          (when set), then ./configs
     * Unresolvable specs raise SimError{Kind::Config} listing the known
     * machine names and the directories searched.
     */
    static GpuConfig resolve(const std::string &spec);

    /**
     * The path resolve() would load for @p spec, without parsing it;
     * empty for the built-in defaults. Raises like resolve() when the
     * spec matches nothing.
     */
    static std::string resolvePath(const std::string &spec);

    /** Machine names available in the search directories, sorted. */
    static std::vector<std::string> knownMachines();

    /** Human-readable search-path description for errors and --help. */
    static std::string searchDescription();
};

} // namespace gcl::sim

#endif // GCL_SIM_MACHINE_HH
