#include "interconnect.hh"

#include <algorithm>

#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

Interconnect::Interconnect(const GpuConfig &config, MemPools &pools)
    : config_(config), pools_(pools),
      injectQ_(config.numSms),
      toPart_(config.numPartitions),
      respQ_(config.numPartitions),
      toSm_(config.numSms),
      popsThisCycle_(config.numPartitions, 0),
      smUsed_(config.numSms, 0),
      partUsed_(config.numPartitions, 0)
{
    // Pre-size the delay rings to their credit-limited worst case so they
    // never regrow mid-run.
    for (auto &q : toPart_)
        q.reserve(config.partQueueDepth);
    for (auto &q : toSm_)
        q.reserve(config.numPartitions * config.icntRespQueueDepth +
                  config.icntLatency);
}

bool
Interconnect::canInject(int sm) const
{
    return injectQ_[static_cast<size_t>(sm)].size() <
           config_.icntInjectQueueDepth;
}

void
Interconnect::inject(ReqHandle req, Cycle now, trace::StageSink *sink)
{
    MemRequest &r = pools_.reqs.get(req);
    gcl_sim_check(canInject(r.smId), "icnt", now,
                  "inject into a full queue");
    r.tInjected = now;
    GCL_TRACE(sink, trace::EventKind::ReqInject, now, r.id,
              r.lineAddr, tracePc(r),
              static_cast<int16_t>(r.smId), traceFlags(r));
    injectQ_[static_cast<size_t>(r.smId)].push_back(req);
}

bool
Interconnect::hasRequest(int part, Cycle now) const
{
    return toPart_[static_cast<size_t>(part)].headReady(now);
}

ReqHandle
Interconnect::popRequest(int part, Cycle now)
{
    gcl_sim_check(hasRequest(part, now), "icnt", now,
                  "popRequest with none ready");
    ++popsThisCycle_[static_cast<size_t>(part)];
    return toPart_[static_cast<size_t>(part)].pop();
}

bool
Interconnect::canRespond(int part) const
{
    return respQ_[static_cast<size_t>(part)].size() <
           config_.icntRespQueueDepth;
}

void
Interconnect::respond(ReqHandle req, Cycle now, trace::StageSink *sink)
{
    MemRequest &r = pools_.reqs.get(req);
    gcl_sim_check(canRespond(r.partition), "icnt", now,
                  "respond into a full queue");
    r.tRespDepart = now;
    GCL_TRACE(sink, trace::EventKind::ReqRespDepart, now, r.id,
              r.lineAddr, tracePc(r),
              static_cast<int16_t>(r.partition), traceFlags(r));
    respQ_[static_cast<size_t>(r.partition)].push_back(req);
}

bool
Interconnect::hasResponse(int sm, Cycle now) const
{
    return toSm_[static_cast<size_t>(sm)].headReady(now);
}

ReqHandle
Interconnect::popResponse(int sm, Cycle now)
{
    gcl_sim_check(hasResponse(sm, now), "icnt", now,
                  "popResponse with none ready");
    return toSm_[static_cast<size_t>(sm)].pop();
}

void
Interconnect::requestArbitration(Cycle now, bool add_back_pops)
{
    // Request side: every partition accepts at most one flit, every SM
    // transmits at most one flit, round-robin over SMs for fairness.
    // The round-robin pointers advance whether or not the loops run: an
    // idle cycle must leave arbitration state exactly as if the loop had
    // executed and matched nothing.
    const unsigned num_sms = config_.numSms;

    size_t inject_total = 0;
    for (const auto &q : injectQ_)
        inject_total += q.size();

    if (inject_total != 0) {
        std::fill(smUsed_.begin(), smUsed_.end(), 0);
        std::fill(partUsed_.begin(), partUsed_.end(), 0);
        for (unsigned i = 0; i < num_sms; ++i) {
            const unsigned sm = (reqRrSm_ + i) % num_sms;
            auto &q = injectQ_[sm];
            if (q.empty() || smUsed_[sm])
                continue;
            const int part = pools_.reqs.get(q.front()).partition;
            if (partUsed_[static_cast<size_t>(part)])
                continue;
            // Finite partition input buffers: without a credit the flit
            // stays in the SM's injection queue, which eventually surfaces
            // at the L1 as a reservation fail by interconnection
            // (Section VI). When arbitrating after the partitions ran
            // (commitCycle), add this cycle's pops back: the serial
            // arbitration point precedes them.
            const size_t occupancy =
                toPart_[static_cast<size_t>(part)].size() +
                (add_back_pops ? popsThisCycle_[static_cast<size_t>(part)]
                               : 0);
            if (occupancy >= config_.partQueueDepth)
                continue;
            partUsed_[static_cast<size_t>(part)] = 1;
            smUsed_[sm] = 1;
            toPart_[static_cast<size_t>(part)].push(
                q.front(), now + config_.icntLatency);
            q.pop_front();
        }
    }
    reqRrSm_ = (reqRrSm_ + 1) % num_sms;
}

void
Interconnect::responseArbitration(Cycle now)
{
    // Response side, symmetric, round-robin over partitions.
    const unsigned num_parts = config_.numPartitions;

    size_t resp_total = 0;
    for (const auto &q : respQ_)
        resp_total += q.size();

    if (resp_total != 0) {
        std::fill(smUsed_.begin(), smUsed_.end(), 0);
        std::fill(partUsed_.begin(), partUsed_.end(), 0);
        for (unsigned i = 0; i < num_parts; ++i) {
            const unsigned part = (respRrPart_ + i) % num_parts;
            auto &q = respQ_[part];
            if (q.empty() || partUsed_[part])
                continue;
            const int sm = pools_.reqs.get(q.front()).smId;
            if (smUsed_[static_cast<size_t>(sm)])
                continue;
            smUsed_[static_cast<size_t>(sm)] = 1;
            partUsed_[part] = 1;
            toSm_[static_cast<size_t>(sm)].push(q.front(),
                                                now + config_.icntLatency);
            q.pop_front();
        }
    }
    respRrPart_ = (respRrPart_ + 1) % num_parts;
}

void
Interconnect::cycle(Cycle now)
{
    std::fill(popsThisCycle_.begin(), popsThisCycle_.end(), 0);
    requestArbitration(now, /*add_back_pops=*/false);
    responseArbitration(now);
}

void
Interconnect::beginCycle(Cycle now)
{
    std::fill(popsThisCycle_.begin(), popsThisCycle_.end(), 0);
    responseArbitration(now);
}

void
Interconnect::commitCycle(Cycle now)
{
    requestArbitration(now, /*add_back_pops=*/true);
}

size_t
Interconnect::reqQueued() const
{
    size_t total = 0;
    for (const auto &q : injectQ_)
        total += q.size();
    for (const auto &q : toPart_)
        total += q.size();
    return total;
}

size_t
Interconnect::respQueued() const
{
    size_t total = 0;
    for (const auto &q : respQ_)
        total += q.size();
    for (const auto &q : toSm_)
        total += q.size();
    return total;
}

bool
Interconnect::anyResponsesInFlight() const
{
    for (const auto &q : toSm_)
        if (!q.empty())
            return true;
    return false;
}

bool
Interconnect::idle() const
{
    return reqQueued() == 0 && respQueued() == 0;
}

} // namespace gcl::sim
