#include "interconnect.hh"

#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

Interconnect::Interconnect(const GpuConfig &config)
    : config_(config),
      injectQ_(config.numSms),
      toPart_(config.numPartitions),
      respQ_(config.numPartitions),
      toSm_(config.numSms)
{
}

bool
Interconnect::canInject(int sm) const
{
    return injectQ_[static_cast<size_t>(sm)].size() <
           config_.icntInjectQueueDepth;
}

void
Interconnect::inject(const MemRequestPtr &req, Cycle now)
{
    gcl_sim_check(canInject(req->smId), "icnt", now,
                  "inject into a full queue");
    req->tInjected = now;
    GCL_TRACE(traceSink, trace::EventKind::ReqInject, now, req->id,
              req->lineAddr, tracePc(*req),
              static_cast<int16_t>(req->smId), traceFlags(*req));
    injectQ_[static_cast<size_t>(req->smId)].push_back(req);
}

bool
Interconnect::hasRequest(int part, Cycle now) const
{
    return toPart_[static_cast<size_t>(part)].headReady(now);
}

MemRequestPtr
Interconnect::popRequest(int part, Cycle now)
{
    gcl_sim_check(hasRequest(part, now), "icnt", now,
                  "popRequest with none ready");
    return toPart_[static_cast<size_t>(part)].pop();
}

bool
Interconnect::canRespond(int part) const
{
    return respQ_[static_cast<size_t>(part)].size() <
           config_.icntRespQueueDepth;
}

void
Interconnect::respond(const MemRequestPtr &req, Cycle now)
{
    gcl_sim_check(canRespond(req->partition), "icnt", now,
                  "respond into a full queue");
    req->tRespDepart = now;
    GCL_TRACE(traceSink, trace::EventKind::ReqRespDepart, now, req->id,
              req->lineAddr, tracePc(*req),
              static_cast<int16_t>(req->partition), traceFlags(*req));
    respQ_[static_cast<size_t>(req->partition)].push_back(req);
}

bool
Interconnect::hasResponse(int sm, Cycle now) const
{
    return toSm_[static_cast<size_t>(sm)].headReady(now);
}

MemRequestPtr
Interconnect::popResponse(int sm, Cycle now)
{
    gcl_sim_check(hasResponse(sm, now), "icnt", now,
                  "popResponse with none ready");
    return toSm_[static_cast<size_t>(sm)].pop();
}

void
Interconnect::cycle(Cycle now)
{
    // Request side: every partition accepts at most one flit, every SM
    // transmits at most one flit, round-robin over SMs for fairness.
    const unsigned num_sms = config_.numSms;
    const unsigned num_parts = config_.numPartitions;

    std::vector<bool> sm_used(num_sms, false);
    std::vector<bool> part_used(num_parts, false);
    for (unsigned i = 0; i < num_sms; ++i) {
        const unsigned sm = (reqRrSm_ + i) % num_sms;
        auto &q = injectQ_[sm];
        if (q.empty() || sm_used[sm])
            continue;
        const int part = q.front()->partition;
        if (part_used[static_cast<size_t>(part)])
            continue;
        // Finite partition input buffers: without a credit the flit stays
        // in the SM's injection queue, which eventually surfaces at the L1
        // as a reservation fail by interconnection (Section VI).
        if (toPart_[static_cast<size_t>(part)].size() >=
            config_.partQueueDepth)
            continue;
        part_used[static_cast<size_t>(part)] = true;
        sm_used[sm] = true;
        toPart_[static_cast<size_t>(part)].push(q.front(),
                                                now + config_.icntLatency);
        q.pop_front();
    }
    reqRrSm_ = (reqRrSm_ + 1) % num_sms;

    // Response side, symmetric, round-robin over partitions.
    std::vector<bool> part_tx(num_parts, false);
    std::vector<bool> sm_rx(num_sms, false);
    for (unsigned i = 0; i < num_parts; ++i) {
        const unsigned part = (respRrPart_ + i) % num_parts;
        auto &q = respQ_[part];
        if (q.empty() || part_tx[part])
            continue;
        const int sm = q.front()->smId;
        if (sm_rx[static_cast<size_t>(sm)])
            continue;
        sm_rx[static_cast<size_t>(sm)] = true;
        part_tx[part] = true;
        toSm_[static_cast<size_t>(sm)].push(q.front(),
                                            now + config_.icntLatency);
        q.pop_front();
    }
    respRrPart_ = (respRrPart_ + 1) % num_parts;
}

size_t
Interconnect::reqQueued() const
{
    size_t total = 0;
    for (const auto &q : injectQ_)
        total += q.size();
    for (const auto &q : toPart_)
        total += q.size();
    return total;
}

size_t
Interconnect::respQueued() const
{
    size_t total = 0;
    for (const auto &q : respQ_)
        total += q.size();
    for (const auto &q : toSm_)
        total += q.size();
    return total;
}

bool
Interconnect::idle() const
{
    for (const auto &q : injectQ_)
        if (!q.empty())
            return false;
    for (const auto &q : toPart_)
        if (!q.empty())
            return false;
    for (const auto &q : respQ_)
        if (!q.empty())
            return false;
    for (const auto &q : toSm_)
        if (!q.empty())
            return false;
    return true;
}

} // namespace gcl::sim
