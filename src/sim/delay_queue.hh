/**
 * @file
 * Fixed-latency in-flight queue used by the interconnect model.
 *
 * Backed by a growable power-of-two ring buffer instead of a deque: a
 * deque allocates/frees node blocks as elements churn through, while the
 * ring reaches steady state after a handful of pushes and then never
 * touches the allocator again. Elements are moved out on pop.
 */

#ifndef GCL_SIM_DELAY_QUEUE_HH
#define GCL_SIM_DELAY_QUEUE_HH

#include <utility>
#include <vector>

#include "config.hh"

namespace gcl::sim
{

/** FIFO whose elements only become visible @p latency cycles after push. */
template <typename T>
class DelayQueue
{
  public:
    DelayQueue() { entries_.resize(kInitialCapacity); }

    /** Pre-size the ring so a known worst-case depth never regrows. */
    void
    reserve(size_t capacity)
    {
        size_t want = kInitialCapacity;
        while (want < capacity)
            want *= 2;
        if (want > entries_.size())
            grow(want);
    }

    void
    push(T item, Cycle ready_at)
    {
        if (size_ == entries_.size())
            grow(entries_.size() * 2);
        Entry &entry = entries_[(head_ + size_) & (entries_.size() - 1)];
        entry.item = std::move(item);
        entry.readyAt = ready_at;
        ++size_;
    }

    /** True when the head element is ready at @p now. */
    bool
    headReady(Cycle now) const
    {
        return size_ != 0 && entries_[head_].readyAt <= now;
    }

    /** Read the head element without removing it. */
    const T &
    peek() const
    {
        return entries_[head_].item;
    }

    /** Pop the head (moved out); only call when headReady(). */
    T
    pop()
    {
        T item = std::move(entries_[head_].item);
        head_ = (head_ + 1) & (entries_.size() - 1);
        --size_;
        return item;
    }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

  private:
    struct Entry
    {
        T item{};
        Cycle readyAt = 0;
    };

    static constexpr size_t kInitialCapacity = 16;  //!< power of two

    void
    grow(size_t capacity)
    {
        std::vector<Entry> bigger(capacity);
        for (size_t i = 0; i < size_; ++i)
            bigger[i] = std::move(entries_[(head_ + i) &
                                           (entries_.size() - 1)]);
        entries_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<Entry> entries_;  //!< power-of-two ring
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace gcl::sim

#endif // GCL_SIM_DELAY_QUEUE_HH
