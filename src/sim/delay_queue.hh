/**
 * @file
 * Fixed-latency in-flight queue used by the interconnect model.
 */

#ifndef GCL_SIM_DELAY_QUEUE_HH
#define GCL_SIM_DELAY_QUEUE_HH

#include <deque>

#include "config.hh"

namespace gcl::sim
{

/** FIFO whose elements only become visible @p latency cycles after push. */
template <typename T>
class DelayQueue
{
  public:
    void
    push(T item, Cycle ready_at)
    {
        entries_.push_back({std::move(item), ready_at});
    }

    /** True when the head element is ready at @p now. */
    bool
    headReady(Cycle now) const
    {
        return !entries_.empty() && entries_.front().readyAt <= now;
    }

    /** Read the head element without removing it. */
    const T &
    peek() const
    {
        return entries_.front().item;
    }

    /** Pop the head; only call when headReady(). */
    T
    pop()
    {
        T item = std::move(entries_.front().item);
        entries_.pop_front();
        return item;
    }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        T item;
        Cycle readyAt;
    };

    std::deque<Entry> entries_;
};

} // namespace gcl::sim

#endif // GCL_SIM_DELAY_QUEUE_HH
