/**
 * @file
 * SIMT reconvergence stack with immediate-postdominator reconvergence,
 * the scheme used by GPGPU-Sim and described in Section III of the paper.
 */

#ifndef GCL_SIM_SIMT_STACK_HH
#define GCL_SIM_SIMT_STACK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcl::sim
{

/** Lane mask; bit i = lane i active. Warp width is at most 32. */
using LaneMask = uint32_t;

/**
 * Per-warp SIMT stack.
 *
 * The stack's top entry supplies the warp's current pc and active mask.
 * Divergent branches push taken/not-taken entries whose reconvergence pc is
 * the branch's immediate postdominator; when the top entry's pc reaches its
 * reconvergence pc the entry pops and the masks merge.
 */
class SimtStack
{
  public:
    /**
     * Reset for a new warp.
     * @param initial_mask lanes holding live threads
     * @param end_pc one-past-the-last pc, the root reconvergence sentinel
     */
    void reset(LaneMask initial_mask, size_t end_pc);

    bool done() const { return stack_.empty(); }

    size_t pc() const;
    LaneMask activeMask() const;

    /** Advance past a non-branch instruction at the current pc. */
    void advance();

    /**
     * Resolve a (possibly divergent) branch.
     * @param taken_mask lanes (subset of activeMask()) taking the branch
     * @param target_pc branch destination
     * @param reconv_pc the branch's ipdom reconvergence pc
     */
    void branch(LaneMask taken_mask, size_t target_pc, size_t reconv_pc);

    /** Retire lanes that executed exit; pops emptied entries. */
    void exitLanes(LaneMask exiting);

    size_t depth() const { return stack_.size(); }

  private:
    struct Entry
    {
        LaneMask mask;
        size_t pc;
        size_t rpc;  //!< reconvergence pc
    };

    /** Pop entries whose pc reached their reconvergence point. */
    void reconverge();

    std::vector<Entry> stack_;
};

} // namespace gcl::sim

#endif // GCL_SIM_SIMT_STACK_HH
