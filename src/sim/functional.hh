/**
 * @file
 * Functional (architectural) execution of one warp instruction.
 *
 * The executor updates register and memory state immediately at issue time
 * and reports to the timing model what kind of latency the instruction
 * incurs (StepInfo). See DESIGN.md decision 1: timing-directed functional
 * execution.
 *
 * Deterministic ticking (sim_threads): when a staging buffer is attached
 * (setStaging), global-memory mutations — stores and atomics — are not
 * applied at issue but captured as PendingAccess records; the Gpu applies
 * them at the end of the cycle in SM-id order (commitStaged). Loads read
 * the pre-cycle memory image, which is frozen during the compute phase, so
 * concurrent SMs see one consistent snapshot regardless of thread count.
 * Atomics are staged as *operations* (op, operands, destination register),
 * not precomputed values: the read-modify-write runs at commit against
 * committed memory, so same-cycle atomics from different SMs serialize in
 * SM-id/lane order and never lose updates. Shared-memory and register
 * traffic stays immediate — it is SM-private.
 */

#ifndef GCL_SIM_FUNCTIONAL_HH
#define GCL_SIM_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "memory.hh"
#include "ptx/instruction.hh"
#include "warp.hh"

namespace gcl::sim
{

/** What the timing model needs to know about an executed instruction. */
struct StepInfo
{
    enum class Kind : uint8_t
    {
        Alu,      //!< SP-pipe op, fixed latency
        Sfu,      //!< SFU-pipe op
        Memory,   //!< LD/ST-pipe op with per-lane addresses
        Branch,   //!< SIMT stack already needs updating (taken mask below)
        Barrier,
        Exit,
        Nop,
    };

    Kind kind = Kind::Nop;

    // --- Memory ops ---
    ptx::MemSpace space = ptx::MemSpace::Global;
    bool isLoad = false;
    bool isStore = false;
    bool isAtomic = false;
    unsigned accessSize = 0;
    /** (lane, byte address) for every participating lane. */
    std::vector<std::pair<unsigned, uint64_t>> addrs;

    // --- Branches ---
    LaneMask takenMask = 0;
    size_t targetPc = 0;
};

/**
 * One deferred global-memory mutation, captured at issue and applied at
 * the end of the cycle (WarpExecutor::commitStaged). Stores carry their
 * value in @p a; atomics carry both operands plus the operation, and the
 * destination register slot that receives the old value at commit. The
 * register pointer stays valid: a warp's register vector is sized once at
 * CTA launch and the scoreboard blocks readers of the destination until
 * the op's writeback, long after commit.
 */
struct PendingAccess
{
    uint64_t addr = 0;
    uint64_t a = 0;              //!< store value / first atomic operand
    uint64_t b = 0;              //!< second atomic operand
    uint64_t *oldDst = nullptr;  //!< atomic old-value register, else null
    unsigned size = 0;
    bool isAtomic = false;
    ptx::AtomOp atomOp = ptx::AtomOp::Add;
    ptx::DataType type = ptx::DataType::U32;
};

/**
 * Stateless warp-level interpreter bound to a device's global memory.
 *
 * All lanes of the warp execute the instruction under @p active; guarded
 * instructions additionally evaluate their predicate per lane.
 */
class WarpExecutor
{
  public:
    explicit WarpExecutor(GlobalMemory &gmem, unsigned warp_size)
        : gmem_(gmem), warpSize_(warp_size)
    {}

    /**
     * Execute the instruction at @p pc for @p warp.
     *
     * Register state (and memory, for stores/atomics/loads) is updated
     * in place. The SIMT stack is NOT touched; the caller applies
     * Branch/Exit/advance using the returned StepInfo.
     */
    StepInfo step(const LaunchContext &launch, CtaContext &cta,
                  WarpContext &warp, size_t pc, LaneMask active);

    /** Value of a special register for the given lane. */
    uint64_t specialValue(const LaunchContext &launch, const CtaContext &cta,
                          const WarpContext &warp, unsigned lane,
                          ptx::SpecialReg sreg) const;

    /**
     * Defer global stores/atomics into @p staging instead of applying them
     * at issue (see file comment). Null restores immediate application.
     */
    void setStaging(std::vector<PendingAccess> *staging)
    {
        staging_ = staging;
    }

    /** Apply and clear @p staged, in staged (= lane/program) order. */
    void commitStaged(std::vector<PendingAccess> &staged);

  private:
    /** Lanes of @p active whose guard predicate passes. */
    LaneMask guardMask(const ptx::Instruction &inst, const WarpContext &warp,
                       LaneMask active) const;

    static uint64_t aluCompute(const ptx::Instruction &inst, uint64_t a,
                               uint64_t b, uint64_t c);
    static uint64_t convert(ptx::DataType to, ptx::DataType from,
                            uint64_t bits);
    static bool compare(ptx::CmpOp cmp, ptx::DataType type, uint64_t a,
                        uint64_t b);
    static uint64_t atomicApply(ptx::AtomOp op, ptx::DataType type,
                                uint64_t old_v, uint64_t a, uint64_t b);

    GlobalMemory &gmem_;
    unsigned warpSize_;
    std::vector<PendingAccess> *staging_ = nullptr;
};

} // namespace gcl::sim

#endif // GCL_SIM_FUNCTIONAL_HH
