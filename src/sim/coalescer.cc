#include "coalescer.hh"

#include <algorithm>

#include "util/bitutil.hh"
#include "guard/sim_error.hh"
#include "util/logging.hh"

namespace gcl::sim
{

std::vector<uint64_t>
coalesce(const std::vector<std::pair<unsigned, uint64_t>> &addrs,
         unsigned access_size, unsigned line_bytes)
{
    gcl_sim_check(isPowerOf2(line_bytes), "coalescer", 0,
                  "line size must be a power of two, got ", line_bytes);

    std::vector<uint64_t> lines;
    lines.reserve(4);
    for (const auto &[lane, addr] : addrs) {
        (void)lane;
        // An access may straddle a line when misaligned; IR accesses are
        // naturally aligned so first and last byte share a line.
        const uint64_t first = roundDown(addr, line_bytes);
        const uint64_t last = roundDown(addr + access_size - 1, line_bytes);
        for (uint64_t line = first; line <= last; line += line_bytes)
            if (std::find(lines.begin(), lines.end(), line) == lines.end())
                lines.push_back(line);
    }
    return lines;
}

std::vector<uint64_t>
coalesce(const std::vector<std::pair<unsigned, uint64_t>> &addrs,
         unsigned access_size, unsigned line_bytes, trace::StageSink *sink,
         Cycle now, uint32_t pc, int sm_id, bool non_det)
{
    std::vector<uint64_t> lines = coalesce(addrs, access_size, line_bytes);
    GCL_TRACE(sink, trace::EventKind::Coalesce, now, 0,
              (uint64_t{addrs.size()} << 32) | lines.size(), pc,
              static_cast<int16_t>(sm_id),
              non_det ? trace::kFlagNonDet : 0);
    return lines;
}

} // namespace gcl::sim
