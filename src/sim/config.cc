#include "config.hh"

#include <algorithm>
#include <sstream>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace gcl::sim
{

unsigned
GpuConfig::ctasPerSm(unsigned threads_per_cta,
                     uint32_t shared_bytes_per_cta) const
{
    gcl_assert(threads_per_cta > 0 && threads_per_cta <= maxThreadsPerSm,
               "CTA size ", threads_per_cta, " unsupported");
    unsigned limit = std::min(maxCtasPerSm,
                              maxThreadsPerSm / threads_per_cta);
    if (shared_bytes_per_cta > 0) {
        gcl_assert(shared_bytes_per_cta <= sharedMemPerSm,
                   "CTA shared memory exceeds the SM's capacity");
        limit = std::min(limit, sharedMemPerSm / shared_bytes_per_cta);
    }
    return std::max(1u, limit);
}

std::string
GpuConfig::describe() const
{
    std::ostringstream oss;
    oss << "Core       " << numSms << " SMs, " << warpSize
        << " SIMT width, " << maxThreadsPerSm << " threads/SM, "
        << maxCtasPerSm << " CTAs/SM, " << numSchedulers
        << " schedulers ("
        << (warpSched == WarpSchedPolicy::LooseRoundRobin ? "LRR" : "GTO")
        << ")\n";
    oss << "SharedMem  " << sharedMemPerSm / 1024 << "KB/SM, latency "
        << sharedMemLatency << "\n";
    oss << "L1D cache  " << l1.sizeBytes / 1024 << "KB, " << l1.lineBytes
        << "B line, " << l1.assoc << "-way, " << l1.mshrEntries
        << " MSHR entries, hit latency " << l1HitLatency << "\n";
    oss << "L2D cache  unified "
        << numPartitions * l2.sizeBytes / 1024 << "KB in " << numPartitions
        << " partitions, " << l2.lineBytes << "B line, " << l2.assoc
        << "-way, " << l2.mshrEntries << " MSHR entries/partition\n";
    oss << "ROP        latency " << ropLatency << "\n";
    oss << "Icnt       latency " << icntLatency << ", inject queue "
        << icntInjectQueueDepth << ", response queue "
        << icntRespQueueDepth << ", partition credit "
        << partQueueDepth << "\n";
    oss << "DRAM       latency " << dramLatency << ", burst "
        << dramBurstCycles << " cycles, queue " << dramQueueDepth << "\n";
    oss << "CTA sched  "
        << (ctaSched == CtaSchedPolicy::RoundRobin ? "round-robin"
                                                   : "clustered")
        << (ctaSched == CtaSchedPolicy::Clustered
                ? " (batch " + std::to_string(ctaClusterSize) + ")"
                : std::string())
        << "\n";
    if (smsPerL2Cluster)
        oss << "Semi-L2    " << smsPerL2Cluster << " SMs per L2 cluster\n";
    if (nondetSplitRequests)
        oss << "WarpSplit  " << nondetSplitRequests
            << " requests per non-deterministic sub-warp\n";
    return oss.str();
}

uint64_t
GpuConfig::fingerprint() const
{
    // FNV-1a over the numeric fields; any change invalidates cached runs.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(numSms); mix(warpSize); mix(maxThreadsPerSm); mix(maxCtasPerSm);
    mix(sharedMemPerSm); mix(numSchedulers);
    mix(static_cast<uint64_t>(warpSched));
    mix(spLatency); mix(sfuLatency); mix(sfuInitiationInterval);
    mix(sharedMemLatency); mix(l1HitLatency); mix(ldstQueueDepth);
    mix(l1.sizeBytes); mix(l1.lineBytes); mix(l1.assoc);
    mix(l1.mshrEntries); mix(l1.mshrMaxMerge);
    mix(numPartitions);
    mix(l2.sizeBytes); mix(l2.lineBytes); mix(l2.assoc);
    mix(l2.mshrEntries); mix(l2.mshrMaxMerge);
    mix(ropLatency); mix(icntLatency); mix(icntInjectQueueDepth);
    mix(icntRespQueueDepth); mix(partQueueDepth);
    mix(dramLatency); mix(dramBurstCycles); mix(dramQueueDepth);
    mix(static_cast<uint64_t>(ctaSched)); mix(ctaClusterSize);
    mix(smsPerL2Cluster); mix(nondetSplitRequests);
    return h;
}

} // namespace gcl::sim
