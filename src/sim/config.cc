#include "config.hh"

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

#include "guard/fault.hh"
#include "guard/sim_error.hh"
#include "ptx/instruction.hh"
#include "util/bitutil.hh"
#include "util/logging.hh"

namespace gcl::sim
{

const char *
toString(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "int_alu";
      case OpClass::IntMul: return "int_mul";
      case OpClass::IntDiv: return "int_div";
      case OpClass::FpAlu: return "fp_alu";
      case OpClass::FpMul: return "fp_mul";
      case OpClass::FpDiv: return "fp_div";
      case OpClass::Sfu: return "sfu";
      case OpClass::NumClasses: break;
    }
    return "?";
}

OpClass
opClassFor(ptx::Opcode op, ptx::DataType type)
{
    const bool fp = ptx::isFloat(type);
    switch (op) {
      case ptx::Opcode::Rcp:
      case ptx::Opcode::Sqrt:
      case ptx::Opcode::Rsqrt:
      case ptx::Opcode::Sin:
      case ptx::Opcode::Cos:
      case ptx::Opcode::Ex2:
      case ptx::Opcode::Lg2:
        return OpClass::Sfu;
      case ptx::Opcode::Mul:
      case ptx::Opcode::MulHi:
      case ptx::Opcode::Mad:
        return fp ? OpClass::FpMul : OpClass::IntMul;
      case ptx::Opcode::Div:
      case ptx::Opcode::Rem:
        return fp ? OpClass::FpDiv : OpClass::IntDiv;
      default:
        return fp ? OpClass::FpAlu : OpClass::IntAlu;
    }
}

unsigned
GpuConfig::ctasPerSm(unsigned threads_per_cta,
                     uint32_t shared_bytes_per_cta) const
{
    if (threads_per_cta == 0 || threads_per_cta > maxThreadsPerSm)
        gcl_sim_error(SimError::Kind::Workload, "config", 0, "CTA size ",
                      threads_per_cta, " unsupported (max ",
                      maxThreadsPerSm, " threads/SM)");
    unsigned limit = std::min(maxCtasPerSm,
                              maxThreadsPerSm / threads_per_cta);
    if (shared_bytes_per_cta > 0) {
        if (shared_bytes_per_cta > sharedMemPerSm)
            gcl_sim_error(SimError::Kind::Workload, "config", 0,
                          "CTA shared memory (", shared_bytes_per_cta,
                          "B) exceeds the SM's capacity (", sharedMemPerSm,
                          "B)");
        limit = std::min(limit, sharedMemPerSm / shared_bytes_per_cta);
    }
    return std::max(1u, limit);
}

// ---------------------------------------------------------------------
// key=value overrides
// ---------------------------------------------------------------------

namespace
{

/** One overridable config field: name + value applier. */
struct OverrideKey
{
    std::string name;
    std::function<void(GpuConfig &, const std::string &)> apply;
};

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const std::string &expected)
{
    gcl_sim_error(SimError::Kind::Config, "config", 0, "config key '", key,
                  "': '", value, "' is not ", expected);
}

uint64_t
parseUnsigned(const std::string &key, const std::string &value)
{
    if (value.empty())
        badValue(key, value, "a non-negative integer");
    uint64_t out = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            badValue(key, value, "a non-negative integer");
        out = out * 10 + static_cast<uint64_t>(c - '0');
    }
    return out;
}

template <typename T>
OverrideKey
numericKey(const char *name, T GpuConfig::*field)
{
    return {name, [name, field](GpuConfig &config, const std::string &v) {
                config.*field = static_cast<T>(parseUnsigned(name, v));
            }};
}

template <typename T>
OverrideKey
cacheKey(const char *name, CacheConfig GpuConfig::*cache,
         T CacheConfig::*field)
{
    return {name,
            [name, cache, field](GpuConfig &config, const std::string &v) {
                config.*cache.*field = static_cast<T>(parseUnsigned(name, v));
            }};
}

/** Split @p value on ':' into exactly @p min..@p max numeric fields. */
std::vector<uint64_t>
parseColonFields(const std::string &key, const std::string &value,
                 size_t min, size_t max, const char *expected)
{
    std::vector<uint64_t> out;
    std::istringstream items(value);
    std::string item;
    while (std::getline(items, item, ':')) {
        if (out.size() == max)
            badValue(key, value, expected);
        if (item.empty())
            badValue(key, value, expected);
        for (char c : item)
            if (c < '0' || c > '9')
                badValue(key, value, expected);
        out.push_back(parseUnsigned(key, item));
    }
    if (out.size() < min)
        badValue(key, value, expected);
    return out;
}

/**
 * Cache geometry string, gpgpusim.config style:
 * `<nsets>:<bsize>:<assoc>[:<mshr>[:<merge>]]`. Omitted MSHR fields keep
 * the target cache's current values, so a machine file can give just the
 * geometry and inherit the default miss-handling capacity.
 */
OverrideKey
geometryKey(const char *name, CacheConfig GpuConfig::*cache)
{
    return {name, [name, cache](GpuConfig &config, const std::string &v) {
                const auto f = parseColonFields(
                    name, v, 3, 5,
                    "a <nsets>:<bsize>:<assoc>[:<mshr>[:<merge>]] "
                    "geometry");
                CacheConfig &c = config.*cache;
                const uint64_t nsets = f[0], bsize = f[1], assoc = f[2];
                if (nsets == 0 || bsize == 0 || assoc == 0)
                    badValue(name, v, "a geometry with non-zero fields");
                c.sizeBytes = static_cast<uint32_t>(nsets * bsize * assoc);
                c.lineBytes = static_cast<uint32_t>(bsize);
                c.assoc = static_cast<uint32_t>(assoc);
                if (f.size() > 3)
                    c.mshrEntries = static_cast<uint32_t>(f[3]);
                if (f.size() > 4)
                    c.mshrMaxMerge = static_cast<uint32_t>(f[4]);
            }};
}

/** Per-opcode-class timing: `<latency>:<initiation>`. */
OverrideKey
opTimingKey(OpClass cls)
{
    return {std::string("op_") + toString(cls),
            [cls](GpuConfig &config, const std::string &v) {
                const std::string key =
                    std::string("op_") + toString(cls);
                const auto f = parseColonFields(
                    key, v, 2, 2, "a <latency>:<initiation> pair");
                if (f[0] == 0 || f[1] == 0)
                    badValue(key, v, "a pair of non-zero cycle counts");
                auto &t = config.opTiming[static_cast<size_t>(cls)];
                t.latency = static_cast<unsigned>(f[0]);
                t.initiation = static_cast<unsigned>(f[1]);
            }};
}

std::vector<OverrideKey>
buildOverrideKeys()
{
    std::vector<OverrideKey> keys = {
        // Machine identity
        {"machine_name",
         [](GpuConfig &config, const std::string &v) {
             if (v.empty())
                 badValue("machine_name", v, "a non-empty name");
             config.machineName = v;
         }},
        // Core organization
        numericKey("num_sms", &GpuConfig::numSms),
        numericKey("warp_size", &GpuConfig::warpSize),
        numericKey("max_threads_per_sm", &GpuConfig::maxThreadsPerSm),
        numericKey("max_ctas_per_sm", &GpuConfig::maxCtasPerSm),
        numericKey("shared_mem_per_sm", &GpuConfig::sharedMemPerSm),
        numericKey("num_schedulers", &GpuConfig::numSchedulers),
        {"warp_sched",
         [](GpuConfig &config, const std::string &v) {
             if (v == "lrr")
                 config.warpSched = WarpSchedPolicy::LooseRoundRobin;
             else if (v == "gto")
                 config.warpSched = WarpSchedPolicy::GreedyThenOldest;
             else
                 badValue("warp_sched", v, "one of lrr, gto");
         }},
        // Latencies. sp_latency / sfu_latency / sfu_initiation_interval
        // are group aliases over the opcode-class table, kept so existing
        // overrides (and terse machine files) keep working: sp_latency
        // writes every non-SFU class, the sfu_* pair writes the SFU row.
        {"sp_latency",
         [](GpuConfig &config, const std::string &v) {
             const auto lat =
                 static_cast<unsigned>(parseUnsigned("sp_latency", v));
             for (unsigned c = 0; c < kNumOpClasses; ++c)
                 if (static_cast<OpClass>(c) != OpClass::Sfu)
                     config.opTiming[c].latency = lat;
         }},
        {"sfu_latency",
         [](GpuConfig &config, const std::string &v) {
             config.opTiming[static_cast<size_t>(OpClass::Sfu)].latency =
                 static_cast<unsigned>(parseUnsigned("sfu_latency", v));
         }},
        {"sfu_initiation_interval",
         [](GpuConfig &config, const std::string &v) {
             config.opTiming[static_cast<size_t>(OpClass::Sfu)].initiation =
                 static_cast<unsigned>(
                     parseUnsigned("sfu_initiation_interval", v));
         }},
        numericKey("shared_mem_latency", &GpuConfig::sharedMemLatency),
        numericKey("l1_hit_latency", &GpuConfig::l1HitLatency),
        numericKey("ldst_queue_depth", &GpuConfig::ldstQueueDepth),
        // L1
        geometryKey("l1_cache", &GpuConfig::l1),
        cacheKey("l1_size", &GpuConfig::l1, &CacheConfig::sizeBytes),
        cacheKey("l1_line", &GpuConfig::l1, &CacheConfig::lineBytes),
        cacheKey("l1_assoc", &GpuConfig::l1, &CacheConfig::assoc),
        cacheKey("l1_mshr", &GpuConfig::l1, &CacheConfig::mshrEntries),
        cacheKey("l1_mshr_merge", &GpuConfig::l1,
                 &CacheConfig::mshrMaxMerge),
        // Partitions / L2
        numericKey("num_partitions", &GpuConfig::numPartitions),
        geometryKey("l2_cache", &GpuConfig::l2),
        cacheKey("l2_size", &GpuConfig::l2, &CacheConfig::sizeBytes),
        cacheKey("l2_line", &GpuConfig::l2, &CacheConfig::lineBytes),
        cacheKey("l2_assoc", &GpuConfig::l2, &CacheConfig::assoc),
        cacheKey("l2_mshr", &GpuConfig::l2, &CacheConfig::mshrEntries),
        cacheKey("l2_mshr_merge", &GpuConfig::l2,
                 &CacheConfig::mshrMaxMerge),
        numericKey("rop_latency", &GpuConfig::ropLatency),
        // Interconnect
        numericKey("icnt_latency", &GpuConfig::icntLatency),
        numericKey("icnt_inject_queue", &GpuConfig::icntInjectQueueDepth),
        numericKey("icnt_resp_queue", &GpuConfig::icntRespQueueDepth),
        numericKey("part_queue", &GpuConfig::partQueueDepth),
        // DRAM
        numericKey("dram_latency", &GpuConfig::dramLatency),
        numericKey("dram_burst", &GpuConfig::dramBurstCycles),
        numericKey("dram_queue", &GpuConfig::dramQueueDepth),
        numericKey("dram_banks", &GpuConfig::dramBanks),
        numericKey("dram_row_bytes", &GpuConfig::dramRowBytes),
        numericKey("dram_act_latency", &GpuConfig::dramActLatency),
        // Ablations
        {"cta_sched",
         [](GpuConfig &config, const std::string &v) {
             if (v == "rr")
                 config.ctaSched = CtaSchedPolicy::RoundRobin;
             else if (v == "clustered")
                 config.ctaSched = CtaSchedPolicy::Clustered;
             else
                 badValue("cta_sched", v, "one of rr, clustered");
         }},
        numericKey("cta_cluster_size", &GpuConfig::ctaClusterSize),
        numericKey("sms_per_l2_cluster", &GpuConfig::smsPerL2Cluster),
        numericKey("nondet_split_requests",
                   &GpuConfig::nondetSplitRequests),
        {"idle_gating",
         [](GpuConfig &config, const std::string &v) {
             if (v == "0")
                 config.idleGating = false;
             else if (v == "1")
                 config.idleGating = true;
             else
                 badValue("idle_gating", v, "one of 0, 1");
         }},
        numericKey("sim_threads", &GpuConfig::simThreads),
        {"crit",
         [](GpuConfig &config, const std::string &v) {
             if (v == "0")
                 config.crit = false;
             else if (v == "1")
                 config.crit = true;
             else
                 badValue("crit", v, "one of 0, 1");
         }},
        // Run control / robustness
        numericKey("max_cycles", &GpuConfig::maxCycles),
        numericKey("watchdog_interval", &GpuConfig::watchdogInterval),
        numericKey("watchdog_budget", &GpuConfig::watchdogBudget),
        {"fault_plan",
         [](GpuConfig &config, const std::string &v) {
             // Validate eagerly so a bad plan is a config error at parse
             // time, not a per-run failure mid-sweep.
             guard::FaultPlan::parse(v);
             config.faultPlan = v;
         }},
    };
    // One `op_<class> <latency>:<initiation>` key per opcode class, the
    // machine-file form of GPGPU-Sim's ptx_opcode_latency_* tables.
    for (unsigned c = 0; c < kNumOpClasses; ++c)
        keys.push_back(opTimingKey(static_cast<OpClass>(c)));
    return keys;
}

const std::vector<OverrideKey> &
overrideKeys()
{
    static const std::vector<OverrideKey> keys = buildOverrideKeys();
    return keys;
}

} // namespace

std::string
GpuConfig::knownOverrideKeys()
{
    std::string out;
    for (const auto &key : overrideKeys()) {
        if (!out.empty())
            out += ", ";
        out += key.name;
    }
    return out;
}

void
GpuConfig::applyOverride(const std::string &key, const std::string &value)
{
    for (const auto &entry : overrideKeys()) {
        if (key == entry.name) {
            entry.apply(*this, value);
            return;
        }
    }
    // Mirrors the --apps typo guard: an unknown key must not silently run
    // a different experiment than the user asked for.
    gcl_sim_error(SimError::Kind::Config, "config", 0,
                  "unknown config key '", key, "' (known: ",
                  knownOverrideKeys(), ")");
}

void
GpuConfig::applyOverrides(const std::string &spec)
{
    std::istringstream items(spec);
    std::string item;
    while (std::getline(items, item, ',')) {
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            gcl_sim_error(SimError::Kind::Config, "config", 0,
                          "config override '", item,
                          "' is not key=value (known keys: ",
                          knownOverrideKeys(), ")");
        applyOverride(item.substr(0, eq), item.substr(eq + 1));
    }
}

std::string
GpuConfig::describe() const
{
    std::ostringstream oss;
    oss << "Machine    " << machineName << "\n";
    oss << "Core       " << numSms << " SMs, " << warpSize
        << " SIMT width, " << maxThreadsPerSm << " threads/SM, "
        << maxCtasPerSm << " CTAs/SM, " << numSchedulers
        << " schedulers ("
        << (warpSched == WarpSchedPolicy::LooseRoundRobin ? "LRR" : "GTO")
        << ")\n";
    oss << "Exec       ";
    for (unsigned c = 0; c < kNumOpClasses; ++c) {
        const auto &t = opTiming[c];
        oss << (c ? ", " : "") << toString(static_cast<OpClass>(c)) << " "
            << t.latency << "/" << t.initiation;
    }
    oss << " (latency/initiation)\n";
    oss << "SharedMem  " << sharedMemPerSm / 1024 << "KB/SM, latency "
        << sharedMemLatency << "\n";
    oss << "L1D cache  " << l1.sizeBytes / 1024 << "KB, " << l1.lineBytes
        << "B line, " << l1.assoc << "-way, " << l1.mshrEntries
        << " MSHR entries, hit latency " << l1HitLatency << "\n";
    oss << "L2D cache  unified "
        << numPartitions * l2.sizeBytes / 1024 << "KB in " << numPartitions
        << " partitions, " << l2.lineBytes << "B line, " << l2.assoc
        << "-way, " << l2.mshrEntries << " MSHR entries/partition\n";
    oss << "ROP        latency " << ropLatency << "\n";
    oss << "Icnt       latency " << icntLatency << ", inject queue "
        << icntInjectQueueDepth << ", response queue "
        << icntRespQueueDepth << ", partition credit "
        << partQueueDepth << "\n";
    oss << "DRAM       latency " << dramLatency << ", burst "
        << dramBurstCycles << " cycles, queue " << dramQueueDepth;
    if (dramRowBytes)
        oss << ", " << dramBanks << " banks x " << dramRowBytes
            << "B rows, activate +" << dramActLatency;
    oss << "\n";
    oss << "CTA sched  "
        << (ctaSched == CtaSchedPolicy::RoundRobin ? "round-robin"
                                                   : "clustered")
        << (ctaSched == CtaSchedPolicy::Clustered
                ? " (batch " + std::to_string(ctaClusterSize) + ")"
                : std::string())
        << "\n";
    if (smsPerL2Cluster)
        oss << "Semi-L2    " << smsPerL2Cluster << " SMs per L2 cluster\n";
    if (nondetSplitRequests)
        oss << "WarpSplit  " << nondetSplitRequests
            << " requests per non-deterministic sub-warp\n";
    if (!idleGating)
        oss << "IdleGating off (every unit ticks every cycle)\n";
    if (crit)
        oss << "CritProf   issue-slot attribution + latency breakdown\n";
    if (simThreads != 1)
        oss << "SimThreads "
            << (simThreads == 0 ? std::string("auto")
                                : std::to_string(simThreads))
            << " (deterministic parallel tick)\n";
    if (watchdogInterval)
        oss << "Watchdog   check every " << watchdogInterval
            << " cycles, stall budget " << watchdogBudget << "\n";
    if (!faultPlan.empty())
        oss << "FaultPlan  " << faultPlan << "\n";
    return oss.str();
}

uint64_t
GpuConfig::fingerprint() const
{
    // FNV-1a over the numeric fields; any change invalidates cached runs.
    // Run-control knobs (max_cycles, watchdog_*, idle_gating, sim_threads)
    // are deliberately NOT mixed in: they never change the stats of a run
    // that completes, so tightening a budget must not orphan valid cache
    // entries. The fault plan IS mixed in — injected backpressure changes
    // timing.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    // Machine identity: two field-identical machines with different names
    // are different experiments (the name lands in every artifact), so
    // they must not share cache entries either.
    for (char c : machineName)
        mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    mix(numSms); mix(warpSize); mix(maxThreadsPerSm); mix(maxCtasPerSm);
    mix(sharedMemPerSm); mix(numSchedulers);
    mix(static_cast<uint64_t>(warpSched));
    for (const FuTiming &t : opTiming) {
        mix(t.latency);
        mix(t.initiation);
    }
    mix(sharedMemLatency); mix(l1HitLatency); mix(ldstQueueDepth);
    mix(l1.sizeBytes); mix(l1.lineBytes); mix(l1.assoc);
    mix(l1.mshrEntries); mix(l1.mshrMaxMerge);
    mix(numPartitions);
    mix(l2.sizeBytes); mix(l2.lineBytes); mix(l2.assoc);
    mix(l2.mshrEntries); mix(l2.mshrMaxMerge);
    mix(ropLatency); mix(icntLatency); mix(icntInjectQueueDepth);
    mix(icntRespQueueDepth); mix(partQueueDepth);
    mix(dramLatency); mix(dramBurstCycles); mix(dramQueueDepth);
    mix(dramBanks); mix(dramRowBytes); mix(dramActLatency);
    mix(static_cast<uint64_t>(ctaSched)); mix(ctaClusterSize);
    mix(smsPerL2Cluster); mix(nondetSplitRequests);
    // The crit profiler never changes timing, but it does add the crit.*
    // key schema to the finalized stats, so an enabled run must not share
    // a cache entry with a disabled one. Mixed only when on, so every
    // pre-existing (disabled) fingerprint stays valid.
    if (crit)
        mix(1);
    for (char c : faultPlan)
        mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    return h;
}

} // namespace gcl::sim
