/**
 * @file
 * One memory partition: the ROP pipeline in front of an L2 slice, the L2
 * tag/MSHR array, and the partition's DRAM channel (Section III).
 *
 * Requests arriving from the interconnect pay the ROP latency (Table II:
 * 120 cycles), then access the L2 slice once per cycle. Misses go to the
 * partition's DRAM channel; fills release the merged requests, which are
 * then injected into the response network.
 *
 * The partition ends the life of store requests (nothing upstream waits
 * for them): they are freed either when the L2 absorbs the write or when
 * the write burst drains from DRAM.
 */

#ifndef GCL_SIM_MEM_PARTITION_HH
#define GCL_SIM_MEM_PARTITION_HH

#include <deque>

#include "cache.hh"
#include "config.hh"
#include "delay_queue.hh"
#include "dram.hh"
#include "guard/fault.hh"
#include "guard/watchdog.hh"
#include "interconnect.hh"
#include "stats.hh"

namespace gcl::sim
{

/** L2 slice + DRAM channel. */
class MemPartition
{
  public:
    MemPartition(int id, const GpuConfig &config, SimStats &stats,
                 MemPools &pools);

    /** Advance one cycle: accept, service, fill, respond. */
    void cycle(Cycle now, Interconnect &icnt);

    /** No request anywhere inside the partition. */
    bool idle() const;

    const Cache &l2() const { return l2_; }
    const DramChannel &dram() const { return dram_; }

    /** Install the event sink on the partition and its DRAM channel. */
    void setTrace(trace::StageSink *sink);

    // ---- Timeline sampling (gcl::trace) ----
    size_t ropQueued() const { return ropQ_.size(); }
    size_t dramQueued() const { return dram_.size(); }
    size_t respQueued() const { return respPending_.size(); }

    /** Snapshot for a watchdog HangReport (gcl::guard). */
    guard::PartitionHangInfo hangInfo() const;

    /** Fault oracle (gcl::guard), installed by the Gpu; null = no faults. */
    guard::FaultInjector *fault = nullptr;

  private:
    trace::StageSink *traceSink_ = nullptr;
    /** Try to service the head of the ROP queue; false on a stall. */
    bool serviceHead(Cycle now);

    int id_;
    const GpuConfig &config_;
    SimStats::Shard &stats_;    //!< this partition's private counter shard
    MemPools &pools_;

    DelayQueue<ReqHandle> ropQ_;
    Cache l2_;
    DramChannel dram_;
    std::deque<ReqHandle> respPending_;
};

} // namespace gcl::sim

#endif // GCL_SIM_MEM_PARTITION_HH
