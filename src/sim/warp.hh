/**
 * @file
 * Per-warp and per-CTA execution contexts, and the per-launch context
 * shared by all SMs.
 */

#ifndef GCL_SIM_WARP_HH
#define GCL_SIM_WARP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config.hh"
#include "memory.hh"
#include "ptx/cfg.hh"
#include "ptx/kernel.hh"
#include "simt_stack.hh"

namespace gcl::sim
{

/** CUDA-style 3-component dimension. */
struct Dim3
{
    uint32_t x = 1;
    uint32_t y = 1;
    uint32_t z = 1;

    uint64_t count() const { return uint64_t{x} * y * z; }
};

/**
 * Everything fixed for the duration of one kernel launch: the kernel, its
 * CFG (for reconvergence pcs), launch geometry, parameters, and the static
 * load classification used for stat attribution.
 */
struct LaunchContext
{
    const ptx::Kernel *kernel = nullptr;
    std::unique_ptr<ptx::Cfg> cfg;
    Dim3 grid;
    Dim3 cta;
    std::vector<uint64_t> params;
    /** Per-pc flag: is the global load at this pc non-deterministic? */
    std::vector<bool> nonDetPc;

    /**
     * Per-pc load class for crit attribution joins: 0 = not a global
     * load, 1 = deterministic, 2 = non-deterministic (the classifier
     * verdict behind nonDetPc, kept as a dense byte array so the stall
     * charge path reads one byte).
     */
    std::vector<uint8_t> pcLoadClass;

    /**
     * Per-pc scoreboard dependence masks, flattened [pc * sbWords + w]:
     * the union of every register the instruction at pc reads or writes
     * (sources, guard predicate, destination), in scoreboard bit layout.
     * Lets the issue check reduce to `scoreboard[w] & sbMask[pc][w]`
     * instead of testing operands one register at a time. Built once per
     * launch by Gpu::launch; empty when the kernel has no instructions.
     */
    std::vector<uint64_t> sbMask;
    unsigned sbWords = 0;         //!< scoreboard words per pc

    /** Which pipeline an instruction issues to (warpReady dispatch). */
    enum IssueClass : uint8_t
    {
        IssueSp = 0,
        IssueSfu,
        IssueMemory,
        IssueBarrier,
        IssueExit,
    };

    /**
     * Per-pc issue class, built alongside sbMask: the per-cycle scheduler
     * scan only needs "which unit must be free", and reading one byte
     * from a dense array beats pulling the whole ~130-byte Instruction
     * into cache for every candidate warp every cycle.
     */
    std::vector<uint8_t> issueClass;

    /**
     * Per-pc execution timing, resolved from the machine description's
     * opcode-class table (GpuConfig::opTiming via opClassFor) once per
     * launch: the issue path reads two u16s instead of classifying the
     * opcode every cycle. Meaningful for SP/SFU instructions; memory and
     * control pcs carry their class's values but the LD/ST path never
     * reads them.
     */
    std::vector<uint16_t> opLatency;
    std::vector<uint16_t> opInitiation;

    /** Warps needed per CTA. */
    unsigned
    warpsPerCta(unsigned warp_size) const
    {
        return static_cast<unsigned>((cta.count() + warp_size - 1) /
                                     warp_size);
    }
};

/** One CTA resident on an SM. */
struct CtaContext
{
    bool active = false;
    uint32_t ctaX = 0, ctaY = 0, ctaZ = 0;
    uint32_t linearId = 0;
    unsigned numWarps = 0;
    unsigned warpsDone = 0;
    unsigned warpsAtBarrier = 0;
    std::unique_ptr<SharedMemory> shared;
};

/** One warp resident on an SM. */
struct WarpContext
{
    bool active = false;          //!< slot holds a live warp
    int ctaSlot = -1;
    unsigned warpInCta = 0;
    uint32_t threadBase = 0;      //!< linear in-CTA thread id of lane 0

    SimtStack stack;
    std::vector<uint64_t> regs;   //!< numRegs x warpSize, lane-major

    bool atBarrier = false;
    unsigned inflightOps = 0;     //!< issued but not written back

    /** Scoreboard: bit r set = register r has a pending writeback. */
    std::vector<uint64_t> scoreboard;

    /**
     * pc of the instruction that set each scoreboard bit, so a data
     * hazard can be charged to its producer (crit profiler only; empty
     * when crit is off — the issue path never reads it then).
     */
    std::vector<uint32_t> sbProducer;

    uint64_t &
    reg(ptx::RegId r, unsigned lane, unsigned warp_size)
    {
        return regs[static_cast<size_t>(r) * warp_size + lane];
    }

    uint64_t
    reg(ptx::RegId r, unsigned lane, unsigned warp_size) const
    {
        return regs[static_cast<size_t>(r) * warp_size + lane];
    }

    void
    initRegs(unsigned num_regs, unsigned warp_size)
    {
        regs.assign(static_cast<size_t>(num_regs) * warp_size, 0);
        scoreboard.assign((num_regs + 63) / 64, 0);
    }

    bool
    scoreboarded(ptx::RegId r) const
    {
        return (scoreboard[r / 64] >> (r % 64)) & 1;
    }

    void
    setScoreboard(ptx::RegId r)
    {
        scoreboard[r / 64] |= uint64_t{1} << (r % 64);
    }

    void
    clearScoreboard(ptx::RegId r)
    {
        scoreboard[r / 64] &= ~(uint64_t{1} << (r % 64));
    }
};

} // namespace gcl::sim

#endif // GCL_SIM_WARP_HH
