/**
 * @file
 * Flat statistics container shared by the simulator, the profiler and the
 * benchmark harness.
 *
 * A StatsSet maps stable string keys to scalar doubles and to sparse
 * histograms. All simulator instrumentation ultimately lands in one StatsSet
 * per application run; the benchmark harness serializes these to disk so the
 * (expensive) 15-application sweep is simulated once per configuration and
 * shared by every figure binary (see DESIGN.md, "Run cache").
 */

#ifndef GCL_UTIL_STATS_HH
#define GCL_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "histogram.hh"

namespace gcl
{

/** Named scalar counters and histograms with text (de)serialization. */
class StatsSet
{
  public:
    /** Add @p v to the scalar named @p key (creating it at zero). */
    void
    inc(const std::string &key, double v = 1.0)
    {
        scalars_[key] += v;
    }

    /** Overwrite the scalar named @p key. */
    void
    set(const std::string &key, double v)
    {
        scalars_[key] = v;
    }

    /** Scalar value; 0 when absent. */
    double get(const std::string &key) const;

    /** True if the scalar exists. */
    bool has(const std::string &key) const;

    /** Mutable histogram named @p key (created on first use). */
    Histogram &hist(const std::string &key) { return hists_[key]; }

    /** Read-only histogram access; returns an empty histogram if absent. */
    const Histogram &histOrEmpty(const std::string &key) const;

    /** Ratio helper: scalar(num)/scalar(den), 0 when the denominator is 0. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Merge all entries of @p other into this set. */
    void merge(const StatsSet &other);

    const std::map<std::string, double> &scalars() const { return scalars_; }
    const std::map<std::string, Histogram> &hists() const { return hists_; }

    /** Serialize to a line-oriented text form (stable across versions). */
    std::string serialize() const;

    /**
     * Parse the form produced by serialize().
     * @retval true on success; on failure the set is left unspecified.
     */
    bool deserialize(const std::string &text);

    void clear();

  private:
    std::map<std::string, double> scalars_;
    std::map<std::string, Histogram> hists_;
};

} // namespace gcl

#endif // GCL_UTIL_STATS_HH
