#include "histogram.hh"

namespace gcl
{

std::vector<std::pair<int64_t, double>>
Histogram::normalized() const
{
    std::vector<std::pair<int64_t, double>> out;
    out.reserve(buckets_.size());
    if (totalWeight_ <= 0.0)
        return out;
    for (const auto &[k, w] : buckets_)
        out.emplace_back(k, w / totalWeight_);
    return out;
}

} // namespace gcl
