/**
 * @file
 * Aligned console table and CSV emission for the benchmark harness.
 *
 * Every figure/table bench prints two artifacts: a human-readable aligned
 * table (the "paper view") and a machine-readable CSV block so results can be
 * re-plotted. Both are produced by this one writer to keep them consistent.
 */

#ifndef GCL_UTIL_TABLE_HH
#define GCL_UTIL_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gcl
{

/** A simple column-aligned text table with an optional CSV rendering. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row of pre-formatted cells; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Format helpers for numeric cells. */
    static std::string fmt(double v, int precision = 3);
    static std::string fmtInt(uint64_t v);
    static std::string fmtPct(double fraction, int precision = 2);

    /** Render with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gcl

#endif // GCL_UTIL_TABLE_HH
