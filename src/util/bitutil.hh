/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef GCL_UTIL_BITUTIL_HH
#define GCL_UTIL_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "logging.hh"

namespace gcl
{

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; @p v must be non-zero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceil of log2; @p v must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr uint64_t
roundDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Integer ceiling division. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace gcl

#endif // GCL_UTIL_BITUTIL_HH
