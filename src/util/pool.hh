/**
 * @file
 * Slab-backed object pool handing out stable 32-bit handles.
 *
 * The simulator's hottest allocation is one object per coalesced memory
 * request plus one per warp memory op — millions per run — and a
 * refcounted shared_ptr per unit of work puts an atomic inc/dec and a
 * malloc/free on the per-request path. HandlePool replaces that with:
 *
 *  - slab storage: objects live in fixed-size slabs that are never moved
 *    or freed until the pool dies, so a handle dereferences to a stable
 *    address (two loads, no hashing);
 *  - a LIFO free list: alloc/free are O(1) pointer pops, and a just-freed
 *    slot is re-used while still cache-hot;
 *  - 32-bit handles: half the size of a pointer, so queues of in-flight
 *    requests (MSHR chains, interconnect buffers) pack twice as dense.
 *
 * A handle packs {generation, slot}. The generation is bumped on every
 * free; in checked builds (GCL_POOL_CHECKED, wired into the ASan preset,
 * or any !NDEBUG build) every dereference verifies the generation so a
 * use-after-free or double-free panics at the offending access instead of
 * silently reading a recycled object. Release builds skip the check — the
 * layout is identical, only the verification is compiled out.
 *
 * Ownership is single-owner by convention (DESIGN.md "Hot path"): exactly
 * one component frees a given handle. The pool is thread-confined, like
 * everything else owned by one SimContext.
 */

#ifndef GCL_UTIL_POOL_HH
#define GCL_UTIL_POOL_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "logging.hh"

#if !defined(NDEBUG) && !defined(GCL_POOL_CHECKED)
#define GCL_POOL_CHECKED 1
#endif

namespace gcl
{

/**
 * Pool handle: 0 is the null handle; otherwise bits [0,20) hold slot+1
 * and bits [20,32) a 12-bit wrap-around generation.
 */
using PoolHandle = uint32_t;
inline constexpr PoolHandle kNullHandle = 0;

template <typename T>
class HandlePool
{
  public:
    static constexpr unsigned kSlotBits = 20;
    static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
    static constexpr uint32_t kGenMask = 0xfffu;
    /** Slot field stores slot+1, so the largest usable slot is mask-2. */
    static constexpr size_t kMaxSlots = kSlotMask - 1;
    static constexpr size_t kSlabSize = 4096;  //!< objects per slab

    explicit HandlePool(std::string name) : name_(std::move(name)) {}

    HandlePool(const HandlePool &) = delete;
    HandlePool &operator=(const HandlePool &) = delete;

    /**
     * Take a default-initialized object from the pool.
     * @throws std::length_error when the pool is exhausted (the slot field
     * of the handle encoding bounds the population; util cannot depend on
     * gcl::guard's SimError, and callers treat this as a fatal run error).
     */
    PoolHandle
    alloc()
    {
        uint32_t slot;
        if (!freeList_.empty()) {
            slot = freeList_.back();
            freeList_.pop_back();
        } else {
            if (slotCount_ >= kMaxSlots)
                throw std::length_error(
                    "HandlePool '" + name_ + "' exhausted (" +
                    std::to_string(kMaxSlots) + " live objects)");
            slot = slotCount_++;
            if (slot / kSlabSize >= slabs_.size()) {
                slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
                gen_.resize(slabs_.size() * kSlabSize, 0);
            }
        }
        Slot &entry = slabs_[slot / kSlabSize][slot % kSlabSize];
        new (&entry.object) T{};
#if GCL_POOL_CHECKED
        gen_[slot] |= kLiveBit;
#endif
        ++live_;
        return ((gen_[slot] & kGenMask) << kSlotBits) | (slot + 1);
    }

    /** Return @p handle's object to the pool; the handle becomes stale. */
    void
    free(PoolHandle handle)
    {
        const uint32_t slot = check(handle);
        slabs_[slot / kSlabSize][slot % kSlabSize].object.~T();
        // Bump the generation so stale handles are detectable; skip the
        // value that would make a recycled handle equal a historic one
        // only after the 12-bit wrap (good enough for a debug net).
        gen_[slot] = (gen_[slot] + 1) & kGenMask;
        freeList_.push_back(slot);
        --live_;
    }

    T &
    get(PoolHandle handle)
    {
        const uint32_t slot = check(handle);
        return slabs_[slot / kSlabSize][slot % kSlabSize].object;
    }

    const T &
    get(PoolHandle handle) const
    {
        const uint32_t slot = check(handle);
        return slabs_[slot / kSlabSize][slot % kSlabSize].object;
    }

    /** Objects currently checked out. */
    size_t live() const { return live_; }

    /** High-water slot count (never shrinks; sizing diagnostics). */
    size_t capacity() const { return slotCount_; }

    const std::string &name() const { return name_; }

  private:
    /** Uninitialized storage: objects are constructed/destroyed per use. */
    struct Slot
    {
        union {
            T object;
        };
        Slot() {}   // NOLINT: storage only, object lifetime is manual
        ~Slot() {}  // NOLINT
    };

    /** Live flag kept outside the handle bits (checked builds only). */
    static constexpr uint32_t kLiveBit = 0x8000'0000u;

    uint32_t
    check(PoolHandle handle) const
    {
        const uint32_t slot = (handle & kSlotMask) - 1;
#if GCL_POOL_CHECKED
        gcl_assert(handle != kNullHandle,
                   "pool '", name_, "': null handle dereferenced");
        gcl_assert(slot < slotCount_,
                   "pool '", name_, "': handle slot ", slot,
                   " out of range");
        gcl_assert((gen_[slot] & kLiveBit) != 0,
                   "pool '", name_, "': stale handle (slot ", slot,
                   " is free — use-after-free or double-free)");
        gcl_assert((gen_[slot] & kGenMask) ==
                       ((handle >> kSlotBits) & kGenMask),
                   "pool '", name_, "': stale handle generation for slot ",
                   slot);
#endif
        return slot;
    }

    std::string name_;
    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<uint32_t> gen_;      //!< per-slot generation (+ live bit)
    std::vector<uint32_t> freeList_;
    uint32_t slotCount_ = 0;
    size_t live_ = 0;
};

} // namespace gcl

#endif // GCL_UTIL_POOL_HH
