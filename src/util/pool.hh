/**
 * @file
 * Slab-backed object pool handing out stable 32-bit handles.
 *
 * The simulator's hottest allocation is one object per coalesced memory
 * request plus one per warp memory op — millions per run — and a
 * refcounted shared_ptr per unit of work puts an atomic inc/dec and a
 * malloc/free on the per-request path. HandlePool replaces that with:
 *
 *  - slab storage: objects live in fixed-size slabs that are never moved
 *    or freed until the pool dies, so a handle dereferences to a stable
 *    address (two loads, no hashing);
 *  - a LIFO free list: alloc/free are O(1) pointer pops, and a just-freed
 *    slot is re-used while still cache-hot;
 *  - 32-bit handles: half the size of a pointer, so queues of in-flight
 *    requests (MSHR chains, interconnect buffers) pack twice as dense.
 *
 * A handle packs {generation, slot}. The generation is bumped on every
 * free; in checked builds (GCL_POOL_CHECKED, wired into the ASan preset,
 * or any !NDEBUG build) every dereference verifies the generation so a
 * use-after-free or double-free panics at the offending access instead of
 * silently reading a recycled object. Release builds skip the check — the
 * layout is identical, only the verification is compiled out.
 *
 * Ownership is single-owner by convention (DESIGN.md "Hot path"): exactly
 * one component frees a given handle.
 *
 * Concurrency: the pool is thread-confined by default (everything owned by
 * one SimContext). The intra-run parallel tick (sim_threads > 1) shares
 * one pool between SM/partition workers; setConcurrent(true) turns the
 * alloc/free bookkeeping into a short spinlocked critical section. The
 * slab directory is a fixed-size array of slab pointers (never resized),
 * so get() stays lock-free: a worker only dereferences handles it owns —
 * either self-allocated, or handed over through a queue whose producer ran
 * in an earlier barrier-separated phase — which gives the happens-before
 * edge for the published object and its slab pointer. Object construction
 * and destruction stay outside the lock (the slot is exclusively owned at
 * both points). When the flag is off the lock is skipped entirely, so the
 * serial path pays nothing.
 */

#ifndef GCL_UTIL_POOL_HH
#define GCL_UTIL_POOL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "logging.hh"

#if !defined(NDEBUG) && !defined(GCL_POOL_CHECKED)
#define GCL_POOL_CHECKED 1
#endif

namespace gcl
{

/**
 * Pool handle: 0 is the null handle; otherwise bits [0,20) hold slot+1
 * and bits [20,32) a 12-bit wrap-around generation.
 */
using PoolHandle = uint32_t;
inline constexpr PoolHandle kNullHandle = 0;

template <typename T>
class HandlePool
{
  public:
    static constexpr unsigned kSlotBits = 20;
    static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
    static constexpr uint32_t kGenMask = 0xfffu;
    /** Slot field stores slot+1, so the largest usable slot is mask-2. */
    static constexpr size_t kMaxSlots = kSlotMask - 1;
    static constexpr size_t kSlabSize = 4096;  //!< objects per slab
    static constexpr size_t kMaxSlabs =
        (kMaxSlots + kSlabSize - 1) / kSlabSize;

    explicit HandlePool(std::string name) : name_(std::move(name)) {}

    HandlePool(const HandlePool &) = delete;
    HandlePool &operator=(const HandlePool &) = delete;

    /**
     * Serialize alloc/free bookkeeping for multi-threaded ticking.
     * Must only be toggled while no other thread touches the pool.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

    /**
     * Take a default-initialized object from the pool.
     * @throws std::length_error when the pool is exhausted (the slot field
     * of the handle encoding bounds the population; util cannot depend on
     * gcl::guard's SimError, and callers treat this as a fatal run error).
     */
    PoolHandle
    alloc()
    {
        lock();
        uint32_t slot;
        if (!freeList_.empty()) {
            slot = freeList_.back();
            freeList_.pop_back();
        } else {
            if (slotCount_ >= kMaxSlots) {
                unlock();
                throw std::length_error(
                    "HandlePool '" + name_ + "' exhausted (" +
                    std::to_string(kMaxSlots) + " live objects)");
            }
            slot = slotCount_++;
            if (!slabs_[slot / kSlabSize])
                slabs_[slot / kSlabSize] = std::make_unique<Slab>();
        }
        ++live_;
        Slab &slab = *slabs_[slot / kSlabSize];
        const uint32_t gen = slab.gen[slot % kSlabSize];
#if GCL_POOL_CHECKED
        slab.gen[slot % kSlabSize] = gen | kLiveBit;
#endif
        unlock();
        // Construct outside the critical section; the slot is exclusively
        // ours from the moment it left the free list.
        new (&slab.slots[slot % kSlabSize].object) T{};
        return ((gen & kGenMask) << kSlotBits) | (slot + 1);
    }

    /** Return @p handle's object to the pool; the handle becomes stale. */
    void
    free(PoolHandle handle)
    {
        const uint32_t slot = check(handle);
        Slab &slab = *slabs_[slot / kSlabSize];
        slab.slots[slot % kSlabSize].object.~T();
        lock();
        // Bump the generation so stale handles are detectable; skip the
        // value that would make a recycled handle equal a historic one
        // only after the 12-bit wrap (good enough for a debug net).
        slab.gen[slot % kSlabSize] =
            (slab.gen[slot % kSlabSize] + 1) & kGenMask;
        freeList_.push_back(slot);
        --live_;
        unlock();
    }

    T &
    get(PoolHandle handle)
    {
        const uint32_t slot = check(handle);
        return slabs_[slot / kSlabSize]->slots[slot % kSlabSize].object;
    }

    const T &
    get(PoolHandle handle) const
    {
        const uint32_t slot = check(handle);
        return slabs_[slot / kSlabSize]->slots[slot % kSlabSize].object;
    }

    /**
     * Unchecked dereference by slot, ignoring the generation. Only for the
     * parallel tick's commit phase, which patches provisional trace ids
     * recorded earlier in the same cycle: the slot cannot have been
     * recycled within the cycle, and the caller additionally verifies the
     * patched field still holds the value it recorded.
     */
    T &
    getRaw(PoolHandle handle)
    {
        const uint32_t slot = (handle & kSlotMask) - 1;
        return slabs_[slot / kSlabSize]->slots[slot % kSlabSize].object;
    }

    /** Objects currently checked out. */
    size_t
    live() const
    {
        lock();
        const size_t n = live_;
        unlock();
        return n;
    }

    /** High-water slot count (never shrinks; sizing diagnostics). */
    size_t
    capacity() const
    {
        lock();
        const size_t n = slotCount_;
        unlock();
        return n;
    }

    const std::string &name() const { return name_; }

  private:
    /** Uninitialized storage: objects are constructed/destroyed per use. */
    struct Slot
    {
        union {
            T object;
        };
        Slot() {}   // NOLINT: storage only, object lifetime is manual
        ~Slot() {}  // NOLINT
    };

    /** Storage plus its slots' generations, allocated as one unit. */
    struct Slab
    {
        Slot slots[kSlabSize];
        uint32_t gen[kSlabSize];  //!< per-slot generation (+ live bit)
    };

    /** Live flag kept outside the handle bits (checked builds only). */
    static constexpr uint32_t kLiveBit = 0x8000'0000u;

    void
    lock() const
    {
        if (!concurrent_)
            return;
        while (lock_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
            __builtin_ia32_pause();
#endif
        }
    }

    void
    unlock() const
    {
        if (concurrent_)
            lock_.clear(std::memory_order_release);
    }

    uint32_t
    check(PoolHandle handle) const
    {
        const uint32_t slot = (handle & kSlotMask) - 1;
#if GCL_POOL_CHECKED
        gcl_assert(handle != kNullHandle,
                   "pool '", name_, "': null handle dereferenced");
        gcl_assert(slot < kMaxSlots && slabs_[slot / kSlabSize] != nullptr,
                   "pool '", name_, "': handle slot ", slot,
                   " out of range");
        const uint32_t gen = slabs_[slot / kSlabSize]->gen[slot % kSlabSize];
        gcl_assert((gen & kLiveBit) != 0,
                   "pool '", name_, "': stale handle (slot ", slot,
                   " is free — use-after-free or double-free)");
        gcl_assert((gen & kGenMask) == ((handle >> kSlotBits) & kGenMask),
                   "pool '", name_, "': stale handle generation for slot ",
                   slot);
#endif
        return slot;
    }

    std::string name_;
    /**
     * Fixed-size slab directory: never resized, so concurrent get() of
     * already-published handles races with nothing when a new slab pointer
     * is installed elsewhere in the array.
     */
    std::unique_ptr<Slab> slabs_[kMaxSlabs];
    std::vector<uint32_t> freeList_;
    uint32_t slotCount_ = 0;
    size_t live_ = 0;
    bool concurrent_ = false;
    mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

} // namespace gcl

#endif // GCL_UTIL_POOL_HH
