#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace gcl
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    gcl_assert(!headers_.empty(), "a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    gcl_assert(cells.size() == headers_.size(),
               "row width ", cells.size(), " != header width ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtInt(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
Table::fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << row[c];
            for (size_t pad = row[c].size(); pad < widths[c]; ++pad)
                os << ' ';
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            // Cells are simple tokens (names/numbers); strip '%' padding is
            // unnecessary, but commas would corrupt the CSV.
            std::string cell = row[c];
            for (auto &ch : cell)
                if (ch == ',')
                    ch = ';';
            os << cell;
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace gcl
