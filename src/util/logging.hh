/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something unsupported (bad config); exits.
 * warn()   — something suspicious happened but simulation can continue.
 * inform() — plain status output.
 */

#ifndef GCL_UTIL_LOGGING_HH
#define GCL_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gcl
{

namespace detail
{

/** Stream-compose a message from variadic parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace gcl

/** Abort with a message: something that should never happen did happen. */
#define gcl_panic(...) \
    ::gcl::detail::panicImpl(__FILE__, __LINE__, \
                             ::gcl::detail::composeMessage(__VA_ARGS__))

/** Exit with a message: the user's configuration or input is unusable. */
#define gcl_fatal(...) \
    ::gcl::detail::fatalImpl(__FILE__, __LINE__, \
                             ::gcl::detail::composeMessage(__VA_ARGS__))

/** Emit a non-fatal warning. */
#define gcl_warn(...) \
    ::gcl::detail::warnImpl(__FILE__, __LINE__, \
                            ::gcl::detail::composeMessage(__VA_ARGS__))

/** Emit a status message. */
#define gcl_inform(...) \
    ::gcl::detail::informImpl(::gcl::detail::composeMessage(__VA_ARGS__))

/** Internal invariant check that is active in all build types. */
#define gcl_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            gcl_panic("assertion '", #cond, "' failed. ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // GCL_UTIL_LOGGING_HH
