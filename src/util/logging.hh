/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something unsupported (bad config); exits.
 * warn()   — something suspicious happened but simulation can continue.
 * inform() — plain status output.
 * debug()  — per-component developer output, compiled in only for the
 *            components named in GCL_DEBUG_COMPONENTS.
 */

#ifndef GCL_UTIL_LOGGING_HH
#define GCL_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace gcl
{

/**
 * Tag prepended (as "[tag] ") to every log line the *calling thread*
 * emits; empty disables it. The parallel sweep tags each worker with the
 * application it is simulating so interleaved output stays attributable.
 * Thread-local, so concurrent jobs never see each other's tag.
 */
void setLogThreadTag(std::string tag);

/** The calling thread's current log tag ("" when unset). */
const std::string &logThreadTag();

/** RAII helper: install a log tag for a scope, restore the previous one. */
class LogTagScope
{
  public:
    explicit LogTagScope(std::string tag) : prev_(logThreadTag())
    {
        setLogThreadTag(std::move(tag));
    }
    ~LogTagScope() { setLogThreadTag(std::move(prev_)); }
    LogTagScope(const LogTagScope &) = delete;
    LogTagScope &operator=(const LogTagScope &) = delete;

  private:
    std::string prev_;
};

namespace detail
{

/** Stream-compose a message from variadic parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const char *component, const std::string &msg);

/**
 * True when @p component appears in the comma-separated @p enabled_list
 * ("all" enables everything). Evaluated at compile time, so disabled
 * GCL_DEBUG statements vanish entirely.
 */
constexpr bool
debugComponentEnabled(std::string_view enabled_list,
                      std::string_view component)
{
    if (enabled_list == "all")
        return true;
    size_t pos = 0;
    while (pos <= enabled_list.size()) {
        const size_t comma = enabled_list.find(',', pos);
        const size_t end =
            comma == std::string_view::npos ? enabled_list.size() : comma;
        if (enabled_list.substr(pos, end - pos) == component)
            return true;
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    return false;
}

} // namespace detail

} // namespace gcl

/** Abort with a message: something that should never happen did happen. */
#define gcl_panic(...) \
    ::gcl::detail::panicImpl(__FILE__, __LINE__, \
                             ::gcl::detail::composeMessage(__VA_ARGS__))

/** Exit with a message: the user's configuration or input is unusable. */
#define gcl_fatal(...) \
    ::gcl::detail::fatalImpl(__FILE__, __LINE__, \
                             ::gcl::detail::composeMessage(__VA_ARGS__))

/** Emit a non-fatal warning. */
#define gcl_warn(...) \
    ::gcl::detail::warnImpl(__FILE__, __LINE__, \
                            ::gcl::detail::composeMessage(__VA_ARGS__))

/** Emit a status message. */
#define gcl_inform(...) \
    ::gcl::detail::informImpl(::gcl::detail::composeMessage(__VA_ARGS__))

/**
 * Per-component debug output. The component is a plain token ("gpu", "sm",
 * "l2", ...); a statement only compiles to code when its component is
 * listed in the GCL_DEBUG_COMPONENTS compile definition (comma-separated;
 * "all" is a wildcard). With the default empty list the whole statement is
 * a constant-false branch the optimizer deletes.
 */
#ifndef GCL_DEBUG_COMPONENTS
#define GCL_DEBUG_COMPONENTS ""
#endif

#define GCL_DEBUG(component, ...) \
    do { \
        if constexpr (::gcl::detail::debugComponentEnabled( \
                          GCL_DEBUG_COMPONENTS, component)) { \
            ::gcl::detail::debugImpl( \
                component, ::gcl::detail::composeMessage(__VA_ARGS__)); \
        } \
    } while (0)

/** Internal invariant check that is active in all build types. */
#define gcl_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            gcl_panic("assertion '", #cond, "' failed. ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // GCL_UTIL_LOGGING_HH
