/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every dataset generator in the repository draws from this generator with a
 * fixed seed so that all experiments are bit-reproducible across runs and
 * machines. std::mt19937 is avoided because distribution implementations are
 * not pinned by the standard.
 */

#ifndef GCL_UTIL_RNG_HH
#define GCL_UTIL_RNG_HH

#include <cstdint>

namespace gcl
{

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's multiply-shift. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p = 0.5);

  private:
    uint64_t state_[4];

    static uint64_t splitMix64(uint64_t &x);
    static uint64_t rotl(uint64_t x, int k);
};

} // namespace gcl

#endif // GCL_UTIL_RNG_HH
