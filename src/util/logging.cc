#include "logging.hh"

#include <cstdio>

namespace gcl
{

namespace
{

thread_local std::string t_log_tag;

/**
 * Emit one fully-composed line with a single locked stdio call. stdio
 * serializes individual fwrite()s between threads, so as long as a line
 * is handed over whole it can never interleave with another thread's —
 * the property the parallel sweep relies on.
 */
void
writeLine(std::FILE *to, const std::string &line)
{
    std::fwrite(line.data(), 1, line.size(), to);
    std::fflush(to);
}

std::string
tagged(const std::string &msg)
{
    if (t_log_tag.empty())
        return msg;
    return "[" + t_log_tag + "] " + msg;
}

} // namespace

void
setLogThreadTag(std::string tag)
{
    t_log_tag = std::move(tag);
}

const std::string &
logThreadTag()
{
    return t_log_tag;
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine(stderr, "panic: " + tagged(msg) + " (" + file + ":" +
                          std::to_string(line) + ")\n");
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    writeLine(stderr, "fatal: " + tagged(msg) + " (" + file + ":" +
                          std::to_string(line) + ")\n");
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    writeLine(stderr, "warn: " + tagged(msg) + " (" + file + ":" +
                          std::to_string(line) + ")\n");
}

void
informImpl(const std::string &msg)
{
    writeLine(stdout, "info: " + tagged(msg) + "\n");
}

void
debugImpl(const char *component, const std::string &msg)
{
    writeLine(stderr,
              "debug[" + std::string(component) + "]: " + tagged(msg) +
                  "\n");
}

} // namespace detail

} // namespace gcl
