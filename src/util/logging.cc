#include "logging.hh"

#include <cstdio>

namespace gcl
{

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const char *component, const std::string &msg)
{
    std::fprintf(stderr, "debug[%s]: %s\n", component, msg.c_str());
}

} // namespace detail

} // namespace gcl
