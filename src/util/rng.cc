#include "rng.hh"

#include "logging.hh"

namespace gcl
{

uint64_t
Rng::splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
Rng::rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

Rng::Rng(uint64_t seed)
{
    // Seed the four state words from splitmix64 as recommended by the
    // xoshiro authors; guarantees a non-zero state.
    uint64_t x = seed;
    for (auto &w : state_)
        w = splitMix64(x);
}

uint64_t
Rng::next()
{
    uint64_t *s = state_;
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    gcl_assert(bound > 0, "nextBounded requires a positive bound");
    // Lemire's nearly-divisionless method; the slight modulo bias of the
    // plain multiply-shift is acceptable for workload synthesis.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    gcl_assert(lo <= hi, "nextRange requires lo <= hi");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits scaled into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace gcl
