#include "stats.hh"

#include <cstdio>
#include <sstream>

namespace gcl
{

double
StatsSet::get(const std::string &key) const
{
    auto it = scalars_.find(key);
    return it == scalars_.end() ? 0.0 : it->second;
}

bool
StatsSet::has(const std::string &key) const
{
    return scalars_.count(key) > 0;
}

const Histogram &
StatsSet::histOrEmpty(const std::string &key) const
{
    static const Histogram empty;
    auto it = hists_.find(key);
    return it == hists_.end() ? empty : it->second;
}

double
StatsSet::ratio(const std::string &num, const std::string &den) const
{
    const double d = get(den);
    return d != 0.0 ? get(num) / d : 0.0;
}

void
StatsSet::merge(const StatsSet &other)
{
    for (const auto &[k, v] : other.scalars_)
        scalars_[k] += v;
    for (const auto &[k, h] : other.hists_)
        hists_[k].merge(h);
}

std::string
StatsSet::serialize() const
{
    // Format:
    //   s <key> <value>
    //   h <key> <nbuckets> (<bucket> <weight>)*
    // Values use %.17g so doubles round-trip exactly.
    std::ostringstream oss;
    char buf[64];
    for (const auto &[k, v] : scalars_) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        oss << "s " << k << ' ' << buf << '\n';
    }
    for (const auto &[k, h] : hists_) {
        oss << "h " << k << ' ' << h.buckets().size();
        for (const auto &[bucket, w] : h.buckets()) {
            std::snprintf(buf, sizeof(buf), "%.17g", w);
            oss << ' ' << bucket << ' ' << buf;
        }
        oss << '\n';
    }
    return oss.str();
}

bool
StatsSet::deserialize(const std::string &text)
{
    clear();
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        char kind;
        std::string key;
        if (!(ls >> kind >> key))
            return false;
        if (kind == 's') {
            double v;
            if (!(ls >> v))
                return false;
            scalars_[key] = v;
        } else if (kind == 'h') {
            size_t n;
            if (!(ls >> n))
                return false;
            Histogram &h = hists_[key];
            for (size_t i = 0; i < n; ++i) {
                int64_t bucket;
                double w;
                if (!(ls >> bucket >> w))
                    return false;
                h.add(bucket, w);
            }
        } else {
            return false;
        }
    }
    return true;
}

void
StatsSet::clear()
{
    scalars_.clear();
    hists_.clear();
}

} // namespace gcl
