/**
 * @file
 * Sparse integer histogram used for request-count and CTA-distance
 * distributions (Figs 6, 7 and 12 of the paper).
 */

#ifndef GCL_UTIL_HISTOGRAM_HH
#define GCL_UTIL_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace gcl
{

/**
 * A sparse histogram over signed integer keys with double-valued weights.
 *
 * Keys are kept sorted (std::map) so reports iterate in key order. The
 * histogram also tracks the weighted sum so means are O(1).
 */
class Histogram
{
  public:
    /** Add @p weight to bucket @p key. */
    void
    add(int64_t key, double weight = 1.0)
    {
        buckets_[key] += weight;
        totalWeight_ += weight;
        weightedSum_ += static_cast<double>(key) * weight;
    }

    /** Merge another histogram into this one. */
    void
    merge(const Histogram &other)
    {
        for (const auto &[k, w] : other.buckets_)
            add(k, w);
    }

    double totalWeight() const { return totalWeight_; }

    /** Weighted mean of keys; 0 when empty. */
    double
    mean() const
    {
        return totalWeight_ > 0 ? weightedSum_ / totalWeight_ : 0.0;
    }

    /** Weight in a single bucket (0 when absent). */
    double
    weightAt(int64_t key) const
    {
        auto it = buckets_.find(key);
        return it == buckets_.end() ? 0.0 : it->second;
    }

    bool empty() const { return buckets_.empty(); }
    size_t numBuckets() const { return buckets_.size(); }

    const std::map<int64_t, double> &buckets() const { return buckets_; }

    /** Normalized (key, fraction-of-total) pairs in key order. */
    std::vector<std::pair<int64_t, double>> normalized() const;

    void
    clear()
    {
        buckets_.clear();
        totalWeight_ = 0.0;
        weightedSum_ = 0.0;
    }

  private:
    std::map<int64_t, double> buckets_;
    double totalWeight_ = 0.0;
    double weightedSum_ = 0.0;
};

} // namespace gcl

#endif // GCL_UTIL_HISTOGRAM_HH
