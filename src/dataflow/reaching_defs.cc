#include "reaching_defs.hh"

#include "util/logging.hh"

namespace gcl::dataflow
{

using ptx::Instruction;
using ptx::Kernel;

ReachingDefs::BitSet
ReachingDefs::makeEmpty() const
{
    return BitSet(words_, 0);
}

void
ReachingDefs::setBit(BitSet &s, size_t i)
{
    s[i / 64] |= uint64_t{1} << (i % 64);
}

bool
ReachingDefs::testBit(const BitSet &s, size_t i)
{
    return (s[i / 64] >> (i % 64)) & 1;
}

void
ReachingDefs::orInto(BitSet &a, const BitSet &b)
{
    for (size_t w = 0; w < a.size(); ++w)
        a[w] |= b[w];
}

void
ReachingDefs::andNotInto(BitSet &a, const BitSet &b)
{
    for (size_t w = 0; w < a.size(); ++w)
        a[w] &= ~b[w];
}

ReachingDefs::ReachingDefs(const ptx::Cfg &cfg)
    : cfg_(cfg)
{
    const Kernel &k = cfg.kernel();
    const auto &insts = k.insts();

    // Enumerate definition sites.
    defIdOfPc_.assign(insts.size(), -1);
    for (size_t pc = 0; pc < insts.size(); ++pc) {
        if (insts[pc].writesDst()) {
            defIdOfPc_[pc] = static_cast<int>(defPcs_.size());
            defPcs_.push_back(pc);
        }
    }

    words_ = (defPcs_.size() + 63) / 64;
    if (words_ == 0)
        words_ = 1;

    defsOfReg_.assign(k.numRegs(), makeEmpty());
    for (size_t d = 0; d < defPcs_.size(); ++d)
        setBit(defsOfReg_[insts[defPcs_[d]].dst], d);

    // Per-block GEN/KILL.
    const size_t nblocks = cfg.numBlocks();
    std::vector<BitSet> gen(nblocks, makeEmpty());
    std::vector<BitSet> kill(nblocks, makeEmpty());
    for (size_t b = 0; b < nblocks; ++b) {
        const auto &bb = cfg.block(b);
        for (size_t pc = bb.first; pc <= bb.last; ++pc) {
            const Instruction &i = insts[pc];
            if (!i.writesDst())
                continue;
            const int d = defIdOfPc_[pc];
            if (!i.guarded) {
                // Unconditional definition: kills all other defs of dst.
                orInto(kill[b], defsOfReg_[i.dst]);
                andNotInto(gen[b], defsOfReg_[i.dst]);
            }
            setBit(gen[b], static_cast<size_t>(d));
        }
    }
    // Remove gen'd defs from kill so OUT = gen | (IN & ~kill) is exact.
    for (size_t b = 0; b < nblocks; ++b)
        andNotInto(kill[b], gen[b]);

    // Iterate to a fixpoint.
    blockIn_.assign(nblocks, makeEmpty());
    std::vector<BitSet> out(nblocks, makeEmpty());
    for (size_t b = 0; b < nblocks; ++b) {
        out[b] = blockIn_[b];
        orInto(out[b], gen[b]);
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < nblocks; ++b) {
            BitSet in = makeEmpty();
            for (int p : cfg.block(b).preds)
                orInto(in, out[static_cast<size_t>(p)]);
            if (in != blockIn_[b]) {
                blockIn_[b] = in;
                changed = true;
            }
            BitSet o = in;
            andNotInto(o, kill[b]);
            orInto(o, gen[b]);
            if (o != out[b]) {
                out[b] = std::move(o);
                changed = true;
            }
        }
    }
}

void
ReachingDefs::transfer(size_t pc, BitSet &live) const
{
    const Instruction &i = cfg_.kernel().inst(pc);
    if (!i.writesDst())
        return;
    if (!i.guarded)
        andNotInto(live, defsOfReg_[i.dst]);
    setBit(live, static_cast<size_t>(defIdOfPc_[pc]));
}

std::vector<size_t>
ReachingDefs::defsReaching(size_t pc, ptx::RegId reg) const
{
    gcl_assert(reg < defsOfReg_.size(), "register out of range");

    const int b = cfg_.blockOf(pc);
    BitSet live = blockIn_[static_cast<size_t>(b)];
    const auto &bb = cfg_.block(static_cast<size_t>(b));
    for (size_t p = bb.first; p < pc; ++p)
        transfer(p, live);

    std::vector<size_t> result;
    const BitSet &defs = defsOfReg_[reg];
    for (size_t d = 0; d < defPcs_.size(); ++d)
        if (testBit(defs, d) && testBit(live, d))
            result.push_back(defPcs_[d]);
    return result;
}

} // namespace gcl::dataflow
