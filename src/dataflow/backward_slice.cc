#include "backward_slice.hh"

#include <sstream>

#include "util/logging.hh"

namespace gcl::dataflow
{

using ptx::Instruction;
using ptx::Opcode;
using ptx::Operand;

std::string
SliceResult::describe() const
{
    std::ostringstream oss;
    bool first = true;
    auto item = [&](bool flag, const char *name) {
        if (!flag)
            return;
        if (!first)
            oss << '+';
        oss << name;
        first = false;
    };
    item(sources.param, "param");
    item(sources.specialReg, "sreg");
    item(sources.immediate, "imm");
    item(sources.dataLoad, "load");
    item(sources.atomic, "atomic");
    if (first)
        oss << "none";
    oss << " (" << slicePcs.size() << " defs in slice)";
    return oss.str();
}

BackwardSlicer::BackwardSlicer(const ptx::Cfg &cfg)
    : cfg_(cfg), reachingDefs_(cfg)
{
}

SliceResult
BackwardSlicer::sliceAddress(size_t pc) const
{
    const Instruction &i = cfg_.kernel().inst(pc);
    gcl_assert(i.op == Opcode::Ld || i.op == Opcode::St ||
               i.op == Opcode::Atom,
               "sliceAddress requires a memory instruction, got ",
               i.toString());

    SliceResult result;
    std::vector<bool> visited(cfg_.kernel().size(), false);
    traceOperand(i.srcs[0], pc, result, visited);
    return result;
}

SliceResult
BackwardSlicer::sliceRegister(size_t pc, ptx::RegId reg) const
{
    SliceResult result;
    std::vector<bool> visited(cfg_.kernel().size(), false);
    traceOperand(Operand::makeReg(reg), pc, result, visited);
    return result;
}

void
BackwardSlicer::traceOperand(const Operand &op, size_t use_pc,
                             SliceResult &result,
                             std::vector<bool> &visited_defs) const
{
    switch (op.kind) {
      case Operand::Kind::None:
        return;
      case Operand::Kind::Imm:
        result.sources.immediate = true;
        return;
      case Operand::Kind::Special:
        result.sources.specialReg = true;
        return;
      case Operand::Kind::Reg:
        break;
    }

    // Walk every definition of the register that may reach this use.
    for (size_t def_pc : reachingDefs_.defsReaching(use_pc, op.reg)) {
        if (visited_defs[def_pc])
            continue;
        visited_defs[def_pc] = true;
        result.slicePcs.push_back(def_pc);

        const Instruction &def = cfg_.kernel().inst(def_pc);
        switch (def.op) {
          case Opcode::LdParam:
            // Parameterized data: a terminal, deterministic source.
            result.sources.param = true;
            break;
          case Opcode::Ld:
            // A value produced by a data-space load taints the slice:
            // the address depends on memory contents (Section V). The
            // chain is not traced through the load's own address.
            result.sources.dataLoad = true;
            result.taintingPcs.push_back(def_pc);
            break;
          case Opcode::Atom:
            result.sources.atomic = true;
            result.taintingPcs.push_back(def_pc);
            break;
          default:
            // Ordinary computation: recurse into all source operands.
            for (const auto &src : def.srcs)
                traceOperand(src, def_pc, result, visited_defs);
            break;
        }
    }
}

} // namespace gcl::dataflow
