/**
 * @file
 * Reaching-definitions analysis over a kernel CFG.
 *
 * This is the textbook bitvector dataflow problem (Aho et al., cited by the
 * paper as the basis of its backward analysis): a definition d of register r
 * reaches a program point p when there is a path from d to p along which r
 * is not unconditionally redefined. Predicated definitions generate but do
 * not kill, which keeps the analysis a sound may-analysis.
 */

#ifndef GCL_DATAFLOW_REACHING_DEFS_HH
#define GCL_DATAFLOW_REACHING_DEFS_HH

#include <cstdint>
#include <vector>

#include "ptx/cfg.hh"

namespace gcl::dataflow
{

/** Reaching definitions for every (instruction, source register) pair. */
class ReachingDefs
{
  public:
    explicit ReachingDefs(const ptx::Cfg &cfg);

    /**
     * All definition sites (pcs) of @p reg that may reach the use of
     * @p reg at instruction @p pc.
     */
    std::vector<size_t> defsReaching(size_t pc, ptx::RegId reg) const;

    /** Total number of definition sites in the kernel. */
    size_t numDefs() const { return defPcs_.size(); }

  private:
    using BitSet = std::vector<uint64_t>;

    BitSet makeEmpty() const;
    static void setBit(BitSet &s, size_t i);
    static bool testBit(const BitSet &s, size_t i);
    static void orInto(BitSet &a, const BitSet &b);
    static void andNotInto(BitSet &a, const BitSet &b);

    /** Apply the transfer function of instruction @p pc to @p live. */
    void transfer(size_t pc, BitSet &live) const;

    const ptx::Cfg &cfg_;
    size_t words_ = 0;

    std::vector<size_t> defPcs_;            //!< def index -> pc
    std::vector<int> defIdOfPc_;            //!< pc -> def index (-1: none)
    std::vector<BitSet> defsOfReg_;         //!< reg -> set of its def ids
    std::vector<BitSet> blockIn_;           //!< block id -> IN set
};

} // namespace gcl::dataflow

#endif // GCL_DATAFLOW_REACHING_DEFS_HH
