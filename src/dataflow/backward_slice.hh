/**
 * @file
 * Backward use-def slicing of address computations.
 *
 * Given a memory instruction, the slicer walks the use-def chains of its
 * address operand backwards (Section V of the paper) until every path ends
 * in a terminal source: an ld.param, a special register, an immediate — or a
 * data-space load/atomic, which taints the slice as load-dependent.
 */

#ifndef GCL_DATAFLOW_BACKWARD_SLICE_HH
#define GCL_DATAFLOW_BACKWARD_SLICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "reaching_defs.hh"

namespace gcl::dataflow
{

/** Terminal sources a sliced value can originate from. */
struct SliceSources
{
    bool param = false;        //!< an ld.param feeds the value
    bool specialReg = false;   //!< %tid/%ctaid/%ntid/... feeds the value
    bool immediate = false;    //!< a literal feeds the value
    bool dataLoad = false;     //!< an ld.{global,shared,local,const,tex}
    bool atomic = false;       //!< an atomic's old value feeds the value
};

/** Result of slicing one address operand. */
struct SliceResult
{
    SliceSources sources;

    /** Every definition pc visited while tracing the chain. */
    std::vector<size_t> slicePcs;

    /** The pcs of the data loads/atomics that taint the slice (if any). */
    std::vector<size_t> taintingPcs;

    /** True when any data load or atomic contributes to the address. */
    bool
    dependsOnMemory() const
    {
        return sources.dataLoad || sources.atomic;
    }

    /** Human-readable provenance summary. */
    std::string describe() const;
};

/** Backward slicer bound to one kernel's CFG. */
class BackwardSlicer
{
  public:
    explicit BackwardSlicer(const ptx::Cfg &cfg);

    /**
     * Slice the address operand of the memory instruction at @p pc
     * (a load, store or atomic).
     */
    SliceResult sliceAddress(size_t pc) const;

    /** Slice an arbitrary source register used at @p pc. */
    SliceResult sliceRegister(size_t pc, ptx::RegId reg) const;

  private:
    void traceOperand(const ptx::Operand &op, size_t use_pc,
                      SliceResult &result,
                      std::vector<bool> &visited_defs) const;

    const ptx::Cfg &cfg_;
    ReachingDefs reachingDefs_;
};

} // namespace gcl::dataflow

#endif // GCL_DATAFLOW_BACKWARD_SLICE_HH
