/**
 * @file
 * `gcl::exec` — a small deterministic job scheduler.
 *
 * The simulator is strictly single-threaded *within* one device model, but
 * a characterization study runs many independent simulations (the 15-app
 * sweep, ablation grids, parameter scans). This subsystem supplies the
 * concurrency for that outer loop:
 *
 *  - ThreadPool: a fixed set of worker threads draining a FIFO work queue.
 *  - parallelFor / parallelMap: fan an index range out over a pool, with
 *    per-job result slots and per-job exception capture. Results land in
 *    index order regardless of completion order, so callers observe the
 *    same outputs as a serial loop — determinism comes from the slots, not
 *    from the schedule.
 *
 * Contract: a job must be *thread-confined* — it may only touch state it
 * owns (see DESIGN.md, "Thread confinement"). The scheduler guarantees a
 * happens-before edge between submit() and the job, and between the job
 * and wait()'s return, so a job's results may be read without further
 * synchronization once wait() (or parallelFor) returns.
 */

#ifndef GCL_EXEC_SCHEDULER_HH
#define GCL_EXEC_SCHEDULER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcl::exec
{

/** std::thread::hardware_concurrency(), never less than 1. */
unsigned hardwareThreads();

/**
 * Job-count policy shared by every parallel caller: an explicit request
 * wins; otherwise the @p envvar (e.g. "GCL_BENCH_JOBS") is consulted;
 * otherwise @p fallback. A value of 0 (from either source) means "one job
 * per hardware thread". The result is always >= 1.
 */
unsigned resolveJobs(unsigned requested, const char *envvar,
                     unsigned fallback = 1);

/** Fixed-size worker pool draining a FIFO queue of jobs. */
class ThreadPool
{
  public:
    /** Spawns @p num_threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned num_threads);

    /** Joins the workers after draining the queue. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one job. Jobs must not throw — wrap the body if it can
     * (parallelFor does); an escaping exception terminates the process.
     */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;   //!< queue gained work / shutdown
    std::condition_variable allIdle_;     //!< queue empty and no job running
    size_t running_ = 0;                  //!< jobs currently executing
    bool shutdown_ = false;
};

/**
 * Run fn(0) ... fn(count-1) on @p jobs workers and return once all have
 * finished.
 *
 * jobs <= 1 runs every index inline on the calling thread, in order, with
 * exceptions propagating immediately — byte-for-byte the plain serial
 * loop. With jobs > 1, every job runs to completion even if another
 * throws; afterwards the captured exception with the lowest index is
 * rethrown, so the reported failure does not depend on thread timing.
 */
void parallelFor(unsigned jobs, size_t count,
                 const std::function<void(size_t)> &fn);

/**
 * parallelFor with a result slot per index: returns {fn(0), ...,
 * fn(count-1)} in index order. R must be default-constructible.
 */
template <typename R>
std::vector<R>
parallelMap(unsigned jobs, size_t count,
            const std::function<R(size_t)> &fn)
{
    std::vector<R> out(count);
    parallelFor(jobs, count, [&](size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace gcl::exec

#endif // GCL_EXEC_SCHEDULER_HH
