/**
 * @file
 * Persistent worker team for per-cycle fork/join inside one simulation.
 *
 * The sweep scheduler (scheduler.hh) parallelizes *across* runs: each job
 * is milliseconds long, so a mutex/condvar pool is fine. Intra-run
 * parallelism forks and joins every simulated cycle (~7.5 us of work at
 * HEAD), where a condvar round trip or a task allocation per cycle would
 * swamp the work being parallelized. TickTeam therefore keeps one set of
 * threads alive for the whole launch and dispatches with an epoch-counter
 * barrier: workers spin briefly on the epoch word (staying in userspace
 * when cycles come back to back) and fall back to a futex wait
 * (std::atomic::wait) when the coordinator goes quiet.
 *
 * Dispatch contract:
 *  - run(fn, ctx) invokes fn(ctx, p) for every participant p in
 *    [0, participants()), with p == 0 executed inline on the calling
 *    (coordinator) thread and the rest on team threads;
 *  - run() returns only after every participant finished; all memory
 *    effects of the tasks happen-before the return (release/acquire on the
 *    pending counter), and everything the coordinator wrote before run()
 *    happens-before the tasks (release/acquire on the epoch counter);
 *  - tasks must not throw (catch into per-task state and rethrow after
 *    run() returns — see Gpu::launch);
 *  - run() is not reentrant and must always be called from the same
 *    coordinator thread.
 */

#ifndef GCL_EXEC_TICK_TEAM_HH
#define GCL_EXEC_TICK_TEAM_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace gcl::exec
{

/** Spin/futex fork-join team of participants() cycle workers. */
class TickTeam
{
  public:
    using TaskFn = void (*)(void *ctx, unsigned participant);

    /** Spawns @p participants - 1 threads (the caller is participant 0). */
    explicit TickTeam(unsigned participants);
    ~TickTeam();

    TickTeam(const TickTeam &) = delete;
    TickTeam &operator=(const TickTeam &) = delete;

    /** Run one epoch: fn(ctx, p) on all participants; joins before return. */
    void run(TaskFn fn, void *ctx);

    unsigned participants() const { return participants_; }

  private:
    /** Spin iterations before falling back to a futex wait. */
    static constexpr int kSpinIters = 4096;

    static void cpuRelax();
    void workerLoop(unsigned participant);

    /**
     * Effective spin budget: kSpinIters with real parallel hardware, 0 on
     * a single-CPU host — there, the partner can only make progress once
     * the spinner yields, so every spin iteration is pure delay.
     */
    int spinIters_ = kSpinIters;

    TaskFn fn_ = nullptr;  //!< current epoch's task (epoch_ fences access)
    void *ctx_ = nullptr;

    std::atomic<uint64_t> epoch_{0};    //!< bumped to start an epoch
    std::atomic<uint32_t> pending_{0};  //!< workers still running the epoch
    std::atomic<bool> shutdown_{false};

    unsigned participants_;
    std::vector<std::thread> workers_;
};

} // namespace gcl::exec

#endif // GCL_EXEC_TICK_TEAM_HH
