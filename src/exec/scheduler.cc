#include "scheduler.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace gcl::exec
{

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned
resolveJobs(unsigned requested, const char *envvar, unsigned fallback)
{
    unsigned jobs = requested;
    bool chosen = requested != 0;
    if (!chosen && envvar != nullptr) {
        if (const char *env = std::getenv(envvar)) {
            char *end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end == env || *end != '\0')
                gcl_fatal(envvar, "='", env, "' is not a job count");
            jobs = static_cast<unsigned>(v);
            chosen = true;
        }
    }
    if (!chosen)
        return fallback == 0 ? hardwareThreads() : fallback;
    return jobs == 0 ? hardwareThreads() : jobs;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = 1;
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    gcl_assert(job != nullptr, "ThreadPool::submit of an empty job");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        gcl_assert(!shutdown_, "ThreadPool::submit after shutdown");
        queue_.push_back(std::move(job));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutdown with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0)
                allIdle_.notify_all();
        }
    }
}

void
parallelFor(unsigned jobs, size_t count,
            const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        // The inline path *is* the serial loop: same order, exceptions
        // stop later indices exactly as they would without gcl::exec.
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    const auto threads =
        static_cast<unsigned>(std::min<size_t>(jobs, count));
    std::vector<std::exception_ptr> errors(count);
    {
        ThreadPool pool(threads);
        for (size_t i = 0; i < count; ++i) {
            pool.submit([&fn, &errors, i] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (auto &e : errors)
        if (e)
            std::rethrow_exception(e);
}

} // namespace gcl::exec
