#include "tick_team.hh"

#include "util/logging.hh"

namespace gcl::exec
{

TickTeam::TickTeam(unsigned participants)
    : participants_(participants == 0 ? 1 : participants)
{
    if (std::thread::hardware_concurrency() <= 1)
        spinIters_ = 0;
    workers_.reserve(participants_ - 1);
    for (unsigned p = 1; p < participants_; ++p)
        workers_.emplace_back([this, p] { workerLoop(p); });
}

TickTeam::~TickTeam()
{
    shutdown_.store(true, std::memory_order_relaxed);
    // The release bump publishes the shutdown flag to waking workers.
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
TickTeam::cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

void
TickTeam::run(TaskFn fn, void *ctx)
{
    if (participants_ == 1) {
        fn(ctx, 0);
        return;
    }
    fn_ = fn;
    ctx_ = ctx;
    pending_.store(participants_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();

    fn(ctx, 0);

    // Join: spin while siblings are likely mid-cycle, then futex-wait.
    for (int spin = 0; spin < spinIters_; ++spin) {
        if (pending_.load(std::memory_order_acquire) == 0)
            return;
        cpuRelax();
    }
    uint32_t left = pending_.load(std::memory_order_acquire);
    while (left != 0) {
        pending_.wait(left, std::memory_order_acquire);
        left = pending_.load(std::memory_order_acquire);
    }
}

void
TickTeam::workerLoop(unsigned participant)
{
    // Start from the construction-time epoch (0), not a load: a worker
    // whose thread comes up after the coordinator already opened epoch 1
    // would otherwise adopt it as "seen" and sleep through it, deadlocking
    // the first join.
    uint64_t seen = 0;
    for (;;) {
        uint64_t epoch = epoch_.load(std::memory_order_acquire);
        for (int spin = 0; epoch == seen && spin < spinIters_; ++spin) {
            cpuRelax();
            epoch = epoch_.load(std::memory_order_acquire);
        }
        while (epoch == seen) {
            epoch_.wait(seen, std::memory_order_acquire);
            epoch = epoch_.load(std::memory_order_acquire);
        }
        seen = epoch;
        if (shutdown_.load(std::memory_order_relaxed))
            return;
        fn_(ctx_, participant);
        if (pending_.fetch_sub(1, std::memory_order_release) == 1)
            pending_.notify_one();
    }
}

} // namespace gcl::exec
