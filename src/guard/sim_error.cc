#include "sim_error.hh"

#include "watchdog.hh"

namespace gcl
{

namespace
{

std::string
formatWhat(SimError::Kind kind, const std::string &component,
           uint64_t cycle, const std::string &message)
{
    std::string out = "[";
    out += toString(kind);
    out += "] ";
    out += component;
    if (cycle != 0) {
        out += "@";
        out += std::to_string(cycle);
    }
    out += ": ";
    out += message;
    return out;
}

} // namespace

SimError::SimError(Kind kind, std::string component, uint64_t cycle,
                   std::string message)
    : std::runtime_error(formatWhat(kind, component, cycle, message)),
      kind_(kind), component_(std::move(component)), cycle_(cycle),
      message_(std::move(message))
{
}

const char *
toString(SimError::Kind kind)
{
    switch (kind) {
      case SimError::Kind::Config: return "config";
      case SimError::Kind::Invariant: return "invariant";
      case SimError::Kind::Workload: return "workload";
      case SimError::Kind::Hang: return "hang";
      case SimError::Kind::Timeout: return "timeout";
      case SimError::Kind::FaultInjected: return "fault_injected";
    }
    return "unknown";
}

SimFailure
SimFailure::fromError(const SimError &e)
{
    SimFailure f;
    f.failed = true;
    f.kind = toString(e.kind());
    f.component = e.component();
    f.cycle = e.cycle();
    f.message = e.message();
    if (e.hangReport)
        f.detail = e.hangReport->render();
    return f;
}

} // namespace gcl
