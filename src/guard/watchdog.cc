#include "watchdog.hh"

#include <sstream>

namespace gcl::guard
{

bool
Watchdog::check(uint64_t now, uint64_t insts, uint64_t reqs)
{
    nextCheck_ = now + interval_;
    if (insts != lastInsts_ || reqs != lastReqs_) {
        lastInsts_ = insts;
        lastReqs_ = reqs;
        lastProgress_ = now;
        return false;
    }
    return now - lastProgress_ >= budget_;
}

std::string
HangReport::summary() const
{
    std::ostringstream oss;
    oss << "no forward progress for " << stallCycles
        << " cycles in kernel '" << kernel << "' (last progress @"
        << lastProgressCycle << ", " << reqsInFlight()
        << " requests in flight)";
    return oss.str();
}

std::string
HangReport::render() const
{
    std::ostringstream oss;
    oss << "HangReport: kernel '" << kernel << "' stalled at cycle "
        << cycle << "\n";
    oss << "  last progress @" << lastProgressCycle << " ("
        << stallCycles << " stalled cycles)\n";
    oss << "  conservation: " << reqsIssued << " requests issued, "
        << reqsCompleted << " completed, " << reqsInFlight()
        << " in flight; " << instsIssued << " warp insts issued\n";
    oss << "  icnt: " << icntReqQueued << " requests / " << icntRespQueued
        << " responses queued\n";
    for (const auto &sm : sms) {
        // Idle SMs are noise in a hang dump; show only the ones holding
        // work.
        if (sm.residentCtas == 0 && sm.ldstQueued == 0 &&
            sm.pendingOps == 0 && sm.mshrOccupancy == 0)
            continue;
        oss << "  sm" << sm.sm << ": " << sm.residentCtas << " CTAs, "
            << sm.activeWarps << " warps (" << sm.warpsAtBarrier
            << " at barrier), " << sm.inflightOps
            << " scoreboard ops in flight, ldst " << sm.ldstQueued
            << " queued / " << sm.pendingOps << " pending, L1 MSHR "
            << sm.mshrOccupancy << " / " << sm.reservedLines
            << " reserved lines";
        if (!sm.stuckWarps.empty())
            oss << "; stuck: " << sm.stuckWarps;
        if (!sm.critSummary.empty())
            oss << "; " << sm.critSummary;
        oss << "\n";
    }
    for (const auto &part : partitions) {
        if (part.ropQueued == 0 && part.dramQueued == 0 &&
            part.respQueued == 0 && part.mshrOccupancy == 0)
            continue;
        oss << "  part" << part.partition << ": rop " << part.ropQueued
            << ", dram " << part.dramQueued << ", resp " << part.respQueued
            << ", L2 MSHR " << part.mshrOccupancy << " / "
            << part.reservedLines << " reserved lines\n";
    }
    return oss.str();
}

} // namespace gcl::guard
