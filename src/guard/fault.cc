#include "fault.hh"

#include <sstream>

#include "sim_error.hh"
#include "util/rng.hh"

namespace gcl::guard
{

namespace
{

constexpr const char *kKindNames[] = {"mshr", "icnt", "dram", "dropfill",
                                      "stop"};

/** "mshr, icnt, dram, dropfill, stop" for error messages. */
std::string
kindVocabulary()
{
    std::string out;
    for (const char *name : kKindNames) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

[[noreturn]] void
parseError(const std::string &spec, const std::string &why)
{
    gcl_sim_error(SimError::Kind::Config, "fault-plan", 0, why,
                  " in fault plan '", spec,
                  "' (grammar: seed=N; app=NAME; auto=N; kind@start[+len]"
                  " with kind one of ", kindVocabulary(), ")");
}

/** Strict non-negative integer parse; anything else is a spec error. */
uint64_t
parseNumber(const std::string &spec, const std::string &text)
{
    if (text.empty())
        parseError(spec, "missing number");
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            parseError(spec, "'" + text + "' is not a number");
        value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    return value;
}

int
kindFromName(const std::string &name)
{
    for (size_t k = 0; k < std::size(kKindNames); ++k)
        if (name == kKindNames[k])
            return static_cast<int>(k);
    return -1;
}

} // namespace

const char *
toString(FaultKind kind)
{
    const auto i = static_cast<size_t>(kind);
    return i < std::size(kKindNames) ? kKindNames[i] : "unknown";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    uint64_t auto_windows = 0;

    std::istringstream items(spec);
    std::string item;
    while (std::getline(items, item, ';')) {
        if (item.empty())
            continue;

        const size_t eq = item.find('=');
        const size_t at = item.find('@');
        if (eq != std::string::npos && (at == std::string::npos || eq < at)) {
            const std::string key = item.substr(0, eq);
            const std::string value = item.substr(eq + 1);
            if (key == "seed")
                plan.seed_ = parseNumber(spec, value);
            else if (key == "app")
                plan.app_ = value;
            else if (key == "auto")
                auto_windows = parseNumber(spec, value);
            else
                parseError(spec, "unknown key '" + key + "'");
            continue;
        }

        if (at == std::string::npos)
            parseError(spec, "item '" + item + "' is neither key=value "
                             "nor kind@start[+len]");
        const std::string kind_name = item.substr(0, at);
        const int kind = kindFromName(kind_name);
        if (kind < 0)
            parseError(spec, "unknown fault kind '" + kind_name + "'");

        FaultWindow window;
        window.kind = static_cast<FaultKind>(kind);
        std::string range = item.substr(at + 1);
        const size_t plus = range.find('+');
        if (plus != std::string::npos) {
            window.length = parseNumber(spec, range.substr(plus + 1));
            if (window.length == 0)
                parseError(spec, "zero-length window");
            range = range.substr(0, plus);
        }
        window.start = parseNumber(spec, range);
        plan.windows_.push_back(window);
    }

    // Auto windows: a pure function of the seed, drawn with the pinned
    // xoshiro generator so a plan reproduces bit-identically everywhere.
    if (auto_windows > 0) {
        Rng rng(plan.seed_ ^ 0x6761726475617264ull); // "guarduar d"
        for (uint64_t i = 0; i < auto_windows; ++i) {
            FaultWindow window;
            // DropFill and KernelStop excluded: auto plans model
            // survivable environmental degradation (resource-refusal
            // pressure); run-killing faults are asked for explicitly.
            window.kind = static_cast<FaultKind>(
                rng.nextBounded(static_cast<uint64_t>(FaultKind::DropFill)));
            window.start = 500 + rng.nextBounded(100'000);
            window.length = 100 + rng.nextBounded(5'000);
            plan.windows_.push_back(window);
        }
    }

    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream oss;
    oss << "seed=" << seed_;
    if (!app_.empty())
        oss << ";app=" << app_;
    for (const auto &w : windows_) {
        oss << ";" << toString(w.kind) << "@" << w.start;
        if (w.length != 1)
            oss << "+" << w.length;
    }
    return oss.str();
}

} // namespace gcl::guard
