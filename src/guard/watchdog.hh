/**
 * @file
 * Forward-progress watchdog for cycle-accurate simulation loops.
 *
 * A stuck simulation — a leaked MSHR entry, a dropped fill, a scoreboard
 * register that is never released — does not crash: the cycle loop simply
 * spins forever with nothing retiring. Before this subsystem, such a run
 * either burned its whole max_cycles budget (minutes of wall clock) or
 * deadlocked a ctest job. The watchdog detects the condition within a
 * bounded window and produces a structured HangReport naming exactly what
 * is stuck where.
 *
 * Algorithm: the device loop calls onCycle(now, insts, reqs) every cycle
 * with two monotone progress counters (warp instructions issued, memory
 * requests completed). The call is O(1) and normally a single predicted
 * branch; every `interval` cycles the counters are compared against the
 * previous check's snapshot. Any delta counts as progress. When
 * `budget` cycles elapse without progress the check fires; the caller
 * then assembles a HangReport (per-SM warp states, queue occupancies,
 * request conservation) and raises SimError{Kind::Hang} with the report
 * attached.
 *
 * The granularity of hang detection is one check interval: a hang is
 * reported between `budget` and `budget + interval` cycles after the last
 * real progress. EXPERIMENTS.md quantifies the (negligible) overhead at
 * intervals of 1k/10k/100k cycles.
 */

#ifndef GCL_GUARD_WATCHDOG_HH
#define GCL_GUARD_WATCHDOG_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gcl::guard
{

/** One SM's state at hang time. */
struct SmHangInfo
{
    int sm = -1;
    unsigned residentCtas = 0;
    unsigned activeWarps = 0;
    unsigned warpsAtBarrier = 0;
    uint64_t inflightOps = 0;     //!< scoreboard acquire/release imbalance
    size_t ldstQueued = 0;        //!< warp memory ops in the LD/ST unit
    size_t pendingOps = 0;        //!< ops that left the stage, data pending
    size_t mshrOccupancy = 0;     //!< allocated L1 MSHR entries
    size_t reservedLines = 0;     //!< L1 lines reserved for in-flight fills
    std::string stuckWarps;       //!< "w3@pc12 w7@pc12 ..." (first few)
    /**
     * Stall attribution from the crit profiler when it is enabled (top-3
     * stall reasons and top-3 blocking PCs, pre-rendered by
     * crit::SmCrit::hangSummary); empty otherwise. Kept as a plain string
     * so guard does not depend on gcl::crit.
     */
    std::string critSummary;
};

/** One memory partition's state at hang time. */
struct PartitionHangInfo
{
    int partition = -1;
    size_t ropQueued = 0;
    size_t dramQueued = 0;
    size_t respQueued = 0;
    size_t mshrOccupancy = 0;     //!< allocated L2 MSHR entries
    size_t reservedLines = 0;
};

/**
 * Structured snapshot of a hung device, assembled by Gpu::buildHangReport
 * when the watchdog fires. render() gives the multi-line human view that
 * lands in the failure record's detail field.
 */
struct HangReport
{
    std::string kernel;           //!< kernel whose launch hung
    uint64_t cycle = 0;           //!< cycle the watchdog fired
    uint64_t lastProgressCycle = 0;
    uint64_t stallCycles = 0;     //!< cycle - lastProgressCycle

    // Conservation: every request issued must eventually be retired.
    uint64_t instsIssued = 0;     //!< warp instructions issued, total
    uint64_t reqsIssued = 0;      //!< data-expecting requests accepted
    uint64_t reqsCompleted = 0;   //!< requests whose data returned
    uint64_t reqsInFlight() const { return reqsIssued - reqsCompleted; }

    size_t icntReqQueued = 0;
    size_t icntRespQueued = 0;

    std::vector<SmHangInfo> sms;
    std::vector<PartitionHangInfo> partitions;

    /** One-line summary for the SimError message. */
    std::string summary() const;

    /** Full multi-line report (failure-record detail field). */
    std::string render() const;
};

/** Progress tracker driven from the device cycle loop. */
class Watchdog
{
  public:
    /**
     * @param interval cycles between progress checks (0 disables)
     * @param budget cycles without progress before the watchdog fires
     */
    Watchdog(uint64_t interval, uint64_t budget)
        : interval_(interval), budget_(budget)
    {}

    bool enabled() const { return interval_ != 0; }
    uint64_t interval() const { return interval_; }
    uint64_t budget() const { return budget_; }

    /** Start of a launch: everything up to @p now counts as progress. */
    void
    beginLaunch(uint64_t now, uint64_t insts, uint64_t reqs)
    {
        lastProgress_ = now;
        lastInsts_ = insts;
        lastReqs_ = reqs;
        nextCheck_ = interval_ ? now + interval_ : ~uint64_t{0};
    }

    /**
     * Per-cycle hook; O(1), one branch until the next check is due.
     * @retval true the stall budget is exhausted — build a HangReport.
     */
    bool
    onCycle(uint64_t now, uint64_t insts, uint64_t reqs)
    {
        if (now < nextCheck_)
            return false;
        return check(now, insts, reqs);
    }

    /**
     * True when onCycle(now, ...) would actually run a check. Lets a
     * caller whose progress counters are expensive to total (the parallel
     * tick sums per-unit stat shards) skip gathering them off-interval.
     */
    bool due(uint64_t now) const { return now >= nextCheck_; }

    /** Cycle of the last observed progress (valid after a fire). */
    uint64_t lastProgressCycle() const { return lastProgress_; }

  private:
    bool check(uint64_t now, uint64_t insts, uint64_t reqs);

    uint64_t interval_;
    uint64_t budget_;
    uint64_t nextCheck_ = ~uint64_t{0};
    uint64_t lastProgress_ = 0;
    uint64_t lastInsts_ = 0;
    uint64_t lastReqs_ = 0;
};

} // namespace gcl::guard

#endif // GCL_GUARD_WATCHDOG_HH
