/**
 * @file
 * Deterministic fault injection for the simulator (gcl::guard).
 *
 * A FaultPlan describes *when* and *what* to break inside one simulated
 * run, as cycle windows over the device's global clock. Plans are pure
 * data parsed from a spec string (flag / env / config driven), so a fault
 * scenario is reproducible bit-for-bit: the same spec against the same
 * workload produces the same stats, the same failure record, the same
 * trace.
 *
 * Grammar (semicolon-separated items):
 *
 *   spec    := item (';' item)*
 *   item    := 'seed=' N            seed for auto-generated windows
 *            | 'app=' NAME          restrict the plan to one application
 *            | 'auto=' N            derive N windows from the seed
 *            | kind '@' START ['+' LEN]
 *   kind    := 'mshr'               L1 accesses fail with FailMshr
 *            | 'icnt'               SM injection ports refuse (backpressure
 *                                   storm: FailIcnt at every L1)
 *            | 'dram'               DRAM channels refuse new requests
 *            | 'dropfill'           responses arriving at SMs are dropped
 *                                   (leaks the MSHR entry -> livelock)
 *            | 'stop'               premature kernel stop (raises
 *                                   SimError{FaultInjected} at START)
 *
 * A window is the half-open cycle range [START, START+LEN); LEN defaults
 * to 1. Examples:
 *
 *   "mshr@5000+2000"                MSHR exhaustion for 2k cycles
 *   "app=bpr;stop@20000"            kill only bpr's run at cycle 20000
 *   "seed=42;auto=3"                3 pseudo-random windows from seed 42
 *
 * The injection points live on the simulator's existing resource-refusal
 * edges (reservation fails, queue-full backpressure), so injected faults
 * exercise exactly the degraded paths the paper's Figs 3/5/7 quantify —
 * plus, via dropfill, the pathological case those mechanisms assume never
 * happens.
 */

#ifndef GCL_GUARD_FAULT_HH
#define GCL_GUARD_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gcl::guard
{

/** What a fault window breaks. */
enum class FaultKind : uint8_t
{
    MshrExhaust,  //!< L1 reports FailMshr regardless of real occupancy
    IcntBlock,    //!< SM->icnt injection refused (backpressure storm)
    DramRefuse,   //!< DRAM channel refuses to accept (refusal window)
    DropFill,     //!< responses arriving at the SM are silently dropped
    KernelStop,   //!< raise SimError{FaultInjected} at the window start
    NumKinds,
};

const char *toString(FaultKind kind);

/** One fault window: @p kind is active in [start, start + length). */
struct FaultWindow
{
    FaultKind kind = FaultKind::MshrExhaust;
    uint64_t start = 0;
    uint64_t length = 1;

    bool
    contains(uint64_t cycle) const
    {
        return cycle >= start && cycle - start < length;
    }
};

/** Immutable, seed-deterministic fault schedule. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a spec string (see the grammar above). Auto windows are
     * derived from the seed with the repository's pinned Rng, so the
     * whole plan is a pure function of the spec. Auto windows draw only
     * survivable kinds (mshr/icnt/dram); dropfill and stop kill a run
     * and must be asked for explicitly.
     * @throws SimError{Kind::Config} on any syntax or vocabulary error.
     */
    static FaultPlan parse(const std::string &spec);

    bool empty() const { return windows_.empty(); }
    uint64_t seed() const { return seed_; }
    const std::vector<FaultWindow> &windows() const { return windows_; }

    /** Application filter; empty = applies to every run. */
    const std::string &app() const { return app_; }

    /** True when this plan targets runs of application @p name. */
    bool
    appliesTo(const std::string &name) const
    {
        return app_.empty() || app_ == name;
    }

    /** Canonical spec string (stable across parse round-trips). */
    std::string describe() const;

  private:
    uint64_t seed_ = 0;
    std::string app_;
    std::vector<FaultWindow> windows_;
};

/**
 * Per-run fault oracle consulted from the device's hot paths. Owns the
 * plan plus per-kind injection counters. Whether a fault fires is a pure
 * function of the cycle, so concurrent units under the parallel tick get
 * identical answers; the counters are relaxed atomics because they are
 * bumped from unit tasks and only totalled after the run.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    const FaultPlan &plan() const { return plan_; }

    bool mshrExhausted(uint64_t now) { return hit(FaultKind::MshrExhaust, now); }
    bool icntBlocked(uint64_t now) { return hit(FaultKind::IcntBlock, now); }
    bool dramRefused(uint64_t now) { return hit(FaultKind::DramRefuse, now); }
    bool dropFill(uint64_t now) { return hit(FaultKind::DropFill, now); }
    bool stopKernel(uint64_t now) { return hit(FaultKind::KernelStop, now); }

    /** Times the given fault actually fired (stats export). */
    uint64_t
    injected(FaultKind kind) const
    {
        return counts_[static_cast<size_t>(kind)].load(
            std::memory_order_relaxed);
    }

  private:
    bool
    hit(FaultKind kind, uint64_t now)
    {
        for (const auto &w : plan_.windows()) {
            if (w.kind == kind && w.contains(now)) {
                counts_[static_cast<size_t>(kind)].fetch_add(
                    1, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    FaultPlan plan_;
    std::atomic<uint64_t> counts_[static_cast<size_t>(FaultKind::NumKinds)] =
        {};
};

} // namespace gcl::guard

#endif // GCL_GUARD_FAULT_HH
