/**
 * @file
 * `gcl::SimError` — the recoverable error type of the simulation path.
 *
 * The repository distinguishes three failure tiers (DESIGN.md,
 * "Robustness"):
 *
 *  - gcl_panic / gcl_assert: a *process-level* invariant broke (scheduler,
 *    logging, harness bookkeeping). The process state is suspect; abort.
 *  - gcl::SimError: something went wrong *inside one simulated run* — a
 *    simulator invariant tripped, a workload kernel misbehaved, a watchdog
 *    detected a hang, a configured fault fired, or the run exceeded its
 *    cycle budget. One run's device model is self-contained
 *    (thread-confined, see workloads::SimContext), so the error is fully
 *    recoverable: SimContext::run catches it and turns it into a
 *    structured per-run failure record while sibling runs continue.
 *  - gcl_fatal: the user's input is unusable (bad flag, bad config file);
 *    exit before any simulation starts.
 *
 * Every SimError carries a machine-readable (kind, component, cycle)
 * triple plus a human-readable context string, so the bench harness can
 * export structured failure records without parsing messages.
 */

#ifndef GCL_GUARD_SIM_ERROR_HH
#define GCL_GUARD_SIM_ERROR_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace gcl
{

namespace guard
{
struct HangReport;
}

/** Recoverable error raised on the simulation path of one run. */
class SimError : public std::runtime_error
{
  public:
    /** What went wrong, coarsely; keys the structured failure record. */
    enum class Kind : uint8_t
    {
        Config,        //!< unusable configuration (unknown key, bad value)
        Invariant,     //!< a simulator-internal invariant was violated
        Workload,      //!< a workload/kernel did something unsupported
        Hang,          //!< the forward-progress watchdog fired
        Timeout,       //!< the run exceeded its max_cycles budget
        FaultInjected, //!< a configured guard::FaultPlan fault fired
    };

    SimError(Kind kind, std::string component, uint64_t cycle,
             std::string message);

    Kind kind() const { return kind_; }

    /** The unit that raised the error ("l1s3", "icnt", "gpu", ...). */
    const std::string &component() const { return component_; }

    /** Simulated cycle of the error (0 when no clock was in scope). */
    uint64_t cycle() const { return cycle_; }

    /** The message without the "[kind] component@cycle: " prefix. */
    const std::string &message() const { return message_; }

    /** Watchdog report; only attached when kind() == Kind::Hang. */
    std::shared_ptr<const guard::HangReport> hangReport;

  private:
    Kind kind_;
    std::string component_;
    uint64_t cycle_;
    std::string message_;
};

/** Stable lowercase token for @p kind ("hang", "timeout", ...). */
const char *toString(SimError::Kind kind);

/**
 * Structured record of one failed simulation run — what SimContext keeps
 * after catching a SimError, and what the bench harness exports into the
 * stats JSON/CSV artifacts.
 */
struct SimFailure
{
    bool failed = false;
    std::string kind;      //!< toString(SimError::Kind)
    std::string component;
    uint64_t cycle = 0;
    std::string message;   //!< one-line summary
    std::string detail;    //!< multi-line context (e.g. a HangReport)

    static SimFailure fromError(const SimError &e);
};

namespace guard::detail
{
/** Stream-compose a message from variadic parts (mirrors gcl::detail). */
template <typename... Args>
std::string
composeSimMessage(Args &&...args);
} // namespace guard::detail

} // namespace gcl

#include <sstream>
#include <utility>

template <typename... Args>
std::string
gcl::guard::detail::composeSimMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/**
 * Raise a recoverable simulation error.
 * Usage: gcl_sim_error(Kind::Workload, "gpu", now, "empty launch");
 */
#define gcl_sim_error(kind, component, cycle, ...) \
    throw ::gcl::SimError( \
        (kind), (component), (cycle), \
        ::gcl::guard::detail::composeSimMessage(__VA_ARGS__))

/**
 * Simulation-path invariant check: like gcl_assert, but the violation is
 * confined to the run that tripped it (Kind::Invariant) instead of
 * aborting the process.
 */
#define gcl_sim_check(cond, component, cycle, ...) \
    do { \
        if (!(cond)) { \
            gcl_sim_error(::gcl::SimError::Kind::Invariant, (component), \
                          (cycle), "invariant '", #cond, "' violated: ", \
                          __VA_ARGS__); \
        } \
    } while (0)

#endif // GCL_GUARD_SIM_ERROR_HH
