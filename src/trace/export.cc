#include "export.hh"

#include <cinttypes>
#include <cstdlib>
#include <map>
#include <ostream>

#include "json.hh"

namespace gcl::trace
{

void
exportStatsJson(const StatsSet &stats, std::ostream &out)
{
    out << "{\n  \"scalars\": {";
    bool first = true;
    for (const auto &[key, value] : stats.scalars()) {
        out << (first ? "\n" : ",\n") << "    " << jsonQuote(key) << ": "
            << jsonNumber(value);
        first = false;
    }
    out << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[key, hist] : stats.hists()) {
        out << (first ? "\n" : ",\n") << "    " << jsonQuote(key)
            << ": {\"buckets\": {";
        bool first_bucket = true;
        for (const auto &[bucket, weight] : hist.buckets()) {
            out << (first_bucket ? "" : ", ")
                << jsonQuote(std::to_string(bucket)) << ": "
                << jsonNumber(weight);
            first_bucket = false;
        }
        out << "}, \"total_weight\": " << jsonNumber(hist.totalWeight())
            << ", \"mean\": " << jsonNumber(hist.mean()) << "}";
        first = false;
    }
    out << "\n  }\n}\n";
}

bool
importStatsJson(const std::string &text, StatsSet &stats, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    JsonValue root;
    if (!parseJson(text, root, error))
        return false;
    if (!root.isObject())
        return fail("stats JSON root is not an object");
    const JsonValue &scalars = root["scalars"];
    const JsonValue &hists = root["histograms"];
    if (!scalars.isObject() || !hists.isObject())
        return fail("missing 'scalars' or 'histograms' object");

    stats.clear();
    for (const auto &[key, value] : scalars.object) {
        if (!value.isNumber())
            return fail("scalar '" + key + "' is not a number");
        stats.set(key, value.number);
    }
    for (const auto &[key, hist] : hists.object) {
        const JsonValue &buckets = hist["buckets"];
        if (!buckets.isObject())
            return fail("histogram '" + key + "' has no buckets object");
        Histogram &out_hist = stats.hist(key);
        for (const auto &[bucket, weight] : buckets.object) {
            if (!weight.isNumber())
                return fail("histogram '" + key + "' bucket '" + bucket +
                            "' is not a number");
            char *end = nullptr;
            const long long bucket_key =
                std::strtoll(bucket.c_str(), &end, 10);
            if (end != bucket.c_str() + bucket.size())
                return fail("histogram '" + key + "' bucket '" + bucket +
                            "' is not an integer");
            out_hist.add(bucket_key, weight.number);
        }
    }
    return true;
}

std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\r\n") == std::string::npos)
        return field;
    std::string quoted;
    quoted.reserve(field.size() + 2);
    quoted += '"';
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
exportStatsCsv(const StatsSet &stats, std::ostream &out)
{
    // Values format as round-trippable numbers; keys pass through
    // csvField() so punctuation in stat names can never break a row.
    out << "kind,key,bucket,value\n";
    for (const auto &[key, value] : stats.scalars())
        out << "scalar," << csvField(key) << ",," << jsonNumber(value)
            << "\n";
    for (const auto &[key, hist] : stats.hists())
        for (const auto &[bucket, weight] : hist.buckets())
            out << "hist," << csvField(key) << "," << bucket << ","
                << jsonNumber(weight) << "\n";
}

TraceValidation
validateChromeTrace(const std::string &text)
{
    TraceValidation v;
    JsonValue root;
    if (!parseJson(text, root, &v.error))
        return v;
    if (!root.isArray()) {
        v.error = "trace root is not an array";
        return v;
    }

    // Open async slices by (cat, id, name) -> balance.
    std::map<std::string, long> open;
    for (const JsonValue &ev : root.array) {
        if (!ev.isObject()) {
            v.error = "trace element is not an object";
            return v;
        }
        if (!ev["ph"].isString()) {
            v.error = "trace event without 'ph'";
            return v;
        }
        const std::string &ph = ev["ph"].string;
        ++v.events;
        if (ph == "M")
            continue;  // metadata carries no timestamp
        if (!ev["ts"].isNumber() || !ev["pid"].isNumber()) {
            v.error = "event (ph=" + ph + ") missing ts/pid";
            return v;
        }
        if (ph == "C") {
            ++v.counters;
            if (!ev["args"]["value"].isNumber()) {
                v.error = "counter event without args.value";
                return v;
            }
            continue;
        }
        if (ph == "i") {
            ++v.instants;
            continue;
        }
        if (ph == "b" || ph == "e") {
            if (!ev["id"].isString() || !ev["name"].isString()) {
                v.error = "async event without id/name";
                return v;
            }
            const std::string key = ev["cat"].string + "/" +
                                    ev["id"].string + "/" +
                                    ev["name"].string;
            if (ph == "b") {
                ++v.asyncBegins;
                ++open[key];
            } else {
                ++v.asyncEnds;
                if (--open[key] < 0) {
                    v.error = "async end without begin: " + key;
                    return v;
                }
            }
            continue;
        }
        v.error = "unexpected ph '" + ph + "'";
        return v;
    }

    for (const auto &[key, balance] : open)
        if (balance > 0)
            v.unmatchedAsyncs += static_cast<size_t>(balance);
    v.ok = true;
    return v;
}

} // namespace gcl::trace
