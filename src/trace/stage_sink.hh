/**
 * @file
 * Per-unit staging wrapper around a TraceSink for the parallel tick.
 *
 * A TraceSink is single-threaded: its ring, drain callback and id counter
 * must only ever be touched by one thread. When the simulator ticks SMs
 * and memory partitions concurrently (sim_threads > 1), each unit instead
 * emits into its own StageSink, and the coordinator forwards the staged
 * events into the real sink during the commit phase, in the exact order a
 * serial tick would have produced them.
 *
 * Two problems are solved here:
 *
 * 1. Event order. Within one cycle the serial emission order is: all SM
 *    events in SM-id order (segment A), then all partition events in
 *    partition-id order, then the SM response-drain events in SM-id order
 *    (segment B). Each unit's own events stay in program order inside its
 *    buffer; SM sinks split their buffer into the two segments so the
 *    coordinator can forward [sm0..N segA][part0..M][sm0..N segB].
 *
 * 2. Event ids. Serial ticking allocates monotonic ids (TraceSink::newId)
 *    at issue time, in SM-id order within a cycle. Workers cannot share
 *    the counter, so a buffered StageSink hands out *provisional* ids
 *    (bit 63 set, unit id and per-cycle sequence packed below) and records
 *    which pool object's id field received one. At commit the coordinator
 *    walks the records in SM-id order, draws real ids from the shared
 *    sink — reproducing the serial numbering — patches the live pool
 *    objects, and translates staged events as they are forwarded. Only
 *    same-cycle events of the allocating unit can carry a provisional id:
 *    anything that crossed the interconnect is at least icnt_latency
 *    cycles old and was patched in the cycle it was issued.
 *
 * In passthrough mode (sim_threads == 1) every call forwards straight to
 * the real sink, preserving the exact serial behavior at zero extra cost
 * beyond one branch.
 */

#ifndef GCL_TRACE_STAGE_SINK_HH
#define GCL_TRACE_STAGE_SINK_HH

#include <cstdint>
#include <vector>

#include "trace.hh"

namespace gcl::trace
{

/** Unit-confined staging buffer; see file comment. */
class StageSink
{
  public:
    /** Provisional-id marker: real TraceSink ids never reach bit 63. */
    static constexpr uint64_t kProvisionalBit = uint64_t{1} << 63;

    /** What kind of pool object recorded a provisional id. */
    enum IdKind : uint8_t
    {
        kIdReq = 0,  //!< MemRequest::id
        kIdOp = 1,   //!< WarpMemOp::id
    };

    /** One provisional id hand-out, for commit-time patching. */
    struct IdRecord
    {
        uint32_t handle;  //!< pool handle of the object whose id was set
        uint8_t kind;     //!< IdKind
        uint64_t prov;    //!< the provisional value that was handed out
    };

    /** SM buffers split into cycle-stage (A) and drain-stage (B) events. */
    enum Segment : int
    {
        kSegCycle = 0,
        kSegDrain = 1,
    };

    /**
     * Bind to the real sink. @p buffered selects staging (parallel tick)
     * vs passthrough (serial tick); @p unit tags provisional ids.
     */
    void
    attach(TraceSink *real, int16_t unit, bool buffered)
    {
        real_ = real;
        unit_ = unit;
        buffered_ = buffered;
        clearCycle();
    }

    void detach() { real_ = nullptr; }

    bool enabled() const { return real_ != nullptr && real_->enabled(); }

    void
    emit(EventKind kind, uint64_t cycle, uint64_t id, uint64_t addr,
         uint32_t pc = 0, int16_t unit = -1, uint8_t flags = 0)
    {
        if (!buffered_) {
            real_->emit(kind, cycle, id, addr, pc, unit, flags);
            return;
        }
        TraceEvent ev;
        ev.cycle = cycle;
        ev.id = id;
        ev.addr = addr;
        ev.pc = pc;
        ev.unit = unit;
        ev.kind = kind;
        ev.flags = flags;
        buf_[seg_].push_back(ev);
    }

    /**
     * Allocate an id for the object behind @p handle. Passthrough: the
     * real sink's next id. Buffered: a provisional id, recorded for
     * commit-time patching; the per-cycle sequence doubles as the index
     * into the real-id translation table.
     */
    uint64_t
    newId(uint32_t handle, uint8_t kind)
    {
        if (!buffered_)
            return real_->newId();
        const uint64_t prov = kProvisionalBit |
                              (uint64_t{static_cast<uint16_t>(unit_)} << 40) |
                              static_cast<uint32_t>(records_.size());
        records_.push_back(IdRecord{handle, kind, prov});
        return prov;
    }

    /** Switch which segment subsequent emits land in (SM sinks only). */
    void beginSegment(int seg) { seg_ = seg; }

    // ---- Commit side (coordinator only) ----

    std::vector<IdRecord> &records() { return records_; }

    /** Size the translation table; call before setReal(). */
    void prepareRealIds() { realIds_.resize(records_.size()); }

    /** Real id for the record at @p index (== its provisional sequence). */
    void setReal(size_t index, uint64_t real) { realIds_[index] = real; }

    /** Forward one segment's staged events, translating provisional ids. */
    void
    forward(int seg)
    {
        for (const TraceEvent &ev : buf_[seg])
            real_->emit(ev.kind, ev.cycle, translate(ev.id), ev.addr, ev.pc,
                        ev.unit, ev.flags);
    }

    /** Drop staged per-cycle state (after forwarding, or on attach). */
    void
    clearCycle()
    {
        buf_[0].clear();
        buf_[1].clear();
        records_.clear();
        realIds_.clear();
        seg_ = kSegCycle;
    }

    bool
    empty() const
    {
        return buf_[0].empty() && buf_[1].empty() && records_.empty();
    }

  private:
    uint64_t
    translate(uint64_t id) const
    {
        if (!(id & kProvisionalBit))
            return id;
        // A staged event only ever references ids this sink handed out.
        return realIds_[static_cast<uint32_t>(id)];
    }

    TraceSink *real_ = nullptr;
    int16_t unit_ = -1;
    bool buffered_ = false;
    int seg_ = kSegCycle;
    std::vector<TraceEvent> buf_[2];
    std::vector<IdRecord> records_;
    std::vector<uint64_t> realIds_;
};

} // namespace gcl::trace

#endif // GCL_TRACE_STAGE_SINK_HH
