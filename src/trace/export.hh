/**
 * @file
 * Machine-readable exporters for the simulator's StatsSet, plus a
 * validator for the Chrome-JSON traces — the offline half of gcl::trace.
 *
 * JSON schema for one stats set:
 *   {
 *     "scalars":    { "<key>": <number>, ... },
 *     "histograms": { "<key>": { "buckets": { "<int key>": <weight> },
 *                                "total_weight": <number>,
 *                                "mean": <number> }, ... }
 *   }
 *
 * CSV schema (one flat table for scalars and histogram buckets alike):
 *   kind,key,bucket,value
 *   scalar,cycles,,123
 *   hist,cta_distance,1,42
 */

#ifndef GCL_TRACE_EXPORT_HH
#define GCL_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>

#include "util/stats.hh"

namespace gcl::trace
{

/** Serialize @p stats as a JSON object (schema above). */
void exportStatsJson(const StatsSet &stats, std::ostream &out);

/**
 * Parse JSON produced by exportStatsJson() back into @p stats.
 * @retval true on success (round-trip tested against finalize() keys)
 */
bool importStatsJson(const std::string &text, StatsSet &stats,
                     std::string *error = nullptr);

/** Serialize @p stats as a flat CSV table (schema above). */
void exportStatsCsv(const StatsSet &stats, std::ostream &out);

/**
 * RFC 4180 field quoting: returns @p field unchanged when it contains no
 * comma, quote, CR, or LF; otherwise wraps it in double quotes with inner
 * quotes doubled. Every CSV writer in the tree funnels fields through this
 * so keys with punctuation (e.g. crit.pc.<kernel>#<pc>) and free-form text
 * (failure messages, app names) can never break a row.
 */
std::string csvField(const std::string &field);

/** Result of validating a Chrome trace-event JSON file. */
struct TraceValidation
{
    bool ok = false;
    std::string error;          //!< first problem found (when !ok)
    size_t events = 0;          //!< total trace events
    size_t asyncBegins = 0;     //!< "b" events
    size_t asyncEnds = 0;       //!< "e" events
    size_t counters = 0;        //!< "C" events
    size_t instants = 0;        //!< "i" events
    size_t unmatchedAsyncs = 0; //!< "b" without a matching "e" (id+cat)
};

/**
 * Parse @p text as a Chrome trace-event JSON array and check structural
 * invariants: every event has a "ph"; ts/pid present on non-metadata
 * events; async begin/end events pair up by (cat, id, name).
 */
TraceValidation validateChromeTrace(const std::string &text);

} // namespace gcl::trace

#endif // GCL_TRACE_EXPORT_HH
