/**
 * @file
 * Streaming Chrome trace-event JSON exporter (Perfetto-loadable).
 *
 * Attach ChromeTraceWriter::drain() to a TraceSink and the buffered
 * TraceEvents are converted incrementally — the writer never holds more
 * than the per-request pairing state (one small record per in-flight
 * request), so arbitrarily long runs stream to disk in bounded memory.
 *
 * Mapping (ts is the simulated cycle, displayed as 1 cycle = 1 us):
 *  - global-load warp ops     -> async slices ("b"/"e", cat "gload"),
 *    named by their det/nondet class, keyed by op id
 *  - request lifecycles       -> async stage slices (cat "req"): l1_data,
 *    l1_merge_wait, l1_to_icnt, icnt_req, rop, l2_hit, l2_merge_wait,
 *    dram, resp_queue, icnt_resp — paired from consecutive lifecycle
 *    events of the same request id
 *  - reservation fails        -> thread-scoped instants (cat "l1fail"
 *    or "l2fail", named by the failing resource)
 *  - coalescer summaries      -> instants (cat "coalesce")
 *  - timeline samples         -> counter tracks ("C")
 */

#ifndef GCL_TRACE_CHROME_WRITER_HH
#define GCL_TRACE_CHROME_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>

#include "trace.hh"

namespace gcl::trace
{

/** Converts TraceEvents to Chrome trace-event JSON on the fly. */
class ChromeTraceWriter
{
  public:
    /** Starts the JSON array on @p out (which must outlive the writer). */
    explicit ChromeTraceWriter(std::ostream &out);

    /**
     * Fragment mode (@p fragment true): write *bare* comma-separated
     * event objects with no surrounding JSON array, for later inclusion
     * in another writer's stream via appendFragment(). The parallel sweep
     * gives every concurrent run a fragment writer on a private buffer
     * and splices the bodies into the real trace in canonical app order.
     */
    ChromeTraceWriter(std::ostream &out, bool fragment);

    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /**
     * Scope subsequent events under Chrome process @p pid, labeled
     * @p name (the runner calls this once per traced application). A
     * non-empty @p label additionally emits a process_labels metadata
     * event — the runner uses it to stamp the machine name on every
     * traced run.
     */
    void beginProcess(int pid, const std::string &name,
                      const std::string &label = {});

    /** Convert and write a batch of events (TraceSink drain signature). */
    void consume(const TraceEvent *events, size_t n);

    /** A drain callback bound to this writer. */
    TraceSink::DrainFn
    drain()
    {
        return [this](const TraceEvent *events, size_t n) {
            consume(events, n);
        };
    }

    /** Close the JSON array; no further writes allowed. Idempotent. */
    void close();

    /**
     * Splice the body produced by a closed fragment-mode writer into this
     * writer's stream (adding the separating comma if needed). The writer
     * stays usable afterwards; @p events is the fragment's event count.
     */
    void appendFragment(const std::string &body, uint64_t events);

    uint64_t eventsWritten() const { return written_; }

  private:
    /** Last lifecycle point seen for an in-flight request. */
    struct PrevStage
    {
        EventKind kind;
        int outcome;
        uint64_t cycle;
    };

    void writeEvent(const TraceEvent &ev);
    void emitOp(const TraceEvent &ev);
    void emitRequest(const TraceEvent &ev);
    void emitInstant(const TraceEvent &ev, const char *cat,
                     const std::string &name);
    void emitCounter(const TraceEvent &ev);
    void emitAsyncSlice(const char *cat, uint64_t id, const char *name,
                        uint64_t begin, uint64_t end, const TraceEvent &ev);
    void raw(const std::string &json);

    static const char *stageName(const PrevStage &prev, EventKind cur);

    std::ostream &out_;
    std::unordered_map<uint64_t, PrevStage> inflight_;
    uint64_t written_ = 0;
    int pid_ = 0;
    bool first_ = true;
    bool closed_ = false;
    bool fragment_ = false;
};

} // namespace gcl::trace

#endif // GCL_TRACE_CHROME_WRITER_HH
