/**
 * @file
 * Minimal JSON value + recursive-descent parser.
 *
 * Exists so the trace/stats exporters can be validated by parsing their
 * own output back (tests, tools/trace_check) without an external
 * dependency. Supports the full JSON grammar except \u escapes beyond
 * Latin-1; numbers parse as double.
 */

#ifndef GCL_TRACE_JSON_HH
#define GCL_TRACE_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gcl::trace
{

/** A parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; null value when absent or not an object. */
    const JsonValue &operator[](const std::string &key) const;

    /** True when the object has @p key. */
    bool has(const std::string &key) const;
};

/**
 * Parse @p text into @p out.
 * @retval true on success; on failure @p error describes the position.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string *error);

/** Serialize @p s with JSON string escaping, including the quotes. */
std::string jsonQuote(const std::string &s);

/** Round-trippable JSON number formatting ("%.17g", inf/nan -> null). */
std::string jsonNumber(double v);

} // namespace gcl::trace

#endif // GCL_TRACE_JSON_HH
