#include "trace.hh"

#include "util/logging.hh"

namespace gcl::trace
{

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::OpIssue: return "op.issue";
      case EventKind::OpDone: return "op.done";
      case EventKind::ReqL1Access: return "req.l1_access";
      case EventKind::ReqInject: return "req.inject";
      case EventKind::ReqRopEnqueue: return "req.rop_enqueue";
      case EventKind::ReqL2Access: return "req.l2_access";
      case EventKind::ReqDramEnqueue: return "req.dram_enqueue";
      case EventKind::ReqL2Done: return "req.l2_done";
      case EventKind::ReqRespDepart: return "req.resp_depart";
      case EventKind::ReqComplete: return "req.complete";
      case EventKind::Coalesce: return "coalesce";
      case EventKind::Counter: return "counter";
    }
    return "unknown";
}

const char *
toString(CounterId id)
{
    switch (id) {
      case CounterId::ResidentCtas: return "resident_ctas";
      case CounterId::ActiveWarps: return "active_warps";
      case CounterId::LdstQueued: return "ldst_queued";
      case CounterId::L1MshrOccupancy: return "l1_mshr_occupancy";
      case CounterId::IcntReqQueued: return "icnt_req_queued";
      case CounterId::IcntRespQueued: return "icnt_resp_queued";
      case CounterId::RopQueued: return "rop_queued";
      case CounterId::DramQueued: return "dram_queued";
      case CounterId::NumCounters: break;
    }
    return "unknown";
}

TraceSink::TraceSink(size_t capacity)
    : buf_(capacity == 0 ? 1 : capacity)
{
}

void
TraceSink::overflow()
{
    if (drain_) {
        flush();
        return;
    }
    // No drain attached: wrap, overwriting the oldest event.
    head_ = (head_ + 1) % buf_.size();
    --count_;
    ++dropped_;
}

void
TraceSink::flush()
{
    if (drain_ && count_ > 0) {
        // The ring is contiguous except when it wraps; hand out both runs
        // in age order.
        const size_t first = std::min(count_, buf_.size() - head_);
        drain_(buf_.data() + head_, first);
        if (first < count_)
            drain_(buf_.data(), count_ - first);
    }
    head_ = 0;
    count_ = 0;
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    for (size_t i = 0; i < count_; ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

} // namespace gcl::trace
