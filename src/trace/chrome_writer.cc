#include "chrome_writer.hh"

#include <cinttypes>
#include <cstdio>

#include "json.hh"

namespace gcl::trace
{

namespace
{

/** Hex id string ("0x2a") — ids stay exact regardless of JSON doubles. */
std::string
hexId(uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", id);
    return buf;
}

std::string
eventHeader(const char *ph, const char *cat, uint64_t ts, int pid,
            int64_t tid)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"%s\",\"cat\":\"%s\",\"ts\":%" PRIu64
                  ",\"pid\":%d,\"tid\":%" PRId64,
                  ph, cat, ts, pid, tid);
    return buf;
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream &out)
    : ChromeTraceWriter(out, false)
{
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream &out, bool fragment)
    : out_(out), fragment_(fragment)
{
    if (!fragment_)
        out_ << "[\n";
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    close();
}

void
ChromeTraceWriter::raw(const std::string &json)
{
    if (!first_)
        out_ << ",\n";
    first_ = false;
    out_ << json;
    ++written_;
}

void
ChromeTraceWriter::beginProcess(int pid, const std::string &name,
                                const std::string &label)
{
    pid_ = pid;
    raw("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
        std::to_string(pid) + ",\"args\":{\"name\":" + jsonQuote(name) +
        "}}");
    if (!label.empty())
        raw("{\"ph\":\"M\",\"name\":\"process_labels\",\"pid\":" +
            std::to_string(pid) + ",\"args\":{\"labels\":" +
            jsonQuote(label) + "}}");
}

void
ChromeTraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    if (!fragment_)
        out_ << "\n]\n";
    out_.flush();
}

void
ChromeTraceWriter::appendFragment(const std::string &body, uint64_t events)
{
    if (body.empty())
        return;
    if (!first_)
        out_ << ",\n";
    first_ = false;
    out_ << body;
    written_ += events;
}

void
ChromeTraceWriter::consume(const TraceEvent *events, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        writeEvent(events[i]);
}

void
ChromeTraceWriter::writeEvent(const TraceEvent &ev)
{
    switch (ev.kind) {
      case EventKind::OpIssue:
      case EventKind::OpDone:
        emitOp(ev);
        return;
      case EventKind::ReqL1Access:
      case EventKind::ReqInject:
      case EventKind::ReqRopEnqueue:
      case EventKind::ReqL2Access:
      case EventKind::ReqDramEnqueue:
      case EventKind::ReqL2Done:
      case EventKind::ReqRespDepart:
      case EventKind::ReqComplete:
        emitRequest(ev);
        return;
      case EventKind::Coalesce: {
        const auto lanes = static_cast<uint32_t>(ev.addr >> 32);
        const auto lines = static_cast<uint32_t>(ev.addr);
        raw(eventHeader("i", "coalesce", ev.cycle, pid_, ev.unit) +
            ",\"s\":\"t\",\"name\":\"coalesce\",\"args\":{\"pc\":" +
            std::to_string(ev.pc) + ",\"lanes\":" + std::to_string(lanes) +
            ",\"lines\":" + std::to_string(lines) + ",\"class\":\"" +
            ((ev.flags & kFlagNonDet) ? "nondet" : "det") + "\"}}");
        return;
      }
      case EventKind::Counter:
        emitCounter(ev);
        return;
    }
}

void
ChromeTraceWriter::emitOp(const TraceEvent &ev)
{
    const char *ph = ev.kind == EventKind::OpIssue ? "b" : "e";
    const char *name = (ev.flags & kFlagNonDet) ? "gload.nondet"
                                                : "gload.det";
    raw(eventHeader(ph, "gload", ev.cycle, pid_, ev.unit) +
        ",\"id\":" + hexId(ev.id) + ",\"name\":\"" + name +
        "\",\"args\":{\"pc\":" + std::to_string(ev.pc) +
        ",\"warp\":" + std::to_string(ev.addr) +
        ",\"sm\":" + std::to_string(ev.unit) + "}}");
}

const char *
ChromeTraceWriter::stageName(const PrevStage &prev, EventKind cur)
{
    switch (prev.kind) {
      case EventKind::ReqL1Access:
        if (cur == EventKind::ReqComplete)
            return prev.outcome == 0 ? "l1_data" : "l1_merge_wait";
        return "l1_to_icnt";
      case EventKind::ReqInject:
        return "icnt_req";
      case EventKind::ReqRopEnqueue:
        return "rop";
      case EventKind::ReqL2Access:
        if (cur == EventKind::ReqDramEnqueue)
            return "l2_miss";
        return prev.outcome == 0 ? "l2_hit" : "l2_merge_wait";
      case EventKind::ReqDramEnqueue:
        return "dram";
      case EventKind::ReqL2Done:
        return "resp_queue";
      case EventKind::ReqRespDepart:
        return "icnt_resp";
      default:
        return "stage";
    }
}

void
ChromeTraceWriter::emitAsyncSlice(const char *cat, uint64_t id,
                                  const char *name, uint64_t begin,
                                  uint64_t end, const TraceEvent &ev)
{
    const std::string id_str = hexId(id);
    const std::string args = ",\"args\":{\"pc\":" + std::to_string(ev.pc) +
                             ",\"line\":" + std::to_string(ev.addr) + "}";
    raw(eventHeader("b", cat, begin, pid_, ev.unit) + ",\"id\":" + id_str +
        ",\"name\":\"" + name + "\"" + args + "}");
    raw(eventHeader("e", cat, end, pid_, ev.unit) + ",\"id\":" + id_str +
        ",\"name\":\"" + name + "\"}");
}

void
ChromeTraceWriter::emitRequest(const TraceEvent &ev)
{
    const int outcome = unpackOutcome(ev.flags);

    // Reservation fails (outcomes 3..5) are retry cycles, not lifecycle
    // progress: surface them as instants and leave the pairing state
    // alone. The sim already dedupes consecutive identical fails.
    if (outcome >= 3) {
        static const char *l1_names[3] = {"l1.fail_tag", "l1.fail_mshr",
                                          "l1.fail_icnt"};
        static const char *l2_names[3] = {"l2.fail_tag", "l2.fail_mshr",
                                          "l2.fail_dram"};
        const bool l1 = ev.kind == EventKind::ReqL1Access;
        emitInstant(ev, l1 ? "l1fail" : "l2fail",
                    (l1 ? l1_names : l2_names)[outcome - 3]);
        return;
    }

    // Stores never produce a response; writing their (open-ended)
    // lifecycles would leak pairing state, so only their fails above are
    // surfaced.
    if (ev.flags & kFlagWrite)
        return;

    auto it = inflight_.find(ev.id);
    if (it != inflight_.end()) {
        // Close the stage between the previous lifecycle point and this
        // one. Zero-length stages carry no information — skip them.
        if (ev.cycle > it->second.cycle)
            emitAsyncSlice("req", ev.id, stageName(it->second, ev.kind),
                           it->second.cycle, ev.cycle, ev);
    }

    if (ev.kind == EventKind::ReqComplete) {
        if (it != inflight_.end())
            inflight_.erase(it);
        return;
    }
    inflight_[ev.id] = PrevStage{ev.kind, outcome, ev.cycle};
}

void
ChromeTraceWriter::emitInstant(const TraceEvent &ev, const char *cat,
                               const std::string &name)
{
    raw(eventHeader("i", cat, ev.cycle, pid_, ev.unit) +
        ",\"s\":\"t\",\"name\":" + jsonQuote(name) +
        ",\"args\":{\"pc\":" + std::to_string(ev.pc) +
        ",\"line\":" + std::to_string(ev.addr) +
        ",\"req\":" + std::to_string(ev.id) + "}}");
}

void
ChromeTraceWriter::emitCounter(const TraceEvent &ev)
{
    raw(eventHeader("C", "timeline", ev.cycle, pid_, 0) + ",\"name\":\"" +
        toString(static_cast<CounterId>(ev.id)) +
        "\",\"args\":{\"value\":" + std::to_string(ev.addr) + "}}");
}

} // namespace gcl::trace
