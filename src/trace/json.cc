#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gcl::trace
{

namespace
{

const JsonValue kNullValue;

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const char *cur, const char *end) : cur_(cur), end_(end) {}

    bool
    parse(JsonValue &out, std::string *error)
    {
        skipWs();
        if (!parseValue(out))
            return fail(error);
        skipWs();
        if (cur_ != end_) {
            err_ = "trailing characters";
            return fail(error);
        }
        return true;
    }

  private:
    bool
    fail(std::string *error)
    {
        if (err_.empty())
            return true;
        if (error)
            *error = err_ + " at offset " + std::to_string(offset_);
        return false;
    }

    void
    skipWs()
    {
        while (cur_ != end_ && (*cur_ == ' ' || *cur_ == '\t' ||
                                *cur_ == '\n' || *cur_ == '\r'))
            advance();
    }

    void
    advance()
    {
        ++cur_;
        ++offset_;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (static_cast<size_t>(end_ - cur_) < len)
            return false;
        for (size_t i = 0; i < len; ++i)
            if (cur_[i] != word[i])
                return false;
        cur_ += len;
        offset_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (cur_ == end_) {
            err_ = "unexpected end of input";
            return false;
        }
        switch (*cur_) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.string);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            if (literal("true", 4))
                return true;
            err_ = "bad literal";
            return false;
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            if (literal("false", 5))
                return true;
            err_ = "bad literal";
            return false;
          case 'n':
            out.type = JsonValue::Type::Null;
            if (literal("null", 4))
                return true;
            err_ = "bad literal";
            return false;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        advance();  // '{'
        skipWs();
        if (cur_ != end_ && *cur_ == '}') {
            advance();
            return true;
        }
        for (;;) {
            skipWs();
            if (cur_ == end_ || *cur_ != '"') {
                err_ = "expected object key";
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (cur_ == end_ || *cur_ != ':') {
                err_ = "expected ':'";
                return false;
            }
            advance();
            skipWs();
            if (!parseValue(out.object[key]))
                return false;
            skipWs();
            if (cur_ != end_ && *cur_ == ',') {
                advance();
                continue;
            }
            if (cur_ != end_ && *cur_ == '}') {
                advance();
                return true;
            }
            err_ = "expected ',' or '}'";
            return false;
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        advance();  // '['
        skipWs();
        if (cur_ != end_ && *cur_ == ']') {
            advance();
            return true;
        }
        for (;;) {
            skipWs();
            out.array.emplace_back();
            if (!parseValue(out.array.back()))
                return false;
            skipWs();
            if (cur_ != end_ && *cur_ == ',') {
                advance();
                continue;
            }
            if (cur_ != end_ && *cur_ == ']') {
                advance();
                return true;
            }
            err_ = "expected ',' or ']'";
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        advance();  // opening quote
        out.clear();
        while (cur_ != end_ && *cur_ != '"') {
            char c = *cur_;
            if (c == '\\') {
                advance();
                if (cur_ == end_)
                    break;
                switch (*cur_) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (end_ - cur_ < 5) {
                        err_ = "truncated \\u escape";
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        const char h = cur_[i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            err_ = "bad \\u escape";
                            return false;
                        }
                    }
                    // Latin-1 subset is enough for our own output.
                    out.push_back(static_cast<char>(code & 0xff));
                    cur_ += 4;
                    offset_ += 4;
                    break;
                  }
                  default:
                    err_ = "bad escape";
                    return false;
                }
                advance();
            } else {
                out.push_back(c);
                advance();
            }
        }
        if (cur_ == end_) {
            err_ = "unterminated string";
            return false;
        }
        advance();  // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = cur_;
        while (cur_ != end_ &&
               (*cur_ == '-' || *cur_ == '+' || *cur_ == '.' ||
                *cur_ == 'e' || *cur_ == 'E' ||
                (*cur_ >= '0' && *cur_ <= '9')))
            advance();
        if (cur_ == start) {
            err_ = "expected value";
            return false;
        }
        std::string text(start, cur_);
        char *parse_end = nullptr;
        out.type = JsonValue::Type::Number;
        out.number = std::strtod(text.c_str(), &parse_end);
        if (parse_end != text.c_str() + text.size()) {
            err_ = "bad number";
            return false;
        }
        return true;
    }

    const char *cur_;
    const char *end_;
    size_t offset_ = 0;
    std::string err_;
};

} // namespace

const JsonValue &
JsonValue::operator[](const std::string &key) const
{
    if (type == Type::Object) {
        auto it = object.find(key);
        if (it != object.end())
            return it->second;
    }
    return kNullValue;
}

bool
JsonValue::has(const std::string &key) const
{
    return type == Type::Object && object.count(key) > 0;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    out = JsonValue{};
    Parser parser(text.data(), text.data() + text.size());
    return parser.parse(out, error);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace gcl::trace
