/**
 * @file
 * `gcl::trace` — low-overhead memory-request lifecycle tracing.
 *
 * The simulator's stats (sim/stats.hh) are pre-aggregated scalars; this
 * subsystem records the *individual events* behind them so a single
 * request's journey through coalescer -> L1 -> interconnect -> L2 -> DRAM
 * can be inspected, re-sliced offline, or loaded into Perfetto.
 *
 * Design:
 *  - TraceEvent is a 32-byte POD; a TraceSink is a preallocated ring of
 *    them. Emitting is a bounds check and a struct store.
 *  - Components hold a `TraceSink *` that is null by default; the
 *    GCL_TRACE macro costs one null/enable branch on the hot path and
 *    compiles out entirely under -DGCL_TRACE_DISABLED.
 *  - When the ring fills, an attached drain callback (the streaming
 *    Chrome-JSON writer, typically) receives the buffered events and the
 *    ring resets; without a drain the ring wraps, overwriting the oldest
 *    events and counting them as dropped.
 *
 * Event identity: every traced WarpMemOp and MemRequest gets a monotonic
 * id from the sink, so lifecycles are keyed by (warp, pc, request id) and
 * stage durations can be paired offline by id alone.
 */

#ifndef GCL_TRACE_TRACE_HH
#define GCL_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gcl::trace
{

/** What happened. Request-lifecycle kinds are ordered by pipeline depth. */
enum class EventKind : uint8_t
{
    // ---- Warp-op lifecycle (global loads only) ----
    OpIssue,        //!< entered the LD/ST first stage (tIssue)
    OpDone,         //!< all data back, writeback scheduled (tDone)

    // ---- Request lifecycle ----
    ReqL1Access,    //!< one L1 access attempt; outcome in flags (incl.
                    //!< hit-reserved and the three reservation-fail kinds)
    ReqInject,      //!< entered the SM's interconnect injection queue
    ReqRopEnqueue,  //!< popped by the memory partition into the ROP pipe
    ReqL2Access,    //!< L2 slice access attempt; outcome in flags
    ReqDramEnqueue, //!< missed L2, queued on the partition's DRAM channel
    ReqL2Done,      //!< data ready at the partition (hit or fill)
    ReqRespDepart,  //!< response left the partition's queue
    ReqComplete,    //!< data back at the SM / writeback ready

    // ---- Coalescer ----
    Coalesce,       //!< one warp op coalesced; lanes/lines packed in addr

    // ---- Cycle-sampled timeline ----
    Counter,        //!< id = CounterId, addr = value
};

const char *toString(EventKind kind);

/** Cycle-sampled occupancy/queue-depth series (EventKind::Counter). */
enum class CounterId : uint8_t
{
    ResidentCtas,     //!< CTAs resident across all SMs
    ActiveWarps,      //!< non-retired warps across all SMs
    LdstQueued,       //!< warp memory ops queued in the LD/ST units
    L1MshrOccupancy,  //!< allocated L1 MSHR entries across all SMs
    IcntReqQueued,    //!< requests inside the request network
    IcntRespQueued,   //!< responses inside the response network
    RopQueued,        //!< requests in the partitions' ROP pipelines
    DramQueued,       //!< requests queued on the DRAM channels
    NumCounters,
};

const char *toString(CounterId id);

// Bit layout of TraceEvent::flags.
constexpr uint8_t kFlagNonDet = 1u << 0;
constexpr uint8_t kFlagWrite = 1u << 1;
constexpr uint8_t kFlagAtomic = 1u << 2;
// Bits 4..7 hold (AccessOutcome + 1); 0 means "no outcome attached".
constexpr unsigned kOutcomeShift = 4;

constexpr uint8_t
packOutcome(unsigned outcome)
{
    return static_cast<uint8_t>((outcome + 1) << kOutcomeShift);
}

/** Outcome carried by @p flags, or -1 when none was attached. */
constexpr int
unpackOutcome(uint8_t flags)
{
    return static_cast<int>(flags >> kOutcomeShift) - 1;
}

/** One traced event. POD, 32 bytes. */
struct TraceEvent
{
    uint64_t cycle = 0;  //!< simulated cycle of the event
    uint64_t id = 0;     //!< request/op id (CounterId for Counter events)
    uint64_t addr = 0;   //!< line address / counter value / packed payload
    uint32_t pc = 0;     //!< owning warp op's pc (0 when not applicable)
    int16_t unit = -1;   //!< SM or partition id
    EventKind kind = EventKind::OpIssue;
    uint8_t flags = 0;
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent is sized for the ring");

/**
 * Preallocated ring buffer of trace events.
 *
 * Not thread-safe by design: one simulation is single-threaded, and under
 * the parallel sweep every run owns a *private* sink (see
 * workloads::SimContext), so a sink is only ever touched by the thread
 * confining its run. Use setNextId() to give concurrent runs disjoint id
 * ranges so their events stay distinguishable after merging.
 */
class TraceSink
{
  public:
    using DrainFn = std::function<void(const TraceEvent *events, size_t n)>;

    explicit TraceSink(size_t capacity = kDefaultCapacity);

    /** Runtime master switch; GCL_TRACE checks it before emitting. */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Register @p drain to receive the ring's contents whenever it fills
     * (and on flush()). With a drain attached no event is ever dropped.
     */
    void setDrain(DrainFn drain) { drain_ = std::move(drain); }

    /** Append one event; wraps or drains when the ring is full. */
    void
    emit(EventKind kind, uint64_t cycle, uint64_t id, uint64_t addr,
         uint32_t pc = 0, int16_t unit = -1, uint8_t flags = 0)
    {
        if (count_ == buf_.size())
            overflow();
        TraceEvent &ev = buf_[(head_ + count_) % buf_.size()];
        ev.cycle = cycle;
        ev.id = id;
        ev.addr = addr;
        ev.pc = pc;
        ev.unit = unit;
        ev.kind = kind;
        ev.flags = flags;
        ++count_;
        ++emitted_;
    }

    /** Hand buffered events to the drain (if any) and reset the ring. */
    void flush();

    /** Monotonic ids for traced ops and requests (0 is "untraced"). */
    uint64_t newId() { return ++lastId_; }

    /**
     * Start id allocation at @p base + 1. Chrome trace-event async slices
     * are paired by (cat, id) *across* processes, so per-run sinks that
     * feed one merged trace must carve out disjoint id ranges.
     */
    void setIdBase(uint64_t base) { lastId_ = base; }

    size_t capacity() const { return buf_.size(); }
    size_t size() const { return count_; }
    uint64_t emitted() const { return emitted_; }
    uint64_t dropped() const { return dropped_; }

    /** Buffered events, oldest first (test/offline introspection). */
    std::vector<TraceEvent> snapshot() const;

    static constexpr size_t kDefaultCapacity = size_t{1} << 20;

  private:
    void overflow();

    std::vector<TraceEvent> buf_;
    size_t head_ = 0;       //!< index of the oldest buffered event
    size_t count_ = 0;      //!< buffered events
    uint64_t emitted_ = 0;
    uint64_t dropped_ = 0;
    uint64_t lastId_ = 0;
    bool enabled_ = false;
    DrainFn drain_;
};

} // namespace gcl::trace

/**
 * Hot-path emission macro: one null + one enable branch when tracing is
 * compiled in; nothing at all under -DGCL_TRACE_DISABLED.
 *
 * Usage: GCL_TRACE(sink_ptr, EventKind::ReqInject, now, req->id, ...);
 */
#ifndef GCL_TRACE_DISABLED
// `auto *` so the macro accepts both TraceSink and the per-unit StageSink
// wrapper (stage_sink.hh) — both expose enabled() and emit().
#define GCL_TRACE(sink, ...) \
    do { \
        auto *gcl_trace_sink_ = (sink); \
        if (gcl_trace_sink_ && gcl_trace_sink_->enabled()) \
            gcl_trace_sink_->emit(__VA_ARGS__); \
    } while (0)
/** True when the sink would record events (guards id assignment etc.). */
#define GCL_TRACE_ACTIVE(sink) ((sink) != nullptr && (sink)->enabled())
#else
#define GCL_TRACE(sink, ...) ((void)0)
#define GCL_TRACE_ACTIVE(sink) false
#endif

#endif // GCL_TRACE_TRACE_HH
