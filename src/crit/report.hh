/**
 * @file
 * Renderers over the finalized crit.* stats schema (see crit.cc): the
 * per-class CPI stack, the ranked top-N critical-load table, and a
 * collapsed-stack file consumable by standard flamegraph tools. Everything
 * here reads only a finalized StatsSet, so the same code serves
 * tools/crit_report (offline, from a stats JSON), bench/figX_cpi_stack
 * (live, across the suite) and the bench runner's --crit-out flag.
 *
 * All output is deterministic: inputs are deterministic merged stats and
 * every sort has a total order, so reports are byte-identical across
 * --sim-threads and --jobs (scripts/check.sh diffs them against a
 * committed golden).
 */

#ifndef GCL_CRIT_REPORT_HH
#define GCL_CRIT_REPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "crit.hh"
#include "util/stats.hh"

namespace gcl::crit
{

/** The device-wide issue-slot breakdown extracted from crit.* scalars. */
struct CpiStack {
    bool valid = false; ///< false when the stats carry no crit section
    double issueWidth = 0;
    double slots = 0; ///< cycles * issue_width (all slots offered)
    double issued = 0;
    double stall[kNumReasons] = {};
    double dhzByClass[kNumClasses] = {}; ///< data-hazard split by class
};

CpiStack cpiStack(const StatsSet &stats);

/** One row of the critical-load table (one static global load). */
struct CritLoad {
    std::string kernel;
    uint64_t pc = 0;
    unsigned cls = 0; ///< 1 det, 2 nondet
    double stallSlots = 0;
    double turnCnt = 0;
    double turnMean = 0;
    double turnP99 = 0; ///< upper edge of the p99 log2 bucket
    double stageSum[kNumStages] = {};
};

/**
 * Loads ranked by issue-stall slots charged (desc), then turnaround sum,
 * then kernel/pc — a total order, so the ranking is reproducible.
 * Non-load PCs (producers charged under data_hazard.other) are excluded.
 */
std::vector<CritLoad> topLoads(const StatsSet &stats, size_t top_n);

/** Human-readable CPI stack + top-N table for one app. */
void renderText(std::ostream &out, const std::string &app,
                const StatsSet &stats, size_t top_n);

/**
 * CSV rows (RFC 4180) for one app's top-N loads; emit @p header once per
 * file. Columns: app,kernel,pc,class,stall_slots,stall_share,loads,
 * mean_turnaround,p99_turnaround,<one column per stage sum>.
 */
void renderCsv(std::ostream &out, const std::string &app,
               const StatsSet &stats, size_t top_n, bool header);

/**
 * Collapsed-stack lines ("frame;frame;... count"), one sample per issue
 * slot: issued slots, PC-attributed stalls (reason -> class -> PC), and
 * the unattributed remainder per reason.
 */
void appendCollapsed(std::ostream &out, const std::string &app,
                     const StatsSet &stats);

} // namespace gcl::crit

#endif // GCL_CRIT_REPORT_HH
