#include "crit.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace gcl::crit
{

const char *
reasonName(StallReason reason)
{
    switch (reason) {
    case StallReason::DataHazard:
        return "data_hazard";
    case StallReason::Barrier:
        return "barrier";
    case StallReason::IbufferEmpty:
        return "ibuffer_empty";
    case StallReason::Pipeline:
        return "pipeline";
    case StallReason::MshrFull:
        return "mshr_full";
    case StallReason::IcntBackpressure:
        return "icnt_backpressure";
    case StallReason::IdleNoCta:
        return "idle";
    }
    return "unknown";
}

const char *
className(unsigned cls)
{
    switch (cls) {
    case 1:
        return "det";
    case 2:
        return "nondet";
    default:
        return "other";
    }
}

const char *
stageName(Stage stage)
{
    switch (stage) {
    case Stage::Accept:
        return "accept";
    case Stage::L1:
        return "l1";
    case Stage::Merge:
        return "merge";
    case Stage::IcntToL2:
        return "icnt_l2";
    case Stage::L2:
        return "l2";
    case Stage::Dram:
        return "dram";
    case Stage::Resp:
        return "resp";
    }
    return "unknown";
}

void
PcCrit::merge(const PcCrit &other)
{
    // Classes come from the same deterministic per-launch tables on every
    // shard, so "last writer wins" cannot disagree across shards.
    if (other.loadClass)
        loadClass = other.loadClass;
    stallSlots += other.stallSlots;
    for (unsigned r = 0; r < kNumReasons; ++r)
        stallByReason[r] += other.stallByReason[r];
    turnCnt += other.turnCnt;
    turnSum += other.turnSum;
    for (unsigned b = 0; b < kLog2Buckets; ++b)
        turnLog2[b] += other.turnLog2[b];
    for (unsigned s = 0; s < kNumStages; ++s) {
        stageCnt[s] += other.stageCnt[s];
        stageSum[s] += other.stageSum[s];
        for (unsigned b = 0; b < kLog2Buckets; ++b)
            stageLog2[s][b] += other.stageLog2[s][b];
    }
}

void
SmCrit::chargePc(StallReason reason, uint64_t pc_key, uint8_t load_class)
{
    ++stall[static_cast<unsigned>(reason)];
    if (reason == StallReason::DataHazard)
        ++dhzByClass[load_class < kNumClasses ? load_class : 0];
    PcCrit &pc = pcs_[pc_key];
    if (load_class)
        pc.loadClass = load_class;
    ++pc.stallSlots;
    ++pc.stallByReason[static_cast<unsigned>(reason)];
}

void
SmCrit::stage(uint64_t pc_key, Stage stage, Cycle delta)
{
    PcCrit &pc = pcs_[pc_key];
    const unsigned s = static_cast<unsigned>(stage);
    ++pc.stageCnt[s];
    pc.stageSum[s] += static_cast<double>(delta);
    ++pc.stageLog2[s][log2Bucket(delta)];
}

void
SmCrit::opDone(uint64_t pc_key, Cycle turnaround, uint8_t load_class)
{
    PcCrit &pc = pcs_[pc_key];
    if (load_class)
        pc.loadClass = load_class;
    ++pc.turnCnt;
    pc.turnSum += static_cast<double>(turnaround);
    ++pc.turnLog2[log2Bucket(turnaround)];
}

std::string
SmCrit::hangSummary() const
{
    uint64_t total = 0;
    for (unsigned r = 0; r < kNumReasons; ++r)
        total += stall[r];
    if (total == 0)
        return {};

    // Top-3 reasons: count desc, enum order as the deterministic tiebreak.
    std::vector<unsigned> reasons;
    for (unsigned r = 0; r < kNumReasons; ++r)
        if (stall[r])
            reasons.push_back(r);
    std::stable_sort(reasons.begin(), reasons.end(),
                     [&](unsigned a, unsigned b) {
                         return stall[a] > stall[b];
                     });
    if (reasons.size() > 3)
        reasons.resize(3);

    std::ostringstream oss;
    oss << "stalls:";
    for (unsigned r : reasons)
        oss << ' ' << reasonName(static_cast<StallReason>(r)) << ' '
            << (100 * stall[r] + total / 2) / total << '%';

    // Top-3 blocking PCs: slots desc, key asc. Guard must not depend on
    // kernel-name tables, so render as k<kernel>#<pc>.
    std::vector<std::pair<uint64_t, uint64_t>> pcs; // (key, slots)
    for (const auto &[key, pc] : pcs_)
        if (pc.stallSlots)
            pcs.emplace_back(key, pc.stallSlots);
    std::sort(pcs.begin(), pcs.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    if (pcs.size() > 3)
        pcs.resize(3);
    if (!pcs.empty()) {
        oss << "; blocking:";
        for (const auto &[key, slots] : pcs)
            oss << " k" << (key >> 32) << '#' << (key & 0xffffffffu) << '('
                << slots << ')';
    }
    return oss.str();
}

void
SmCrit::merge(const SmCrit &other)
{
    cycles += other.cycles;
    issued += other.issued;
    for (unsigned r = 0; r < kNumReasons; ++r)
        stall[r] += other.stall[r];
    for (unsigned c = 0; c < kNumClasses; ++c)
        dhzByClass[c] += other.dhzByClass[c];
    for (const auto &[key, pc] : other.pcs_)
        pcs_[key].merge(pc);
}

SmCrit &
CritStats::newShard()
{
    return shards_.emplace_back();
}

void
CritStats::finalize(const std::vector<std::string> &kernel_names,
                    StatsSet &set)
{
    if (finalized_)
        return;
    finalized_ = true;

    set.set("crit.issue_width", static_cast<double>(issueWidth_));
    set.set("crit.sms", static_cast<double>(shards_.size()));

    // Per-SM accounting plus the device-wide merge. Every stall reason is
    // emitted even when zero so the schema (and the accounting identity
    // trace_check recomputes) is closed over a fixed key set.
    SmCrit total;
    for (size_t i = 0; i < shards_.size(); ++i) {
        const SmCrit &sm = shards_[i];
        const std::string prefix = "crit.sm" + std::to_string(i) + '.';
        set.set(prefix + "cycles", static_cast<double>(sm.cycles));
        set.set(prefix + "issued", static_cast<double>(sm.issued));
        for (unsigned r = 0; r < kNumReasons; ++r)
            set.set(prefix + "stall." +
                        reasonName(static_cast<StallReason>(r)),
                    static_cast<double>(sm.stall[r]));
        total.merge(sm);
    }

    set.set("crit.cycles", static_cast<double>(total.cycles));
    set.set("crit.issued", static_cast<double>(total.issued));
    for (unsigned r = 0; r < kNumReasons; ++r)
        set.set(std::string("crit.stall.") +
                    reasonName(static_cast<StallReason>(r)),
                static_cast<double>(total.stall[r]));
    for (unsigned c = 0; c < kNumClasses; ++c)
        set.set(std::string("crit.stall.data_hazard.") + className(c),
                static_cast<double>(total.dhzByClass[c]));

    // Per-PC attribution. An ordered map gives deterministic iteration;
    // the emission itself is keyed, so order only matters for debugging.
    std::map<uint64_t, PcCrit> merged(total.pcs().begin(),
                                      total.pcs().end());
    for (const auto &[key, pc] : merged) {
        const unsigned kernel = static_cast<unsigned>(key >> 32);
        const uint64_t addr = key & 0xffffffffu;
        std::string name = kernel < kernel_names.size()
                               ? kernel_names[kernel]
                               : 'k' + std::to_string(kernel);
        const std::string prefix = "crit.pc." + name + '#' +
                                   std::to_string(addr) + '.';
        set.set(prefix + "class", static_cast<double>(pc.loadClass));
        set.set(prefix + "stall_slots",
                static_cast<double>(pc.stallSlots));
        for (unsigned r = 0; r < kNumReasons; ++r)
            if (pc.stallByReason[r])
                set.set(prefix + "stall." +
                            reasonName(static_cast<StallReason>(r)),
                        static_cast<double>(pc.stallByReason[r]));
        if (pc.turnCnt) {
            set.set(prefix + "turn_cnt", static_cast<double>(pc.turnCnt));
            set.set(prefix + "turn_sum", pc.turnSum);
            Histogram &turn = set.hist(prefix + "turn_log2");
            for (unsigned b = 0; b < kLog2Buckets; ++b)
                if (pc.turnLog2[b])
                    turn.add(static_cast<int64_t>(b),
                             static_cast<double>(pc.turnLog2[b]));
        }
        for (unsigned s = 0; s < kNumStages; ++s) {
            if (!pc.stageCnt[s])
                continue;
            const std::string stage =
                prefix + "lat." + stageName(static_cast<Stage>(s));
            set.set(stage + ".cnt", static_cast<double>(pc.stageCnt[s]));
            set.set(stage + ".sum", pc.stageSum[s]);
            Histogram &hist = set.hist(stage);
            for (unsigned b = 0; b < kLog2Buckets; ++b)
                if (pc.stageLog2[s][b])
                    hist.add(static_cast<int64_t>(b),
                             static_cast<double>(pc.stageLog2[s][b]));
        }
    }
}

} // namespace gcl::crit
