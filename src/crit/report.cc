#include "report.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace gcl::crit
{

namespace
{

constexpr const char *kPcPrefix = "crit.pc.";
constexpr size_t kPcPrefixLen = 8;

/** Per-PC record rebuilt from the exported key schema. */
struct PcRecord {
    std::string kernel;
    uint64_t pc = 0;
    unsigned cls = 0;
    double stallSlots = 0;
    double stallByReason[kNumReasons] = {};
    double turnCnt = 0;
    double turnSum = 0;
    double stageSum[kNumStages] = {};
};

/**
 * Rebuild the per-PC table from crit.pc.<kernel>#<pc>.<field> scalars.
 * Keyed by (kernel, pc) in an ordered map so iteration is deterministic.
 */
std::map<std::pair<std::string, uint64_t>, PcRecord>
collectPcs(const StatsSet &stats)
{
    std::map<std::pair<std::string, uint64_t>, PcRecord> pcs;
    for (const auto &[key, value] : stats.scalars()) {
        if (key.compare(0, kPcPrefixLen, kPcPrefix) != 0)
            continue;
        const size_t hash = key.find('#', kPcPrefixLen);
        if (hash == std::string::npos)
            continue;
        const size_t dot = key.find('.', hash);
        if (dot == std::string::npos)
            continue;
        const std::string kernel =
            key.substr(kPcPrefixLen, hash - kPcPrefixLen);
        const uint64_t pc =
            std::stoull(key.substr(hash + 1, dot - hash - 1));
        const std::string field = key.substr(dot + 1);

        PcRecord &rec = pcs[{kernel, pc}];
        rec.kernel = kernel;
        rec.pc = pc;
        if (field == "class") {
            rec.cls = static_cast<unsigned>(value);
        } else if (field == "stall_slots") {
            rec.stallSlots = value;
        } else if (field == "turn_cnt") {
            rec.turnCnt = value;
        } else if (field == "turn_sum") {
            rec.turnSum = value;
        } else if (field.compare(0, 6, "stall.") == 0) {
            for (unsigned r = 0; r < kNumReasons; ++r)
                if (field.compare(6, std::string::npos,
                                  reasonName(static_cast<StallReason>(
                                      r))) == 0)
                    rec.stallByReason[r] = value;
        } else if (field.compare(0, 4, "lat.") == 0 &&
                   field.size() > 8 &&
                   field.compare(field.size() - 4, 4, ".sum") == 0) {
            const std::string stage =
                field.substr(4, field.size() - 8);
            for (unsigned s = 0; s < kNumStages; ++s)
                if (stage == stageName(static_cast<Stage>(s)))
                    rec.stageSum[s] = value;
        }
    }
    return pcs;
}

/** p99 turnaround from the log2 histogram: upper edge of the p99 bucket. */
double
p99FromLog2(const Histogram &hist)
{
    const double total = hist.totalWeight();
    if (total <= 0)
        return 0;
    double cum = 0;
    for (const auto &[bucket, weight] : hist.buckets()) {
        cum += weight;
        if (cum >= 0.99 * total)
            return bucket <= 0
                       ? 0.0
                       : static_cast<double>(
                             (uint64_t{1} << static_cast<unsigned>(
                                  bucket)) -
                             1);
    }
    return 0;
}

/** Minimal RFC-4180 field quoting (kernel names may be arbitrary). */
std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
fmtCount(double v)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(0) << v;
    return oss.str();
}

std::string
fmtPct(double num, double den)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(1)
        << (den > 0 ? 100.0 * num / den : 0.0) << '%';
    return oss.str();
}

} // namespace

CpiStack
cpiStack(const StatsSet &stats)
{
    CpiStack stack;
    if (!stats.has("crit.issue_width"))
        return stack;
    stack.valid = true;
    stack.issueWidth = stats.get("crit.issue_width");
    stack.slots = stats.get("crit.cycles") * stack.issueWidth;
    stack.issued = stats.get("crit.issued");
    for (unsigned r = 0; r < kNumReasons; ++r)
        stack.stall[r] = stats.get(
            std::string("crit.stall.") +
            reasonName(static_cast<StallReason>(r)));
    for (unsigned c = 0; c < kNumClasses; ++c)
        stack.dhzByClass[c] = stats.get(
            std::string("crit.stall.data_hazard.") + className(c));
    return stack;
}

std::vector<CritLoad>
topLoads(const StatsSet &stats, size_t top_n)
{
    std::vector<CritLoad> loads;
    for (const auto &[key, rec] : collectPcs(stats)) {
        if (rec.cls == 0)
            continue; // producer that is not a global load
        CritLoad load;
        load.kernel = rec.kernel;
        load.pc = rec.pc;
        load.cls = rec.cls;
        load.stallSlots = rec.stallSlots;
        load.turnCnt = rec.turnCnt;
        load.turnMean = rec.turnCnt > 0 ? rec.turnSum / rec.turnCnt : 0;
        load.turnP99 = p99FromLog2(stats.histOrEmpty(
            kPcPrefix + rec.kernel + '#' + std::to_string(rec.pc) +
            ".turn_log2"));
        for (unsigned s = 0; s < kNumStages; ++s)
            load.stageSum[s] = rec.stageSum[s];
        loads.push_back(std::move(load));
    }
    std::sort(loads.begin(), loads.end(),
              [](const CritLoad &a, const CritLoad &b) {
                  if (a.stallSlots != b.stallSlots)
                      return a.stallSlots > b.stallSlots;
                  const double asum = a.turnMean * a.turnCnt;
                  const double bsum = b.turnMean * b.turnCnt;
                  if (asum != bsum)
                      return asum > bsum;
                  if (a.kernel != b.kernel)
                      return a.kernel < b.kernel;
                  return a.pc < b.pc;
              });
    if (loads.size() > top_n)
        loads.resize(top_n);
    return loads;
}

void
renderText(std::ostream &out, const std::string &app,
           const StatsSet &stats, size_t top_n)
{
    const CpiStack stack = cpiStack(stats);
    out << "== " << app << " ==\n";
    if (!stack.valid) {
        out << "  (no crit section; run with --crit)\n";
        return;
    }

    out << "  issue slots " << fmtCount(stack.slots) << " (width "
        << fmtCount(stack.issueWidth) << ", ipc/sm "
        << std::fixed << std::setprecision(3)
        << (stack.slots > 0
                ? stack.issued / (stack.slots / stack.issueWidth)
                : 0.0)
        << ")\n";
    out << "  cpi stack:\n";
    out << "    issued            " << std::setw(12)
        << fmtCount(stack.issued) << "  " << std::setw(6)
        << fmtPct(stack.issued, stack.slots) << '\n';
    for (unsigned r = 0; r < kNumReasons; ++r) {
        out << "    " << std::left << std::setw(18)
            << reasonName(static_cast<StallReason>(r)) << std::right
            << std::setw(12) << fmtCount(stack.stall[r]) << "  "
            << std::setw(6) << fmtPct(stack.stall[r], stack.slots);
        if (static_cast<StallReason>(r) == StallReason::DataHazard)
            out << "  (det " << fmtPct(stack.dhzByClass[1], stack.slots)
                << ", nondet "
                << fmtPct(stack.dhzByClass[2], stack.slots) << ", other "
                << fmtPct(stack.dhzByClass[0], stack.slots) << ')';
        out << '\n';
    }

    const std::vector<CritLoad> loads = topLoads(stats, top_n);
    if (loads.empty()) {
        out << "  no attributed loads\n";
        return;
    }
    out << "  top critical loads (by issue-stall slots charged):\n";
    out << "    rank  load                    class   stall slots   "
           "share   loads    mean lat     p99 lat  dominant stages\n";
    size_t rank = 0;
    for (const CritLoad &load : loads) {
        // Top-2 stages by time: sum desc, stage order as tiebreak.
        double total_stage = 0;
        for (unsigned s = 0; s < kNumStages; ++s)
            total_stage += load.stageSum[s];
        std::vector<unsigned> order;
        for (unsigned s = 0; s < kNumStages; ++s)
            if (load.stageSum[s] > 0)
                order.push_back(s);
        std::stable_sort(order.begin(), order.end(),
                         [&](unsigned a, unsigned b) {
                             return load.stageSum[a] > load.stageSum[b];
                         });
        if (order.size() > 2)
            order.resize(2);

        out << "    " << std::setw(4) << ++rank << "  " << std::left
            << std::setw(22)
            << (load.kernel + '#' + std::to_string(load.pc))
            << std::right << "  " << std::left << std::setw(6)
            << className(load.cls) << std::right << std::setw(12)
            << fmtCount(load.stallSlots) << "  " << std::setw(6)
            << fmtPct(load.stallSlots, stack.slots) << std::setw(8)
            << fmtCount(load.turnCnt) << std::setw(12) << std::fixed
            << std::setprecision(1) << load.turnMean << std::setw(12)
            << fmtCount(load.turnP99) << "  ";
        for (size_t i = 0; i < order.size(); ++i)
            out << (i ? " " : "")
                << stageName(static_cast<Stage>(order[i])) << ' '
                << fmtPct(load.stageSum[order[i]], total_stage);
        out << '\n';
    }
}

void
renderCsv(std::ostream &out, const std::string &app,
          const StatsSet &stats, size_t top_n, bool header)
{
    if (header) {
        out << "app,kernel,pc,class,stall_slots,stall_share,loads,"
               "mean_turnaround,p99_turnaround";
        for (unsigned s = 0; s < kNumStages; ++s)
            out << ',' << stageName(static_cast<Stage>(s)) << "_sum";
        out << "\r\n";
    }
    const CpiStack stack = cpiStack(stats);
    for (const CritLoad &load : topLoads(stats, top_n)) {
        out << csvField(app) << ',' << csvField(load.kernel) << ','
            << load.pc << ',' << className(load.cls) << ','
            << fmtCount(load.stallSlots) << ',' << std::fixed
            << std::setprecision(6)
            << (stack.slots > 0 ? load.stallSlots / stack.slots : 0.0)
            << ',' << fmtCount(load.turnCnt) << ',' << std::fixed
            << std::setprecision(3) << load.turnMean << ','
            << fmtCount(load.turnP99);
        for (unsigned s = 0; s < kNumStages; ++s)
            out << ',' << fmtCount(load.stageSum[s]);
        out << "\r\n";
    }
}

void
appendCollapsed(std::ostream &out, const std::string &app,
                const StatsSet &stats)
{
    const CpiStack stack = cpiStack(stats);
    if (!stack.valid)
        return;
    if (stack.issued > 0)
        out << app << ";issued " << fmtCount(stack.issued) << '\n';

    const auto pcs = collectPcs(stats);
    for (unsigned r = 0; r < kNumReasons; ++r) {
        const char *reason = reasonName(static_cast<StallReason>(r));
        double attributed = 0;
        for (const auto &[key, rec] : pcs) {
            if (rec.stallByReason[r] <= 0)
                continue;
            attributed += rec.stallByReason[r];
            out << app << ';' << reason << ';' << className(rec.cls)
                << ';' << rec.kernel << '#' << rec.pc << ' '
                << fmtCount(rec.stallByReason[r]) << '\n';
        }
        const double rest = stack.stall[r] - attributed;
        if (rest > 0)
            out << app << ';' << reason << ' ' << fmtCount(rest) << '\n';
    }
}

} // namespace gcl::crit
