/**
 * @file
 * gcl::crit — per-load criticality profiler: issue-slot stall attribution
 * and per-stage memory-latency decomposition (DESIGN.md "Criticality
 * profiler").
 *
 * The paper's core observation (Figs. 5-7) is that a handful of loads are
 * *critical*: warps stall behind them far longer than miss ratios suggest.
 * This layer makes that observation a cheap, always-available report
 * instead of a trace post-processing job. Two kinds of accounting:
 *
 *  - Issue slots. Every SM cycle offers numSchedulers issue slots. Each
 *    slot either issues an instruction or is charged to exactly one
 *    StallReason; data hazards are charged to the PRODUCING instruction's
 *    PC (via the scoreboard), so time spent waiting on a load's result is
 *    charged to the load itself. The invariant
 *        issued + sum(stall[*]) == cycles * issue_width
 *    holds exactly per SM and globally; tools/trace_check re-verifies it
 *    on every exported stats file.
 *
 *  - Request latency. MemRequests are stamped at every stage transition
 *    (accept -> L1 -> ICNT -> L2 -> DRAM -> response); the per-stage
 *    deltas fold into per-PC log2-bucket histograms when the request
 *    completes, so each load's turnaround decomposes into where the time
 *    went.
 *
 * Contracts (mirroring SimStats::Shard — see stats.hh):
 *  - One SmCrit shard per SM, written only by the thread ticking that SM;
 *    CritStats::finalize merges shards in creation (SM-id) order into
 *    keyed, commutative StatsSet entries, so output is byte-identical at
 *    any --sim-threads.
 *  - Near-zero cost when disabled: every hook sits behind a null-pointer
 *    check on Sm::crit (the tracing idiom); the perf_diff gate in
 *    scripts/check.sh keeps the disabled path inside the regression
 *    budget.
 */

#ifndef GCL_CRIT_CRIT_HH
#define GCL_CRIT_CRIT_HH

#include <bit>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hh"

namespace gcl::crit
{

using Cycle = uint64_t;

/**
 * Why an issue slot did not issue. One reason per slot per cycle; when
 * several causes overlap the attribution rules in DESIGN.md pick the
 * blocking warp's first failing readiness condition (the same order
 * Sm::warpReady tests them), so charging is deterministic.
 */
enum class StallReason : uint8_t {
    DataHazard = 0,   ///< scoreboard wait; charged to the producer's PC
    Barrier,          ///< warp parked at a CTA barrier
    IbufferEmpty,     ///< CTAs resident but no active warp on the scheduler
    Pipeline,         ///< structural: exec stage busy, ldst head blocked, …
    MshrFull,         ///< ldst queue head last failed on a full L1 MSHR
    IcntBackpressure, ///< ldst queue head last failed to inject into ICNT
    IdleNoCta,        ///< nothing resident (drain, launch gaps, idle SM)
};

inline constexpr unsigned kNumReasons = 7;

/** Stable lowercase identifier used in stats keys and reports. */
const char *reasonName(StallReason reason);

/** Producer/load class for attribution joins (0 other, 1 det, 2 nondet). */
inline constexpr unsigned kNumClasses = 3;

/** Stable class identifier ("other", "det", "nondet"). */
const char *className(unsigned cls);

/**
 * Stages of a global-load request's life, in stamp order. `Merge` covers
 * requests folded into an in-flight L1 MSHR entry (they never traverse
 * the interconnect themselves; their whole wait is the primary's trip).
 * An L2-MSHR merge has no DRAM enqueue stamp, so its DRAM wait counts as
 * `L2` — the request really did spend that time inside the partition.
 */
enum class Stage : uint8_t {
    Accept = 0, ///< coalesce + ldst queue: issue -> L1 accepts the request
    L1,         ///< L1 hit latency (hit-return queue wait included)
    Merge,      ///< L1-MSHR-merged secondary: accept -> data return
    IcntToL2,   ///< interconnect request traversal: inject -> L2 arrival
    L2,         ///< L2 lookup/queue (plus DRAM wait for L2-MSHR merges)
    Dram,       ///< DRAM queue + service: enqueue -> fill
    Resp,       ///< response path: L2 done -> SM completes the request
};

inline constexpr unsigned kNumStages = 7;

/** Stable lowercase identifier used in stats keys and reports. */
const char *stageName(Stage stage);

/**
 * Log2 bucketing for latency histograms: value v lands in bucket
 * bit_width(v), i.e. bucket b>0 covers [2^(b-1), 2^b) and bucket 0 is
 * exactly zero. 42 buckets cover every delta a 64-bit cycle count can
 * realistically produce.
 */
inline constexpr unsigned kLog2Buckets = 42;

inline unsigned
log2Bucket(uint64_t value)
{
    const unsigned width = static_cast<unsigned>(std::bit_width(value));
    return width < kLog2Buckets ? width : kLog2Buckets - 1;
}

/** Everything attributed to one static instruction (one PC). */
struct PcCrit {
    uint8_t loadClass = 0; ///< 0 other, 1 deterministic, 2 non-deterministic
    uint64_t stallSlots = 0;
    uint64_t stallByReason[kNumReasons] = {};
    uint64_t turnCnt = 0; ///< completed global-load warp ops
    double turnSum = 0.0; ///< sum of turnaround cycles
    uint64_t turnLog2[kLog2Buckets] = {};
    uint64_t stageCnt[kNumStages] = {};
    double stageSum[kNumStages] = {};
    uint64_t stageLog2[kNumStages][kLog2Buckets] = {};

    void merge(const PcCrit &other);
};

/**
 * One SM's accounting shard. The owning Sm is the only writer (during the
 * tick); the watchdog reads it only after ticking has stopped.
 */
class SmCrit
{
  public:
    uint64_t cycles = 0; ///< SM cycles observed (busy + idle)
    uint64_t issued = 0; ///< slots that issued an instruction
    uint64_t stall[kNumReasons] = {};
    /** DataHazard slots split by the producer's load class. */
    uint64_t dhzByClass[kNumClasses] = {};

    /** Idle SM cycle: all @p width slots are lost to IdleNoCta. */
    void idleCycle(unsigned width)
    {
        ++cycles;
        stall[static_cast<unsigned>(StallReason::IdleNoCta)] += width;
    }

    /** Charge one slot to @p reason with no PC attribution. */
    void charge(StallReason reason)
    {
        ++stall[static_cast<unsigned>(reason)];
    }

    /**
     * Charge one slot to @p reason, attributed to the instruction at
     * @p pc_key (see pcKey) whose load class is @p load_class.
     */
    void chargePc(StallReason reason, uint64_t pc_key, uint8_t load_class);

    /** Fold one completed stage delta into @p pc_key's breakdown. */
    void stage(uint64_t pc_key, Stage stage, Cycle delta);

    /** A global-load warp op at @p pc_key retired after @p turnaround. */
    void opDone(uint64_t pc_key, Cycle turnaround, uint8_t load_class);

    /**
     * One-line triage summary for HangReports: top-3 stall reasons (as %
     * of charged slots) and top-3 blocking PCs. Empty when nothing was
     * charged yet.
     */
    std::string hangSummary() const;

    const std::unordered_map<uint64_t, PcCrit> &pcs() const { return pcs_; }

    /** Additive merge of @p other into this shard (finalize only). */
    void merge(const SmCrit &other);

  private:
    std::unordered_map<uint64_t, PcCrit> pcs_;
};

/** Key for per-PC maps: kernel id in the high word, PC in the low. */
inline uint64_t
pcKey(unsigned kernel_id, uint64_t pc)
{
    return (static_cast<uint64_t>(kernel_id) << 32) | pc;
}

/**
 * Whole-device profiler state: owns one SmCrit shard per SM (created in
 * SM-id order by the Gpu constructor) and folds them into the run's
 * StatsSet at finalize. See crit.cc for the exported key schema.
 */
class CritStats
{
  public:
    /** @p issue_width is GpuConfig::numSchedulers (slots per SM cycle). */
    explicit CritStats(unsigned issue_width) : issueWidth_(issue_width) {}

    CritStats(const CritStats &) = delete;
    CritStats &operator=(const CritStats &) = delete;

    /** Stable storage: shards must not move once handed out. */
    SmCrit &newShard();

    unsigned issueWidth() const { return issueWidth_; }

    /**
     * Merge all shards (in creation order — every fold is a commutative
     * keyed add, so the result is thread-count independent) and emit the
     * crit.* key schema into @p set. Idempotent. @p kernel_names indexes
     * kernel ids into human-readable names (SimStats::kernelNames()).
     */
    void finalize(const std::vector<std::string> &kernel_names,
                  StatsSet &set);

  private:
    unsigned issueWidth_;
    std::deque<SmCrit> shards_;
    bool finalized_ = false;
};

} // namespace gcl::crit

#endif // GCL_CRIT_CRIT_HH
