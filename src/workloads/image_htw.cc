/**
 * @file
 * htw (Rodinia heartwall): template tracking of sample points in a frame.
 *
 * One CTA per tracked point: the CTA stages a search window from the frame
 * into shared memory, then evaluates the SSD of an 8x8 template at every
 * displacement with a shared-memory reduction per offset, keeping the best.
 * Shared memory is re-read per displacement, giving the image-category
 * shared-to-global load ratio of Fig 9.
 */

#include <cmath>
#include <limits>

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kFrameDim = 192;
constexpr uint32_t kPoints = 51;    //!< Table I: htw has 51 CTAs
constexpr uint32_t kWin = 16;       //!< search window edge (shared staged)
constexpr uint32_t kTpl = 8;        //!< template edge
constexpr uint32_t kOffsets = kWin - kTpl + 1;  //!< 9x9 displacements
constexpr uint32_t kCtaSize = 64;   //!< kTpl * kTpl threads

/**
 * Params: frame, tpl, bestOut, frameDim.
 * The sample-point grid is derived arithmetically from %ctaid (the paper's
 * image apps are fully deterministic in Fig 1), mirrored on the host.
 * Shared layout: window[kWin*kWin] floats then reduction pad[kCtaSize].
 */
ptx::Kernel
buildHtwTrackKernel()
{
    KernelBuilder b("htw_track", 4,
                    (kWin * kWin + kCtaSize) * 4);

    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    Reg point = b.mov(DT::U32, SpecialReg::CtaIdX);
    Reg p_frame = b.ldParam(0);
    Reg p_tpl = b.ldParam(1);
    Reg p_best = b.ldParam(2);
    Reg frame_dim = b.ldParam(3);

    // Window origin: a deterministic pseudo-grid over the frame.
    Reg span = b.sub(DT::U32, frame_dim, kWin);
    Reg wx = b.rem(DT::U32, b.mul(DT::U32, point, 37), span);
    Reg wy = b.rem(DT::U32, b.mul(DT::U32, point, 61), span);

    // Stage the kWin x kWin window: each of the 64 threads loads 4 pixels.
    Reg i = b.mov(DT::U32, tid);
    Label stage = b.newLabel();
    Label staged = b.newLabel();
    b.place(stage);
    Reg done_staging =
        b.setp(CmpOp::Ge, DT::U32, i, kWin * kWin);
    b.braIf(done_staging, staged);
    {
        Reg row = b.div(DT::U32, i, kWin);
        Reg col = b.rem(DT::U32, i, kWin);
        Reg gidx = b.mad(DT::U32, b.add(DT::U32, wy, row), frame_dim,
                         b.add(DT::U32, wx, col));
        Reg v = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_frame, gidx, 4));
        b.st(MemSpace::Shared, DT::F32,
             b.shl(DT::U64, b.cvt(DT::U64, DT::U32, i), 2), v);
        b.assign(DT::U32, i, b.add(DT::U32, i, kCtaSize));
    }
    b.bra(stage);
    b.place(staged);
    b.bar();

    // My template element (one per thread).
    Reg trow = b.div(DT::U32, tid, Src(kTpl));
    Reg tcol = b.rem(DT::U32, tid, Src(kTpl));
    Reg tval = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_tpl, tid, 4));

    Reg best_ssd = b.mov(DT::F32, immF32(1e30f));
    Reg best_off = b.mov(DT::U32, 0);

    Reg off = b.mov(DT::U32, 0);
    Label offsets = b.newLabel();
    Label done = b.newLabel();
    b.place(offsets);
    Reg offs_done =
        b.setp(CmpOp::Ge, DT::U32, off, kOffsets * kOffsets);
    b.braIf(offs_done, done);
    {
        Reg dy = b.div(DT::U32, off, Src(kOffsets));
        Reg dx = b.rem(DT::U32, off, Src(kOffsets));

        // diff = window[trow+dy][tcol+dx] - template[trow][tcol]
        Reg widx = b.mad(DT::U32, b.add(DT::U32, trow, dy), Src(kWin),
                         b.add(DT::U32, tcol, dx));
        Reg wv = b.ld(MemSpace::Shared, DT::F32,
                      b.shl(DT::U64, b.cvt(DT::U64, DT::U32, widx), 2));
        Reg diff = b.sub(DT::F32, wv, tval);
        Reg sq = b.mul(DT::F32, diff, diff);

        // Tree reduction over the 64 partials in the pad region.
        Reg pad = b.add(DT::U32, b.mul(DT::U32, tid, 4),
                        Src(kWin * kWin * 4));
        b.st(MemSpace::Shared, DT::F32, b.cvt(DT::U64, DT::U32, pad), sq);
        b.bar();
        Reg stride = b.mov(DT::U32, kCtaSize / 2);
        Label reduce = b.newLabel();
        Label reduced = b.newLabel();
        b.place(reduce);
        Reg r_done = b.setp(CmpOp::Eq, DT::U32, stride, 0);
        b.braIf(r_done, reduced);
        {
            Label skip = b.newLabel();
            Reg idle = b.setp(CmpOp::Ge, DT::U32, tid, stride);
            b.braIf(idle, skip);
            {
                Reg mine_off = b.cvt(DT::U64, DT::U32, pad);
                Reg peer = b.add(DT::U32,
                                 b.mul(DT::U32, b.add(DT::U32, tid, stride),
                                       4),
                                 Src(kWin * kWin * 4));
                Reg mine = b.ld(MemSpace::Shared, DT::F32, mine_off);
                Reg theirs = b.ld(MemSpace::Shared, DT::F32,
                                  b.cvt(DT::U64, DT::U32, peer));
                b.st(MemSpace::Shared, DT::F32, mine_off,
                     b.add(DT::F32, mine, theirs));
            }
            b.place(skip);
            b.bar();
            b.assign(DT::U32, stride, b.shr(DT::U32, stride, 1));
        }
        b.bra(reduce);
        b.place(reduced);

        // Everyone reads the total; all lanes keep identical best-tracking
        // state, so the final store is uniform.
        Reg total = b.ld(MemSpace::Shared, DT::F32,
                         b.mov(DT::U64, kWin * kWin * 4));
        Label not_better = b.newLabel();
        Reg worse = b.setp(CmpOp::Ge, DT::F32, total, best_ssd);
        b.braIf(worse, not_better);
        {
            b.assign(DT::F32, best_ssd, total);
            b.assign(DT::U32, best_off, off);
        }
        b.place(not_better);
        b.bar();
        b.assign(DT::U32, off, b.add(DT::U32, off, 1));
    }
    b.bra(offsets);
    b.place(done);

    Label not_writer = b.newLabel();
    Reg rest = b.setp(CmpOp::Ne, DT::U32, tid, 0);
    b.braIf(rest, not_writer);
    b.st(MemSpace::Global, DT::U32, b.elemAddr(p_best, point, 4), best_off);
    b.place(not_writer);
    b.exit();
    return b.build();
}

std::vector<uint32_t>
cpuTrack(const std::vector<float> &frame, const std::vector<float> &tpl,
         const std::vector<uint32_t> &px, const std::vector<uint32_t> &py)
{
    std::vector<uint32_t> best(px.size(), 0);
    for (size_t p = 0; p < px.size(); ++p) {
        float best_ssd = 1e30f;
        uint32_t best_off = 0;
        for (uint32_t off = 0; off < kOffsets * kOffsets; ++off) {
            const uint32_t dy = off / kOffsets;
            const uint32_t dx = off % kOffsets;
            // Mirror the kernel's tree reduction bit-for-bit so the
            // best-offset tie-breaking is identical.
            float partial[kCtaSize];
            for (uint32_t t = 0; t < kCtaSize; ++t) {
                const uint32_t ty = t / kTpl;
                const uint32_t tx = t % kTpl;
                const float wv =
                    frame[static_cast<size_t>(py[p] + ty + dy) * kFrameDim +
                          (px[p] + tx + dx)];
                const float d =
                    wv - tpl[static_cast<size_t>(ty) * kTpl + tx];
                partial[t] = d * d;
            }
            for (uint32_t stride = kCtaSize / 2; stride > 0; stride /= 2)
                for (uint32_t t = 0; t < stride; ++t)
                    partial[t] += partial[t + stride];
            const float ssd = partial[0];
            if (ssd < best_ssd) {
                best_ssd = ssd;
                best_off = off;
            }
        }
        best[p] = best_off;
    }
    return best;
}

bool
runHtw(sim::Gpu &gpu)
{
    const auto frame = makeImage(kFrameDim, kFrameDim, 0x47a1);
    // The template is a real frame patch plus noise, so each point has an
    // unambiguous best displacement.
    std::vector<float> tpl(kTpl * kTpl);
    for (uint32_t y = 0; y < kTpl; ++y)
        for (uint32_t x = 0; x < kTpl; ++x)
            tpl[static_cast<size_t>(y) * kTpl + x] =
                frame[static_cast<size_t>(40 + y) * kFrameDim + (52 + x)];

    // Host mirror of the kernel's deterministic point grid.
    std::vector<uint32_t> px(kPoints), py(kPoints);
    for (uint32_t p = 0; p < kPoints; ++p) {
        px[p] = (p * 37) % (kFrameDim - kWin);
        py[p] = (p * 61) % (kFrameDim - kWin);
    }

    const uint64_t d_frame = upload(gpu, frame);
    const uint64_t d_tpl = upload(gpu, tpl);
    const uint64_t d_best = allocZeroed<uint32_t>(gpu, kPoints);

    gpu.launch(buildHtwTrackKernel(), sim::Dim3{kPoints, 1, 1},
               sim::Dim3{kCtaSize, 1, 1},
               {d_frame, d_tpl, d_best, kFrameDim});

    const auto best = download<uint32_t>(gpu, d_best, kPoints);
    return best == cpuTrack(frame, tpl, px, py);
}

} // namespace

Workload
makeHtw()
{
    Workload w;
    w.name = "htw";
    w.category = Category::Image;
    w.description = "heart-wall template tracking (Rodinia heartwall)";
    w.run = runHtw;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildHtwTrackKernel()};
    };
    return w;
}

} // namespace gcl::workloads
