/**
 * @file
 * mst (LonestarGPU-style): Boruvka minimum spanning tree.
 *
 * The device kernel performs the irregular phase — every node scans its
 * edges, looks up the component labels of both endpoints (non-deterministic
 * gathers) and atomically records its component's cheapest outgoing edge
 * (weight/edge-id packed into 64 bits). The host contracts components with
 * a disjoint-set union between rounds, as the original does for its
 * inter-kernel coordination.
 */

#include <algorithm>
#include <numeric>

#include "common.hh"
#include "datasets/graph.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kNodes = 4096;
constexpr uint32_t kAvgDegree = 6;
constexpr uint32_t kMaxWeight = 15;
constexpr uint32_t kCtaSize = 384;   //!< Table I: mst uses 384 threads/CTA
constexpr uint64_t kNoEdge = ~uint64_t{0};

/** Params: rowPtr, col, weight, label, cheapest, n. */
ptx::Kernel
buildMstFindMinKernel()
{
    KernelBuilder b("mst_find_min", 6);

    Reg tid = b.globalTidX();
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg p_w = b.ldParam(2);
    Reg p_label = b.ldParam(3);
    Reg p_cheapest = b.ldParam(4);
    Reg n = b.ldParam(5);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    Reg my_label = b.ld(MemSpace::Global, DT::U32,
                        b.elemAddr(p_label, tid, 4));
    Reg cheapest_addr = b.elemAddr(p_cheapest, my_label, 8);

    Reg row_addr = b.elemAddr(p_row, tid, 4);
    Reg start = b.ld(MemSpace::Global, DT::U32, row_addr);
    Reg end = b.ld(MemSpace::Global, DT::U32, row_addr, 4);

    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(at_end, done);
    {
        Reg nbr = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));
        // Non-deterministic gather of the neighbor's component.
        Reg nbr_label = b.ld(MemSpace::Global, DT::U32,
                             b.elemAddr(p_label, nbr, 4));
        Label internal = b.newLabel();
        Reg same = b.setp(CmpOp::Eq, DT::U32, nbr_label, my_label);
        b.braIf(same, internal);
        {
            // enc = weight << 32 | edge id: atomic min picks the lightest
            // edge with deterministic edge-id tie-breaking.
            Reg w = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_w, i, 4));
            Reg enc = b.or_(DT::U64,
                            b.shl(DT::U64, b.cvt(DT::U64, DT::U32, w), 32),
                            b.cvt(DT::U64, DT::U32, i));
            (void)b.atom(ptx::AtomOp::Min, DT::U64, cheapest_addr, enc);
        }
        b.place(internal);
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);
    b.place(out);
    b.exit();
    return b.build();
}

/** Host-side disjoint-set union. */
struct Dsu
{
    std::vector<uint32_t> parent;

    explicit Dsu(uint32_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    uint32_t
    find(uint32_t v)
    {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    }

    bool
    merge(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        parent[std::max(a, b)] = std::min(a, b);
        return true;
    }
};

uint64_t
cpuKruskal(const Graph &g, const std::vector<uint32_t> &edge_src)
{
    std::vector<uint32_t> order(g.numEdges());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return g.weight[a] != g.weight[b] ? g.weight[a] < g.weight[b]
                                          : a < b;
    });
    Dsu dsu(g.numNodes);
    uint64_t total = 0;
    for (uint32_t e : order)
        if (dsu.merge(edge_src[e], g.col[e]))
            total += g.weight[e];
    return total;
}

bool
runMst(sim::Gpu &gpu)
{
    const Graph g = makeRmatGraph(kNodes, kAvgDegree, true, kMaxWeight,
                                  0xe57);
    const uint32_t n = g.numNodes;

    // Edge source lookup (CSR rows flattened).
    std::vector<uint32_t> edge_src(g.numEdges());
    for (uint32_t v = 0; v < n; ++v)
        for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e)
            edge_src[e] = v;

    std::vector<uint32_t> label(n);
    std::iota(label.begin(), label.end(), 0);
    const std::vector<uint64_t> no_edges(n, kNoEdge);

    const uint64_t d_row = upload(gpu, g.rowPtr);
    const uint64_t d_col = upload(gpu, g.col);
    const uint64_t d_w = upload(gpu, g.weight);
    const uint64_t d_label = upload(gpu, label);
    const uint64_t d_cheapest = upload(gpu, no_edges);

    const ptx::Kernel find_min = buildMstFindMinKernel();
    const sim::Dim3 grid{(n + kCtaSize - 1) / kCtaSize, 1, 1};
    const sim::Dim3 cta{kCtaSize, 1, 1};

    Dsu dsu(n);
    uint64_t mst_weight = 0;
    uint32_t mst_edges = 0;

    // Boruvka rounds: device finds per-component cheapest edges, the host
    // contracts.
    for (uint32_t round = 0; round < 32; ++round) {
        gpu.memcpyToDevice(d_cheapest, no_edges.data(),
                           no_edges.size() * sizeof(uint64_t));
        gpu.launch(find_min, grid, cta,
                   {d_row, d_col, d_w, d_label, d_cheapest, n});

        const auto cheapest = download<uint64_t>(gpu, d_cheapest, n);
        bool merged_any = false;
        for (uint32_t c = 0; c < n; ++c) {
            if (cheapest[c] == kNoEdge)
                continue;
            const auto edge = static_cast<uint32_t>(cheapest[c]);
            const auto w = static_cast<uint32_t>(cheapest[c] >> 32);
            if (dsu.merge(edge_src[edge], g.col[edge])) {
                mst_weight += w;
                ++mst_edges;
                merged_any = true;
            }
        }
        if (!merged_any)
            break;

        for (uint32_t v = 0; v < n; ++v)
            label[v] = dsu.find(v);
        gpu.memcpyToDevice(d_label, label.data(),
                           label.size() * sizeof(uint32_t));
    }

    return mst_edges == n - 1 &&
           mst_weight == cpuKruskal(g, edge_src);
}

} // namespace

Workload
makeMst()
{
    Workload w;
    w.name = "mst";
    w.category = Category::Graph;
    w.description = "Boruvka minimum spanning tree (LonestarGPU mst)";
    w.run = runMst;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildMstFindMinKernel()};
    };
    return w;
}

} // namespace gcl::workloads
