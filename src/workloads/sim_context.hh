/**
 * @file
 * SimContext — one simulated application as a thread-confined unit of work.
 *
 * The simulator core (`sim::Gpu` and everything below it) keeps all its
 * mutable state in instance members; the pieces that used to live *around*
 * a run — the config, the workload binding, the finalized stats, the trace
 * sink — are bundled here so a run owns every byte it mutates. Two
 * SimContexts may therefore execute concurrently on different threads with
 * zero synchronization, which is exactly how gcl::exec parallelizes the
 * bench sweep (see DESIGN.md, "Thread confinement").
 *
 * The contract a unit of work must honor:
 *  - MAY touch: its own Gpu, its own TraceSink, its own StatsSet, its own
 *    datasets (every generator seeds a local Rng).
 *  - MAY read: the shared Workload registry (immutable after first use),
 *    the config it was given (copied in), environment variables.
 *  - MUST NOT touch: another run's context, process-global mutable state,
 *    or unsynchronized streams — logging goes through gcl::logging which
 *    writes whole lines and tags them with the run's name.
 */

#ifndef GCL_WORKLOADS_SIM_CONTEXT_HH
#define GCL_WORKLOADS_SIM_CONTEXT_HH

#include <memory>

#include "guard/sim_error.hh"
#include "sim/config.hh"
#include "trace/trace.hh"
#include "util/stats.hh"
#include "workload.hh"

namespace gcl::workloads
{

/** Owns everything one application simulation mutates. */
class SimContext
{
  public:
    /** Binds @p workload (borrowed; registry-owned) to a config copy. */
    SimContext(const Workload &workload, const sim::GpuConfig &config);
    ~SimContext();

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /**
     * Create this run's private TraceSink before run(). Events drain to
     * @p drain whenever the ring fills and on completion; @p id_base
     * carves out this run's id range so merged traces stay well-formed
     * (TraceSink::setIdBase). @p timeline_interval as in Gpu::attachTrace.
     */
    void enableTrace(sim::Cycle timeline_interval,
                     trace::TraceSink::DrainFn drain, uint64_t id_base,
                     size_t capacity = trace::TraceSink::kDefaultCapacity);

    /**
     * Simulate the application to completion: dataset generation, all
     * launches, verification, stats finalization. The device model is
     * created here and destroyed before returning (a finished context
     * holds stats, not a GPU). Call at most once.
     *
     * Never throws SimError: a recoverable simulation failure (watchdog
     * hang, cycle-budget timeout, injected fault, tripped invariant) is
     * caught here and recorded as a structured failure() — the run is
     * self-contained, so sibling runs of a parallel sweep are unaffected.
     */
    void run();

    /** CPU reference check outcome (valid after run()). */
    bool verified() const { return verified_; }

    /** True when run() caught a SimError. */
    bool failed() const { return failure_.failed; }

    /** Structured failure record (failed == false means a clean run). */
    const SimFailure &failure() const { return failure_; }

    /** Finalized simulator stats (valid after run()). */
    const StatsSet &stats() const { return stats_; }

    const Workload &workload() const { return workload_; }
    const sim::GpuConfig &config() const { return config_; }

    /** This run's sink, or nullptr when tracing is off. */
    trace::TraceSink *sink() { return sink_.get(); }

  private:
    const Workload &workload_;
    sim::GpuConfig config_;
    std::unique_ptr<trace::TraceSink> sink_;
    sim::Cycle timelineInterval_ = 0;
    StatsSet stats_;
    SimFailure failure_;
    bool verified_ = false;
    bool ran_ = false;
};

} // namespace gcl::workloads

#endif // GCL_WORKLOADS_SIM_CONTEXT_HH
