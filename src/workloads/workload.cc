#include "workload.hh"

#include "util/logging.hh"

namespace gcl::workloads
{

std::string
toString(Category category)
{
    switch (category) {
      case Category::Linear: return "linear";
      case Category::Image: return "image";
      case Category::Graph: return "graph";
    }
    return "?";
}

const std::vector<Workload> &
all()
{
    // Table I order: linear algebra, image processing, graph.
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> w;
        w.push_back(make2mm());
        w.push_back(makeGaus());
        w.push_back(makeGrm());
        w.push_back(makeLu());
        w.push_back(makeSpmv());
        w.push_back(makeHtw());
        w.push_back(makeMriq());
        w.push_back(makeDwt());
        w.push_back(makeBpr());
        w.push_back(makeSrad());
        w.push_back(makeBfs());
        w.push_back(makeSssp());
        w.push_back(makeCcl());
        w.push_back(makeMst());
        w.push_back(makeMis());
        return w;
    }();
    return workloads;
}

const Workload *
findByName(const std::string &name)
{
    for (const auto &w : all())
        if (w.name == name)
            return &w;
    return nullptr;
}

const Workload &
byName(const std::string &name)
{
    if (const Workload *w = findByName(name))
        return *w;
    gcl_panic("unknown workload '", name, "'");
}

std::string
knownNames()
{
    std::string names;
    for (const auto &w : all()) {
        if (!names.empty())
            names += ", ";
        names += w.name;
    }
    return names;
}

} // namespace gcl::workloads
