/**
 * @file
 * gaus (Rodinia gaussian): Gaussian elimination of Ax = b using the
 * Fan1/Fan2 kernel pair, one pair per pivot — the "many tiny launches"
 * workload of Table I.
 */

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kN = 64;
constexpr uint32_t kFan1Cta = 16;   //!< Table I: 16 threads/CTA
constexpr uint32_t kTile = 16;

/** Fan1: m[i] = A[i][k] / A[k][k] for i > k. Params: m, A, n, k. */
ptx::Kernel
buildFan1Kernel()
{
    KernelBuilder b("gaus_fan1", 4);

    Reg gtid = b.globalTidX();
    Reg p_m = b.ldParam(0);
    Reg p_a = b.ldParam(1);
    Reg n = b.ldParam(2);
    Reg k = b.ldParam(3);

    Reg i = b.add(DT::U32, b.add(DT::U32, k, 1), gtid);
    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, i, n);
    b.braIf(oob, out);

    Reg pivot = b.ld(MemSpace::Global, DT::F32,
                     b.elemAddr(p_a, b.mad(DT::U32, k, n, k), 4));
    Reg v = b.ld(MemSpace::Global, DT::F32,
                 b.elemAddr(p_a, b.mad(DT::U32, i, n, k), 4));
    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_m, i, 4),
         b.div(DT::F32, v, pivot));

    b.place(out);
    b.exit();
    return b.build();
}

/**
 * Fan2: A[i][j] -= m[i] * A[k][j] for i > k, j >= k, and the RHS
 * b[i] -= m[i] * b[k] (handled by the j == k threads).
 * Params: m, A, rhs, n, k.
 */
ptx::Kernel
buildFan2Kernel()
{
    KernelBuilder b("gaus_fan2", 5);

    Reg gx = b.mad(DT::U32, SpecialReg::CtaIdX, SpecialReg::NTidX,
                   SpecialReg::TidX);
    Reg gy = b.mad(DT::U32, SpecialReg::CtaIdY, SpecialReg::NTidY,
                   SpecialReg::TidY);
    Reg p_m = b.ldParam(0);
    Reg p_a = b.ldParam(1);
    Reg p_rhs = b.ldParam(2);
    Reg n = b.ldParam(3);
    Reg k = b.ldParam(4);

    Reg i = b.add(DT::U32, b.add(DT::U32, k, 1), gy);
    Reg j = b.add(DT::U32, k, gx);

    Label out = b.newLabel();
    Reg oob_i = b.setp(CmpOp::Ge, DT::U32, i, n);
    b.braIf(oob_i, out);
    Reg oob_j = b.setp(CmpOp::Ge, DT::U32, j, n);
    b.braIf(oob_j, out);

    Reg mult = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_m, i, 4));
    Reg kj = b.ld(MemSpace::Global, DT::F32,
                  b.elemAddr(p_a, b.mad(DT::U32, k, n, j), 4));
    Reg addr = b.elemAddr(p_a, b.mad(DT::U32, i, n, j), 4);
    Reg v = b.ld(MemSpace::Global, DT::F32, addr);
    b.st(MemSpace::Global, DT::F32, addr,
         b.sub(DT::F32, v, b.mul(DT::F32, mult, kj)));

    // One thread column also updates the right-hand side.
    Label skip_rhs = b.newLabel();
    Reg not_first = b.setp(CmpOp::Ne, DT::U32, j, k);
    b.braIf(not_first, skip_rhs);
    {
        Reg bk = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_rhs, k, 4));
        Reg bi_addr = b.elemAddr(p_rhs, i, 4);
        Reg bi = b.ld(MemSpace::Global, DT::F32, bi_addr);
        b.st(MemSpace::Global, DT::F32, bi_addr,
             b.sub(DT::F32, bi, b.mul(DT::F32, mult, bk)));
    }
    b.place(skip_rhs);
    b.place(out);
    b.exit();
    return b.build();
}

void
cpuGaussian(std::vector<float> &a, std::vector<float> &rhs, uint32_t n)
{
    std::vector<float> m(n, 0.0f);
    for (uint32_t k = 0; k + 1 < n; ++k) {
        const float pivot = a[static_cast<size_t>(k) * n + k];
        for (uint32_t i = k + 1; i < n; ++i)
            m[i] = static_cast<float>(
                static_cast<double>(a[static_cast<size_t>(i) * n + k]) /
                pivot);
        for (uint32_t i = k + 1; i < n; ++i) {
            for (uint32_t j = k; j < n; ++j) {
                const double prod = static_cast<double>(m[i]) *
                                    a[static_cast<size_t>(k) * n + j];
                a[static_cast<size_t>(i) * n + j] = static_cast<float>(
                    static_cast<double>(a[static_cast<size_t>(i) * n + j]) -
                    prod);
            }
            const double prod = static_cast<double>(m[i]) * rhs[k];
            rhs[i] =
                static_cast<float>(static_cast<double>(rhs[i]) - prod);
        }
    }
}

bool
runGaus(sim::Gpu &gpu)
{
    auto a = makeDominantMatrix(kN, 0x6a05);
    auto rhs = makeRandomMatrix(kN, 1, -1.0f, 1.0f, 0x6a06);

    const uint64_t d_a = upload(gpu, a);
    const uint64_t d_rhs = upload(gpu, rhs);
    const uint64_t d_m = allocZeroed<float>(gpu, kN);

    const ptx::Kernel fan1 = buildFan1Kernel();
    const ptx::Kernel fan2 = buildFan2Kernel();

    for (uint32_t k = 0; k + 1 < kN; ++k) {
        const uint32_t remaining = kN - k - 1;
        gpu.launch(fan1,
                   sim::Dim3{(remaining + kFan1Cta - 1) / kFan1Cta, 1, 1},
                   sim::Dim3{kFan1Cta, 1, 1}, {d_m, d_a, kN, k});

        const uint32_t tx = (kN - k + kTile - 1) / kTile;
        const uint32_t ty = (remaining + kTile - 1) / kTile;
        gpu.launch(fan2, sim::Dim3{tx, ty, 1}, sim::Dim3{kTile, kTile, 1},
                   {d_m, d_a, d_rhs, kN, k});
    }

    cpuGaussian(a, rhs, kN);
    const auto dev_a = download<float>(gpu, d_a, size_t{kN} * kN);
    const auto dev_rhs = download<float>(gpu, d_rhs, kN);
    return nearlyEqual(dev_a, a, 5e-3f) && nearlyEqual(dev_rhs, rhs, 5e-3f);
}

} // namespace

Workload
makeGaus()
{
    Workload w;
    w.name = "gaus";
    w.category = Category::Linear;
    w.description = "Gaussian elimination, Fan1/Fan2 kernels (Rodinia)";
    w.run = runGaus;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildFan1Kernel(),
                                        buildFan2Kernel()};
    };
    return w;
}

} // namespace gcl::workloads
