/**
 * @file
 * The 15-application suite of the paper (Table I), reimplemented as
 * structurally faithful kernels in the PTX-like IR over synthetic inputs.
 *
 * Every workload bundles a host driver (allocates device memory, launches
 * its kernels — iterating with host readbacks where the original app does)
 * and a CPU reference check so functional correctness is verified on every
 * run. See DESIGN.md §"Substitutions" for the scaling rationale.
 */

#ifndef GCL_WORKLOADS_WORKLOAD_HH
#define GCL_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "ptx/kernel.hh"
#include "sim/gpu.hh"

namespace gcl::workloads
{

/** Table I application categories. */
enum class Category
{
    Linear,
    Image,
    Graph,
};

std::string toString(Category category);

/** One benchmark application. */
struct Workload
{
    std::string name;
    Category category;
    std::string description;

    /**
     * Run the full application on @p gpu (data generation, uploads, one or
     * more kernel launches, downloads) and verify the outputs against the
     * CPU reference implementation.
     *
     * @retval true when the device results match the reference.
     */
    std::function<bool(sim::Gpu &gpu)> run;

    /** Build the workload's kernels (for static analysis reports). */
    std::function<std::vector<ptx::Kernel>()> kernels;
};

/**
 * All 15 workloads in Table I order. The registry is built on first use;
 * call once before spawning sweep threads so workers only ever read it.
 */
const std::vector<Workload> &all();

/** Lookup by Table I name; panics on unknown names. */
const Workload &byName(const std::string &name);

/** Lookup by Table I name; nullptr when unknown (user-input validation). */
const Workload *findByName(const std::string &name);

/** Comma-separated list of every known name (for error messages). */
std::string knownNames();

// Per-application factories (defined in their own translation units).
Workload make2mm();
Workload makeGaus();
Workload makeGrm();
Workload makeLu();
Workload makeSpmv();
Workload makeHtw();
Workload makeMriq();
Workload makeDwt();
Workload makeBpr();
Workload makeSrad();
Workload makeBfs();
Workload makeSssp();
Workload makeCcl();
Workload makeMst();
Workload makeMis();

} // namespace gcl::workloads

#endif // GCL_WORKLOADS_WORKLOAD_HH
