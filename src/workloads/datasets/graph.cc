#include "graph.hh"

#include <algorithm>

#include "util/bitutil.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gcl::workloads
{

namespace
{

/** Draw one R-MAT endpoint pair in [0, 2^levels). */
std::pair<uint32_t, uint32_t>
rmatEdge(Rng &rng, unsigned levels, double a)
{
    // R-MAT quadrant probabilities; b and c split most of the remainder.
    const double b = (1.0 - a) * 0.4, c = (1.0 - a) * 0.4;
    uint32_t src = 0, dst = 0;
    for (unsigned level = 0; level < levels; ++level) {
        const double p = rng.nextDouble();
        src <<= 1;
        dst <<= 1;
        if (p < a) {
            // top-left quadrant
        } else if (p < a + b) {
            dst |= 1;
        } else if (p < a + b + c) {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    return {src, dst};
}

} // namespace

Graph
makeRmatGraph(uint32_t num_nodes, uint32_t avg_degree, bool undirected,
              uint32_t max_weight, uint64_t seed, double skew_a)
{
    gcl_assert(num_nodes >= 2, "graph needs at least two nodes");
    gcl_assert(max_weight >= 1, "weights start at 1");

    Rng rng(seed);
    const unsigned levels = ceilLog2(num_nodes);
    const uint64_t target_edges = uint64_t{num_nodes} * avg_degree;

    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(target_edges * (undirected ? 2 : 1));
    uint64_t attempts = 0;
    while (edges.size() < target_edges && attempts < target_edges * 8) {
        ++attempts;
        auto [src, dst] = rmatEdge(rng, levels, skew_a);
        src %= num_nodes;
        dst %= num_nodes;
        if (src == dst)
            continue;
        edges.emplace_back(src, dst);
    }

    if (undirected) {
        const size_t n = edges.size();
        for (size_t i = 0; i < n; ++i)
            edges.emplace_back(edges[i].second, edges[i].first);
    }

    // Ensure the graph is connected with a small diameter: a ring for
    // guaranteed reachability plus one uniformly random in- and out-edge
    // per node for expansion (keeps BFS/SSSP iteration counts logarithmic;
    // pure R-MAT leaves skew-starved nodes with the ring as their only
    // edge, which blows the diameter up to O(n)).
    for (uint32_t v = 0; v < num_nodes; ++v) {
        edges.emplace_back(v, (v + 1) % num_nodes);
        const auto r1 = static_cast<uint32_t>(rng.nextBounded(num_nodes));
        const auto r2 = static_cast<uint32_t>(rng.nextBounded(num_nodes));
        if (r1 != v)
            edges.emplace_back(v, r1);
        if (r2 != v)
            edges.emplace_back(r2, v);
        if (undirected) {
            edges.emplace_back((v + 1) % num_nodes, v);
            if (r1 != v)
                edges.emplace_back(r1, v);
            if (r2 != v)
                edges.emplace_back(v, r2);
        }
    }

    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    Graph g;
    g.numNodes = num_nodes;
    g.rowPtr.assign(num_nodes + 1, 0);
    for (const auto &[src, dst] : edges) {
        (void)dst;
        ++g.rowPtr[src + 1];
    }
    for (uint32_t v = 0; v < num_nodes; ++v)
        g.rowPtr[v + 1] += g.rowPtr[v];

    g.col.resize(edges.size());
    g.weight.resize(edges.size());
    std::vector<uint32_t> cursor(g.rowPtr.begin(), g.rowPtr.end() - 1);
    for (const auto &[src, dst] : edges) {
        const uint32_t slot = cursor[src]++;
        g.col[slot] = dst;
        g.weight[slot] = 1 + static_cast<uint32_t>(
            rng.nextBounded(max_weight));
    }

    // Symmetric weights for undirected graphs: derive the weight from the
    // unordered endpoint pair so (u,v) and (v,u) agree.
    if (undirected) {
        for (uint32_t v = 0; v < num_nodes; ++v) {
            for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
                const uint32_t u = g.col[e];
                const uint64_t lo = std::min(v, u), hi = std::max(v, u);
                // Cheap deterministic pair hash.
                uint64_t h = (lo << 32 | hi) * 0x9e3779b97f4a7c15ull;
                h ^= h >> 29;
                g.weight[e] = 1 + static_cast<uint32_t>(h % max_weight);
            }
        }
    }

    return g;
}

} // namespace gcl::workloads
