#include "matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gcl::workloads
{

std::vector<float>
makeRandomMatrix(uint32_t rows, uint32_t cols, float lo, float hi,
                 uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> m(static_cast<size_t>(rows) * cols);
    for (auto &v : m)
        v = lo + static_cast<float>(rng.nextDouble()) * (hi - lo);
    return m;
}

std::vector<float>
makeDominantMatrix(uint32_t n, uint64_t seed)
{
    std::vector<float> m = makeRandomMatrix(n, n, -1.0f, 1.0f, seed);
    for (uint32_t i = 0; i < n; ++i) {
        float row_sum = 0.0f;
        for (uint32_t j = 0; j < n; ++j)
            row_sum += std::fabs(m[static_cast<size_t>(i) * n + j]);
        m[static_cast<size_t>(i) * n + i] = row_sum + 1.0f;
    }
    return m;
}

std::vector<float>
makeImage(uint32_t height, uint32_t width, uint64_t seed)
{
    // Sum of a few random sinusoids: smooth structure plus noise, so
    // stencil/wavelet outputs are non-trivial.
    Rng rng(seed);
    const double fx1 = 1.0 + rng.nextDouble() * 7.0;
    const double fy1 = 1.0 + rng.nextDouble() * 7.0;
    const double fx2 = 1.0 + rng.nextDouble() * 23.0;
    const double fy2 = 1.0 + rng.nextDouble() * 23.0;

    std::vector<float> img(static_cast<size_t>(height) * width);
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            const double u = static_cast<double>(x) / width;
            const double v = static_cast<double>(y) / height;
            double val = 0.5 +
                0.2 * std::sin(fx1 * u * 6.2831 + fy1 * v * 6.2831) +
                0.15 * std::cos(fx2 * u * 6.2831 - fy2 * v * 6.2831) +
                0.05 * rng.nextDouble();
            val = std::clamp(val, 0.0, 1.0);
            img[static_cast<size_t>(y) * width + x] =
                static_cast<float>(val);
        }
    }
    return img;
}

CsrMatrix
makeCsrMatrix(uint32_t rows, uint32_t cols, uint32_t avg_nnz, uint64_t seed)
{
    gcl_assert(avg_nnz >= 1 && avg_nnz <= cols, "bad nnz density");
    Rng rng(seed);

    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.assign(rows + 1, 0);

    std::vector<uint32_t> row_cols;
    for (uint32_t r = 0; r < rows; ++r) {
        // Degree varies between 1 and 2*avg (skewed row lengths stress the
        // non-deterministic inner loop the way real sparse inputs do).
        const uint32_t nnz = 1 + static_cast<uint32_t>(
            rng.nextBounded(2 * avg_nnz - 1));
        row_cols.clear();
        for (uint32_t k = 0; k < nnz; ++k)
            row_cols.push_back(static_cast<uint32_t>(rng.nextBounded(cols)));
        std::sort(row_cols.begin(), row_cols.end());
        row_cols.erase(std::unique(row_cols.begin(), row_cols.end()),
                       row_cols.end());
        for (uint32_t c : row_cols) {
            m.colIdx.push_back(c);
            m.values.push_back(
                static_cast<float>(rng.nextDouble()) * 2.0f - 1.0f);
        }
        m.rowPtr[r + 1] = static_cast<uint32_t>(m.colIdx.size());
    }
    return m;
}

} // namespace gcl::workloads
