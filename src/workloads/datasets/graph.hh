/**
 * @file
 * Synthetic graph generation for the graph-application category.
 *
 * The paper's graph apps run on R-MAT and road-like inputs whose defining
 * property for this study is that edge endpoints are randomly distributed,
 * making indices for data fetching irregular (Section IV-A3). The generator
 * produces CSR graphs with R-MAT-skewed endpoints.
 */

#ifndef GCL_WORKLOADS_DATASETS_GRAPH_HH
#define GCL_WORKLOADS_DATASETS_GRAPH_HH

#include <cstdint>
#include <vector>

namespace gcl::workloads
{

/** CSR graph with optional edge weights. */
struct Graph
{
    uint32_t numNodes = 0;
    std::vector<uint32_t> rowPtr;   //!< size numNodes + 1
    std::vector<uint32_t> col;      //!< edge destinations
    std::vector<uint32_t> weight;   //!< parallel to col

    uint32_t numEdges() const { return static_cast<uint32_t>(col.size()); }

    uint32_t degree(uint32_t v) const { return rowPtr[v + 1] - rowPtr[v]; }
};

/**
 * Generate an R-MAT-skewed graph.
 *
 * @param num_nodes node count (rounded up to a power of two internally for
 *        the R-MAT recursion, then clipped)
 * @param avg_degree average out-degree
 * @param undirected when true every edge is mirrored, self-loops dropped
 * @param max_weight weights uniform in [1, max_weight]
 * @param seed RNG seed
 * @param skew_a R-MAT "a" quadrant probability; 0.25 yields a uniform
 *        Erdos-Renyi-like graph (the b and c quadrants track (1-a)/2.5)
 */
Graph makeRmatGraph(uint32_t num_nodes, uint32_t avg_degree,
                    bool undirected, uint32_t max_weight, uint64_t seed,
                    double skew_a = 0.45);

} // namespace gcl::workloads

#endif // GCL_WORKLOADS_DATASETS_GRAPH_HH
