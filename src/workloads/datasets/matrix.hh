/**
 * @file
 * Dense matrix / image synthesis for the linear-algebra and image
 * categories.
 */

#ifndef GCL_WORKLOADS_DATASETS_MATRIX_HH
#define GCL_WORKLOADS_DATASETS_MATRIX_HH

#include <cstdint>
#include <vector>

namespace gcl::workloads
{

/** Row-major random matrix with entries in [lo, hi). */
std::vector<float> makeRandomMatrix(uint32_t rows, uint32_t cols, float lo,
                                    float hi, uint64_t seed);

/**
 * Random diagonally-dominant square matrix: well conditioned for the LU
 * and Gaussian-elimination workloads (no pivoting in the originals either).
 */
std::vector<float> makeDominantMatrix(uint32_t n, uint64_t seed);

/** Random grayscale "image" with smooth spatial structure in [0, 1). */
std::vector<float> makeImage(uint32_t height, uint32_t width, uint64_t seed);

/** CSR sparse matrix for spmv. */
struct CsrMatrix
{
    uint32_t rows = 0;
    uint32_t cols = 0;
    std::vector<uint32_t> rowPtr;
    std::vector<uint32_t> colIdx;
    std::vector<float> values;
};

/** Random CSR matrix with ~avg_nnz entries per row at random columns. */
CsrMatrix makeCsrMatrix(uint32_t rows, uint32_t cols, uint32_t avg_nnz,
                        uint64_t seed);

} // namespace gcl::workloads

#endif // GCL_WORKLOADS_DATASETS_MATRIX_HH
