/**
 * @file
 * 2mm (PolyBench): two dense matrix multiplications, E = C * (A * B).
 *
 * The canonical deterministic-load workload: every address is a linear
 * function of %ctaid/%tid and the loop counter, so the classifier marks all
 * global loads deterministic and they coalesce perfectly (Fig 1).
 */

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kN = 128;       //!< matrix dimension
constexpr uint32_t kTile = 16;     //!< CTA is kTile x kTile threads

/** C[row,col] = sum_k A[row,k] * B[k,col]. Params: A, B, C, N. */
ptx::Kernel
buildMatmulKernel()
{
    KernelBuilder b("mm_kernel", 4);

    Reg col = b.mad(DT::U32, SpecialReg::CtaIdX, SpecialReg::NTidX,
                    SpecialReg::TidX);
    Reg row = b.mad(DT::U32, SpecialReg::CtaIdY, SpecialReg::NTidY,
                    SpecialReg::TidY);
    Reg p_a = b.ldParam(0);
    Reg p_b = b.ldParam(1);
    Reg p_c = b.ldParam(2);
    Reg n = b.ldParam(3);

    Label out = b.newLabel();
    Reg oob_r = b.setp(CmpOp::Ge, DT::U32, row, n);
    b.braIf(oob_r, out);
    Reg oob_c = b.setp(CmpOp::Ge, DT::U32, col, n);
    b.braIf(oob_c, out);

    Reg acc = b.mov(DT::F32, immF32(0.0f));
    Reg k = b.mov(DT::U32, 0);

    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, k, n);
    b.braIf(at_end, done);
    {
        Reg a_idx = b.mad(DT::U32, row, n, k);
        Reg a = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_a, a_idx, 4));
        Reg b_idx = b.mad(DT::U32, k, n, col);
        Reg bv = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_b, b_idx, 4));
        Reg t = b.mad(DT::F32, a, bv, acc);
        b.assign(DT::F32, acc, t);
        b.assign(DT::U32, k, b.add(DT::U32, k, 1));
    }
    b.bra(loop);
    b.place(done);

    Reg c_idx = b.mad(DT::U32, row, n, col);
    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_c, c_idx, 4), acc);
    b.place(out);
    b.exit();
    return b.build();
}

/** Reference matmul mirroring the kernel's accumulation order. */
std::vector<float>
cpuMatmul(const std::vector<float> &a, const std::vector<float> &b,
          uint32_t n)
{
    std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
    for (uint32_t row = 0; row < n; ++row) {
        for (uint32_t col = 0; col < n; ++col) {
            float acc = 0.0f;
            for (uint32_t k = 0; k < n; ++k) {
                const double prod =
                    static_cast<double>(a[static_cast<size_t>(row) * n + k]) *
                    b[static_cast<size_t>(k) * n + col];
                acc = static_cast<float>(prod + acc);
            }
            c[static_cast<size_t>(row) * n + col] = acc;
        }
    }
    return c;
}

bool
run2mm(sim::Gpu &gpu)
{
    const auto a = makeRandomMatrix(kN, kN, -1.0f, 1.0f, 0x2a01);
    const auto b = makeRandomMatrix(kN, kN, -1.0f, 1.0f, 0x2a02);
    const auto c = makeRandomMatrix(kN, kN, -1.0f, 1.0f, 0x2a03);

    const uint64_t d_a = upload(gpu, a);
    const uint64_t d_b = upload(gpu, b);
    const uint64_t d_c = upload(gpu, c);
    const uint64_t d_tmp = allocZeroed<float>(gpu, size_t{kN} * kN);
    const uint64_t d_e = allocZeroed<float>(gpu, size_t{kN} * kN);

    const ptx::Kernel kernel = buildMatmulKernel();
    const sim::Dim3 grid{kN / kTile, kN / kTile, 1};
    const sim::Dim3 cta{kTile, kTile, 1};

    // tmp = A * B, then E = C * tmp.
    gpu.launch(kernel, grid, cta, {d_a, d_b, d_tmp, kN});
    gpu.launch(kernel, grid, cta, {d_c, d_tmp, d_e, kN});

    const auto tmp_ref = cpuMatmul(a, b, kN);
    const auto e_ref = cpuMatmul(c, tmp_ref, kN);
    const auto e = download<float>(gpu, d_e, size_t{kN} * kN);
    return nearlyEqual(e, e_ref, 2e-3f);
}

} // namespace

Workload
make2mm()
{
    Workload w;
    w.name = "2mm";
    w.category = Category::Linear;
    w.description = "two dense matrix multiplications (PolyBench 2mm)";
    w.run = run2mm;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildMatmulKernel()};
    };
    return w;
}

} // namespace gcl::workloads
