/**
 * @file
 * bfs (Rodinia): level-synchronous breadth-first search, the paper's own
 * running example (Code 1 in Section V).
 *
 * Kernel 1 visits the current frontier: the mask/cost/rowPtr loads are
 * deterministic (indexed by tid), while the edge-destination and visited
 * loads are non-deterministic (indexed through data loaded from memory).
 */

#include <queue>

#include "common.hh"
#include "datasets/graph.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kNodes = 32768;
constexpr uint32_t kAvgDegree = 4;
constexpr uint32_t kCtaSize = 256;

/**
 * Frontier-expansion kernel, following the paper's Code 1.
 * Params: rowPtr, col, mask, updating, visited, cost, n.
 */
ptx::Kernel
buildBfsExpandKernel()
{
    KernelBuilder b("bfs_expand", 7);

    Reg tid = b.globalTidX();
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg p_mask = b.ldParam(2);
    Reg p_upd = b.ldParam(3);
    Reg p_vis = b.ldParam(4);
    Reg p_cost = b.ldParam(5);
    Reg n = b.ldParam(6);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    // if (!g_graph_mask[tid]) return;  -- deterministic byte load
    Reg mask_addr = b.elemAddr(p_mask, tid, 1);
    Reg mask = b.ld(MemSpace::Global, DT::U32, mask_addr, 0, 1);
    Reg not_front = b.setp(CmpOp::Eq, DT::U32, mask, 0);
    b.braIf(not_front, out);

    // g_graph_mask[tid] = false;
    b.st(MemSpace::Global, DT::U32, mask_addr, 0, 0, 1);

    // start/end of the adjacency list: deterministic loads.
    Reg row_addr = b.elemAddr(p_row, tid, 4);
    Reg start = b.ld(MemSpace::Global, DT::U32, row_addr);
    Reg end = b.ld(MemSpace::Global, DT::U32, row_addr, 4);
    Reg my_cost =
        b.ld(MemSpace::Global, DT::S32, b.elemAddr(p_cost, tid, 4));
    Reg next_cost = b.add(DT::S32, my_cost, 1);

    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(at_end, done);
    {
        // int id = g_graph_edges[i];  -- NON-deterministic: i derives from
        // the loaded rowPtr value.
        Reg id = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));

        // if (!g_graph_visited[id])   -- NON-deterministic byte load.
        Reg vis =
            b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_vis, id, 1), 0, 1);
        Label skip = b.newLabel();
        Reg seen = b.setp(CmpOp::Ne, DT::U32, vis, 0);
        b.braIf(seen, skip);
        {
            b.st(MemSpace::Global, DT::S32, b.elemAddr(p_cost, id, 4),
                 next_cost);
            b.st(MemSpace::Global, DT::U32, b.elemAddr(p_upd, id, 1), 1,
                 0, 1);
        }
        b.place(skip);
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);
    b.place(out);
    b.exit();
    return b.build();
}

/**
 * Frontier-commit kernel. Params: mask, updating, visited, done_flag, n.
 */
ptx::Kernel
buildBfsCommitKernel()
{
    KernelBuilder b("bfs_commit", 5);

    Reg tid = b.globalTidX();
    Reg p_mask = b.ldParam(0);
    Reg p_upd = b.ldParam(1);
    Reg p_vis = b.ldParam(2);
    Reg p_done = b.ldParam(3);
    Reg n = b.ldParam(4);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    Reg upd_addr = b.elemAddr(p_upd, tid, 1);
    Reg upd = b.ld(MemSpace::Global, DT::U32, upd_addr, 0, 1);
    Reg idle = b.setp(CmpOp::Eq, DT::U32, upd, 0);
    b.braIf(idle, out);

    b.st(MemSpace::Global, DT::U32, b.elemAddr(p_mask, tid, 1), 1, 0, 1);
    b.st(MemSpace::Global, DT::U32, b.elemAddr(p_vis, tid, 1), 1, 0, 1);
    b.st(MemSpace::Global, DT::U32, upd_addr, 0, 0, 1);
    b.st(MemSpace::Global, DT::U32, p_done, 1);

    b.place(out);
    b.exit();
    return b.build();
}

std::vector<int32_t>
cpuBfs(const Graph &g, uint32_t source)
{
    std::vector<int32_t> cost(g.numNodes, -1);
    std::queue<uint32_t> frontier;
    cost[source] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
        const uint32_t v = frontier.front();
        frontier.pop();
        for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const uint32_t u = g.col[e];
            if (cost[u] < 0) {
                cost[u] = cost[v] + 1;
                frontier.push(u);
            }
        }
    }
    return cost;
}

bool
runBfs(sim::Gpu &gpu)
{
    const Graph g = makeRmatGraph(kNodes, kAvgDegree, false, 1, 0xbf5, 0.25);
    const uint32_t n = g.numNodes;
    const uint32_t source = 0;

    std::vector<uint8_t> mask(n, 0), updating(n, 0), visited(n, 0);
    std::vector<int32_t> cost(n, -1);
    mask[source] = 1;
    visited[source] = 1;
    cost[source] = 0;

    const uint64_t d_row = upload(gpu, g.rowPtr);
    const uint64_t d_col = upload(gpu, g.col);
    const uint64_t d_mask = upload(gpu, mask);
    const uint64_t d_upd = upload(gpu, updating);
    const uint64_t d_vis = upload(gpu, visited);
    const uint64_t d_cost = upload(gpu, cost);
    const uint64_t d_done = allocZeroed<uint32_t>(gpu, 1);

    const ptx::Kernel expand = buildBfsExpandKernel();
    const ptx::Kernel commit = buildBfsCommitKernel();
    const sim::Dim3 grid{(n + kCtaSize - 1) / kCtaSize, 1, 1};
    const sim::Dim3 cta{kCtaSize, 1, 1};

    // Host loop, like the Rodinia driver: iterate until no node updates.
    for (int iter = 0; iter < 1000; ++iter) {
        const uint32_t zero = 0;
        gpu.memcpyToDevice(d_done, &zero, sizeof(zero));
        gpu.launch(expand, grid, cta,
                   {d_row, d_col, d_mask, d_upd, d_vis, d_cost, n});
        gpu.launch(commit, grid, cta, {d_mask, d_upd, d_vis, d_done, n});
        uint32_t done = 0;
        gpu.memcpyToHost(&done, d_done, sizeof(done));
        if (!done)
            break;
    }

    const auto device_cost = download<int32_t>(gpu, d_cost, n);
    return device_cost == cpuBfs(g, source);
}

} // namespace

Workload
makeBfs()
{
    Workload w;
    w.name = "bfs";
    w.category = Category::Graph;
    w.description = "level-synchronous breadth-first search (Rodinia bfs)";
    w.run = runBfs;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildBfsExpandKernel(),
                                        buildBfsCommitKernel()};
    };
    return w;
}

} // namespace gcl::workloads
