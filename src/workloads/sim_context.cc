#include "sim_context.hh"

#include "sim/gpu.hh"
#include "util/logging.hh"

namespace gcl::workloads
{

SimContext::SimContext(const Workload &workload,
                       const sim::GpuConfig &config)
    : workload_(workload), config_(config)
{
}

SimContext::~SimContext() = default;

void
SimContext::enableTrace(sim::Cycle timeline_interval,
                        trace::TraceSink::DrainFn drain, uint64_t id_base,
                        size_t capacity)
{
    gcl_assert(!ran_, "enableTrace after run");
    sink_ = std::make_unique<trace::TraceSink>(capacity);
    sink_->setIdBase(id_base);
    sink_->setDrain(std::move(drain));
    sink_->setEnabled(true);
    timelineInterval_ = timeline_interval;
}

void
SimContext::run()
{
    gcl_assert(!ran_, "SimContext::run called twice");
    ran_ = true;

    // Every log line this run emits — from any layer of the simulator —
    // carries the application's name, so interleaved sweep output stays
    // attributable.
    LogTagScope tag(workload_.name);

    sim::Gpu gpu(config_);
    if (sink_)
        gpu.attachTrace(sink_.get(), timelineInterval_);
    verified_ = workload_.run(gpu);
    gpu.finalizeStats();
    stats_ = gpu.stats().set();
    if (sink_) {
        gpu.attachTrace(nullptr);
        sink_->flush();
    }
    if (!verified_)
        gcl_warn("workload '", workload_.name,
                 "' failed its reference check");
}

} // namespace gcl::workloads
