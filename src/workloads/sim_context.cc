#include "sim_context.hh"

#include "guard/fault.hh"
#include "sim/gpu.hh"
#include "util/logging.hh"

namespace gcl::workloads
{

SimContext::SimContext(const Workload &workload,
                       const sim::GpuConfig &config)
    : workload_(workload), config_(config)
{
    // An app-targeted fault plan (see guard::FaultPlan::appliesTo) is
    // stripped from runs it does not target, so those runs keep the clean
    // config fingerprint — and therefore the clean cache identity and
    // byte-identical stats — of a fault-free sweep.
    if (!config_.faultPlan.empty()) {
        try {
            if (!guard::FaultPlan::parse(config_.faultPlan)
                     .appliesTo(workload_.name))
                config_.faultPlan.clear();
        } catch (const SimError &) {
            // Unparsable spec: keep it; run() turns the parse error into
            // this run's structured failure record.
        }
    }
}

SimContext::~SimContext() = default;

void
SimContext::enableTrace(sim::Cycle timeline_interval,
                        trace::TraceSink::DrainFn drain, uint64_t id_base,
                        size_t capacity)
{
    gcl_assert(!ran_, "enableTrace after run");
    sink_ = std::make_unique<trace::TraceSink>(capacity);
    sink_->setIdBase(id_base);
    sink_->setDrain(std::move(drain));
    sink_->setEnabled(true);
    timelineInterval_ = timeline_interval;
}

void
SimContext::run()
{
    gcl_assert(!ran_, "SimContext::run called twice");
    ran_ = true;

    // Every log line this run emits — from any layer of the simulator —
    // carries the application's name, so interleaved sweep output stays
    // attributable.
    LogTagScope tag(workload_.name);

    try {
        sim::Gpu gpu(config_);
        if (sink_)
            gpu.attachTrace(sink_.get(), timelineInterval_);
        verified_ = workload_.run(gpu);
        gpu.finalizeStats();
        stats_ = gpu.stats().set();
        if (sink_)
            gpu.attachTrace(nullptr);
    } catch (const SimError &error) {
        // The device model is gone, but the failure is confined to this
        // run: record it and let the caller (and sibling runs) carry on.
        failure_ = SimFailure::fromError(error);
        verified_ = false;
        stats_ = StatsSet{};
        gcl_warn("workload '", workload_.name, "' failed: ", error.what());
    }
    // Flush even on failure — the trace of the final window is exactly
    // what a hang post-mortem needs.
    if (sink_)
        sink_->flush();
    if (!failure_.failed && !verified_)
        gcl_warn("workload '", workload_.name,
                 "' failed its reference check");
}

} // namespace gcl::workloads
