/**
 * @file
 * bpr (Rodinia backprop): neural-network layer forward pass plus weight
 * adjustment.
 *
 * The forward kernel follows Rodinia's blocked scheme: each 16x16 CTA
 * stages an input tile in shared memory, forms the partial products in a
 * shared matrix, tree-reduces along the input dimension, and emits partial
 * sums that a second kernel folds and squashes with the sigmoid (SFU ex2).
 */

#include <cmath>

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kIn = 512;      //!< input layer size
constexpr uint32_t kHid = 64;      //!< hidden layer size
constexpr uint32_t kBlk = 16;      //!< tile edge
constexpr uint32_t kBlocks = kIn / kBlk;
constexpr float kLog2E = 1.4426950f;
constexpr float kEta = 0.3f;

/**
 * Forward partials. Params: input, weights, partial, in, hid.
 * CTA (kBlk, kBlk): tx = hidden unit inside the block, ty = input row.
 * Shared: input tile [kBlk] then product matrix [kBlk][kBlk].
 */
ptx::Kernel
buildBprForwardKernel()
{
    KernelBuilder b("bpr_layerforward", 5, (kBlk + kBlk * kBlk) * 4);

    Reg tx = b.mov(DT::U32, SpecialReg::TidX);
    Reg ty = b.mov(DT::U32, SpecialReg::TidY);
    Reg p_input = b.ldParam(0);
    Reg p_w = b.ldParam(1);
    Reg p_partial = b.ldParam(2);
    (void)b.ldParam(3);  // input size: unused by this kernel's indexing
    Reg hid_size = b.ldParam(4);

    // Global input row and hidden column of this thread.
    Reg row = b.mad(DT::U32, SpecialReg::CtaIdY, Src(kBlk), ty);
    Reg col = b.mad(DT::U32, SpecialReg::CtaIdX, Src(kBlk), tx);

    // One thread column stages the input tile.
    Label staged = b.newLabel();
    Reg not_loader = b.setp(CmpOp::Ne, DT::U32, tx, 0);
    b.braIf(not_loader, staged);
    {
        Reg v = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_input, row, 4));
        b.st(MemSpace::Shared, DT::F32,
             b.shl(DT::U64, b.cvt(DT::U64, DT::U32, ty), 2), v);
    }
    b.place(staged);
    b.bar();

    // product[ty][tx] = input_s[ty] * w[row][col]
    Reg in_v = b.ld(MemSpace::Shared, DT::F32,
                    b.shl(DT::U64, b.cvt(DT::U64, DT::U32, ty), 2));
    Reg w = b.ld(MemSpace::Global, DT::F32,
                 b.elemAddr(p_w, b.mad(DT::U32, row, hid_size, col), 4));
    Reg prod_idx = b.add(DT::U32, b.mad(DT::U32, ty, Src(kBlk), tx),
                         Src(kBlk));
    Reg prod_off = b.shl(DT::U64, b.cvt(DT::U64, DT::U32, prod_idx), 2);
    b.st(MemSpace::Shared, DT::F32, prod_off, b.mul(DT::F32, in_v, w));
    b.bar();

    // Tree-reduce along ty.
    Reg stride = b.mov(DT::U32, kBlk / 2);
    Label reduce = b.newLabel();
    Label reduced = b.newLabel();
    b.place(reduce);
    Reg r_done = b.setp(CmpOp::Eq, DT::U32, stride, 0);
    b.braIf(r_done, reduced);
    {
        Label skip = b.newLabel();
        Reg idle = b.setp(CmpOp::Ge, DT::U32, ty, stride);
        b.braIf(idle, skip);
        {
            Reg peer_idx = b.add(
                DT::U32,
                b.mad(DT::U32, b.add(DT::U32, ty, stride), Src(kBlk), tx),
                Src(kBlk));
            Reg peer_off =
                b.shl(DT::U64, b.cvt(DT::U64, DT::U32, peer_idx), 2);
            Reg mine = b.ld(MemSpace::Shared, DT::F32, prod_off);
            Reg theirs = b.ld(MemSpace::Shared, DT::F32, peer_off);
            b.st(MemSpace::Shared, DT::F32, prod_off,
                 b.add(DT::F32, mine, theirs));
        }
        b.place(skip);
        b.bar();
        b.assign(DT::U32, stride, b.shr(DT::U32, stride, 1));
    }
    b.bra(reduce);
    b.place(reduced);

    // Row 0 writes this block's partial: partial[blockY * hid + col].
    Label not_writer = b.newLabel();
    Reg rest = b.setp(CmpOp::Ne, DT::U32, ty, 0);
    b.braIf(rest, not_writer);
    {
        Reg sum = b.ld(MemSpace::Shared, DT::F32, prod_off);
        Reg out_idx =
            b.mad(DT::U32, SpecialReg::CtaIdY, hid_size, col);
        b.st(MemSpace::Global, DT::F32, b.elemAddr(p_partial, out_idx, 4),
             sum);
    }
    b.place(not_writer);
    b.exit();
    return b.build();
}

/**
 * Fold partials and squash. Params: partial, hidden, blocks, hid.
 * hidden[j] = 1 / (1 + 2^(-x*log2(e))) — the sigmoid via the SFU.
 */
ptx::Kernel
buildBprSquashKernel()
{
    KernelBuilder b("bpr_squash", 4);

    Reg j = b.globalTidX();
    Reg p_partial = b.ldParam(0);
    Reg p_hidden = b.ldParam(1);
    Reg blocks = b.ldParam(2);
    Reg hid_size = b.ldParam(3);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, j, hid_size);
    b.braIf(oob, out);

    Reg acc = b.mov(DT::F32, immF32(0.0f));
    Reg i = b.mov(DT::U32, 0);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, blocks);
    b.braIf(at_end, done);
    {
        Reg v = b.ld(MemSpace::Global, DT::F32,
                     b.elemAddr(p_partial, b.mad(DT::U32, i, hid_size, j),
                                4));
        b.assign(DT::F32, acc, b.add(DT::F32, acc, v));
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);

    Reg exponent = b.mul(DT::F32, acc, immF32(-kLog2E));
    Reg pow = b.sfu(Opcode::Ex2, DT::F32, exponent);
    Reg sig = b.div(DT::F32, immF32(1.0f),
                    b.add(DT::F32, immF32(1.0f), pow));
    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_hidden, j, 4), sig);

    b.place(out);
    b.exit();
    return b.build();
}

/**
 * Weight adjustment. Params: weights, input, delta, in, hid.
 * w[i][j] += eta * delta[j] * input[i].
 */
ptx::Kernel
buildBprAdjustKernel()
{
    KernelBuilder b("bpr_adjust", 5);

    Reg col = b.mad(DT::U32, SpecialReg::CtaIdX, SpecialReg::NTidX,
                    SpecialReg::TidX);
    Reg row = b.mad(DT::U32, SpecialReg::CtaIdY, SpecialReg::NTidY,
                    SpecialReg::TidY);
    Reg p_w = b.ldParam(0);
    Reg p_input = b.ldParam(1);
    Reg p_delta = b.ldParam(2);
    Reg in_size = b.ldParam(3);
    Reg hid_size = b.ldParam(4);

    Label out = b.newLabel();
    Reg oob_r = b.setp(CmpOp::Ge, DT::U32, row, in_size);
    b.braIf(oob_r, out);
    Reg oob_c = b.setp(CmpOp::Ge, DT::U32, col, hid_size);
    b.braIf(oob_c, out);

    Reg in_v = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_input, row, 4));
    Reg delta = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_delta, col, 4));
    Reg addr = b.elemAddr(p_w, b.mad(DT::U32, row, hid_size, col), 4);
    Reg w = b.ld(MemSpace::Global, DT::F32, addr);
    Reg step = b.mul(DT::F32, b.mul(DT::F32, delta, immF32(kEta)), in_v);
    b.st(MemSpace::Global, DT::F32, addr, b.add(DT::F32, w, step));

    b.place(out);
    b.exit();
    return b.build();
}

bool
runBpr(sim::Gpu &gpu)
{
    const auto input = makeRandomMatrix(kIn, 1, -1.0f, 1.0f, 0xb901);
    auto weights = makeRandomMatrix(kIn, kHid, -0.5f, 0.5f, 0xb902);
    const auto delta = makeRandomMatrix(kHid, 1, -0.2f, 0.2f, 0xb903);

    const uint64_t d_input = upload(gpu, input);
    const uint64_t d_w = upload(gpu, weights);
    const uint64_t d_delta = upload(gpu, delta);
    const uint64_t d_partial = allocZeroed<float>(gpu, kBlocks * kHid);
    const uint64_t d_hidden = allocZeroed<float>(gpu, kHid);

    gpu.launch(buildBprForwardKernel(),
               sim::Dim3{kHid / kBlk, kBlocks, 1},
               sim::Dim3{kBlk, kBlk, 1},
               {d_input, d_w, d_partial, kIn, kHid});
    gpu.launch(buildBprSquashKernel(), sim::Dim3{1, 1, 1},
               sim::Dim3{kHid, 1, 1}, {d_partial, d_hidden, kBlocks, kHid});
    gpu.launch(buildBprAdjustKernel(),
               sim::Dim3{kHid / kBlk, kIn / kBlk, 1},
               sim::Dim3{kBlk, kBlk, 1},
               {d_w, d_input, d_delta, kIn, kHid});

    // CPU reference mirroring the blocked reduction order.
    std::vector<float> hidden_ref(kHid, 0.0f);
    for (uint32_t j = 0; j < kHid; ++j) {
        float acc = 0.0f;
        for (uint32_t blk = 0; blk < kBlocks; ++blk) {
            float partial[kBlk];
            for (uint32_t t = 0; t < kBlk; ++t) {
                const uint32_t i = blk * kBlk + t;
                partial[t] =
                    input[i] * weights[static_cast<size_t>(i) * kHid + j];
            }
            for (uint32_t stride = kBlk / 2; stride > 0; stride /= 2)
                for (uint32_t t = 0; t < stride; ++t)
                    partial[t] += partial[t + stride];
            acc += partial[0];
        }
        const double sig =
            1.0 / (1.0 + std::exp2(-static_cast<double>(acc) * kLog2E));
        hidden_ref[j] = static_cast<float>(sig);
    }
    std::vector<float> w_ref = weights;
    for (uint32_t i = 0; i < kIn; ++i)
        for (uint32_t j = 0; j < kHid; ++j)
            w_ref[static_cast<size_t>(i) * kHid + j] +=
                (delta[j] * kEta) * input[i];

    const auto hidden = download<float>(gpu, d_hidden, kHid);
    const auto w = download<float>(gpu, d_w, size_t{kIn} * kHid);
    return nearlyEqual(hidden, hidden_ref, 1e-3f) &&
           nearlyEqual(w, w_ref, 1e-3f);
}

} // namespace

Workload
makeBpr()
{
    Workload w;
    w.name = "bpr";
    w.category = Category::Image;
    w.description =
        "back-propagation layer forward + weight adjust (Rodinia backprop)";
    w.run = runBpr;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildBprForwardKernel(),
                                        buildBprSquashKernel(),
                                        buildBprAdjustKernel()};
    };
    return w;
}

} // namespace gcl::workloads
