/**
 * @file
 * spmv (Parboil): sparse-matrix dense-vector multiplication over CSR.
 *
 * The linear-algebra outlier in Table I: the row-pointer loads are
 * deterministic, but the inner loop indexes colIdx/values through the
 * loaded row extent and gathers x through loaded column indices — all
 * non-deterministic (Section IV-A1).
 */

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kRows = 24576;
constexpr uint32_t kCols = 24576;
constexpr uint32_t kAvgNnz = 8;
constexpr uint32_t kCtaSize = 192;   //!< Table I: 192 threads/CTA

/** y[row] = sum_i vals[i] * x[colIdx[i]]. Params: rowPtr,colIdx,vals,x,y,n. */
ptx::Kernel
buildSpmvKernel()
{
    KernelBuilder b("spmv_kernel", 6);

    Reg row = b.globalTidX();
    Reg p_rowptr = b.ldParam(0);
    Reg p_colidx = b.ldParam(1);
    Reg p_vals = b.ldParam(2);
    Reg p_x = b.ldParam(3);
    Reg p_y = b.ldParam(4);
    Reg n = b.ldParam(5);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, row, n);
    b.braIf(oob, out);

    // Row extent: deterministic loads.
    Reg row_addr = b.elemAddr(p_rowptr, row, 4);
    Reg start = b.ld(MemSpace::Global, DT::U32, row_addr);
    Reg end = b.ld(MemSpace::Global, DT::U32, row_addr, 4);

    Reg acc = b.mov(DT::F32, immF32(0.0f));
    Reg i = b.mov(DT::U32, start);

    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(at_end, done);
    {
        // Non-deterministic: i derives from the loaded rowPtr.
        Reg c = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_colidx, i, 4));
        Reg v = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_vals, i, 4));
        // Non-deterministic gather through the loaded column index.
        Reg xv = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_x, c, 4));
        Reg t = b.mad(DT::F32, v, xv, acc);
        b.assign(DT::F32, acc, t);
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);

    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_y, row, 4), acc);
    b.place(out);
    b.exit();
    return b.build();
}

std::vector<float>
cpuSpmv(const CsrMatrix &m, const std::vector<float> &x)
{
    std::vector<float> y(m.rows, 0.0f);
    for (uint32_t r = 0; r < m.rows; ++r) {
        float acc = 0.0f;
        for (uint32_t i = m.rowPtr[r]; i < m.rowPtr[r + 1]; ++i) {
            const double prod = static_cast<double>(m.values[i]) *
                                x[m.colIdx[i]];
            acc = static_cast<float>(prod + acc);
        }
        y[r] = acc;
    }
    return y;
}

bool
runSpmv(sim::Gpu &gpu)
{
    const CsrMatrix m = makeCsrMatrix(kRows, kCols, kAvgNnz, 0x5b37);
    const auto x = makeRandomMatrix(kCols, 1, -1.0f, 1.0f, 0x5b38);

    const uint64_t d_rowptr = upload(gpu, m.rowPtr);
    const uint64_t d_colidx = upload(gpu, m.colIdx);
    const uint64_t d_vals = upload(gpu, m.values);
    const uint64_t d_x = upload(gpu, x);
    const uint64_t d_y = allocZeroed<float>(gpu, kRows);

    const sim::Dim3 grid{(kRows + kCtaSize - 1) / kCtaSize, 1, 1};
    const sim::Dim3 cta{kCtaSize, 1, 1};
    gpu.launch(buildSpmvKernel(), grid, cta,
               {d_rowptr, d_colidx, d_vals, d_x, d_y, kRows});

    const auto y = download<float>(gpu, d_y, kRows);
    return nearlyEqual(y, cpuSpmv(m, x));
}

} // namespace

Workload
makeSpmv()
{
    Workload w;
    w.name = "spmv";
    w.category = Category::Linear;
    w.description =
        "sparse matrix dense vector multiplication over CSR (Parboil spmv)";
    w.run = runSpmv;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildSpmvKernel()};
    };
    return w;
}

} // namespace gcl::workloads
