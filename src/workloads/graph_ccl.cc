/**
 * @file
 * ccl: connected-component labeling by iterative min-label propagation on a
 * block-diagonal multi-component graph.
 *
 * Each node repeatedly adopts the minimum label among its neighbors
 * (non-deterministic gathers) until a fixpoint; the stable labels equal
 * the minimum node id of each component.
 */

#include <algorithm>

#include "common.hh"
#include "datasets/graph.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kComponents = 10;   //!< disconnected sub-graphs
constexpr uint32_t kNodesPerComp = 2048;
constexpr uint32_t kAvgDegree = 4;
constexpr uint32_t kCtaSize = 256;     //!< Table I: ccl uses 256 threads/CTA

/** Params: rowPtr, col, label, changed, n. */
ptx::Kernel
buildCclPropagateKernel()
{
    KernelBuilder b("ccl_propagate", 5);

    Reg tid = b.globalTidX();
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg p_label = b.ldParam(2);
    Reg p_changed = b.ldParam(3);
    Reg n = b.ldParam(4);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    Reg label_addr = b.elemAddr(p_label, tid, 4);
    Reg my_label = b.ld(MemSpace::Global, DT::U32, label_addr);
    Reg best = b.mov(DT::U32, my_label);

    Reg row_addr = b.elemAddr(p_row, tid, 4);
    Reg start = b.ld(MemSpace::Global, DT::U32, row_addr);
    Reg end = b.ld(MemSpace::Global, DT::U32, row_addr, 4);

    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(at_end, done);
    {
        Reg nbr = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));
        // Non-deterministic gather of the neighbor's label.
        Reg nbr_label =
            b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_label, nbr, 4));
        b.assign(DT::U32, best, b.min_(DT::U32, best, nbr_label));
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);

    Label stable = b.newLabel();
    Reg no_change = b.setp(CmpOp::Ge, DT::U32, best, my_label);
    b.braIf(no_change, stable);
    {
        b.st(MemSpace::Global, DT::U32, label_addr, best);
        b.st(MemSpace::Global, DT::U32, p_changed, 1);
    }
    b.place(stable);
    b.place(out);
    b.exit();
    return b.build();
}

/** Build a block-diagonal graph of kComponents independent sub-graphs. */
Graph
makeComponentGraph()
{
    Graph g;
    g.numNodes = kComponents * kNodesPerComp;
    g.rowPtr.assign(g.numNodes + 1, 0);

    std::vector<Graph> parts;
    parts.reserve(kComponents);
    for (uint32_t c = 0; c < kComponents; ++c)
        parts.push_back(makeRmatGraph(kNodesPerComp, kAvgDegree, true, 1,
                                      0xcc1000 + c, 0.25));

    for (uint32_t c = 0; c < kComponents; ++c) {
        const Graph &part = parts[c];
        const uint32_t base = c * kNodesPerComp;
        for (uint32_t v = 0; v < kNodesPerComp; ++v) {
            g.rowPtr[base + v + 1] =
                g.rowPtr[base + v] + part.degree(v);
            for (uint32_t e = part.rowPtr[v]; e < part.rowPtr[v + 1]; ++e) {
                g.col.push_back(base + part.col[e]);
                g.weight.push_back(part.weight[e]);
            }
        }
    }
    return g;
}

std::vector<uint32_t>
cpuComponents(const Graph &g)
{
    // Min node id per component via repeated relaxation (union-find-free
    // reference that matches what label propagation converges to).
    std::vector<uint32_t> label(g.numNodes);
    for (uint32_t v = 0; v < g.numNodes; ++v)
        label[v] = v;
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t v = 0; v < g.numNodes; ++v) {
            for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
                const uint32_t u = g.col[e];
                const uint32_t m = std::min(label[v], label[u]);
                if (m < label[v]) {
                    label[v] = m;
                    changed = true;
                }
                if (m < label[u]) {
                    label[u] = m;
                    changed = true;
                }
            }
        }
    }
    return label;
}

bool
runCcl(sim::Gpu &gpu)
{
    const Graph g = makeComponentGraph();
    const uint32_t n = g.numNodes;

    std::vector<uint32_t> label(n);
    for (uint32_t v = 0; v < n; ++v)
        label[v] = v;

    const uint64_t d_row = upload(gpu, g.rowPtr);
    const uint64_t d_col = upload(gpu, g.col);
    const uint64_t d_label = upload(gpu, label);
    const uint64_t d_changed = allocZeroed<uint32_t>(gpu, 1);

    const ptx::Kernel propagate = buildCclPropagateKernel();
    const sim::Dim3 grid{(n + kCtaSize - 1) / kCtaSize, 1, 1};
    const sim::Dim3 cta{kCtaSize, 1, 1};

    for (uint32_t iter = 0; iter < n; ++iter) {
        const uint32_t zero = 0;
        gpu.memcpyToDevice(d_changed, &zero, sizeof(zero));
        gpu.launch(propagate, grid, cta,
                   {d_row, d_col, d_label, d_changed, n});
        uint32_t changed = 0;
        gpu.memcpyToHost(&changed, d_changed, sizeof(changed));
        if (!changed)
            break;
    }

    const auto device_label = download<uint32_t>(gpu, d_label, n);
    return device_label == cpuComponents(g);
}

} // namespace

Workload
makeCcl()
{
    Workload w;
    w.name = "ccl";
    w.category = Category::Graph;
    w.description = "connected-component labeling by label propagation";
    w.run = runCcl;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildCclPropagateKernel()};
    };
    return w;
}

} // namespace gcl::workloads
