/**
 * @file
 * Helpers shared by the workload implementations: typed upload/download,
 * float comparison, and the IR type aliases the kernels use.
 */

#ifndef GCL_WORKLOADS_COMMON_HH
#define GCL_WORKLOADS_COMMON_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "ptx/builder.hh"
#include "sim/gpu.hh"

namespace gcl::workloads
{

using DT = ptx::DataType;
using ptx::immF32;
using ptx::immF64;
using ptx::CmpOp;
using ptx::KernelBuilder;
using ptx::Label;
using ptx::MemSpace;
using ptx::Opcode;
using ptx::Reg;
using ptx::SpecialReg;
using ptx::Src;

/** Allocate and upload a host vector; returns the device address. */
template <typename T>
uint64_t
upload(sim::Gpu &gpu, const std::vector<T> &host)
{
    const uint64_t addr = gpu.deviceMalloc(host.size() * sizeof(T));
    gpu.memcpyToDevice(addr, host.data(), host.size() * sizeof(T));
    return addr;
}

/** Allocate zero-initialized device memory for @p count elements. */
template <typename T>
uint64_t
allocZeroed(sim::Gpu &gpu, size_t count)
{
    const std::vector<T> zeros(count, T{});
    return upload(gpu, zeros);
}

/** Download @p count elements from device address @p addr. */
template <typename T>
std::vector<T>
download(sim::Gpu &gpu, uint64_t addr, size_t count)
{
    std::vector<T> host(count);
    gpu.memcpyToHost(host.data(), addr, count * sizeof(T));
    return host;
}

/** Elementwise relative/absolute float comparison. */
inline bool
nearlyEqual(const std::vector<float> &a, const std::vector<float> &b,
            float tolerance = 1e-3f)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const float scale =
            std::max({1.0f, std::fabs(a[i]), std::fabs(b[i])});
        if (std::fabs(a[i] - b[i]) > tolerance * scale) {
            if (std::getenv("GCL_DEBUG_COMPARE"))
                std::fprintf(stderr,
                             "nearlyEqual mismatch at %zu: %g vs %g\n", i,
                             static_cast<double>(a[i]),
                             static_cast<double>(b[i]));
            return false;
        }
    }
    return true;
}

/** Reinterpret a float's bits as the uint32 the IR stores in memory. */
inline uint32_t
floatBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

} // namespace gcl::workloads

#endif // GCL_WORKLOADS_COMMON_HH
