/**
 * @file
 * lu (PolyBench): in-place LU decomposition without pivoting.
 *
 * One scale + one update kernel per elimination step; the step index k is a
 * kernel parameter, so every address stays a linear function of
 * parameterized data — all loads deterministic.
 */

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kN = 96;
constexpr uint32_t kTile = 16;

/** A[i][k] /= A[k][k] for i > k. Params: A, n, k. */
ptx::Kernel
buildLuScaleKernel()
{
    KernelBuilder b("lu_scale", 3);

    Reg gtid = b.globalTidX();
    Reg p_a = b.ldParam(0);
    Reg n = b.ldParam(1);
    Reg k = b.ldParam(2);

    // i = k + 1 + gtid
    Reg i = b.add(DT::U32, b.add(DT::U32, k, 1), gtid);
    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, i, n);
    b.braIf(oob, out);

    Reg pivot_idx = b.mad(DT::U32, k, n, k);
    Reg pivot = b.ld(MemSpace::Global, DT::F32,
                     b.elemAddr(p_a, pivot_idx, 4));
    Reg idx = b.mad(DT::U32, i, n, k);
    Reg addr = b.elemAddr(p_a, idx, 4);
    Reg v = b.ld(MemSpace::Global, DT::F32, addr);
    Reg scaled = b.div(DT::F32, v, pivot);
    b.st(MemSpace::Global, DT::F32, addr, scaled);

    b.place(out);
    b.exit();
    return b.build();
}

/** A[i][j] -= A[i][k] * A[k][j] for i,j > k. Params: A, n, k. */
ptx::Kernel
buildLuUpdateKernel()
{
    KernelBuilder b("lu_update", 3);

    Reg gx = b.mad(DT::U32, SpecialReg::CtaIdX, SpecialReg::NTidX,
                   SpecialReg::TidX);
    Reg gy = b.mad(DT::U32, SpecialReg::CtaIdY, SpecialReg::NTidY,
                   SpecialReg::TidY);
    Reg p_a = b.ldParam(0);
    Reg n = b.ldParam(1);
    Reg k = b.ldParam(2);

    Reg j = b.add(DT::U32, b.add(DT::U32, k, 1), gx);
    Reg i = b.add(DT::U32, b.add(DT::U32, k, 1), gy);

    Label out = b.newLabel();
    Reg oob_j = b.setp(CmpOp::Ge, DT::U32, j, n);
    b.braIf(oob_j, out);
    Reg oob_i = b.setp(CmpOp::Ge, DT::U32, i, n);
    b.braIf(oob_i, out);

    Reg ik = b.ld(MemSpace::Global, DT::F32,
                  b.elemAddr(p_a, b.mad(DT::U32, i, n, k), 4));
    Reg kj = b.ld(MemSpace::Global, DT::F32,
                  b.elemAddr(p_a, b.mad(DT::U32, k, n, j), 4));
    Reg addr = b.elemAddr(p_a, b.mad(DT::U32, i, n, j), 4);
    Reg v = b.ld(MemSpace::Global, DT::F32, addr);
    Reg prod = b.mul(DT::F32, ik, kj);
    b.st(MemSpace::Global, DT::F32, addr, b.sub(DT::F32, v, prod));

    b.place(out);
    b.exit();
    return b.build();
}

std::vector<float>
cpuLu(std::vector<float> a, uint32_t n)
{
    for (uint32_t k = 0; k + 1 < n; ++k) {
        const float pivot = a[static_cast<size_t>(k) * n + k];
        for (uint32_t i = k + 1; i < n; ++i)
            a[static_cast<size_t>(i) * n + k] = static_cast<float>(
                static_cast<double>(a[static_cast<size_t>(i) * n + k]) /
                pivot);
        for (uint32_t i = k + 1; i < n; ++i) {
            for (uint32_t j = k + 1; j < n; ++j) {
                const double prod =
                    static_cast<double>(a[static_cast<size_t>(i) * n + k]) *
                    a[static_cast<size_t>(k) * n + j];
                a[static_cast<size_t>(i) * n + j] = static_cast<float>(
                    static_cast<double>(a[static_cast<size_t>(i) * n + j]) -
                    prod);
            }
        }
    }
    return a;
}

bool
runLu(sim::Gpu &gpu)
{
    const auto a = makeDominantMatrix(kN, 0x11u);
    const uint64_t d_a = upload(gpu, a);

    const ptx::Kernel scale = buildLuScaleKernel();
    const ptx::Kernel update = buildLuUpdateKernel();

    for (uint32_t k = 0; k + 1 < kN; ++k) {
        const uint32_t remaining = kN - k - 1;
        const sim::Dim3 scale_grid{(remaining + 127) / 128, 1, 1};
        gpu.launch(scale, scale_grid, sim::Dim3{128, 1, 1}, {d_a, kN, k});

        const uint32_t tiles = (remaining + kTile - 1) / kTile;
        gpu.launch(update, sim::Dim3{tiles, tiles, 1},
                   sim::Dim3{kTile, kTile, 1}, {d_a, kN, k});
    }

    const auto result = download<float>(gpu, d_a, size_t{kN} * kN);
    return nearlyEqual(result, cpuLu(a, kN), 5e-3f);
}

} // namespace

Workload
makeLu()
{
    Workload w;
    w.name = "lu";
    w.category = Category::Linear;
    w.description = "in-place LU decomposition (PolyBench lu)";
    w.run = runLu;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildLuScaleKernel(),
                                        buildLuUpdateKernel()};
    };
    return w;
}

} // namespace gcl::workloads
