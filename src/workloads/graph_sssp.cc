/**
 * @file
 * sssp (LonestarGPU): single-source shortest paths via topology-driven
 * Bellman-Ford relaxation with atomicMin, iterated until no distance
 * changes.
 *
 * The neighbor/weight/distance loads of the inner loop are all
 * non-deterministic; the relaxation itself is an atomic, exercising the
 * partition-side atomic path.
 */

#include <limits>
#include <queue>

#include "common.hh"
#include "datasets/graph.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kNodes = 8192;
constexpr uint32_t kAvgDegree = 8;
constexpr uint32_t kMaxWeight = 15;
constexpr uint32_t kCtaSize = 512;   //!< Table I: sssp uses 512 threads/CTA
constexpr uint32_t kInf = 0x3fffffff;

/** Params: rowPtr, col, weight, dist, changed, n. */
ptx::Kernel
buildSsspRelaxKernel()
{
    KernelBuilder b("sssp_relax", 6);

    Reg tid = b.globalTidX();
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg p_w = b.ldParam(2);
    Reg p_dist = b.ldParam(3);
    Reg p_changed = b.ldParam(4);
    Reg n = b.ldParam(5);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    // My current distance (deterministic load); skip unreached nodes.
    Reg my_dist = b.ld(MemSpace::Global, DT::U32,
                       b.elemAddr(p_dist, tid, 4));
    Reg unreached = b.setp(CmpOp::Ge, DT::U32, my_dist, kInf);
    b.braIf(unreached, out);

    Reg row_addr = b.elemAddr(p_row, tid, 4);
    Reg start = b.ld(MemSpace::Global, DT::U32, row_addr);
    Reg end = b.ld(MemSpace::Global, DT::U32, row_addr, 4);

    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(at_end, done);
    {
        // Non-deterministic loads: i derives from the loaded rowPtr.
        Reg nbr = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));
        Reg w = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_w, i, 4));
        Reg alt = b.add(DT::U32, my_dist, w);

        // Non-deterministic gather of the neighbor's distance.
        Reg nbr_addr = b.elemAddr(p_dist, nbr, 4);
        Reg nbr_dist = b.ld(MemSpace::Global, DT::U32, nbr_addr);
        Label no_improve = b.newLabel();
        Reg worse = b.setp(CmpOp::Ge, DT::U32, alt, nbr_dist);
        b.braIf(worse, no_improve);
        {
            (void)b.atom(ptx::AtomOp::Min, DT::U32, nbr_addr, alt);
            b.st(MemSpace::Global, DT::U32, p_changed, 1);
        }
        b.place(no_improve);
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);
    b.place(out);
    b.exit();
    return b.build();
}

std::vector<uint32_t>
cpuDijkstra(const Graph &g, uint32_t source)
{
    std::vector<uint32_t> dist(g.numNodes, kInf);
    using Item = std::pair<uint32_t, uint32_t>;  // (dist, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    dist[source] = 0;
    pq.emplace(0, source);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue;
        for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const uint32_t u = g.col[e];
            const uint32_t alt = d + g.weight[e];
            if (alt < dist[u]) {
                dist[u] = alt;
                pq.emplace(alt, u);
            }
        }
    }
    return dist;
}

bool
runSssp(sim::Gpu &gpu)
{
    const Graph g = makeRmatGraph(kNodes, kAvgDegree, false, kMaxWeight,
                                  0x55b);
    const uint32_t n = g.numNodes;
    const uint32_t source = 0;

    std::vector<uint32_t> dist(n, kInf);
    dist[source] = 0;

    const uint64_t d_row = upload(gpu, g.rowPtr);
    const uint64_t d_col = upload(gpu, g.col);
    const uint64_t d_w = upload(gpu, g.weight);
    const uint64_t d_dist = upload(gpu, dist);
    const uint64_t d_changed = allocZeroed<uint32_t>(gpu, 1);

    const ptx::Kernel relax = buildSsspRelaxKernel();
    const sim::Dim3 grid{(n + kCtaSize - 1) / kCtaSize, 1, 1};
    const sim::Dim3 cta{kCtaSize, 1, 1};

    for (uint32_t iter = 0; iter < n; ++iter) {
        const uint32_t zero = 0;
        gpu.memcpyToDevice(d_changed, &zero, sizeof(zero));
        gpu.launch(relax, grid, cta,
                   {d_row, d_col, d_w, d_dist, d_changed, n});
        uint32_t changed = 0;
        gpu.memcpyToHost(&changed, d_changed, sizeof(changed));
        if (!changed)
            break;
    }

    const auto device_dist = download<uint32_t>(gpu, d_dist, n);
    return device_dist == cpuDijkstra(g, source);
}

} // namespace

Workload
makeSssp()
{
    Workload w;
    w.name = "sssp";
    w.category = Category::Graph;
    w.description =
        "single-source shortest paths, Bellman-Ford (LonestarGPU sssp)";
    w.run = runSssp;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildSsspRelaxKernel()};
    };
    return w;
}

} // namespace gcl::workloads
