/**
 * @file
 * mis: maximal independent set via Luby's algorithm with random priorities.
 *
 * Each round, an undecided node joins the set when its priority is a local
 * maximum among undecided neighbors (non-deterministic state/priority
 * gathers); neighbors of joined nodes drop out. Verified for independence
 * and maximality on the CPU.
 */

#include "common.hh"
#include "util/rng.hh"
#include "datasets/graph.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kNodes = 16384;
constexpr uint32_t kAvgDegree = 4;
constexpr uint32_t kCtaSize = 256;

constexpr uint32_t kUndecided = 0;
constexpr uint32_t kIn = 1;
constexpr uint32_t kOut = 2;

/**
 * Select round: undecided local-priority maxima join the set.
 * Params: rowPtr, col, prio, state, changed, n.
 */
ptx::Kernel
buildMisSelectKernel()
{
    KernelBuilder b("mis_select", 6);

    Reg tid = b.globalTidX();
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg p_prio = b.ldParam(2);
    Reg p_state = b.ldParam(3);
    Reg p_changed = b.ldParam(4);
    Reg n = b.ldParam(5);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    Reg state_addr = b.elemAddr(p_state, tid, 1);
    Reg my_state = b.ld(MemSpace::Global, DT::U32, state_addr, 0, 1);
    Reg decided = b.setp(CmpOp::Ne, DT::U32, my_state, kUndecided);
    b.braIf(decided, out);

    Reg my_prio = b.ld(MemSpace::Global, DT::U32,
                       b.elemAddr(p_prio, tid, 4));

    Reg row_addr = b.elemAddr(p_row, tid, 4);
    Reg start = b.ld(MemSpace::Global, DT::U32, row_addr);
    Reg end = b.ld(MemSpace::Global, DT::U32, row_addr, 4);

    // is_max stays 1 unless some undecided neighbor outranks me.
    Reg is_max = b.mov(DT::U32, 1);
    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(at_end, done);
    {
        Reg nbr = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));
        Reg nbr_state = b.ld(MemSpace::Global, DT::U32,
                             b.elemAddr(p_state, nbr, 1), 0, 1);

        // A neighbor already in the set disqualifies me outright — this
        // also closes the same-round race where a just-joined neighbor
        // would otherwise read as merely "decided".
        Label not_in = b.newLabel();
        Reg nbr_in = b.setp(CmpOp::Eq, DT::U32, nbr_state, kIn);
        b.braIfNot(nbr_in, not_in);
        {
            b.assign(DT::U32, is_max, 0);
            b.bra(done);
        }
        b.place(not_in);

        Label next = b.newLabel();
        Reg nbr_decided = b.setp(CmpOp::Ne, DT::U32, nbr_state, kUndecided);
        b.braIf(nbr_decided, next);
        {
            Reg nbr_prio = b.ld(MemSpace::Global, DT::U32,
                                b.elemAddr(p_prio, nbr, 4));
            Reg outranked = b.setp(CmpOp::Gt, DT::U32, nbr_prio, my_prio);
            Reg keep = b.selp(DT::U32, 0, is_max, outranked);
            b.assign(DT::U32, is_max, keep);
        }
        b.place(next);
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);

    Label not_max = b.newLabel();
    Reg lost = b.setp(CmpOp::Eq, DT::U32, is_max, 0);
    b.braIf(lost, not_max);
    {
        b.st(MemSpace::Global, DT::U32, state_addr, kIn, 0, 1);
        b.st(MemSpace::Global, DT::U32, p_changed, 1);
    }
    b.place(not_max);
    b.place(out);
    b.exit();
    return b.build();
}

/**
 * Drop-out round: undecided neighbors of set members leave.
 * Params: rowPtr, col, state, changed, n.
 */
ptx::Kernel
buildMisDropKernel()
{
    KernelBuilder b("mis_drop", 5);

    Reg tid = b.globalTidX();
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg p_state = b.ldParam(2);
    Reg p_changed = b.ldParam(3);
    Reg n = b.ldParam(4);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);

    Reg state_addr = b.elemAddr(p_state, tid, 1);
    Reg my_state = b.ld(MemSpace::Global, DT::U32, state_addr, 0, 1);
    Reg decided = b.setp(CmpOp::Ne, DT::U32, my_state, kUndecided);
    b.braIf(decided, out);

    Reg row_addr = b.elemAddr(p_row, tid, 4);
    Reg start = b.ld(MemSpace::Global, DT::U32, row_addr);
    Reg end = b.ld(MemSpace::Global, DT::U32, row_addr, 4);

    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg at_end = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(at_end, done);
    {
        Reg nbr = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));
        Reg nbr_state = b.ld(MemSpace::Global, DT::U32,
                             b.elemAddr(p_state, nbr, 1), 0, 1);
        Label next = b.newLabel();
        Reg nbr_out = b.setp(CmpOp::Ne, DT::U32, nbr_state, kIn);
        b.braIf(nbr_out, next);
        {
            b.st(MemSpace::Global, DT::U32, state_addr, kOut, 0, 1);
            b.st(MemSpace::Global, DT::U32, p_changed, 1);
            b.bra(done);
        }
        b.place(next);
        b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    }
    b.bra(loop);
    b.place(done);
    b.place(out);
    b.exit();
    return b.build();
}

bool
runMis(sim::Gpu &gpu)
{
    const Graph g = makeRmatGraph(kNodes, kAvgDegree, true, 1, 0x315, 0.25);
    const uint32_t n = g.numNodes;

    // Distinct priorities: a pseudorandom permutation of 0..n-1.
    Rng rng(0x316);
    std::vector<uint32_t> prio(n);
    for (uint32_t v = 0; v < n; ++v)
        prio[v] = v;
    for (uint32_t v = n; v > 1; --v) {
        const auto j = static_cast<uint32_t>(rng.nextBounded(v));
        std::swap(prio[v - 1], prio[j]);
    }

    const uint64_t d_row = upload(gpu, g.rowPtr);
    const uint64_t d_col = upload(gpu, g.col);
    const uint64_t d_prio = upload(gpu, prio);
    const uint64_t d_state = allocZeroed<uint8_t>(gpu, n);
    const uint64_t d_changed = allocZeroed<uint32_t>(gpu, 1);

    const ptx::Kernel select = buildMisSelectKernel();
    const ptx::Kernel drop = buildMisDropKernel();
    const sim::Dim3 grid{(n + kCtaSize - 1) / kCtaSize, 1, 1};
    const sim::Dim3 cta{kCtaSize, 1, 1};

    for (uint32_t iter = 0; iter < n; ++iter) {
        const uint32_t zero = 0;
        gpu.memcpyToDevice(d_changed, &zero, sizeof(zero));
        gpu.launch(select, grid, cta,
                   {d_row, d_col, d_prio, d_state, d_changed, n});
        gpu.launch(drop, grid, cta,
                   {d_row, d_col, d_state, d_changed, n});
        uint32_t changed = 0;
        gpu.memcpyToHost(&changed, d_changed, sizeof(changed));
        if (!changed)
            break;
    }

    // Verify: no undecided nodes, the set is independent, and it is
    // maximal (every out-node has an in-neighbor).
    const auto state = download<uint8_t>(gpu, d_state, n);
    for (uint32_t v = 0; v < n; ++v) {
        if (state[v] == kUndecided)
            return false;
        bool has_in_neighbor = false;
        for (uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const uint32_t u = g.col[e];
            if (state[v] == kIn && state[u] == kIn)
                return false;  // not independent
            if (state[u] == kIn)
                has_in_neighbor = true;
        }
        if (state[v] == kOut && !has_in_neighbor)
            return false;  // not maximal
    }
    return true;
}

} // namespace

Workload
makeMis()
{
    Workload w;
    w.name = "mis";
    w.category = Category::Graph;
    w.description = "maximal independent set, Luby's algorithm";
    w.run = runMis;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildMisSelectKernel(),
                                        buildMisDropKernel()};
    };
    return w;
}

} // namespace gcl::workloads
