/**
 * @file
 * srad (Rodinia): speckle-reducing anisotropic diffusion, the two-kernel
 * stencil pipeline (coefficient pass + update pass), iterated.
 *
 * All neighbor indices are computed with clamped index arithmetic, so every
 * global load is deterministic; the stencil's 4-point neighborhoods give
 * high inter-CTA sharing at distance 1 (Fig 12b).
 */

#include <algorithm>
#include <cmath>

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kDim = 192;
constexpr uint32_t kTile = 16;
constexpr uint32_t kIters = 2;
constexpr float kQ0Sq = 0.05f;
constexpr float kLambda = 0.5f;

/**
 * Pass 1: diffusion coefficient. Params: img, coef, dim.
 * c = 1 / (1 + (q^2 - q0^2) / (q0^2 (1 + q0^2))) with q^2 from the
 * normalized gradient/laplacian, clamped to [0, 1].
 */
ptx::Kernel
buildSradCoefKernel()
{
    KernelBuilder b("srad_coef", 3);

    Reg x = b.mad(DT::U32, SpecialReg::CtaIdX, SpecialReg::NTidX,
                  SpecialReg::TidX);
    Reg y = b.mad(DT::U32, SpecialReg::CtaIdY, SpecialReg::NTidY,
                  SpecialReg::TidY);
    Reg p_img = b.ldParam(0);
    Reg p_coef = b.ldParam(1);
    Reg dim = b.ldParam(2);

    Label out = b.newLabel();
    Reg oob_x = b.setp(CmpOp::Ge, DT::U32, x, dim);
    b.braIf(oob_x, out);
    Reg oob_y = b.setp(CmpOp::Ge, DT::U32, y, dim);
    b.braIf(oob_y, out);

    Reg last = b.sub(DT::U32, dim, 1);
    Reg xe = b.min_(DT::U32, b.add(DT::U32, x, 1), last);
    Reg xw = b.selp(DT::U32, b.sub(DT::U32, x, 1), 0,
                    b.setp(CmpOp::Gt, DT::U32, x, 0));
    Reg ys = b.min_(DT::U32, b.add(DT::U32, y, 1), last);
    Reg yn = b.selp(DT::U32, b.sub(DT::U32, y, 1), 0,
                    b.setp(CmpOp::Gt, DT::U32, y, 0));

    auto pixel = b.ld(MemSpace::Global, DT::F32,
                      b.elemAddr(p_img, b.mad(DT::U32, y, dim, x), 4));
    auto north = b.ld(MemSpace::Global, DT::F32,
                      b.elemAddr(p_img, b.mad(DT::U32, yn, dim, x), 4));
    auto south = b.ld(MemSpace::Global, DT::F32,
                      b.elemAddr(p_img, b.mad(DT::U32, ys, dim, x), 4));
    auto east = b.ld(MemSpace::Global, DT::F32,
                     b.elemAddr(p_img, b.mad(DT::U32, y, dim, xe), 4));
    auto west = b.ld(MemSpace::Global, DT::F32,
                     b.elemAddr(p_img, b.mad(DT::U32, y, dim, xw), 4));

    Reg dn = b.sub(DT::F32, north, pixel);
    Reg ds = b.sub(DT::F32, south, pixel);
    Reg de = b.sub(DT::F32, east, pixel);
    Reg dw = b.sub(DT::F32, west, pixel);

    Reg g2_num =
        b.add(DT::F32, b.add(DT::F32, b.mul(DT::F32, dn, dn),
                             b.mul(DT::F32, ds, ds)),
              b.add(DT::F32, b.mul(DT::F32, de, de),
                    b.mul(DT::F32, dw, dw)));
    Reg pix2 = b.mul(DT::F32, pixel, pixel);
    Reg g2 = b.div(DT::F32, g2_num, pix2);
    Reg lap = b.div(DT::F32,
                    b.add(DT::F32, b.add(DT::F32, dn, ds),
                          b.add(DT::F32, de, dw)),
                    pixel);
    // q^2 = 0.5*g2 - (1/16)*lap^2, normalized by (1 + 0.25*lap)^2.
    Reg num = b.sub(DT::F32, b.mul(DT::F32, g2, immF32(0.5f)),
                    b.mul(DT::F32, b.mul(DT::F32, lap, lap),
                          immF32(0.0625f)));
    Reg den_base = b.add(DT::F32, immF32(1.0f),
                         b.mul(DT::F32, lap, immF32(0.25f)));
    Reg den = b.mul(DT::F32, den_base, den_base);
    Reg qsq = b.div(DT::F32, num, den);

    Reg cden = b.add(DT::F32, immF32(1.0f),
                     b.div(DT::F32, b.sub(DT::F32, qsq, immF32(kQ0Sq)),
                           immF32(kQ0Sq * (1.0f + kQ0Sq))));
    Reg c = b.div(DT::F32, immF32(1.0f), cden);
    c = b.max_(DT::F32, c, immF32(0.0f));
    c = b.min_(DT::F32, c, immF32(1.0f));

    b.st(MemSpace::Global, DT::F32,
         b.elemAddr(p_coef, b.mad(DT::U32, y, dim, x), 4), c);
    b.place(out);
    b.exit();
    return b.build();
}

/**
 * Pass 2: diffusion update. Params: img, coef, out, dim.
 * out = img + (lambda/4) * (cS*dS + cE*dE + cN*dN + cW*dW) using the
 * clamped-neighbor coefficients from pass 1.
 */
ptx::Kernel
buildSradUpdateKernel()
{
    KernelBuilder b("srad_update", 4);

    Reg x = b.mad(DT::U32, SpecialReg::CtaIdX, SpecialReg::NTidX,
                  SpecialReg::TidX);
    Reg y = b.mad(DT::U32, SpecialReg::CtaIdY, SpecialReg::NTidY,
                  SpecialReg::TidY);
    Reg p_img = b.ldParam(0);
    Reg p_coef = b.ldParam(1);
    Reg p_out = b.ldParam(2);
    Reg dim = b.ldParam(3);

    Label out_lbl = b.newLabel();
    Reg oob_x = b.setp(CmpOp::Ge, DT::U32, x, dim);
    b.braIf(oob_x, out_lbl);
    Reg oob_y = b.setp(CmpOp::Ge, DT::U32, y, dim);
    b.braIf(oob_y, out_lbl);

    Reg last = b.sub(DT::U32, dim, 1);
    Reg xe = b.min_(DT::U32, b.add(DT::U32, x, 1), last);
    Reg xw = b.selp(DT::U32, b.sub(DT::U32, x, 1), 0,
                    b.setp(CmpOp::Gt, DT::U32, x, 0));
    Reg ys = b.min_(DT::U32, b.add(DT::U32, y, 1), last);
    Reg yn = b.selp(DT::U32, b.sub(DT::U32, y, 1), 0,
                    b.setp(CmpOp::Gt, DT::U32, y, 0));

    auto img_at = [&](Reg yy, Reg xx) {
        return b.ld(MemSpace::Global, DT::F32,
                    b.elemAddr(p_img, b.mad(DT::U32, yy, dim, xx), 4));
    };
    auto coef_at = [&](Reg yy, Reg xx) {
        return b.ld(MemSpace::Global, DT::F32,
                    b.elemAddr(p_coef, b.mad(DT::U32, yy, dim, xx), 4));
    };

    Reg pixel = img_at(y, x);
    Reg dn = b.sub(DT::F32, img_at(yn, x), pixel);
    Reg ds = b.sub(DT::F32, img_at(ys, x), pixel);
    Reg de = b.sub(DT::F32, img_at(y, xe), pixel);
    Reg dw = b.sub(DT::F32, img_at(y, xw), pixel);

    Reg div = b.add(
        DT::F32,
        b.add(DT::F32, b.mul(DT::F32, coef_at(yn, x), dn),
              b.mul(DT::F32, coef_at(ys, x), ds)),
        b.add(DT::F32, b.mul(DT::F32, coef_at(y, xe), de),
              b.mul(DT::F32, coef_at(y, xw), dw)));

    Reg updated = b.mad(DT::F32, div, immF32(kLambda * 0.25f), pixel);
    b.st(MemSpace::Global, DT::F32,
         b.elemAddr(p_out, b.mad(DT::U32, y, dim, x), 4), updated);

    b.place(out_lbl);
    b.exit();
    return b.build();
}

void
cpuSradIteration(const std::vector<float> &img, std::vector<float> &next,
                 uint32_t dim)
{
    std::vector<float> coef(img.size(), 0.0f);
    auto at = [&](const std::vector<float> &v, uint32_t y, uint32_t x) {
        return v[static_cast<size_t>(y) * dim + x];
    };
    for (uint32_t y = 0; y < dim; ++y) {
        for (uint32_t x = 0; x < dim; ++x) {
            const uint32_t yn = y > 0 ? y - 1 : 0;
            const uint32_t ys = std::min(y + 1, dim - 1);
            const uint32_t xw = x > 0 ? x - 1 : 0;
            const uint32_t xe = std::min(x + 1, dim - 1);
            const float pixel = at(img, y, x);
            const float dn = at(img, yn, x) - pixel;
            const float ds = at(img, ys, x) - pixel;
            const float de = at(img, y, xe) - pixel;
            const float dw = at(img, y, xw) - pixel;
            const float g2 =
                (dn * dn + ds * ds + de * de + dw * dw) / (pixel * pixel);
            const float lap = (dn + ds + de + dw) / pixel;
            const float num = 0.5f * g2 - 0.0625f * (lap * lap);
            const float den_base = 1.0f + 0.25f * lap;
            const float qsq = num / (den_base * den_base);
            float c = 1.0f /
                (1.0f + (qsq - kQ0Sq) / (kQ0Sq * (1.0f + kQ0Sq)));
            c = std::clamp(c, 0.0f, 1.0f);
            coef[static_cast<size_t>(y) * dim + x] = c;
        }
    }
    for (uint32_t y = 0; y < dim; ++y) {
        for (uint32_t x = 0; x < dim; ++x) {
            const uint32_t yn = y > 0 ? y - 1 : 0;
            const uint32_t ys = std::min(y + 1, dim - 1);
            const uint32_t xw = x > 0 ? x - 1 : 0;
            const uint32_t xe = std::min(x + 1, dim - 1);
            const float pixel = at(img, y, x);
            const float div = at(coef, yn, x) * (at(img, yn, x) - pixel) +
                              at(coef, ys, x) * (at(img, ys, x) - pixel) +
                              at(coef, y, xe) * (at(img, y, xe) - pixel) +
                              at(coef, y, xw) * (at(img, y, xw) - pixel);
            next[static_cast<size_t>(y) * dim + x] =
                pixel + kLambda * 0.25f * div;
        }
    }
}

bool
runSrad(sim::Gpu &gpu)
{
    // Keep pixel values away from zero: the algorithm divides by them.
    auto img = makeImage(kDim, kDim, 0x53ad);
    for (auto &v : img)
        v += 0.5f;

    const uint64_t d_img = upload(gpu, img);
    const uint64_t d_coef = allocZeroed<float>(gpu, img.size());
    const uint64_t d_out = allocZeroed<float>(gpu, img.size());

    const ptx::Kernel coef = buildSradCoefKernel();
    const ptx::Kernel update = buildSradUpdateKernel();
    const sim::Dim3 grid{kDim / kTile, kDim / kTile, 1};
    const sim::Dim3 cta{kTile, kTile, 1};

    uint64_t src = d_img, dst = d_out;
    for (uint32_t it = 0; it < kIters; ++it) {
        gpu.launch(coef, grid, cta, {src, d_coef, kDim});
        gpu.launch(update, grid, cta, {src, d_coef, dst, kDim});
        std::swap(src, dst);
    }

    std::vector<float> ref = img;
    std::vector<float> next(img.size(), 0.0f);
    for (uint32_t it = 0; it < kIters; ++it) {
        cpuSradIteration(ref, next, kDim);
        std::swap(ref, next);
    }

    const auto result = download<float>(gpu, src, img.size());
    return nearlyEqual(result, ref, 5e-3f);
}

} // namespace

Workload
makeSrad()
{
    Workload w;
    w.name = "srad";
    w.category = Category::Image;
    w.description =
        "speckle-reducing anisotropic diffusion stencil (Rodinia srad)";
    w.run = runSrad;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildSradCoefKernel(),
                                        buildSradUpdateKernel()};
    };
    return w;
}

} // namespace gcl::workloads
