/**
 * @file
 * grm (PolyBench gramschmidt): classical Gram-Schmidt QR decomposition.
 *
 * Three kernels per column — a shared-memory tree reduction for the column
 * norm (exercising barriers and the SFU sqrt), a normalization kernel, and
 * a projection/update kernel with one CTA per remaining column.
 */

#include <cmath>

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kN = 48;        //!< rows == cols
constexpr uint32_t kCtaSize = 64;  //!< reduction width (>= kN, power of 2)

/**
 * Emit a shared-memory tree reduction over sdata[0..ntid) into sdata[0].
 * The caller must have stored each thread's partial at sdata[tid*4].
 */
void
emitSmemReduction(KernelBuilder &b, Reg tid)
{
    Reg stride = b.shr(DT::U32, SpecialReg::NTidX, 1);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg finished = b.setp(CmpOp::Eq, DT::U32, stride, 0);
    b.braIf(finished, done);
    {
        Label skip = b.newLabel();
        Reg idle = b.setp(CmpOp::Ge, DT::U32, tid, stride);
        b.braIf(idle, skip);
        {
            Reg my_addr = b.shl(DT::U64, b.cvt(DT::U64, DT::U32, tid), 2);
            Reg peer = b.add(DT::U32, tid, stride);
            Reg peer_addr =
                b.shl(DT::U64, b.cvt(DT::U64, DT::U32, peer), 2);
            Reg mine = b.ld(MemSpace::Shared, DT::F32, my_addr);
            Reg theirs = b.ld(MemSpace::Shared, DT::F32, peer_addr);
            b.st(MemSpace::Shared, DT::F32, my_addr,
                 b.add(DT::F32, mine, theirs));
        }
        b.place(skip);
        b.bar();
        b.assign(DT::U32, stride, b.shr(DT::U32, stride, 1));
    }
    b.bra(loop);
    b.place(done);
}

/**
 * Column norm: r[k*n+k] = sqrt(sum_i a[i*n+k]^2), one CTA.
 * Params: a, r, n, k.
 */
ptx::Kernel
buildGrmNormKernel()
{
    KernelBuilder b("grm_norm", 4, kCtaSize * 4);

    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    Reg p_a = b.ldParam(0);
    Reg p_r = b.ldParam(1);
    Reg n = b.ldParam(2);
    Reg k = b.ldParam(3);

    // Partial = a[tid*n+k]^2 when tid < n else 0.
    Reg partial = b.mov(DT::F32, immF32(0.0f));
    Label no_load = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, no_load);
    {
        Reg v = b.ld(MemSpace::Global, DT::F32,
                     b.elemAddr(p_a, b.mad(DT::U32, tid, n, k), 4));
        b.assign(DT::F32, partial, b.mul(DT::F32, v, v));
    }
    b.place(no_load);

    Reg smem_addr = b.shl(DT::U64, b.cvt(DT::U64, DT::U32, tid), 2);
    b.st(MemSpace::Shared, DT::F32, smem_addr, partial);
    b.bar();
    emitSmemReduction(b, tid);

    Label not_first = b.newLabel();
    Reg rest = b.setp(CmpOp::Ne, DT::U32, tid, 0);
    b.braIf(rest, not_first);
    {
        Reg total = b.ld(MemSpace::Shared, DT::F32, b.mov(DT::U64, 0));
        Reg norm = b.sfu(Opcode::Sqrt, DT::F32, total);
        b.st(MemSpace::Global, DT::F32,
             b.elemAddr(p_r, b.mad(DT::U32, k, n, k), 4), norm);
    }
    b.place(not_first);
    b.exit();
    return b.build();
}

/** q[i*n+k] = a[i*n+k] / r[k*n+k]. Params: a, q, r, n, k. */
ptx::Kernel
buildGrmNormalizeKernel()
{
    KernelBuilder b("grm_normalize", 5);

    Reg i = b.globalTidX();
    Reg p_a = b.ldParam(0);
    Reg p_q = b.ldParam(1);
    Reg p_r = b.ldParam(2);
    Reg n = b.ldParam(3);
    Reg k = b.ldParam(4);

    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, i, n);
    b.braIf(oob, out);

    Reg norm = b.ld(MemSpace::Global, DT::F32,
                    b.elemAddr(p_r, b.mad(DT::U32, k, n, k), 4));
    Reg v = b.ld(MemSpace::Global, DT::F32,
                 b.elemAddr(p_a, b.mad(DT::U32, i, n, k), 4));
    b.st(MemSpace::Global, DT::F32,
         b.elemAddr(p_q, b.mad(DT::U32, i, n, k), 4),
         b.div(DT::F32, v, norm));

    b.place(out);
    b.exit();
    return b.build();
}

/**
 * Projection: one CTA per column j = k+1+ctaid.x. First a shared-memory
 * reduction computes r = q_k . a_j; after a barrier every thread updates
 * a[i*n+j] -= q[i*n+k] * r. Params: a, q, r, n, k.
 */
ptx::Kernel
buildGrmProjectKernel()
{
    KernelBuilder b("grm_project", 5, kCtaSize * 4);

    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    Reg p_a = b.ldParam(0);
    Reg p_q = b.ldParam(1);
    Reg p_r = b.ldParam(2);
    Reg n = b.ldParam(3);
    Reg k = b.ldParam(4);
    Reg j = b.add(DT::U32, b.add(DT::U32, k, 1), SpecialReg::CtaIdX);

    Reg partial = b.mov(DT::F32, immF32(0.0f));
    Label no_load = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, no_load);
    {
        Reg qv = b.ld(MemSpace::Global, DT::F32,
                      b.elemAddr(p_q, b.mad(DT::U32, tid, n, k), 4));
        Reg av = b.ld(MemSpace::Global, DT::F32,
                      b.elemAddr(p_a, b.mad(DT::U32, tid, n, j), 4));
        b.assign(DT::F32, partial, b.mul(DT::F32, qv, av));
    }
    b.place(no_load);

    Reg smem_addr = b.shl(DT::U64, b.cvt(DT::U64, DT::U32, tid), 2);
    b.st(MemSpace::Shared, DT::F32, smem_addr, partial);
    b.bar();
    emitSmemReduction(b, tid);

    // Thread 0 records r[k*n+j].
    Label not_first = b.newLabel();
    Reg rest = b.setp(CmpOp::Ne, DT::U32, tid, 0);
    b.braIf(rest, not_first);
    {
        Reg dot0 = b.ld(MemSpace::Shared, DT::F32, b.mov(DT::U64, 0));
        b.st(MemSpace::Global, DT::F32,
             b.elemAddr(p_r, b.mad(DT::U32, k, n, j), 4), dot0);
    }
    b.place(not_first);
    b.bar();

    Label out = b.newLabel();
    Reg oob2 = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob2, out);
    {
        Reg dot = b.ld(MemSpace::Shared, DT::F32, b.mov(DT::U64, 0));
        Reg qv = b.ld(MemSpace::Global, DT::F32,
                      b.elemAddr(p_q, b.mad(DT::U32, tid, n, k), 4));
        Reg addr = b.elemAddr(p_a, b.mad(DT::U32, tid, n, j), 4);
        Reg av = b.ld(MemSpace::Global, DT::F32, addr);
        b.st(MemSpace::Global, DT::F32, addr,
             b.sub(DT::F32, av, b.mul(DT::F32, qv, dot)));
    }
    b.place(out);
    b.exit();
    return b.build();
}

/** CPU mirror of the kernels' arithmetic (same order, same precision). */
void
cpuGramSchmidt(std::vector<float> a, std::vector<float> &q,
               std::vector<float> &r, uint32_t n)
{
    for (uint32_t k = 0; k < n; ++k) {
        float sum = 0.0f;
        for (uint32_t i = 0; i < n; ++i) {
            const float v = a[static_cast<size_t>(i) * n + k];
            sum += v * v;
        }
        const float norm = std::sqrt(sum);
        r[static_cast<size_t>(k) * n + k] = norm;
        for (uint32_t i = 0; i < n; ++i)
            q[static_cast<size_t>(i) * n + k] =
                a[static_cast<size_t>(i) * n + k] / norm;
        for (uint32_t j = k + 1; j < n; ++j) {
            float dot = 0.0f;
            for (uint32_t i = 0; i < n; ++i)
                dot += q[static_cast<size_t>(i) * n + k] *
                       a[static_cast<size_t>(i) * n + j];
            r[static_cast<size_t>(k) * n + j] = dot;
            for (uint32_t i = 0; i < n; ++i)
                a[static_cast<size_t>(i) * n + j] -=
                    q[static_cast<size_t>(i) * n + k] * dot;
        }
    }
}

bool
runGrm(sim::Gpu &gpu)
{
    const auto a = makeDominantMatrix(kN, 0x94a1);
    const uint64_t d_a = upload(gpu, a);
    const uint64_t d_q = allocZeroed<float>(gpu, size_t{kN} * kN);
    const uint64_t d_r = allocZeroed<float>(gpu, size_t{kN} * kN);

    const ptx::Kernel norm = buildGrmNormKernel();
    const ptx::Kernel normalize = buildGrmNormalizeKernel();
    const ptx::Kernel project = buildGrmProjectKernel();

    const sim::Dim3 cta{kCtaSize, 1, 1};
    for (uint32_t k = 0; k < kN; ++k) {
        gpu.launch(norm, sim::Dim3{1, 1, 1}, cta, {d_a, d_r, kN, k});
        gpu.launch(normalize, sim::Dim3{1, 1, 1}, cta,
                   {d_a, d_q, d_r, kN, k});
        if (k + 1 < kN)
            gpu.launch(project, sim::Dim3{kN - k - 1, 1, 1}, cta,
                       {d_a, d_q, d_r, kN, k});
    }

    std::vector<float> q_ref(size_t{kN} * kN, 0.0f);
    std::vector<float> r_ref(size_t{kN} * kN, 0.0f);
    cpuGramSchmidt(a, q_ref, r_ref, kN);

    const auto q = download<float>(gpu, d_q, size_t{kN} * kN);
    // The reduction tree sums in a different order than the CPU loop, so
    // compare with a slightly wider tolerance.
    return nearlyEqual(q, q_ref, 1e-2f);
}

} // namespace

Workload
makeGrm()
{
    Workload w;
    w.name = "grm";
    w.category = Category::Linear;
    w.description = "Gram-Schmidt QR decomposition (PolyBench gramschmidt)";
    w.run = runGrm;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildGrmNormKernel(),
                                        buildGrmNormalizeKernel(),
                                        buildGrmProjectKernel()};
    };
    return w;
}

} // namespace gcl::workloads
