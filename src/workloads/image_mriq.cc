/**
 * @file
 * mriq (Parboil mri-q): Q-matrix computation for non-Cartesian MRI
 * reconstruction.
 *
 * Each thread owns one voxel and sweeps the k-space samples; CTAs stage
 * k-space tiles in shared memory (the original uses constant memory) and
 * the trigonometry runs on the SFU pipeline. Global loads are a vanishing
 * fraction of instructions — Table I reports 0.03% for mriq.
 */

#include <cmath>

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kVoxels = 4096;
constexpr uint32_t kSamples = 256;
constexpr uint32_t kCtaSize = 256;
constexpr uint32_t kTileSamples = 64;   //!< k-space samples staged per tile
constexpr float kTwoPi = 6.2831853f;

/**
 * Params: x, y, z, kx, ky, kz, phi, qr, qi, numK.
 * Shared layout: kx|ky|kz|phi tiles of kTileSamples floats each.
 */
ptx::Kernel
buildMriqKernel()
{
    KernelBuilder b("mriq_computeQ", 10, kTileSamples * 4 * 4);

    Reg tid = b.mov(DT::U32, SpecialReg::TidX);
    Reg voxel = b.globalTidX();
    Reg p_x = b.ldParam(0);
    Reg p_y = b.ldParam(1);
    Reg p_z = b.ldParam(2);
    Reg p_kx = b.ldParam(3);
    Reg p_ky = b.ldParam(4);
    Reg p_kz = b.ldParam(5);
    Reg p_phi = b.ldParam(6);
    Reg p_qr = b.ldParam(7);
    Reg p_qi = b.ldParam(8);
    Reg num_k = b.ldParam(9);

    Reg x = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_x, voxel, 4));
    Reg y = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_y, voxel, 4));
    Reg z = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_z, voxel, 4));

    Reg qr = b.mov(DT::F32, immF32(0.0f));
    Reg qi = b.mov(DT::F32, immF32(0.0f));

    Reg base = b.mov(DT::U32, 0);
    Label tiles = b.newLabel();
    Label finish = b.newLabel();
    b.place(tiles);
    Reg all_done = b.setp(CmpOp::Ge, DT::U32, base, num_k);
    b.braIf(all_done, finish);
    {
        // Cooperative staging: threads tid < kTileSamples load one sample
        // each into the four shared arrays.
        Label staged = b.newLabel();
        Reg not_loader = b.setp(CmpOp::Ge, DT::U32, tid, kTileSamples);
        b.braIf(not_loader, staged);
        {
            Reg k = b.add(DT::U32, base, tid);
            Reg s_off = b.shl(DT::U64, b.cvt(DT::U64, DT::U32, tid), 2);
            Reg kx = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_kx, k, 4));
            b.st(MemSpace::Shared, DT::F32, s_off, kx);
            Reg ky = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_ky, k, 4));
            b.st(MemSpace::Shared, DT::F32, s_off, ky, kTileSamples * 4);
            Reg kz = b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_kz, k, 4));
            b.st(MemSpace::Shared, DT::F32, s_off, kz, kTileSamples * 8);
            Reg phi =
                b.ld(MemSpace::Global, DT::F32, b.elemAddr(p_phi, k, 4));
            b.st(MemSpace::Shared, DT::F32, s_off, phi, kTileSamples * 12);
        }
        b.place(staged);
        b.bar();

        // Sweep the staged tile.
        Reg i = b.mov(DT::U32, 0);
        Label sweep = b.newLabel();
        Label swept = b.newLabel();
        b.place(sweep);
        Reg tile_done = b.setp(CmpOp::Ge, DT::U32, i, kTileSamples);
        b.braIf(tile_done, swept);
        {
            Reg s_off = b.shl(DT::U64, b.cvt(DT::U64, DT::U32, i), 2);
            Reg kx = b.ld(MemSpace::Shared, DT::F32, s_off);
            Reg ky = b.ld(MemSpace::Shared, DT::F32, s_off,
                          kTileSamples * 4);
            Reg kz = b.ld(MemSpace::Shared, DT::F32, s_off,
                          kTileSamples * 8);
            Reg phi = b.ld(MemSpace::Shared, DT::F32, s_off,
                           kTileSamples * 12);

            Reg dot = b.mad(DT::F32, kz, z,
                            b.mad(DT::F32, ky, y, b.mul(DT::F32, kx, x)));
            Reg angle = b.mul(DT::F32, dot, immF32(kTwoPi));
            Reg c = b.sfu(Opcode::Cos, DT::F32, angle);
            Reg s = b.sfu(Opcode::Sin, DT::F32, angle);
            b.assign(DT::F32, qr, b.mad(DT::F32, phi, c, qr));
            b.assign(DT::F32, qi, b.mad(DT::F32, phi, s, qi));
            b.assign(DT::U32, i, b.add(DT::U32, i, 1));
        }
        b.bra(sweep);
        b.place(swept);
        b.bar();
        b.assign(DT::U32, base, b.add(DT::U32, base, kTileSamples));
    }
    b.bra(tiles);
    b.place(finish);

    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_qr, voxel, 4), qr);
    b.st(MemSpace::Global, DT::F32, b.elemAddr(p_qi, voxel, 4), qi);
    b.exit();
    return b.build();
}

bool
runMriq(sim::Gpu &gpu)
{
    const auto x = makeRandomMatrix(kVoxels, 1, -1.0f, 1.0f, 0x3a71);
    const auto y = makeRandomMatrix(kVoxels, 1, -1.0f, 1.0f, 0x3a72);
    const auto z = makeRandomMatrix(kVoxels, 1, -1.0f, 1.0f, 0x3a73);
    const auto kx = makeRandomMatrix(kSamples, 1, -0.5f, 0.5f, 0x3a74);
    const auto ky = makeRandomMatrix(kSamples, 1, -0.5f, 0.5f, 0x3a75);
    const auto kz = makeRandomMatrix(kSamples, 1, -0.5f, 0.5f, 0x3a76);
    const auto phi = makeRandomMatrix(kSamples, 1, 0.0f, 1.0f, 0x3a77);

    const uint64_t d_x = upload(gpu, x);
    const uint64_t d_y = upload(gpu, y);
    const uint64_t d_z = upload(gpu, z);
    const uint64_t d_kx = upload(gpu, kx);
    const uint64_t d_ky = upload(gpu, ky);
    const uint64_t d_kz = upload(gpu, kz);
    const uint64_t d_phi = upload(gpu, phi);
    const uint64_t d_qr = allocZeroed<float>(gpu, kVoxels);
    const uint64_t d_qi = allocZeroed<float>(gpu, kVoxels);

    gpu.launch(buildMriqKernel(), sim::Dim3{kVoxels / kCtaSize, 1, 1},
               sim::Dim3{kCtaSize, 1, 1},
               {d_x, d_y, d_z, d_kx, d_ky, d_kz, d_phi, d_qr, d_qi,
                kSamples});

    // CPU reference in the same accumulation order. The simulator computes
    // sin/cos in double precision, so tolerance absorbs the difference to
    // float-precision libm usage.
    std::vector<float> qr_ref(kVoxels, 0.0f), qi_ref(kVoxels, 0.0f);
    for (uint32_t v = 0; v < kVoxels; ++v) {
        float qr = 0.0f, qi = 0.0f;
        for (uint32_t k = 0; k < kSamples; ++k) {
            const float dot = kx[k] * x[v] + ky[k] * y[v] + kz[k] * z[v];
            const double angle = static_cast<double>(dot) * kTwoPi;
            qr = static_cast<float>(phi[k] * std::cos(angle) + qr);
            qi = static_cast<float>(phi[k] * std::sin(angle) + qi);
        }
        qr_ref[v] = qr;
        qi_ref[v] = qi;
    }

    const auto qr = download<float>(gpu, d_qr, kVoxels);
    const auto qi = download<float>(gpu, d_qi, kVoxels);
    return nearlyEqual(qr, qr_ref, 5e-3f) && nearlyEqual(qi, qi_ref, 5e-3f);
}

} // namespace

Workload
makeMriq()
{
    Workload w;
    w.name = "mriq";
    w.category = Category::Image;
    w.description = "MRI Q-matrix calibration (Parboil mri-q)";
    w.run = runMriq;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildMriqKernel()};
    };
    return w;
}

} // namespace gcl::workloads
