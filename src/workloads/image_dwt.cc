/**
 * @file
 * dwt (Rodinia dwt2d): one level of a 2D Haar wavelet transform.
 *
 * Each CTA stages a 32x32 input tile into shared memory, then every thread
 * computes one 2x2 Haar butterfly from the staged tile and scatters the
 * four subband outputs. Image-category profile: each global pixel is read
 * exactly once (high cold-miss ratio, Fig 10) and reuse happens in shared
 * memory (Fig 9).
 */

#include "common.hh"
#include "datasets/matrix.hh"
#include "workload.hh"

namespace gcl::workloads
{

namespace
{

constexpr uint32_t kDim = 256;    //!< square image edge
constexpr uint32_t kTile = 16;    //!< CTA is kTile x kTile threads
constexpr uint32_t kIn = 2 * kTile;

/**
 * Haar level. Params: in, out, width. CTA (kTile, kTile); grid covers the
 * image in 2*kTile input tiles. Shared memory holds the 32x32 input tile.
 */
ptx::Kernel
buildDwtKernel()
{
    KernelBuilder b("dwt_haar", 3, kIn * kIn * 4);

    Reg tx = b.mov(DT::U32, SpecialReg::TidX);
    Reg ty = b.mov(DT::U32, SpecialReg::TidY);
    Reg p_in = b.ldParam(0);
    Reg p_out = b.ldParam(1);
    Reg width = b.ldParam(2);

    // Input tile origin.
    Reg ox = b.mul(DT::U32, SpecialReg::CtaIdX, kIn);
    Reg oy = b.mul(DT::U32, SpecialReg::CtaIdY, kIn);

    // Stage the 32x32 tile: each thread loads a 2x2 quad (coalesced row
    // pairs). Quad origin inside the tile: (2*ty, 2*tx).
    Reg lx = b.shl(DT::U32, tx, 1);
    Reg ly = b.shl(DT::U32, ty, 1);
    Reg gx = b.add(DT::U32, ox, lx);
    Reg gy = b.add(DT::U32, oy, ly);

    for (unsigned dy = 0; dy < 2; ++dy) {
        for (unsigned dx = 0; dx < 2; ++dx) {
            Reg gidx = b.mad(DT::U32, b.add(DT::U32, gy, dy), width,
                             b.add(DT::U32, gx, dx));
            Reg v = b.ld(MemSpace::Global, DT::F32,
                         b.elemAddr(p_in, gidx, 4));
            Reg sidx = b.mad(DT::U32, b.add(DT::U32, ly, dy), kIn,
                             b.add(DT::U32, lx, dx));
            b.st(MemSpace::Shared, DT::F32,
                 b.shl(DT::U64, b.cvt(DT::U64, DT::U32, sidx), 2), v);
        }
    }
    b.bar();

    // Butterfly from the staged quad.
    auto smem_at = [&](Reg row, Reg col) {
        Reg sidx = b.mad(DT::U32, row, kIn, col);
        return b.ld(MemSpace::Shared, DT::F32,
                    b.shl(DT::U64, b.cvt(DT::U64, DT::U32, sidx), 2));
    };
    Reg ly1 = b.add(DT::U32, ly, 1);
    Reg lx1 = b.add(DT::U32, lx, 1);
    Reg a = smem_at(ly, lx);
    Reg c = smem_at(ly, lx1);
    Reg d = smem_at(ly1, lx);
    Reg e = smem_at(ly1, lx1);

    Reg sum = b.add(DT::F32, b.add(DT::F32, a, c), b.add(DT::F32, d, e));
    Reg ll = b.mul(DT::F32, sum, immF32(0.25f));
    Reg lh = b.mul(DT::F32,
                   b.sub(DT::F32, b.add(DT::F32, a, c),
                         b.add(DT::F32, d, e)),
                   immF32(0.25f));
    Reg hl = b.mul(DT::F32,
                   b.sub(DT::F32, b.add(DT::F32, a, d),
                         b.add(DT::F32, c, e)),
                   immF32(0.25f));
    Reg hh = b.mul(DT::F32,
                   b.sub(DT::F32, b.add(DT::F32, a, e),
                         b.add(DT::F32, c, d)),
                   immF32(0.25f));

    // Output coordinates in the half-resolution subband planes.
    Reg half = b.shr(DT::U32, width, 1);
    Reg sx = b.mad(DT::U32, SpecialReg::CtaIdX, Src(kTile), tx);
    Reg sy = b.mad(DT::U32, SpecialReg::CtaIdY, Src(kTile), ty);
    Reg base = b.mad(DT::U32, sy, width, sx);

    auto store_band = [&](Reg value, uint32_t band_row, uint32_t band_col) {
        // Band origin: (band_row*half, band_col*half) in the output image.
        Reg off = b.mad(DT::U32, b.mul(DT::U32, half, band_row), width,
                        b.mul(DT::U32, half, band_col));
        Reg idx = b.add(DT::U32, base, off);
        b.st(MemSpace::Global, DT::F32, b.elemAddr(p_out, idx, 4), value);
    };
    store_band(ll, 0, 0);
    store_band(lh, 0, 1);
    store_band(hl, 1, 0);
    store_band(hh, 1, 1);

    b.exit();
    return b.build();
}

std::vector<float>
cpuDwt(const std::vector<float> &in, uint32_t width)
{
    const uint32_t half = width / 2;
    std::vector<float> out(in.size(), 0.0f);
    for (uint32_t y = 0; y < half; ++y) {
        for (uint32_t x = 0; x < half; ++x) {
            const float a = in[static_cast<size_t>(2 * y) * width + 2 * x];
            const float c =
                in[static_cast<size_t>(2 * y) * width + 2 * x + 1];
            const float d =
                in[static_cast<size_t>(2 * y + 1) * width + 2 * x];
            const float e =
                in[static_cast<size_t>(2 * y + 1) * width + 2 * x + 1];
            out[static_cast<size_t>(y) * width + x] =
                (a + c + d + e) * 0.25f;
            out[static_cast<size_t>(y) * width + half + x] =
                ((a + c) - (d + e)) * 0.25f;
            out[static_cast<size_t>(y + half) * width + x] =
                ((a + d) - (c + e)) * 0.25f;
            out[static_cast<size_t>(y + half) * width + half + x] =
                ((a + e) - (c + d)) * 0.25f;
        }
    }
    return out;
}

bool
runDwt(sim::Gpu &gpu)
{
    const auto img = makeImage(kDim, kDim, 0xd317);
    const uint64_t d_in = upload(gpu, img);
    const uint64_t d_out = allocZeroed<float>(gpu, img.size());

    gpu.launch(buildDwtKernel(), sim::Dim3{kDim / kIn, kDim / kIn, 1},
               sim::Dim3{kTile, kTile, 1}, {d_in, d_out, kDim});

    const auto out = download<float>(gpu, d_out, img.size());
    return nearlyEqual(out, cpuDwt(img, kDim));
}

} // namespace

Workload
makeDwt()
{
    Workload w;
    w.name = "dwt";
    w.category = Category::Image;
    w.description = "2D discrete (Haar) wavelet transform (Rodinia dwt2d)";
    w.run = runDwt;
    w.kernels = [] {
        return std::vector<ptx::Kernel>{buildDwtKernel()};
    };
    return w;
}

} // namespace gcl::workloads
