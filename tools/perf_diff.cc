/**
 * @file
 * Compare two BENCH_perf.json snapshots (bench/perf_sweep output) and
 * fail on a throughput regression.
 *
 *   perf_diff <baseline.json> <current.json> [--tolerance=0.10]
 *             [--rss-tolerance=0.25]
 *
 * Prints a per-app and total delta table; exits 1 if the total *or any
 * single app's* cycles_per_sec regressed by more than the tolerance
 * (default 10%) — a per-app gate, because one app falling off a cliff can
 * hide inside a healthy total — or if peak_rss_kb grew by more than the
 * RSS tolerance (default 25%). scripts/check.sh runs this non-fatally by
 * default and fatally under --perf, against the committed baseline in
 * bench/baselines/.
 *
 * The parser is deliberately a scanner, not a JSON library: perf_sweep
 * emits a fixed shape, and this tool must keep working inside the
 * dependency-free toolchain.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

struct Snapshot
{
    std::map<std::string, double> appCps;  // per-app cycles_per_sec
    double totalCps = 0.0;
    double nsPerCycle = 0.0;
    long peakRssKb = 0;
};

/** Find `"key": <number>` after position `from`; returns NaN if absent. */
double
numberAfter(const std::string &text, const std::string &key, size_t from,
            size_t *pos_out = nullptr)
{
    const std::string needle = "\"" + key + "\":";
    const size_t at = text.find(needle, from);
    if (at == std::string::npos)
        return std::nan("");
    if (pos_out)
        *pos_out = at;
    return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

std::string
stringAfter(const std::string &text, const std::string &key, size_t from)
{
    const std::string needle = "\"" + key + "\": \"";
    const size_t at = text.find(needle, from);
    if (at == std::string::npos)
        return "";
    const size_t begin = at + needle.size();
    const size_t end = text.find('"', begin);
    return text.substr(begin, end - begin);
}

Snapshot
load(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "perf_diff: cannot read '%s'\n", path);
        std::exit(2);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    Snapshot snap;
    // Per-app entries all precede the "total" object.
    const size_t total_at = text.find("\"total\":");
    if (total_at == std::string::npos) {
        std::fprintf(stderr, "perf_diff: '%s' has no \"total\" object\n",
                     path);
        std::exit(2);
    }
    size_t cursor = 0;
    while (true) {
        const std::string name = stringAfter(text, "name", cursor);
        if (name.empty())
            break;
        size_t name_at = 0;
        numberAfter(text, "sim_cycles", cursor, &name_at);
        if (name_at >= total_at)
            break;
        const double cps = numberAfter(text, "cycles_per_sec", cursor);
        snap.appCps[name] = cps;
        cursor = text.find('}', name_at);
        if (cursor == std::string::npos)
            break;
    }
    snap.totalCps = numberAfter(text, "cycles_per_sec", total_at);
    snap.nsPerCycle = numberAfter(text, "ns_per_cycle", total_at);
    snap.peakRssKb =
        static_cast<long>(numberAfter(text, "peak_rss_kb", total_at));
    if (std::isnan(snap.totalCps) || snap.totalCps <= 0) {
        std::fprintf(stderr,
                     "perf_diff: '%s' has no total cycles_per_sec\n", path);
        std::exit(2);
    }
    return snap;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *base_path = nullptr;
    const char *cur_path = nullptr;
    double tolerance = 0.10;
    double rss_tolerance = 0.25;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
            tolerance = std::strtod(argv[i] + 12, nullptr);
        } else if (std::strncmp(argv[i], "--rss-tolerance=", 16) == 0) {
            rss_tolerance = std::strtod(argv[i] + 16, nullptr);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: perf_diff <baseline.json> <current.json> "
                        "[--tolerance=0.10] [--rss-tolerance=0.25]\n"
                        "Exits 1 if total or any per-app cycles_per_sec "
                        "regressed by more\nthan the tolerance, or peak RSS "
                        "grew past the RSS tolerance.\n");
            return 0;
        } else if (!base_path) {
            base_path = argv[i];
        } else if (!cur_path) {
            cur_path = argv[i];
        } else {
            std::fprintf(stderr, "perf_diff: too many arguments\n");
            return 2;
        }
    }
    if (!base_path || !cur_path) {
        std::fprintf(stderr,
                     "usage: perf_diff <baseline.json> <current.json> "
                     "[--tolerance=0.10]\n");
        return 2;
    }

    const Snapshot base = load(base_path);
    const Snapshot cur = load(cur_path);

    std::printf("== perf_diff: %s -> %s ==\n", base_path, cur_path);
    std::printf("%-8s %14s %14s %9s\n", "app", "base c/s", "cur c/s",
                "delta");
    int failures = 0;
    for (const auto &[name, base_cps] : base.appCps) {
        const auto it = cur.appCps.find(name);
        if (it == cur.appCps.end()) {
            std::printf("%-8s %14.0f %14s %9s\n", name.c_str(), base_cps,
                        "-", "gone");
            continue;
        }
        const double ratio = it->second / base_cps;
        const bool regressed = ratio < 1.0 - tolerance;
        std::printf("%-8s %14.0f %14.0f %+8.1f%%%s\n", name.c_str(),
                    base_cps, it->second, (ratio - 1.0) * 100.0,
                    regressed ? "  << REGRESSION" : "");
        if (regressed) {
            // Gate per app, not only on the total: one app falling off a
            // cliff (a pathological interaction with its access pattern)
            // can hide inside an otherwise-healthy aggregate.
            ++failures;
        }
    }
    for (const auto &[name, cur_cps] : cur.appCps)
        if (base.appCps.find(name) == base.appCps.end())
            std::printf("%-8s %14s %14.0f %9s\n", name.c_str(), "-", cur_cps,
                        "new");

    const double speedup = cur.totalCps / base.totalCps;
    std::printf("%-8s %14.0f %14.0f %+8.1f%%\n", "TOTAL", base.totalCps,
                cur.totalCps, (speedup - 1.0) * 100.0);
    std::printf("ns/cycle: %.3f -> %.3f   peak RSS: %ld KB -> %ld KB\n",
                base.nsPerCycle, cur.nsPerCycle, base.peakRssKb,
                cur.peakRssKb);

    if (speedup < 1.0 - tolerance) {
        std::printf("perf_diff: REGRESSION: total throughput %.2fx of "
                    "baseline (tolerance %.0f%%)\n",
                    speedup, tolerance * 100.0);
        ++failures;
    }
    if (base.peakRssKb > 0 &&
        static_cast<double>(cur.peakRssKb) >
            static_cast<double>(base.peakRssKb) * (1.0 + rss_tolerance)) {
        std::printf("perf_diff: RSS GROWTH: peak RSS %ld KB -> %ld KB "
                    "(%+.1f%%, tolerance %.0f%%)\n",
                    base.peakRssKb, cur.peakRssKb,
                    (static_cast<double>(cur.peakRssKb) / base.peakRssKb -
                     1.0) * 100.0,
                    rss_tolerance * 100.0);
        ++failures;
    }
    if (failures > 0) {
        std::printf("perf_diff: %d gate(s) failed\n", failures);
        return 1;
    }
    std::printf("perf_diff: ok (%.2fx of baseline)\n", speedup);
    return 0;
}
