/**
 * @file
 * Machine-description inspector for the configs/ zoo:
 *
 *   machine_dump [NAME|PATH]       print the resolved machine in canonical
 *                                  form (redirect to a file to snapshot it;
 *                                  no argument = the compiled-in C2050)
 *   machine_dump --describe [M]    human-readable summary instead (the
 *                                  same text table2_config renders)
 *   machine_dump --diff A B        field-by-field diff of two machines;
 *                                  exits 1 when they differ
 *   machine_dump --list            known machine names + search path
 *
 * Canonical form round-trips: `machine_dump c2050 > x.config` followed by
 * `machine_dump --diff c2050 x.config` reports no differences.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "guard/sim_error.hh"
#include "sim/config.hh"
#include "sim/machine.hh"

namespace
{

using gcl::SimError;
using gcl::sim::GpuConfig;
using gcl::sim::MachineRegistry;

/** Resolve a spec ("" = compiled defaults), exiting with a message on error. */
GpuConfig
resolveOrDie(const std::string &spec)
{
    try {
        return MachineRegistry::resolve(spec);
    } catch (const SimError &error) {
        std::fprintf(stderr, "machine_dump: %s\n",
                     error.message().c_str());
        std::exit(2);
    }
}

/** Canonical form as an ordered key -> value map (for diffing). */
std::map<std::string, std::string>
fields(const GpuConfig &config)
{
    std::map<std::string, std::string> out;
    std::istringstream in(gcl::sim::serializeMachine(config));
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] != '-')
            continue;
        const size_t sp = line.find(' ');
        out[line.substr(1, sp - 1)] = line.substr(sp + 1);
    }
    return out;
}

int
diff(const std::string &a_spec, const std::string &b_spec)
{
    const auto a = fields(resolveOrDie(a_spec));
    const auto b = fields(resolveOrDie(b_spec));
    // serializeMachine emits the same key set for every config, so a
    // two-way walk over one map sees every field.
    unsigned differing = 0;
    for (const auto &[key, a_value] : a) {
        const std::string &b_value = b.at(key);
        if (a_value == b_value)
            continue;
        ++differing;
        std::printf("%-22s %-20s | %s\n", key.c_str(), a_value.c_str(),
                    b_value.c_str());
    }
    if (differing == 0) {
        std::printf("machines are identical (%zu fields)\n", a.size());
        return 0;
    }
    std::printf("%u of %zu fields differ (%s | %s)\n", differing, a.size(),
                a_spec.empty() ? "<defaults>" : a_spec.c_str(),
                b_spec.empty() ? "<defaults>" : b_spec.c_str());
    return 1;
}

int
list()
{
    for (const std::string &name : MachineRegistry::knownMachines())
        std::printf("%s\n", name.c_str());
    std::fprintf(stderr, "search path: %s\n",
                 MachineRegistry::searchDescription().c_str());
    return 0;
}

int
usage(int rc)
{
    std::fprintf(
        rc == 0 ? stdout : stderr,
        "usage: machine_dump [NAME|PATH]        canonical machine file\n"
        "       machine_dump --describe [M]     human-readable summary\n"
        "       machine_dump --diff A B         field diff (exit 1 if "
        "they differ)\n"
        "       machine_dump --list             known machines\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0))
        return usage(0);
    if (argc >= 2 && std::strcmp(argv[1], "--list") == 0)
        return argc == 2 ? list() : usage(2);
    if (argc >= 2 && std::strcmp(argv[1], "--diff") == 0)
        return argc == 4 ? diff(argv[2], argv[3]) : usage(2);
    if (argc >= 2 && std::strcmp(argv[1], "--describe") == 0) {
        if (argc > 3)
            return usage(2);
        const GpuConfig config = resolveOrDie(argc == 3 ? argv[2] : "");
        std::printf("%s", config.describe().c_str());
        return 0;
    }
    if (argc > 2 || (argc == 2 && argv[1][0] == '-'))
        return usage(2);

    const GpuConfig config = resolveOrDie(argc == 2 ? argv[1] : "");
    std::printf("%s", gcl::sim::serializeMachine(config).c_str());
    return 0;
}
