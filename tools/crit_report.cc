/**
 * @file
 * Offline critical-load report generator over a bench stats JSON
 * (--stats-json= artifact, the same file tools/trace_check validates):
 *
 *   crit_report --stats=FILE [--top-n=N] [--csv] [--collapsed=FILE]
 *
 * Default output is the human-readable per-app report (CPI stack + ranked
 * critical-load table) on stdout; --csv switches stdout to one RFC-4180
 * table across all apps; --collapsed=FILE additionally writes
 * flamegraph-compatible collapsed stall stacks. Apps in the JSON that
 * carry no crit.* section (profiler was off, or the run failed) are
 * skipped with a note on stderr.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "crit/report.hh"
#include "trace/export.hh"
#include "trace/json.hh"
#include "util/stats.hh"

namespace
{

using gcl::trace::JsonValue;

int
fail(const std::string &msg)
{
    std::fprintf(stderr, "crit_report: %s\n", msg.c_str());
    return 1;
}

/** Rebuild one app's StatsSet from the parsed "stats" sub-object. */
bool
rebuildStats(const JsonValue &stats, gcl::StatsSet &set)
{
    const JsonValue &scalars = stats["scalars"];
    const JsonValue &hists = stats["histograms"];
    if (!scalars.isObject() || !hists.isObject())
        return false;
    for (const auto &[key, value] : scalars.object) {
        if (!value.isNumber())
            return false;
        set.set(key, value.number);
    }
    for (const auto &[key, hist] : hists.object) {
        const JsonValue &buckets = hist["buckets"];
        if (!buckets.isObject())
            return false;
        gcl::Histogram &out = set.hist(key);
        for (const auto &[bucket, weight] : buckets.object) {
            if (!weight.isNumber())
                return false;
            out.add(std::strtoll(bucket.c_str(), nullptr, 10),
                    weight.number);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string stats_path, collapsed_path;
    size_t top_n = 10;
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--stats=", 8) == 0) {
            stats_path = arg + 8;
        } else if (std::strncmp(arg, "--top-n=", 8) == 0) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(arg + 8, &end, 10);
            if (end == arg + 8 || *end != '\0' || n == 0)
                return fail(std::string("--top-n=") + (arg + 8) +
                            " is not a row count");
            top_n = n;
        } else if (std::strncmp(arg, "--collapsed=", 12) == 0) {
            collapsed_path = arg + 12;
        } else if (std::strcmp(arg, "--csv") == 0) {
            csv = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf("usage: %s --stats=FILE [--top-n=N] [--csv] "
                        "[--collapsed=FILE]\n",
                        argv[0]);
            return 0;
        } else {
            return fail(std::string("unknown argument '") + arg +
                        "' (try --help)");
        }
    }
    if (stats_path.empty())
        return fail("no input (pass --stats=FILE, a --stats-json artifact)");

    std::ifstream in(stats_path);
    if (!in)
        return fail("cannot open stats '" + stats_path + "'");
    std::stringstream buf;
    buf << in.rdbuf();

    JsonValue root;
    std::string error;
    if (!gcl::trace::parseJson(buf.str(), root, &error))
        return fail(stats_path + ": " + error);
    if (!root.isObject() || !root["apps"].isArray())
        return fail(stats_path + ": missing top-level \"apps\" array");

    std::ofstream collapsed;
    if (!collapsed_path.empty()) {
        collapsed.open(collapsed_path);
        if (!collapsed)
            return fail("cannot write collapsed stacks to '" +
                        collapsed_path + "'");
    }

    size_t reported = 0;
    bool csv_header = true;
    for (const JsonValue &app : root["apps"].array) {
        if (!app["name"].isString() || !app["stats"].isObject())
            return fail(stats_path + ": malformed app record");
        const std::string &name = app["name"].string;
        gcl::StatsSet set;
        if (!rebuildStats(app["stats"], set))
            return fail(stats_path + ": app '" + name +
                        "' has a malformed stats object");
        if (!set.has("crit.issue_width")) {
            std::fprintf(stderr,
                         "crit_report: app '%s' has no crit section "
                         "(run the bench with --crit); skipping\n",
                         name.c_str());
            continue;
        }
        if (csv) {
            gcl::crit::renderCsv(std::cout, name, set, top_n, csv_header);
            csv_header = false;
        } else {
            gcl::crit::renderText(std::cout, name, set, top_n);
        }
        if (collapsed.is_open())
            gcl::crit::appendCollapsed(collapsed, name, set);
        ++reported;
    }
    if (reported == 0)
        return fail(stats_path + ": no app carries a crit section");
    return 0;
}
