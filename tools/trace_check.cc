/**
 * @file
 * Offline checker for the artifacts the bench harness writes:
 *
 *   trace_check --trace=FILE   Chrome trace-event JSON (--trace-out=)
 *   trace_check --stats=FILE   per-app stats JSON (--stats-json=)
 *
 * The trace checker streams line-by-line (the writer emits one event per
 * line), so multi-GB traces validate in bounded memory: every event must
 * parse as JSON, carry a "ph", carry ts/pid unless it is metadata, and
 * every async "b" must meet its "e" with the same (cat, id, name).
 * Exits nonzero on the first structural problem.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "trace/export.hh"
#include "trace/json.hh"

namespace
{

using gcl::trace::JsonValue;
using gcl::trace::parseJson;

int
fail(const std::string &msg)
{
    std::fprintf(stderr, "trace_check: %s\n", msg.c_str());
    return 1;
}

int
checkTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return fail("cannot open trace '" + path + "'");

    // (cat, id, name) -> open-slice balance; only in-flight keys live here.
    std::map<std::string, long> open;
    size_t events = 0, begins = 0, ends = 0, counters = 0, instants = 0;
    size_t lineno = 0;
    bool saw_open = false, saw_close = false;
    std::string line;

    while (std::getline(in, line)) {
        ++lineno;
        // Strip the separator the writer appends and surrounding space.
        while (!line.empty() &&
               (line.back() == ',' || line.back() == ' ' ||
                line.back() == '\r'))
            line.pop_back();
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos)
            continue;
        const std::string body = line.substr(start);
        if (body == "[") {
            saw_open = true;
            continue;
        }
        if (body == "]") {
            saw_close = true;
            continue;
        }

        JsonValue ev;
        std::string error;
        if (!parseJson(body, ev, &error))
            return fail("line " + std::to_string(lineno) + ": " + error);
        if (!ev.isObject() || !ev.has("ph") || !ev["ph"].isString())
            return fail("line " + std::to_string(lineno) +
                        ": event without a \"ph\"");
        ++events;
        const std::string &ph = ev["ph"].string;
        if (ph == "M")
            continue;
        if (!ev.has("ts") || !ev["ts"].isNumber() || !ev.has("pid"))
            return fail("line " + std::to_string(lineno) +
                        ": non-metadata event without ts/pid");
        if (ph == "C") {
            ++counters;
        } else if (ph == "i") {
            ++instants;
        } else if (ph == "b" || ph == "e") {
            if (!ev.has("cat") || !ev.has("id") || !ev.has("name"))
                return fail("line " + std::to_string(lineno) +
                            ": async event without cat/id/name");
            const std::string key = ev["cat"].string + '\0' +
                                    ev["id"].string + '\0' +
                                    ev["name"].string;
            long &balance = open[key];
            if (ph == "b") {
                ++begins;
                ++balance;
            } else {
                ++ends;
                if (--balance < 0)
                    return fail("line " + std::to_string(lineno) +
                                ": \"e\" before its \"b\" for " +
                                ev["name"].string);
            }
            if (balance == 0)
                open.erase(key);
        }
    }

    if (!saw_open || !saw_close)
        return fail("trace is not a closed JSON array");
    if (!open.empty())
        return fail(std::to_string(open.size()) +
                    " async slices never closed");

    std::printf("trace_check: %s ok (%zu events: %zu b / %zu e / "
                "%zu i / %zu C)\n",
                path.c_str(), events, begins, ends, instants, counters);
    return 0;
}

/**
 * Re-verify the crit profiler's accounting identity from the exported
 * scalars alone: per SM and device-wide, issued + sum(stall reasons) must
 * equal cycles * issue_width exactly. A violation means a cycle was
 * double-charged or dropped somewhere between Sm::issueCycle and export.
 */
int
checkCrit(const std::string &path, const std::string &name,
          const gcl::StatsSet &set)
{
    static const char *const kReasons[] = {
        "data_hazard", "barrier",           "ibuffer_empty", "pipeline",
        "mshr_full",   "icnt_backpressure", "idle",
    };
    const double width = set.get("crit.issue_width");
    if (width <= 0)
        return fail(path + ": app '" + name +
                    "' crit section without a positive issue_width");

    auto identity = [&](const std::string &prefix) {
        double charged = set.get(prefix + "issued");
        for (const char *reason : kReasons)
            charged += set.get(prefix + "stall." + reason);
        return charged == set.get(prefix + "cycles") * width;
    };

    unsigned sms = 0;
    for (;; ++sms) {
        const std::string prefix = "crit.sm" + std::to_string(sms) + '.';
        if (!set.has(prefix + "cycles"))
            break;
        if (!identity(prefix))
            return fail(path + ": app '" + name + "' sm" +
                        std::to_string(sms) +
                        ": issued + stalls != cycles * issue_width");
    }
    if (sms != static_cast<unsigned>(set.get("crit.sms")))
        return fail(path + ": app '" + name + "': crit.sms says " +
                    std::to_string(
                        static_cast<unsigned>(set.get("crit.sms"))) +
                    " SMs but " +
                    std::to_string(sms) + " crit.sm<i> sections exported");
    if (!identity("crit."))
        return fail(path + ": app '" + name +
                    "': device-wide issued + stalls != cycles * "
                    "issue_width");
    return 0;
}

int
checkStats(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return fail("cannot open stats '" + path + "'");
    std::stringstream buf;
    buf << in.rdbuf();

    JsonValue root;
    std::string error;
    if (!parseJson(buf.str(), root, &error))
        return fail(path + ": " + error);
    if (!root.isObject() || !root.has("apps") || !root["apps"].isArray())
        return fail(path + ": missing top-level \"apps\" array");
    if (root["apps"].array.empty())
        return fail(path + ": \"apps\" is empty");

    for (const JsonValue &app : root["apps"].array) {
        if (!app.has("name") || !app["name"].isString())
            return fail(path + ": app record without a name");
        const std::string &name = app["name"].string;
        if (!app.has("stats") || !app["stats"].isObject())
            return fail(path + ": app '" + name + "' has no stats");

        // Round-trip the stats object through the importer; this enforces
        // the scalars/histograms schema, not just well-formed JSON. The
        // importer consumes whole documents, so re-emit the sub-object
        // from the parsed tree.
        const JsonValue &stats = app["stats"];
        gcl::StatsSet set;
        std::ostringstream rebuilt;
        rebuilt << "{\"scalars\":{";
        bool first = true;
        for (const auto &[key, value] : stats["scalars"].object) {
            rebuilt << (first ? "" : ",") << gcl::trace::jsonQuote(key)
                    << ":" << gcl::trace::jsonNumber(value.number);
            first = false;
        }
        rebuilt << "},\"histograms\":{";
        first = true;
        for (const auto &[key, hist] : stats["histograms"].object) {
            rebuilt << (first ? "" : ",") << gcl::trace::jsonQuote(key)
                    << ":{\"buckets\":{";
            bool fb = true;
            for (const auto &[bucket, weight] : hist["buckets"].object) {
                rebuilt << (fb ? "" : ",") << gcl::trace::jsonQuote(bucket)
                        << ":" << gcl::trace::jsonNumber(weight.number);
                fb = false;
            }
            rebuilt << "},\"total_weight\":"
                    << gcl::trace::jsonNumber(hist["total_weight"].number)
                    << ",\"mean\":"
                    << gcl::trace::jsonNumber(hist["mean"].number) << "}";
            first = false;
        }
        rebuilt << "}}";
        if (!gcl::trace::importStatsJson(rebuilt.str(), set, &error))
            return fail(path + ": app '" + name + "': " + error);
        if (!set.has("cycles") || set.get("cycles") <= 0)
            return fail(path + ": app '" + name +
                        "' has no positive \"cycles\" scalar");
        if (set.has("crit.issue_width"))
            if (int rc = checkCrit(path, name, set))
                return rc;
    }

    std::printf("trace_check: %s ok (%zu apps)\n", path.c_str(),
                root["apps"].array.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path, stats_path;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0)
            trace_path = arg + 8;
        else if (std::strncmp(arg, "--stats=", 8) == 0)
            stats_path = arg + 8;
        else
            return fail(std::string("unknown argument '") + arg +
                        "' (usage: trace_check [--trace=FILE] "
                        "[--stats=FILE])");
    }
    if (trace_path.empty() && stats_path.empty())
        return fail("nothing to do (pass --trace= and/or --stats=)");

    if (!trace_path.empty())
        if (int rc = checkTrace(trace_path))
            return rc;
    if (!stats_path.empty())
        if (int rc = checkStats(stats_path))
            return rc;
    return 0;
}
