file(REMOVE_RECURSE
  "libgcl_sim.a"
)
