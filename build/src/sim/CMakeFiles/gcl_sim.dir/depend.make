# Empty dependencies file for gcl_sim.
# This may be replaced when dependencies are built.
