
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/gcl_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/coalescer.cc" "src/sim/CMakeFiles/gcl_sim.dir/coalescer.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/coalescer.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/gcl_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/sim/CMakeFiles/gcl_sim.dir/dram.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/dram.cc.o.d"
  "/root/repo/src/sim/functional.cc" "src/sim/CMakeFiles/gcl_sim.dir/functional.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/functional.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/gcl_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/interconnect.cc" "src/sim/CMakeFiles/gcl_sim.dir/interconnect.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/interconnect.cc.o.d"
  "/root/repo/src/sim/mem_partition.cc" "src/sim/CMakeFiles/gcl_sim.dir/mem_partition.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/mem_partition.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/gcl_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/simt_stack.cc" "src/sim/CMakeFiles/gcl_sim.dir/simt_stack.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/simt_stack.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/sim/CMakeFiles/gcl_sim.dir/sm.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/sm.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/gcl_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/gcl_sim.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/gcl_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gcl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gcl_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
