file(REMOVE_RECURSE
  "CMakeFiles/gcl_sim.dir/cache.cc.o"
  "CMakeFiles/gcl_sim.dir/cache.cc.o.d"
  "CMakeFiles/gcl_sim.dir/coalescer.cc.o"
  "CMakeFiles/gcl_sim.dir/coalescer.cc.o.d"
  "CMakeFiles/gcl_sim.dir/config.cc.o"
  "CMakeFiles/gcl_sim.dir/config.cc.o.d"
  "CMakeFiles/gcl_sim.dir/dram.cc.o"
  "CMakeFiles/gcl_sim.dir/dram.cc.o.d"
  "CMakeFiles/gcl_sim.dir/functional.cc.o"
  "CMakeFiles/gcl_sim.dir/functional.cc.o.d"
  "CMakeFiles/gcl_sim.dir/gpu.cc.o"
  "CMakeFiles/gcl_sim.dir/gpu.cc.o.d"
  "CMakeFiles/gcl_sim.dir/interconnect.cc.o"
  "CMakeFiles/gcl_sim.dir/interconnect.cc.o.d"
  "CMakeFiles/gcl_sim.dir/mem_partition.cc.o"
  "CMakeFiles/gcl_sim.dir/mem_partition.cc.o.d"
  "CMakeFiles/gcl_sim.dir/memory.cc.o"
  "CMakeFiles/gcl_sim.dir/memory.cc.o.d"
  "CMakeFiles/gcl_sim.dir/simt_stack.cc.o"
  "CMakeFiles/gcl_sim.dir/simt_stack.cc.o.d"
  "CMakeFiles/gcl_sim.dir/sm.cc.o"
  "CMakeFiles/gcl_sim.dir/sm.cc.o.d"
  "CMakeFiles/gcl_sim.dir/stats.cc.o"
  "CMakeFiles/gcl_sim.dir/stats.cc.o.d"
  "libgcl_sim.a"
  "libgcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
