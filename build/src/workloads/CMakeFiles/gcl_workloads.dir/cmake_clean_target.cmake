file(REMOVE_RECURSE
  "libgcl_workloads.a"
)
