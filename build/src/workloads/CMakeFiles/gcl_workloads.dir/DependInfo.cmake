
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/datasets/graph.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/datasets/graph.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/datasets/graph.cc.o.d"
  "/root/repo/src/workloads/datasets/matrix.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/datasets/matrix.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/datasets/matrix.cc.o.d"
  "/root/repo/src/workloads/graph_bfs.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_bfs.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_bfs.cc.o.d"
  "/root/repo/src/workloads/graph_ccl.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_ccl.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_ccl.cc.o.d"
  "/root/repo/src/workloads/graph_mis.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_mis.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_mis.cc.o.d"
  "/root/repo/src/workloads/graph_mst.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_mst.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_mst.cc.o.d"
  "/root/repo/src/workloads/graph_sssp.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_sssp.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/graph_sssp.cc.o.d"
  "/root/repo/src/workloads/image_bpr.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_bpr.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_bpr.cc.o.d"
  "/root/repo/src/workloads/image_dwt.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_dwt.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_dwt.cc.o.d"
  "/root/repo/src/workloads/image_htw.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_htw.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_htw.cc.o.d"
  "/root/repo/src/workloads/image_mriq.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_mriq.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_mriq.cc.o.d"
  "/root/repo/src/workloads/image_srad.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_srad.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/image_srad.cc.o.d"
  "/root/repo/src/workloads/linear_2mm.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_2mm.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_2mm.cc.o.d"
  "/root/repo/src/workloads/linear_gaus.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_gaus.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_gaus.cc.o.d"
  "/root/repo/src/workloads/linear_grm.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_grm.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_grm.cc.o.d"
  "/root/repo/src/workloads/linear_lu.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_lu.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_lu.cc.o.d"
  "/root/repo/src/workloads/linear_spmv.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_spmv.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/linear_spmv.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/gcl_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/gcl_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/gcl_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gcl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gcl_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
