# Empty compiler generated dependencies file for gcl_workloads.
# This may be replaced when dependencies are built.
