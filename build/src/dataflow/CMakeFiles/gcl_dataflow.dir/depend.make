# Empty dependencies file for gcl_dataflow.
# This may be replaced when dependencies are built.
