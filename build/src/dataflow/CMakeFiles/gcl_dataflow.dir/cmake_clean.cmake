file(REMOVE_RECURSE
  "CMakeFiles/gcl_dataflow.dir/backward_slice.cc.o"
  "CMakeFiles/gcl_dataflow.dir/backward_slice.cc.o.d"
  "CMakeFiles/gcl_dataflow.dir/reaching_defs.cc.o"
  "CMakeFiles/gcl_dataflow.dir/reaching_defs.cc.o.d"
  "libgcl_dataflow.a"
  "libgcl_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcl_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
