
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/backward_slice.cc" "src/dataflow/CMakeFiles/gcl_dataflow.dir/backward_slice.cc.o" "gcc" "src/dataflow/CMakeFiles/gcl_dataflow.dir/backward_slice.cc.o.d"
  "/root/repo/src/dataflow/reaching_defs.cc" "src/dataflow/CMakeFiles/gcl_dataflow.dir/reaching_defs.cc.o" "gcc" "src/dataflow/CMakeFiles/gcl_dataflow.dir/reaching_defs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptx/CMakeFiles/gcl_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
