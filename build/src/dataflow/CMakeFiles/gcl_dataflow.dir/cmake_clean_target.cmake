file(REMOVE_RECURSE
  "libgcl_dataflow.a"
)
