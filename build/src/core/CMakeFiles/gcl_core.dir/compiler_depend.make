# Empty compiler generated dependencies file for gcl_core.
# This may be replaced when dependencies are built.
