file(REMOVE_RECURSE
  "CMakeFiles/gcl_core.dir/classifier.cc.o"
  "CMakeFiles/gcl_core.dir/classifier.cc.o.d"
  "libgcl_core.a"
  "libgcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
