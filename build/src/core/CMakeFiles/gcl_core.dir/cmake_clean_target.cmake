file(REMOVE_RECURSE
  "libgcl_core.a"
)
