
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptx/builder.cc" "src/ptx/CMakeFiles/gcl_ptx.dir/builder.cc.o" "gcc" "src/ptx/CMakeFiles/gcl_ptx.dir/builder.cc.o.d"
  "/root/repo/src/ptx/cfg.cc" "src/ptx/CMakeFiles/gcl_ptx.dir/cfg.cc.o" "gcc" "src/ptx/CMakeFiles/gcl_ptx.dir/cfg.cc.o.d"
  "/root/repo/src/ptx/instruction.cc" "src/ptx/CMakeFiles/gcl_ptx.dir/instruction.cc.o" "gcc" "src/ptx/CMakeFiles/gcl_ptx.dir/instruction.cc.o.d"
  "/root/repo/src/ptx/kernel.cc" "src/ptx/CMakeFiles/gcl_ptx.dir/kernel.cc.o" "gcc" "src/ptx/CMakeFiles/gcl_ptx.dir/kernel.cc.o.d"
  "/root/repo/src/ptx/types.cc" "src/ptx/CMakeFiles/gcl_ptx.dir/types.cc.o" "gcc" "src/ptx/CMakeFiles/gcl_ptx.dir/types.cc.o.d"
  "/root/repo/src/ptx/verifier.cc" "src/ptx/CMakeFiles/gcl_ptx.dir/verifier.cc.o" "gcc" "src/ptx/CMakeFiles/gcl_ptx.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
