file(REMOVE_RECURSE
  "libgcl_ptx.a"
)
