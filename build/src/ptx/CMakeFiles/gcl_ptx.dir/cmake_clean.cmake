file(REMOVE_RECURSE
  "CMakeFiles/gcl_ptx.dir/builder.cc.o"
  "CMakeFiles/gcl_ptx.dir/builder.cc.o.d"
  "CMakeFiles/gcl_ptx.dir/cfg.cc.o"
  "CMakeFiles/gcl_ptx.dir/cfg.cc.o.d"
  "CMakeFiles/gcl_ptx.dir/instruction.cc.o"
  "CMakeFiles/gcl_ptx.dir/instruction.cc.o.d"
  "CMakeFiles/gcl_ptx.dir/kernel.cc.o"
  "CMakeFiles/gcl_ptx.dir/kernel.cc.o.d"
  "CMakeFiles/gcl_ptx.dir/types.cc.o"
  "CMakeFiles/gcl_ptx.dir/types.cc.o.d"
  "CMakeFiles/gcl_ptx.dir/verifier.cc.o"
  "CMakeFiles/gcl_ptx.dir/verifier.cc.o.d"
  "libgcl_ptx.a"
  "libgcl_ptx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcl_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
