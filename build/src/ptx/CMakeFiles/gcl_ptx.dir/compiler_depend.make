# Empty compiler generated dependencies file for gcl_ptx.
# This may be replaced when dependencies are built.
