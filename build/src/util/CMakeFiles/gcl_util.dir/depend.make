# Empty dependencies file for gcl_util.
# This may be replaced when dependencies are built.
