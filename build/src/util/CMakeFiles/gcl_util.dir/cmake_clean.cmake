file(REMOVE_RECURSE
  "CMakeFiles/gcl_util.dir/histogram.cc.o"
  "CMakeFiles/gcl_util.dir/histogram.cc.o.d"
  "CMakeFiles/gcl_util.dir/logging.cc.o"
  "CMakeFiles/gcl_util.dir/logging.cc.o.d"
  "CMakeFiles/gcl_util.dir/rng.cc.o"
  "CMakeFiles/gcl_util.dir/rng.cc.o.d"
  "CMakeFiles/gcl_util.dir/stats.cc.o"
  "CMakeFiles/gcl_util.dir/stats.cc.o.d"
  "CMakeFiles/gcl_util.dir/table.cc.o"
  "CMakeFiles/gcl_util.dir/table.cc.o.d"
  "libgcl_util.a"
  "libgcl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
