file(REMOVE_RECURSE
  "libgcl_util.a"
)
