file(REMOVE_RECURSE
  "libgcl_profiler.a"
)
