file(REMOVE_RECURSE
  "CMakeFiles/gcl_profiler.dir/counters.cc.o"
  "CMakeFiles/gcl_profiler.dir/counters.cc.o.d"
  "libgcl_profiler.a"
  "libgcl_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcl_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
