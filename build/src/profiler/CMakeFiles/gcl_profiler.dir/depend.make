# Empty dependencies file for gcl_profiler.
# This may be replaced when dependencies are built.
