file(REMOVE_RECURSE
  "CMakeFiles/ablation_cta_sched.dir/ablation_cta_sched.cc.o"
  "CMakeFiles/ablation_cta_sched.dir/ablation_cta_sched.cc.o.d"
  "ablation_cta_sched"
  "ablation_cta_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cta_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
