# Empty dependencies file for ablation_cta_sched.
# This may be replaced when dependencies are built.
