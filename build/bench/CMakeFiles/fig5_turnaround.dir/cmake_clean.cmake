file(REMOVE_RECURSE
  "CMakeFiles/fig5_turnaround.dir/fig5_turnaround.cc.o"
  "CMakeFiles/fig5_turnaround.dir/fig5_turnaround.cc.o.d"
  "fig5_turnaround"
  "fig5_turnaround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_turnaround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
