# Empty compiler generated dependencies file for fig5_turnaround.
# This may be replaced when dependencies are built.
