# Empty dependencies file for fig7_gap_breakdown.
# This may be replaced when dependencies are built.
