file(REMOVE_RECURSE
  "CMakeFiles/fig2_requests_per_warp.dir/fig2_requests_per_warp.cc.o"
  "CMakeFiles/fig2_requests_per_warp.dir/fig2_requests_per_warp.cc.o.d"
  "fig2_requests_per_warp"
  "fig2_requests_per_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_requests_per_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
