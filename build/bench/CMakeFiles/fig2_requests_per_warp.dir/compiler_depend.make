# Empty compiler generated dependencies file for fig2_requests_per_warp.
# This may be replaced when dependencies are built.
