# Empty dependencies file for ablation_warp_split.
# This may be replaced when dependencies are built.
