file(REMOVE_RECURSE
  "CMakeFiles/ablation_warp_split.dir/ablation_warp_split.cc.o"
  "CMakeFiles/ablation_warp_split.dir/ablation_warp_split.cc.o.d"
  "ablation_warp_split"
  "ablation_warp_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warp_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
