file(REMOVE_RECURSE
  "CMakeFiles/fig12_cta_distance.dir/fig12_cta_distance.cc.o"
  "CMakeFiles/fig12_cta_distance.dir/fig12_cta_distance.cc.o.d"
  "fig12_cta_distance"
  "fig12_cta_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cta_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
