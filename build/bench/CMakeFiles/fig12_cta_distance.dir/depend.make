# Empty dependencies file for fig12_cta_distance.
# This may be replaced when dependencies are built.
