# Empty dependencies file for fig3_l1_cycles.
# This may be replaced when dependencies are built.
