file(REMOVE_RECURSE
  "CMakeFiles/fig3_l1_cycles.dir/fig3_l1_cycles.cc.o"
  "CMakeFiles/fig3_l1_cycles.dir/fig3_l1_cycles.cc.o.d"
  "fig3_l1_cycles"
  "fig3_l1_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_l1_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
