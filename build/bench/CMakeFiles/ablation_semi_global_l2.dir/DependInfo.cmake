
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_semi_global_l2.cc" "bench/CMakeFiles/ablation_semi_global_l2.dir/ablation_semi_global_l2.cc.o" "gcc" "bench/CMakeFiles/ablation_semi_global_l2.dir/ablation_semi_global_l2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gcl_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gcl_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/gcl_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gcl_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/gcl_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
