# Empty compiler generated dependencies file for ablation_semi_global_l2.
# This may be replaced when dependencies are built.
