file(REMOVE_RECURSE
  "CMakeFiles/fig10_cold_miss.dir/fig10_cold_miss.cc.o"
  "CMakeFiles/fig10_cold_miss.dir/fig10_cold_miss.cc.o.d"
  "fig10_cold_miss"
  "fig10_cold_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cold_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
