# Empty compiler generated dependencies file for fig10_cold_miss.
# This may be replaced when dependencies are built.
