# Empty compiler generated dependencies file for fig11_cta_sharing.
# This may be replaced when dependencies are built.
