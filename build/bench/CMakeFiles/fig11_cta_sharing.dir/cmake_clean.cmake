file(REMOVE_RECURSE
  "CMakeFiles/fig11_cta_sharing.dir/fig11_cta_sharing.cc.o"
  "CMakeFiles/fig11_cta_sharing.dir/fig11_cta_sharing.cc.o.d"
  "fig11_cta_sharing"
  "fig11_cta_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cta_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
