file(REMOVE_RECURSE
  "CMakeFiles/fig6_turnaround_vs_reqs.dir/fig6_turnaround_vs_reqs.cc.o"
  "CMakeFiles/fig6_turnaround_vs_reqs.dir/fig6_turnaround_vs_reqs.cc.o.d"
  "fig6_turnaround_vs_reqs"
  "fig6_turnaround_vs_reqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_turnaround_vs_reqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
