# Empty dependencies file for fig6_turnaround_vs_reqs.
# This may be replaced when dependencies are built.
