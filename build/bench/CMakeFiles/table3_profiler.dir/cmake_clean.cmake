file(REMOVE_RECURSE
  "CMakeFiles/table3_profiler.dir/table3_profiler.cc.o"
  "CMakeFiles/table3_profiler.dir/table3_profiler.cc.o.d"
  "table3_profiler"
  "table3_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
