# Empty compiler generated dependencies file for table3_profiler.
# This may be replaced when dependencies are built.
