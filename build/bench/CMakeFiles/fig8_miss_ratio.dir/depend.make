# Empty dependencies file for fig8_miss_ratio.
# This may be replaced when dependencies are built.
