file(REMOVE_RECURSE
  "CMakeFiles/fig8_miss_ratio.dir/fig8_miss_ratio.cc.o"
  "CMakeFiles/fig8_miss_ratio.dir/fig8_miss_ratio.cc.o.d"
  "fig8_miss_ratio"
  "fig8_miss_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_miss_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
