# Empty dependencies file for fig4_unit_idle.
# This may be replaced when dependencies are built.
