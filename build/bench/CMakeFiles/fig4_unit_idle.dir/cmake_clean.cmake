file(REMOVE_RECURSE
  "CMakeFiles/fig4_unit_idle.dir/fig4_unit_idle.cc.o"
  "CMakeFiles/fig4_unit_idle.dir/fig4_unit_idle.cc.o.d"
  "fig4_unit_idle"
  "fig4_unit_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unit_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
