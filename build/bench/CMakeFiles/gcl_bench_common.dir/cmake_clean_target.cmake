file(REMOVE_RECURSE
  "../lib/libgcl_bench_common.a"
)
