# Empty compiler generated dependencies file for gcl_bench_common.
# This may be replaced when dependencies are built.
