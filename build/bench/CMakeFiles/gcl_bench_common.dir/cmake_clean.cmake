file(REMOVE_RECURSE
  "../lib/libgcl_bench_common.a"
  "../lib/libgcl_bench_common.pdb"
  "CMakeFiles/gcl_bench_common.dir/common/figures.cc.o"
  "CMakeFiles/gcl_bench_common.dir/common/figures.cc.o.d"
  "CMakeFiles/gcl_bench_common.dir/common/runner.cc.o"
  "CMakeFiles/gcl_bench_common.dir/common/runner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
