# Empty compiler generated dependencies file for fig9_shared_loads.
# This may be replaced when dependencies are built.
