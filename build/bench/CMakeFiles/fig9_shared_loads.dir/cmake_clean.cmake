file(REMOVE_RECURSE
  "CMakeFiles/fig9_shared_loads.dir/fig9_shared_loads.cc.o"
  "CMakeFiles/fig9_shared_loads.dir/fig9_shared_loads.cc.o.d"
  "fig9_shared_loads"
  "fig9_shared_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_shared_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
