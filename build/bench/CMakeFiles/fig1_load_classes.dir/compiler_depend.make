# Empty compiler generated dependencies file for fig1_load_classes.
# This may be replaced when dependencies are built.
