file(REMOVE_RECURSE
  "CMakeFiles/fig1_load_classes.dir/fig1_load_classes.cc.o"
  "CMakeFiles/fig1_load_classes.dir/fig1_load_classes.cc.o.d"
  "fig1_load_classes"
  "fig1_load_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_load_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
