# Empty compiler generated dependencies file for graph_traversal_study.
# This may be replaced when dependencies are built.
