file(REMOVE_RECURSE
  "CMakeFiles/graph_traversal_study.dir/graph_traversal_study.cpp.o"
  "CMakeFiles/graph_traversal_study.dir/graph_traversal_study.cpp.o.d"
  "graph_traversal_study"
  "graph_traversal_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_traversal_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
