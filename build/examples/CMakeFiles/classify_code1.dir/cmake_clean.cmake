file(REMOVE_RECURSE
  "CMakeFiles/classify_code1.dir/classify_code1.cpp.o"
  "CMakeFiles/classify_code1.dir/classify_code1.cpp.o.d"
  "classify_code1"
  "classify_code1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_code1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
