# Empty dependencies file for classify_code1.
# This may be replaced when dependencies are built.
