
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bench_helpers.cc" "tests/CMakeFiles/gcl_tests.dir/test_bench_helpers.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_bench_helpers.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/gcl_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cfg.cc" "tests/CMakeFiles/gcl_tests.dir/test_cfg.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_cfg.cc.o.d"
  "/root/repo/tests/test_classifier.cc" "tests/CMakeFiles/gcl_tests.dir/test_classifier.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_classifier.cc.o.d"
  "/root/repo/tests/test_coalescer.cc" "tests/CMakeFiles/gcl_tests.dir/test_coalescer.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_coalescer.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/gcl_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_dataflow.cc" "tests/CMakeFiles/gcl_tests.dir/test_dataflow.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_dataflow.cc.o.d"
  "/root/repo/tests/test_datasets.cc" "tests/CMakeFiles/gcl_tests.dir/test_datasets.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_datasets.cc.o.d"
  "/root/repo/tests/test_dram_icnt.cc" "tests/CMakeFiles/gcl_tests.dir/test_dram_icnt.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_dram_icnt.cc.o.d"
  "/root/repo/tests/test_end_to_end.cc" "tests/CMakeFiles/gcl_tests.dir/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_end_to_end.cc.o.d"
  "/root/repo/tests/test_functional.cc" "tests/CMakeFiles/gcl_tests.dir/test_functional.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_functional.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/gcl_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_paper_shapes.cc" "tests/CMakeFiles/gcl_tests.dir/test_paper_shapes.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_paper_shapes.cc.o.d"
  "/root/repo/tests/test_profiler.cc" "tests/CMakeFiles/gcl_tests.dir/test_profiler.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_profiler.cc.o.d"
  "/root/repo/tests/test_ptx.cc" "tests/CMakeFiles/gcl_tests.dir/test_ptx.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_ptx.cc.o.d"
  "/root/repo/tests/test_sim_pipeline.cc" "tests/CMakeFiles/gcl_tests.dir/test_sim_pipeline.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_sim_pipeline.cc.o.d"
  "/root/repo/tests/test_simt_stack.cc" "tests/CMakeFiles/gcl_tests.dir/test_simt_stack.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_simt_stack.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/gcl_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/gcl_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/gcl_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gcl_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gcl_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/gcl_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gcl_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/gcl_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
