/**
 * @file
 * Table III reproduction: the CUDA-Profiler counter set, collected from the
 * simulator for every application.
 */

#include <iostream>
#include <numeric>

#include "common/runner.hh"
#include "profiler/counters.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Table III: profiler counters", config);

    Table table({"app", "gld_request", "shared_load", "l1_gld_hit",
                 "l1_gld_miss", "l2_read_queries", "l2_read_hits"});

    for (const auto &app : bench::runSuite(config)) {
        const auto counters = profiler::Counters::fromStats(
            app.stats, config.numPartitions);
        const double queries =
            std::accumulate(counters.l2ReadQueries.begin(),
                            counters.l2ReadQueries.end(), 0.0);
        const double hits = std::accumulate(counters.l2ReadHits.begin(),
                                            counters.l2ReadHits.end(), 0.0);
        table.addRow({
            app.name,
            Table::fmtInt(static_cast<uint64_t>(counters.gldRequest)),
            Table::fmtInt(static_cast<uint64_t>(counters.sharedLoad)),
            Table::fmtInt(static_cast<uint64_t>(counters.l1GlobalLoadHit)),
            Table::fmtInt(static_cast<uint64_t>(counters.l1GlobalLoadMiss)),
            Table::fmtInt(static_cast<uint64_t>(queries)),
            Table::fmtInt(static_cast<uint64_t>(hits)),
        });
    }

    table.print(std::cout);

    // Per-slice view for one representative app (the paper's counters are
    // per L2 slice).
    const auto bfs = bench::runApp("bfs", config);
    const auto counters =
        gcl::profiler::Counters::fromStats(bfs.stats, config.numPartitions);
    std::cout << "\nbfs per-slice profiler output:\n"
              << counters.report() << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
