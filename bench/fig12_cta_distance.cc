/**
 * @file
 * Figure 12 reproduction: frequency of CTA distances among the CTAs that
 * share a data block, per application category.
 *
 * Paper shape: linear-algebra apps share at distance 1 plus matrix-dimension
 * strides; image apps share (when at all) at distance 1; graph apps spread
 * sharing across a wide distance range, driven by their non-deterministic
 * loads.
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "common/runner.hh"
#include "util/histogram.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 12: CTA-distance frequency for shared "
                       "blocks",
                       config);

    // Per-app top distances.
    Table per_app({"app", "category", "top distances (distance:fraction)"});
    std::map<std::string, Histogram> by_category;
    std::map<std::string, Histogram> graph_by_class;

    for (const auto &app : bench::runSuite(config)) {
        const Histogram &dist = app.stats.histOrEmpty("cta_distance");
        by_category[app.category].merge(dist);
        if (app.category == "graph") {
            graph_by_class["det"].merge(
                app.stats.histOrEmpty("cta_distance.det"));
            graph_by_class["nondet"].merge(
                app.stats.histOrEmpty("cta_distance.nondet"));
        }

        // Format the five heaviest buckets.
        std::vector<std::pair<double, int64_t>> top;
        for (const auto &[d, w] : dist.buckets())
            top.emplace_back(w, d);
        std::sort(top.rbegin(), top.rend());
        std::string cell;
        for (size_t i = 0; i < std::min<size_t>(5, top.size()); ++i) {
            if (i)
                cell += "  ";
            cell += std::to_string(top[i].second) + ":" +
                    Table::fmtPct(top[i].first / dist.totalWeight(), 1);
        }
        per_app.addRow({app.name, app.category,
                        cell.empty() ? "-" : cell});
    }
    per_app.print(std::cout);

    std::cout << "\nPer-category distance distribution (distance: "
                 "fraction):\n";
    for (const auto &[category, hist] : by_category) {
        std::cout << "  " << category << ":";
        int emitted = 0;
        for (const auto &[d, frac] : hist.normalized()) {
            if (frac < 0.01)
                continue;
            std::cout << "  " << d << ":" << Table::fmtPct(frac, 1);
            if (++emitted >= 10)
                break;
        }
        std::cout << "  (mean distance "
                  << Table::fmt(hist.mean(), 1) << ", "
                  << hist.numBuckets() << " distinct distances)\n";
    }

    std::cout << "\nGraph-category sharing dispersion by load class:\n";
    for (const auto &[cls, hist] : graph_by_class)
        std::cout << "  " << cls << ": mean distance "
                  << Table::fmt(hist.mean(), 1) << ", "
                  << hist.numBuckets() << " distinct distances\n";
    std::cout << "(paper: non-deterministic loads disperse sharing across "
                 "a wide CTA-distance range)\n";
    return bench::finishBench();
}
