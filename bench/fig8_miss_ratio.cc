/**
 * @file
 * Figure 8 reproduction: L1 and L2 miss ratios for non-deterministic and
 * deterministic loads.
 *
 * Paper shape: miss ratios exceed 50% nearly everywhere; deterministic
 * loads do NOT enjoy meaningfully better hit rates, and the L1 barely
 * filters traffic to the L2.
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 8: L1/L2 miss ratios by load class", config);

    Table table({"app", "N L1 miss", "D L1 miss", "N L2 miss",
                 "D L2 miss"});
    for (const auto &app : bench::runSuite(config)) {
        const auto &s = app.stats;
        auto cell = [&](const char *num, const char *den, bool non_det) {
            const double den_v = s.get(bench::classKey(den, non_det));
            return den_v
                ? Table::fmtPct(s.get(bench::classKey(num, non_det)) /
                                den_v)
                : std::string("-");
        };
        table.addRow({
            app.name,
            cell("l1.miss", "l1.access", true),
            cell("l1.miss", "l1.access", false),
            cell("l2.miss", "l2.access", true),
            cell("l2.miss", "l2.access", false),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
