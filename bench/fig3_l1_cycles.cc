/**
 * @file
 * Figure 3 reproduction: breakdown of L1 data-cache access cycles into
 * hit / hit-reserved / miss / reservation-fail (tag, MSHR, interconnect).
 *
 * Paper shape: on average ~70% of L1 cycles are wasted on reservation
 * failures, dominated by tag/MSHR shortage, and graph apps are the worst.
 */

#include <iostream>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 3: L1 data cache cycle breakdown", config);

    static const char *kOutcomes[6] = {"hit", "hit_reserved", "miss",
                                       "fail_tag", "fail_mshr",
                                       "fail_icnt"};

    Table table({"app", "hit", "hit_rsrv", "miss", "rsrv_fail_tag",
                 "rsrv_fail_mshr", "rsrv_fail_icnt"});
    double wasted_sum = 0.0;
    int napps = 0;
    for (const auto &app : bench::runSuite(config)) {
        double total = 0.0;
        double v[6];
        for (int o = 0; o < 6; ++o) {
            v[o] = app.stats.get(std::string("l1.outcome.") + kOutcomes[o]);
            total += v[o];
        }
        std::vector<std::string> row{app.name};
        for (int o = 0; o < 6; ++o)
            row.push_back(Table::fmtPct(total ? v[o] / total : 0.0));
        table.addRow(std::move(row));
        if (total > 0) {
            wasted_sum += (v[3] + v[4] + v[5]) / total;
            ++napps;
        }
    }
    table.print(std::cout);
    std::cout << "\naverage fraction of L1 cycles lost to reservation "
              << "fails: "
              << Table::fmtPct(napps ? wasted_sum / napps : 0.0)
              << " (paper: ~70%)\n\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
