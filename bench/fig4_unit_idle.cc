/**
 * @file
 * Figure 4 reproduction: fraction of cycles the first pipeline stage of
 * each function unit (SP, SFU, LD/ST) is idle.
 *
 * Paper shape: the LD/ST unit is by far the busiest (~54% busy on average)
 * although global loads are only ~6% of instructions; SP/SFU stay mostly
 * idle.
 */

#include <iostream>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 4: function-unit idle fractions", config);

    Table table({"app", "SP idle", "SFU idle", "LD/ST idle"});
    double busy_sum[3] = {0, 0, 0};
    for (const auto &app : bench::runSuite(config)) {
        const double cycles = app.stats.get("sm_cycles");
        const double sp = app.stats.get("busy.sp") / cycles;
        const double sfu = app.stats.get("busy.sfu") / cycles;
        const double ldst = app.stats.get("busy.ldst") / cycles;
        busy_sum[0] += sp;
        busy_sum[1] += sfu;
        busy_sum[2] += ldst;
        table.addRow({
            app.name,
            Table::fmtPct(1.0 - sp),
            Table::fmtPct(1.0 - sfu),
            Table::fmtPct(1.0 - ldst),
        });
    }
    table.print(std::cout);
    std::cout << "\naverage busy fractions: SP "
              << Table::fmtPct(busy_sum[0] / 15) << ", SFU "
              << Table::fmtPct(busy_sum[1] / 15) << ", LD/ST "
              << Table::fmtPct(busy_sum[2] / 15)
              << " (paper: 9.3% / 11.5% / 54.4%)\n\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
