/**
 * @file
 * Figure 5 reproduction: average turnaround time of a global-load warp,
 * decomposed into unloaded memory latency, reservation fails caused by
 * previous warps, reservation fails within the current warp's own request
 * burst, and wasted cycles in the L2/DRAM partitions — for N and D loads.
 *
 * Paper shape: non-deterministic loads pay far more in both reservation
 * stalls and partition imbalance; deterministic loads sit close to the
 * unloaded latency.
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

namespace
{

std::vector<std::string>
row(const gcl::bench::AppResult &app, bool non_det)
{
    using gcl::Table;
    const auto &s = app.stats;
    const double cnt = s.get(gcl::bench::classKey("turn.cnt", non_det));
    auto avg = [&](const char *key) {
        return cnt ? s.get(gcl::bench::classKey(key, non_det)) / cnt : 0.0;
    };
    return {
        app.name,
        non_det ? "N" : "D",
        Table::fmt(avg("turn.unloaded"), 1),
        Table::fmt(avg("turn.rsrv_prev"), 1),
        Table::fmt(avg("turn.rsrv_cur"), 1),
        Table::fmt(avg("turn.mem"), 1),
        Table::fmt(avg("turn.sum"), 1),
    };
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 5: global-load turnaround decomposition "
                       "(cycles)",
                       config);

    Table table({"app", "class", "unloaded", "rsrv_prev_warps",
                 "rsrv_cur_warp", "wasted_l2_dram", "total"});
    for (const auto &app : bench::runSuite(config)) {
        if (app.stats.get("turn.cnt.nondet") > 0)
            table.addRow(row(app, true));
        if (app.stats.get("turn.cnt.det") > 0)
            table.addRow(row(app, false));
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
