/**
 * @file
 * Cache-size sensitivity ablation.
 *
 * Section II echoes Xu et al.'s finding that L1 capacity barely correlates
 * with graph-application performance, and Section VIII explains why: the
 * miss problem is reservation-fail contention plus low temporal locality
 * per SM, not capacity. This bench sweeps the L1D from half to 4x the
 * Table II size on representative apps from each category.
 */

#include <iostream>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto base = bench::defaultConfig();
    bench::printHeader("Ablation: L1D capacity sweep (8KB / 16KB / 32KB / "
                       "64KB)",
                       base);

    static const char *kApps[] = {"2mm", "spmv", "dwt", "bfs", "ccl"};
    static const uint32_t kSizes[] = {8, 16, 32, 64};

    Table table({"app", "L1 size", "L1 miss", "cycles",
                 "speedup vs 16KB"});
    for (const char *name : kApps) {
        const auto baseline = bench::runApp(name, base);
        const double base_cycles = baseline.stats.get("cycles");
        for (uint32_t kb : kSizes) {
            auto config = base;
            config.l1.sizeBytes = kb * 1024;
            const auto app = bench::runApp(name, config);
            const double access = app.stats.get("l1.access.det") +
                                  app.stats.get("l1.access.nondet");
            const double miss = app.stats.get("l1.miss.det") +
                                app.stats.get("l1.miss.nondet");
            const double cycles = app.stats.get("cycles");
            table.addRow({
                name,
                std::to_string(kb) + "KB",
                Table::fmtPct(access ? miss / access : 0.0),
                Table::fmtInt(static_cast<uint64_t>(cycles)),
                Table::fmt(cycles ? base_cycles / cycles : 0.0, 3),
            });
        }
    }
    table.print(std::cout);
    std::cout << "\n(paper/Xu et al.: cache size is not correlated with "
                 "graph-app performance)\n\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
