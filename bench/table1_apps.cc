/**
 * @file
 * Table I reproduction: application characteristics — CTA counts, CTA
 * sizes, dynamic warp-instruction counts, global-load counts and the
 * global-load fraction, per application.
 */

#include <iostream>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Table I: application characteristics", config);

    Table table({"app", "category", "ctas", "threads/cta", "warp insts",
                 "gld warps", "gld fraction", "verified"});

    double total_fraction = 0.0;
    for (const auto &app : bench::runSuite(config)) {
        const auto &s = app.stats;
        const double gld = s.get("gload.warps.det") +
                           s.get("gload.warps.nondet");
        const double fraction = gld / s.get("warp_insts");
        total_fraction += fraction;
        table.addRow({
            app.name,
            app.category,
            Table::fmtInt(static_cast<uint64_t>(s.get("ctas_launched"))),
            Table::fmtInt(static_cast<uint64_t>(s.get("threads_per_cta"))),
            Table::fmtInt(static_cast<uint64_t>(s.get("warp_insts"))),
            Table::fmtInt(static_cast<uint64_t>(gld)),
            Table::fmtPct(fraction),
            app.verified ? "yes" : "NO",
        });
    }

    table.print(std::cout);
    std::cout << "\naverage global-load fraction: "
              << Table::fmtPct(total_fraction / 15.0)
              << " (paper: 6.43% on its inputs)\n\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
