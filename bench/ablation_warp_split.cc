/**
 * @file
 * Section X.A ablation: splitting non-deterministic loads into sub-warps.
 *
 * The paper suggests bounding the burst of memory requests a single
 * non-deterministic load may issue so it stops monopolizing the LD/ST
 * stage and the L1 resources. With the knob on, a non-deterministic load
 * yields the LD/ST first stage after N requests. The bench compares the
 * irregular apps (graph suite + spmv) against the baseline.
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    auto base = bench::defaultConfig();
    auto split = base;
    split.nondetSplitRequests = 4;

    bench::printHeader("Ablation X.A: non-deterministic warp splitting "
                       "(burst limit 4 requests)",
                       base);

    Table table({"app", "D turnaround base", "D turnaround split",
                 "N turnaround base", "N turnaround split", "cycles base",
                 "cycles split"});
    for (const char *name : {"spmv", "bfs", "sssp", "ccl", "mst", "mis"}) {
        const auto app_base = bench::runApp(name, base);
        const auto app_split = bench::runApp(name, split);
        auto turn = [](const bench::AppResult &app, bool non_det) {
            const auto &s = app.stats;
            const double cnt = s.get(bench::classKey("turn.cnt", non_det));
            return cnt ? s.get(bench::classKey("turn.sum", non_det)) / cnt
                       : 0.0;
        };
        table.addRow({
            name,
            Table::fmt(turn(app_base, false), 1),
            Table::fmt(turn(app_split, false), 1),
            Table::fmt(turn(app_base, true), 1),
            Table::fmt(turn(app_split, true), 1),
            Table::fmtInt(
                static_cast<uint64_t>(app_base.stats.get("cycles"))),
            Table::fmtInt(
                static_cast<uint64_t>(app_split.stats.get("cycles"))),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
