/**
 * @file
 * Figure 7 reproduction: turnaround breakdown of one non-deterministic bfs
 * load versus the number of generated requests — common (unloaded) latency,
 * the gap accumulating reservations at L1D, the queueing gap on the way
 * into the L2, and the first-to-last data return spread at L2-icnt.
 *
 * Paper shape: "Gap at L1D" and "Gap at L2-icnt" grow with the request
 * count; "Gap at icnt-L2" stays comparatively flat.
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 7: per-request-count gap breakdown (bfs, "
                       "hottest non-deterministic load)",
                       config);

    const auto app = bench::runApp("bfs", config);
    const auto series = bench::hottestPc(app.stats, true);
    if (series.prefix.empty()) {
        std::cout << "no non-deterministic load recorded\n";
        return 1;
    }
    std::cout << "load: kernel " << series.kernel << ", pc " << series.pc
              << "\n\n";

    const auto &cnt = app.stats.histOrEmpty(series.prefix + "turn_cnt");
    const auto &g1 = app.stats.histOrEmpty(series.prefix + "gap_l1d");
    const auto &g2 = app.stats.histOrEmpty(series.prefix + "gap_icnt_l2");
    const auto &g3 = app.stats.histOrEmpty(series.prefix + "gap_l2icnt");

    Table table({"requests", "warps", "common latency", "gap at L1D",
                 "gap at icnt-L2", "gap at L2-icnt"});
    for (const auto &[nreq, warps] : cnt.buckets()) {
        table.addRow({
            Table::fmtInt(static_cast<uint64_t>(nreq)),
            Table::fmtInt(static_cast<uint64_t>(warps)),
            Table::fmt(config.unloadedDramLatency(), 1),
            Table::fmt(g1.weightAt(nreq) / warps, 1),
            Table::fmt(g2.weightAt(nreq) / warps, 1),
            Table::fmt(g3.weightAt(nreq) / warps, 1),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
