/**
 * @file
 * Figure 6 reproduction: per-pc load turnaround time as a function of the
 * number of memory requests the warp generated, for selected deterministic
 * and non-deterministic loads from bfs, sssp and spmv.
 *
 * Paper shape: deterministic loads only ever generate 1-2 requests; the
 * same non-deterministic pc spans 1..32 requests, and average turnaround
 * grows with the request count.
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 6: turnaround vs generated requests",
                       config);

    Table table({"app", "kernel", "pc", "class", "requests", "warps",
                 "avg turnaround"});

    for (const char *name : {"bfs", "sssp", "spmv"}) {
        const auto app = bench::runApp(name, config);
        // The heaviest non-deterministic pc and the heaviest deterministic
        // pc of each app.
        for (bool non_det : {true, false}) {
            const auto series = bench::hottestPc(app.stats, non_det);
            if (series.prefix.empty())
                continue;
            const auto &cnt =
                app.stats.histOrEmpty(series.prefix + "turn_cnt");
            const auto &sum =
                app.stats.histOrEmpty(series.prefix + "turn_sum");
            for (const auto &[nreq, warps] : cnt.buckets()) {
                table.addRow({
                    app.name,
                    series.kernel,
                    Table::fmtInt(series.pc),
                    non_det ? "N" : "D",
                    Table::fmtInt(static_cast<uint64_t>(nreq)),
                    Table::fmtInt(static_cast<uint64_t>(warps)),
                    Table::fmt(sum.weightAt(nreq) / warps, 1),
                });
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
