/**
 * @file
 * Figure 2 reproduction: average memory requests generated per warp and per
 * active thread, for non-deterministic (N) and deterministic (D) loads.
 *
 * Paper shape: D loads coalesce to ~1-2 requests/warp in every app; N loads
 * generate many more (bfs approaches one request per active thread).
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 2: memory requests per warp / active thread",
                       config);

    Table table({"app", "N req/warp", "D req/warp", "N req/thread",
                 "D req/thread"});
    for (const auto &app : bench::runSuite(config)) {
        const auto &s = app.stats;
        table.addRow({
            app.name,
            Table::fmt(bench::classRatio(s, "gload.reqs", "gload.warps",
                                         true),
                       2),
            Table::fmt(bench::classRatio(s, "gload.reqs", "gload.warps",
                                         false),
                       2),
            Table::fmt(bench::classRatio(s, "gload.reqs", "gload.active",
                                         true),
                       3),
            Table::fmt(bench::classRatio(s, "gload.reqs", "gload.active",
                                         false),
                       3),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
