/**
 * @file
 * CPI-stack figure over the criticality profiler (not in the paper; an
 * extension enabled by gcl::crit). For each of the 15 applications, every
 * issue slot of every SM cycle is either an issue or a charged stall, so
 * the per-reason shares decompose CPI exactly — the paper's Section IV
 * claim that memory (data-hazard) stalls dominate, split by load class,
 * becomes directly visible per application.
 *
 * Expected shape: the graph applications (bfs, bpr, ccl, mst, pvc, pvr)
 * spend most slots on data hazards behind non-deterministic loads; the
 * dense linear-algebra apps stall mostly behind deterministic loads or
 * issue near their width.
 *
 * Forces config.crit = true, so this bench never shares cache entries
 * with the profiler-off sweeps the other figures replay.
 */

#include <iostream>

#include "common/runner.hh"
#include "crit/report.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    auto config = bench::defaultConfig();
    config.crit = true;
    bench::printHeader("Figure X: per-application CPI stacks "
                       "(issue-slot attribution, crit profiler)",
                       config);

    const auto results = bench::runSuite(config);

    Table table({"app", "slots", "issued%", "data_hazard%", "(det%",
                 "nondet%)", "barrier%", "ibuf%", "pipe%", "mshr%",
                 "icnt%", "idle%"});
    for (const auto &app : results) {
        const crit::CpiStack stack = crit::cpiStack(app.stats);
        if (!stack.valid) {
            std::cout << app.name << ": no crit section (run failed?)\n";
            continue;
        }
        auto pct = [&](double v) {
            return Table::fmt(100.0 * v / stack.slots, 1);
        };
        using crit::StallReason;
        auto stall = [&](StallReason r) {
            return stack.stall[static_cast<unsigned>(r)];
        };
        table.addRow({
            app.name,
            Table::fmtInt(static_cast<uint64_t>(stack.slots)),
            pct(stack.issued),
            pct(stall(StallReason::DataHazard)),
            pct(stack.dhzByClass[1]),
            pct(stack.dhzByClass[2]),
            pct(stall(StallReason::Barrier)),
            pct(stall(StallReason::IbufferEmpty)),
            pct(stall(StallReason::Pipeline)),
            pct(stall(StallReason::MshrFull)),
            pct(stall(StallReason::IcntBackpressure)),
            pct(stall(StallReason::IdleNoCta)),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
