/**
 * @file
 * Simulator-throughput microbench: how fast does the simulator itself run?
 *
 * Every figure in the paper is produced by replaying the full memory
 * system cycle by cycle, so host-side throughput (simulated cycles per
 * wall-clock second) is the single lever on how many configs a sweep can
 * cover. This bench pins a fixed subset of the Table I suite, simulates
 * each app fresh (never the run cache — we are timing the simulator, not
 * the disk), and emits a BENCH_perf.json snapshot:
 *
 *   cycles_per_sec   simulated cycles / host seconds (higher is better)
 *   ns_per_cycle     host nanoseconds per simulated cycle (lower is better)
 *   peak_rss_kb      peak resident set of the whole process
 *
 * `tools/perf_diff old.json new.json` compares two snapshots and fails on
 * a regression; `scripts/bench_perf.sh` wires both against the committed
 * baseline in bench/baselines/ so every perf PR leaves a trajectory.
 *
 * Runs are timed best-of-N (--repeat) to shave scheduler noise; the
 * simulated cycle count of every run is asserted identical across
 * repetitions — a perf bench that silently simulates different work would
 * be comparing apples to oranges.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/scheduler.hh"
#include "sim/config.hh"
#include "util/logging.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace
{

using gcl::sim::GpuConfig;

/**
 * Pinned subset: one cheap and one expensive app per Table I category so
 * the number tracks coalescer/L1 pressure (linear), high turnaround
 * volume (image) and non-deterministic request storms (graph) at once.
 * Keep this list stable — changing it invalidates every baseline.
 */
const char *kPinnedApps[] = {"gaus", "2mm", "bpr", "srad", "bfs", "spmv"};

struct AppPerf
{
    std::string name;
    uint64_t simCycles = 0;
    uint64_t warpInsts = 0;
    double bestSeconds = 0.0;
};

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

long
peakRssKb()
{
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return usage.ru_maxrss;  // KB on Linux
}

void
writeJson(const std::string &path, const std::string &label,
          const std::vector<AppPerf> &apps, unsigned repeat,
          unsigned sim_threads)
{
    uint64_t total_cycles = 0, total_insts = 0;
    double total_seconds = 0.0;
    for (const auto &app : apps) {
        total_cycles += app.simCycles;
        total_insts += app.warpInsts;
        total_seconds += app.bestSeconds;
    }
    const double cps =
        total_seconds > 0 ? static_cast<double>(total_cycles) / total_seconds
                          : 0.0;
    const double ns_per_cycle =
        total_cycles > 0 ? total_seconds * 1e9 /
                               static_cast<double>(total_cycles)
                         : 0.0;

    std::ofstream out(path);
    if (!out)
        gcl_fatal("cannot write '", path, "'");
    char buf[256];
    out << "{\n";
    out << "  \"bench\": \"perf_sweep\",\n";
    out << "  \"label\": \"" << label << "\",\n";
    out << "  \"repeat\": " << repeat << ",\n";
    out << "  \"sim_threads\": " << sim_threads << ",\n";
    out << "  \"per_app\": [\n";
    for (size_t i = 0; i < apps.size(); ++i) {
        const AppPerf &app = apps[i];
        const double app_cps = app.bestSeconds > 0
            ? static_cast<double>(app.simCycles) / app.bestSeconds
            : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"sim_cycles\": %llu, "
                      "\"warp_insts\": %llu, \"best_seconds\": %.6f, "
                      "\"cycles_per_sec\": %.0f}%s\n",
                      app.name.c_str(),
                      static_cast<unsigned long long>(app.simCycles),
                      static_cast<unsigned long long>(app.warpInsts),
                      app.bestSeconds, app_cps,
                      i + 1 < apps.size() ? "," : "");
        out << buf;
    }
    out << "  ],\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"total\": {\"sim_cycles\": %llu, \"seconds\": %.6f, "
                  "\"cycles_per_sec\": %.0f, \"ns_per_cycle\": %.3f, "
                  "\"peak_rss_kb\": %ld}\n",
                  static_cast<unsigned long long>(total_cycles),
                  total_seconds, cps, ns_per_cycle, peakRssKb());
    out << buf;
    out << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> apps;
    unsigned repeat = 3;
    std::string out_path = "BENCH_perf.json";
    std::string label = "perf_sweep";
    int sim_threads = -1;  // -1 = unset: GCL_SIM_THREADS, else 1
    bool crit = false;     // time with the criticality profiler enabled

    auto value = [](const char *arg, const char *flag) -> const char * {
        const size_t n = std::strlen(flag);
        if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (const char *v = value(arg, "--apps")) {
            std::istringstream list(v);
            std::string app;
            while (std::getline(list, app, ','))
                if (!app.empty())
                    apps.push_back(app);
        } else if (const char *v = value(arg, "--repeat")) {
            repeat = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            if (repeat == 0)
                gcl_fatal("--repeat must be positive");
        } else if (const char *v = value(arg, "--out")) {
            out_path = v;
        } else if (const char *v = value(arg, "--label")) {
            label = v;
        } else if (const char *v = value(arg, "--sim-threads")) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(v, &end, 10);
            if (end == v || *end != '\0')
                gcl_fatal("--sim-threads=", v, " is not a thread count");
            sim_threads = static_cast<int>(n);
        } else if (std::strcmp(arg, "--crit") == 0) {
            crit = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf("usage: %s [--apps=a,b,c] [--repeat=N] "
                        "[--out=FILE] [--label=STR]\n"
                        "          [--sim-threads=N] [--crit]\n"
                        "Times fresh simulations of the pinned app subset "
                        "and writes a\nBENCH_perf.json throughput snapshot "
                        "(compare with tools/perf_diff).\n"
                        "--sim-threads parallelizes the tick loop inside "
                        "each run;\nresults stay bit-identical (0 = all "
                        "hardware threads;\ndefault GCL_SIM_THREADS, "
                        "else 1).\n"
                        "--crit times the run with the criticality "
                        "profiler enabled,\nto measure its overhead "
                        "against a plain snapshot.\n",
                        argv[0]);
            return 0;
        } else {
            gcl_fatal("unknown argument '", arg, "' (try --help)");
        }
    }
    if (apps.empty())
        apps.assign(std::begin(kPinnedApps), std::end(kPinnedApps));
    for (const auto &name : apps)
        if (gcl::workloads::findByName(name) == nullptr)
            gcl_fatal("--apps: unknown application '", name,
                      "' (known: ", gcl::workloads::knownNames(), ")");

    if (sim_threads < 0) {
        if (const char *env = std::getenv("GCL_SIM_THREADS")) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(env, &end, 10);
            if (end == env || *end != '\0')
                gcl_fatal("GCL_SIM_THREADS=", env,
                          " is not a thread count");
            sim_threads = static_cast<int>(n);
        } else {
            sim_threads = 1;
        }
    }
    // This bench runs apps one at a time (no sweep jobs to subtract), so
    // auto simply takes the whole machine.
    if (sim_threads == 0)
        sim_threads = static_cast<int>(gcl::exec::hardwareThreads());

    GpuConfig config{};
    config.simThreads = static_cast<unsigned>(sim_threads);
    config.crit = crit;
    std::vector<AppPerf> results;
    results.reserve(apps.size());

    std::printf("== perf_sweep: simulator throughput ==\n");
    if (config.simThreads != 1)
        std::printf("sim-threads: %u (deterministic tick)\n",
                    config.simThreads);
    if (crit)
        std::printf("crit profiler: enabled (overhead measurement)\n");
    std::printf("%-8s %12s %12s %10s %14s\n", "app", "sim_cycles",
                "warp_insts", "best_sec", "cycles/sec");

    for (const auto &name : apps) {
        AppPerf perf;
        perf.name = name;
        const auto &workload = gcl::workloads::byName(name);
        for (unsigned rep = 0; rep < repeat; ++rep) {
            gcl::workloads::SimContext ctx(workload, config);
            const double t0 = now_seconds();
            ctx.run();
            const double seconds = now_seconds() - t0;
            if (ctx.failed())
                gcl_fatal("perf_sweep: run of '", name, "' failed: ",
                          ctx.failure().message);
            if (!ctx.verified())
                gcl_fatal("perf_sweep: '", name,
                          "' failed its reference check");
            const auto cycles =
                static_cast<uint64_t>(ctx.stats().get("cycles"));
            const auto insts =
                static_cast<uint64_t>(ctx.stats().get("warp_insts"));
            if (rep == 0) {
                perf.simCycles = cycles;
                perf.warpInsts = insts;
                perf.bestSeconds = seconds;
            } else {
                // The simulator is deterministic; a repeat that simulates
                // different work means the bench itself is broken.
                gcl_assert(cycles == perf.simCycles,
                           "non-deterministic cycle count for ", name);
                perf.bestSeconds = std::min(perf.bestSeconds, seconds);
            }
        }
        std::printf("%-8s %12llu %12llu %10.3f %14.0f\n", perf.name.c_str(),
                    static_cast<unsigned long long>(perf.simCycles),
                    static_cast<unsigned long long>(perf.warpInsts),
                    perf.bestSeconds,
                    static_cast<double>(perf.simCycles) / perf.bestSeconds);
        results.push_back(perf);
    }

    uint64_t total_cycles = 0;
    double total_seconds = 0.0;
    for (const auto &app : results) {
        total_cycles += app.simCycles;
        total_seconds += app.bestSeconds;
    }
    std::printf("%-8s %12llu %12s %10.3f %14.0f\n", "TOTAL",
                static_cast<unsigned long long>(total_cycles), "",
                total_seconds,
                static_cast<double>(total_cycles) / total_seconds);
    std::printf("peak RSS: %ld KB\n", peakRssKb());

    writeJson(out_path, label, results, repeat, config.simThreads);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
