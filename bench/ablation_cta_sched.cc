/**
 * @file
 * Section X.B ablation: clustered CTA scheduling vs the round-robin
 * baseline.
 *
 * The paper *suggests* (without evaluating) that assigning neighboring CTAs
 * to the same SM should convert the inter-CTA locality of Figs 11/12 into
 * L1 hits. This bench runs both policies and reports the L1 miss-ratio and
 * cycle deltas.
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    auto base = bench::defaultConfig();
    auto clustered = base;
    clustered.ctaSched = sim::CtaSchedPolicy::Clustered;
    clustered.ctaClusterSize = 2;

    bench::printHeader("Ablation X.B: CTA scheduling policy "
                       "(round-robin vs clustered pairs)",
                       base);

    Table table({"app", "L1 miss RR", "L1 miss clustered", "cycles RR",
                 "cycles clustered", "speedup"});
    for (const auto &workload_rr : bench::runSuite(base)) {
        const auto app_cl = bench::runApp(workload_rr.name, clustered);
        auto miss = [](const bench::AppResult &app) {
            const double access = app.stats.get("l1.access.det") +
                                  app.stats.get("l1.access.nondet");
            const double misses = app.stats.get("l1.miss.det") +
                                  app.stats.get("l1.miss.nondet");
            return access ? misses / access : 0.0;
        };
        const double cyc_rr = workload_rr.stats.get("cycles");
        const double cyc_cl = app_cl.stats.get("cycles");
        table.addRow({
            workload_rr.name,
            Table::fmtPct(miss(workload_rr)),
            Table::fmtPct(miss(app_cl)),
            Table::fmtInt(static_cast<uint64_t>(cyc_rr)),
            Table::fmtInt(static_cast<uint64_t>(cyc_cl)),
            Table::fmt(cyc_cl ? cyc_rr / cyc_cl : 0.0, 3),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
