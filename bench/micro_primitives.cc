/**
 * @file
 * google-benchmark microbenchmarks of the core primitives: backward
 * dataflow classification, CFG/postdominator construction, the coalescer,
 * the L1 cache access path, the SIMT stack, the RNG and the gcl::trace
 * emission path (enabled, disabled and null-sink).
 */

#include <benchmark/benchmark.h>

#include "core/classifier.hh"
#include "ptx/builder.hh"
#include "ptx/cfg.hh"
#include "sim/cache.hh"
#include "sim/coalescer.hh"
#include "sim/simt_stack.hh"
#include "trace/trace.hh"
#include "util/rng.hh"

namespace
{

using namespace gcl;
using namespace gcl::ptx;
using DT = DataType;

/** A bfs-expand-shaped kernel (loops, divergence, mixed load classes). */
Kernel
makeIrregularKernel()
{
    KernelBuilder b("bench_kernel", 7);
    Reg tid = b.globalTidX();
    Reg p_row = b.ldParam(0);
    Reg p_col = b.ldParam(1);
    Reg p_data = b.ldParam(2);
    Reg n = b.ldParam(6);
    Label out = b.newLabel();
    Reg oob = b.setp(CmpOp::Ge, DT::U32, tid, n);
    b.braIf(oob, out);
    Reg start = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_row, tid, 4));
    Reg end =
        b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_row, tid, 4), 4);
    Reg i = b.mov(DT::U32, start);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.place(loop);
    Reg fin = b.setp(CmpOp::Ge, DT::U32, i, end);
    b.braIf(fin, done);
    Reg id = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_col, i, 4));
    Reg v = b.ld(MemSpace::Global, DT::U32, b.elemAddr(p_data, id, 4));
    b.st(MemSpace::Global, DT::U32, b.elemAddr(p_data, tid, 4), v);
    b.assign(DT::U32, i, b.add(DT::U32, i, 1));
    b.bra(loop);
    b.place(done);
    b.place(out);
    b.exit();
    return b.build();
}

void
BM_ClassifierFullAnalysis(benchmark::State &state)
{
    const Kernel kernel = makeIrregularKernel();
    for (auto _ : state) {
        core::LoadClassifier classifier(kernel);
        benchmark::DoNotOptimize(classifier.numNonDeterministic());
    }
}
BENCHMARK(BM_ClassifierFullAnalysis);

void
BM_CfgConstruction(benchmark::State &state)
{
    const Kernel kernel = makeIrregularKernel();
    for (auto _ : state) {
        Cfg cfg(kernel);
        benchmark::DoNotOptimize(cfg.numBlocks());
    }
}
BENCHMARK(BM_CfgConstruction);

void
BM_CoalescerRandom(benchmark::State &state)
{
    Rng rng(1);
    std::vector<std::pair<unsigned, uint64_t>> addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, rng.nextBounded(1 << 20) * 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::coalesce(addrs, 4, 128));
}
BENCHMARK(BM_CoalescerRandom);

void
BM_CoalescerSequential(benchmark::State &state)
{
    std::vector<std::pair<unsigned, uint64_t>> addrs;
    for (unsigned lane = 0; lane < 32; ++lane)
        addrs.emplace_back(lane, 0x1000 + lane * 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::coalesce(addrs, 4, 128));
}
BENCHMARK(BM_CoalescerSequential);

void
BM_CacheAccessStream(benchmark::State &state)
{
    sim::GpuConfig config;
    sim::MemPools pools;
    sim::Cache cache("bench", config.l1, pools);
    uint64_t addr = 0;
    for (auto _ : state) {
        const sim::ReqHandle req = pools.reqs.alloc();
        const uint64_t line = (addr += 128);
        pools.reqs.get(req).lineAddr = line;
        const auto outcome = cache.access(req, true);
        if (outcome == sim::AccessOutcome::Miss)
            cache.fill(line);
        pools.reqs.free(req);
        benchmark::DoNotOptimize(outcome);
    }
}
BENCHMARK(BM_CacheAccessStream);

void
BM_SimtStackDivergence(benchmark::State &state)
{
    for (auto _ : state) {
        sim::SimtStack stack;
        stack.reset(0xffffffffu, 100);
        stack.branch(0x0000ffffu, 10, 50);
        while (stack.pc() != 50)
            stack.advance();
        benchmark::DoNotOptimize(stack.activeMask());
    }
}
BENCHMARK(BM_SimtStackDivergence);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

// ---- gcl::trace overhead (EXPERIMENTS.md "Tracing overhead") ----

/** Full emission cost: ring store, with a drain swallowing overflows. */
void
BM_TraceEmitEnabled(benchmark::State &state)
{
    trace::TraceSink sink(1 << 16);
    sink.setEnabled(true);
    sink.setDrain([](const trace::TraceEvent *, size_t) {});
    uint64_t cycle = 0;
    for (auto _ : state) {
        ++cycle;
        GCL_TRACE(&sink, trace::EventKind::ReqInject, cycle, cycle,
                  cycle * 128, 7, 3, trace::kFlagNonDet);
        benchmark::DoNotOptimize(sink.size());
    }
}
BENCHMARK(BM_TraceEmitEnabled);

/** The untraced hot path: a sink exists but is switched off. */
void
BM_TraceEmitDisabledSink(benchmark::State &state)
{
    trace::TraceSink sink(1 << 10);
    uint64_t cycle = 0;
    for (auto _ : state) {
        ++cycle;
        GCL_TRACE(&sink, trace::EventKind::ReqInject, cycle, cycle,
                  cycle * 128, 7, 3, trace::kFlagNonDet);
        benchmark::DoNotOptimize(sink.size());
    }
}
BENCHMARK(BM_TraceEmitDisabledSink);

/** The default production path: no sink attached at all. */
void
BM_TraceEmitNullSink(benchmark::State &state)
{
    trace::TraceSink *sink = nullptr;
    benchmark::DoNotOptimize(sink);
    uint64_t cycle = 0;
    for (auto _ : state) {
        ++cycle;
        GCL_TRACE(sink, trace::EventKind::ReqInject, cycle, cycle,
                  cycle * 128, 7, 3, trace::kFlagNonDet);
        benchmark::DoNotOptimize(cycle);
    }
}
BENCHMARK(BM_TraceEmitNullSink);

} // namespace

BENCHMARK_MAIN();
