/**
 * @file
 * Figure 9 reproduction: shared-memory loads per global-memory load.
 *
 * Paper shape: image-processing apps use shared memory heavily (~2.5 shared
 * loads per global load on average); the other categories barely touch it.
 */

#include <iostream>
#include <map>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 9: shared loads per global load", config);

    Table table({"app", "category", "shared loads", "global loads",
                 "ratio"});
    std::map<std::string, std::pair<double, int>> by_category;
    for (const auto &app : bench::runSuite(config)) {
        const double sload = app.stats.get("sload.warps");
        const double gload = app.stats.get("gload.warps.det") +
                             app.stats.get("gload.warps.nondet");
        const double ratio = gload ? sload / gload : 0.0;
        by_category[app.category].first += ratio;
        by_category[app.category].second += 1;
        table.addRow({
            app.name,
            app.category,
            Table::fmtInt(static_cast<uint64_t>(sload)),
            Table::fmtInt(static_cast<uint64_t>(gload)),
            Table::fmt(ratio, 2),
        });
    }
    table.print(std::cout);
    std::cout << '\n';
    for (const auto &[category, acc] : by_category)
        std::cout << "category " << category << " average ratio: "
                  << Table::fmt(acc.first / acc.second, 2) << '\n';
    std::cout << "(paper: image apps average ~2.5x)\n\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
