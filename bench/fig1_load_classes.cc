/**
 * @file
 * Figure 1 reproduction: distribution of dynamic global-load warps into
 * deterministic and non-deterministic classes per application.
 *
 * Paper shape: linear/image apps are (almost) fully deterministic except
 * spmv; graph apps run a large non-deterministic fraction but still keep
 * a majority-deterministic static mix overall.
 */

#include <iostream>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 1: deterministic vs non-deterministic "
                       "global-load warps",
                       config);

    Table table({"app", "category", "det fraction", "nondet fraction",
                 "det warps", "nondet warps"});
    for (const auto &app : bench::runSuite(config)) {
        const double det = app.stats.get("gload.warps.det");
        const double nondet = app.stats.get("gload.warps.nondet");
        const double total = det + nondet;
        table.addRow({
            app.name,
            app.category,
            Table::fmtPct(total ? det / total : 0.0),
            Table::fmtPct(total ? nondet / total : 0.0),
            Table::fmtInt(static_cast<uint64_t>(det)),
            Table::fmtInt(static_cast<uint64_t>(nondet)),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
