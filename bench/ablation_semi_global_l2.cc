/**
 * @file
 * Section X.C ablation: semi-global L2 — clusters of SMs each own a slice
 * of the L2 partitions instead of all SMs striping over all partitions.
 *
 * The paper suggests this to shorten interconnect paths and to let nearby
 * CTAs (which share data, Fig 11) hit in the same slice. The bench compares
 * L2 miss ratios and end-to-end cycles.
 */

#include <iostream>

#include "common/figures.hh"
#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    auto base = bench::defaultConfig();
    auto semi = base;
    semi.smsPerL2Cluster = 5;   // 3 clusters x 2 partitions each

    bench::printHeader("Ablation X.C: unified vs semi-global L2 "
                       "(5 SMs per cluster)",
                       base);

    Table table({"app", "L2 miss unified", "L2 miss semi", "cycles unified",
                 "cycles semi", "speedup"});
    for (const auto &app_base : bench::runSuite(base)) {
        const auto app_semi = bench::runApp(app_base.name, semi);
        auto miss = [](const bench::AppResult &app) {
            const double access = app.stats.get("l2.access.det") +
                                  app.stats.get("l2.access.nondet");
            const double misses = app.stats.get("l2.miss.det") +
                                  app.stats.get("l2.miss.nondet");
            return access ? misses / access : 0.0;
        };
        const double cyc_b = app_base.stats.get("cycles");
        const double cyc_s = app_semi.stats.get("cycles");
        table.addRow({
            app_base.name,
            Table::fmtPct(miss(app_base)),
            Table::fmtPct(miss(app_semi)),
            Table::fmtInt(static_cast<uint64_t>(cyc_b)),
            Table::fmtInt(static_cast<uint64_t>(cyc_s)),
            Table::fmt(cyc_s ? cyc_b / cyc_s : 0.0, 3),
        });
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
