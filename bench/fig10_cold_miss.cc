/**
 * @file
 * Figure 10 reproduction: cold-miss ratio (distinct 128B blocks over total
 * L1 global-load accesses) and the average number of accesses per block.
 *
 * Paper shape: cold misses are only ~16% on average — image apps are the
 * exception (~39%) because their reuse lives in shared memory; linear apps
 * re-touch blocks 100+ times and graph apps ~18 times.
 */

#include <iostream>
#include <map>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 10: cold-miss ratio and block reuse",
                       config);

    Table table({"app", "category", "blocks", "accesses",
                 "cold miss ratio", "accesses/block"});
    std::map<std::string, std::pair<double, int>> cold_by_category;
    for (const auto &app : bench::runSuite(config)) {
        const double blocks = app.stats.get("blocks.count");
        const double accesses = app.stats.get("blocks.accesses");
        const double cold = accesses ? blocks / accesses : 0.0;
        cold_by_category[app.category].first += cold;
        cold_by_category[app.category].second += 1;
        table.addRow({
            app.name,
            app.category,
            Table::fmtInt(static_cast<uint64_t>(blocks)),
            Table::fmtInt(static_cast<uint64_t>(accesses)),
            Table::fmtPct(cold),
            Table::fmt(blocks ? accesses / blocks : 0.0, 1),
        });
    }
    table.print(std::cout);
    std::cout << '\n';
    for (const auto &[category, acc] : cold_by_category)
        std::cout << "category " << category << " average cold-miss ratio: "
                  << Table::fmtPct(acc.first / acc.second) << '\n';
    std::cout << "(paper: 16% overall, image ~38.8%)\n\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
