#include "runner.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/gpu.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

namespace gcl::bench
{

namespace
{

/** Bump when any workload's dataset or kernel changes shape. */
constexpr unsigned kDatasetVersion = 5;

std::filesystem::path
cacheDir()
{
    if (const char *env = std::getenv("GCL_BENCH_CACHE"))
        return env;
    return "bench_results";
}

bool
cacheDisabled()
{
    const char *env = std::getenv("GCL_BENCH_FRESH");
    return env && env[0] == '1';
}

std::filesystem::path
cachePath(const std::string &name, const sim::GpuConfig &config)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s.v%u.%016llx.stats", name.c_str(),
                  kDatasetVersion,
                  static_cast<unsigned long long>(config.fingerprint()));
    return cacheDir() / buf;
}

bool
loadCached(const std::filesystem::path &path, AppResult &result)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header))
        return false;
    std::istringstream hs(header);
    std::string tag;
    int verified = 0;
    if (!(hs >> tag >> verified) || tag != "gclbench")
        return false;
    std::stringstream body;
    body << in.rdbuf();
    if (!result.stats.deserialize(body.str()))
        return false;
    result.verified = verified != 0;
    return true;
}

void
storeCached(const std::filesystem::path &path, const AppResult &result)
{
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    std::ofstream out(path);
    if (!out)
        return;
    out << "gclbench " << (result.verified ? 1 : 0) << '\n';
    out << result.stats.serialize();
}

} // namespace

sim::GpuConfig
defaultConfig()
{
    return sim::GpuConfig{};
}

AppResult
runApp(const std::string &name, const sim::GpuConfig &config)
{
    const auto &workload = workloads::byName(name);

    AppResult result;
    result.name = name;
    result.category = workloads::toString(workload.category);

    const auto path = cachePath(name, config);
    if (!cacheDisabled() && loadCached(path, result))
        return result;

    sim::Gpu gpu(config);
    result.verified = workload.run(gpu);
    gpu.finalizeStats();
    result.stats = gpu.stats().set();
    if (!result.verified)
        gcl_warn("workload '", name, "' failed its reference check");

    storeCached(path, result);
    return result;
}

std::vector<AppResult>
runSuite(const sim::GpuConfig &config)
{
    std::vector<AppResult> results;
    results.reserve(workloads::all().size());
    for (const auto &workload : workloads::all()) {
        std::fprintf(stderr, "[bench] %s ...\n", workload.name.c_str());
        results.push_back(runApp(workload.name, config));
    }
    return results;
}

void
printHeader(const std::string &title, const sim::GpuConfig &config)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("config fingerprint %016llx, cache %s\n\n",
                static_cast<unsigned long long>(config.fingerprint()),
                cacheDisabled() ? "disabled" : cacheDir().string().c_str());
}

} // namespace gcl::bench
