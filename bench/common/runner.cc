#include "runner.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "sim/gpu.hh"
#include "trace/chrome_writer.hh"
#include "trace/export.hh"
#include "trace/json.hh"
#include "trace/trace.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

namespace gcl::bench
{

namespace
{

/** Bump when any workload's dataset or kernel changes shape. */
constexpr unsigned kDatasetVersion = 5;

std::filesystem::path
cacheDir()
{
    if (const char *env = std::getenv("GCL_BENCH_CACHE"))
        return env;
    return "bench_results";
}

Options g_options;

/** Trace/export state living for the whole process (all runApp calls). */
struct ExportState
{
    std::ofstream traceStream;
    std::unique_ptr<trace::ChromeTraceWriter> writer;
    trace::TraceSink sink;
    int nextPid = 1;

    struct Record
    {
        std::string name;
        std::string category;
        bool verified = false;
        uint64_t fingerprint = 0;
        StatsSet stats;
    };
    std::vector<Record> records;
};

ExportState *g_export = nullptr;

bool
tracing()
{
    return g_export && g_export->writer;
}

void
writeStatsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        gcl_warn("cannot write stats JSON to '", path, "'");
        return;
    }
    out << "{\n\"apps\": [";
    bool first = true;
    for (const auto &rec : g_export->records) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016" PRIx64, rec.fingerprint);
        out << (first ? "\n" : ",\n") << "{\"name\": "
            << trace::jsonQuote(rec.name) << ", \"category\": "
            << trace::jsonQuote(rec.category) << ", \"verified\": "
            << (rec.verified ? "true" : "false")
            << ", \"fingerprint\": \"" << fp << "\", \"stats\": ";
        trace::exportStatsJson(rec.stats, out);
        out << "}";
        first = false;
    }
    out << "\n]\n}\n";
}

void
writeStatsCsv(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        gcl_warn("cannot write stats CSV to '", path, "'");
        return;
    }
    out << "app,kind,key,bucket,value\n";
    for (const auto &rec : g_export->records) {
        std::ostringstream rows;
        trace::exportStatsCsv(rec.stats, rows);
        std::istringstream lines(rows.str());
        std::string line;
        std::getline(lines, line); // per-set header, replaced above
        while (std::getline(lines, line))
            out << rec.name << ',' << line << '\n';
    }
}

/** atexit hook: close the trace array, write the stats artifacts. */
void
finishExports()
{
    if (!g_export)
        return;
    if (g_export->writer) {
        g_export->sink.flush();
        g_export->writer->close();
        std::fprintf(stderr, "[bench] trace: %" PRIu64
                     " events -> %s\n",
                     g_export->writer->eventsWritten(),
                     g_options.traceOut.c_str());
    }
    if (!g_options.statsJson.empty())
        writeStatsJson(g_options.statsJson);
    if (!g_options.statsCsv.empty())
        writeStatsCsv(g_options.statsCsv);
}

bool
cacheDisabled()
{
    if (g_options.fresh)
        return true;
    const char *env = std::getenv("GCL_BENCH_FRESH");
    return env && env[0] == '1';
}

std::filesystem::path
cachePath(const std::string &name, const sim::GpuConfig &config)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s.v%u.%016llx.stats", name.c_str(),
                  kDatasetVersion,
                  static_cast<unsigned long long>(config.fingerprint()));
    return cacheDir() / buf;
}

bool
loadCached(const std::filesystem::path &path, AppResult &result)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header))
        return false;
    std::istringstream hs(header);
    std::string tag;
    int verified = 0;
    if (!(hs >> tag >> verified) || tag != "gclbench")
        return false;
    std::stringstream body;
    body << in.rdbuf();
    if (!result.stats.deserialize(body.str()))
        return false;
    result.verified = verified != 0;
    return true;
}

void
storeCached(const std::filesystem::path &path, const AppResult &result)
{
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    std::ofstream out(path);
    if (!out)
        return;
    out << "gclbench " << (result.verified ? 1 : 0) << '\n';
    out << result.stats.serialize();
}

/** Remember a finished run for the end-of-process stats artifacts. */
void
recordResult(const AppResult &result, const sim::GpuConfig &config)
{
    if (!g_export ||
        (g_options.statsJson.empty() && g_options.statsCsv.empty()))
        return;
    g_export->records.push_back({result.name, result.category,
                                 result.verified, config.fingerprint(),
                                 result.stats});
}

} // namespace

const Options &
options()
{
    return g_options;
}

void
initBench(int argc, char **argv)
{
    auto value = [](const char *arg, const char *flag) -> const char * {
        const size_t n = std::strlen(flag);
        if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (const char *v = value(arg, "--trace-out")) {
            g_options.traceOut = v;
        } else if (const char *v = value(arg, "--timeline-interval")) {
            g_options.timelineInterval = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value(arg, "--stats-json")) {
            g_options.statsJson = v;
        } else if (const char *v = value(arg, "--stats-csv")) {
            g_options.statsCsv = v;
        } else if (const char *v = value(arg, "--apps")) {
            std::istringstream list(v);
            std::string app;
            while (std::getline(list, app, ','))
                if (!app.empty())
                    g_options.apps.push_back(app);
            for (const auto &name : g_options.apps)
                workloads::byName(name); // fatal on a typo
        } else if (std::strcmp(arg, "--fresh") == 0) {
            g_options.fresh = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf(
                "usage: %s [options]\n"
                "  --trace-out=FILE         Chrome trace-event JSON "
                "(load in Perfetto)\n"
                "  --timeline-interval=N    sample occupancy counters "
                "every N cycles\n"
                "  --stats-json=FILE        finalized stats of every run, "
                "as JSON\n"
                "  --stats-csv=FILE         same, flat CSV "
                "(app,kind,key,bucket,value)\n"
                "  --apps=a,b,c             restrict the suite to these "
                "applications\n"
                "  --fresh                  ignore the on-disk run cache\n",
                argv[0]);
            std::exit(0);
        } else {
            gcl_fatal("unknown argument '", arg, "' (try --help)");
        }
    }

    if (g_options.traceOut.empty() && g_options.statsJson.empty() &&
        g_options.statsCsv.empty())
        return;

    static ExportState state;
    g_export = &state;
    if (!g_options.traceOut.empty()) {
        state.traceStream.open(g_options.traceOut);
        if (!state.traceStream)
            gcl_fatal("cannot open trace output '", g_options.traceOut,
                      "'");
        state.writer =
            std::make_unique<trace::ChromeTraceWriter>(state.traceStream);
        state.sink.setDrain(state.writer->drain());
        state.sink.setEnabled(true);
        // A trace without the occupancy timeline is half blind; default
        // to a sane sampling period unless the user chose one.
        if (g_options.timelineInterval == 0)
            g_options.timelineInterval = 1000;
    }
    std::atexit(finishExports);
}

sim::GpuConfig
defaultConfig()
{
    return sim::GpuConfig{};
}

AppResult
runApp(const std::string &name, const sim::GpuConfig &config)
{
    const auto &workload = workloads::byName(name);

    AppResult result;
    result.name = name;
    result.category = workloads::toString(workload.category);

    // A cached stats file has no events in it: tracing forces a fresh
    // simulation (the stats it produces are identical, so re-caching is
    // still valid).
    const auto path = cachePath(name, config);
    if (!tracing() && !cacheDisabled() && loadCached(path, result)) {
        recordResult(result, config);
        return result;
    }

    sim::Gpu gpu(config);
    if (tracing()) {
        g_export->writer->beginProcess(g_export->nextPid++, name);
        gpu.attachTrace(&g_export->sink, g_options.timelineInterval);
    }
    result.verified = workload.run(gpu);
    gpu.finalizeStats();
    result.stats = gpu.stats().set();
    if (tracing()) {
        // Drain now so buffered events land under this app's pid before
        // the next beginProcess() switches the writer over.
        gpu.attachTrace(nullptr);
        g_export->sink.flush();
    }
    if (!result.verified)
        gcl_warn("workload '", name, "' failed its reference check");

    storeCached(path, result);
    recordResult(result, config);
    return result;
}

std::vector<AppResult>
runSuite(const sim::GpuConfig &config)
{
    std::vector<AppResult> results;
    results.reserve(workloads::all().size());
    for (const auto &workload : workloads::all()) {
        if (!g_options.apps.empty() &&
            std::find(g_options.apps.begin(), g_options.apps.end(),
                      workload.name) == g_options.apps.end())
            continue;
        std::fprintf(stderr, "[bench] %s ...\n", workload.name.c_str());
        results.push_back(runApp(workload.name, config));
    }
    return results;
}

void
printHeader(const std::string &title, const sim::GpuConfig &config)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("config fingerprint %016llx, cache %s\n\n",
                static_cast<unsigned long long>(config.fingerprint()),
                cacheDisabled() ? "disabled" : cacheDir().string().c_str());
}

} // namespace gcl::bench
